// §5 on real hardware: speedup of the multiple-thread mechanism over
// single-thread execution, on the actual threaded engine with the actual
// lock manager, sweeping the paper's three factors:
//   (i)  degree of interference   (shared-hub fraction)
//   (ii) number of processors     (worker threads)
//   (iii) production execution times (:cost busy-work)
// Each cell reports both lock protocols; the single-thread run is the
// baseline (speedup = T_single / T_multi).

#include <cstdio>

#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "report.h"
#include "util/stopwatch.h"
#include "workload.h"

namespace {

using namespace dbps;

struct CellResult {
  double seconds = 0;
  uint64_t firings = 0;
  uint64_t aborts = 0;
};

CellResult RunSingle(int jobs, int steps, double shared, int64_t cost) {
  auto workload = bench::MakeJobsWorkload(jobs, steps, shared, cost);
  SingleThreadEngine engine(workload.wm.get(), workload.rules);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  CellResult cell;
  cell.seconds = stopwatch.ElapsedSeconds();
  cell.firings = result.stats.firings;
  DBPS_CHECK_EQ(cell.firings, workload.expected_firings);
  return cell;
}

CellResult RunParallel(int jobs, int steps, double shared, int64_t cost,
                       size_t workers, LockProtocol protocol) {
  auto workload = bench::MakeJobsWorkload(jobs, steps, shared, cost);
  ParallelEngineOptions options;
  options.num_workers = workers;
  options.protocol = protocol;
  ParallelEngine engine(workload.wm.get(), workload.rules, options);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  CellResult cell;
  cell.seconds = stopwatch.ElapsedSeconds();
  cell.firings = result.stats.firings;
  cell.aborts = result.stats.aborts + result.stats.stale_skips;
  DBPS_CHECK_EQ(cell.firings, workload.expected_firings);
  return cell;
}

void Row(const char* label, int jobs, int steps, double shared,
         int64_t cost, size_t workers) {
  CellResult single = RunSingle(jobs, steps, shared, cost);
  CellResult rc = RunParallel(jobs, steps, shared, cost, workers,
                              LockProtocol::kRcRaWa);
  CellResult two = RunParallel(jobs, steps, shared, cost, workers,
                               LockProtocol::kTwoPhase);
  std::printf(
      "  %-28s T1=%6.1fms  Rc/Ra/Wa: %6.1fms (x%4.2f, %3llu"
      " aborts)  2PL: %6.1fms (x%4.2f)\n",
      label, single.seconds * 1e3, rc.seconds * 1e3,
      single.seconds / rc.seconds, (unsigned long long)rc.aborts,
      two.seconds * 1e3, single.seconds / two.seconds);
}

}  // namespace

int main() {
  bench::Header(
      "Section 5 on the real engine — speedup vs the paper's 3 factors\n"
      "(workload: 16 jobs x 8 steps = 128 firings; :cost realized via the\n"
      " sleep cost-model, i.e. every worker owns a simulated processor —\n"
      " see DESIGN.md substitutions; host core count does not cap Np)");

  const int kJobs = 16;
  const int kSteps = 8;

  bench::Section("(ii) number of processors (shared=0.25, cost=200us)");
  for (size_t workers : {1, 2, 4, 8}) {
    char label[64];
    std::snprintf(label, sizeof(label), "Np=%zu", workers);
    Row(label, kJobs, kSteps, 0.25, 200, workers);
  }

  bench::Section("(i) degree of interference (Np=4, cost=200us)");
  for (double shared : {0.0, 0.25, 0.5, 1.0}) {
    char label[64];
    std::snprintf(label, sizeof(label), "shared fraction=%.2f", shared);
    Row(label, kJobs, kSteps, shared, 200, 4);
  }

  bench::Section("(iii) production execution time (Np=4, shared=0.25)");
  for (int64_t cost : {0, 100, 400, 1600}) {
    char label[64];
    std::snprintf(label, sizeof(label), "cost=%lldus",
                  (long long)cost);
    Row(label, kJobs, kSteps, 0.25, cost, 4);
  }

  std::printf(
      "\nexpected shapes (paper §5): speedup grows with Np until\n"
      "saturation; falls as interference rises (aborted work under\n"
      "Rc/Ra/Wa, blocking under 2PL); grows with per-production cost\n"
      "since overheads amortize. Rc/Ra/Wa >= 2PL throughout, with the\n"
      "gap widening as actions lengthen (the §4.3 motivation).\n");
  return 0;
}
