// §4.3 escalation ablation: wide-matching rules (many tuples per firing)
// with and without Rc escalation. Escalation trades lock-manager work
// (one relation lock instead of N tuple locks) against concurrency (the
// relation lock is a bigger abort/conflict target).

#include <cstdio>

#include "engine/parallel_engine.h"
#include "lang/compiler.h"
#include "report.h"
#include "util/stopwatch.h"

namespace {

using namespace dbps;

// Each firing matches a chain of 6 config tuples plus its own job tuple.
constexpr const char* kProgram = R"(
(relation config (slot int) (v int))
(relation job (id int) (steps int))
(rule work :cost 300
  (config ^slot 1) (config ^slot 2) (config ^slot 3)
  (config ^slot 4) (config ^slot 5) (config ^slot 6)
  (job ^id <j> ^steps { > 0 } ^steps <s>)
  -->
  (modify 7 ^steps (- <s> 1)))
)";

struct Outcome {
  double ms;
  uint64_t lock_acquires;
  uint64_t aborts;
};

Outcome Run(size_t escalation_threshold) {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  for (int s = 1; s <= 6; ++s) {
    DBPS_CHECK(wm.Insert("config", {Value::Int(s), Value::Int(0)}).ok());
  }
  for (int j = 0; j < 12; ++j) {
    DBPS_CHECK(wm.Insert("job", {Value::Int(j), Value::Int(5)}).ok());
  }
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.rc_escalation_threshold = escalation_threshold;
  ParallelEngine engine(&wm, rules, options);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  DBPS_CHECK_EQ(result.stats.firings, 60u);
  return Outcome{stopwatch.ElapsedSeconds() * 1e3,
                 engine.lock_stats().acquired,
                 result.stats.aborts + result.stats.stale_skips};
}

}  // namespace

int main() {
  bench::Header(
      "Rc lock escalation ablation (§4.3)\n"
      "(12 jobs x 5 steps; every firing Rc-locks 6 shared config tuples\n"
      " + its own job tuple; Np=4, cost 300us)");

  std::printf("\n  %-28s %10s %14s %8s\n", "configuration", "time",
              "lock acquires", "aborts");
  for (size_t threshold : {0, 8, 4, 2}) {
    Outcome outcome = Run(threshold);
    char label[64];
    if (threshold == 0) {
      std::snprintf(label, sizeof(label), "no escalation");
    } else {
      std::snprintf(label, sizeof(label), "escalate above %zu Rc/rel",
                    threshold);
    }
    std::printf("  %-28s %8.1fms %14llu %8llu\n", label, outcome.ms,
                (unsigned long long)outcome.lock_acquires,
                (unsigned long long)outcome.aborts);
  }

  std::printf(
      "\nexpected shape: escalation cuts lock-manager traffic (fewer\n"
      "acquires per firing). Here the config tuples are read-shared and\n"
      "the job writes never touch `config`, so escalation costs no\n"
      "concurrency; on write-mixed relations it would trade acquires for\n"
      "extra Rc-victim aborts (see escalation_test for that conflict).\n");
  return 0;
}
