// Figure 3.1 / 3.2 + §3.3: builds the six-production abstract system,
// prints its execution graph (states and transitions) and enumerates the
// complete single-thread execution semantics ES_single.

#include <cstdio>
#include <map>

#include "report.h"
#include "semantics/abstract_ps.h"
#include "sim/paper_scenarios.h"

int main() {
  using namespace dbps;
  bench::Header(
      "Figure 3.2 / Section 3.3 — execution graph and ES_single\n"
      "(paper's add/delete tables are OCR-corrupted; this is the\n"
      " reconstructed 6-production system, initial PA = {p1,p2,p3,p5})");

  AbstractSystem system = Section33System();

  bench::Section("productions");
  for (size_t p = 0; p < system.num_productions(); ++p) {
    const AbstractProduction& production = system.production(p);
    std::printf("  %s: add %s  delete %s\n", production.name.c_str(),
                system.MaskToString(production.add_set).c_str(),
                system.MaskToString(production.delete_set).c_str());
  }
  std::printf("  initial conflict set: %s\n",
              system.MaskToString(system.initial()).c_str());

  bench::Section("execution graph (reachable states, Figure 3.1 form)");
  auto states = system.ReachableStates().ValueOrDie();
  std::printf("  %zu reachable states\n", states.size());
  for (ConflictMask state : states) {
    std::printf("  %-22s ->", system.MaskToString(state).c_str());
    bool any = false;
    for (size_t p = 0; p < system.num_productions(); ++p) {
      if (((state >> p) & 1) == 0) continue;
      std::printf(" --%s--> %s", system.production(p).name.c_str(),
                  system.MaskToString(system.Fire(state, p)).c_str());
      any = true;
    }
    if (!any) std::printf(" (terminal)");
    std::printf("\n");
  }

  bench::Section("ES_single: complete execution sequences (Figure 3.2)");
  auto sequences = system.EnumerateCompleteSequences().ValueOrDie();
  std::map<size_t, int> by_length;
  for (const auto& sequence : sequences) {
    std::printf("  %s\n", system.SequenceToString(sequence).c_str());
    ++by_length[sequence.size()];
  }
  std::printf("  total: %zu complete sequences", sequences.size());
  std::printf("  (by length:");
  for (const auto& [length, count] : by_length) {
    std::printf(" %zu:%d", length, count);
  }
  std::printf(")\n");
  std::printf(
      "\n  every prefix of the above is also in ES_single (Def. 3.1);\n"
      "  the parallel engines' commit logs are validated against exactly\n"
      "  this membership by semantics/replay_validator.\n");

  bench::Section("Graphviz form (pipe into `dot -Tpng`)");
  std::printf("%s", system.ToDot().ValueOrDie().c_str());
  return 0;
}
