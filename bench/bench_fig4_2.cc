// Figures 4.1–4.4: lock-acquisition traces of two conflicting
// productions under (a) conventional 2PL and (b) the Rc/Ra/Wa scheme,
// including both commit orders of the Rc–Wa race (Figure 4.3 a/b) and
// the circular conflict (Figure 4.4).

#include <cstdio>
#include <mutex>
#include <vector>

#include "lock/lock_manager.h"
#include "util/logging.h"
#include "report.h"

namespace {

using namespace dbps;

struct Tracer {
  std::mutex mu;
  std::vector<std::string> lines;
  LockManager::Options Options(LockProtocol protocol) {
    LockManager::Options options;
    options.protocol = protocol;
    options.trace = [this](const LockEvent& event) {
      std::lock_guard<std::mutex> guard(mu);
      lines.push_back(event.ToString());
    };
    return options;
  }
  void Dump() {
    for (const auto& line : lines) std::printf("    %s\n", line.c_str());
    lines.clear();
  }
};

// Figure 4.1/4.2 single-production lock discipline, narrated.
void Figure41And42() {
  bench::Section(
      "Figure 4.1 vs 4.2 — lock acquisition order of one production");
  std::printf(
      "  standard 2PL (Fig 4.1):   acquire S(read) locks for the LHS ->\n"
      "                            evaluate -> acquire S/X locks for the\n"
      "                            RHS -> execute -> commit -> release\n"
      "  improved scheme (Fig 4.2): acquire Rc locks for the LHS ->\n"
      "                            evaluate -> acquire Ra/Wa locks ->\n"
      "                            execute -> commit (abort conflicting\n"
      "                            Rc holders) -> release\n");

  Tracer tracer;
  LockManager lm(tracer.Options(LockProtocol::kRcRaWa));
  LockObjectId q{Sym("q"), 1};
  LockObjectId r{Sym("r"), 1};
  TxnId txn = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(txn, q, LockMode::kRc));  // condition read
  DBPS_CHECK_OK(lm.Acquire(txn, r, LockMode::kRa));  // action read
  DBPS_CHECK_OK(lm.Acquire(txn, q, LockMode::kWa));  // action write
  lm.Release(txn);                                    // commit
  std::printf("  trace (one firing, Rc -> Ra/Wa -> commit):\n");
  tracer.Dump();
}

// Figure 4.3(a): Pj (reader) commits first — serial order Pj Pi.
void Figure43a() {
  bench::Section("Figure 4.3(a) — Pj holds Rc(q), Pi holds Wa(q); Pj "
                 "commits first");
  Tracer tracer;
  LockManager lm(tracer.Options(LockProtocol::kRcRaWa));
  LockObjectId q{Sym("q"), 1};
  TxnId pj = lm.Begin();
  TxnId pi = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(pj, q, LockMode::kRc));
  DBPS_CHECK_OK(lm.Acquire(pi, q, LockMode::kWa));  // granted over Rc!
  auto victims = lm.CollectRcVictims(pj);           // Pj commits first
  lm.Release(pj);
  std::printf("  Pj commits: %zu victims (it holds no Wa)\n",
              victims.size());
  victims = lm.CollectRcVictims(pi);                // then Pi commits
  std::printf("  Pi commits: %zu victims (Pj already gone)\n",
              victims.size());
  lm.Release(pi);
  std::printf("  => serial order Pj Pi, no aborts. trace:\n");
  tracer.Dump();
}

// Figure 4.3(b): Pi (writer) commits first — Pj must abort.
void Figure43b() {
  bench::Section("Figure 4.3(b) — same locks; Pi commits first");
  Tracer tracer;
  LockManager lm(tracer.Options(LockProtocol::kRcRaWa));
  LockObjectId q{Sym("q"), 1};
  TxnId pj = lm.Begin();
  TxnId pi = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(pj, q, LockMode::kRc));
  DBPS_CHECK_OK(lm.Acquire(pi, q, LockMode::kWa));
  auto victims = lm.CollectRcVictims(pi);  // Pi commits first
  std::printf("  Pi commits: %zu victim(s) ->", victims.size());
  for (TxnId victim : victims) {
    std::printf(" T%llu", (unsigned long long)victim);
    lm.MarkAborted(victim);
  }
  std::printf("  (the lock manager finds all productions holding Rc on q\n"
              "   and forces them to abort — paper rule (ii))\n");
  lm.Release(pi);
  lm.Release(pj);
  std::printf("  trace:\n");
  tracer.Dump();
}

// Figure 4.4: circular Rc/Wa dependency.
void Figure44() {
  bench::Section(
      "Figure 4.4 — circular conflict: Pi{Rc(q),Wa(r)}, Pj{Rc(r),Wa(q)}");
  Tracer tracer;
  LockManager lm(tracer.Options(LockProtocol::kRcRaWa));
  LockObjectId q{Sym("q"), 1};
  LockObjectId r{Sym("r"), 1};
  TxnId pi = lm.Begin();
  TxnId pj = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(pi, q, LockMode::kRc));
  DBPS_CHECK_OK(lm.Acquire(pj, r, LockMode::kRc));
  DBPS_CHECK_OK(lm.Acquire(pi, r, LockMode::kWa));
  DBPS_CHECK_OK(lm.Acquire(pj, q, LockMode::kWa));
  std::printf("  all four locks granted concurrently (no blocking!).\n");
  auto victims = lm.CollectRcVictims(pi);
  std::printf("  if Pi commits first it aborts %zu txn(s); ",
              victims.size());
  victims = lm.CollectRcVictims(pj);
  std::printf("if Pj commits first it aborts %zu txn(s).\n",
              victims.size());
  std::printf(
      "  => the commitment of one production always forces the other to\n"
      "     abort; exactly one survives (consistent semantics).\n");
  lm.Release(pi);
  lm.Release(pj);
  std::printf("  trace:\n");
  tracer.Dump();
}

// Contrast: the same Figure 4.3 race under conventional 2PL blocks.
void TwoPhaseContrast() {
  bench::Section("contrast — Figure 4.3 locks under conventional 2PL");
  Tracer tracer;
  LockManager::Options options = tracer.Options(LockProtocol::kTwoPhase);
  options.wait_timeout = std::chrono::milliseconds(50);
  LockManager lm(options);
  LockObjectId q{Sym("q"), 1};
  TxnId pj = lm.Begin();
  TxnId pi = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(pj, q, LockMode::kRc));
  Status st = lm.Acquire(pi, q, LockMode::kWa);
  std::printf("  Pi's Wa(q) while Pj holds Rc(q): %s\n",
              st.ToString().c_str());
  std::printf("  => under 2PL the writer waits for the whole (possibly\n"
              "     long) action of the reader; the Rc scheme lets it run.\n");
  lm.Release(pi);
  lm.Release(pj);
  std::printf("  trace:\n");
  tracer.Dump();
}

}  // namespace

int main() {
  bench::Header("Figures 4.1–4.4 — locking scenarios, traced live");
  Figure41And42();
  Figure43a();
  Figure43b();
  Figure44();
  TwoPhaseContrast();
  return 0;
}
