// Figure 5.1 / Table 5.1 / Example 5.1 — the base case: PA = {P1..P4},
// T = (5,3,2,4), Np = 4, P2's commit aborts P1. Paper numbers:
// T_single = 9, T_multi = 4, speedup 2.25.

#include "section5.h"
#include "sim/paper_scenarios.h"

int main() {
  using namespace dbps;
  bench::Header("Figure 5.1 / Table 5.1 — base case (Example 5.1)");
  bench::PrintScenario(sim::Figure51Config(), sim::Sigma1(),
                       /*paper_t_single=*/9, /*paper_t_multi=*/4,
                       /*paper_speedup=*/2.25);

  // Example 5.1's uniprocessor inequality: multi-thread on ONE processor
  // is never faster than single-thread.
  bench::Section("Example 5.1 — uniprocessor multiple-thread estimate");
  sim::SimConfig config = sim::Figure51Config();
  sim::MultiThreadResult result = sim::SimulateMultiThread(config);
  for (double f : {0.0, 0.25, 0.5, 0.75}) {
    std::printf("  f=%.2f: T_multi_uni = %5.2f  (>= T_single = 9)\n", f,
                sim::UniprocessorMultiThreadTime(config, result, f));
  }
  return 0;
}
