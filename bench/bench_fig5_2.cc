// Figure 5.2 / Table 5.2 — degree-of-conflict variation: P3's commit now
// also aborts P4. Paper numbers: T_single = 5, T_multi = 3,
// speedup 5/3 ~= 1.67 (down from 2.25).

#include "section5.h"
#include "sim/paper_scenarios.h"

int main() {
  using namespace dbps;
  bench::Header("Figure 5.2 / Table 5.2 — higher degree of conflict");
  bench::PrintScenario(sim::Figure52Config(), sim::Sigma2(),
                       /*paper_t_single=*/5, /*paper_t_multi=*/3,
                       /*paper_speedup=*/1.67);
  std::printf(
      "\nspeedup fell 2.25 -> 1.67 purely from added interference: the\n"
      "degree of conflict is a first-order determinant of speedup (5.1).\n");
  return 0;
}
