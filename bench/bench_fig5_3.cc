// Figure 5.3 — execution-time variation: T(P2) raised from 3 to 4.
// Paper numbers: T_single = 10, T_multi = 4, speedup 2.5 (up from 2.25).

#include "section5.h"
#include "sim/paper_scenarios.h"

int main() {
  using namespace dbps;
  bench::Header("Figure 5.3 — execution-time variation (T(P2)+1)");
  bench::PrintScenario(sim::Figure53Config(), sim::Sigma1(),
                       /*paper_t_single=*/10, /*paper_t_multi=*/4,
                       /*paper_speedup=*/2.5);
  std::printf(
      "\nlonger productions favour the multi-thread mechanism: the serial\n"
      "sum grows while the parallel makespan absorbs the increase (5.2).\n");
  return 0;
}
