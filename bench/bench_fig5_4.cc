// Figure 5.4 — processor variation: Np reduced from 4 to 3, so P4 waits
// for a free processor. Paper numbers: T_single = 9, T_multi = 6,
// speedup 1.5 (down from 2.25).

#include "section5.h"
#include "sim/paper_scenarios.h"

int main() {
  using namespace dbps;
  bench::Header("Figure 5.4 — fewer processors (Np = 3)");
  bench::PrintScenario(sim::Figure54Config(), sim::Sigma1(),
                       /*paper_t_single=*/9, /*paper_t_multi=*/6,
                       /*paper_speedup=*/1.5);

  bench::Section("full Np sweep (saturation at Np >= max|PA|, 5.3)");
  sim::SimConfig config = sim::Figure51Config();
  double t_single =
      sim::SingleThreadTime(config, sim::Sigma1()).ValueOrDie();
  for (size_t np = 1; np <= 6; ++np) {
    config.num_processors = np;
    double makespan = sim::SimulateMultiThread(config).makespan;
    std::printf("  Np=%zu: T_multi=%4.1f  speedup=%.3f\n", np, makespan,
                t_single / makespan);
  }
  return 0;
}
