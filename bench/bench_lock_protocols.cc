// Lock-manager microbenchmarks (google-benchmark): the cost of the
// centralized lock manager's primitive operations under both protocols —
// the "minor modifications to conventional lock managers" the paper
// claims (§6).

#include <benchmark/benchmark.h>

#include "lock/lock_manager.h"
#include "util/logging.h"

namespace dbps {
namespace {

LockManager::Options Opts(LockProtocol protocol) {
  LockManager::Options options;
  options.protocol = protocol;
  return options;
}

void BM_UncontendedAcquireRelease(benchmark::State& state) {
  LockManager lm(Opts(static_cast<LockProtocol>(state.range(0))));
  SymbolId relation = Sym("r");
  for (auto _ : state) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 2}, LockMode::kRa));
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kWa));
    lm.Release(txn);
  }
}
BENCHMARK(BM_UncontendedAcquireRelease)
    ->Arg(static_cast<int>(LockProtocol::kTwoPhase))
    ->Arg(static_cast<int>(LockProtocol::kRcRaWa));

void BM_SharedRcHolders(benchmark::State& state) {
  // N transactions all hold Rc on the same tuple; measure the next
  // reader's acquire.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  const int64_t holders = state.range(0);
  std::vector<TxnId> txns;
  for (int64_t i = 0; i < holders; ++i) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    txns.push_back(txn);
  }
  for (auto _ : state) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    lm.Release(txn);
  }
  for (TxnId txn : txns) lm.Release(txn);
}
BENCHMARK(BM_SharedRcHolders)->Arg(1)->Arg(16)->Arg(128);

void BM_WaOverRcGrant(benchmark::State& state) {
  // The paper's key cell: Wa granted over an outstanding Rc — measured
  // as grant latency (never blocks under kRcRaWa).
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  TxnId reader = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(reader, {relation, 1}, LockMode::kRc));
  for (auto _ : state) {
    TxnId writer = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(writer, {relation, 1}, LockMode::kWa));
    lm.Release(writer);
  }
  lm.Release(reader);
}
BENCHMARK(BM_WaOverRcGrant);

void BM_CollectRcVictims(benchmark::State& state) {
  // Commit-time settlement cost with N outstanding Rc holders.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  const int64_t readers = state.range(0);
  std::vector<TxnId> txns;
  for (int64_t i = 0; i < readers; ++i) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    txns.push_back(txn);
  }
  TxnId writer = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(writer, {relation, 1}, LockMode::kWa));
  for (auto _ : state) {
    auto victims = lm.CollectRcVictims(writer);
    benchmark::DoNotOptimize(victims);
    DBPS_CHECK_EQ(victims.size(), static_cast<size_t>(readers));
  }
  lm.Release(writer);
  for (TxnId txn : txns) lm.Release(txn);
}
BENCHMARK(BM_CollectRcVictims)->Arg(1)->Arg(16)->Arg(128);

void BM_RelationEscalationCheck(benchmark::State& state) {
  // Tuple-level acquire in a relation with many tuple holds elsewhere
  // plus a relation-level Rc (the hierarchy check's worst case).
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  TxnId neg = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(neg, {relation, kRelationLevel}, LockMode::kRc));
  std::vector<TxnId> txns;
  for (int64_t i = 0; i < state.range(0); ++i) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(
        lm.Acquire(txn, {relation, static_cast<WmeId>(i + 10)},
                   LockMode::kRc));
    txns.push_back(txn);
  }
  for (auto _ : state) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 5}, LockMode::kWa));
    lm.Release(txn);
  }
  lm.Release(neg);
  for (TxnId txn : txns) lm.Release(txn);
}
BENCHMARK(BM_RelationEscalationCheck)->Arg(4)->Arg(64);

}  // namespace
}  // namespace dbps

BENCHMARK_MAIN();
