// Lock-manager microbenchmarks (google-benchmark): the cost of the
// centralized lock manager's primitive operations under both protocols —
// the "minor modifications to conventional lock managers" the paper
// claims (§6). Before the microbenchmarks run, main() prints an
// abort-storm report: the §4.3 livelock (a hot relation-level Rc under
// continuous writers) with blocking escalation off vs on, showing the
// engine's robustness counters.

#include <benchmark/benchmark.h>

#include <atomic>
#include <cstdio>
#include <thread>
#include <vector>

#include "dbps.h"
#include "engine/busy_work.h"
#include "lock/lock_manager.h"
#include "report.h"
#include "util/logging.h"

namespace dbps {
namespace {

LockManager::Options Opts(LockProtocol protocol) {
  LockManager::Options options;
  options.protocol = protocol;
  return options;
}

void BM_UncontendedAcquireRelease(benchmark::State& state) {
  LockManager lm(Opts(static_cast<LockProtocol>(state.range(0))));
  SymbolId relation = Sym("r");
  for (auto _ : state) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 2}, LockMode::kRa));
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kWa));
    lm.Release(txn);
  }
}
BENCHMARK(BM_UncontendedAcquireRelease)
    ->Arg(static_cast<int>(LockProtocol::kTwoPhase))
    ->Arg(static_cast<int>(LockProtocol::kRcRaWa));

void BM_SharedRcHolders(benchmark::State& state) {
  // N transactions all hold Rc on the same tuple; measure the next
  // reader's acquire.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  const int64_t holders = state.range(0);
  std::vector<TxnId> txns;
  for (int64_t i = 0; i < holders; ++i) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    txns.push_back(txn);
  }
  for (auto _ : state) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    lm.Release(txn);
  }
  for (TxnId txn : txns) lm.Release(txn);
}
BENCHMARK(BM_SharedRcHolders)->Arg(1)->Arg(16)->Arg(128);

void BM_WaOverRcGrant(benchmark::State& state) {
  // The paper's key cell: Wa granted over an outstanding Rc — measured
  // as grant latency (never blocks under kRcRaWa).
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  TxnId reader = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(reader, {relation, 1}, LockMode::kRc));
  for (auto _ : state) {
    TxnId writer = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(writer, {relation, 1}, LockMode::kWa));
    lm.Release(writer);
  }
  lm.Release(reader);
}
BENCHMARK(BM_WaOverRcGrant);

void BM_CollectRcVictims(benchmark::State& state) {
  // Commit-time settlement cost with N outstanding Rc holders.
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  const int64_t readers = state.range(0);
  std::vector<TxnId> txns;
  for (int64_t i = 0; i < readers; ++i) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
    txns.push_back(txn);
  }
  TxnId writer = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(writer, {relation, 1}, LockMode::kWa));
  for (auto _ : state) {
    auto victims = lm.CollectRcVictims(writer);
    benchmark::DoNotOptimize(victims);
    DBPS_CHECK_EQ(victims.size(), static_cast<size_t>(readers));
  }
  lm.Release(writer);
  for (TxnId txn : txns) lm.Release(txn);
}
BENCHMARK(BM_CollectRcVictims)->Arg(1)->Arg(16)->Arg(128);

void BM_RelationEscalationCheck(benchmark::State& state) {
  // Tuple-level acquire in a relation with many tuple holds elsewhere
  // plus a relation-level Rc (the hierarchy check's worst case).
  LockManager lm(Opts(LockProtocol::kRcRaWa));
  SymbolId relation = Sym("r");
  TxnId neg = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(neg, {relation, kRelationLevel}, LockMode::kRc));
  std::vector<TxnId> txns;
  for (int64_t i = 0; i < state.range(0); ++i) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(
        lm.Acquire(txn, {relation, static_cast<WmeId>(i + 10)},
                   LockMode::kRc));
    txns.push_back(txn);
  }
  for (auto _ : state) {
    TxnId txn = lm.Begin();
    DBPS_CHECK_OK(lm.Acquire(txn, {relation, 5}, LockMode::kWa));
    lm.Release(txn);
  }
  lm.Release(neg);
  for (TxnId txn : txns) lm.Release(txn);
}
BENCHMARK(BM_RelationEscalationCheck)->Arg(4)->Arg(64);

// --- Uncontended fast-path sweep -------------------------------------------
//
// Single-threaded begin/acquire/release loops over DISTINCT tuples per
// mode (Rc, Ra, Wa each on their own object — re-locking the same tuple
// in a stronger mode is a self-upgrade, which deliberately falls back to
// the slow path). With nobody else holding anything, every grant should
// complete on the CAS fast path; the check.sh bench tier fails the run
// if fast_path_grants stays zero here.

void PrintUncontendedSweepReport(bench::JsonReport* report) {
  constexpr uint64_t kTxns = 20000;
  std::printf("uncontended sweep: %llu txns x {Rc,Ra,Wa} on distinct "
              "tuples, 1 thread\n",
              (unsigned long long)kTxns);
  std::printf("  %-10s %10s %12s %12s %9s %9s\n", "protocol", "wall_ms",
              "grants", "fast_grants", "fast%", "cas_retry");
  for (LockProtocol protocol :
       {LockProtocol::kTwoPhase, LockProtocol::kRcRaWa}) {
    const char* name =
        protocol == LockProtocol::kTwoPhase ? "2pl" : "rcrawa";
    LockManager lm(Opts(protocol));
    SymbolId relation = Sym("r");
    Stopwatch stopwatch;
    for (uint64_t i = 0; i < kTxns; ++i) {
      TxnId txn = lm.Begin();
      DBPS_CHECK_OK(lm.Acquire(txn, {relation, 1}, LockMode::kRc));
      DBPS_CHECK_OK(lm.Acquire(txn, {relation, 2}, LockMode::kRa));
      DBPS_CHECK_OK(lm.Acquire(txn, {relation, 3}, LockMode::kWa));
      lm.Release(txn);
    }
    const double wall_ms = stopwatch.ElapsedSeconds() * 1e3;
    LockManager::Stats stats = lm.GetStats();
    const double hit_pct =
        stats.acquired == 0
            ? 0.0
            : 100.0 * stats.fast_path_grants / stats.acquired;
    std::printf("  %-10s %10.1f %12llu %12llu %8.1f%% %9llu\n", name,
                wall_ms, (unsigned long long)stats.acquired,
                (unsigned long long)stats.fast_path_grants, hit_pct,
                (unsigned long long)stats.fast_path_cas_retries);
    bench::JsonRow row;
    row.workload = "uncontended_sweep";
    row.threads = 1;
    row.protocol = name;
    row.wall_ms = wall_ms;
    row.aborts = 0;
    row.committed = kTxns;
    row.fast_path_grants = stats.fast_path_grants;
    row.fast_hit_pct = hit_pct;
    report->Add(row);
  }
  std::printf("\n");
}

// --- Abort-storm report ----------------------------------------------------
//
// The `work` rule holds a relation-level Rc on `hot` (negated CE) while
// client sessions continuously insert into `hot`; under kRcRaWa+kAbort
// every client commit victimizes the in-flight firing (§4.3). Run once
// with escalation disabled and once enabled to show how blocking
// escalation bounds the abort streak.

constexpr const char* kAbortStormProgram = R"(
(relation job (id int) (state symbol))
(relation hot (n int))

(rule work :cost 400
  (job ^id <i> ^state todo)
  -(hot ^n 999999)
  -->
  (modify 1 ^state done))
)";

EngineStats RunAbortStorm(int escalate_after, size_t workers,
                          double* wall_ms) {
  constexpr size_t kClients = 3;
  constexpr uint64_t kWritesPerClient = 24;
  constexpr uint64_t kJobEvery = 8;

  WorkingMemory wm;
  auto rules = LoadProgram(kAbortStormProgram, &wm).ValueOrDie();

  SessionManager manager(&wm);
  ParallelEngineOptions options;
  options.num_workers = workers;
  options.protocol = LockProtocol::kRcRaWa;
  options.abort_policy = AbortPolicy::kAbort;
  options.escalate_after_aborts = escalate_after;
  options.retry_backoff_base = std::chrono::microseconds(20);
  options.retry_backoff_max = std::chrono::microseconds(500);
  options.external_source = &manager;
  ParallelEngine engine(&wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result{Status::Internal("not run")};
  Stopwatch stopwatch;
  std::thread serve([&] { result = engine.Run(); });

  std::vector<std::thread> clients;
  for (size_t c = 0; c < kClients; ++c) {
    clients.emplace_back([&, c] {
      auto session = manager.Connect("storm-" + std::to_string(c))
                         .ValueOrDie();
      for (uint64_t i = 0; i < kWritesPerClient; ++i) {
        Status st = session->Perform([&, i](Session& s) -> Status {
          DBPS_RETURN_NOT_OK(s.Begin());
          Delta delta;
          delta.Create(Sym("hot"),
                       {Value::Int(static_cast<int64_t>(c * 1000 + i))});
          if (i % kJobEvery == 0) {
            delta.Create(Sym("job"),
                         {Value::Int(static_cast<int64_t>(c * 1000 + i)),
                          Value::Symbol("todo")});
          }
          DBPS_RETURN_NOT_OK(s.Write(delta));
          return s.Commit().status();
        });
        DBPS_CHECK_OK(st);
        // Throttle so the writers stay active across the firing window
        // instead of finishing before the first firing even claims.
        SleepMicros(100);
      }
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();
  if (wall_ms != nullptr) *wall_ms = stopwatch.ElapsedSeconds() * 1e3;
  return result.ValueOrDie().stats;
}

void PrintAbortStormReport(bench::JsonReport* report) {
  const size_t workers = bench::MaxBenchThreads(4);
  std::printf(
      "abort-storm: hot relation-level Rc vs continuous writers "
      "(kRcRaWa+kAbort, %zu workers)\n",
      workers);
  std::printf("  %-22s %8s %8s %8s %10s %10s %12s\n", "escalation", "firings",
              "aborts", "retries", "maxstreak", "escalated", "backoff_us");
  for (int escalate_after : {0, 2}) {
    double wall_ms = 0;
    EngineStats stats = RunAbortStorm(escalate_after, workers, &wall_ms);
    char label[32];
    if (escalate_after == 0) {
      std::snprintf(label, sizeof(label), "off");
    } else {
      std::snprintf(label, sizeof(label), "after %d aborts",
                    escalate_after);
    }
    std::printf("  %-22s %8llu %8llu %8llu %10llu %10llu %12llu\n", label,
                (unsigned long long)stats.firings,
                (unsigned long long)stats.aborts,
                (unsigned long long)stats.firing_retries,
                (unsigned long long)stats.max_abort_streak,
                (unsigned long long)stats.escalations,
                (unsigned long long)stats.backoff_micros);
    bench::JsonRow row;
    row.workload = escalate_after == 0 ? "abort_storm_no_escalation"
                                       : "abort_storm_escalation";
    row.threads = workers;
    row.protocol = "rcrawa";
    row.wall_ms = wall_ms;
    row.aborts = stats.aborts;
    row.committed = stats.firings;
    uint64_t slow_grants = 0;
    for (const LockShardCounters& shard : stats.lock_shards) {
      row.fast_path_grants += shard.fast_path_grants;
      slow_grants += shard.acquires;
    }
    const uint64_t total_grants = row.fast_path_grants + slow_grants;
    row.fast_hit_pct = total_grants == 0
                           ? 0.0
                           : 100.0 * row.fast_path_grants / total_grants;
    row.batched_commits = stats.batched_commits;
    report->Add(row);
  }
  std::printf("\n");
}

}  // namespace
}  // namespace dbps

int main(int argc, char** argv) {
  dbps::bench::JsonReport report("lock_protocols");
  dbps::PrintUncontendedSweepReport(&report);
  dbps::PrintAbortStormReport(&report);
  report.WriteIfRequested();
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
