// Miss Manners at scale: the classic OPS5 match benchmark, generated for
// N guests and run end-to-end under each match algorithm. The run is the
// same greedy seating program as examples/programs/manners.dbps, so the
// firing count is ~N and the cost differences are pure match-phase cost
// ([FORG82]/[MIRA84] — the motivation the paper builds on).

#include <cstdio>
#include <string>

#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "report.h"
#include "util/random.h"
#include "util/stopwatch.h"

namespace {

using namespace dbps;

std::string MakeManners(int guests, uint64_t seed) {
  static const char* kHobbies[] = {"chess", "poker", "tennis", "golf"};
  Random rng(seed);
  std::string out = R"(
(relation guest   (name symbol) (sex symbol) (hobby symbol))
(relation seated  (seat int) (name symbol) (sex symbol) (hobby symbol))
(relation taken   (name symbol))
(relation phase   (now symbol) (next-seat int))
(relation count   (guests int))

(rule seat-first :priority 100
  (phase ^now start ^next-seat 1)
  (guest ^name <g> ^sex <sx> ^hobby <h>)
  -(taken ^name <g>)
  -->
  (make seated ^seat 1 ^name <g> ^sex <sx> ^hobby <h>)
  (make taken ^name <g>)
  (modify 1 ^now seat ^next-seat 2))

(rule seat-next :priority 90
  (phase ^now seat ^next-seat <n>)
  (seated ^name <prev> ^sex <psx> ^seat <s>)
  -(seated ^seat { > <s> })
  (guest ^name <prev> ^hobby <h>)
  (guest ^name <g> ^sex { <> <psx> } ^sex <gsx> ^hobby <h>)
  -(taken ^name <g>)
  -->
  (make seated ^seat <n> ^name <g> ^sex <gsx> ^hobby <h>)
  (modify 1 ^next-seat (+ <n> 1))
  (make taken ^name <g>))

(rule all-seated :priority 95
  (phase ^now seat ^next-seat <n>)
  (count ^guests { < <n> })
  -->
  (modify 1 ^now done)
  (halt))

(make phase ^now start ^next-seat 1)
)";
  out += "(make count ^guests " + std::to_string(guests) + ")\n";
  for (int g = 0; g < guests; ++g) {
    std::string name = "g" + std::to_string(g);
    const char* sex = (g % 2 == 0) ? "m" : "f";
    // Everyone shares the "mixer" hobby so a greedy chain always
    // extends, plus one random hobby for join fan-out.
    out += "(make guest ^name " + name + " ^sex " + sex +
           " ^hobby mixer)\n";
    out += "(make guest ^name " + name + " ^sex " + sex + " ^hobby " +
           kHobbies[rng.Uniform(4)] + ")\n";
  }
  return out;
}

void RunOne(MatcherKind matcher, int guests) {
  WorkingMemory wm;
  auto rules = LoadProgram(MakeManners(guests, 42), &wm).ValueOrDie();
  EngineOptions options;
  options.matcher = matcher;
  SingleThreadEngine engine(&wm, rules, options);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  double ms = stopwatch.ElapsedSeconds() * 1e3;
  DBPS_CHECK_EQ(wm.Count(Sym("seated")), static_cast<size_t>(guests));
  std::printf("  %-6s N=%-4d %8.1fms  (%llu firings, all %d seated)\n",
              MatcherKindToString(matcher), guests, ms,
              (unsigned long long)result.stats.firings, guests);
}

}  // namespace

int main() {
  bench::Header(
      "Miss Manners at scale — match-phase cost across algorithms\n"
      "(greedy seating; every run seats all N guests)");
  for (int guests : {8, 16, 32, 64}) {
    RunOne(MatcherKind::kRete, guests);
  }
  std::printf("\n");
  for (int guests : {8, 16, 32, 64}) {
    RunOne(MatcherKind::kTreat, guests);
  }
  std::printf("\n");
  for (int guests : {8, 16, 32}) {  // naive at 64 is painfully slow
    RunOne(MatcherKind::kNaive, guests);
  }
  std::printf(
      "\nexpected shape: Rete's incremental tokens win as N grows; TREAT\n"
      "pays seeded-join recomputation but no beta memory; the naive\n"
      "rematcher explodes (full rematch per firing) — the match-phase\n"
      "bottleneck [FORG82] the paper's parallel execute phase presumes\n"
      "solved.\n");
  return 0;
}
