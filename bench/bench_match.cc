// Match-phase substrate benchmarks (google-benchmark): the Rete
// network's incremental match against the naive full rematcher, as
// working memory grows — the [FORG82] motivation the paper builds on.

#include <benchmark/benchmark.h>

#include "lang/compiler.h"
#include "match/matcher.h"
#include "match/rete.h"
#include "util/logging.h"

namespace dbps {
namespace {

constexpr const char* kProgram = R"(
(relation item  (id int) (bucket int) (score int))
(relation probe (bucket int) (floor int))
(rule hit
  (probe ^bucket <b> ^floor <f>)
  (item ^bucket <b> ^score { >= <f> })
  -->
  (remove 1))
(rule pair
  (item ^id <a> ^bucket <b>)
  (item ^bucket <b> ^id { > <a> })
  -->
  (remove 1))
(rule lonely
  (probe ^bucket <b>)
  -(item ^bucket <b>)
  -->
  (remove 1))
)";

std::unique_ptr<WorkingMemory> BuildWm(int64_t items, RuleSetPtr* rules) {
  auto wm = std::make_unique<WorkingMemory>();
  auto rules_or = LoadProgram(kProgram, wm.get());
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  *rules = rules_or.ValueOrDie();
  for (int64_t i = 0; i < items; ++i) {
    DBPS_CHECK(wm->Insert("item", {Value::Int(i), Value::Int(i % 97),
                                   Value::Int(i % 13)})
                   .ok());
  }
  for (int64_t b = 0; b < 8; ++b) {
    DBPS_CHECK(wm->Insert("probe", {Value::Int(b), Value::Int(6)}).ok());
  }
  return wm;
}

/// One WM change (insert + delete of an item) fed to the matcher.
void ApplyOneChange(WorkingMemory* wm, Matcher* matcher, int64_t i) {
  Delta insert;
  insert.Create(Sym("item"),
                {Value::Int(1000000 + i), Value::Int(i % 97),
                 Value::Int(i % 13)});
  auto change = wm->Apply(insert);
  DBPS_CHECK(change.ok());
  matcher->ApplyChange(change.ValueOrDie());
  Delta remove;
  remove.Delete(change.ValueOrDie().added[0]->id());
  auto change2 = wm->Apply(remove);
  DBPS_CHECK(change2.ok());
  matcher->ApplyChange(change2.ValueOrDie());
}

void BM_ReteIncrementalChange(benchmark::State& state) {
  RuleSetPtr rules;
  auto wm = BuildWm(state.range(0), &rules);
  auto matcher = CreateMatcher(MatcherKind::kRete);
  DBPS_CHECK_OK(matcher->Initialize(rules, *wm));
  int64_t i = 0;
  for (auto _ : state) {
    ApplyOneChange(wm.get(), matcher.get(), i++);
  }
  state.SetLabel("conflict set " +
                 std::to_string(matcher->conflict_set().size()));
}
BENCHMARK(BM_ReteIncrementalChange)->Arg(100)->Arg(1000)->Arg(4000);

void BM_TreatIncrementalChange(benchmark::State& state) {
  RuleSetPtr rules;
  auto wm = BuildWm(state.range(0), &rules);
  auto matcher = CreateMatcher(MatcherKind::kTreat);
  DBPS_CHECK_OK(matcher->Initialize(rules, *wm));
  int64_t i = 0;
  for (auto _ : state) {
    ApplyOneChange(wm.get(), matcher.get(), i++);
  }
}
BENCHMARK(BM_TreatIncrementalChange)->Arg(100)->Arg(1000)->Arg(4000);

void BM_NaiveIncrementalChange(benchmark::State& state) {
  RuleSetPtr rules;
  auto wm = BuildWm(state.range(0), &rules);
  auto matcher = CreateMatcher(MatcherKind::kNaive);
  DBPS_CHECK_OK(matcher->Initialize(rules, *wm));
  int64_t i = 0;
  for (auto _ : state) {
    ApplyOneChange(wm.get(), matcher.get(), i++);
  }
}
BENCHMARK(BM_NaiveIncrementalChange)->Arg(100)->Arg(1000);

void BM_ReteInitialize(benchmark::State& state) {
  RuleSetPtr rules;
  auto wm = BuildWm(state.range(0), &rules);
  for (auto _ : state) {
    auto matcher = CreateMatcher(MatcherKind::kRete);
    DBPS_CHECK_OK(matcher->Initialize(rules, *wm));
    benchmark::DoNotOptimize(matcher->conflict_set().size());
  }
}
BENCHMARK(BM_ReteInitialize)->Arg(100)->Arg(1000);

void BM_NaiveInitialize(benchmark::State& state) {
  RuleSetPtr rules;
  auto wm = BuildWm(state.range(0), &rules);
  for (auto _ : state) {
    auto matcher = CreateMatcher(MatcherKind::kNaive);
    DBPS_CHECK_OK(matcher->Initialize(rules, *wm));
    benchmark::DoNotOptimize(matcher->conflict_set().size());
  }
}
BENCHMARK(BM_NaiveInitialize)->Arg(100)->Arg(1000);

}  // namespace
}  // namespace dbps

BENCHMARK_MAIN();
