// Multi-user throughput — K closed-loop client sessions transacting
// against one shared working memory while the parallel engine drains
// their inserts, swept over worker count and lock protocol.
//
// This is the workload the paper's title promises: a *database*
// production system serving concurrent users (§2). Each client commit is
// an external transaction through the engine's Rc/Ra/Wa commit path, so
// client writes and rule firings interleave in one committed log, which
// is replay-validated (Definition 3.2) for every configuration.
//
// Every fifth client transaction also takes a repeatable read over the
// output relation, so under kRcRaWa the serve rule's commits victimize
// client readers (the §4.3 Rc–Wa conflict) and under kTwoPhase they
// block behind them.

#include <atomic>
#include <cstdio>
#include <mutex>
#include <thread>
#include <vector>

#include "dbps.h"
#include "match/partitioned_matcher.h"
#include "report.h"

namespace {

using namespace dbps;

constexpr size_t kSessions = 6;
constexpr uint64_t kOpsPerSession = 25;
constexpr int kMaxAttempts = 64;

constexpr const char* kProgram = R"(
(relation inbox (id int))
(relation done (id int))

(rule serve :cost 400
  (inbox ^id <i>)
  -->
  (remove 1)
  (make done ^id <i>))
)";

struct Outcome {
  double ms = 0;
  uint64_t writes_committed = 0;  // client write txns that committed
  uint64_t client_commits = 0;    // engine view (includes read-only txns)
  uint64_t rc_victims = 0;
  uint64_t firings = 0;
  uint64_t rule_aborts = 0;
  uint64_t fast_path_grants = 0;  // lock grants on the CAS fast path
  uint64_t slow_path_grants = 0;  // grants under the shard mutex
  uint64_t batched_commits = 0;   // commits folded into multi-commit batches
  int peak_parallel = 0;
  bool valid = false;
  bench::LatencyRecorder latency;  // per committed write txn, ms

  double FastHitPct() const {
    const uint64_t total = fast_path_grants + slow_path_grants;
    return total == 0 ? 0.0 : 100.0 * fast_path_grants / total;
  }
};

Outcome Run(size_t workers, LockProtocol protocol) {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  auto pristine = wm.Clone();

  SessionManager manager(&wm);
  ParallelEngineOptions options;
  options.num_workers = workers;
  options.protocol = protocol;
  options.external_source = &manager;
  ParallelEngine engine(&wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result{Status::Internal("not run")};
  Stopwatch stopwatch;
  std::thread serve([&] { result = engine.Run(); });

  std::atomic<uint64_t> writes_committed{0};
  std::mutex latency_mu;
  bench::LatencyRecorder latency;
  std::vector<std::thread> clients;
  for (size_t c = 0; c < kSessions; ++c) {
    clients.emplace_back([&, c] {
      auto session = manager.Connect("bench-" + std::to_string(c))
                         .ValueOrDie();
      bench::LatencyRecorder local;
      for (uint64_t i = 0; i < kOpsPerSession; ++i) {
        Stopwatch txn_clock;
        for (int attempt = 0; attempt < kMaxAttempts; ++attempt) {
          if (!session->Begin().ok()) break;
          if (i % 5 == 0) {
            // Repeatable read held across think time: relation Rc on
            // `done` stays until commit, so the serve rule's inserts
            // conflict with it — blocking under 2PL, victimizing the
            // reader under rcrawa (§4.3).
            if (!session->Read("done").ok()) continue;
            std::this_thread::sleep_for(std::chrono::microseconds(500));
          }
          Delta delta;
          delta.Create(Sym("inbox"),
                       {Value::Int(static_cast<int64_t>(
                           c * 1000000 + i))});
          if (!session->Write(delta).ok()) continue;
          if (session->Commit().ok()) {
            writes_committed.fetch_add(1);
            // Latency of the whole transaction including retries — what
            // a user of the closed-loop session experiences.
            local.Add(txn_clock.ElapsedSeconds() * 1e3);
            break;
          }
        }
      }
      session->Close();
      std::lock_guard<std::mutex> lock(latency_mu);
      latency.Merge(local);
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();
  serve.join();

  Outcome out;
  out.ms = stopwatch.ElapsedSeconds() * 1e3;
  const RunResult& run = result.ValueOrDie();
  auto stats = manager.GetStats();
  out.writes_committed = writes_committed.load();
  out.client_commits = run.stats.client_commits;
  out.rc_victims = stats.closed_sessions.rc_victim_aborts;
  out.firings = run.stats.firings;
  out.rule_aborts = run.stats.aborts;
  for (const LockShardCounters& shard : run.stats.lock_shards) {
    out.fast_path_grants += shard.fast_path_grants;
    out.slow_path_grants += shard.acquires;
  }
  out.batched_commits = run.stats.batched_commits;
  out.peak_parallel = run.stats.peak_parallel_executions;
  out.latency = std::move(latency);
  out.valid = ValidateReplay(pristine.get(), rules, run.log).ok() &&
              wm.Count(Sym("inbox")) == 0 &&
              wm.Count(Sym("done")) == out.writes_committed;
  return out;
}

// ---------------------------------------------------------------------
// Matcher-phase sweep: the partitioned match phase in isolation, serial
// reference vs relation-hash partitions with 1 (ablation) .. N morsel
// workers, over a multi-relation workload with cross-partition joins.
// Per-batch propagation latency feeds the percentile columns.

constexpr const char* kMatchProgram = R"(
(relation order (id int) (qty int))
(relation stock (id int) (qty int))
(relation ship (id int))
(relation alert (id int))

(rule fill
  (order ^id <i> ^qty <q>)
  (stock ^id <i> ^qty { > 0 })
  -->
  (remove 1))

(rule low
  (stock ^id <i> ^qty { < 2 })
  -->
  (remove 1))

(rule shipped
  (ship ^id <i>)
  (order ^id <i> ^qty <q>)
  -->
  (remove 1))

(rule watch
  (alert ^id <i>)
  -->
  (remove 1))
)";

constexpr int kMatchBatches = 400;

struct MatchOutcome {
  double ms = 0;                   // whole sweep, wall
  uint64_t batches = 0;
  uint64_t morsels = 0;
  uint64_t handoffs = 0;
  uint64_t splits = 0;
  bench::LatencyRecorder latency;  // per-batch propagation, ms
  std::string dump;                // final canonical conflict-set dump
  bool valid = false;              // final set matches the reference dump
};

/// One deterministic batch against `wm` (same generator for every
/// configuration, so all sweeps consume the identical change stream).
std::vector<WmChange> MatchBatch(WorkingMemory* wm, Random* rng) {
  Delta delta;
  const size_t ops = 2 + rng->Uniform(5);
  for (size_t op = 0; op < ops; ++op) {
    switch (rng->Uniform(4)) {
      case 0:
        delta.Create(Sym("order"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(32))),
                      Value::Int(static_cast<int64_t>(rng->Uniform(5)))});
        break;
      case 1:
        delta.Create(Sym("stock"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(32))),
                      Value::Int(static_cast<int64_t>(rng->Uniform(4)))});
        break;
      case 2:
        delta.Create(Sym("ship"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(32)))});
        break;
      default:
        delta.Create(Sym("alert"),
                     {Value::Int(static_cast<int64_t>(rng->Uniform(32)))});
        break;
    }
  }
  auto change_or = wm->Apply(delta);
  DBPS_CHECK(change_or.ok()) << change_or.status();
  return {std::move(change_or).ValueOrDie()};
}

/// partitions == 0 selects the serial Rete reference. `expected` is the
/// reference config's final conflict-set dump; pass nullptr for the
/// reference run itself, which validates against a freshly built serial
/// matcher over the final WM state — every config consumes the identical
/// change stream, so one ground-truth rebuild covers the whole sweep
/// (the per-config rebuild this used to do re-ran the serial baseline
/// once per worker count for nothing).
MatchOutcome RunMatchPhase(size_t partitions, size_t workers,
                           const std::string* expected) {
  WorkingMemory wm;
  auto rules = LoadProgram(kMatchProgram, &wm).ValueOrDie();

  std::unique_ptr<Matcher> matcher;
  PartitionedMatcher* partitioned = nullptr;
  if (partitions == 0) {
    matcher = CreateMatcher(MatcherKind::kRete);
  } else {
    PartitionedMatcher::Options options;
    options.num_partitions = partitions;
    options.num_workers = workers;
    auto owned = std::make_unique<PartitionedMatcher>(options);
    partitioned = owned.get();
    matcher = std::move(owned);
  }
  DBPS_CHECK(matcher->Initialize(rules, wm).ok());

  MatchOutcome out;
  Random rng(20260808);
  Stopwatch sweep;
  for (int b = 0; b < kMatchBatches; ++b) {
    const std::vector<WmChange> changes = MatchBatch(&wm, &rng);
    Stopwatch batch_clock;
    matcher->ApplyChanges(changes);
    out.latency.Add(batch_clock.ElapsedSeconds() * 1e3);
  }
  out.ms = sweep.ElapsedSeconds() * 1e3;
  out.batches = kMatchBatches;
  if (partitioned != nullptr) {
    const PartitionedMatcher::Stats stats = partitioned->GetStats();
    out.morsels = stats.morsels;
    out.handoffs = stats.handoffs;
    out.splits = stats.splits;
  }
  out.dump = matcher->conflict_set().CanonicalDump();
  if (expected != nullptr) {
    out.valid = out.dump == *expected;
  } else {
    // Ground truth, computed once per sweep: a fresh serial matcher over
    // the final WM state must agree with the incremental set.
    auto reference = CreateMatcher(MatcherKind::kRete);
    DBPS_CHECK(reference->Initialize(rules, wm).ok());
    out.valid = reference->conflict_set().CanonicalDump() == out.dump;
  }
  return out;
}

void SweepMatchPhase(bench::JsonReport* report, size_t max_workers) {
  bench::Section(
      "match phase — serial Rete vs relation-hash partitions (8), " +
      std::to_string(kMatchBatches) + " batches, 4 relations");
  std::printf("\n  %-12s %-7s %9s %8s %8s %8s %8s %6s\n", "matcher",
              "workers", "ms", "morsels", "handoffs", "p50us", "p99us",
              "valid");

  const MatchOutcome serial = RunMatchPhase(0, 1, nullptr);
  double serial_ms = serial.ms;
  auto emit = [&](const char* name, const char* proto, size_t workers,
                  const MatchOutcome& out) {
    std::printf("  %-12s %-7zu %9.2f %8llu %8llu %8.1f %8.1f %6s\n", name,
                workers, out.ms, (unsigned long long)out.morsels,
                (unsigned long long)out.handoffs,
                out.latency.Percentile(50) * 1e3,
                out.latency.Percentile(99) * 1e3, out.valid ? "OK" : "FAIL");
    DBPS_CHECK(out.valid) << "match phase diverged for " << name
                          << " workers=" << workers;
    bench::JsonRow row;
    row.workload = "match_phase";
    row.threads = workers;
    row.protocol = proto;
    row.wall_ms = out.ms;
    row.committed = out.batches;
    row.SetLatencies(out.latency);
    report->Add(row);
  };
  emit("serial", "serial", 1, serial);
  for (size_t workers : {1u, 2u, 4u, 8u}) {
    if (workers > max_workers) continue;
    const MatchOutcome out = RunMatchPhase(8, workers, &serial.dump);
    emit(workers == 1 ? "part8-ablate" : "part8",
         workers == 1 ? "ablation" : "partitioned", workers, out);
    if (workers > 1) {
      std::printf("               %zu workers: %.2fx vs serial\n", workers,
                  serial_ms / out.ms);
    }
  }
}

// ---------------------------------------------------------------------
// Skew sweep: a single hot relation holding thousands of distinct join
// keys, self-joined on the first field. Relation-hash partitioning is
// useless here — every change lands in the one home partition, so the
// partitioned matcher degrades to the serial scan plus merge overhead.
// Value-hash splitting is the fix: S sub-partitions each hold ~1/S of
// the alpha memory, so the linear join scans that dominate this
// workload shrink by S. The acceptance gate below requires the split
// configuration to beat the unsplit partitioned matcher by >= 1.3x
// wall time with a byte-identical conflict-set dump.

constexpr const char* kSkewProgram = R"(
(relation hot (k int) (v int))

(rule pair
  (hot ^k <x> ^v <a>)
  (hot ^k <x> ^v <b>)
  -->
  (remove 1))
)";

constexpr int kSkewPreload = 2000;
constexpr int kSkewBatches = 800;
constexpr size_t kSkewSplitWays = 4;

/// partitions == 0 selects the serial Rete reference; split_ways > 0 arms
/// value-hash splitting with an immediate trigger (streak 1), so the
/// sweep pays the one-time sub-partition rebuild inside the timed
/// region — the honest accounting for a matcher that splits mid-run.
MatchOutcome RunSkewPhase(size_t partitions, size_t workers,
                          size_t split_ways, const std::string* expected) {
  WorkingMemory wm;
  auto rules = LoadProgram(kSkewProgram, &wm).ValueOrDie();

  {
    // Preload distinct keys so the alpha memories are deep but the
    // conflict set stays small until the random stream adds duplicates.
    Delta preload;
    for (int i = 0; i < kSkewPreload; ++i) {
      preload.Create(Sym("hot"), {Value::Int(i), Value::Int(i % 7)});
    }
    DBPS_CHECK(wm.Apply(preload).ok());
  }

  std::unique_ptr<Matcher> matcher;
  PartitionedMatcher* partitioned = nullptr;
  if (partitions == 0) {
    matcher = CreateMatcher(MatcherKind::kRete);
  } else {
    PartitionedMatcher::Options options;
    options.num_partitions = partitions;
    options.num_workers = workers;
    if (split_ways > 0) {
      options.split_hot = true;
      options.split_ways = split_ways;
      options.split_streak = 1;
      options.split_share = 0.5;
    }
    auto owned = std::make_unique<PartitionedMatcher>(options);
    partitioned = owned.get();
    matcher = std::move(owned);
  }
  DBPS_CHECK(matcher->Initialize(rules, wm).ok());

  MatchOutcome out;
  Random rng(20260809);
  Stopwatch sweep;
  for (int b = 0; b < kSkewBatches; ++b) {
    Delta delta;
    const size_t ops = 2 + rng.Uniform(4);
    for (size_t op = 0; op < ops; ++op) {
      delta.Create(Sym("hot"),
                   {Value::Int(static_cast<int64_t>(
                        rng.Uniform(kSkewPreload))),
                    Value::Int(static_cast<int64_t>(rng.Uniform(1000)))});
    }
    auto change_or = wm.Apply(delta);
    DBPS_CHECK(change_or.ok()) << change_or.status();
    const std::vector<WmChange> changes{std::move(change_or).ValueOrDie()};
    Stopwatch batch_clock;
    matcher->ApplyChanges(changes);
    out.latency.Add(batch_clock.ElapsedSeconds() * 1e3);
  }
  out.ms = sweep.ElapsedSeconds() * 1e3;
  out.batches = kSkewBatches;
  if (partitioned != nullptr) {
    const PartitionedMatcher::Stats stats = partitioned->GetStats();
    out.morsels = stats.morsels;
    out.handoffs = stats.handoffs;
    out.splits = stats.splits;
  }
  out.dump = matcher->conflict_set().CanonicalDump();
  if (expected != nullptr) {
    out.valid = out.dump == *expected;
  } else {
    auto reference = CreateMatcher(MatcherKind::kRete);
    DBPS_CHECK(reference->Initialize(rules, wm).ok());
    out.valid = reference->conflict_set().CanonicalDump() == out.dump;
  }
  return out;
}

void SweepMatchSkew(bench::JsonReport* report, size_t max_workers) {
  const size_t workers = max_workers < 8 ? max_workers : 8;
  bench::Section(
      "match skew — one hot relation, " + std::to_string(kSkewPreload) +
      " preloaded keys, self-join on ^k; value-hash split (" +
      std::to_string(kSkewSplitWays) + " ways) vs unsplit partitions");
  std::printf("\n  %-12s %-7s %9s %8s %8s %8s %8s %6s\n", "matcher",
              "workers", "ms", "morsels", "splits", "p50us", "p99us",
              "valid");

  auto emit = [&](const char* name, const char* proto, size_t threads,
                  const MatchOutcome& out) {
    std::printf("  %-12s %-7zu %9.2f %8llu %8llu %8.1f %8.1f %6s\n", name,
                threads, out.ms, (unsigned long long)out.morsels,
                (unsigned long long)out.splits,
                out.latency.Percentile(50) * 1e3,
                out.latency.Percentile(99) * 1e3, out.valid ? "OK" : "FAIL");
    DBPS_CHECK(out.valid) << "match skew diverged for " << name;
    bench::JsonRow row;
    row.workload = "match_skew";
    row.threads = threads;
    row.protocol = proto;
    row.wall_ms = out.ms;
    row.committed = out.batches;
    row.SetLatencies(out.latency);
    report->Add(row);
  };

  const MatchOutcome serial = RunSkewPhase(0, 1, 0, nullptr);
  emit("serial", "serial", 1, serial);
  const MatchOutcome unsplit = RunSkewPhase(8, workers, 0, &serial.dump);
  emit("part8", "partitioned", workers, unsplit);
  const MatchOutcome split =
      RunSkewPhase(8, workers, kSkewSplitWays, &serial.dump);
  emit("part8-split", "split", workers, split);

  std::printf("               split vs unsplit: %.2fx, vs serial: %.2fx\n",
              unsplit.ms / split.ms, serial.ms / split.ms);
  DBPS_CHECK_GE(split.splits, 1u)
      << "hot partition never split under a pure single-relation skew";
  // Acceptance gate: splitting must buy >= 1.3x match-phase throughput
  // over the unsplit partitioned matcher on this workload.
  DBPS_CHECK(split.ms * 1.3 <= unsplit.ms)
      << "value-hash splitting missed the 1.3x gate: split=" << split.ms
      << "ms unsplit=" << unsplit.ms << "ms";
}

}  // namespace

int main() {
  bench::Header(
      "Multi-user sessions — " + std::to_string(kSessions) +
      " closed-loop clients x " + std::to_string(kOpsPerSession) +
      " txns, serve rule @400us\n"
      "(client transactions interleave with rule firings; every log is\n"
      "replay-validated per Definition 3.2)");

  std::printf(
      "\n  %-8s %-7s %9s %10s %8s %8s %8s %8s %8s %8s %8s %6s %6s\n",
      "protocol", "workers", "ms", "txn/s", "commits", "victims", "firings",
      "fast%", "batched", "p50ms", "p99ms", "peak", "valid");

  const size_t max_workers = bench::MaxBenchThreads(8);
  bench::JsonReport report("multi_user");
  bool peak_parallel_seen = false;
  for (LockProtocol protocol :
       {LockProtocol::kTwoPhase, LockProtocol::kRcRaWa}) {
    const char* name =
        protocol == LockProtocol::kTwoPhase ? "2pl" : "rcrawa";
    for (size_t workers : {1u, 2u, 4u, 8u}) {
      if (workers > max_workers) continue;
      Outcome out = Run(workers, protocol);
      std::printf(
          "  %-8s %-7zu %9.1f %10.0f %8llu %8llu %8llu %7.1f%% %8llu "
          "%8.2f %8.2f %6d %6s\n",
          name, workers, out.ms, out.client_commits / (out.ms / 1e3),
          (unsigned long long)out.client_commits,
          (unsigned long long)out.rc_victims,
          (unsigned long long)out.firings, out.FastHitPct(),
          (unsigned long long)out.batched_commits,
          out.latency.Percentile(50), out.latency.Percentile(99),
          out.peak_parallel, out.valid ? "OK" : "FAIL");
      DBPS_CHECK(out.valid) << "replay validation failed for " << name
                            << " workers=" << workers;
      DBPS_CHECK_EQ(out.writes_committed, kSessions * kOpsPerSession);
      if (out.peak_parallel > 1 && out.client_commits > 0) {
        peak_parallel_seen = true;
      }
      bench::JsonRow row;
      row.workload = "closed_loop_sessions";
      row.threads = workers;
      row.protocol = name;
      row.wall_ms = out.ms;
      row.aborts = out.rule_aborts + out.rc_victims;
      row.committed = out.client_commits + out.firings;
      row.fast_path_grants = out.fast_path_grants;
      row.fast_hit_pct = out.FastHitPct();
      row.batched_commits = out.batched_commits;
      row.SetLatencies(out.latency);
      report.Add(row);
    }
  }
  SweepMatchPhase(&report, max_workers);
  SweepMatchSkew(&report, max_workers);

  report.WriteIfRequested();
  DBPS_CHECK(peak_parallel_seen || max_workers <= 1)
      << "no configuration achieved parallel rule firings alongside "
         "client commits";

  std::printf(
      "\nrule firings overlap client transactions (peak > 1 with\n"
      "nonzero client commits); under rcrawa the serve rule's commits\n"
      "victimize repeatable readers instead of blocking behind them.\n");
  return 0;
}
