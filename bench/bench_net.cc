// Network front-end throughput and latency — pipelined binary-protocol
// clients over loopback against the epoll server, with a durable journal
// on a simulated device so group commit's fsync amortization is the
// measured effect.
//
// Phase 1 (closed loop): C connections each run T transactions; every
// transaction is a 3-frame pipelined burst (Begin + Write + Commit) so a
// connection has a full transaction in flight at all times. Client
// threads multiplex their connections over poll() — one thread drives
// dozens of sockets, the shape the front-end is built for. The phase
// runs three ways over identical workloads:
//
//   in_process  — sessions directly on the SessionManager, per-commit
//                 fsync (the pre-network baseline),
//   ungrouped   — over the wire, per-commit fsync,
//   group       — over the wire, one fsync per engine commit batch.
//
// Asserted invariants (the PR's acceptance bar):
//   * group-commit network throughput >= the in-process per-commit-fsync
//     baseline (the wire costs less than the fsyncs it amortizes away),
//   * fsyncs/commit < 0.25 with group commit on,
//   * grouped and ungrouped runs journal the same line multiset —
//     grouping changes fsync cadence, never bytes,
//   * every journal replays to the final database state.
//
// Phase 2 (open loop): transactions are launched on idle connections at
// a fixed target rate regardless of completions; latency is measured
// from the *scheduled* launch time (coordinated-omission safe) to the
// CommitOk. p50/p95/p99 land in BENCH_net.json.
//
// --smoke scales everything down for the check.sh net tier and gates
// open-loop p99 < 50ms at the smoke target rate.

#include <poll.h>

#include <algorithm>
#include <chrono>
#include <cstdio>
#include <cstring>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "dbps.h"
#include "report.h"

namespace {

using namespace dbps;
using net::DbpsClient;
using net::Frame;
using net::FrameType;

constexpr const char* kProgram = R"(
(relation order (id int))
)";

constexpr auto kFsyncCost = std::chrono::microseconds(300);

struct Config {
  size_t connections = 256;
  size_t client_threads = 4;
  size_t txns_per_conn = 8;
  size_t server_loops = 8;
  // Dispatchers bound the commits that can wait in the sequencer at
  // once, which bounds the group size an fsync can cover — give the
  // bench enough to let batches reach the engine's commit_batch_limit.
  size_t server_dispatchers = 16;
  double open_loop_rate = 2000;  // txn/s
  size_t open_loop_txns = 2000;
  bool smoke = false;
};

std::string OrderLine(uint64_t id) {
  return "(delta (make order " + std::to_string(id) + "))";
}

/// Engine + manager (+ optional NetServer) with a durable journal feed.
class Server {
 public:
  Server(const Config& config, bool group_commit, bool with_net) {
    rules_ = LoadProgram(kProgram, &wm_).ValueOrDie();
    pristine_ = wm_.Clone();
    DurabilityOptions durability;
    durability.group_commit = group_commit;
    durability.simulated_fsync_cost = kFsyncCost;
    DBPS_CHECK_OK(feed_.EnableDurability(durability));
    ServerOptions server_options;
    server_options.max_sessions = 2 * config.connections + 16;
    server_options.durable_feed = &feed_;
    manager_ =
        std::make_unique<SessionManager>(&wm_, std::move(server_options));
    ParallelEngineOptions engine_options;
    engine_options.num_workers = 2;
    engine_options.external_source = manager_.get();
    engine_options.base.observer = feed_.MakeObserver();
    engine_ = std::make_unique<ParallelEngine>(&wm_, rules_, engine_options);
    manager_->BindEngine(engine_.get());
    thread_ = std::thread([this] { result_ = engine_->Run(); });
    if (with_net) {
      net::NetServerOptions net_options;
      net_options.num_loops = config.server_loops;
      net_options.num_dispatchers = config.server_dispatchers;
      net_ = std::make_unique<net::NetServer>(manager_.get(), net_options);
      DBPS_CHECK_OK(net_->Start());
    }
  }

  ~Server() { Finish(); }

  /// Tears down (net, manager, engine — in that order) and returns the
  /// engine's run result. Idempotent.
  const RunResult& Finish() {
    if (net_ != nullptr) net_->Stop();
    manager_->Close();
    if (thread_.joinable()) thread_.join();
    DBPS_CHECK(result_.ok()) << result_.status().ToString();
    return result_.ValueOrDie();
  }

  uint16_t port() const { return net_->port(); }
  SessionManager& manager() { return *manager_; }
  JournalFeed& feed() { return feed_; }

  /// Replays the feed's journal against a pristine clone and checks the
  /// expected row count — every bench mode must pass this.
  void ValidateJournal(uint64_t expected_rows) {
    auto replay = pristine_->Clone();
    DBPS_CHECK_OK(ReplayJournal(feed_.TextFrom(0), replay.get()));
    DBPS_CHECK_EQ(replay->Count(Sym("order")), expected_rows);
  }

 private:
  WorkingMemory wm_;
  RuleSetPtr rules_;
  std::unique_ptr<WorkingMemory> pristine_;
  JournalFeed feed_;
  std::unique_ptr<SessionManager> manager_;
  std::unique_ptr<ParallelEngine> engine_;
  std::unique_ptr<net::NetServer> net_;
  std::thread thread_;
  StatusOr<RunResult> result_{Status::Internal("engine not run")};
};

struct PhaseResult {
  double wall_ms = 0;
  uint64_t committed = 0;
  uint64_t fsyncs = 0;
  uint64_t batched_commits = 0;
  bench::LatencyRecorder latency;
  std::vector<std::string> journal_lines;

  double TxnPerSec() const { return committed / (wall_ms / 1e3); }
  double FsyncsPerCommit() const {
    return committed == 0 ? 0.0 : static_cast<double>(fsyncs) / committed;
  }
};

// --- phase 1: closed loop ------------------------------------------------

/// One connection's in-flight transaction: the request id of the commit
/// frame terminating the current 3-frame burst (0 = idle).
struct ConnState {
  std::unique_ptr<DbpsClient> client;
  uint64_t commit_id = 0;
  size_t done = 0;
  Stopwatch clock;
};

void StartTxn(ConnState* conn, uint64_t txn_id) {
  conn->clock.Restart();
  std::string body;
  net::PutString(&body, OrderLine(txn_id));
  DBPS_CHECK_OK(conn->client->Send(FrameType::kBegin).status());
  DBPS_CHECK_OK(conn->client->Send(FrameType::kWrite, body).status());
  conn->commit_id =
      conn->client->Send(FrameType::kCommit).ValueOrDie();
}

/// Drives `conns` connections to `txns` transactions each, multiplexed
/// over poll(). Returns per-transaction latencies.
bench::LatencyRecorder DriveClosedLoop(std::vector<ConnState>* conns,
                                       size_t txns, uint64_t id_base) {
  bench::LatencyRecorder latency;
  size_t remaining = conns->size() * txns;
  for (size_t c = 0; c < conns->size(); ++c) {
    StartTxn(&(*conns)[c], id_base + c * txns);
  }
  std::vector<pollfd> fds(conns->size());
  while (remaining > 0) {
    for (size_t c = 0; c < conns->size(); ++c) {
      ConnState& conn = (*conns)[c];
      fds[c].fd = conn.done < txns ? conn.client->fd() : -1;
      fds[c].events = POLLIN;
      fds[c].revents = 0;
    }
    const int ready = ::poll(fds.data(), fds.size(), 1000);
    DBPS_CHECK(ready >= 0 || errno == EINTR) << std::strerror(errno);
    for (size_t c = 0; c < conns->size(); ++c) {
      if ((fds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      ConnState& conn = (*conns)[c];
      Frame frame;
      for (;;) {
        auto got = conn.client->TryNext(&frame);
        DBPS_CHECK_OK(got.status());
        if (!got.ValueOrDie()) break;
        if (frame.request_id != conn.commit_id) {
          // Begin/Write ack mid-burst; must be a plain Ok.
          DBPS_CHECK_OK(DbpsClient::ExpectOk(frame));
          continue;
        }
        DBPS_CHECK_OK(DbpsClient::ExpectCommitOk(frame).status());
        latency.Add(conn.clock.ElapsedSeconds() * 1e3);
        ++conn.done;
        --remaining;
        if (conn.done < txns) {
          StartTxn(&conn, id_base + c * txns + conn.done);
        } else {
          conn.commit_id = 0;
        }
      }
    }
  }
  return latency;
}

PhaseResult RunNetworkClosedLoop(const Config& config, bool group_commit) {
  Server server(config, group_commit, /*with_net=*/true);
  const size_t per_thread = config.connections / config.client_threads;
  std::mutex mu;
  PhaseResult out;
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < config.client_threads; ++t) {
    threads.emplace_back([&, t] {
      std::vector<ConnState> conns(per_thread);
      for (size_t c = 0; c < per_thread; ++c) {
        conns[c].client =
            DbpsClient::Connect("127.0.0.1", server.port(),
                                "bench-" + std::to_string(t) + "-" +
                                    std::to_string(c))
                .ValueOrDie();
      }
      bench::LatencyRecorder latency = DriveClosedLoop(
          &conns, config.txns_per_conn,
          /*id_base=*/(t + 1) * 1000000);
      for (ConnState& conn : conns) (void)conn.client->Goodbye();
      std::lock_guard<std::mutex> lock(mu);
      out.latency.Merge(latency);
    });
  }
  for (auto& t : threads) t.join();
  out.wall_ms = wall.ElapsedSeconds() * 1e3;
  out.committed = config.connections * config.txns_per_conn;
  out.batched_commits = server.Finish().stats.batched_commits;

  DurabilityStats stats = server.feed().durability();
  DBPS_CHECK_EQ(stats.records_synced, out.committed);
  DBPS_CHECK_EQ(stats.sync_failures, 0u);
  out.fsyncs = stats.fsyncs;
  out.journal_lines = server.feed().LinesFrom(0);
  server.ValidateJournal(out.committed);
  return out;
}

PhaseResult RunInProcessBaseline(const Config& config) {
  // Same transaction count, sessions driven directly — what the system
  // could do before the network front-end existed: per-commit fsync,
  // no wire. One driver thread per client thread the network phase uses.
  Server server(config, /*group_commit=*/false, /*with_net=*/false);
  const size_t sessions = config.client_threads * 2;
  const size_t total = config.connections * config.txns_per_conn;
  const size_t per_session = total / sessions;
  std::mutex mu;
  PhaseResult out;
  Stopwatch wall;
  std::vector<std::thread> threads;
  for (size_t t = 0; t < sessions; ++t) {
    threads.emplace_back([&, t] {
      auto session = server.manager()
                         .Connect("base-" + std::to_string(t))
                         .ValueOrDie();
      bench::LatencyRecorder latency;
      for (size_t i = 0; i < per_session; ++i) {
        Stopwatch clock;
        Delta delta;
        delta.Create(Sym("order"),
                     {Value::Int(static_cast<int64_t>(
                         (t + 1) * 10000000 + i))});
        DBPS_CHECK_OK(session->Begin());
        DBPS_CHECK_OK(session->Write(delta));
        DBPS_CHECK_OK(session->Commit().status());
        latency.Add(clock.ElapsedSeconds() * 1e3);
      }
      session->Close();
      std::lock_guard<std::mutex> lock(mu);
      out.latency.Merge(latency);
    });
  }
  for (auto& t : threads) t.join();
  out.wall_ms = wall.ElapsedSeconds() * 1e3;
  out.committed = sessions * per_session;
  DurabilityStats stats = server.feed().durability();
  out.fsyncs = stats.fsyncs;
  server.ValidateJournal(out.committed);
  return out;
}

// --- phase 2: open loop --------------------------------------------------

PhaseResult RunOpenLoop(const Config& config) {
  Server server(config, /*group_commit=*/true, /*with_net=*/true);
  const size_t conns_count =
      std::min<size_t>(config.connections, 64);
  std::vector<ConnState> conns(conns_count);
  std::vector<double> launch_ms(conns_count, 0);
  for (size_t c = 0; c < conns_count; ++c) {
    conns[c].client = DbpsClient::Connect("127.0.0.1", server.port(),
                                          "open-" + std::to_string(c))
                          .ValueOrDie();
  }
  PhaseResult out;
  const double interval_ms = 1e3 / config.open_loop_rate;
  size_t launched = 0, completed = 0;
  Stopwatch wall;
  std::vector<pollfd> fds(conns_count);
  while (completed < config.open_loop_txns) {
    const double now_ms = wall.ElapsedSeconds() * 1e3;
    // Launch every transaction whose scheduled time has arrived, each on
    // an idle connection. Open loop: the schedule does not slow down when
    // the server lags; a late launch is charged its queueing delay
    // because latency counts from the *scheduled* time.
    while (launched < config.open_loop_txns &&
           launched * interval_ms <= now_ms) {
      ConnState* idle = nullptr;
      size_t idle_index = 0;
      for (size_t c = 0; c < conns_count; ++c) {
        if (conns[c].commit_id == 0) {
          idle = &conns[c];
          idle_index = c;
          break;
        }
      }
      if (idle == nullptr) break;  // all busy; completions will free one
      StartTxn(idle, 900000000 + launched);
      launch_ms[idle_index] = launched * interval_ms;
      ++launched;
    }
    for (size_t c = 0; c < conns_count; ++c) {
      fds[c].fd = conns[c].commit_id != 0 ? conns[c].client->fd() : -1;
      fds[c].events = POLLIN;
      fds[c].revents = 0;
    }
    const int ready = ::poll(fds.data(), fds.size(), 1);
    DBPS_CHECK(ready >= 0 || errno == EINTR) << std::strerror(errno);
    for (size_t c = 0; c < conns_count; ++c) {
      if ((fds[c].revents & (POLLIN | POLLHUP | POLLERR)) == 0) continue;
      Frame frame;
      for (;;) {
        auto got = conns[c].client->TryNext(&frame);
        DBPS_CHECK_OK(got.status());
        if (!got.ValueOrDie()) break;
        if (frame.request_id != conns[c].commit_id) {
          DBPS_CHECK_OK(DbpsClient::ExpectOk(frame));
          continue;
        }
        DBPS_CHECK_OK(DbpsClient::ExpectCommitOk(frame).status());
        out.latency.Add(wall.ElapsedSeconds() * 1e3 - launch_ms[c]);
        conns[c].commit_id = 0;
        ++completed;
      }
    }
  }
  out.wall_ms = wall.ElapsedSeconds() * 1e3;
  out.committed = completed;
  for (ConnState& conn : conns) (void)conn.client->Goodbye();
  DurabilityStats stats = server.feed().durability();
  out.fsyncs = stats.fsyncs;
  server.ValidateJournal(out.committed);
  return out;
}

void PrintRow(const char* name, const PhaseResult& result) {
  std::printf(
      "  %-12s %9.1f %10.0f %8llu %8llu %8.3f %8.2f %8.2f %8.2f\n", name,
      result.wall_ms, result.TxnPerSec(),
      (unsigned long long)result.committed,
      (unsigned long long)result.fsyncs, result.FsyncsPerCommit(),
      result.latency.Percentile(50), result.latency.Percentile(95),
      result.latency.Percentile(99));
}

bench::JsonRow MakeRow(const std::string& workload,
                       const std::string& protocol, const Config& config,
                       const PhaseResult& result) {
  bench::JsonRow row;
  row.workload = workload;
  row.threads = config.connections;
  row.protocol = protocol;
  row.wall_ms = result.wall_ms;
  row.committed = result.committed;
  row.batched_commits = result.batched_commits;
  row.SetLatencies(result.latency);
  return row;
}

}  // namespace

int main(int argc, char** argv) {
  Config config;
  for (int i = 1; i < argc; ++i) {
    if (std::string(argv[i]) == "--smoke") config.smoke = true;
  }
  // DBPS_BENCH_THREADS <= 2 also selects the smoke shape, so the bench
  // tier of check.sh scales down without a flag.
  if (bench::MaxBenchThreads(8) <= 2) config.smoke = true;
  if (config.smoke) {
    config.connections = 64;
    config.client_threads = 2;
    config.txns_per_conn = 4;
    config.server_loops = 2;
    config.server_dispatchers = 12;
    config.open_loop_rate = 1000;
    config.open_loop_txns = 500;
  }

  bench::Header(
      "Network front-end — " + std::to_string(config.connections) +
      " pipelined loopback connections, durable journal @" +
      std::to_string(kFsyncCost.count()) +
      "us fsync\n(closed loop vs in-process baseline, then open loop at " +
      std::to_string((int)config.open_loop_rate) + " txn/s)");

  std::printf("\n  %-12s %9s %10s %8s %8s %8s %8s %8s %8s\n", "mode", "ms",
              "txn/s", "commits", "fsyncs", "fs/txn", "p50ms", "p95ms",
              "p99ms");

  PhaseResult in_process = RunInProcessBaseline(config);
  PrintRow("in_process", in_process);
  PhaseResult ungrouped = RunNetworkClosedLoop(config, false);
  PrintRow("net", ungrouped);
  PhaseResult grouped = RunNetworkClosedLoop(config, true);
  PrintRow("net+group", grouped);

  // Group commit changes fsync cadence, never journal content: the two
  // network runs committed the same transactions, so their journals hold
  // the same line multiset (order differs with scheduling). Audit
  // comments carry run-specific seqs/CSNs, so compare the delta bodies.
  std::vector<std::string> a;
  std::vector<std::string> b;
  for (const std::string& line : ungrouped.journal_lines) {
    a.push_back(StripAuditComment(line));
  }
  for (const std::string& line : grouped.journal_lines) {
    b.push_back(StripAuditComment(line));
  }
  std::sort(a.begin(), a.end());
  std::sort(b.begin(), b.end());
  DBPS_CHECK(a == b) << "grouped and ungrouped journals diverge";

  DBPS_CHECK_LT(grouped.FsyncsPerCommit(), 0.25)
      << "group commit failed to amortize fsyncs";
  DBPS_CHECK_GE(grouped.TxnPerSec(), in_process.TxnPerSec())
      << "network + group commit slower than the in-process "
         "per-commit-fsync baseline";

  PhaseResult open_loop = RunOpenLoop(config);
  PrintRow("open_loop", open_loop);
  if (config.smoke) {
    // The check.sh net tier gate: tail latency at the smoke target rate.
    DBPS_CHECK_LT(open_loop.latency.Percentile(99), 50.0)
        << "open-loop p99 above the 50ms smoke gate";
  }

  bench::JsonReport report("net");
  report.Add(MakeRow("net_closed_loop", "in_process", config, in_process));
  report.Add(MakeRow("net_closed_loop", "ungrouped", config, ungrouped));
  report.Add(MakeRow("net_closed_loop", "group_commit", config, grouped));
  report.Add(MakeRow("net_open_loop", "group_commit", config, open_loop));
  report.WriteIfRequested();

  std::printf(
      "\ngroup commit rides the commit sequencer's batches: one fsync\n"
      "covers every commit in the batch (%.3f fsyncs/txn vs %.3f\n"
      "ungrouped) while the journal bytes stay identical.\n",
      grouped.FsyncsPerCommit(), ungrouped.FsyncsPerCommit());
  return 0;
}
