// §4.3 ablation — where the Rc/Ra/Wa scheme beats 2PL, and where the
// revalidate refinement beats blind aborting.
//
// Workload: long-running "auditors" hold an escalated relation-level Rc
// on `veto` (their LHS has a negated CE), while quick "veto writers"
// insert vetoes for *other* tasks.
//   * 2PL: every writer blocks until no auditor is in flight — writers
//     serialize behind the audits' long actions (the §4.3 complaint:
//     "read locks acquired for evaluating the LHS are held more
//     conservatively than necessary").
//   * Rc/Ra/Wa + abort (paper rule ii): writers never block, but every
//     commit aborts all in-flight auditors — their work is wasted.
//   * Rc/Ra/Wa + revalidate (paper's refinement): writers never block
//     AND auditors survive, because the new veto does not actually
//     falsify their negated condition.

#include <cstdio>

#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "report.h"
#include "util/stopwatch.h"

namespace {

using namespace dbps;

constexpr const char* kProgram = R"(
(relation task (id int) (state symbol))
(relation veto (task int))

; Long action: audit a pending task, provided nobody vetoed it.
(rule audit :cost 800
  (task ^id <t> ^state pending)
  -(veto ^task <t>)
  -->
  (modify 1 ^state audited))

; Quick action: veto a flagged task.
(rule veto-one :cost 50
  (task ^id <t> ^state flagged)
  -->
  (modify 1 ^state vetoed)
  (make veto ^task <t>))
)";

struct Outcome {
  double ms;
  uint64_t aborts;
  uint64_t stale;
};

Outcome Run(LockProtocol protocol, AbortPolicy policy) {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  for (int t = 0; t < 24; ++t) {
    const char* state = (t % 3 == 0) ? "flagged" : "pending";
    DBPS_CHECK(wm.Insert("task", {Value::Int(t), Value::Symbol(state)})
                   .ok());
  }
  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = protocol;
  options.abort_policy = policy;
  ParallelEngine engine(&wm, rules, options);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  DBPS_CHECK_EQ(result.stats.firings, 24u);  // every task resolved once
  return Outcome{stopwatch.ElapsedSeconds() * 1e3, result.stats.aborts,
                 result.stats.stale_skips};
}

double RunSingle() {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  for (int t = 0; t < 24; ++t) {
    const char* state = (t % 3 == 0) ? "flagged" : "pending";
    DBPS_CHECK(wm.Insert("task", {Value::Int(t), Value::Symbol(state)})
                   .ok());
  }
  SingleThreadEngine engine(&wm, rules);
  Stopwatch stopwatch;
  auto result = engine.Run().ValueOrDie();
  DBPS_CHECK_EQ(result.stats.firings, 24u);
  return stopwatch.ElapsedSeconds() * 1e3;
}

}  // namespace

int main() {
  bench::Header(
      "Section 4.3 ablation — negation-holding readers vs veto writers\n"
      "(24 tasks: 16 audits @800us, 8 vetoes @50us; Np=4)");

  double t1 = RunSingle();
  std::printf("\n  single-thread baseline:        %7.1fms\n", t1);

  Outcome two = Run(LockProtocol::kTwoPhase, AbortPolicy::kAbort);
  std::printf(
      "  2PL:                           %7.1fms (x%4.2f)  aborts=%llu "
      "stale=%llu\n",
      two.ms, t1 / two.ms, (unsigned long long)two.aborts,
      (unsigned long long)two.stale);

  Outcome rc_abort = Run(LockProtocol::kRcRaWa, AbortPolicy::kAbort);
  std::printf(
      "  Rc/Ra/Wa + abort (rule ii):    %7.1fms (x%4.2f)  aborts=%llu "
      "stale=%llu\n",
      rc_abort.ms, t1 / rc_abort.ms, (unsigned long long)rc_abort.aborts,
      (unsigned long long)rc_abort.stale);

  Outcome rc_reval = Run(LockProtocol::kRcRaWa, AbortPolicy::kRevalidate);
  std::printf(
      "  Rc/Ra/Wa + revalidate:         %7.1fms (x%4.2f)  aborts=%llu "
      "stale=%llu\n",
      rc_reval.ms, t1 / rc_reval.ms, (unsigned long long)rc_reval.aborts,
      (unsigned long long)rc_reval.stale);

  std::printf(
      "\nexpected ordering: revalidate <= abort <= 2PL in time.\n"
      "2PL pays writer blocking behind long Rc holders; blind aborting\n"
      "pays wasted auditor work; revalidation pays neither, because the\n"
      "committed veto never falsifies a *different* task's negation —\n"
      "the paper's \"reevaluate Pj's condition to see if abort is\n"
      "necessary\" alternative (§4.3).\n");
  return 0;
}
