// Recovery time vs journal length — how long a crashed server takes to
// come back, and what snapshot checkpoints buy.
//
// For each journal length N the bench builds the same delta history
// twice: once as a plain WAL (recovery = full replay) and once with
// periodic checkpoint records (recovery = restore last checkpoint +
// replay the suffix). It then times RecoveryManager::Recover from a cold
// file for each and asserts both recoveries land on the byte-identical
// database (CanonicalWmDump) — the checkpoint is an accelerator, never a
// semantic fork. Rows land in BENCH_recovery.json: wall_ms is the
// recovery time, committed the journal's delta count, batched_commits
// the checkpoint count of that variant.
//
// --smoke scales the lengths down for the check.sh recovery tier.

#include <chrono>
#include <cstdio>
#include <cstring>
#include <fstream>
#include <string>
#include <vector>

#include "dbps.h"
#include "report.h"

namespace {

using namespace dbps;

constexpr const char* kProgram = R"(
(relation item (id int))
)";

WorkingMemory* LoadPlain(WorkingMemory* wm) {
  auto rules_or = LoadProgram(kProgram, wm);
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  return wm;
}

/// The shared delta history: a bounded live set (the first records/16
/// deltas are inserts, at most 512 rows) churned by updates ever after —
/// the update-heavy shape checkpoints exist for, where the live state is
/// far smaller than the history that produced it.
std::vector<std::string> BuildLines(size_t records, uint64_t seed) {
  Random rng(seed);
  std::vector<std::string> lines;
  lines.reserve(records);
  const uint64_t rows = std::max<uint64_t>(
      1, std::min<uint64_t>(512, records / 16));
  for (size_t i = 0; i < records; ++i) {
    Delta delta;
    if (i < rows) {
      delta.Create(Sym("item"), {Value::Int(static_cast<int64_t>(i))});
    } else {
      // WME ids were assigned densely from 1 by the initial makes.
      delta.Modify(1 + rng.Uniform(rows),
                   {{0, Value::Int(rng.UniformInt(0, 1 << 20))}});
    }
    auto line_or = DeltaToJournalLine(delta);
    DBPS_CHECK(line_or.ok()) << line_or.status();
    lines.push_back(line_or.ValueOrDie());
  }
  return lines;
}

/// Writes the history as a WAL, inserting a checkpoint record every
/// `checkpoint_every` deltas (0 = plain log). Returns the checkpoint
/// count.
size_t WriteWal(const std::string& path,
                const std::vector<std::string>& lines,
                size_t checkpoint_every) {
  WorkingMemory wm;
  LoadPlain(&wm);
  std::string bytes;
  size_t checkpoints = 0;
  for (size_t i = 0; i < lines.size(); ++i) {
    WalRecord record;
    record.seq = i;
    record.type = WalRecordType::kDelta;
    record.payload = lines[i];
    EncodeWalRecord(record, &bytes);
    if (checkpoint_every > 0) {
      auto delta_or = DeltaFromJournalLine(lines[i]);
      DBPS_CHECK(delta_or.ok());
      DBPS_CHECK(wm.Apply(delta_or.ValueOrDie()).ok());
      if ((i + 1) % checkpoint_every == 0) {
        auto checkpoint_or = CheckpointToSource(wm, i + 1);
        DBPS_CHECK(checkpoint_or.ok()) << checkpoint_or.status();
        WalRecord fence;
        fence.seq = i + 1;
        fence.type = WalRecordType::kCheckpoint;
        fence.payload = checkpoint_or.ValueOrDie();
        EncodeWalRecord(fence, &bytes);
        ++checkpoints;
      }
    }
  }
  std::ofstream out(path, std::ios::binary | std::ios::trunc);
  DBPS_CHECK(out.good());
  out << bytes;
  DBPS_CHECK(out.good());
  return checkpoints;
}

struct Measured {
  double wall_ms = 0;
  RecoveryStats stats;
  std::string dump;
};

Measured TimeRecovery(const std::string& path) {
  Measured measured;
  WorkingMemory wm;
  LoadPlain(&wm);
  const auto start = std::chrono::steady_clock::now();
  RecoveryManager recovery(path);
  auto stats_or = recovery.Recover(&wm);
  DBPS_CHECK(stats_or.ok()) << stats_or.status();
  measured.wall_ms = std::chrono::duration<double, std::milli>(
                         std::chrono::steady_clock::now() - start)
                         .count();
  measured.stats = stats_or.ValueOrDie();
  measured.dump = CanonicalWmDump(wm);
  return measured;
}

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  for (int i = 1; i < argc; ++i) {
    if (std::strcmp(argv[i], "--smoke") == 0) smoke = true;
  }
  bench::Header("Recovery time vs journal length (replay vs checkpoint)");
  std::vector<size_t> lengths =
      smoke ? std::vector<size_t>{500, 2000}
            : std::vector<size_t>{2000, 8000, 32000};

  bench::JsonReport report("recovery");
  std::printf("%10s  %12s  %14s  %12s  %12s\n", "records", "replay_ms",
              "checkpoint_ms", "checkpoints", "suffix");
  for (size_t records : lengths) {
    const std::vector<std::string> lines = BuildLines(records, 42);
    const std::string plain_path = "bench_recovery_plain.wal";
    const std::string cp_path = "bench_recovery_checkpoint.wal";
    // A cadence that does not divide the length, so the last checkpoint
    // leaves a genuine replay suffix.
    WriteWal(plain_path, lines, 0);
    const size_t checkpoints = WriteWal(cp_path, lines, records / 8 + 7);

    const Measured plain = TimeRecovery(plain_path);
    const Measured checkpointed = TimeRecovery(cp_path);
    DBPS_CHECK(plain.stats.replayed_deltas == records);
    DBPS_CHECK(checkpointed.stats.used_checkpoint);
    // Same database, byte for byte, or the bench (and the feature) is
    // broken — this is the correctness gate, timing is the payload.
    DBPS_CHECK(plain.dump == checkpointed.dump)
        << "checkpoint recovery diverged from replay at " << records;

    std::printf("%10zu  %12.3f  %14.3f  %12zu  %12llu\n", records,
                plain.wall_ms, checkpointed.wall_ms, checkpoints,
                (unsigned long long)checkpointed.stats.replayed_deltas);

    bench::JsonRow plain_row;
    plain_row.workload = "recovery";
    plain_row.threads = 1;
    plain_row.protocol = "replay_only";
    plain_row.wall_ms = plain.wall_ms;
    plain_row.committed = records;
    report.Add(plain_row);

    bench::JsonRow cp_row;
    cp_row.workload = "recovery";
    cp_row.threads = 1;
    cp_row.protocol = "checkpointed";
    cp_row.wall_ms = checkpointed.wall_ms;
    cp_row.committed = records;
    cp_row.batched_commits = checkpoints;
    report.Add(cp_row);

    std::remove(plain_path.c_str());
    std::remove(cp_path.c_str());
  }
  report.WriteIfRequested();
  return 0;
}
