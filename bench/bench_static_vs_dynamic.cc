// §4.1 vs §4.2/4.3 ablation: the static (pre-analysis, lock-free) engine
// against the dynamic (locking) engines on the same workloads, plus the
// static rule-partitioning statistics the §4.1 approach relies on.

#include <cstdio>

#include "analysis/partitioner.h"
#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "engine/static_partition_engine.h"
#include "report.h"
#include "util/stopwatch.h"
#include "workload.h"

namespace {

using namespace dbps;

void CompareEngines(double shared, int64_t cost) {
  const int kJobs = 16;
  const int kSteps = 6;

  auto single_wl = bench::MakeJobsWorkload(kJobs, kSteps, shared, cost);
  SingleThreadEngine single(single_wl.wm.get(), single_wl.rules);
  Stopwatch sw1;
  auto single_result = single.Run().ValueOrDie();
  double t1 = sw1.ElapsedSeconds();

  auto static_wl = bench::MakeJobsWorkload(kJobs, kSteps, shared, cost);
  StaticPartitionOptions static_options;
  static_options.num_workers = 4;
  StaticPartitionEngine static_engine(static_wl.wm.get(), static_wl.rules,
                                      static_options);
  Stopwatch sw2;
  auto static_result = static_engine.Run().ValueOrDie();
  double t_static = sw2.ElapsedSeconds();

  auto dynamic_wl = bench::MakeJobsWorkload(kJobs, kSteps, shared, cost);
  ParallelEngineOptions dynamic_options;
  dynamic_options.num_workers = 4;
  dynamic_options.protocol = LockProtocol::kRcRaWa;
  ParallelEngine dynamic_engine(dynamic_wl.wm.get(), dynamic_wl.rules,
                                dynamic_options);
  Stopwatch sw3;
  auto dynamic_result = dynamic_engine.Run().ValueOrDie();
  double t_dynamic = sw3.ElapsedSeconds();

  std::printf(
      "  shared=%.2f cost=%3lldus | single %6.1fms | static %6.1fms "
      "(x%4.2f, %llu cycles) | dynamic %6.1fms (x%4.2f, %llu aborts)\n",
      shared, (long long)cost, t1 * 1e3, t_static * 1e3, t1 / t_static,
      (unsigned long long)static_result.stats.cycles, t_dynamic * 1e3,
      t1 / t_dynamic,
      (unsigned long long)(dynamic_result.stats.aborts +
                           dynamic_result.stats.stale_skips));
  DBPS_CHECK_EQ(single_result.stats.firings, static_result.stats.firings);
  DBPS_CHECK_EQ(single_result.stats.firings,
                dynamic_result.stats.firings);
}

}  // namespace

int main() {
  bench::Header("Static (Theorem 1) vs dynamic (Theorem 2 / §4.3) "
                "parallelization");

  bench::Section("static rule partitioning (pre-execution analysis)");
  {
    auto workload = bench::MakeJobsWorkload(4, 1, 0.5, 0);
    InterferenceGraph graph(*workload.rules);
    std::printf(
        "  %zu rules, %zu interfering pairs\n", graph.num_rules(),
        graph.num_edges());
    auto groups = PartitionRules(*workload.rules);
    std::printf("  greedy coloring -> %zu non-interfering group(s):\n",
                groups.size());
    for (size_t g = 0; g < groups.size(); ++g) {
      std::printf("    group %zu:", g);
      for (size_t rule : groups[g]) {
        std::printf(" %s", workload.rules->rules()[rule]->name().c_str());
      }
      std::printf("\n");
    }
    std::printf(
        "  (work-local and work-shared both write `job`: the static,\n"
        "   attribute-level analysis must put them in one group only if\n"
        "   their footprints are disjoint — conservatism in action.)\n");
  }

  bench::Section("end-to-end: 4 workers, varying interference and cost");
  for (double shared : {0.0, 0.5, 1.0}) {
    CompareEngines(shared, 200);
  }
  for (int64_t cost : {0, 400}) {
    CompareEngines(0.25, cost);
  }

  std::printf(
      "\nexpected shapes: the static engine pays a per-cycle analysis +\n"
      "barrier cost but never aborts; the dynamic engine overlaps\n"
      "independent firings across cycle boundaries and wins when\n"
      "interference is moderate — the paper's argument for the dynamic\n"
      "approach (§4.1's \"overhead may still be large\" vs §4.2).\n");
  return 0;
}
