// Conflict-resolution strategy ablation (§3.2's remark: strategies like
// LEX and MEA "strongly favor some sequences over others" but never rule
// a sequence out — correctness is strategy-independent, behaviour is
// not). Runs the same program under every strategy and reports the
// firing count, the sequence shape, and that every sequence replays.

#include <cstdio>

#include "engine/single_thread_engine.h"
#include "lang/compiler.h"
#include "report.h"
#include "semantics/replay_validator.h"

namespace {

using namespace dbps;

// A program whose *trajectory* differs by strategy: tasks spawn subtasks
// (recent WMEs), so LEX/MEA dive depth-first while FIFO goes
// breadth-first. All strategies terminate with the same totals.
constexpr const char* kProgram = R"(
(relation task (id int) (depth int) (state symbol))
(relation log  (id int) (step int))

(rule expand
  (task ^id <t> ^depth { < 3 } ^depth <d> ^state open)
  -->
  (modify 1 ^state expanded)
  (make task ^id (+ (* <t> 10) 1) ^depth (+ <d> 1) ^state open)
  (make task ^id (+ (* <t> 10) 2) ^depth (+ <d> 1) ^state open))

(rule close
  (task ^id <t> ^depth 3 ^state open)
  -->
  (modify 1 ^state closed))

(make task ^id 1 ^depth 0 ^state open)
(make task ^id 2 ^depth 0 ^state open)
)";

void RunOne(ConflictResolution strategy) {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  auto pristine = wm.Clone();
  EngineOptions options;
  options.strategy = strategy;
  options.seed = 7;
  SingleThreadEngine engine(&wm, rules, options);
  auto result = engine.Run().ValueOrDie();

  // First 10 fired rule names, abbreviated: e=expand, c=close.
  std::string shape;
  for (size_t i = 0; i < result.log.size() && i < 24; ++i) {
    shape += result.log[i].key.rule_name[0];
  }
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  std::printf("  %-9s %3llu firings  prefix %-24s  replay %s\n",
              ConflictResolutionToString(strategy),
              (unsigned long long)result.stats.firings, shape.c_str(),
              valid.ok() ? "OK" : valid.ToString().c_str());
  DBPS_CHECK_OK(valid);
}

}  // namespace

int main() {
  bench::Header(
      "Conflict-resolution strategies (§3.2) — same program, different\n"
      "trajectories, identical validity (every sequence is in ES_single)");
  std::printf("\n(task tree: 2 roots x depth 3; e=expand c=close)\n\n");
  for (ConflictResolution strategy :
       {ConflictResolution::kPriority, ConflictResolution::kLex,
        ConflictResolution::kMea, ConflictResolution::kFifo,
        ConflictResolution::kRandom}) {
    RunOne(strategy);
  }
  std::printf(
      "\nLEX/MEA chase the most recent activation (depth-first bursts of\n"
      "e's); FIFO drains oldest-first (breadth-first: all e's at one\n"
      "level, then the next). The firing totals agree — the strategies\n"
      "choose among valid sequences, they never create or destroy them.\n");
  return 0;
}
