// Table 4.1: the Rc/Ra/Wa lock-compatibility matrix — printed from the
// implementation and *measured* against a live LockManager (every cell is
// exercised with real acquire calls), alongside the conventional 2PL
// matrix for contrast.

#include <chrono>
#include <cstdio>
#include <future>

#include "lock/lock_manager.h"
#include "util/logging.h"
#include "report.h"

namespace {

using namespace dbps;

/// Measures one cell: T1 takes `held`; does T2's `requested` grant
/// within 30ms?
bool MeasureCell(LockProtocol protocol, LockMode requested, LockMode held) {
  LockManager::Options options;
  options.protocol = protocol;
  options.wait_timeout = std::chrono::milliseconds(30);
  LockManager lm(options);
  LockObjectId object{Sym("cell"), 1};
  TxnId t1 = lm.Begin();
  TxnId t2 = lm.Begin();
  DBPS_CHECK_OK(lm.Acquire(t1, object, held));
  Status st = lm.Acquire(t2, object, requested);
  lm.Release(t2);
  lm.Release(t1);
  return st.ok();
}

void PrintMeasured(LockProtocol protocol) {
  static constexpr LockMode kModes[] = {LockMode::kRc, LockMode::kRa,
                                        LockMode::kWa};
  std::printf("             held: Rc   Ra   Wa\n");
  for (LockMode requested : kModes) {
    std::printf("  req %s:       ", LockModeToString(requested));
    for (LockMode held : kModes) {
      bool granted = MeasureCell(protocol, requested, held);
      bool predicted = Compatible(protocol, requested, held);
      std::printf("   %s%s", granted ? "Y" : "N",
                  granted == predicted ? " " : "!");
    }
    std::printf("\n");
  }
}

}  // namespace

int main() {
  using namespace dbps;
  bench::Header("Table 4.1 — lock compatibility matrices");

  bench::Section("Rc/Ra/Wa (the paper's improved scheme) — declared");
  std::printf("%s",
              CompatibilityMatrixToString(LockProtocol::kRcRaWa).c_str());
  bench::Section("Rc/Ra/Wa — measured on a live LockManager");
  PrintMeasured(LockProtocol::kRcRaWa);

  bench::Section("conventional 2PL baseline — declared");
  std::printf("%s",
              CompatibilityMatrixToString(LockProtocol::kTwoPhase).c_str());
  bench::Section("conventional 2PL — measured");
  PrintMeasured(LockProtocol::kTwoPhase);

  std::printf(
      "\nThe single differing cell — Wa requested while another\n"
      "transaction holds Rc — is the source of the improved scheme's\n"
      "extra parallelism (\"allowing the Rc-Wa conflict to exist!\").\n"
      "Consistency is restored at commit: see bench_fig4_2.\n");
  return 0;
}
