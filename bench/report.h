// Small helpers shared by the figure/table reproduction binaries.

#ifndef DBPS_BENCH_REPORT_H_
#define DBPS_BENCH_REPORT_H_

#include <cstdio>
#include <string>

namespace dbps {
namespace bench {

inline void Header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

}  // namespace bench
}  // namespace dbps

#endif  // DBPS_BENCH_REPORT_H_
