// Small helpers shared by the figure/table reproduction binaries.

#ifndef DBPS_BENCH_REPORT_H_
#define DBPS_BENCH_REPORT_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <string>
#include <vector>

namespace dbps {
namespace bench {

inline void Header(const std::string& title) {
  std::printf("\n==============================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("==============================================================\n");
}

inline void Section(const std::string& title) {
  std::printf("\n--- %s ---\n", title.c_str());
}

// Maximum thread/worker count a bench should sweep to, from the
// DBPS_BENCH_THREADS environment variable. Lets the check.sh bench tier
// smoke the binaries at 2 threads while a full run keeps the default.
inline size_t MaxBenchThreads(size_t default_max) {
  const char* env = std::getenv("DBPS_BENCH_THREADS");
  if (env == nullptr || *env == '\0') return default_max;
  const long parsed = std::strtol(env, nullptr, 10);
  if (parsed < 1) return 1;
  return static_cast<size_t>(parsed);
}

// Per-operation latency samples with percentile reporting, shared by the
// closed-loop session bench (bench_multi_user) and the network bench
// (bench_net). Accumulate per worker thread, Merge into one recorder,
// then read Percentile(50/95/99). Nearest-rank on the sorted sample set:
// the reported value is an actual observed latency, never an interpolated
// one.
class LatencyRecorder {
 public:
  void Add(double ms) { samples_.push_back(ms); }

  void Merge(const LatencyRecorder& other) {
    samples_.insert(samples_.end(), other.samples_.begin(),
                    other.samples_.end());
  }

  size_t count() const { return samples_.size(); }

  // p in [0, 100]. Returns 0 with no samples.
  double Percentile(double p) const {
    if (samples_.empty()) return 0;
    std::vector<double> sorted(samples_);
    std::sort(sorted.begin(), sorted.end());
    const double rank = std::ceil(p / 100.0 * sorted.size());
    size_t index = rank <= 1 ? 0 : static_cast<size_t>(rank) - 1;
    if (index >= sorted.size()) index = sorted.size() - 1;
    return sorted[index];
  }

  double Max() const {
    if (samples_.empty()) return 0;
    return *std::max_element(samples_.begin(), samples_.end());
  }

 private:
  std::vector<double> samples_;
};

// Machine-readable benchmark results. Each bench accumulates one row per
// configuration and writes BENCH_<name>.json into $DBPS_BENCH_JSON_DIR
// (a no-op when the variable is unset, so ad-hoc runs stay side-effect
// free). The schema is intentionally flat so CI can diff runs:
//   {"bench": "...", "rows": [{"workload": ..., "threads": N,
//     "protocol": ..., "wall_ms": X, "aborts": N, "committed": N,
//     "fast_path_grants": N, "fast_hit_pct": X, "batched_commits": N,
//     "p50_ms": X, "p95_ms": X, "p99_ms": X}]}
// The lock-manager fast-path / commit-batching fields are always
// emitted (zero when a workload never exercises them) so CI can key on
// their presence.
struct JsonRow {
  std::string workload;
  size_t threads = 0;
  std::string protocol;
  double wall_ms = 0;
  uint64_t aborts = 0;
  uint64_t committed = 0;
  /// Lock grants that completed on the CAS fast path, and the share of
  /// all grants they represent (percent, 0 when nothing was acquired).
  uint64_t fast_path_grants = 0;
  double fast_hit_pct = 0;
  /// Commits that rode a multi-commit sequencer batch.
  uint64_t batched_commits = 0;
  /// Per-transaction latency percentiles in milliseconds (0 when the
  /// bench does not record per-operation latencies). Fill from a
  /// LatencyRecorder via SetLatencies().
  double p50_ms = 0;
  double p95_ms = 0;
  double p99_ms = 0;

  void SetLatencies(const LatencyRecorder& recorder) {
    p50_ms = recorder.Percentile(50);
    p95_ms = recorder.Percentile(95);
    p99_ms = recorder.Percentile(99);
  }
};

class JsonReport {
 public:
  explicit JsonReport(std::string bench_name)
      : bench_name_(std::move(bench_name)) {}

  void Add(JsonRow row) { rows_.push_back(std::move(row)); }

  // Writes BENCH_<bench_name>.json under $DBPS_BENCH_JSON_DIR and returns
  // the path, or returns "" without touching the filesystem when the
  // variable is unset.
  std::string WriteIfRequested() const {
    const char* dir = std::getenv("DBPS_BENCH_JSON_DIR");
    if (dir == nullptr || *dir == '\0') return "";
    const std::string path =
        std::string(dir) + "/BENCH_" + bench_name_ + ".json";
    std::ofstream out(path);
    if (!out) {
      std::fprintf(stderr, "warning: cannot write %s\n", path.c_str());
      return "";
    }
    out << "{\n  \"bench\": \"" << bench_name_ << "\",\n  \"rows\": [\n";
    for (size_t i = 0; i < rows_.size(); ++i) {
      const JsonRow& row = rows_[i];
      char wall[32];
      std::snprintf(wall, sizeof(wall), "%.3f", row.wall_ms);
      char hit[32];
      std::snprintf(hit, sizeof(hit), "%.1f", row.fast_hit_pct);
      char p50[32], p95[32], p99[32];
      // Four decimals: in-process medians sit at single-digit
      // microseconds and must not round to zero.
      std::snprintf(p50, sizeof(p50), "%.4f", row.p50_ms);
      std::snprintf(p95, sizeof(p95), "%.4f", row.p95_ms);
      std::snprintf(p99, sizeof(p99), "%.4f", row.p99_ms);
      out << "    {\"workload\": \"" << row.workload << "\", "
          << "\"threads\": " << row.threads << ", "
          << "\"protocol\": \"" << row.protocol << "\", "
          << "\"wall_ms\": " << wall << ", "
          << "\"aborts\": " << row.aborts << ", "
          << "\"committed\": " << row.committed << ", "
          << "\"fast_path_grants\": " << row.fast_path_grants << ", "
          << "\"fast_hit_pct\": " << hit << ", "
          << "\"batched_commits\": " << row.batched_commits << ", "
          << "\"p50_ms\": " << p50 << ", "
          << "\"p95_ms\": " << p95 << ", "
          << "\"p99_ms\": " << p99 << "}"
          << (i + 1 < rows_.size() ? "," : "") << "\n";
    }
    out << "  ]\n}\n";
    std::printf("\nwrote %s\n", path.c_str());
    return path;
  }

 private:
  std::string bench_name_;
  std::vector<JsonRow> rows_;
};

}  // namespace bench
}  // namespace dbps

#endif  // DBPS_BENCH_REPORT_H_
