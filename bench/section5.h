// Shared renderer for the §5 figure reproductions.

#ifndef DBPS_BENCH_SECTION5_H_
#define DBPS_BENCH_SECTION5_H_

#include <cstdio>
#include <vector>

#include "report.h"
#include "sim/speedup_model.h"

namespace dbps {
namespace bench {

inline void PrintScenario(const sim::SimConfig& config,
                          const std::vector<size_t>& sigma,
                          double paper_t_single, double paper_t_multi,
                          double paper_speedup) {
  Section("productions");
  for (size_t p = 0; p < config.productions.size(); ++p) {
    const auto& production = config.productions[p];
    std::printf("  %s: T=%g", production.name.c_str(),
                production.exec_time);
    if (!production.delete_set.empty()) {
      std::printf("  delete-set {");
      for (size_t i = 0; i < production.delete_set.size(); ++i) {
        std::printf("%s%s", i ? "," : "",
                    config.productions[production.delete_set[i]].name.c_str());
      }
      std::printf("}");
    }
    if (!production.add_set.empty()) {
      std::printf("  add-set {");
      for (size_t i = 0; i < production.add_set.size(); ++i) {
        std::printf("%s%s", i ? "," : "",
                    config.productions[production.add_set[i]].name.c_str());
      }
      std::printf("}");
    }
    std::printf("\n");
  }
  std::printf("  Np = %zu processors\n", config.num_processors);

  double t_single = sim::SingleThreadTime(config, sigma).ValueOrDie();
  sim::MultiThreadResult result = sim::SimulateMultiThread(config);

  Section("single-thread execution of sigma");
  std::printf("  sigma =");
  for (size_t p : sigma) {
    std::printf(" %s", config.productions[p].name.c_str());
  }
  std::printf("\n  T_single(sigma) = %g   (paper: %g)\n", t_single,
              paper_t_single);

  Section("multi-thread schedule");
  std::printf("%s", result.ToGantt(config).c_str());
  std::printf("  commit order:");
  for (size_t p : result.commit_order) {
    std::printf(" %s", config.productions[p].name.c_str());
  }
  std::printf("\n  T_multi = %g   (paper: %g)\n", result.makespan,
              paper_t_multi);
  std::printf("  aborted productions: %zu, wasted work: %g time units\n",
              result.aborts, result.wasted_time);

  Section("speedup");
  std::printf("  measured %.4g   paper %.4g   %s\n",
              t_single / result.makespan, paper_speedup,
              (t_single / result.makespan - paper_speedup < 0.01 &&
               paper_speedup - t_single / result.makespan < 0.01)
                  ? "MATCH"
                  : "MISMATCH");
}

}  // namespace bench
}  // namespace dbps

#endif  // DBPS_BENCH_SECTION5_H_
