// Parameterized synthetic workload for the real-engine benches.
//
// `jobs` independent work items each need `steps` firings; a
// `shared_fraction` of them additionally update one shared hub tuple on
// every firing, which is the interference knob — the §5 "degree of
// conflict" — while `cost_us` is the per-firing execution time T(Pi).

#ifndef DBPS_BENCH_WORKLOAD_H_
#define DBPS_BENCH_WORKLOAD_H_

#include <memory>
#include <string>

#include "lang/compiler.h"
#include "util/logging.h"
#include "util/string_util.h"
#include "wm/working_memory.h"

namespace dbps {
namespace bench {

struct JobsWorkload {
  std::unique_ptr<WorkingMemory> wm;
  RuleSetPtr rules;
  uint64_t expected_firings;
};

inline JobsWorkload MakeJobsWorkload(int jobs, int steps,
                                     double shared_fraction,
                                     int64_t cost_us) {
  JobsWorkload out;
  out.wm = std::make_unique<WorkingMemory>();
  std::string program = StringPrintf(R"(
(relation job (id int) (kind symbol) (steps int))
(relation hub (v int))

(rule work-local :cost %lld
  (job ^kind local ^steps { > 0 } ^steps <s>)
  -->
  (modify 1 ^steps (- <s> 1)))

(rule work-shared :cost %lld
  (job ^kind shared ^steps { > 0 } ^steps <s>)
  (hub ^v <h>)
  -->
  (modify 1 ^steps (- <s> 1))
  (modify 2 ^v (+ <h> 1)))

(make hub ^v 0)
)",
                                     (long long)cost_us,
                                     (long long)cost_us);
  auto rules_or = LoadProgram(program, out.wm.get());
  DBPS_CHECK(rules_or.ok()) << rules_or.status();
  out.rules = rules_or.ValueOrDie();

  const int shared_jobs = static_cast<int>(jobs * shared_fraction + 0.5);
  for (int j = 0; j < jobs; ++j) {
    const char* kind = j < shared_jobs ? "shared" : "local";
    DBPS_CHECK(out.wm
                   ->Insert("job", {Value::Int(j), Value::Symbol(kind),
                                    Value::Int(steps)})
                   .ok());
  }
  out.expected_firings = static_cast<uint64_t>(jobs) * steps;
  return out;
}

}  // namespace bench
}  // namespace dbps

#endif  // DBPS_BENCH_WORKLOAD_H_
