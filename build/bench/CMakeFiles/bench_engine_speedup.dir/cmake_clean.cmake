file(REMOVE_RECURSE
  "CMakeFiles/bench_engine_speedup.dir/bench_engine_speedup.cc.o"
  "CMakeFiles/bench_engine_speedup.dir/bench_engine_speedup.cc.o.d"
  "bench_engine_speedup"
  "bench_engine_speedup.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_engine_speedup.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
