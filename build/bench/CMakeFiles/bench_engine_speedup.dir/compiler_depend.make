# Empty compiler generated dependencies file for bench_engine_speedup.
# This may be replaced when dependencies are built.
