file(REMOVE_RECURSE
  "CMakeFiles/bench_escalation.dir/bench_escalation.cc.o"
  "CMakeFiles/bench_escalation.dir/bench_escalation.cc.o.d"
  "bench_escalation"
  "bench_escalation.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_escalation.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
