# Empty dependencies file for bench_fig5_1.
# This may be replaced when dependencies are built.
