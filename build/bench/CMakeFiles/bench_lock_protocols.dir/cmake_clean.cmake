file(REMOVE_RECURSE
  "CMakeFiles/bench_lock_protocols.dir/bench_lock_protocols.cc.o"
  "CMakeFiles/bench_lock_protocols.dir/bench_lock_protocols.cc.o.d"
  "bench_lock_protocols"
  "bench_lock_protocols.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_lock_protocols.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
