# Empty dependencies file for bench_lock_protocols.
# This may be replaced when dependencies are built.
