file(REMOVE_RECURSE
  "CMakeFiles/bench_manners.dir/bench_manners.cc.o"
  "CMakeFiles/bench_manners.dir/bench_manners.cc.o.d"
  "bench_manners"
  "bench_manners.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_manners.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
