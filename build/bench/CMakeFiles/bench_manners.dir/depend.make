# Empty dependencies file for bench_manners.
# This may be replaced when dependencies are built.
