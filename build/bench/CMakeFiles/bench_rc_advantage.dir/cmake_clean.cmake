file(REMOVE_RECURSE
  "CMakeFiles/bench_rc_advantage.dir/bench_rc_advantage.cc.o"
  "CMakeFiles/bench_rc_advantage.dir/bench_rc_advantage.cc.o.d"
  "bench_rc_advantage"
  "bench_rc_advantage.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_rc_advantage.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
