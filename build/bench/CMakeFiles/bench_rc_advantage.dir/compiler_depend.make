# Empty compiler generated dependencies file for bench_rc_advantage.
# This may be replaced when dependencies are built.
