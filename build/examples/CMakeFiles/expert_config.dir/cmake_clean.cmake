file(REMOVE_RECURSE
  "CMakeFiles/expert_config.dir/expert_config.cpp.o"
  "CMakeFiles/expert_config.dir/expert_config.cpp.o.d"
  "expert_config"
  "expert_config.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/expert_config.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
