# Empty dependencies file for expert_config.
# This may be replaced when dependencies are built.
