file(REMOVE_RECURSE
  "CMakeFiles/manufacturing.dir/manufacturing.cpp.o"
  "CMakeFiles/manufacturing.dir/manufacturing.cpp.o.d"
  "manufacturing"
  "manufacturing.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/manufacturing.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
