# Empty compiler generated dependencies file for manufacturing.
# This may be replaced when dependencies are built.
