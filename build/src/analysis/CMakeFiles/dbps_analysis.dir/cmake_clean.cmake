file(REMOVE_RECURSE
  "CMakeFiles/dbps_analysis.dir/access_sets.cc.o"
  "CMakeFiles/dbps_analysis.dir/access_sets.cc.o.d"
  "CMakeFiles/dbps_analysis.dir/lock_sets.cc.o"
  "CMakeFiles/dbps_analysis.dir/lock_sets.cc.o.d"
  "CMakeFiles/dbps_analysis.dir/partitioner.cc.o"
  "CMakeFiles/dbps_analysis.dir/partitioner.cc.o.d"
  "libdbps_analysis.a"
  "libdbps_analysis.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_analysis.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
