file(REMOVE_RECURSE
  "libdbps_analysis.a"
)
