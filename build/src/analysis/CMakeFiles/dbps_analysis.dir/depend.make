# Empty dependencies file for dbps_analysis.
# This may be replaced when dependencies are built.
