file(REMOVE_RECURSE
  "CMakeFiles/dbps_engine.dir/busy_work.cc.o"
  "CMakeFiles/dbps_engine.dir/busy_work.cc.o.d"
  "CMakeFiles/dbps_engine.dir/engine.cc.o"
  "CMakeFiles/dbps_engine.dir/engine.cc.o.d"
  "CMakeFiles/dbps_engine.dir/parallel_engine.cc.o"
  "CMakeFiles/dbps_engine.dir/parallel_engine.cc.o.d"
  "CMakeFiles/dbps_engine.dir/single_thread_engine.cc.o"
  "CMakeFiles/dbps_engine.dir/single_thread_engine.cc.o.d"
  "CMakeFiles/dbps_engine.dir/static_partition_engine.cc.o"
  "CMakeFiles/dbps_engine.dir/static_partition_engine.cc.o.d"
  "libdbps_engine.a"
  "libdbps_engine.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_engine.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
