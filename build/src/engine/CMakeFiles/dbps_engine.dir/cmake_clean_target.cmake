file(REMOVE_RECURSE
  "libdbps_engine.a"
)
