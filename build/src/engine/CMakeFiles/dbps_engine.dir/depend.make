# Empty dependencies file for dbps_engine.
# This may be replaced when dependencies are built.
