
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lang/compiler.cc" "src/lang/CMakeFiles/dbps_lang.dir/compiler.cc.o" "gcc" "src/lang/CMakeFiles/dbps_lang.dir/compiler.cc.o.d"
  "/root/repo/src/lang/journal.cc" "src/lang/CMakeFiles/dbps_lang.dir/journal.cc.o" "gcc" "src/lang/CMakeFiles/dbps_lang.dir/journal.cc.o.d"
  "/root/repo/src/lang/lexer.cc" "src/lang/CMakeFiles/dbps_lang.dir/lexer.cc.o" "gcc" "src/lang/CMakeFiles/dbps_lang.dir/lexer.cc.o.d"
  "/root/repo/src/lang/parser.cc" "src/lang/CMakeFiles/dbps_lang.dir/parser.cc.o" "gcc" "src/lang/CMakeFiles/dbps_lang.dir/parser.cc.o.d"
  "/root/repo/src/lang/printer.cc" "src/lang/CMakeFiles/dbps_lang.dir/printer.cc.o" "gcc" "src/lang/CMakeFiles/dbps_lang.dir/printer.cc.o.d"
  "/root/repo/src/lang/query.cc" "src/lang/CMakeFiles/dbps_lang.dir/query.cc.o" "gcc" "src/lang/CMakeFiles/dbps_lang.dir/query.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/match/CMakeFiles/dbps_match.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/dbps_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/dbps_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/dbps_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
