file(REMOVE_RECURSE
  "CMakeFiles/dbps_lang.dir/compiler.cc.o"
  "CMakeFiles/dbps_lang.dir/compiler.cc.o.d"
  "CMakeFiles/dbps_lang.dir/journal.cc.o"
  "CMakeFiles/dbps_lang.dir/journal.cc.o.d"
  "CMakeFiles/dbps_lang.dir/lexer.cc.o"
  "CMakeFiles/dbps_lang.dir/lexer.cc.o.d"
  "CMakeFiles/dbps_lang.dir/parser.cc.o"
  "CMakeFiles/dbps_lang.dir/parser.cc.o.d"
  "CMakeFiles/dbps_lang.dir/printer.cc.o"
  "CMakeFiles/dbps_lang.dir/printer.cc.o.d"
  "CMakeFiles/dbps_lang.dir/query.cc.o"
  "CMakeFiles/dbps_lang.dir/query.cc.o.d"
  "libdbps_lang.a"
  "libdbps_lang.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_lang.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
