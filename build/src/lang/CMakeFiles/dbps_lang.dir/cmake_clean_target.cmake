file(REMOVE_RECURSE
  "libdbps_lang.a"
)
