# Empty compiler generated dependencies file for dbps_lang.
# This may be replaced when dependencies are built.
