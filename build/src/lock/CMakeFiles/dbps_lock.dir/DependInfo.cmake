
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/lock/lock_manager.cc" "src/lock/CMakeFiles/dbps_lock.dir/lock_manager.cc.o" "gcc" "src/lock/CMakeFiles/dbps_lock.dir/lock_manager.cc.o.d"
  "/root/repo/src/lock/lock_types.cc" "src/lock/CMakeFiles/dbps_lock.dir/lock_types.cc.o" "gcc" "src/lock/CMakeFiles/dbps_lock.dir/lock_types.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/wm/CMakeFiles/dbps_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/dbps_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
