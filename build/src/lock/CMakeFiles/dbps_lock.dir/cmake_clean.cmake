file(REMOVE_RECURSE
  "CMakeFiles/dbps_lock.dir/lock_manager.cc.o"
  "CMakeFiles/dbps_lock.dir/lock_manager.cc.o.d"
  "CMakeFiles/dbps_lock.dir/lock_types.cc.o"
  "CMakeFiles/dbps_lock.dir/lock_types.cc.o.d"
  "libdbps_lock.a"
  "libdbps_lock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_lock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
