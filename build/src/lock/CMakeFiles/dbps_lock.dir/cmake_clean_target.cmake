file(REMOVE_RECURSE
  "libdbps_lock.a"
)
