# Empty dependencies file for dbps_lock.
# This may be replaced when dependencies are built.
