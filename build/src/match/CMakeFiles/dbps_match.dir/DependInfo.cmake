
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/match/conflict_resolution.cc" "src/match/CMakeFiles/dbps_match.dir/conflict_resolution.cc.o" "gcc" "src/match/CMakeFiles/dbps_match.dir/conflict_resolution.cc.o.d"
  "/root/repo/src/match/conflict_set.cc" "src/match/CMakeFiles/dbps_match.dir/conflict_set.cc.o" "gcc" "src/match/CMakeFiles/dbps_match.dir/conflict_set.cc.o.d"
  "/root/repo/src/match/instantiation.cc" "src/match/CMakeFiles/dbps_match.dir/instantiation.cc.o" "gcc" "src/match/CMakeFiles/dbps_match.dir/instantiation.cc.o.d"
  "/root/repo/src/match/naive_matcher.cc" "src/match/CMakeFiles/dbps_match.dir/naive_matcher.cc.o" "gcc" "src/match/CMakeFiles/dbps_match.dir/naive_matcher.cc.o.d"
  "/root/repo/src/match/rete.cc" "src/match/CMakeFiles/dbps_match.dir/rete.cc.o" "gcc" "src/match/CMakeFiles/dbps_match.dir/rete.cc.o.d"
  "/root/repo/src/match/treat.cc" "src/match/CMakeFiles/dbps_match.dir/treat.cc.o" "gcc" "src/match/CMakeFiles/dbps_match.dir/treat.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/rules/CMakeFiles/dbps_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/dbps_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/dbps_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
