file(REMOVE_RECURSE
  "CMakeFiles/dbps_match.dir/conflict_resolution.cc.o"
  "CMakeFiles/dbps_match.dir/conflict_resolution.cc.o.d"
  "CMakeFiles/dbps_match.dir/conflict_set.cc.o"
  "CMakeFiles/dbps_match.dir/conflict_set.cc.o.d"
  "CMakeFiles/dbps_match.dir/instantiation.cc.o"
  "CMakeFiles/dbps_match.dir/instantiation.cc.o.d"
  "CMakeFiles/dbps_match.dir/naive_matcher.cc.o"
  "CMakeFiles/dbps_match.dir/naive_matcher.cc.o.d"
  "CMakeFiles/dbps_match.dir/rete.cc.o"
  "CMakeFiles/dbps_match.dir/rete.cc.o.d"
  "CMakeFiles/dbps_match.dir/treat.cc.o"
  "CMakeFiles/dbps_match.dir/treat.cc.o.d"
  "libdbps_match.a"
  "libdbps_match.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_match.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
