file(REMOVE_RECURSE
  "libdbps_match.a"
)
