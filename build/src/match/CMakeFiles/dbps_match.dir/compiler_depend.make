# Empty compiler generated dependencies file for dbps_match.
# This may be replaced when dependencies are built.
