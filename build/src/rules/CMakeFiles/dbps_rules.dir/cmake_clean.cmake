file(REMOVE_RECURSE
  "CMakeFiles/dbps_rules.dir/rhs_evaluator.cc.o"
  "CMakeFiles/dbps_rules.dir/rhs_evaluator.cc.o.d"
  "CMakeFiles/dbps_rules.dir/rule.cc.o"
  "CMakeFiles/dbps_rules.dir/rule.cc.o.d"
  "libdbps_rules.a"
  "libdbps_rules.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_rules.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
