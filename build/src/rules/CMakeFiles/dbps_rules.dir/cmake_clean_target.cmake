file(REMOVE_RECURSE
  "libdbps_rules.a"
)
