# Empty compiler generated dependencies file for dbps_rules.
# This may be replaced when dependencies are built.
