file(REMOVE_RECURSE
  "CMakeFiles/dbps_semantics.dir/abstract_ps.cc.o"
  "CMakeFiles/dbps_semantics.dir/abstract_ps.cc.o.d"
  "CMakeFiles/dbps_semantics.dir/replay_validator.cc.o"
  "CMakeFiles/dbps_semantics.dir/replay_validator.cc.o.d"
  "libdbps_semantics.a"
  "libdbps_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
