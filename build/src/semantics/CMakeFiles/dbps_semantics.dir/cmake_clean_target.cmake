file(REMOVE_RECURSE
  "libdbps_semantics.a"
)
