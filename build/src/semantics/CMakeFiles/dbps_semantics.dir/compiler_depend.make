# Empty compiler generated dependencies file for dbps_semantics.
# This may be replaced when dependencies are built.
