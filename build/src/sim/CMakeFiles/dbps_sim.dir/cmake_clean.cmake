file(REMOVE_RECURSE
  "CMakeFiles/dbps_sim.dir/paper_scenarios.cc.o"
  "CMakeFiles/dbps_sim.dir/paper_scenarios.cc.o.d"
  "CMakeFiles/dbps_sim.dir/speedup_model.cc.o"
  "CMakeFiles/dbps_sim.dir/speedup_model.cc.o.d"
  "libdbps_sim.a"
  "libdbps_sim.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
