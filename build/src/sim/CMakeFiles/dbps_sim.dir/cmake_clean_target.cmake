file(REMOVE_RECURSE
  "libdbps_sim.a"
)
