# Empty compiler generated dependencies file for dbps_sim.
# This may be replaced when dependencies are built.
