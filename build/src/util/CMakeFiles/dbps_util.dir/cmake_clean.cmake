file(REMOVE_RECURSE
  "CMakeFiles/dbps_util.dir/logging.cc.o"
  "CMakeFiles/dbps_util.dir/logging.cc.o.d"
  "CMakeFiles/dbps_util.dir/random.cc.o"
  "CMakeFiles/dbps_util.dir/random.cc.o.d"
  "CMakeFiles/dbps_util.dir/status.cc.o"
  "CMakeFiles/dbps_util.dir/status.cc.o.d"
  "CMakeFiles/dbps_util.dir/string_util.cc.o"
  "CMakeFiles/dbps_util.dir/string_util.cc.o.d"
  "CMakeFiles/dbps_util.dir/thread_pool.cc.o"
  "CMakeFiles/dbps_util.dir/thread_pool.cc.o.d"
  "libdbps_util.a"
  "libdbps_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
