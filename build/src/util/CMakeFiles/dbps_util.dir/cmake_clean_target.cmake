file(REMOVE_RECURSE
  "libdbps_util.a"
)
