# Empty dependencies file for dbps_util.
# This may be replaced when dependencies are built.
