file(REMOVE_RECURSE
  "CMakeFiles/dbps_value.dir/symbol_table.cc.o"
  "CMakeFiles/dbps_value.dir/symbol_table.cc.o.d"
  "CMakeFiles/dbps_value.dir/value.cc.o"
  "CMakeFiles/dbps_value.dir/value.cc.o.d"
  "libdbps_value.a"
  "libdbps_value.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_value.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
