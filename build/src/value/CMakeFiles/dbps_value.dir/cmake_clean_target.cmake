file(REMOVE_RECURSE
  "libdbps_value.a"
)
