# Empty compiler generated dependencies file for dbps_value.
# This may be replaced when dependencies are built.
