
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/wm/delta.cc" "src/wm/CMakeFiles/dbps_wm.dir/delta.cc.o" "gcc" "src/wm/CMakeFiles/dbps_wm.dir/delta.cc.o.d"
  "/root/repo/src/wm/schema.cc" "src/wm/CMakeFiles/dbps_wm.dir/schema.cc.o" "gcc" "src/wm/CMakeFiles/dbps_wm.dir/schema.cc.o.d"
  "/root/repo/src/wm/wme.cc" "src/wm/CMakeFiles/dbps_wm.dir/wme.cc.o" "gcc" "src/wm/CMakeFiles/dbps_wm.dir/wme.cc.o.d"
  "/root/repo/src/wm/working_memory.cc" "src/wm/CMakeFiles/dbps_wm.dir/working_memory.cc.o" "gcc" "src/wm/CMakeFiles/dbps_wm.dir/working_memory.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/value/CMakeFiles/dbps_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
