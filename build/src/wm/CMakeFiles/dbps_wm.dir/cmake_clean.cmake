file(REMOVE_RECURSE
  "CMakeFiles/dbps_wm.dir/delta.cc.o"
  "CMakeFiles/dbps_wm.dir/delta.cc.o.d"
  "CMakeFiles/dbps_wm.dir/schema.cc.o"
  "CMakeFiles/dbps_wm.dir/schema.cc.o.d"
  "CMakeFiles/dbps_wm.dir/wme.cc.o"
  "CMakeFiles/dbps_wm.dir/wme.cc.o.d"
  "CMakeFiles/dbps_wm.dir/working_memory.cc.o"
  "CMakeFiles/dbps_wm.dir/working_memory.cc.o.d"
  "libdbps_wm.a"
  "libdbps_wm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_wm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
