file(REMOVE_RECURSE
  "libdbps_wm.a"
)
