# Empty compiler generated dependencies file for dbps_wm.
# This may be replaced when dependencies are built.
