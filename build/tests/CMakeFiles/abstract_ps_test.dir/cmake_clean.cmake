file(REMOVE_RECURSE
  "CMakeFiles/abstract_ps_test.dir/semantics/abstract_ps_test.cc.o"
  "CMakeFiles/abstract_ps_test.dir/semantics/abstract_ps_test.cc.o.d"
  "abstract_ps_test"
  "abstract_ps_test.pdb"
  "abstract_ps_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/abstract_ps_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
