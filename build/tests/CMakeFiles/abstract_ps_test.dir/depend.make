# Empty dependencies file for abstract_ps_test.
# This may be replaced when dependencies are built.
