
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/lang/compiler_test.cc" "tests/CMakeFiles/compiler_test.dir/lang/compiler_test.cc.o" "gcc" "tests/CMakeFiles/compiler_test.dir/lang/compiler_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/sim/CMakeFiles/dbps_sim.dir/DependInfo.cmake"
  "/root/repo/build/src/semantics/CMakeFiles/dbps_semantics.dir/DependInfo.cmake"
  "/root/repo/build/src/engine/CMakeFiles/dbps_engine.dir/DependInfo.cmake"
  "/root/repo/build/src/analysis/CMakeFiles/dbps_analysis.dir/DependInfo.cmake"
  "/root/repo/build/src/lock/CMakeFiles/dbps_lock.dir/DependInfo.cmake"
  "/root/repo/build/src/match/CMakeFiles/dbps_match.dir/DependInfo.cmake"
  "/root/repo/build/src/lang/CMakeFiles/dbps_lang.dir/DependInfo.cmake"
  "/root/repo/build/src/rules/CMakeFiles/dbps_rules.dir/DependInfo.cmake"
  "/root/repo/build/src/wm/CMakeFiles/dbps_wm.dir/DependInfo.cmake"
  "/root/repo/build/src/value/CMakeFiles/dbps_value.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/dbps_util.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
