file(REMOVE_RECURSE
  "CMakeFiles/deadlock_policy_test.dir/lock/deadlock_policy_test.cc.o"
  "CMakeFiles/deadlock_policy_test.dir/lock/deadlock_policy_test.cc.o.d"
  "deadlock_policy_test"
  "deadlock_policy_test.pdb"
  "deadlock_policy_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/deadlock_policy_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
