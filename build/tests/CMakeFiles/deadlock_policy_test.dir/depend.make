# Empty dependencies file for deadlock_policy_test.
# This may be replaced when dependencies are built.
