# Empty compiler generated dependencies file for escalation_test.
# This may be replaced when dependencies are built.
