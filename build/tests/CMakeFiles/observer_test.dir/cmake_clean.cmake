file(REMOVE_RECURSE
  "CMakeFiles/observer_test.dir/engine/observer_test.cc.o"
  "CMakeFiles/observer_test.dir/engine/observer_test.cc.o.d"
  "observer_test"
  "observer_test.pdb"
  "observer_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/observer_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
