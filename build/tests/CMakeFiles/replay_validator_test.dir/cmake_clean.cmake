file(REMOVE_RECURSE
  "CMakeFiles/replay_validator_test.dir/semantics/replay_validator_test.cc.o"
  "CMakeFiles/replay_validator_test.dir/semantics/replay_validator_test.cc.o.d"
  "replay_validator_test"
  "replay_validator_test.pdb"
  "replay_validator_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/replay_validator_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
