# Empty dependencies file for replay_validator_test.
# This may be replaced when dependencies are built.
