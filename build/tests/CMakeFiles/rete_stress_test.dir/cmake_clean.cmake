file(REMOVE_RECURSE
  "CMakeFiles/rete_stress_test.dir/match/rete_stress_test.cc.o"
  "CMakeFiles/rete_stress_test.dir/match/rete_stress_test.cc.o.d"
  "rete_stress_test"
  "rete_stress_test.pdb"
  "rete_stress_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rete_stress_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
