file(REMOVE_RECURSE
  "CMakeFiles/rete_vs_naive_property_test.dir/match/rete_vs_naive_property_test.cc.o"
  "CMakeFiles/rete_vs_naive_property_test.dir/match/rete_vs_naive_property_test.cc.o.d"
  "rete_vs_naive_property_test"
  "rete_vs_naive_property_test.pdb"
  "rete_vs_naive_property_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/rete_vs_naive_property_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
