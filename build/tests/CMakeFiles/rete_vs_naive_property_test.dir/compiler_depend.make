# Empty compiler generated dependencies file for rete_vs_naive_property_test.
# This may be replaced when dependencies are built.
