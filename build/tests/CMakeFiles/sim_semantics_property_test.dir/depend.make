# Empty dependencies file for sim_semantics_property_test.
# This may be replaced when dependencies are built.
