file(REMOVE_RECURSE
  "CMakeFiles/single_thread_test.dir/engine/single_thread_test.cc.o"
  "CMakeFiles/single_thread_test.dir/engine/single_thread_test.cc.o.d"
  "single_thread_test"
  "single_thread_test.pdb"
  "single_thread_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/single_thread_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
