# Empty compiler generated dependencies file for single_thread_test.
# This may be replaced when dependencies are built.
