file(REMOVE_RECURSE
  "CMakeFiles/speedup_model_test.dir/sim/speedup_model_test.cc.o"
  "CMakeFiles/speedup_model_test.dir/sim/speedup_model_test.cc.o.d"
  "speedup_model_test"
  "speedup_model_test.pdb"
  "speedup_model_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/speedup_model_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
