# Empty dependencies file for speedup_model_test.
# This may be replaced when dependencies are built.
