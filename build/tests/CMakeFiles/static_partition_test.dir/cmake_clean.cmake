file(REMOVE_RECURSE
  "CMakeFiles/static_partition_test.dir/engine/static_partition_test.cc.o"
  "CMakeFiles/static_partition_test.dir/engine/static_partition_test.cc.o.d"
  "static_partition_test"
  "static_partition_test.pdb"
  "static_partition_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/static_partition_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
