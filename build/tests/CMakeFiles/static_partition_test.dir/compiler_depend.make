# Empty compiler generated dependencies file for static_partition_test.
# This may be replaced when dependencies are built.
