file(REMOVE_RECURSE
  "CMakeFiles/wm_concurrency_test.dir/wm/wm_concurrency_test.cc.o"
  "CMakeFiles/wm_concurrency_test.dir/wm/wm_concurrency_test.cc.o.d"
  "wm_concurrency_test"
  "wm_concurrency_test.pdb"
  "wm_concurrency_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_concurrency_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
