# Empty compiler generated dependencies file for wm_concurrency_test.
# This may be replaced when dependencies are built.
