file(REMOVE_RECURSE
  "CMakeFiles/wm_test.dir/wm/wm_test.cc.o"
  "CMakeFiles/wm_test.dir/wm/wm_test.cc.o.d"
  "wm_test"
  "wm_test.pdb"
  "wm_test[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wm_test.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
