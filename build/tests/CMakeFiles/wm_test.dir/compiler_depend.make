# Empty compiler generated dependencies file for wm_test.
# This may be replaced when dependencies are built.
