file(REMOVE_RECURSE
  "CMakeFiles/dbps_run.dir/dbps_run.cc.o"
  "CMakeFiles/dbps_run.dir/dbps_run.cc.o.d"
  "dbps_run"
  "dbps_run.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dbps_run.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
