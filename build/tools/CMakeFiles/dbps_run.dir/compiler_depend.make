# Empty compiler generated dependencies file for dbps_run.
# This may be replaced when dependencies are built.
