// An R1/XCON-style configurator (the paper cites McDermott's R1 as the
// canonical production-system expert application): given a customer
// order, the rules pick a chassis, add required components, check power
// and slot budgets, and either complete the configuration or flag it.
//
// Runs single-threaded with the MEA strategy (the OPS5 default for
// goal-directed programs) and prints the decision trace.
//
//   $ ./build/examples/expert_config

#include <cstdio>

#include "dbps.h"

namespace {

constexpr const char* kProgram = R"(
(relation goal     (task symbol) (order int))
(relation order    (id int) (cpus int) (disks int) (state symbol))
(relation chassis  (model symbol) (slots int) (watts int) (taken int))
(relation part     (order int) (kind symbol) (slots int) (watts int))
(relation config   (order int) (chassis symbol) (slots-left int)
                   (watts-left int) (state symbol))
(relation report   (order int) (verdict symbol))

; Step 1: pick the smallest chassis that is still free.
(rule pick-chassis :priority 50
  (goal ^task configure ^order <o>)
  (order ^id <o> ^state new)
  (chassis ^model <m> ^taken 0 ^slots <s> ^watts <w>)
  -(chassis ^taken 0 ^slots { < <s> })
  -->
  (modify 3 ^taken 1)
  (make config ^order <o> ^chassis <m> ^slots-left <s> ^watts-left <w>
               ^state filling)
  (modify 2 ^state configuring))

; Step 2: expand the order into required parts (one rule per component
; class, driven by counters on the order).
(rule add-cpu :priority 40
  (order ^id <o> ^state configuring ^cpus { > 0 } ^cpus <n>)
  -->
  (modify 1 ^cpus (- <n> 1))
  (make part ^order <o> ^kind cpu ^slots 1 ^watts 90))

(rule add-disk :priority 40
  (order ^id <o> ^state configuring ^disks { > 0 } ^disks <n>)
  -->
  (modify 1 ^disks (- <n> 1))
  (make part ^order <o> ^kind disk ^slots 1 ^watts 30))

; Step 3: place parts into the chassis while budget remains.
(rule place-part :priority 30
  (config ^order <o> ^state filling ^slots-left { > 0 } ^slots-left <sl>
          ^watts-left <wl>)
  (part ^order <o> ^slots <ps> ^watts { <= <wl> } ^watts <pw>)
  -->
  (modify 1 ^slots-left (- <sl> <ps>) ^watts-left (- <wl> <pw>))
  (remove 2))

; Step 4a: all parts placed and the order is fully expanded -> complete.
(rule complete :priority 20
  (goal ^task configure ^order <o>)
  (order ^id <o> ^state configuring ^cpus 0 ^disks 0)
  (config ^order <o> ^state filling)
  -(part ^order <o>)
  -->
  (modify 3 ^state complete)
  (modify 2 ^state done)
  (make report ^order <o> ^verdict configured)
  (remove 1))

; Step 4b: parts remain but nothing fits -> flag for manual review.
(rule flag :priority 10
  (goal ^task configure ^order <o>)
  (config ^order <o> ^state filling)
  (part ^order <o>)
  -->
  (modify 2 ^state flagged)
  (make report ^order <o> ^verdict needs-review)
  (remove 1))
)";

}  // namespace

int main() {
  using namespace dbps;

  WorkingMemory wm;
  auto rules_or = LoadProgram(kProgram, &wm);
  if (!rules_or.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 rules_or.status().ToString().c_str());
    return 1;
  }

  // Catalogue and two customer orders; order 2 is too big for anything.
  struct {
    const char* model;
    int slots;
    int watts;
  } chassis[] = {{"mini", 3, 200}, {"tower", 6, 500}, {"rack", 12, 900}};
  for (const auto& c : chassis) {
    DBPS_CHECK(wm.Insert("chassis",
                         {Value::Symbol(c.model), Value::Int(c.slots),
                          Value::Int(c.watts), Value::Int(0)})
                   .ok());
  }
  DBPS_CHECK(wm.Insert("order", {Value::Int(1), Value::Int(1),
                                 Value::Int(2), Value::Symbol("new")})
                 .ok());
  DBPS_CHECK(wm.Insert("order", {Value::Int(2), Value::Int(2),
                                 Value::Int(8), Value::Symbol("new")})
                 .ok());
  DBPS_CHECK(
      wm.Insert("goal", {Value::Symbol("configure"), Value::Int(1)}).ok());
  DBPS_CHECK(
      wm.Insert("goal", {Value::Symbol("configure"), Value::Int(2)}).ok());

  EngineOptions options;
  options.strategy = ConflictResolution::kPriority;
  SingleThreadEngine engine(&wm, rules_or.ValueOrDie(), options);
  auto result_or = engine.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }

  std::printf("decision trace (%llu firings):\n",
              (unsigned long long)result_or.ValueOrDie().stats.firings);
  for (const auto& record : result_or.ValueOrDie().log) {
    std::printf("  %2llu. %s\n", (unsigned long long)record.seq + 1,
                record.key.rule_name.c_str());
  }

  std::printf("\nverdicts:\n");
  for (const auto& report : wm.Scan(Sym("report"))) {
    std::printf("  order %s -> %s\n", report->value(0).ToString().c_str(),
                report->value(1).ToString().c_str());
  }
  std::printf("\nconfigurations:\n");
  for (const auto& config : wm.Scan(Sym("config"))) {
    std::printf(
        "  order %s in chassis %s: %s slots and %s watts left (%s)\n",
        config->value(0).ToString().c_str(),
        config->value(1).ToString().c_str(),
        config->value(2).ToString().c_str(),
        config->value(3).ToString().c_str(),
        config->value(4).ToString().c_str());
  }
  return 0;
}
