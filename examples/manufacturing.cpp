// Manufacturing / process control — the paper's motivating database
// application ("many new database applications, e.g., manufacturing and
// process control, need some rule based reasoning").
//
// A shop floor of machines consumes a queue of work orders. Sensors file
// readings; monitoring rules raise and clear alarms; scheduling rules
// assign orders to idle machines; processing rules complete them. The
// whole system runs on the PARALLEL engine under the paper's Rc/Ra/Wa
// locking scheme, and the commit log is replay-validated against
// single-thread semantics before the program reports success.
//
//   $ ./build/examples/manufacturing

#include <cstdio>

#include "dbps.h"

namespace {

constexpr const char* kProgram = R"(
(relation machine (id int) (kind symbol) (state symbol) (order int))
(relation order   (id int) (kind symbol) (state symbol) (steps int))
(relation reading (machine int) (temp int))
(relation alarm   (machine int))

; --- monitoring -----------------------------------------------------
; An overheating reading raises an alarm (once).
(rule raise-alarm :priority 20 :cost 100
  (reading ^machine <m> ^temp { > 90 })
  -(alarm ^machine <m>)
  -->
  (make alarm ^machine <m>))

; A cool reading clears the alarm and is consumed.
(rule clear-alarm :priority 20 :cost 100
  (reading ^machine <m> ^temp { <= 90 })
  (alarm ^machine <m>)
  -->
  (remove 1)
  (remove 2))

; Consumed: readings that changed nothing.
(rule drop-reading :priority 5 :cost 50
  (reading ^machine <m> ^temp <t>)
  -->
  (remove 1))

; --- scheduling -------------------------------------------------------
; Assign a queued order to an idle, un-alarmed machine of the right kind.
(rule assign :priority 15 :cost 200
  (order ^id <o> ^kind <k> ^state queued)
  (machine ^kind <k> ^state idle ^id <m>)
  -(alarm ^machine <m>)
  -->
  (modify 2 ^state busy ^order <o>)
  (modify 1 ^state running))

; --- processing --------------------------------------------------------
; A running order advances one step on its machine.
(rule step :priority 10 :cost 300
  (machine ^id <m> ^state busy ^order <o>)
  (order ^id <o> ^state running ^steps { > 0 } ^steps <s>)
  -->
  (modify 2 ^steps (- <s> 1)))

; Order finished: free the machine.
(rule finish :priority 12 :cost 150
  (machine ^id <m> ^state busy ^order <o>)
  (order ^id <o> ^state running ^steps 0)
  -->
  (modify 2 ^state done)
  (modify 1 ^state idle ^order 0))
)";

}  // namespace

int main() {
  using namespace dbps;

  WorkingMemory wm;
  auto rules_or = LoadProgram(kProgram, &wm);
  if (!rules_or.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 rules_or.status().ToString().c_str());
    return 1;
  }
  RuleSetPtr rules = rules_or.ValueOrDie();

  // The shop floor: 6 machines of 2 kinds, 14 orders, a burst of sensor
  // readings (two of them hot).
  const char* kinds[] = {"mill", "lathe"};
  for (int m = 0; m < 6; ++m) {
    DBPS_CHECK(wm.Insert("machine",
                         {Value::Int(m), Value::Symbol(kinds[m % 2]),
                          Value::Symbol("idle"), Value::Int(0)})
                   .ok());
  }
  for (int o = 1; o <= 14; ++o) {
    DBPS_CHECK(wm.Insert("order",
                         {Value::Int(o), Value::Symbol(kinds[o % 2]),
                          Value::Symbol("queued"), Value::Int(2 + o % 3)})
                   .ok());
  }
  for (int m = 0; m < 6; ++m) {
    DBPS_CHECK(
        wm.Insert("reading", {Value::Int(m), Value::Int(70 + 5 * m)})
            .ok());  // machines 5 runs hot (95)
  }

  auto pristine = wm.Clone();

  ParallelEngineOptions options;
  options.num_workers = 4;
  options.protocol = LockProtocol::kRcRaWa;
  options.abort_policy = AbortPolicy::kRevalidate;
  ParallelEngine engine(&wm, rules, options);
  auto result_or = engine.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const RunResult& result = result_or.ValueOrDie();

  std::printf("shop floor quiesced: %s\n",
              result.stats.ToString().c_str());
  std::printf("peak parallel firings: %d (Np=4)\n",
              result.stats.peak_parallel_executions);

  int done = 0;
  for (const auto& order : wm.Scan(Sym("order"))) {
    if (order->value(2) == Value::Symbol("done")) ++done;
  }
  std::printf("orders completed: %d / 14\n", done);
  std::printf("open alarms: %zu (machine 5 ran hot)\n",
              wm.Count(Sym("alarm")));

  // Semantic consistency check (Definition 3.2): the parallel commit log
  // must be a valid single-thread sequence.
  Status valid = ValidateReplay(pristine.get(), rules, result.log);
  std::printf("replay validation: %s\n", valid.ToString().c_str());
  if (!valid.ok()) return 1;

  std::printf("\nfinal state:\n%s", wm.ToString().c_str());
  return 0;
}
