// Multi-user sessions over ONE shared database (§2, user-visible
// parallelism): external clients transact against working memory while
// the parallel engine fires rules on it — the defining workload of a
// *database* production system.
//
// Three client sessions submit orders through the SessionManager; the
// rule program approves and ships them concurrently. Every client commit
// goes through the engine's Rc/Ra/Wa commit path, so the single
// committed log interleaves rule firings and client transactions and is
// replay-validated at the end (Definition 3.2, multi-user form).
//
//   $ ./build/examples/multi_user

#include <cstdio>
#include <thread>
#include <vector>

#include "dbps.h"

namespace {

using namespace dbps;

constexpr int kSessions = 3;
constexpr int kOrdersPerSession = 4;

const char* kProgram = R"(
(relation order (id int) (state symbol))
(relation shipped (id int))

(rule approve :cost 300
  (order ^id <o> ^state new) --> (modify 1 ^state approved))
(rule ship :cost 300
  (order ^id <o> ^state approved) --> (remove 1) (make shipped ^id <o>))
)";

}  // namespace

int main() {
  WorkingMemory wm;
  auto rules = LoadProgram(kProgram, &wm).ValueOrDie();
  auto pristine = wm.Clone();  // for replay validation

  // Server assembly: manager first, then the engine pointing at it.
  SessionManager manager(&wm);
  JournalFeed journal;
  ParallelEngineOptions options;
  options.num_workers = 2;
  options.protocol = LockProtocol::kRcRaWa;
  options.base.observer = journal.MakeObserver();
  options.external_source = &manager;
  ParallelEngine engine(&wm, rules, options);
  manager.BindEngine(&engine);

  StatusOr<RunResult> result{Status::Internal("not run")};
  std::thread serve([&] { result = engine.Run(); });

  // Clients: each session submits its orders, one transaction each, and
  // checks its own view with a repeatable-read query.
  std::vector<std::thread> clients;
  for (int c = 0; c < kSessions; ++c) {
    clients.emplace_back([&, c] {
      auto session =
          manager.Connect("user-" + std::to_string(c)).ValueOrDie();
      for (int i = 0; i < kOrdersPerSession; ++i) {
        const int64_t order_id = c * 100 + i;
        for (;;) {  // retry if victimized by a conflicting commit
          DBPS_CHECK_OK(session->Begin());
          Delta delta;
          delta.Create(Sym("order"),
                       {Value::Int(order_id), Value::Symbol("new")});
          if (!session->Write(delta).ok()) continue;
          if (session->Commit().ok()) break;
        }
      }
      DBPS_CHECK_OK(session->Begin());
      auto mine = session->Query("(shipped ^id { >= " +
                                 std::to_string(c * 100) + " })");
      DBPS_CHECK(mine.ok()) << mine.status().ToString();
      (void)session->Commit();
      session->Close();
    });
  }
  for (auto& t : clients) t.join();
  manager.Close();  // drained -> the engine finishes draining rules
  serve.join();

  const RunResult& run = result.ValueOrDie();

  // The committed log (rule firings + client transactions) must be a
  // valid single-thread sequence with the client inputs at their logged
  // commit points.
  DBPS_CHECK_OK(ValidateReplay(pristine.get(), rules, run.log));
  // ...and the replayed database must BE the final database.
  DBPS_CHECK_EQ(pristine->TotalCount(), wm.TotalCount());

  // Every submitted order was approved and shipped.
  const int total = kSessions * kOrdersPerSession;
  DBPS_CHECK_EQ(wm.Count(Sym("order")), 0u);
  DBPS_CHECK_EQ(wm.Count(Sym("shipped")), (size_t)total);

  // Durability: the journal feed captured every commit; replaying it
  // against the initial state also reproduces the final database.
  auto replayed = WorkingMemory();
  {
    auto again = LoadProgram(kProgram, &replayed);
    DBPS_CHECK_OK(again.status());
    DBPS_CHECK_OK(ReplayJournal(journal.TextFrom(0), &replayed));
    DBPS_CHECK_EQ(replayed.Count(Sym("shipped")), (size_t)total);
  }

  auto stats = manager.GetStats();
  std::printf("multi-user run over one shared working memory:\n");
  std::printf("  sessions               %llu (peak %zu)\n",
              (unsigned long long)stats.sessions_admitted,
              stats.peak_sessions);
  std::printf("  client commits         %llu (aborted+retried %llu)\n",
              (unsigned long long)run.stats.client_commits,
              (unsigned long long)run.stats.client_aborts);
  std::printf("  rule firings           %llu (aborts %llu)\n",
              (unsigned long long)run.stats.firings,
              (unsigned long long)run.stats.aborts);
  std::printf("  peak parallel firings  %d\n",
              run.stats.peak_parallel_executions);
  std::printf("  journal lines          %zu\n", journal.size());
  std::printf("  orders shipped         %d/%d\n", total, total);
  std::printf(
      "\nreplay validation passed: the interleaved log of rule firings\n"
      "and client transactions is semantically consistent (Def. 3.2).\n");
  return 0;
}
