// User-visible parallelism (§2): "dividing a task into non-interacting
// subtasks" and "tasks of different users can be done in parallel".
//
// Three independent users each own a partition of the database (their
// own relations) and their own rule program. Because the partitions are
// disjoint, the tasks need no concurrency control *between* them — each
// runs its own engine on its own thread (and each engine may itself be
// parallel: two layers of parallelism, user-visible over
// user-transparent).
//
//   $ ./build/examples/multi_user

#include <cstdio>
#include <thread>
#include <vector>

#include "dbps.h"

namespace {

using namespace dbps;

struct UserTask {
  std::string name;
  std::string program;
  uint64_t expected_firings;
};

std::vector<UserTask> MakeTasks() {
  return {
      // User 1: order processing.
      UserTask{"orders", R"(
(relation po (id int) (state symbol))
(rule approve :cost 400 (po ^id <o> ^state new) --> (modify 1 ^state approved))
(rule ship    :cost 400 (po ^id <o> ^state approved) --> (modify 1 ^state shipped))
(make po ^id 1 ^state new) (make po ^id 2 ^state new)
(make po ^id 3 ^state new) (make po ^id 4 ^state new)
)",
               8},
      // User 2: sensor aggregation.
      UserTask{"sensors", R"(
(relation sample (sensor int) (v int))
(relation total (sensor int) (sum int))
(rule fold :cost 400
  (sample ^sensor <s> ^v <v>)
  (total ^sensor <s> ^sum <t>)
  -->
  (modify 2 ^sum (+ <t> <v>))
  (remove 1))
(make total ^sensor 1 ^sum 0) (make total ^sensor 2 ^sum 0)
(make sample ^sensor 1 ^v 10) (make sample ^sensor 1 ^v 20)
(make sample ^sensor 2 ^v 5)  (make sample ^sensor 2 ^v 7)
(make sample ^sensor 2 ^v 9)
)",
               5},
      // User 3: ticket triage.
      UserTask{"tickets", R"(
(relation ticket (id int) (sev int) (queue symbol))
(rule triage-high :cost 400
  (ticket ^sev { >= 8 } ^queue inbox) --> (modify 1 ^queue oncall))
(rule triage-low :cost 400
  (ticket ^sev { < 8 } ^queue inbox) --> (modify 1 ^queue backlog))
(make ticket ^id 1 ^sev 9 ^queue inbox)
(make ticket ^id 2 ^sev 3 ^queue inbox)
(make ticket ^id 3 ^sev 8 ^queue inbox)
(make ticket ^id 4 ^sev 1 ^queue inbox)
)",
               4},
  };
}

}  // namespace

int main() {
  auto tasks = MakeTasks();

  // Serial baseline: one user after another, single-threaded.
  double serial_ms = 0;
  for (const auto& task : tasks) {
    WorkingMemory wm;
    auto rules = LoadProgram(task.program, &wm).ValueOrDie();
    SingleThreadEngine engine(&wm, rules);
    Stopwatch stopwatch;
    auto result = engine.Run().ValueOrDie();
    serial_ms += stopwatch.ElapsedSeconds() * 1e3;
    DBPS_CHECK_EQ(result.stats.firings, task.expected_firings);
  }

  // User-visible parallelism: one thread per user, each running a
  // parallel engine over its own partition.
  Stopwatch wall;
  std::vector<std::thread> threads;
  std::vector<uint64_t> firings(tasks.size());
  for (size_t i = 0; i < tasks.size(); ++i) {
    threads.emplace_back([&, i] {
      WorkingMemory wm;
      auto rules = LoadProgram(tasks[i].program, &wm).ValueOrDie();
      auto pristine = wm.Clone();
      ParallelEngineOptions options;
      options.num_workers = 2;
      ParallelEngine engine(&wm, rules, options);
      auto result = engine.Run().ValueOrDie();
      DBPS_CHECK_OK(ValidateReplay(pristine.get(), rules, result.log));
      firings[i] = result.stats.firings;
    });
  }
  for (auto& t : threads) t.join();
  double parallel_ms = wall.ElapsedSeconds() * 1e3;

  std::printf("three users, disjoint database partitions:\n");
  for (size_t i = 0; i < tasks.size(); ++i) {
    std::printf("  %-8s %llu firings (expected %llu)\n",
                tasks[i].name.c_str(), (unsigned long long)firings[i],
                (unsigned long long)tasks[i].expected_firings);
    DBPS_CHECK_EQ(firings[i], tasks[i].expected_firings);
  }
  std::printf(
      "\nserial (one user at a time): %6.1fms\n"
      "user-parallel (3 tasks x 2 workers): %6.1fms  (speedup %.2f)\n",
      serial_ms, parallel_ms, serial_ms / parallel_ms);
  std::printf(
      "\nno locking is needed *between* users — their partitions are\n"
      "disjoint (the paper's user-visible parallelism); within each task\n"
      "the Rc/Ra/Wa engine provides the user-transparent kind.\n");
  return 0;
}
