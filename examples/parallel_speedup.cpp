// Parallel speedup, two ways:
//   (a) the paper's §5 idealized multiprocessor model (exact worked
//       examples, Figures 5.1-5.4), and
//   (b) the same phenomenon measured on the real threaded engine with
//       the Rc/Ra/Wa lock manager.
//
//   $ ./build/examples/parallel_speedup

#include <cstdio>

#include "dbps.h"

namespace {

using namespace dbps;

void IdealizedModel() {
  std::printf("=== (a) the paper's idealized model (Section 5) ===\n");
  struct {
    const char* name;
    sim::SimConfig config;
    std::vector<size_t> sigma;
  } scenarios[] = {
      {"Fig 5.1 base case", sim::Figure51Config(), sim::Sigma1()},
      {"Fig 5.2 more conflict", sim::Figure52Config(), sim::Sigma2()},
      {"Fig 5.3 longer P2", sim::Figure53Config(), sim::Sigma1()},
      {"Fig 5.4 Np=3", sim::Figure54Config(), sim::Sigma1()},
  };
  for (auto& scenario : scenarios) {
    double t_single =
        sim::SingleThreadTime(scenario.config, scenario.sigma).ValueOrDie();
    auto result = sim::SimulateMultiThread(scenario.config);
    std::printf("  %-22s T_single=%4.1f  T_multi=%4.1f  speedup=%.2f\n",
                scenario.name, t_single, result.makespan,
                t_single / result.makespan);
  }
}

void RealEngine() {
  std::printf(
      "\n=== (b) the real engine: 12 independent pipelines, Np sweep ===\n");
  auto build = [](WorkingMemory* wm) {
    auto rules = LoadProgram(R"(
      (relation stage (pipeline int) (left int))
      (rule advance :cost 400
        (stage ^pipeline <p> ^left { > 0 } ^left <l>)
        -->
        (modify 1 ^left (- <l> 1)))
    )",
                             wm)
                     .ValueOrDie();
    for (int p = 0; p < 12; ++p) {
      DBPS_CHECK(
          wm->Insert("stage", {Value::Int(p), Value::Int(6)}).ok());
    }
    return rules;
  };

  double baseline_ms = 0;
  for (size_t workers : {1, 2, 4, 8}) {
    WorkingMemory wm;
    auto rules = build(&wm);
    auto pristine = wm.Clone();
    ParallelEngineOptions options;
    options.num_workers = workers;
    ParallelEngine engine(&wm, rules, options);
    Stopwatch stopwatch;
    auto result = engine.Run().ValueOrDie();
    double ms = stopwatch.ElapsedSeconds() * 1e3;
    if (workers == 1) baseline_ms = ms;
    DBPS_CHECK_OK(ValidateReplay(pristine.get(), rules, result.log));
    std::printf(
        "  Np=%zu: %6.1fms  speedup=%.2f  peak parallel firings=%d  "
        "(log replay: OK)\n",
        workers, ms, baseline_ms / ms,
        result.stats.peak_parallel_executions);
  }
  std::printf(
      "\n(72 firings x 400us; :cost uses the sleep cost-model, so each\n"
      " worker thread simulates one dedicated processor regardless of\n"
      " host core count — see DESIGN.md)\n");
}

}  // namespace

int main() {
  IdealizedModel();
  RealEngine();
  return 0;
}
