// Quickstart: define a database production system in the rule language,
// run it on the single-thread interpreter, inspect the results.
//
//   $ ./build/examples/quickstart

#include <cstdio>

#include "dbps.h"

int main() {
  using namespace dbps;

  // 1. A working memory (the database) plus a rule program. LoadProgram
  //    creates the declared relations, inserts the (make ...) facts, and
  //    compiles the rules.
  WorkingMemory wm;
  auto rules_or = LoadProgram(R"(
    (relation account (owner symbol) (balance int))
    (relation transfer (from symbol) (to symbol) (amount int))

    ; Apply one transfer: debit, credit, consume the request.
    (rule apply-transfer
      (transfer ^from <f> ^to <t> ^amount <a>)
      (account ^owner <f> ^balance { >= <a> } ^balance <fb>)
      (account ^owner <t> ^balance <tb>)
      -->
      (modify 2 ^balance (- <fb> <a>))
      (modify 3 ^balance (+ <tb> <a>))
      (remove 1))

    ; Reject a transfer that would overdraw (lower priority: only fires
    ; when apply-transfer cannot).
    (rule reject-transfer :priority -1
      (transfer ^from <f> ^amount <a>)
      (account ^owner <f> ^balance { < <a> })
      -->
      (remove 1))

    (make account ^owner alice ^balance 100)
    (make account ^owner bob   ^balance 20)
    (make transfer ^from alice ^to bob ^amount 60)
    (make transfer ^from bob   ^to alice ^amount 200)  ; will be rejected
    (make transfer ^from alice ^to bob ^amount 30)
  )",
                              &wm);
  if (!rules_or.ok()) {
    std::fprintf(stderr, "compile error: %s\n",
                 rules_or.status().ToString().c_str());
    return 1;
  }

  // 2. Run match-select-execute until quiescence.
  SingleThreadEngine engine(&wm, rules_or.ValueOrDie());
  auto result_or = engine.Run();
  if (!result_or.ok()) {
    std::fprintf(stderr, "run failed: %s\n",
                 result_or.status().ToString().c_str());
    return 1;
  }
  const RunResult& result = result_or.ValueOrDie();

  // 3. Inspect.
  std::printf("fired %llu productions:\n",
              (unsigned long long)result.stats.firings);
  for (const auto& record : result.log) {
    std::printf("  %llu. %s  %s\n", (unsigned long long)record.seq + 1,
                record.key.rule_name.c_str(),
                record.delta.ToString().c_str());
  }
  std::printf("\nfinal database state:\n%s", wm.ToString().c_str());
  return 0;
}
