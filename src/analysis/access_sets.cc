#include "analysis/access_sets.h"

#include <algorithm>

namespace dbps {

bool AttrFootprint::Overlaps(const AttrFootprint& other) const {
  if (fields.empty() && !whole) return false;
  if (other.fields.empty() && !other.whole) return false;
  if (whole || other.whole) return true;
  for (size_t field : fields) {
    if (other.fields.count(field) != 0) return true;
  }
  return false;
}

namespace {

/// Adds every binding reference inside `expr` as a field read.
void CollectExprReads(const Expr& expr, const Rule& rule,
                      RuleAccess* access) {
  switch (expr.kind) {
    case Expr::Kind::kConstant:
      return;
    case Expr::Kind::kBinding: {
      size_t cond_index = rule.PositiveConditionIndex(expr.ce);
      SymbolId relation = rule.conditions()[cond_index].relation;
      access->reads[relation].AddField(expr.field);
      return;
    }
    case Expr::Kind::kBinary:
      CollectExprReads(*expr.lhs, rule, access);
      CollectExprReads(*expr.rhs, rule, access);
      return;
  }
}

}  // namespace

RuleAccess AnalyzeRule(const Rule& rule) {
  RuleAccess access;

  for (const auto& cond : rule.conditions()) {
    if (cond.negated) {
      // Absence is a predicate over the whole relation.
      access.reads[cond.relation].AddWhole();
      continue;
    }
    AttrFootprint& reads = access.reads[cond.relation];
    for (const auto& test : cond.constant_tests) reads.AddField(test.field);
    for (const auto& test : cond.member_tests) reads.AddField(test.field);
    for (const auto& test : cond.intra_tests) {
      reads.AddField(test.field);
      reads.AddField(test.other_field);
    }
    for (const auto& test : cond.join_tests) {
      reads.AddField(test.field);
      size_t other_cond = rule.PositiveConditionIndex(test.other_ce);
      access.reads[rule.conditions()[other_cond].relation].AddField(
          test.other_field);
    }
  }

  for (const auto& action : rule.actions()) {
    if (const auto* make = std::get_if<MakeAction>(&action)) {
      access.writes[make->relation].AddWhole();
      for (const auto& expr : make->values) {
        CollectExprReads(expr, rule, &access);
      }
    } else if (const auto* modify = std::get_if<ModifyAction>(&action)) {
      size_t cond_index = rule.PositiveConditionIndex(modify->ce);
      SymbolId relation = rule.conditions()[cond_index].relation;
      for (const auto& [field, expr] : modify->assigns) {
        access.writes[relation].AddField(field);
        CollectExprReads(expr, rule, &access);
      }
    } else if (const auto* remove = std::get_if<RemoveAction>(&action)) {
      size_t cond_index = rule.PositiveConditionIndex(remove->ce);
      access.writes[rule.conditions()[cond_index].relation].AddWhole();
    }
  }
  return access;
}

namespace {
bool FootprintMapsOverlap(const std::map<SymbolId, AttrFootprint>& a,
                          const std::map<SymbolId, AttrFootprint>& b) {
  for (const auto& [relation, footprint] : a) {
    auto it = b.find(relation);
    if (it != b.end() && footprint.Overlaps(it->second)) return true;
  }
  return false;
}
}  // namespace

bool Interferes(const RuleAccess& a, const RuleAccess& b) {
  return FootprintMapsOverlap(a.writes, b.reads) ||
         FootprintMapsOverlap(a.writes, b.writes) ||
         FootprintMapsOverlap(b.writes, a.reads);
}

InstAccess AnalyzeInstantiation(const Instantiation& inst) {
  InstAccess access;
  const Rule& rule = *inst.rule();

  for (const auto& wme : inst.matched()) {
    access.reads.push_back(LockObjectId{wme->relation(), wme->id()});
  }
  for (const auto& cond : rule.conditions()) {
    if (cond.negated) {
      access.reads.push_back(LockObjectId{cond.relation, kRelationLevel});
    }
  }
  for (const auto& action : rule.actions()) {
    if (const auto* make = std::get_if<MakeAction>(&action)) {
      access.writes.push_back(LockObjectId{make->relation, kRelationLevel});
    } else if (const auto* modify = std::get_if<ModifyAction>(&action)) {
      const WmePtr& target = inst.matched()[modify->ce];
      access.writes.push_back(LockObjectId{target->relation(), target->id()});
    } else if (const auto* remove = std::get_if<RemoveAction>(&action)) {
      const WmePtr& target = inst.matched()[remove->ce];
      access.writes.push_back(LockObjectId{target->relation(), target->id()});
    }
  }

  auto dedupe = [](std::vector<LockObjectId>* v) {
    std::sort(v->begin(), v->end());
    v->erase(std::unique(v->begin(), v->end()), v->end());
  };
  dedupe(&access.reads);
  dedupe(&access.writes);
  return access;
}

bool ObjectsOverlap(const LockObjectId& a, const LockObjectId& b) {
  if (a.relation != b.relation) return false;
  if (a.is_relation_level() || b.is_relation_level()) return true;
  return a.wme == b.wme;
}

bool Interferes(const InstAccess& a, const InstAccess& b) {
  auto any_overlap = [](const std::vector<LockObjectId>& xs,
                        const std::vector<LockObjectId>& ys) {
    for (const auto& x : xs) {
      for (const auto& y : ys) {
        if (ObjectsOverlap(x, y)) return true;
      }
    }
    return false;
  };
  return any_overlap(a.writes, b.reads) || any_overlap(a.writes, b.writes) ||
         any_overlap(b.writes, a.reads);
}

std::vector<WmeId> DeltaWriteSet(const Delta& delta) {
  std::vector<WmeId> writes;
  for (const WmOp& op : delta.ops()) {
    if (const auto* modify = std::get_if<ModifyOp>(&op)) {
      writes.push_back(modify->id);
    } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
      writes.push_back(del->id);
    }
  }
  std::sort(writes.begin(), writes.end());
  writes.erase(std::unique(writes.begin(), writes.end()), writes.end());
  return writes;
}

bool WriteSetsOverlap(const std::vector<WmeId>& a,
                      const std::vector<WmeId>& b) {
  auto ia = a.begin();
  auto ib = b.begin();
  while (ia != a.end() && ib != b.end()) {
    if (*ia < *ib) {
      ++ia;
    } else if (*ib < *ia) {
      ++ib;
    } else {
      return true;
    }
  }
  return false;
}

}  // namespace dbps
