// Access-set analysis: what a rule (statically) or an instantiation
// (dynamically) reads and writes.
//
// Two granularities:
//  * RuleAccess — relation+attribute level, derivable from rule text
//    alone. This is the substrate of the paper's *static approach* (§4.1):
//    rules whose write sets don't touch each other's read/write sets are
//    non-interfering (footnote 4: the criterion is exactly conflicting
//    database operations).
//  * InstAccess — lock-object level (tuples + escalated relations),
//    computable once the match is known. Used by StaticPartitionEngine's
//    per-cycle partitioning and by the dynamic engines' lock acquisition.

#ifndef DBPS_ANALYSIS_ACCESS_SETS_H_
#define DBPS_ANALYSIS_ACCESS_SETS_H_

#include <map>
#include <set>
#include <vector>

#include "lock/lock_types.h"
#include "match/instantiation.h"
#include "rules/rule.h"
#include "wm/delta.h"

namespace dbps {

/// \brief Attribute footprint within one relation. `whole` subsumes any
/// field set (negations, removes, and makes touch the whole relation).
struct AttrFootprint {
  bool whole = false;
  std::set<size_t> fields;

  void AddField(size_t field) {
    if (!whole) fields.insert(field);
  }
  void AddWhole() {
    whole = true;
    fields.clear();
  }
  bool Overlaps(const AttrFootprint& other) const;
};

/// \brief Static (rule-text) access summary.
struct RuleAccess {
  std::map<SymbolId, AttrFootprint> reads;
  std::map<SymbolId, AttrFootprint> writes;
};

/// Computes the static access summary of `rule`:
///  reads  — every attribute the LHS tests or binds; a negated CE reads
///           its whole relation (absence is a relation-wide predicate);
///           attributes feeding RHS expressions are reads too.
///  writes — modify: assigned attributes; remove/make: whole relation.
RuleAccess AnalyzeRule(const Rule& rule);

/// The paper's static interference test: conflicting database operations,
/// i.e. a.writes ∩ (b.reads ∪ b.writes) ≠ ∅ or vice versa.
bool Interferes(const RuleAccess& a, const RuleAccess& b);

/// \brief Dynamic (instantiation) access summary, in lock objects.
struct InstAccess {
  std::vector<LockObjectId> reads;
  std::vector<LockObjectId> writes;
};

/// Computes the lock-object footprint of one firing: reads are the
/// matched tuples plus relation-level objects for negated CEs; writes are
/// modified/removed tuples plus relation-level objects for creates.
InstAccess AnalyzeInstantiation(const Instantiation& inst);

/// Hierarchy-aware overlap: a relation-level object overlaps every object
/// of its relation.
bool ObjectsOverlap(const LockObjectId& a, const LockObjectId& b);

/// Dynamic interference between two firings (write-read / write-write).
bool Interferes(const InstAccess& a, const InstAccess& b);

/// The sorted, deduplicated set of *existing* WMEs a committed delta
/// writes: modify and delete targets. Creates are deliberately excluded —
/// they allocate fresh monotonic ids inside WorkingMemory::Apply, so two
/// deltas' creates can never collide, and no delta built before an apply
/// can name an id that apply will allocate. Used by the commit
/// sequencer's batch-eligibility check.
std::vector<WmeId> DeltaWriteSet(const Delta& delta);

/// Do two sorted write sets (from DeltaWriteSet) intersect?
bool WriteSetsOverlap(const std::vector<WmeId>& a,
                      const std::vector<WmeId>& b);

}  // namespace dbps

#endif  // DBPS_ANALYSIS_ACCESS_SETS_H_
