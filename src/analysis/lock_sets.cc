#include "analysis/lock_sets.h"

#include <algorithm>
#include <map>
#include <set>

namespace dbps {

namespace {

void SortAndDedupe(std::vector<LockRequest>* requests) {
  std::sort(requests->begin(), requests->end(),
            [](const LockRequest& a, const LockRequest& b) {
              if (!(a.object == b.object)) return a.object < b.object;
              return static_cast<int>(a.mode) < static_cast<int>(b.mode);
            });
  requests->erase(std::unique(requests->begin(), requests->end()),
                  requests->end());
}

void CollectBindingCes(const Expr& expr, std::set<size_t>* ces) {
  switch (expr.kind) {
    case Expr::Kind::kConstant:
      return;
    case Expr::Kind::kBinding:
      ces->insert(expr.ce);
      return;
    case Expr::Kind::kBinary:
      CollectBindingCes(*expr.lhs, ces);
      CollectBindingCes(*expr.rhs, ces);
      return;
  }
}

}  // namespace

std::vector<LockRequest> ConditionLocks(const Instantiation& inst) {
  std::vector<LockRequest> requests;
  for (const auto& wme : inst.matched()) {
    requests.push_back(
        LockRequest{LockObjectId{wme->relation(), wme->id()}, LockMode::kRc});
  }
  for (const auto& cond : inst.rule()->conditions()) {
    if (cond.negated) {
      requests.push_back(LockRequest{
          LockObjectId{cond.relation, kRelationLevel}, LockMode::kRc});
    }
  }
  SortAndDedupe(&requests);
  return requests;
}

std::vector<LockRequest> EscalateConditionLocks(
    std::vector<LockRequest> requests, size_t threshold) {
  if (threshold == 0) return requests;
  std::map<SymbolId, size_t> tuple_rc_per_relation;
  for (const auto& request : requests) {
    if (request.mode == LockMode::kRc && !request.object.is_relation_level()) {
      ++tuple_rc_per_relation[request.object.relation];
    }
  }
  std::vector<LockRequest> out;
  std::set<SymbolId> escalated;
  for (const auto& [relation, count] : tuple_rc_per_relation) {
    if (count > threshold) escalated.insert(relation);
  }
  if (escalated.empty()) return requests;
  for (auto& request : requests) {
    if (request.mode == LockMode::kRc &&
        !request.object.is_relation_level() &&
        escalated.count(request.object.relation) != 0) {
      continue;  // subsumed by the relation-level lock below
    }
    out.push_back(request);
  }
  for (SymbolId relation : escalated) {
    out.push_back(LockRequest{LockObjectId{relation, kRelationLevel},
                              LockMode::kRc});
  }
  SortAndDedupe(&out);
  return out;
}

StatusOr<std::vector<LockRequest>> DeltaActionLocks(const WorkingMemory& wm,
                                                    const Delta& delta,
                                                    TxnId txn) {
  std::vector<LockRequest> requests;
  for (const WmOp& op : delta.ops()) {
    if (const auto* create = std::get_if<CreateOp>(&op)) {
      requests.push_back(LockRequest{
          InsertIntentObject(create->relation, txn), LockMode::kWa});
    } else {
      const WmeId id = std::holds_alternative<ModifyOp>(op)
                           ? std::get<ModifyOp>(op).id
                           : std::get<DeleteOp>(op).id;
      WmePtr wme = wm.Get(id);
      if (wme == nullptr) {
        return Status::NotFound("delta names dead WME id " +
                                std::to_string(id));
      }
      requests.push_back(LockRequest{LockObjectId{wme->relation(), id},
                                     LockMode::kWa});
    }
  }
  SortAndDedupe(&requests);
  return requests;
}

std::vector<LockRequest> ActionLocks(const Instantiation& inst, TxnId txn) {
  const Rule& rule = *inst.rule();
  std::set<size_t> wa_ces;    // positive CEs whose tuple gets Wa
  std::set<size_t> read_ces;  // positive CEs read by RHS expressions
  std::vector<LockRequest> requests;

  for (const auto& action : rule.actions()) {
    if (const auto* make = std::get_if<MakeAction>(&action)) {
      requests.push_back(LockRequest{InsertIntentObject(make->relation, txn),
                                     LockMode::kWa});
      for (const auto& expr : make->values) {
        CollectBindingCes(expr, &read_ces);
      }
    } else if (const auto* modify = std::get_if<ModifyAction>(&action)) {
      wa_ces.insert(modify->ce);
      for (const auto& [field, expr] : modify->assigns) {
        (void)field;
        CollectBindingCes(expr, &read_ces);
      }
    } else if (const auto* remove = std::get_if<RemoveAction>(&action)) {
      wa_ces.insert(remove->ce);
    }
  }

  for (size_t ce : wa_ces) {
    const WmePtr& wme = inst.matched()[ce];
    requests.push_back(LockRequest{LockObjectId{wme->relation(), wme->id()},
                                   LockMode::kWa});
  }
  for (size_t ce : read_ces) {
    if (wa_ces.count(ce) != 0) continue;  // Wa subsumes the action read
    const WmePtr& wme = inst.matched()[ce];
    requests.push_back(LockRequest{LockObjectId{wme->relation(), wme->id()},
                                   LockMode::kRa});
  }
  SortAndDedupe(&requests);
  return requests;
}

}  // namespace dbps
