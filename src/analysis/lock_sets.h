// Lock-set derivation: which lock objects a firing must acquire, in which
// mode, for each phase (Figures 4.1 / 4.2).

#ifndef DBPS_ANALYSIS_LOCK_SETS_H_
#define DBPS_ANALYSIS_LOCK_SETS_H_

#include <vector>

#include "lock/lock_types.h"
#include "match/instantiation.h"
#include "util/statusor.h"
#include "wm/delta.h"
#include "wm/working_memory.h"

namespace dbps {

struct LockRequest {
  LockObjectId object;
  LockMode mode;
  bool operator==(const LockRequest& other) const {
    return object == other.object && mode == other.mode;
  }
};

/// Condition-evaluation locks (acquired before validating the match):
/// Rc on every matched tuple, plus an escalated relation-level Rc for
/// every negated condition element.
std::vector<LockRequest> ConditionLocks(const Instantiation& inst);

/// Escalation (§4.3: "like regular read and write locks, the Rc locks
/// can be escalated for performance reasons"): when a firing holds more
/// than `threshold` tuple-level Rc locks within one relation, they are
/// replaced by a single relation-level Rc. threshold == 0 disables
/// escalation. Requests come back deduplicated and in canonical order.
std::vector<LockRequest> EscalateConditionLocks(
    std::vector<LockRequest> requests, size_t threshold);

/// Action locks for an external (client) transaction's write set: Wa on
/// every tuple a modify/delete names, an insert-intent Wa per created-into
/// relation. Fails with NotFound if a modify/delete names a dead WME (the
/// caller aborts instead of discovering this at commit). `wm` is only
/// read, to resolve WME ids to their relations.
StatusOr<std::vector<LockRequest>> DeltaActionLocks(const WorkingMemory& wm,
                                                    const Delta& delta,
                                                    TxnId txn);

/// Action locks (acquired when RHS execution begins — Figure 4.2):
///  * Wa on every tuple the RHS modifies or removes,
///  * a per-transaction insert-intent Wa for every relation the RHS
///    creates into (conflicts with relation-level Rc via the hierarchy),
///  * Ra on matched tuples whose values feed RHS expressions (and which
///    are not already Wa-locked).
/// Requests come back deduplicated and in canonical order, so all
/// transactions acquire in the same order (fewer deadlocks).
std::vector<LockRequest> ActionLocks(const Instantiation& inst, TxnId txn);

}  // namespace dbps

#endif  // DBPS_ANALYSIS_LOCK_SETS_H_
