#include "analysis/partitioner.h"

#include <algorithm>
#include <numeric>

namespace dbps {

InterferenceGraph::InterferenceGraph(const RuleSet& rules) {
  const auto& all = rules.rules();
  access_.reserve(all.size());
  for (const auto& rule : all) access_.push_back(AnalyzeRule(*rule));
  adjacency_.assign(all.size(), std::vector<bool>(all.size(), false));
  for (size_t i = 0; i < all.size(); ++i) {
    for (size_t j = i + 1; j < all.size(); ++j) {
      if (Interferes(access_[i], access_[j])) {
        adjacency_[i][j] = true;
        adjacency_[j][i] = true;
      }
    }
  }
}

size_t InterferenceGraph::num_edges() const {
  size_t edges = 0;
  for (size_t i = 0; i < adjacency_.size(); ++i) {
    for (size_t j = i + 1; j < adjacency_.size(); ++j) {
      if (adjacency_[i][j]) ++edges;
    }
  }
  return edges;
}

std::vector<std::vector<size_t>> PartitionRules(const RuleSet& rules) {
  InterferenceGraph graph(rules);
  const size_t n = graph.num_rules();

  // Largest-degree-first greedy coloring.
  std::vector<size_t> degree(n, 0);
  for (size_t i = 0; i < n; ++i) {
    for (size_t j = 0; j < n; ++j) {
      if (i != j && graph.Interfere(i, j)) ++degree[i];
    }
  }
  std::vector<size_t> order(n);
  std::iota(order.begin(), order.end(), 0);
  std::stable_sort(order.begin(), order.end(), [&](size_t a, size_t b) {
    return degree[a] > degree[b];
  });

  std::vector<int> color(n, -1);
  int num_colors = 0;
  for (size_t rule : order) {
    std::vector<bool> used(static_cast<size_t>(num_colors) + 1, false);
    for (size_t other = 0; other < n; ++other) {
      if (other != rule && graph.Interfere(rule, other) &&
          color[other] >= 0) {
        used[static_cast<size_t>(color[other])] = true;
      }
    }
    int c = 0;
    while (used[static_cast<size_t>(c)]) ++c;
    color[rule] = c;
    num_colors = std::max(num_colors, c + 1);
  }

  std::vector<std::vector<size_t>> groups(static_cast<size_t>(num_colors));
  for (size_t i = 0; i < n; ++i) {
    groups[static_cast<size_t>(color[i])].push_back(i);
  }
  return groups;
}

std::vector<size_t> SelectNonInterfering(
    const std::vector<InstPtr>& candidates) {
  std::vector<size_t> selected;
  std::vector<InstAccess> selected_access;
  for (size_t i = 0; i < candidates.size(); ++i) {
    InstAccess access = AnalyzeInstantiation(*candidates[i]);
    bool clash = false;
    for (const auto& other : selected_access) {
      if (Interferes(access, other)) {
        clash = true;
        break;
      }
    }
    if (!clash) {
      selected.push_back(i);
      selected_access.push_back(std::move(access));
    }
  }
  return selected;
}

}  // namespace dbps
