// Partitioning productions into non-interfering groups (§4.1).
//
// The static approach's pre-execution analysis: build the interference
// graph over rules and color it greedily; each color class is a set of
// pairwise non-interfering productions that may fire concurrently without
// any locking (Theorem 1).

#ifndef DBPS_ANALYSIS_PARTITIONER_H_
#define DBPS_ANALYSIS_PARTITIONER_H_

#include <vector>

#include "analysis/access_sets.h"
#include "match/instantiation.h"
#include "rules/rule.h"

namespace dbps {

/// \brief Pairwise interference over a rule set.
class InterferenceGraph {
 public:
  explicit InterferenceGraph(const RuleSet& rules);

  size_t num_rules() const { return access_.size(); }
  bool Interfere(size_t rule_a, size_t rule_b) const {
    return adjacency_[rule_a][rule_b];
  }

  /// Number of interfering pairs.
  size_t num_edges() const;

 private:
  std::vector<RuleAccess> access_;
  std::vector<std::vector<bool>> adjacency_;
};

/// \brief Greedy (largest-first) coloring of the interference graph.
/// Returns groups of rule indices; rules within a group are pairwise
/// non-interfering.
std::vector<std::vector<size_t>> PartitionRules(const RuleSet& rules);

/// \brief Per-cycle dynamic variant: from the candidate instantiations
/// (in preference order), greedily selects a maximal prefix-respecting
/// subset that is pairwise non-interfering at the lock-object level.
/// Returns indices into `candidates`.
std::vector<size_t> SelectNonInterfering(
    const std::vector<InstPtr>& candidates);

}  // namespace dbps

#endif  // DBPS_ANALYSIS_PARTITIONER_H_
