#include "audit/audit_record.h"

#include <utility>
#include <vector>

#include "lang/journal.h"
#include "lang/lexer.h"
#include "util/string_util.h"

namespace dbps {

namespace {

void AppendPairs(const std::vector<ReadVersion>& pairs, std::string* out) {
  for (const auto& [id, tag] : pairs) {
    *out += StringPrintf(" (%llu %llu)", (unsigned long long)id,
                         (unsigned long long)tag);
  }
}

/// Minimal token walker over the audit clause (same Lex tokens the
/// journal parser uses).
class ClauseCursor {
 public:
  explicit ClauseCursor(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  Status Expect(TokenType type) {
    if (Check(type)) {
      Advance();
      return Status::OK();
    }
    return Status::ParseError("audit clause: expected " +
                              std::string(TokenTypeToString(type)) +
                              ", found " + Peek().ToString());
  }
  StatusOr<std::string> ExpectSymbol() {
    if (!Check(TokenType::kSymbol)) {
      return Status::ParseError("audit clause: expected symbol, found " +
                                Peek().ToString());
    }
    return Advance().text;
  }
  StatusOr<uint64_t> ExpectU64() {
    if (!Check(TokenType::kInt) || Peek().int_value < 0) {
      return Status::ParseError(
          "audit clause: expected a non-negative integer, found " +
          Peek().ToString());
    }
    return static_cast<uint64_t>(Advance().int_value);
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

Status ParsePairList(ClauseCursor* cursor, std::vector<ReadVersion>* out) {
  while (cursor->Check(TokenType::kLParen)) {
    cursor->Advance();
    DBPS_ASSIGN_OR_RETURN(uint64_t id, cursor->ExpectU64());
    DBPS_ASSIGN_OR_RETURN(uint64_t tag, cursor->ExpectU64());
    DBPS_RETURN_NOT_OK(cursor->Expect(TokenType::kRParen));
    out->emplace_back(id, tag);
  }
  return Status::OK();
}

/// Parses the "(audit ...)" s-expression (the text after the ";a"
/// marker) into seq + TxnAudit.
Status ParseAuditClause(std::string_view clause, uint64_t* seq,
                        TxnAudit* audit) {
  DBPS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(clause));
  ClauseCursor cursor(std::move(tokens));
  DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kLParen));
  DBPS_ASSIGN_OR_RETURN(std::string head, cursor.ExpectSymbol());
  if (head != "audit") {
    return Status::ParseError("audit clause: expected (audit ...), got '" +
                              head + "'");
  }
  bool have_seq = false;
  bool have_reads = false;
  while (!cursor.Check(TokenType::kRParen)) {
    DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kLParen));
    DBPS_ASSIGN_OR_RETURN(std::string field, cursor.ExpectSymbol());
    if (field == "seq") {
      DBPS_ASSIGN_OR_RETURN(*seq, cursor.ExpectU64());
      have_seq = true;
    } else if (field == "csn") {
      DBPS_ASSIGN_OR_RETURN(audit->csn, cursor.ExpectU64());
    } else if (field == "rc") {
      if (have_reads) {
        return Status::ParseError("audit clause: duplicate reads clause");
      }
      have_reads = true;
      audit->snapshot_reads = false;
      DBPS_RETURN_NOT_OK(ParsePairList(&cursor, &audit->reads));
    } else if (field == "sr") {
      if (have_reads) {
        return Status::ParseError("audit clause: duplicate reads clause");
      }
      have_reads = true;
      audit->snapshot_reads = true;
      DBPS_ASSIGN_OR_RETURN(audit->read_csn, cursor.ExpectU64());
      DBPS_RETURN_NOT_OK(ParsePairList(&cursor, &audit->reads));
    } else if (field == "wr") {
      DBPS_RETURN_NOT_OK(ParsePairList(&cursor, &audit->writes));
    } else if (field == "v") {
      DBPS_ASSIGN_OR_RETURN(audit->victims, cursor.ExpectU64());
    } else if (field == "vt") {
      DBPS_ASSIGN_OR_RETURN(audit->victims_total, cursor.ExpectU64());
    } else {
      return Status::ParseError("audit clause: unknown field '" + field +
                                "'");
    }
    DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kRParen));
  }
  DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kRParen));
  if (!cursor.Check(TokenType::kEof)) {
    return Status::ParseError("audit clause: trailing tokens");
  }
  if (!have_seq) {
    return Status::ParseError("audit clause: missing (seq N)");
  }
  if (!audit->snapshot_reads) audit->read_csn = audit->csn;
  audit->present = true;
  return Status::OK();
}

}  // namespace

std::string AuditCommentSuffix(uint64_t seq, const TxnAudit* audit) {
  if (audit == nullptr || !audit->present) return std::string();
  std::string out = " ;a(audit";
  out += StringPrintf(" (seq %llu) (csn %llu)", (unsigned long long)seq,
                      (unsigned long long)audit->csn);
  if (audit->snapshot_reads) {
    out += StringPrintf(" (sr %llu", (unsigned long long)audit->read_csn);
    AppendPairs(audit->reads, &out);
    out += ")";
  } else {
    out += " (rc";
    AppendPairs(audit->reads, &out);
    out += ")";
  }
  out += " (wr";
  AppendPairs(audit->writes, &out);
  out += ")";
  out += StringPrintf(" (v %llu) (vt %llu))", (unsigned long long)audit->victims,
                      (unsigned long long)audit->victims_total);
  return out;
}

StatusOr<std::string> AuditedJournalLine(const Delta& delta, uint64_t seq,
                                         const TxnAudit* audit) {
  DBPS_ASSIGN_OR_RETURN(std::string line, DeltaToJournalLine(delta));
  line += AuditCommentSuffix(seq, audit);
  return line;
}

size_t CommentStart(std::string_view line) {
  bool in_string = false;
  for (size_t i = 0; i < line.size(); ++i) {
    const char c = line[i];
    if (in_string) {
      if (c == '\\' && i + 1 < line.size()) {
        ++i;  // skip the escaped character
      } else if (c == '"') {
        in_string = false;
      }
      continue;
    }
    if (c == '"') {
      in_string = true;
    } else if (c == ';') {
      return i;
    }
  }
  return std::string_view::npos;
}

std::string StripAuditComment(std::string_view line) {
  const size_t start = CommentStart(line);
  std::string_view body =
      start == std::string_view::npos ? line : line.substr(0, start);
  while (!body.empty() &&
         (body.back() == ' ' || body.back() == '\t' || body.back() == '\r')) {
    body.remove_suffix(1);
  }
  return std::string(body);
}

StatusOr<AuditedRecord> ParseAuditedLine(std::string_view line) {
  AuditedRecord record;
  const size_t comment = CommentStart(line);
  // The delta parser lexes the whole line; the audit comment is skipped
  // as a comment, so the full line is valid input.
  DBPS_ASSIGN_OR_RETURN(record.delta, DeltaFromJournalLine(line));
  if (comment == std::string_view::npos) return record;
  std::string_view tail = line.substr(comment);
  if (tail.rfind(kAuditCommentMarker, 0) != 0) {
    return record;  // a plain comment: the record stays unaudited
  }
  // ";a" + "(audit ...)": the clause starts at the '('.
  std::string_view clause = tail.substr(2);
  DBPS_RETURN_NOT_OK(ParseAuditClause(clause, &record.seq, &record.audit));
  record.has_seq = true;
  return record;
}

}  // namespace dbps
