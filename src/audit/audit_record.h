// The audit comment: how TxnAudit evidence rides inside a journal line.
//
// The journal grammar ("(delta ...)" per line, lang/journal.h) and the
// WAL's dense-seq framing are load-bearing for replay and recovery, so
// audit evidence cannot be a new record type or a new line. Instead it is
// appended to the delta's own line as a rule-language COMMENT — the lexer
// skips ";" to end of line, so DeltaFromJournalLine, ReplayJournal,
// RecoveryManager, and every other consumer parse an audited line exactly
// as before:
//
//   (delta (modify 7 (1 12))) ;a(audit (seq 41) (csn 57) (rc (7 30))
//                                      (wr (7 58)) (v 1) (vt 9))
//
// Clause grammar, all on one line:
//   (seq N)          the commit sequence the engine assigned
//   (csn C)          the CSN WorkingMemory::Apply stamped on the delta
//   (rc (id tag)*)   versions read under Rc locking / match (read-commit)
//   (sr R (id tag)*) versions read from a pinned CSN-R snapshot
//                    (exactly one of rc/sr appears)
//   (wr (id tag)*)   versions produced, one per create/modify op in order
//   (v N)            Rc holders this commit victimized
//   (vt N)           the running victimization ledger after this commit
//
// A comment that starts with ";a(" MUST parse as an audit clause (a
// malformed one is reported, not ignored); any other comment is plain
// text and leaves the record unaudited. The locator is string-aware: a
// ';' inside a quoted string literal never starts a comment.

#ifndef DBPS_AUDIT_AUDIT_RECORD_H_
#define DBPS_AUDIT_AUDIT_RECORD_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "audit/txn_audit.h"
#include "util/statusor.h"
#include "wm/delta.h"

namespace dbps {

/// The marker that opens an audit comment.
inline constexpr const char kAuditCommentMarker[] = ";a(";

/// One fully parsed journal record: the delta, its seq (from the audit
/// clause when present), and the audit evidence.
struct AuditedRecord {
  bool has_seq = false;  ///< an audit clause supplied the seq
  uint64_t seq = 0;
  Delta delta;
  TxnAudit audit;  ///< audit.present false when the line had no clause
};

/// Renders " ;a(audit ...)" for one commit — empty when `audit` is null
/// or not present (nothing to attest).
std::string AuditCommentSuffix(uint64_t seq, const TxnAudit* audit);

/// Renders the full audited journal line: DeltaToJournalLine(delta) plus
/// the audit suffix. With a null/absent audit this is exactly the plain
/// journal line.
StatusOr<std::string> AuditedJournalLine(const Delta& delta, uint64_t seq,
                                         const TxnAudit* audit);

/// Byte offset of the first comment (';' outside any string literal) in
/// `line`, or std::string_view::npos when the line has none.
size_t CommentStart(std::string_view line);

/// `line` without its trailing comment (audit or otherwise) and without
/// trailing whitespace — the canonical pre-audit journal line, for
/// byte-comparing logs across runs whose audit evidence differs.
std::string StripAuditComment(std::string_view line);

/// Parses one journal line with an optional audit comment. Fails when the
/// delta does not parse or when a ";a(" comment is present but malformed.
StatusOr<AuditedRecord> ParseAuditedLine(std::string_view line);

}  // namespace dbps

#endif  // DBPS_AUDIT_AUDIT_RECORD_H_
