#include "audit/auditor.h"

#include <algorithm>
#include <utility>
#include <variant>

#include "lang/wal.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

const char* AuditViolationClassToString(AuditViolationClass cls) {
  switch (cls) {
    case AuditViolationClass::kMalformedRecord: return "malformed-record";
    case AuditViolationClass::kSequenceGap: return "sequence-gap";
    case AuditViolationClass::kDuplicateSeq: return "duplicate-seq";
    case AuditViolationClass::kCsnChain: return "csn-chain";
    case AuditViolationClass::kWriteConflict: return "write-conflict";
    case AuditViolationClass::kStaleRead: return "stale-read";
    case AuditViolationClass::kFutureRead: return "future-read";
    case AuditViolationClass::kSnapshotRead: return "snapshot-read";
    case AuditViolationClass::kTagOrder: return "tag-order";
    case AuditViolationClass::kVictimLedger: return "victim-ledger";
    case AuditViolationClass::kTornLog: return "torn-log";
    case AuditViolationClass::kMissingAudit: return "missing-audit";
  }
  return "?";
}

std::string AuditViolation::ToString() const {
  return StringPrintf("[%s] seq %llu: %s", AuditViolationClassToString(cls),
                      (unsigned long long)seq, detail.c_str());
}

std::string AuditReport::ToString() const {
  std::string out = StringPrintf(
      "audited %llu records (%llu with evidence): %llu reads, %llu writes, "
      "%llu WR / %llu WW / %llu RW edges — %s",
      (unsigned long long)records, (unsigned long long)audited_records,
      (unsigned long long)reads_checked, (unsigned long long)writes_checked,
      (unsigned long long)wr_edges, (unsigned long long)ww_edges,
      (unsigned long long)rw_edges,
      clean() ? "CONSISTENT"
              : StringPrintf("%zu VIOLATIONS", violations.size()).c_str());
  for (const AuditViolation& violation : violations) {
    out += "\n  " + violation.ToString();
  }
  return out;
}

ConsistencyAuditor::ConsistencyAuditor(AuditOptions options)
    : options_(options) {}

void ConsistencyAuditor::Report(AuditViolationClass cls, uint64_t seq,
                                std::string detail) {
  if (report_.violations.size() >= options_.max_violations) return;
  report_.violations.push_back(AuditViolation{cls, seq, std::move(detail)});
}

void ConsistencyAuditor::CloseLive(WmeId id, uint64_t deleted_csn,
                                   bool deleted_known) {
  auto it = live_.find(id);
  if (it == live_.end()) return;
  ClosedVersion closed;
  closed.tag = it->second.tag;
  closed.created_csn = it->second.created_csn;
  closed.created_known = it->second.created_known;
  closed.deleted_csn = deleted_csn;
  closed.deleted_known = deleted_known;
  closed.reads = it->second.reads;
  history_[id].push_back(closed);
  live_.erase(it);
}

void ConsistencyAuditor::CheckReads(const AuditedRecord& record) {
  const TxnAudit& audit = record.audit;
  const uint64_t seq = record.seq;
  for (const auto& [id, tag] : audit.reads) {
    ++report_.reads_checked;
    if (untracked_.count(id) > 0) continue;
    auto live_it = live_.find(id);
    if (audit.snapshot_reads) {
      // Snapshot read at CSN R: the version must have been visible in
      // [created_csn, deleted_csn) at R.
      const uint64_t r = audit.read_csn;
      if (live_it != live_.end() && live_it->second.tag == tag) {
        if (live_it->second.created_known) ++report_.wr_edges;
        ++live_it->second.reads;
        if (live_it->second.created_known &&
            live_it->second.created_csn > r) {
          Report(AuditViolationClass::kSnapshotRead, seq,
                 StringPrintf("snapshot at csn %llu reads (%llu %llu) "
                              "created later, at csn %llu",
                              (unsigned long long)r, (unsigned long long)id,
                              (unsigned long long)tag,
                              (unsigned long long)live_it->second.created_csn));
        }
        continue;
      }
      // Not the live version: look through the id's closed history.
      auto hist_it = history_.find(id);
      ClosedVersion* found = nullptr;
      if (hist_it != history_.end()) {
        for (ClosedVersion& closed : hist_it->second) {
          if (closed.tag == tag) {
            found = &closed;
            break;
          }
        }
      }
      if (found != nullptr) {
        if (found->created_known) ++report_.wr_edges;
        ++found->reads;
        ++report_.rw_edges;  // its overwriter committed before this reader
        if (found->created_known && found->created_csn > r) {
          Report(AuditViolationClass::kSnapshotRead, seq,
                 StringPrintf("snapshot at csn %llu reads (%llu %llu) "
                              "created later, at csn %llu",
                              (unsigned long long)r, (unsigned long long)id,
                              (unsigned long long)tag,
                              (unsigned long long)found->created_csn));
        } else if (found->deleted_known && found->deleted_csn <= r) {
          Report(AuditViolationClass::kSnapshotRead, seq,
                 StringPrintf("snapshot at csn %llu reads (%llu %llu), "
                              "which died at csn %llu",
                              (unsigned long long)r, (unsigned long long)id,
                              (unsigned long long)tag,
                              (unsigned long long)found->deleted_csn));
        }
        continue;
      }
      if (origin_known_.count(id) > 0 ||
          (live_it != live_.end() && live_it->second.created_known)) {
        // The id's full in-log version history is known and `tag` is not
        // in it: the snapshot read a version that never existed.
        Report(AuditViolationClass::kSnapshotRead, seq,
               StringPrintf("snapshot reads version (%llu %llu), which the "
                            "log never produced",
                            (unsigned long long)id, (unsigned long long)tag));
        continue;
      }
      // A pre-log version of a pre-log id: window unknown, nothing to
      // check, but remember the reference for future-read detection.
      ClosedVersion pre;
      pre.tag = tag;
      ++pre.reads;
      history_[id].push_back(pre);
      pre_log_origin_.emplace(id, seq);
      continue;
    }
    // Rc-locked (or matched) read: the version must be LIVE at this
    // commit — anything else means a concurrent committed writer clobbered
    // it without this reader being victimized (§4.3 violation).
    if (live_it != live_.end()) {
      if (live_it->second.tag == tag) {
        if (live_it->second.created_known) ++report_.wr_edges;
        ++live_it->second.reads;
        continue;
      }
      if (tag > live_it->second.tag) {
        Report(AuditViolationClass::kFutureRead, seq,
               StringPrintf("reads (%llu %llu) before that version exists "
                            "(live tag is %llu)",
                            (unsigned long long)id, (unsigned long long)tag,
                            (unsigned long long)live_it->second.tag));
      } else {
        Report(AuditViolationClass::kStaleRead, seq,
               StringPrintf("reads superseded version (%llu %llu); live "
                            "tag is %llu",
                            (unsigned long long)id, (unsigned long long)tag,
                            (unsigned long long)live_it->second.tag));
      }
      continue;
    }
    if (history_.count(id) > 0 || origin_known_.count(id) > 0) {
      Report(AuditViolationClass::kStaleRead, seq,
             StringPrintf("reads (%llu %llu) of a deleted tuple",
                          (unsigned long long)id, (unsigned long long)tag));
      continue;
    }
    // First sight of this id: a pre-log tuple, live by witness of this
    // Rc read. If the log later CREATES this id, this read was from the
    // future — remember where it happened.
    LiveVersion pre;
    pre.tag = tag;
    pre.created_seq = seq;
    pre.writer_seq = seq;
    ++pre.reads;
    live_.emplace(id, pre);
    pre_log_origin_.emplace(id, seq);
  }
}

void ConsistencyAuditor::CheckWrites(const AuditedRecord& record) {
  const TxnAudit& audit = record.audit;
  const uint64_t seq = record.seq;
  size_t cursor = 0;
  for (const WmOp& op : record.delta.ops()) {
    if (std::holds_alternative<DeleteOp>(op)) {
      const WmeId id = std::get<DeleteOp>(op).id;
      if (untracked_.count(id) > 0) {
        untracked_.erase(id);
        ClosedVersion closed;
        closed.deleted_csn = audit.csn;
        closed.deleted_known = true;
        history_[id].push_back(closed);
        continue;
      }
      auto live_it = live_.find(id);
      if (live_it != live_.end()) {
        if (live_it->second.created_known) ++report_.ww_edges;
        report_.rw_edges += live_it->second.reads;
        CloseLive(id, audit.csn, /*deleted_known=*/true);
      } else if (history_.count(id) > 0 || origin_known_.count(id) > 0) {
        Report(AuditViolationClass::kWriteConflict, seq,
               StringPrintf("deletes tuple %llu, which is already dead",
                            (unsigned long long)id));
      } else {
        // Pre-log tuple deleted before the log ever read it: record the
        // id as dead.
        ClosedVersion closed;
        closed.deleted_csn = audit.csn;
        closed.deleted_known = true;
        history_[id].push_back(closed);
        pre_log_origin_.emplace(id, seq);
      }
      continue;
    }
    // Create and modify both produce exactly one new version, in op
    // order — that is the write-evidence contract (WmChange::added).
    if (cursor >= audit.writes.size()) {
      Report(AuditViolationClass::kMalformedRecord, seq,
             StringPrintf("write evidence lists %zu versions for %zu "
                          "create/modify ops",
                          audit.writes.size(), cursor + 1));
      return;
    }
    const auto [wid, wtag] = audit.writes[cursor++];
    ++report_.writes_checked;
    if (have_tag_ && wtag <= last_tag_) {
      Report(AuditViolationClass::kTagOrder, seq,
             StringPrintf("produces time tag %llu after tag %llu — tags "
                          "are allocated in commit order",
                          (unsigned long long)wtag,
                          (unsigned long long)last_tag_));
    }
    last_tag_ = std::max(last_tag_, wtag);
    have_tag_ = true;
    if (const auto* create = std::get_if<CreateOp>(&op)) {
      (void)create;
      if (untracked_.count(wid) > 0 || live_.count(wid) > 0 ||
          history_.count(wid) > 0) {
        auto origin = pre_log_origin_.find(wid);
        if (origin != pre_log_origin_.end()) {
          // The id was referenced BEFORE this create: that reference read
          // a version from the future. Flag the referencing record — it
          // is the one that observed impossible state.
          Report(AuditViolationClass::kFutureRead, origin->second,
                 StringPrintf("references tuple %llu, which is only "
                              "created later, at seq %llu",
                              (unsigned long long)wid,
                              (unsigned long long)seq));
        } else {
          Report(AuditViolationClass::kWriteConflict, seq,
                 StringPrintf("creates tuple %llu, but that id was "
                              "already used (ids are never reused)",
                              (unsigned long long)wid));
        }
        untracked_.erase(wid);
        live_.erase(wid);
      }
      LiveVersion version;
      version.tag = wtag;
      version.created_csn = audit.csn;
      version.created_known = true;
      version.created_seq = seq;
      version.writer_seq = seq;
      live_[wid] = version;
      origin_known_.insert(wid);
    } else {
      const auto& modify = std::get<ModifyOp>(op);
      if (wid != modify.id) {
        Report(AuditViolationClass::kMalformedRecord, seq,
               StringPrintf("write evidence names tuple %llu where the "
                            "delta modifies %llu",
                            (unsigned long long)wid,
                            (unsigned long long)modify.id));
      }
      if (untracked_.count(modify.id) > 0) {
        // The id's state was lost to an unaudited record; this modify
        // re-establishes it.
        untracked_.erase(modify.id);
      } else {
        auto live_it = live_.find(modify.id);
        if (live_it != live_.end()) {
          if (live_it->second.created_known) ++report_.ww_edges;
          report_.rw_edges += live_it->second.reads;
          CloseLive(modify.id, audit.csn, /*deleted_known=*/true);
        } else if (history_.count(modify.id) > 0 ||
                   origin_known_.count(modify.id) > 0) {
          Report(AuditViolationClass::kWriteConflict, seq,
                 StringPrintf("modifies tuple %llu, which is already dead",
                              (unsigned long long)modify.id));
        } else {
          // Pre-log tuple first seen through a modify (no read evidence
          // named it — e.g. a recovered suffix): it was live; its old
          // version is simply unknown.
          pre_log_origin_.emplace(modify.id, seq);
        }
      }
      LiveVersion version;
      version.tag = wtag;
      version.created_csn = audit.csn;
      version.created_known = true;
      version.created_seq = seq;
      version.writer_seq = seq;
      live_[modify.id] = version;
    }
  }
  if (cursor != audit.writes.size()) {
    Report(AuditViolationClass::kMalformedRecord, seq,
           StringPrintf("write evidence lists %zu versions for %zu "
                        "create/modify ops",
                        audit.writes.size(), cursor));
  }
}

void ConsistencyAuditor::CheckLedger(const AuditedRecord& record) {
  const uint64_t v = record.audit.victims;
  const uint64_t vt = record.audit.victims_total;
  if (have_vt_) {
    // The total must extend the previous ledger by exactly this commit's
    // count — or restart at its own count (an engine restart after
    // recovery begins a fresh ledger).
    const bool extends = vt == last_vt_ + v;
    // Unaudited commits since the last audited record may have charged
    // victims of their own (evidence sampling drops their `;a(...)`
    // clauses but their victimizations still accumulate), so across a
    // gap any total covering both the previous chain and this commit's
    // own count is admissible.
    const bool extends_across_gap = unaudited_gap_ && vt >= last_vt_ + v;
    if (!extends && !extends_across_gap) {
      if (vt == v) {
        // A ledger reset claims an engine restart. A framed WAL records
        // restarts durably (recovery writes a checkpoint), so in WAL
        // mode the claim must be backed by an observed checkpoint; a
        // text journal has no marker, so bare resets are flagged only
        // under strict_restarts.
        const bool bare =
            wal_mode_ ? !checkpoint_seen_ : options_.strict_restarts;
        if (bare) {
          Report(AuditViolationClass::kVictimLedger, record.seq,
                 StringPrintf(
                     "victim ledger resets to %llu after %llu with no "
                     "restart evidence (%s) — a forged restart or a "
                     "truncated ledger",
                     (unsigned long long)vt, (unsigned long long)last_vt_,
                     wal_mode_ ? "no checkpoint record precedes it"
                               : "strict restarts"));
        }
      } else {
        Report(AuditViolationClass::kVictimLedger, record.seq,
               StringPrintf("victim ledger reads %llu after %llu with %llu "
                            "victims charged — a victimization record is "
                            "missing or forged",
                            (unsigned long long)vt,
                            (unsigned long long)last_vt_,
                            (unsigned long long)v));
      }
    }
  }
  last_vt_ = vt;
  have_vt_ = true;
  unaudited_gap_ = false;
}

void ConsistencyAuditor::AddRecord(const AuditedRecord& record) {
  DBPS_CHECK(!finished_);
  ++report_.records;
  AuditedRecord local = record;
  if (local.has_seq) {
    if (have_seq_) {
      if (local.seq < next_seq_) {
        Report(AuditViolationClass::kDuplicateSeq, local.seq,
               StringPrintf("commit seq %llu repeats or regresses "
                            "(expected %llu)",
                            (unsigned long long)local.seq,
                            (unsigned long long)next_seq_));
      } else if (local.seq > next_seq_) {
        Report(AuditViolationClass::kSequenceGap, local.seq,
               StringPrintf("commit seq jumps from %llu to %llu — %llu "
                            "record(s) missing",
                            (unsigned long long)(next_seq_ - 1),
                            (unsigned long long)local.seq,
                            (unsigned long long)(local.seq - next_seq_)));
        next_seq_ = local.seq + 1;
      } else {
        next_seq_ = local.seq + 1;
      }
    } else {
      have_seq_ = true;
      next_seq_ = local.seq + 1;
    }
  } else {
    // No seq evidence: the record occupies the next slot by position.
    local.seq = have_seq_ ? next_seq_ : 0;
    have_seq_ = true;
    next_seq_ = local.seq + 1;
  }

  if (!local.audit.present) {
    if (options_.require_audit) {
      Report(AuditViolationClass::kMissingAudit, local.seq,
             "record carries no audit evidence");
    }
    // Track what we can: the ids this opaque record wrote are now in an
    // unknown state — exempt them from future checks rather than report
    // phantom violations.
    for (const WmOp& op : local.delta.ops()) {
      WmeId id = 0;
      if (const auto* modify = std::get_if<ModifyOp>(&op)) {
        id = modify->id;
      } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
        id = del->id;
      } else {
        continue;  // a create's assigned id is unknowable without evidence
      }
      live_.erase(id);
      untracked_.insert(id);
    }
    unaudited_gap_ = true;
    return;
  }

  ++report_.audited_records;
  if (have_csn_ && local.audit.csn <= last_csn_) {
    Report(AuditViolationClass::kCsnChain, local.seq,
           StringPrintf("csn %llu does not advance past %llu",
                        (unsigned long long)local.audit.csn,
                        (unsigned long long)last_csn_));
  }
  last_csn_ = std::max(last_csn_, local.audit.csn);
  have_csn_ = true;

  CheckReads(local);
  CheckWrites(local);
  CheckLedger(local);
}

void ConsistencyAuditor::AddLine(std::string_view line) {
  std::string_view trimmed = StripWhitespace(line);
  if (trimmed.empty() || trimmed[0] == ';') return;
  auto record_or = ParseAuditedLine(trimmed);
  if (!record_or.ok()) {
    ++report_.records;
    Report(AuditViolationClass::kMalformedRecord,
           have_seq_ ? next_seq_ : 0,
           record_or.status().message());
    return;
  }
  AddRecord(record_or.ValueOrDie());
}

void ConsistencyAuditor::AddCommit(uint64_t seq, const Delta& delta,
                                   const TxnAudit& audit) {
  AuditedRecord record;
  record.has_seq = true;
  record.seq = seq;
  record.delta = delta;
  record.audit = audit;
  AddRecord(record);
}

AuditReport ConsistencyAuditor::Finish() {
  DBPS_CHECK(!finished_);
  finished_ = true;
  return std::move(report_);
}

AuditReport ConsistencyAuditor::AuditJournalText(std::string_view text,
                                                 AuditOptions options) {
  ConsistencyAuditor auditor(options);
  for (std::string_view line : Split(text, '\n')) {
    auditor.AddLine(line);
  }
  return auditor.Finish();
}

StatusOr<AuditReport> ConsistencyAuditor::AuditWalFile(const std::string& path,
                                                       AuditOptions options) {
  DBPS_ASSIGN_OR_RETURN(WalIterator it, WalIterator::OpenFile(path));
  ConsistencyAuditor auditor(options);
  auditor.wal_mode_ = true;
  if (it.file_missing()) return auditor.Finish();
  WalRecord record;
  while (it.Next(&record)) {
    if (record.type != WalRecordType::kDelta) {
      // Checkpoint fence: not audited itself, but it is the durable
      // restart evidence that licenses a victim-ledger reset later on.
      auditor.checkpoint_seen_ = true;
      continue;
    }
    auto parsed_or = ParseAuditedLine(record.payload);
    if (!parsed_or.ok()) {
      ++auditor.report_.records;
      auditor.Report(AuditViolationClass::kMalformedRecord, record.seq,
                     parsed_or.status().message());
      continue;
    }
    AuditedRecord parsed = std::move(parsed_or).ValueOrDie();
    if (parsed.has_seq && parsed.seq != record.seq) {
      auditor.Report(
          AuditViolationClass::kMalformedRecord, record.seq,
          StringPrintf("audit clause claims seq %llu inside frame seq %llu",
                       (unsigned long long)parsed.seq,
                       (unsigned long long)record.seq));
    }
    // The frame seq is authoritative — it is CRC-protected.
    parsed.seq = record.seq;
    parsed.has_seq = true;
    auditor.AddRecord(parsed);
  }
  if (options.flag_tail && it.scan().tail != WalTail::kClean) {
    auditor.Report(AuditViolationClass::kTornLog,
                   auditor.have_seq_ ? auditor.next_seq_ : 0,
                   StringPrintf("%s tail after %llu valid bytes: %s",
                                WalTailToString(it.scan().tail),
                                (unsigned long long)it.scan().valid_bytes,
                                it.scan().tail_detail.c_str()));
  }
  return auditor.Finish();
}

}  // namespace dbps
