// ConsistencyAuditor: the engine-independent commit-log checker.
//
// Every other correctness oracle in this repo (ReplayValidator, the
// recovery dump comparisons) replays the log with the same WorkingMemory
// apply code that produced it, so a bug shared by engine and validator is
// invisible. The auditor closes that hole: it parses a replayable journal
// or WAL with its own walker — lang/wal.h framing, the journal line
// grammar, the audit comment (audit_record.h) — and re-derives the §4.3
// concurrency guarantees from first principles, touching NONE of the
// engine's apply, lock, or matcher code.
//
// What it verifies, per Biswas & Enea ("On the Complexity of Checking
// Transactional Consistency"): with the commit log's TOTAL order given,
// conflict-serializability checking collapses from NP-hard to a single
// linear pass — a history ordered by commit seq is conflict-serializable
// iff no WR/WW/RW dependency edge points BACKWARD against that order. The
// auditor replays only the version bookkeeping (never the data): it keeps
// a version store id -> {live version, closed versions with
// [created_csn, deleted_csn) windows} built purely from the log's write
// evidence, and checks each record against it:
//
//   * serializability / Rc semantics — every version a committed
//     transaction read under Rc locking must still be the LIVE version of
//     its id at the transaction's commit position (a mismatch is a
//     backward RW or WR edge: someone clobbered the read before the
//     reader committed, without the reader being victimized — the §4.3
//     violation);
//   * write integrity — creates name fresh ids (ids are never reused),
//     modifies/deletes hit live ids (a write to a dead or future version
//     is a backward WW edge), produced time tags strictly increase in
//     commit order (tags are allocated at apply time, so any reordering
//     of history shows up here);
//   * snapshot-read consistency — a version read from a CSN-R snapshot
//     must satisfy created_csn <= R < deleted_csn (reads from the future
//     or of pre-snapshot-deleted versions are flagged);
//   * commit-seq density and CSN monotonicity;
//   * the victimization ledger — each record's (vt N) must extend the
//     previous total by exactly its own (v N) (or restart the ledger at
//     its own count after recovery), so a dropped victimization record
//     leaves an unexplained jump.
//
// The log may begin mid-history (after a checkpoint, or as a chaos
// trial's suffix): versions referenced before any logged write are
// registered as pre-log versions with unknown creation windows, and the
// registration seq is remembered — if the log later CREATES such an id,
// the earlier reference was a read from the future, flagged at the
// referencing record.

#ifndef DBPS_AUDIT_AUDITOR_H_
#define DBPS_AUDIT_AUDITOR_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "audit/audit_record.h"
#include "util/statusor.h"

namespace dbps {

enum class AuditViolationClass : uint8_t {
  kMalformedRecord,  ///< unparseable line / write evidence mismatch
  kSequenceGap,      ///< commit seq jumped forward (a record is missing)
  kDuplicateSeq,     ///< commit seq repeated or went backward
  kCsnChain,         ///< CSN did not strictly increase
  kWriteConflict,    ///< write to a dead id, or a reused/unknown id
  kStaleRead,        ///< Rc read of a version that was not live (§4.3)
  kFutureRead,       ///< read of a version before its creating commit
  kSnapshotRead,     ///< snapshot read outside its CSN visibility window
  kTagOrder,         ///< produced time tags regressed in commit order
  kVictimLedger,     ///< (vt) total unexplained by (v) counts
  kTornLog,          ///< WAL tail not clean where a clean log was required
  kMissingAudit,     ///< record lacks audit evidence (require_audit only)
};

const char* AuditViolationClassToString(AuditViolationClass cls);

struct AuditViolation {
  AuditViolationClass cls;
  uint64_t seq = 0;  ///< the offending record's commit seq
  std::string detail;

  std::string ToString() const;
};

struct AuditOptions {
  /// Stop collecting after this many violations (the pass still runs).
  size_t max_violations = 64;
  /// Flag records without audit evidence instead of tracking them as
  /// opaque write-only history.
  bool require_audit = false;
  /// Flag a non-clean WAL tail (AuditWalFile only). Leave true for logs
  /// that are supposed to be recovered/clean; recovery itself expects
  /// torn tails and uses RecoveryManager instead.
  bool flag_tail = true;
  /// Flag bare victim-ledger resets (vt == v with no other explanation)
  /// in TEXT logs. A framed WAL proves a restart with its checkpoint
  /// records, so WAL mode always gates resets on observed checkpoint
  /// evidence; a text journal carries no such marker, so by default a
  /// reset is taken on faith — enable this for text logs known to come
  /// from a single uninterrupted run.
  bool strict_restarts = false;
};

struct AuditReport {
  std::vector<AuditViolation> violations;
  uint64_t records = 0;          ///< delta records examined
  uint64_t audited_records = 0;  ///< ... carrying audit evidence
  uint64_t reads_checked = 0;
  uint64_t writes_checked = 0;
  /// Dependency-edge census of the history (forward edges are the normal
  /// case; the violation classes above are the backward ones).
  uint64_t wr_edges = 0;
  uint64_t ww_edges = 0;
  uint64_t rw_edges = 0;

  bool clean() const { return violations.empty(); }
  /// Multi-line human-readable summary (one line per violation).
  std::string ToString() const;
};

class ConsistencyAuditor {
 public:
  explicit ConsistencyAuditor(AuditOptions options = {});

  /// Feeds one parsed record, in log order.
  void AddRecord(const AuditedRecord& record);

  /// Parses and feeds one journal line (blank lines and non-audit comment
  /// lines are skipped; a malformed line is a kMalformedRecord).
  void AddLine(std::string_view line);

  /// Feeds one commit directly from an engine's in-memory log.
  void AddCommit(uint64_t seq, const Delta& delta, const TxnAudit& audit);

  /// Finishes the pass and returns the report. The auditor is spent.
  AuditReport Finish();

  // --- One-shot entry points --------------------------------------------

  /// Audits newline-separated journal text.
  static AuditReport AuditJournalText(std::string_view text,
                                      AuditOptions options = {});

  /// Audits a framed WAL file (lang/wal.h): walks it with WalIterator,
  /// cross-checks each frame's seq against the payload's audit clause,
  /// skips checkpoint records, and (with flag_tail) reports a non-clean
  /// tail. A missing file yields an empty, clean report.
  static StatusOr<AuditReport> AuditWalFile(const std::string& path,
                                            AuditOptions options = {});

 private:
  struct LiveVersion {
    TimeTag tag = 0;
    uint64_t created_csn = 0;
    bool created_known = false;  ///< false for pre-log registrations
    uint64_t created_seq = 0;    ///< the creating (or registering) record
    uint64_t writer_seq = 0;     ///< last record that produced this version
    uint64_t reads = 0;          ///< RW-edge census
  };
  struct ClosedVersion {
    TimeTag tag = 0;
    uint64_t created_csn = 0;
    bool created_known = false;
    uint64_t deleted_csn = 0;
    bool deleted_known = false;
    uint64_t reads = 0;  ///< RW-edge census
  };

  void Report(AuditViolationClass cls, uint64_t seq, std::string detail);
  void CheckReads(const AuditedRecord& record);
  void CheckWrites(const AuditedRecord& record);
  void CheckLedger(const AuditedRecord& record);
  /// Moves the live version of `id` (if any) into its closed history.
  void CloseLive(WmeId id, uint64_t deleted_csn, bool deleted_known);

  AuditOptions options_;
  AuditReport report_;
  bool finished_ = false;

  bool have_seq_ = false;
  uint64_t next_seq_ = 0;
  bool have_csn_ = false;
  uint64_t last_csn_ = 0;
  bool have_vt_ = false;
  uint64_t last_vt_ = 0;
  bool have_tag_ = false;
  uint64_t last_tag_ = 0;
  /// Unaudited records were fed since the last audited one — the victim
  /// ledger may have advanced invisibly (sampled-evidence runs), so the
  /// next audited record's total is allowed to overshoot the chain.
  bool unaudited_gap_ = false;
  /// AuditWalFile sets these: in WAL mode a ledger reset (vt == v) is
  /// accepted only after a checkpoint record was observed in the log —
  /// the durable evidence that an engine actually restarted.
  bool wal_mode_ = false;
  bool checkpoint_seen_ = false;

  std::unordered_map<WmeId, LiveVersion> live_;
  std::unordered_map<WmeId, std::vector<ClosedVersion>> history_;
  /// Ids written by an unaudited record — their state is unknown, so
  /// later references to them are exempt from checks.
  std::unordered_set<WmeId> untracked_;
  /// Ids whose CREATE was observed in-log (their full version history is
  /// known, so a read of an unknown tag is a violation, not a pre-log
  /// version).
  std::unordered_set<WmeId> origin_known_;
  /// id -> seq of the record that first referenced it pre-log. If the
  /// log later creates the id, that reference was a future read, flagged
  /// there.
  std::unordered_map<WmeId, uint64_t> pre_log_origin_;
};

}  // namespace dbps

#endif  // DBPS_AUDIT_AUDITOR_H_
