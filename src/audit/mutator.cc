#include "audit/mutator.h"

#include <algorithm>
#include <cstddef>
#include <unordered_map>
#include <unordered_set>
#include <utility>
#include <variant>
#include <vector>

#include "audit/audit_record.h"
#include "lang/wal.h"
#include "util/string_util.h"

namespace dbps {

namespace {

struct Entry {
  std::string raw;
  bool is_record = false;  ///< an audited delta record (mutation-eligible)
  AuditedRecord record;
};

StatusOr<std::vector<Entry>> ParseEntries(std::string_view text) {
  std::vector<Entry> entries;
  for (const std::string& line : Split(text, '\n')) {
    Entry entry;
    entry.raw = line;
    std::string_view trimmed = StripWhitespace(line);
    if (!trimmed.empty() && trimmed[0] != ';') {
      DBPS_ASSIGN_OR_RETURN(entry.record, ParseAuditedLine(trimmed));
      entry.is_record = entry.record.audit.present && entry.record.has_seq;
      if (!entry.is_record) {
        return Status::InvalidArgument(
            "mutation harness needs a fully audited journal; line lacks an "
            "audit clause: " +
            entry.raw);
      }
    }
    entries.push_back(std::move(entry));
  }
  return entries;
}

Status Render(Entry* entry) {
  DBPS_ASSIGN_OR_RETURN(
      entry->raw, AuditedJournalLine(entry->record.delta, entry->record.seq,
                                     &entry->record.audit));
  return Status::OK();
}

std::string Join(const std::vector<Entry>& entries) {
  std::string out;
  for (const Entry& entry : entries) {
    out += entry.raw;
    out += '\n';
  }
  return out;
}

/// Indices of the audited-record entries, in order.
std::vector<size_t> RecordIndices(const std::vector<Entry>& entries) {
  std::vector<size_t> indices;
  for (size_t i = 0; i < entries.size(); ++i) {
    if (entries[i].is_record) indices.push_back(i);
  }
  return indices;
}

bool WritesContain(const TxnAudit& audit, const ReadVersion& version) {
  return std::find(audit.writes.begin(), audit.writes.end(), version) !=
         audit.writes.end();
}

StatusOr<MutationResult> SwapConflictingCommits(std::vector<Entry> entries,
                                                uint64_t seed) {
  const std::vector<size_t> records = RecordIndices(entries);
  // A candidate pair: the second commit Rc-reads a version the first one
  // produces, and that version's id is already established in the prefix
  // (created by the first commit, or mentioned before it) — so after the
  // swap the reader provably observes state from its own future instead
  // of silently re-deriving an unknown tuple.
  struct Candidate {
    size_t first;
    size_t second;
  };
  std::vector<Candidate> candidates;
  std::unordered_set<WmeId> seen;
  for (size_t k = 0; k + 1 < records.size(); ++k) {
    const AuditedRecord& first = entries[records[k]].record;
    const AuditedRecord& second = entries[records[k + 1]].record;
    if (!second.audit.snapshot_reads) {
      for (const ReadVersion& read : second.audit.reads) {
        if (!WritesContain(first.audit, read)) continue;
        // Was read.first CREATED by the first commit? Creates/modifies
        // align with the write evidence in op order.
        bool created_by_first = false;
        size_t cursor = 0;
        for (const WmOp& op : first.delta.ops()) {
          if (std::holds_alternative<DeleteOp>(op)) continue;
          if (cursor >= first.audit.writes.size()) break;
          if (first.audit.writes[cursor] == read) {
            created_by_first = std::holds_alternative<CreateOp>(op);
            break;
          }
          ++cursor;
        }
        if (created_by_first || seen.count(read.first) > 0) {
          candidates.push_back(Candidate{records[k], records[k + 1]});
          break;
        }
      }
    }
    for (const auto& [id, tag] : first.audit.reads) seen.insert(id);
    for (const auto& [id, tag] : first.audit.writes) seen.insert(id);
  }
  if (candidates.empty()) {
    return Status::NotFound("no adjacent WR-dependent commit pair to swap");
  }
  const Candidate& pick = candidates[seed % candidates.size()];
  Entry& a = entries[pick.first];
  Entry& b = entries[pick.second];
  const uint64_t seq_a = a.record.seq;
  const uint64_t seq_b = b.record.seq;
  const uint64_t csn_a = a.record.audit.csn;
  const uint64_t csn_b = b.record.audit.csn;
  // The ledger total before the pair (valid either as a chained or a
  // freshly restarted ledger).
  const uint64_t prev_vt = a.record.audit.victims_total - a.record.audit.victims;
  std::swap(a.record, b.record);
  // Renumber so seq stays dense, CSN stays increasing, and the victim
  // ledger still adds up: the ONLY inconsistency left is the backward
  // dependency.
  a.record.seq = seq_a;
  b.record.seq = seq_b;
  a.record.audit.csn = csn_a;
  a.record.audit.read_csn = csn_a;
  b.record.audit.csn = csn_b;
  b.record.audit.read_csn = csn_b;
  a.record.audit.victims_total = prev_vt + a.record.audit.victims;
  b.record.audit.victims_total =
      a.record.audit.victims_total + b.record.audit.victims;
  DBPS_RETURN_NOT_OK(Render(&a));
  DBPS_RETURN_NOT_OK(Render(&b));
  return MutationResult{Join(entries), seq_a, seq_a};
}

StatusOr<MutationResult> DropVictimisation(std::vector<Entry> entries,
                                           uint64_t seed) {
  const std::vector<size_t> records = RecordIndices(entries);
  std::vector<size_t> candidates;
  // Skip the log's first record: the auditor accepts any opening ledger
  // total (a log may begin mid-history), so a drop there is undetectable
  // by construction.
  for (size_t k = 1; k < records.size(); ++k) {
    if (entries[records[k]].record.audit.victims > 0) {
      candidates.push_back(records[k]);
    }
  }
  if (candidates.empty()) {
    return Status::NotFound("no victimizing commit past the first record");
  }
  Entry& entry = entries[candidates[seed % candidates.size()]];
  entry.record.audit.victims = 0;
  DBPS_RETURN_NOT_OK(Render(&entry));
  const uint64_t seq = entry.record.seq;
  return MutationResult{Join(entries), seq, seq};
}

StatusOr<MutationResult> SpliceStaleRead(std::vector<Entry> entries,
                                         uint64_t seed) {
  const std::vector<size_t> records = RecordIndices(entries);
  struct Candidate {
    size_t entry;
    size_t read_index;
    TimeTag stale_tag;
  };
  std::vector<Candidate> candidates;
  std::unordered_map<WmeId, std::vector<TimeTag>> produced;
  for (size_t index : records) {
    const AuditedRecord& record = entries[index].record;
    if (!record.audit.snapshot_reads) {
      for (size_t r = 0; r < record.audit.reads.size(); ++r) {
        const auto& [id, tag] = record.audit.reads[r];
        auto it = produced.find(id);
        if (it == produced.end()) continue;
        for (TimeTag old_tag : it->second) {
          if (old_tag < tag) {
            candidates.push_back(Candidate{index, r, old_tag});
            break;
          }
        }
      }
    }
    for (const auto& [id, tag] : record.audit.writes) {
      produced[id].push_back(tag);
    }
  }
  if (candidates.empty()) {
    return Status::NotFound("no read with a superseded older version");
  }
  const Candidate& pick = candidates[seed % candidates.size()];
  Entry& entry = entries[pick.entry];
  entry.record.audit.reads[pick.read_index].second = pick.stale_tag;
  DBPS_RETURN_NOT_OK(Render(&entry));
  const uint64_t seq = entry.record.seq;
  return MutationResult{Join(entries), seq, seq};
}

StatusOr<MutationResult> StaleSnapshotRead(std::vector<Entry> entries,
                                           uint64_t seed) {
  const std::vector<size_t> records = RecordIndices(entries);
  struct Candidate {
    size_t entry;
    ReadVersion version;
  };
  std::vector<Candidate> candidates;
  for (size_t reader_index : records) {
    const AuditedRecord& reader = entries[reader_index].record;
    if (!reader.audit.snapshot_reads) continue;
    const uint64_t r = reader.audit.read_csn;
    // Prefer a version committed BEFORE the reader in the log but AFTER
    // its snapshot CSN — invisible at R yet fully known to the auditor.
    const Candidate* best = nullptr;
    Candidate fallback{0, {0, 0}};
    bool have_fallback = false;
    for (size_t writer_index : records) {
      if (writer_index == reader_index) break;
      const AuditedRecord& writer = entries[writer_index].record;
      if (writer.audit.csn <= r || writer.audit.writes.empty()) continue;
      for (const ReadVersion& version : writer.audit.writes) {
        if (std::find(reader.audit.reads.begin(), reader.audit.reads.end(),
                      version) != reader.audit.reads.end()) {
          continue;
        }
        candidates.push_back(Candidate{reader_index, version});
        best = &candidates.back();
        break;
      }
      if (best != nullptr) break;
    }
    if (best != nullptr) continue;
    // Fallback: any later-committed version (the reader then references a
    // version the log only produces afterwards — still flagged at the
    // reader).
    for (size_t writer_index : records) {
      const AuditedRecord& writer = entries[writer_index].record;
      if (writer_index == reader_index || writer.audit.csn <= r ||
          writer.audit.writes.empty()) {
        continue;
      }
      fallback = Candidate{reader_index, writer.audit.writes.front()};
      have_fallback = true;
      break;
    }
    if (have_fallback) candidates.push_back(fallback);
  }
  if (candidates.empty()) {
    return Status::NotFound(
        "no snapshot reader with a concurrently committed version to splice");
  }
  const Candidate& pick = candidates[seed % candidates.size()];
  Entry& entry = entries[pick.entry];
  entry.record.audit.reads.push_back(pick.version);
  DBPS_RETURN_NOT_OK(Render(&entry));
  const uint64_t seq = entry.record.seq;
  return MutationResult{Join(entries), seq, seq};
}

StatusOr<MutationResult> DuplicateSeq(std::vector<Entry> entries,
                                      uint64_t seed) {
  const std::vector<size_t> records = RecordIndices(entries);
  if (records.empty()) return Status::NotFound("no record to duplicate");
  const size_t index = records[seed % records.size()];
  Entry copy = entries[index];
  const uint64_t seq = copy.record.seq;
  entries.insert(entries.begin() + static_cast<ptrdiff_t>(index) + 1,
                 std::move(copy));
  return MutationResult{Join(entries), seq, seq};
}

}  // namespace

const char* LogMutationToString(LogMutation mutation) {
  switch (mutation) {
    case LogMutation::kSwapConflictingCommits: return "swap-conflicting-commits";
    case LogMutation::kDropVictimisation: return "drop-victimisation";
    case LogMutation::kSpliceStaleRead: return "splice-stale-read";
    case LogMutation::kStaleSnapshotRead: return "stale-snapshot-read";
    case LogMutation::kDuplicateSeq: return "duplicate-seq";
  }
  return "?";
}

StatusOr<MutationResult> MutateJournalText(std::string_view text,
                                           LogMutation mutation,
                                           uint64_t seed) {
  DBPS_ASSIGN_OR_RETURN(std::vector<Entry> entries, ParseEntries(text));
  switch (mutation) {
    case LogMutation::kSwapConflictingCommits:
      return SwapConflictingCommits(std::move(entries), seed);
    case LogMutation::kDropVictimisation:
      return DropVictimisation(std::move(entries), seed);
    case LogMutation::kSpliceStaleRead:
      return SpliceStaleRead(std::move(entries), seed);
    case LogMutation::kStaleSnapshotRead:
      return StaleSnapshotRead(std::move(entries), seed);
    case LogMutation::kDuplicateSeq:
      return DuplicateSeq(std::move(entries), seed);
  }
  return Status::InvalidArgument("unknown mutation");
}

std::string EncodeTextAsWal(std::string_view text, uint64_t start_seq) {
  std::string out;
  uint64_t seq = start_seq;
  for (const std::string& line : Split(text, '\n')) {
    std::string_view trimmed = StripWhitespace(line);
    if (trimmed.empty() || trimmed[0] == ';') continue;
    WalRecord record;
    record.seq = seq++;
    record.type = WalRecordType::kDelta;
    record.payload = std::string(trimmed);
    EncodeWalRecord(record, &out);
  }
  return out;
}

}  // namespace dbps
