// Log-mutation harness: proves the auditor has teeth.
//
// A checker that never fires is indistinguishable from one that checks
// nothing (the classic validator trap). This harness takes a KNOWN-GOOD
// audited journal, applies one targeted corruption — the kind a real
// concurrency-control or recovery bug would leave behind — and reports
// exactly which commit seq the auditor must flag. The mutation tests then
// assert that every mutation of every clean log is (a) detected at all
// and (b) detected at the right record.
//
// Each mutation is constructed so the corrupted log is LOCALLY plausible
// (seq dense, CSNs increasing, ledger totals recomputed where the
// mutation is not about them) — only the targeted inconsistency remains,
// so a detection cannot be a trivial side effect of sloppy splicing.

#ifndef DBPS_AUDIT_MUTATOR_H_
#define DBPS_AUDIT_MUTATOR_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/statusor.h"

namespace dbps {

enum class LogMutation : uint8_t {
  /// Swaps two adjacent commits with a WR dependency between them
  /// (renumbering seq/csn/ledger so ONLY the dependency points backward).
  /// The §4.3 serializability violation.
  kSwapConflictingCommits,
  /// Zeroes one commit's (v N) victim count while keeping the running
  /// (vt N) ledger — as if a victimization were never logged.
  kDropVictimisation,
  /// Rewrites one Rc read's time tag to an older, superseded version of
  /// the same tuple — a read a concurrent writer clobbered.
  kSpliceStaleRead,
  /// Splices into a snapshot reader's read set a version that was not
  /// visible at its snapshot CSN.
  kStaleSnapshotRead,
  /// Duplicates one commit record in place (a replayed/forked log).
  kDuplicateSeq,
};

const char* LogMutationToString(LogMutation mutation);

struct MutationResult {
  std::string text;      ///< the corrupted journal text
  uint64_t mutated_seq;  ///< seq of the record the mutation touched
  /// The seq at which the auditor must report a violation. (Usually
  /// mutated_seq; for the swap it is the earlier slot of the pair, where
  /// the reader now observes state from its own future.)
  uint64_t expect_seq;
};

/// Applies `mutation` to audited journal text. `seed` picks among the
/// eligible candidate sites deterministically. Fails with NotFound when
/// the log offers no site for this mutation (e.g. no victimizations to
/// drop), and InvalidArgument when the text does not parse.
StatusOr<MutationResult> MutateJournalText(std::string_view text,
                                           LogMutation mutation,
                                           uint64_t seed);

/// Frames journal text as a WAL buffer (one kDelta record per non-empty,
/// non-comment line), assigning dense seqs from `start_seq`. For testing
/// AuditWalFile against mutated logs.
std::string EncodeTextAsWal(std::string_view text, uint64_t start_seq);

}  // namespace dbps

#endif  // DBPS_AUDIT_MUTATOR_H_
