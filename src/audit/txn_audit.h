// Per-transaction audit evidence attached to each committed delta.
//
// The offline consistency auditor (src/audit/auditor.h) checks a commit
// log without re-running the engine, but the log alone cannot say WHAT a
// transaction read — a rule firing reads the WME versions it matched, a
// client transaction reads whatever Session::Read/Query returned. TxnAudit
// is that missing evidence: the exact (id, time-tag) version pairs the
// transaction observed, the CSN it committed at, and the victimization
// counts the commit charged. The engine fills one per commit; the journal
// feed renders it as a lexer-skipped comment suffix on the journal line
// (audit_record.h), so replay, recovery, and every existing consumer of
// the log see the same grammar they always did.
//
// This header is deliberately standalone (engine and server both include
// it; the audit library does not link the engine) — it depends only on
// wm/wme.h for the id/tag typedefs.

#ifndef DBPS_AUDIT_TXN_AUDIT_H_
#define DBPS_AUDIT_TXN_AUDIT_H_

#include <cstdint>
#include <utility>
#include <vector>

#include "wm/wme.h"

namespace dbps {

/// One observed or produced WME version: (id, time tag).
using ReadVersion = std::pair<WmeId, TimeTag>;

/// What an external (client) transaction read, carried from Session to
/// ParallelEngine::CommitExternal so the commit's TxnAudit can record it.
struct TxnReadSet {
  /// CSN of the snapshot the reads were served from (snapshot mode), or
  /// the commit-time CSN floor for locking-mode reads.
  uint64_t read_csn = 0;
  /// True when the session read from a pinned CSN snapshot (no Rc locks);
  /// false for the default locking (Rc) read path.
  bool snapshot = false;
  /// Every version the transaction observed, deduplicated.
  std::vector<ReadVersion> reads;
};

/// Audit evidence for one committed transaction (rule firing or client).
struct TxnAudit {
  /// False when the producer recorded no evidence (e.g. a log line
  /// synthesized by tests via JournalFeed::Append) — the auditor then
  /// treats the record as write-only history.
  bool present = false;
  /// CSN WorkingMemory::Apply assigned this commit's delta.
  uint64_t csn = 0;
  /// CSN the reads were valid at. For locking reads (rule firings,
  /// default sessions) this equals the commit CSN minus one — reads were
  /// revalidated or lock-protected up to the commit point. For snapshot
  /// sessions it is the pinned snapshot's CSN, typically far older.
  uint64_t read_csn = 0;
  /// True when reads came from a pinned snapshot (no Rc locking).
  bool snapshot_reads = false;
  /// Versions observed: matched WMEs for a firing, Read/Query results
  /// for a client transaction.
  std::vector<ReadVersion> reads;
  /// Versions produced: one entry per create/modify op, in delta order.
  std::vector<ReadVersion> writes;
  /// Rc holders victimized by THIS commit.
  uint64_t victims = 0;
  /// Running victimization total after this commit (the ledger the
  /// auditor cross-checks so a dropped victimization record is visible).
  uint64_t victims_total = 0;
};

}  // namespace dbps

#endif  // DBPS_AUDIT_TXN_AUDIT_H_
