// dbps — parallel database production systems.
//
// Umbrella header: pulls in the whole public API. Reproduction of
// Srivastava, Hwang & Tan, "Parallelism in Database Production Systems",
// ICDE 1990.
//
// Typical use:
//
//   #include "dbps.h"
//
//   dbps::WorkingMemory wm;
//   auto rules = dbps::LoadProgram(source_text, &wm).ValueOrDie();
//
//   dbps::ParallelEngineOptions options;
//   options.num_workers = 8;
//   options.protocol = dbps::LockProtocol::kRcRaWa;
//   dbps::ParallelEngine engine(&wm, rules, options);
//   auto result = engine.Run().ValueOrDie();
//
//   // Check semantic consistency (Definition 3.2) of the parallel run:
//   auto replay_wm = pristine_wm.Clone();
//   DBPS_CHECK_OK(dbps::ValidateReplay(replay_wm.get(), rules, result.log));

#ifndef DBPS_DBPS_H_
#define DBPS_DBPS_H_

#include "analysis/access_sets.h"
#include "analysis/lock_sets.h"
#include "analysis/partitioner.h"
#include "audit/audit_record.h"
#include "audit/auditor.h"
#include "audit/mutator.h"
#include "audit/txn_audit.h"
#include "engine/engine.h"
#include "engine/parallel_engine.h"
#include "engine/single_thread_engine.h"
#include "engine/static_partition_engine.h"
#include "lang/compiler.h"
#include "lang/journal.h"
#include "lang/parser.h"
#include "lang/printer.h"
#include "lang/query.h"
#include "lang/wal.h"
#include "lock/lock_manager.h"
#include "lock/lock_types.h"
#include "match/conflict_resolution.h"
#include "match/conflict_set.h"
#include "match/instantiation.h"
#include "match/matcher.h"
#include "match/naive_matcher.h"
#include "match/rete.h"
#include "net/client.h"
#include "net/net_server.h"
#include "net/wire.h"
#include "rules/rhs_evaluator.h"
#include "rules/rule.h"
#include "semantics/abstract_ps.h"
#include "semantics/replay_validator.h"
#include "server/admission.h"
#include "server/journal_feed.h"
#include "server/recovery.h"
#include "server/session.h"
#include "server/session_manager.h"
#include "sim/paper_scenarios.h"
#include "sim/speedup_model.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/random.h"
#include "util/status.h"
#include "util/statusor.h"
#include "util/stopwatch.h"
#include "value/value.h"
#include "wm/working_memory.h"

#endif  // DBPS_DBPS_H_
