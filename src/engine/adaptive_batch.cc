#include "engine/adaptive_batch.h"

#include <algorithm>

namespace dbps {

size_t ComputeAdaptiveBatchLimit(const AdaptiveBatchSignals& window,
                                 size_t current, size_t floor_limit,
                                 size_t ceiling) {
  floor_limit = std::max<size_t>(1, floor_limit);
  ceiling = std::max(ceiling, floor_limit);
  current = std::min(std::max(current, floor_limit), ceiling);
  if (window.total_batches == 0) return current;

  const double saturated_share =
      static_cast<double>(window.saturated_batches) /
      static_cast<double>(window.total_batches);
  const double avg_stall_us =
      static_cast<double>(window.stall_micros) /
      static_cast<double>(window.total_batches);

  if (saturated_share >= 0.25 && avg_stall_us >= 20.0) {
    return std::min(current * 2, ceiling);
  }
  if (saturated_share < 0.05 && avg_stall_us < 5.0) {
    return std::max(current / 2, floor_limit);
  }
  return current;
}

}  // namespace dbps
