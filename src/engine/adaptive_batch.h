// Self-tuning commit_batch_limit (ROADMAP "close the loop"): a pure
// windowed controller that derives the sequencer's fold limit from the
// signals the engine already emits — the batch-size histogram and the
// cumulative sequencer stall time.
//
// Rationale: the batch limit trades latency for amortization. When a
// large share of executed batches saturate the current limit AND
// committers are measurably stalling for their turn, the head is the
// bottleneck and folding more commits per turn amortizes the ordered
// apply/propagate stage better — double the limit. When batches almost
// never fill and stalls are negligible, a high limit only grows the
// worst-case latency a follower waits behind one head — halve it back
// toward the configured knob. Everything else holds.
//
// The function is deliberately pure (window deltas in, new limit out):
// the engine evaluates it every stats window and publishes the result
// through one atomic that the sequencer reads per commit, so the
// controller needs no locks and unit tests need no engine.

#ifndef DBPS_ENGINE_ADAPTIVE_BATCH_H_
#define DBPS_ENGINE_ADAPTIVE_BATCH_H_

#include <cstddef>
#include <cstdint>

namespace dbps {

struct AdaptiveBatchSignals {
  /// Executed batches in the window whose live size reached the current
  /// limit (the histogram's saturated buckets).
  uint64_t saturated_batches = 0;
  /// All executed batches in the window.
  uint64_t total_batches = 0;
  /// Sequencer stall accumulated over the window, microseconds.
  uint64_t stall_micros = 0;
};

/// Returns the batch limit to use for the next window. `current` is the
/// limit in effect; the result stays within [floor_limit, ceiling].
/// With an empty window (total_batches == 0) the limit is unchanged.
///
/// Raise (×2) when >=25% of batches saturated the limit and the average
/// per-batch stall is >=20us; lower (÷2, not below floor_limit) when
/// <5% saturated and the average stall is <5us.
size_t ComputeAdaptiveBatchLimit(const AdaptiveBatchSignals& window,
                                 size_t current, size_t floor_limit,
                                 size_t ceiling);

}  // namespace dbps

#endif  // DBPS_ENGINE_ADAPTIVE_BATCH_H_
