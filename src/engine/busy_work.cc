#include "engine/busy_work.h"

#include <atomic>
#include <chrono>
#include <thread>

namespace dbps {

const char* CostModelToString(CostModel model) {
  switch (model) {
    case CostModel::kSleep:
      return "sleep";
    case CostModel::kBusySpin:
      return "busy-spin";
  }
  return "?";
}

void SleepMicros(int64_t micros) {
  if (micros <= 0) return;
  std::this_thread::sleep_for(std::chrono::microseconds(micros));
}

void SimulateCost(int64_t micros, CostModel model) {
  if (micros <= 0) return;
  if (model == CostModel::kSleep) {
    SleepMicros(micros);
  } else {
    BusySpinMicros(micros);
  }
}

void BusySpinMicros(int64_t micros) {
  if (micros <= 0) return;
  const auto deadline = std::chrono::steady_clock::now() +
                        std::chrono::microseconds(micros);
  // The fence keeps the loop from being optimized away.
  std::atomic<uint64_t> sink{0};
  while (std::chrono::steady_clock::now() < deadline) {
    for (int i = 0; i < 64; ++i) {
      sink.fetch_add(1, std::memory_order_relaxed);
    }
  }
}

}  // namespace dbps
