// Synthetic execution cost: models the paper's per-production execution
// times T(Pi) (§5) — "the execution phase will be a full-fledged database
// query and is likely to be time consuming".

#ifndef DBPS_ENGINE_BUSY_WORK_H_
#define DBPS_ENGINE_BUSY_WORK_H_

#include <cstdint>

namespace dbps {

/// How engines realize a rule's :cost.
///   kSleep    — the thread sleeps for the cost. This *simulates* a
///               dedicated processor per worker: sleeping threads overlap
///               even on a single physical CPU, so Np workers behave like
///               the paper's Np-processor machine regardless of host
///               core count. Default.
///   kBusySpin — the thread burns real CPU for the cost. Faithful on a
///               genuine multiprocessor; on fewer cores than workers it
///               degrades to time-slicing (speedup capped by cores).
enum class CostModel : uint8_t { kSleep = 0, kBusySpin = 1 };

const char* CostModelToString(CostModel model);

/// Spins the calling thread for ~`micros` microseconds of CPU work.
void BusySpinMicros(int64_t micros);

/// Sleeps the calling thread for `micros` microseconds.
void SleepMicros(int64_t micros);

/// Dispatches on `model`; no-op for non-positive `micros`.
void SimulateCost(int64_t micros, CostModel model);

}  // namespace dbps

#endif  // DBPS_ENGINE_BUSY_WORK_H_
