#include "engine/engine.h"

#include "util/string_util.h"

namespace dbps {

std::string EngineStats::ToString() const {
  return StringPrintf(
      "firings=%llu aborts=%llu deadlocks=%llu stale=%llu rhs_errors=%llu "
      "cycles=%llu halted=%d hit_max=%d elapsed=%.3fs",
      (unsigned long long)firings, (unsigned long long)aborts,
      (unsigned long long)deadlocks, (unsigned long long)stale_skips,
      (unsigned long long)rhs_errors, (unsigned long long)cycles,
      halted ? 1 : 0, hit_max_firings ? 1 : 0, elapsed_seconds);
}

}  // namespace dbps
