#include "engine/engine.h"

#include "util/string_util.h"

namespace dbps {

bool IsClientFiring(const InstKey& key) {
  return key.rule_name.rfind(kClientRulePrefix, 0) == 0;
}

InstKey MakeClientKey(const std::string& session_name) {
  InstKey key;
  key.rule_name = std::string(kClientRulePrefix) + session_name;
  return key;
}

std::string EngineStats::ToString() const {
  std::string out = StringPrintf(
      "firings=%llu aborts=%llu deadlocks=%llu stale=%llu rhs_errors=%llu "
      "cycles=%llu halted=%d hit_max=%d elapsed=%.3fs",
      (unsigned long long)firings, (unsigned long long)aborts,
      (unsigned long long)deadlocks, (unsigned long long)stale_skips,
      (unsigned long long)rhs_errors, (unsigned long long)cycles,
      halted ? 1 : 0, hit_max_firings ? 1 : 0, elapsed_seconds);
  if (client_commits != 0 || client_aborts != 0) {
    out += StringPrintf(" client_commits=%llu client_aborts=%llu",
                        (unsigned long long)client_commits,
                        (unsigned long long)client_aborts);
  }
  if (injected_faults != 0 || firing_retries != 0 || escalations != 0 ||
      worker_exceptions != 0) {
    out += StringPrintf(
        " faults=%llu retries=%llu max_streak=%llu escalations=%llu "
        "backoff_us=%llu exceptions=%llu",
        (unsigned long long)injected_faults,
        (unsigned long long)firing_retries,
        (unsigned long long)max_abort_streak,
        (unsigned long long)escalations,
        (unsigned long long)backoff_micros,
        (unsigned long long)worker_exceptions);
  }
  if (commit_tickets != 0) {
    out += StringPrintf(" tickets=%llu seq_stall_us=%llu",
                        (unsigned long long)commit_tickets,
                        (unsigned long long)sequencer_stall_micros);
  }
  if (commit_batches != 0) {
    out += StringPrintf(" batches=%llu batched_commits=%llu batch_hist=[",
                        (unsigned long long)commit_batches,
                        (unsigned long long)batched_commits);
    bool first = true;
    for (size_t size = 0; size < batch_size_histogram.size(); ++size) {
      if (batch_size_histogram[size] == 0) continue;
      out += StringPrintf("%s%zu%s:%llu", first ? "" : " ", size,
                          size + 1 == batch_size_histogram.size() ? "+" : "",
                          (unsigned long long)batch_size_histogram[size]);
      first = false;
    }
    out += "]";
  }
  if (match_batches != 0) {
    out += StringPrintf(
        " match_partitions=%zu match_batches=%llu match_morsels=%llu "
        "match_handoffs=%llu match_propagate_us=%llu match_merge_us=%llu "
        "match_skew=[",
        match_partitions.size(), (unsigned long long)match_batches,
        (unsigned long long)match_morsels, (unsigned long long)match_handoffs,
        (unsigned long long)match_propagate_micros,
        (unsigned long long)match_merge_micros);
    bool first = true;
    for (size_t bin = 0; bin < match_skew_histogram.size(); ++bin) {
      if (match_skew_histogram[bin] == 0) continue;
      out += StringPrintf("%s%zu0%%:%llu", first ? "" : " ", bin,
                          (unsigned long long)match_skew_histogram[bin]);
      first = false;
    }
    out += "]";
    if (match_splits != 0 || match_rehomes != 0 || match_rehome_skips != 0) {
      out += StringPrintf(" match_splits=%llu match_rehomes=%llu "
                          "match_rehome_skips=%llu",
                          (unsigned long long)match_splits,
                          (unsigned long long)match_rehomes,
                          (unsigned long long)match_rehome_skips);
    }
  }
  if (match_pipeline_batches != 0 || match_pipeline_drains != 0) {
    out += StringPrintf(
        " pipeline_batches=%llu pipeline_drains=%llu pipeline_stall_us=%llu",
        (unsigned long long)match_pipeline_batches,
        (unsigned long long)match_pipeline_drains,
        (unsigned long long)match_pipeline_stall_micros);
  }
  if (adaptive_batch_adjustments != 0) {
    out += StringPrintf(" batch_limit_adjustments=%llu effective_limit=%llu",
                        (unsigned long long)adaptive_batch_adjustments,
                        (unsigned long long)effective_batch_limit);
  }
  if (!lock_shards.empty()) {
    uint64_t waits = 0, contentions = 0, fast = 0, retries = 0;
    for (const LockShardCounters& shard : lock_shards) {
      waits += shard.waits;
      contentions += shard.mutex_contentions;
      fast += shard.fast_path_grants;
      retries += shard.fast_path_cas_retries;
    }
    out += StringPrintf(" lock_shards=%zu shard_waits=%llu "
                        "shard_mutex_contentions=%llu fast_path_grants=%llu "
                        "fast_path_cas_retries=%llu",
                        lock_shards.size(), (unsigned long long)waits,
                        (unsigned long long)contentions,
                        (unsigned long long)fast,
                        (unsigned long long)retries);
  }
  return out;
}

}  // namespace dbps
