// Common engine vocabulary: options, statistics, the firing log.
//
// Every engine executes the match–select–execute cycle over a
// WorkingMemory + RuleSet and produces a RunResult whose `log` is the
// committed firing sequence — the string ...p_i p_j p_k... of §3.2. The
// semantics module replays that log against single-thread execution to
// check Definition 3.2 (semantic consistency).

#ifndef DBPS_ENGINE_ENGINE_H_
#define DBPS_ENGINE_ENGINE_H_

#include <array>
#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "audit/txn_audit.h"
#include "engine/busy_work.h"
#include "match/conflict_resolution.h"
#include "match/instantiation.h"
#include "match/matcher.h"
#include "wm/delta.h"

namespace dbps {

/// \brief Engine lifecycle events, observable via EngineOptions::observer.
/// Callbacks fire on engine threads; for parallel engines, kCommit events
/// are delivered under the commit lock (in commit order), the others
/// concurrently. Keep observers fast and do not call back into the engine.
struct EngineEvent {
  enum class Kind : uint8_t {
    kCommit,    ///< a firing committed
    kAbort,     ///< a firing was rolled back (Rc–Wa victim, deadlock, wound)
    kStale,     ///< a claim was invalidated before execution began
    /// The commit batch that contained the preceding kCommit events is
    /// complete (key/delta null). Parallel engines emit one per executed
    /// sequencer batch; serial engines after every commit (batches of
    /// one). Durability sinks (JournalFeed's group-commit mode) fsync
    /// here — once per batch instead of once per commit — and must do so
    /// before returning, because commit acks are released afterwards.
    kBatchEnd,
  };
  Kind kind;
  const InstKey* key;  ///< the firing's identity (valid during the call)
  /// The committed changes; non-null for kCommit, null otherwise (valid
  /// during the call). Lets observers journal every commit — rule firings
  /// and external client transactions alike — in commit order.
  const Delta* delta = nullptr;
  /// For kCommit: this commit's sequence number (== FiringRecord::seq,
  /// dense from 0). For kBatchEnd: the post-batch sequence high-water —
  /// every commit with seq below it has been delivered.
  uint64_t seq = 0;
  /// For kCommit: the transaction's audit evidence (read/write versions,
  /// CSN, victimization counts — see audit/txn_audit.h). Null when the
  /// engine recorded none; valid only during the call.
  const TxnAudit* audit = nullptr;
};

using EngineObserver = std::function<void(const EngineEvent&)>;

/// \brief Options shared by all engines.
struct EngineOptions {
  ConflictResolution strategy = ConflictResolution::kPriority;
  MatcherKind matcher = MatcherKind::kRete;
  uint64_t seed = 42;            ///< PRNG seed (kRandom strategy, workers)
  uint64_t max_firings = 100000; ///< safety net against non-terminating rules
  bool record_log = true;        ///< keep the commit log (needed for replay)
  bool simulate_cost = true;     ///< honour each rule's :cost microseconds
  /// How :cost occupies a "processor" (see busy_work.h). kSleep simulates
  /// one dedicated processor per worker on any host; kBusySpin burns real
  /// CPU and needs >= num_workers physical cores to show speedup.
  CostModel cost_model = CostModel::kSleep;
  /// Optional lifecycle event sink (see EngineEvent).
  EngineObserver observer;
};

/// \brief One committed firing — or one committed external (client)
/// transaction, whose key carries the kClientRulePrefix and no WMEs.
struct FiringRecord {
  uint64_t seq = 0;       ///< commit order, starting at 0
  InstKey key;            ///< rule + matched WME versions
  Delta delta;            ///< the changes this firing applied
  TxnAudit audit;         ///< read/write evidence (audit/txn_audit.h)
};

/// External transactions appear in the commit log under a pseudo rule name
/// "@client/<session>". '@' cannot start a rule-language identifier, so
/// these never collide with real rules.
inline constexpr const char kClientRulePrefix[] = "@client/";

/// True iff `key` records an external client transaction rather than a
/// production firing.
bool IsClientFiring(const InstKey& key);

/// The log identity of one client session's commits.
InstKey MakeClientKey(const std::string& session_name);

/// \brief Per-shard contention counters of the striped lock table,
/// mirrored from the lock manager at the end of a parallel run.
struct LockShardCounters {
  uint64_t acquires = 0;           ///< slow-path grants routed to this shard
  uint64_t waits = 0;              ///< acquisitions that blocked here
  uint64_t mutex_contentions = 0;  ///< shard-mutex acquisitions that spun
  uint64_t hold_ns = 0;            ///< cumulative shard-mutex hold time
  /// Grants that completed on the lock-free CAS fast path (no shard
  /// mutex touched) and the CAS retries they burned doing it.
  uint64_t fast_path_grants = 0;
  uint64_t fast_path_cas_retries = 0;
};

/// \brief Per-partition counters of the partitioned match phase,
/// mirrored from PartitionedMatcher at the end of a parallel run.
struct MatchPartitionCounters {
  uint64_t rules = 0;         ///< rules homed in this partition
  uint64_t morsels = 0;       ///< non-empty sub-batches propagated
  uint64_t wmes_routed = 0;   ///< WME add/remove versions routed here
  uint64_t handoffs = 0;      ///< routed WMEs homed in another partition
  uint64_t propagate_ns = 0;  ///< inner propagation time in this partition
  uint64_t subs = 0;          ///< value-hash sub-partitions (1 = unsplit)
};

/// \brief Aggregate counters of one run.
struct EngineStats {
  uint64_t firings = 0;      ///< committed productions
  uint64_t aborts = 0;       ///< firings rolled back (Rc–Wa rule, deadlock)
  uint64_t deadlocks = 0;    ///< aborts caused by deadlock victimization
  uint64_t stale_skips = 0;  ///< claims invalidated before execution began
  uint64_t rhs_errors = 0;   ///< firings skipped due to RHS evaluation errors
  uint64_t cycles = 0;       ///< production cycles (cycle-structured engines)
  /// External (client session) transactions committed through the engine's
  /// commit path — these interleave with rule firings in the log.
  uint64_t client_commits = 0;
  uint64_t client_aborts = 0;  ///< external transactions rolled back
  // --- Robustness counters (parallel engines) ---------------------------
  /// Failpoint fires observed during the run (process-global delta; see
  /// util/failpoint.h). Zero unless fault injection is armed.
  uint64_t injected_faults = 0;
  /// Claims of an instantiation that had already been aborted at least
  /// once — the retry traffic behind `aborts`.
  uint64_t firing_retries = 0;
  /// Worst per-instantiation consecutive-abort streak seen.
  uint64_t max_abort_streak = 0;
  /// Starving firings escalated to blocking (2PL-style) Rc acquisition.
  uint64_t escalations = 0;
  /// Total worker backoff sleep after aborted firings, microseconds.
  uint64_t backoff_micros = 0;
  /// Exceptions that escaped ProcessFiring (injected or real); each is
  /// contained by the worker's in-flight guard and counted as an abort.
  uint64_t worker_exceptions = 0;
  /// High-water mark of firings simultaneously in their execute phase
  /// (parallel engines only) — the achieved degree of parallelism.
  int peak_parallel_executions = 0;
  // --- Commit sequencer / lock sharding (parallel engines) --------------
  /// Commit tickets issued by the pipelined commit sequencer (every
  /// commit attempt that reached the ordered apply stage).
  uint64_t commit_tickets = 0;
  /// Total time committers spent waiting for their ticket's turn,
  /// microseconds — the pipeline's ordering cost.
  uint64_t sequencer_stall_micros = 0;
  /// Batches executed by the head-of-ticket-order committer (every head
  /// execution counts, including batches of one).
  uint64_t commit_batches = 0;
  /// Commits that rode a multi-commit batch (applied + propagated with at
  /// least one sibling in a single ordered pass).
  uint64_t batched_commits = 0;
  /// Histogram of live commits per executed batch: index i counts batches
  /// that committed i members (index 0: batches whose members all turned
  /// out cancelled/aborted); the last bucket absorbs larger batches.
  std::array<uint64_t, 9> batch_size_histogram{};
  /// Per-shard lock-table contention counters (empty for serial engines).
  std::vector<LockShardCounters> lock_shards;
  // --- Partitioned match phase (parallel engines, when enabled) ---------
  /// Per-partition match counters, mirrored from the partitioned matcher
  /// at the end of the run (empty when matching ran serial).
  std::vector<MatchPartitionCounters> match_partitions;
  /// Parallel propagation passes (one per non-empty commit batch).
  uint64_t match_batches = 0;
  /// Morsels executed (one per partition touched per batch).
  uint64_t match_morsels = 0;
  /// Routed WME versions consumed by a partition other than the one
  /// homing their relation (rules whose conditions span partitions).
  uint64_t match_handoffs = 0;
  /// Wall time of the morsel-parallel propagate phase, microseconds.
  uint64_t match_propagate_micros = 0;
  /// Canonical conflict-set merge time on the committer, microseconds.
  uint64_t match_merge_micros = 0;
  /// Per-batch max partition share of routed WMEs, 10% bins (bin 9 = one
  /// partition received ~everything: the skew diagnostic).
  std::array<uint64_t, 10> match_skew_histogram{};
  // --- Skew adaptation (hot-partition splitting / rule re-homing) -------
  /// Hot partitions split into value-hash sub-partitions during the run.
  uint64_t match_splits = 0;
  /// Quiescent-point rebuilds of the rule→partition homing map.
  uint64_t match_rehomes = 0;
  /// Re-home triggers whose rebuilt map matched the current one (skipped).
  uint64_t match_rehome_skips = 0;
  // --- Match/commit pipelining ------------------------------------------
  /// Batches propagated asynchronously by the match pipeline thread.
  uint64_t match_pipeline_batches = 0;
  /// Drain points that found propagation still in flight and blocked.
  uint64_t match_pipeline_drains = 0;
  /// Time spent blocked in those drains, microseconds.
  uint64_t match_pipeline_stall_micros = 0;
  // --- Adaptive commit batch limit --------------------------------------
  /// Times the self-tuning controller changed the effective batch limit.
  uint64_t adaptive_batch_adjustments = 0;
  /// Batch limit in effect at the end of the run (== the configured knob
  /// unless `adaptive_batch_limit` was armed).
  uint64_t effective_batch_limit = 0;
  bool halted = false;       ///< a (halt) action committed
  bool hit_max_firings = false;
  double elapsed_seconds = 0.0;

  std::string ToString() const;
};

/// \brief Result of an engine run. `status` is non-OK only for setup or
/// internal failures; rule-level aborts are normal operation and are
/// reported in `stats`.
struct RunResult {
  EngineStats stats;
  std::vector<FiringRecord> log;
};

}  // namespace dbps

#endif  // DBPS_ENGINE_ENGINE_H_
