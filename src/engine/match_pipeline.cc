#include "engine/match_pipeline.h"

#include <chrono>
#include <utility>

#include "util/logging.h"

namespace dbps {

MatchPipeline::MatchPipeline(PartitionedMatcher* matcher)
    : matcher_(matcher) {
  DBPS_CHECK(matcher_ != nullptr);
  thread_ = std::thread([this] { Loop(); });
}

MatchPipeline::~MatchPipeline() {
  {
    std::unique_lock<std::mutex> lock(mu_);
    stop_ = true;
  }
  work_cv_.notify_all();
  if (thread_.joinable()) thread_.join();
}

void MatchPipeline::Submit(std::vector<WmChange> changes, WmSnapshot snap) {
  {
    std::unique_lock<std::mutex> lock(mu_);
    queue_.push_back(Job{std::move(changes), std::move(snap)});
  }
  work_cv_.notify_one();
}

void MatchPipeline::Drain() {
  std::unique_lock<std::mutex> lock(mu_);
  if (queue_.empty() && !busy_) return;
  stats_.drains++;
  const auto start = std::chrono::steady_clock::now();
  idle_cv_.wait(lock, [this] { return queue_.empty() && !busy_; });
  stats_.stall_ns += static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now() - start)
          .count());
}

bool MatchPipeline::Idle() const {
  std::unique_lock<std::mutex> lock(mu_);
  return queue_.empty() && !busy_;
}

MatchPipeline::Stats MatchPipeline::stats() const {
  std::unique_lock<std::mutex> lock(mu_);
  return stats_;
}

void MatchPipeline::ResetStats() {
  std::unique_lock<std::mutex> lock(mu_);
  stats_ = Stats{};
}

void MatchPipeline::Loop() {
  for (;;) {
    Job job;
    {
      std::unique_lock<std::mutex> lock(mu_);
      work_cv_.wait(lock, [this] { return stop_ || !queue_.empty(); });
      if (queue_.empty()) return;  // stop_ set and nothing left to drain
      job = std::move(queue_.front());
      queue_.pop_front();
      busy_ = true;
    }
    matcher_->ApplyChangesAt(job.changes, job.snap);
    {
      std::unique_lock<std::mutex> lock(mu_);
      busy_ = false;
      stats_.batches++;
      if (queue_.empty()) idle_cv_.notify_all();
    }
  }
}

}  // namespace dbps
