// Match/commit pipelining: a single-threaded propagation stage that
// overlaps batch N's match-network propagation with batch N+1's lock
// acquisition and victim collection.
//
// The commit sequencer already splits a commit into stage A (ordered
// working-memory apply, under the ticket) and stage B (propagation into
// the partitioned matcher, previously inline in ExecuteBatch). Stage B
// is the expensive half and needs nothing from the committing worker
// once the WM deltas and a pinned snapshot exist — so the head hands
// {changes, snapshot} to this pipeline and returns to claiming the next
// firing while the pipeline thread propagates.
//
// Ordering: the queue is FIFO and there is exactly one pipeline thread,
// so batches reach PartitionedMatcher::ApplyChangesAt in commit-ticket
// order — the same total order the inline path used. Canonical merge
// inside the matcher then keeps journals byte-identical to the
// unpipelined run (proved by the differential suite).
//
// Synchronization points (Drain):
//  * before a worker claims the next firing — the conflict set must
//    reflect every committed batch before selection (this is what keeps
//    single-worker journals byte-identical to serial);
//  * before revalidate-mode victim settling — SettleVictims consults
//    matcher-backed state via the conflict set;
//  * at shutdown — Run() drains before harvesting matcher stats.
// Drain time is accounted as stall_ns: time the engine spent waiting on
// propagation it failed to overlap.

#ifndef DBPS_ENGINE_MATCH_PIPELINE_H_
#define DBPS_ENGINE_MATCH_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <mutex>
#include <thread>
#include <vector>

#include "match/partitioned_matcher.h"
#include "wm/delta.h"
#include "wm/working_memory.h"

namespace dbps {

class MatchPipeline {
 public:
  struct Stats {
    uint64_t batches = 0;   ///< jobs propagated by the pipeline thread
    uint64_t drains = 0;    ///< Drain() calls that found work in flight
    uint64_t stall_ns = 0;  ///< time Drain() spent blocked
  };

  /// Spawns the propagation thread. `matcher` must outlive the pipeline.
  explicit MatchPipeline(PartitionedMatcher* matcher);

  /// Drains outstanding work, then stops and joins the thread.
  ~MatchPipeline();

  MatchPipeline(const MatchPipeline&) = delete;
  MatchPipeline& operator=(const MatchPipeline&) = delete;

  /// Enqueues one committed batch for propagation. `changes` must be the
  /// caller's own copy (the pipeline consumes it after the caller
  /// returns); `snap` pins the post-apply CSN used for any split or
  /// re-home rebuild triggered by this batch. Callers must Submit in
  /// commit-ticket order — FIFO dispatch preserves that order.
  void Submit(std::vector<WmChange> changes, WmSnapshot snap);

  /// Blocks until every submitted batch has finished propagating.
  void Drain();

  /// True when no job is queued or in flight. Callers that also hold
  /// their own scheduling lock use this to skip an expensive Drain().
  bool Idle() const;

  Stats stats() const;

  /// Zeroes the counters (stats windows between engine runs).
  void ResetStats();

 private:
  struct Job {
    std::vector<WmChange> changes;
    WmSnapshot snap;
  };

  void Loop();

  PartitionedMatcher* const matcher_;
  mutable std::mutex mu_;
  std::condition_variable work_cv_;   // signals the pipeline thread
  std::condition_variable idle_cv_;   // signals Drain() waiters
  std::deque<Job> queue_;
  bool busy_ = false;                 // a job is out of the queue, running
  bool stop_ = false;
  Stats stats_;
  std::thread thread_;
};

}  // namespace dbps

#endif  // DBPS_ENGINE_MATCH_PIPELINE_H_
