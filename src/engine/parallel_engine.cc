#include "engine/parallel_engine.h"

#include <algorithm>
#include <vector>

#include <exception>

#include "analysis/access_sets.h"
#include "analysis/lock_sets.h"
#include "engine/adaptive_batch.h"
#include "engine/busy_work.h"
#include "match/partitioned_matcher.h"
#include "rules/rhs_evaluator.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dbps {

const char* AbortPolicyToString(AbortPolicy policy) {
  switch (policy) {
    case AbortPolicy::kAbort:
      return "abort";
    case AbortPolicy::kRevalidate:
      return "revalidate";
  }
  return "?";
}

bool ParallelEngine::CommitSequencer::CanFold(
    const std::vector<PendingCommit*>& batch, const PendingCommit& next) {
  if (next.cancelled) return true;  // a no-op folds with anything
  for (const PendingCommit* member : batch) {
    if (member->cancelled) continue;
    if (WriteSetsOverlap(member->write_set, next.write_set)) return false;
    // No victimization across the batch: a member that would abort (or
    // be aborted by) another member must execute in its own turn, after
    // the earlier member's settlement actually ran.
    if (std::find(member->victims.begin(), member->victims.end(),
                  next.txn) != member->victims.end()) {
      return false;
    }
    if (std::find(next.victims.begin(), next.victims.end(), member->txn) !=
        next.victims.end()) {
      return false;
    }
  }
  return true;
}

std::vector<ParallelEngine::PendingCommit*>
ParallelEngine::CommitSequencer::AwaitTurn(uint64_t ticket,
                                           PendingCommit* pending,
                                           size_t max_batch,
                                           uint64_t* stall_ns) {
  Stopwatch stall;
  std::unique_lock<std::mutex> lock(mu_);
  submitted_.emplace(ticket, pending);
  cv_.wait(lock, [&] { return pending->executed || turn_ == ticket; });
  *stall_ns = static_cast<uint64_t>(stall.ElapsedNanos());
  if (pending->executed) return {};
  // This committer is the head: gather the batch. Only tickets already
  // submitted at this instant ride along — later arrivals form the next
  // batch (the turn cannot advance past them unexecuted).
  std::vector<PendingCommit*> batch;
  batch.push_back(pending);
  submitted_.erase(ticket);
  for (uint64_t next = ticket + 1; batch.size() < max_batch; ++next) {
    auto it = submitted_.find(next);
    if (it == submitted_.end() || !CanFold(batch, *it->second)) break;
    batch.push_back(it->second);
    submitted_.erase(it);
  }
  return batch;
}

void ParallelEngine::CommitSequencer::FinishBatch(
    uint64_t ticket, const std::vector<PendingCommit*>& batch) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    turn_ = ticket + batch.size();
    // Publishing under mu_ is the happens-before edge for the result
    // fields the head wrote while executing.
    for (PendingCommit* member : batch) member->executed = true;
  }
  cv_.notify_all();
}

void ParallelEngine::SequencedCommit::Commit(PendingCommit* pending) {
  DBPS_DCHECK(!submitted_);
  submitted_ = true;
  uint64_t stall_ns = 0;
  std::vector<PendingCommit*> batch = engine_->sequencer_.AwaitTurn(
      ticket_, pending,
      engine_->effective_batch_limit_.load(std::memory_order_relaxed),
      &stall_ns);
  engine_->sequencer_stall_ns_.fetch_add(stall_ns,
                                         std::memory_order_relaxed);
  if (batch.empty()) return;  // a prior head executed this commit
  // The head must advance the turn no matter what execution does, or the
  // pipeline stalls behind this ticket forever.
  try {
    engine_->ExecuteBatch(batch);
  } catch (...) {
    engine_->sequencer_.FinishBatch(ticket_, batch);
    throw;
  }
  engine_->sequencer_.FinishBatch(ticket_, batch);
}

void ParallelEngine::ExecuteBatch(const std::vector<PendingCommit*>& batch) {
  // Apply deltas in ticket order, skipping cancelled members and members
  // an earlier ticket (outside this batch — members never victimize each
  // other, by CanFold) already aborted.
  std::vector<WmChange> changes;
  changes.reserve(batch.size());
  std::vector<PendingCommit*> live;
  live.reserve(batch.size());
  for (PendingCommit* member : batch) {
    if (member->cancelled) continue;
    if (lock_manager_->IsAborted(member->txn)) continue;
    // Chaos site: one member "crashes" inside the batch before its delta
    // applies — it must abort and retry while its batch-mates commit, and
    // nothing of it may reach the log.
    if (DBPS_FAILPOINT("engine.commit.crash_in_batch")) continue;
    if (!member->is_client && pipeline_ != nullptr) {
      // Pipelined propagation widens the claim-validation race: phase 2
      // checked a conflict set that may not yet reflect an invalidating
      // commit whose propagation was still queued (inline propagation
      // finished before the invalidator released its Wa locks, so this
      // could not happen). Re-validate the match against the live WM in
      // ticket order; a stale member degrades to an abort and retries.
      bool current = true;
      for (const auto& [id, tag] : member->key->wmes) {
        if (!wm_->IsCurrent(id, tag)) {
          current = false;
          break;
        }
      }
      if (!current) continue;
    }
    auto change_or = wm_->Apply(*member->delta);
    if (!change_or.ok()) {
      if (member->is_client) {
        // Reachable in normal operation: the client may have buffered a
        // write against a tuple a rule deleted before the client locked
        // it. Nothing applied; the submitter aborts the transaction.
        member->apply_status = change_or.status();
        continue;
      }
      // Cannot happen for a rule firing while the locking protocol is
      // sound; surface it loudly in debug builds, degrade to an abort.
      DBPS_LOG(Error) << "commit failed applying delta: "
                      << change_or.status().ToString();
      DBPS_DCHECK(false);
      continue;
    }
    if (!member->is_client) matcher_->conflict_set().MarkFired(*member->key);
    changes.push_back(std::move(change_or).ValueOrDie());
    live.push_back(member);
  }

  // One matcher propagation pass for the whole batch — the amortization
  // this sequencer exists for. Sound because CanFold admitted only
  // pairwise-disjoint write sets (no change removes a version a sibling
  // adds). When the match pipeline is armed the pass runs asynchronously
  // on the pipeline thread: Submit takes a copy (the audit loop below
  // still reads `changes`) plus a snapshot pinned HERE, in ticket order,
  // so a split/re-home rebuild triggered by this batch feeds from state
  // that excludes every later batch's apply.
  if (!changes.empty()) {
    if (pipeline_ != nullptr) {
      WmSnapshot rebuild_snap;
      if (options_.match_split || options_.match_rehome) {
        rebuild_snap = wm_->SnapshotAt();
      }
      pipeline_->Submit(changes, std::move(rebuild_snap));
    } else {
      matcher_->ApplyChanges(changes);
    }
  }

  // Settle each member's Rc–Wa victims in ticket order. Under
  // kRevalidate the sparing snapshot is pinned after the WHOLE batch
  // applied rather than after each member: revalidation can only see
  // *more* invalidation, so every spared firing would also have been
  // spared per-commit, and every extra abort is admissible under the
  // paper's rule (ii).
  if (pipeline_ != nullptr &&
      options_.abort_policy == AbortPolicy::kRevalidate) {
    // Revalidation consults the conflict set (Contains): drain queued
    // propagation — including this batch's — before sparing anyone, or a
    // victim whose instantiation a pending batch deactivates would be
    // spared that the inline path would have aborted.
    bool any_victims = false;
    for (PendingCommit* member : live) {
      if (!member->victims.empty()) {
        any_victims = true;
        break;
      }
    }
    if (any_victims) pipeline_->Drain();
  }
  std::vector<size_t> victim_counts;
  victim_counts.reserve(live.size());
  for (PendingCommit* member : live) {
    victim_counts.push_back(SettleVictims(member->txn, member->victims));
  }

  // Emit the log in ticket order — exactly the records and sequence
  // numbers a batch-of-one pipeline would have produced.
  bool emitted = false;
  for (size_t i = 0; i < live.size(); ++i) {
    PendingCommit* member = live[i];
    member->seq = commit_seq_;
    // An empty client write set commits (its repeatable reads were
    // valid) but leaves no trace in the log or journal.
    if (!member->is_client || !member->delta->empty()) {
      // Audit evidence for the offline consistency auditor: the exact
      // versions this transaction read and produced, its CSN, and the
      // victimization ledger (only LOGGED commits feed the ledger, so
      // the (v)/(vt) chain in the journal is self-consistent).
      victims_total_ += victim_counts[i];
      TxnAudit audit;
      // Evidence sampling (audit_every > 1): only every Nth commit seq
      // carries the full `;a(...)` clause; the rest are order-only
      // evidence. The victim ledger still accumulates across unaudited
      // commits, so the next audited record's running total covers the
      // gap (the auditor stitches it).
      audit.present = options_.audit_every <= 1 ||
                      commit_seq_ % options_.audit_every == 0;
      if (audit.present) {
        audit.csn = changes[i].csn;
        if (member->is_client) {
          audit.read_csn = changes[i].csn;
          if (member->reads != nullptr) {
            audit.snapshot_reads = member->reads->snapshot;
            audit.reads = member->reads->reads;
            // Snapshot reads were valid at the pinned CSN, not at commit.
            if (member->reads->snapshot) {
              audit.read_csn = member->reads->read_csn;
            }
          }
        } else {
          // A rule firing read the versions it matched, lock-protected
          // (or revalidated) up to this commit.
          audit.read_csn = changes[i].csn;
          audit.reads = member->key->wmes;
        }
        audit.writes.reserve(changes[i].added.size());
        for (const WmePtr& added : changes[i].added) {
          audit.writes.emplace_back(added->id(), added->tag());
        }
        audit.victims = victim_counts[i];
        audit.victims_total = victims_total_;
      }
      if (options_.base.record_log) {
        log_.push_back(FiringRecord{commit_seq_, *member->key,
                                    *member->delta, audit});
      }
      ++commit_seq_;
      if (options_.base.observer) {
        EngineEvent event{EngineEvent::Kind::kCommit, member->key,
                          member->delta, member->seq};
        event.audit = &audit;
        options_.base.observer(event);
        emitted = true;
      }
    }
    member->committed = true;
  }
  // Batch boundary: group-commit sinks amortize one fsync over every
  // kCommit above, and must be durable before we return — FinishBatch
  // releases the member commits (and their client acks) afterwards.
  if (emitted) {
    options_.base.observer(EngineEvent{EngineEvent::Kind::kBatchEnd, nullptr,
                                       nullptr, commit_seq_});
  }

  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.commit_batches;
    if (live.size() > 1) stats_.batched_commits += live.size();
    const size_t bucket =
        std::min(live.size(), stats_.batch_size_histogram.size() - 1);
    ++stats_.batch_size_histogram[bucket];
    if (options_.adaptive_batch_limit && stats_.commit_batches % 64 == 0) {
      // Window the controller on the last 64 batches: saturated batches
      // (histogram buckets at/above the current limit), total batches,
      // and sequencer stall, as deltas against the previous evaluation.
      const size_t current =
          effective_batch_limit_.load(std::memory_order_relaxed);
      uint64_t saturated = 0;
      for (size_t b =
               std::min(current, stats_.batch_size_histogram.size() - 1);
           b < stats_.batch_size_histogram.size(); ++b) {
        saturated += stats_.batch_size_histogram[b];
      }
      const uint64_t stall_ns =
          sequencer_stall_ns_.load(std::memory_order_relaxed);
      AdaptiveBatchSignals window;
      // The saturation bucket moves when the limit changes, so the
      // cumulative count can shrink across evaluations; clamp at zero.
      window.saturated_batches =
          saturated >= adapt_last_saturated_ ? saturated - adapt_last_saturated_
                                             : 0;
      window.total_batches = stats_.commit_batches - adapt_last_batches_;
      window.stall_micros = (stall_ns - adapt_last_stall_ns_) / 1000;
      adapt_last_saturated_ = saturated;
      adapt_last_batches_ = stats_.commit_batches;
      adapt_last_stall_ns_ = stall_ns;
      const size_t next = ComputeAdaptiveBatchLimit(
          window, current, /*floor_limit=*/1, /*ceiling=*/64);
      if (next != current) {
        effective_batch_limit_.store(next, std::memory_order_relaxed);
        ++stats_.adaptive_batch_adjustments;
      }
    }
  }
}

ParallelEngine::ParallelEngine(WorkingMemory* wm, RuleSetPtr rules,
                               ParallelEngineOptions options)
    : wm_(wm), rules_(std::move(rules)), options_(options) {
  commit_seq_ = options_.start_seq;
  effective_batch_limit_.store(std::max<size_t>(1, options_.commit_batch_limit),
                               std::memory_order_relaxed);
  DBPS_CHECK(wm_ != nullptr);
  DBPS_CHECK(rules_ != nullptr);
  DBPS_CHECK_GT(options_.num_workers, 0u);
}

StatusOr<RunResult> ParallelEngine::Run() {
  if (options_.num_match_partitions > 1 &&
      options_.base.matcher != MatcherKind::kNaive) {
    // Morsel-parallel partitioned match phase; kNaive stays serial (the
    // oracle rematches against live WM and cannot be partitioned).
    PartitionedMatcher::Options match_options;
    match_options.num_partitions = options_.num_match_partitions;
    match_options.num_workers = std::max<size_t>(1, options_.match_workers);
    match_options.inner = options_.base.matcher;
    match_options.shadow_check = options_.match_shadow_check;
    match_options.split_hot = options_.match_split;
    match_options.split_ways = options_.match_split_ways;
    match_options.split_streak = options_.match_split_streak;
    match_options.split_share = options_.match_split_share;
    match_options.rehome = options_.match_rehome;
    match_options.rehome_streak = options_.match_rehome_streak;
    auto partitioned = std::make_unique<PartitionedMatcher>(match_options);
    partitioned_matcher_ = partitioned.get();
    matcher_ = std::move(partitioned);
  } else {
    matcher_ = CreateMatcher(options_.base.matcher);
  }
  DBPS_RETURN_NOT_OK(matcher_->Initialize(rules_, *wm_));
  if (partitioned_matcher_ != nullptr && options_.match_pipeline) {
    pipeline_ = std::make_unique<MatchPipeline>(partitioned_matcher_);
  }

  LockManager::Options lock_options;
  lock_options.protocol = options_.protocol;
  lock_options.deadlock_policy = options_.deadlock_policy;
  lock_options.wait_timeout = options_.lock_timeout;
  lock_options.num_shards = options_.num_lock_shards;
  lock_manager_ = std::make_unique<LockManager>(lock_options);
  // The release store publishes matcher_/lock_manager_ to client threads
  // observing accepting_external().
  accepting_.store(true, std::memory_order_release);

  const uint64_t faults_before =
      FailpointRegistry::Instance().total_fires();

  Stopwatch stopwatch;
  std::vector<std::thread> workers;
  workers.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers.emplace_back([this, i] { WorkerLoop(i); });
  }
  for (auto& worker : workers) worker.join();
  accepting_.store(false, std::memory_order_release);

  // Client threads may still be inside CommitExternal/AbortExternal;
  // drain them before composing the result (the log and commit_seq_ are
  // only stable once the pipeline is empty).
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return ext_inflight_ == 0; });
  if (pipeline_ != nullptr) {
    // The log and commit_seq_ were stable at worker exit; the matcher's
    // own stats are not until queued propagation finishes. Destroying the
    // pipeline drains it and joins the thread.
    pipeline_->Drain();
    const MatchPipeline::Stats pipeline_stats = pipeline_->stats();
    stats_.match_pipeline_batches = pipeline_stats.batches;
    stats_.match_pipeline_drains = pipeline_stats.drains;
    stats_.match_pipeline_stall_micros = pipeline_stats.stall_ns / 1000;
    pipeline_.reset();
  }
  stats_.elapsed_seconds = stopwatch.ElapsedSeconds();
  stats_.peak_parallel_executions = peak_executing_.load();
  stats_.backoff_micros = backoff_micros_.load();
  stats_.commit_tickets = sequencer_.tickets_issued();
  stats_.sequencer_stall_micros =
      sequencer_stall_ns_.load(std::memory_order_relaxed) / 1000;
  stats_.effective_batch_limit =
      effective_batch_limit_.load(std::memory_order_relaxed);
  // (DisableAll resets the cumulative counter; saturate instead of
  // underflowing if that happened mid-run.)
  const uint64_t faults_now = FailpointRegistry::Instance().total_fires();
  stats_.injected_faults =
      faults_now >= faults_before ? faults_now - faults_before : faults_now;
  lock_stats_ = lock_manager_->GetStats();
  stats_.lock_shards.clear();
  stats_.lock_shards.reserve(lock_stats_.shards.size());
  for (const LockManager::ShardStats& shard : lock_stats_.shards) {
    stats_.lock_shards.push_back(LockShardCounters{
        shard.acquires, shard.waits, shard.mutex_contentions, shard.hold_ns,
        shard.fast_path_grants, shard.fast_path_cas_retries});
  }
  if (partitioned_matcher_ != nullptr) {
    const PartitionedMatcher::Stats match_stats =
        partitioned_matcher_->GetStats();
    stats_.match_batches = match_stats.batches;
    stats_.match_morsels = match_stats.morsels;
    stats_.match_handoffs = match_stats.handoffs;
    stats_.match_propagate_micros = match_stats.propagate_wall_ns / 1000;
    stats_.match_merge_micros = match_stats.merge_ns / 1000;
    stats_.match_splits = match_stats.splits;
    stats_.match_rehomes = match_stats.rehomes;
    stats_.match_rehome_skips = match_stats.rehome_skips;
    for (size_t i = 0; i < match_stats.skew_histogram.size(); ++i) {
      stats_.match_skew_histogram[i] = match_stats.skew_histogram[i];
    }
    stats_.match_partitions.clear();
    stats_.match_partitions.reserve(match_stats.partitions.size());
    for (const PartitionedMatcher::PartitionCounters& part :
         match_stats.partitions) {
      stats_.match_partitions.push_back(
          MatchPartitionCounters{part.rules, part.morsels, part.wmes_routed,
                                 part.handoffs, part.propagate_ns,
                                 part.subs});
    }
    // A shadow-check divergence means the parallel matcher broke the
    // serial-equivalence contract: fail the whole run, loudly.
    DBPS_RETURN_NOT_OK(partitioned_matcher_->shadow_status());
  }
  return RunResult{stats_, log_};
}

void ParallelEngine::WorkerLoop(size_t worker_index) {
  Random rng(options_.base.seed + 0x9e37 * (worker_index + 1));
  for (;;) {
    InstPtr inst;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (done_) return;
        // Match/commit pipelining: the conflict set must reflect every
        // committed batch before this worker selects — same selection
        // order as the inline path, and (with the same termination
        // argument) the run cannot be declared done with propagation
        // still queued: Submits happen-before in_flight_/ext_inflight_
        // decrements, which take mu_, which we hold from here through
        // the done_ decision below.
        if (pipeline_ != nullptr && !pipeline_->Idle()) {
          lock.unlock();
          pipeline_->Drain();
          lock.lock();
          continue;
        }
        const bool may_claim =
            !halted_ && stats_.firings < options_.base.max_firings;
        if (may_claim) {
          inst = matcher_->conflict_set().Claim(options_.base.strategy, &rng);
          if (inst != nullptr) {
            ++in_flight_;
            break;
          }
        }
        if (in_flight_ == 0) {
          // Nothing running, nothing claimable. With an external source
          // attached and still undrained — or a client commit already in
          // the pipeline — the run is not over: the commit may activate
          // new instantiations. Sleep instead of exiting.
          const bool external_pending =
              may_claim &&
              ((options_.external_source != nullptr &&
                !options_.external_source->Drained()) ||
               ext_inflight_ > 0);
          if (!external_pending) {
            if (!may_claim && stats_.firings >= options_.base.max_firings &&
                matcher_->conflict_set().HasSelectable()) {
              stats_.hit_max_firings = true;
            }
            done_ = true;
            accepting_.store(false, std::memory_order_release);
            cv_.notify_all();
            return;
          }
        }
        cv_.wait(lock);
      }
    }
    // An aborted firing reports its instantiation's consecutive-abort
    // streak; back off exponentially in it (capped, jittered) so Rc
    // victimization and lock-upgrade collisions (classic under 2PL, §4.2)
    // do not degenerate into abort/retry storms. Exceptions — injected
    // worker failures or real bugs — are contained here: the firing's
    // guard has already rolled the transaction back.
    int streak = 0;
    try {
      streak = ProcessFiring(inst, &rng);
    } catch (const std::exception& e) {
      DBPS_LOG(Warning) << "worker " << worker_index
                        << " exception in firing: " << e.what();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.worker_exceptions;
      streak = 1;
    }
    if (streak > 0) {
      const int shift = std::min(streak, 8);
      int64_t backoff_us =
          std::min(options_.retry_backoff_base.count() << shift,
                   options_.retry_backoff_max.count()) +
          static_cast<int64_t>(rng.Uniform(100));
      SleepMicros(backoff_us);
      backoff_micros_.fetch_add(static_cast<uint64_t>(backoff_us),
                                std::memory_order_relaxed);
    }
  }
}

int ParallelEngine::FinishAborted(TxnId txn, const InstKey& key,
                                  bool deadlock) {
  if (options_.base.observer) {
    options_.base.observer(
        EngineEvent{EngineEvent::Kind::kAbort, &key});
  }
  lock_manager_->Release(txn);
  matcher_->conflict_set().Unclaim(key);
  int streak;
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    ++stats_.aborts;
    if (deadlock) ++stats_.deadlocks;
    streak = ++abort_streaks_[key];
    stats_.max_abort_streak =
        std::max(stats_.max_abort_streak, static_cast<uint64_t>(streak));
    --in_flight_;
  }
  cv_.notify_all();
  return streak;
}

void ParallelEngine::FinishStale(TxnId txn, const InstKey& key) {
  if (options_.base.observer) {
    options_.base.observer(
        EngineEvent{EngineEvent::Kind::kStale, &key});
  }
  lock_manager_->Release(txn);
  matcher_->conflict_set().Unclaim(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    ++stats_.stale_skips;
    abort_streaks_.erase(key);
    --in_flight_;
  }
  cv_.notify_all();
}

void ParallelEngine::FinishRetired(TxnId txn, const InstKey& key) {
  lock_manager_->Release(txn);
  matcher_->conflict_set().MarkFired(key);  // never try this match again
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    ++stats_.rhs_errors;
    abort_streaks_.erase(key);
    --in_flight_;
  }
  cv_.notify_all();
}

int ParallelEngine::ProcessFiring(const InstPtr& inst, Random* rng) {
  (void)rng;
  const InstKey& key = inst->key();
  TxnId txn = lock_manager_->Begin();
  bool escalate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.emplace(txn, key);
    auto streak_it = abort_streaks_.find(key);
    if (streak_it != abort_streaks_.end() && streak_it->second > 0) {
      ++stats_.firing_retries;
      // Starvation guarantee: a firing victimized this often runs its
      // next attempt with blocking (2PL-style) acquisition, so
      // committing writers wait behind its Rc instead of aborting it.
      escalate = options_.protocol == LockProtocol::kRcRaWa &&
                 options_.escalate_after_aborts > 0 &&
                 streak_it->second >= options_.escalate_after_aborts;
      if (escalate) ++stats_.escalations;
    }
  }
  if (escalate) lock_manager_->SetBlocking(txn);

  // From here on every exit — including exceptions and injected crashes —
  // must roll the transaction back; the guard enforces it.
  FiringGuard guard(this, txn, key);

  // Phase 1: condition locks (Rc), possibly escalated.
  for (const LockRequest& request : EscalateConditionLocks(
           ConditionLocks(*inst), options_.rc_escalation_threshold)) {
    Status st = lock_manager_->Acquire(txn, request.object, request.mode);
    if (!st.ok()) {
      guard.Dismiss();
      return FinishAborted(txn, key, st.IsDeadlock());
    }
  }

  // Phase 2: validate the claim still holds. A commit that beat our Rc
  // acquisition may have deactivated the instantiation. (The conflict set
  // is internally synchronized; no engine lock needed.)
  if (!matcher_->conflict_set().Contains(key)) {
    guard.Dismiss();
    FinishStale(txn, key);
    return 0;
  }

  // Chaos site: a worker dying mid-firing (exception). The guard rolls
  // the transaction back and WorkerLoop contains it — the RAII shape this
  // site exists to regression-test.
  if (DBPS_FAILPOINT("engine.firing.throw")) {
    throw std::runtime_error("injected worker failure in firing of '" +
                             inst->rule()->name() + "'");
  }

  {
    // Phase 3: evaluate the RHS (pure — reads only the immutable matched
    // WME versions) and acquire the action locks (Ra/Wa).
    auto delta_or = EvaluateRhs(*inst->rule(), inst->matched());
    if (DBPS_FAILPOINT("engine.firing.rhs_error")) {
      delta_or = Status::Internal("injected RHS evaluation error");
    }
    if (!delta_or.ok()) {
      DBPS_LOG(Warning) << "rule '" << inst->rule()->name()
                        << "' RHS failed: " << delta_or.status().ToString();
      guard.Dismiss();
      FinishRetired(txn, key);
      return 0;
    }
    Delta delta = std::move(delta_or).ValueOrDie();

    for (const LockRequest& request : ActionLocks(*inst, txn)) {
      Status st = lock_manager_->Acquire(txn, request.object, request.mode);
      if (!st.ok()) {
        guard.Dismiss();
        return FinishAborted(txn, key, st.IsDeadlock());
      }
    }

    // Phase 4: the production's execution time.
    {
      int now_executing = executing_.fetch_add(1) + 1;
      int old_peak = peak_executing_.load();
      while (now_executing > old_peak &&
             !peak_executing_.compare_exchange_weak(old_peak,
                                                    now_executing)) {
      }
    }
    if (options_.base.simulate_cost && inst->rule()->cost_us() > 0) {
      SimulateCost(inst->rule()->cost_us(), options_.base.cost_model);
    }
    // Chaos site: a worker stalling mid-firing (sleep-safe: no lock
    // held), widening the window in which committers victimize us.
    (void)DBPS_FAILPOINT("engine.firing.stall");
    executing_.fetch_sub(1);

    // Chaos site: forced Rc victimization — as if a conflicting commit
    // settled against this firing while it executed.
    if (DBPS_FAILPOINT("engine.firing.victimize")) {
      lock_manager_->MarkAborted(txn);
    }

    // Phase 5: commit through the sequencer. The aborted check and the
    // last-instant crash site run before a ticket exists, so those paths
    // never occupy a pipeline slot.
    if (lock_manager_->IsAborted(txn)) {
      guard.Dismiss();
      return FinishAborted(txn, key, /*deadlock=*/false);
    }
    // Chaos site: the worker crashes at the last instant before the
    // delta applies — the whole firing must roll back cleanly.
    if (DBPS_FAILPOINT("engine.firing.crash_before_apply")) {
      guard.Dismiss();
      return FinishAborted(txn, key, /*deadlock=*/false);
    }
    PendingCommit pending;
    pending.txn = txn;
    pending.key = &key;
    pending.delta = &delta;
    {
      // Take a ticket, then overlap the per-shard Rc–Wa victim sweep and
      // the write-set extraction with earlier commits still applying. The
      // sweep is stable outside any global section: this transaction
      // holds its Wa locks, so no new conflicting Rc can be granted until
      // Release.
      SequencedCommit commit(this);
      pending.victims = lock_manager_->CollectRcVictims(txn);
      pending.write_set = DeltaWriteSet(delta);
      // Chaos/test site: widen the batching window (sleep-safe, no locks
      // held) so successors pile up behind the current head.
      (void)DBPS_FAILPOINT("engine.commit.batch_window");
      commit.Commit(&pending);
    }
    // The head executed this commit (possibly as part of a batch). It
    // re-checked aborted in ticket order: an earlier ticket may have
    // settled against us while we waited.
    if (!pending.committed) {
      guard.Dismiss();
      return FinishAborted(txn, key, /*deadlock=*/false);
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.firings;
      if (delta.halt()) {
        halted_ = true;
        stats_.halted = true;
      }
      txn_keys_.erase(txn);
      abort_streaks_.erase(key);
      --in_flight_;
      guard.Dismiss();
    }
    lock_manager_->Release(txn);
    cv_.notify_all();
  }
  return 0;
}

size_t ParallelEngine::SettleVictims(TxnId committer,
                                     const std::vector<TxnId>& victims) {
  if (victims.empty()) return 0;
  // Pin the post-commit state once; every revalidation reads this CSN.
  WmSnapshot snap;
  if (options_.abort_policy == AbortPolicy::kRevalidate) {
    snap = wm_->SnapshotAt();
  }
  size_t aborted = 0;
  for (TxnId victim : victims) {
    if (victim == committer) continue;
    bool is_firing = false;
    InstKey key;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txn_keys_.find(victim);
      if (it != txn_keys_.end()) {
        is_firing = true;
        key = it->second;
      }
    }
    if (!is_firing) {
      // An external transaction (or one already finished — MarkAborted of
      // a released txn is a no-op): there is no instantiation to
      // revalidate — its repeatable read is stale either way — so the
      // paper's rule (ii) applies under both policies.
      lock_manager_->MarkAborted(victim);
      ++aborted;
      continue;
    }
    if (options_.abort_policy == AbortPolicy::kAbort) {
      lock_manager_->MarkAborted(victim);
      ++aborted;
      continue;
    }
    // kRevalidate: spare the firing iff this commit left its match intact
    // — instantiation still active and every matched WME version still
    // current at the pinned snapshot.
    bool intact = matcher_->conflict_set().Contains(key);
    for (size_t i = 0; intact && i < key.wmes.size(); ++i) {
      intact = snap.IsCurrent(key.wmes[i].first, key.wmes[i].second);
    }
    if (!intact) {
      lock_manager_->MarkAborted(victim);
      ++aborted;
    }
  }
  return aborted;
}

bool ParallelEngine::WaitUntilAccepting(
    std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!accepting_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

StatusOr<TxnId> ParallelEngine::BeginExternal() {
  if (!accepting_external()) {
    return Status::Unavailable("engine is not serving");
  }
  return lock_manager_->Begin();
}

Status ParallelEngine::AcquireExternal(TxnId txn, const LockObjectId& object,
                                       LockMode mode) {
  if (!accepting_external()) {
    return Status::Unavailable("engine is not serving");
  }
  return lock_manager_->Acquire(txn, object, mode);
}

bool ParallelEngine::IsExternalAborted(TxnId txn) const {
  return lock_manager_ != nullptr && lock_manager_->IsAborted(txn);
}

StatusOr<uint64_t> ParallelEngine::CommitExternal(TxnId txn,
                                                  const InstKey& key,
                                                  const Delta& delta,
                                                  const TxnReadSet* reads) {
  DBPS_CHECK(IsClientFiring(key));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return Status::Unavailable("engine has stopped");
    // Once counted in-flight, workers keep the run alive (and done_
    // stays false) until this commit finishes.
    ++ext_inflight_;
  }
  // Decrement + wake sleeping workers on every exit: a commit may have
  // activated instantiations, and the termination check waits on us.
  struct ExtGuard {
    ParallelEngine* engine;
    ~ExtGuard() {
      {
        std::lock_guard<std::mutex> lock(engine->mu_);
        --engine->ext_inflight_;
      }
      engine->cv_.notify_all();
    }
  } ext_guard{this};

  if (lock_manager_->IsAborted(txn)) {
    return Status::Aborted("aborted by a conflicting commit");
  }
  // Chaos site: commit fails at the last instant. Surfaced as kAborted
  // so sessions treat it as transient and retry; no state has changed.
  if (DBPS_FAILPOINT("server.commit.fail")) {
    return Status::Aborted("injected commit failure");
  }

  PendingCommit pending;
  pending.txn = txn;
  pending.key = &key;
  pending.delta = &delta;
  pending.reads = reads;
  pending.is_client = true;
  {
    // A client writer's commit rides the same batching sequencer as a
    // rule firing: its victims (Rc-holding rule firings and other client
    // readers — §4.3) settle in its ticket's turn, and its record lands
    // at its ticket position in the log.
    SequencedCommit commit(this);
    pending.victims = lock_manager_->CollectRcVictims(txn);
    pending.write_set = DeltaWriteSet(delta);
    (void)DBPS_FAILPOINT("engine.commit.batch_window");
    commit.Commit(&pending);
  }
  if (!pending.committed) {
    if (!pending.apply_status.ok()) return pending.apply_status;
    return Status::Aborted("aborted by a conflicting commit");
  }
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.client_commits;
    if (delta.halt()) {
      halted_ = true;
      stats_.halted = true;
    }
  }
  lock_manager_->Release(txn);
  return pending.seq;
}

void ParallelEngine::AbortExternal(TxnId txn) {
  if (lock_manager_ == nullptr) return;
  lock_manager_->Release(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.client_aborts;
  }
  cv_.notify_all();
}

void ParallelEngine::NotifyExternalActivity() { cv_.notify_all(); }

}  // namespace dbps
