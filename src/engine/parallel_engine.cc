#include "engine/parallel_engine.h"

#include <algorithm>
#include <vector>

#include <exception>

#include "analysis/lock_sets.h"
#include "engine/busy_work.h"
#include "rules/rhs_evaluator.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dbps {

const char* AbortPolicyToString(AbortPolicy policy) {
  switch (policy) {
    case AbortPolicy::kAbort:
      return "abort";
    case AbortPolicy::kRevalidate:
      return "revalidate";
  }
  return "?";
}

uint64_t ParallelEngine::CommitSequencer::WaitForTurn(uint64_t ticket) {
  if (turn_.load(std::memory_order_acquire) == ticket) return 0;
  Stopwatch stall;
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [&] {
    return turn_.load(std::memory_order_relaxed) == ticket;
  });
  return static_cast<uint64_t>(stall.ElapsedNanos());
}

void ParallelEngine::CommitSequencer::Complete(uint64_t ticket) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    turn_.store(ticket + 1, std::memory_order_release);
  }
  cv_.notify_all();
}

ParallelEngine::ParallelEngine(WorkingMemory* wm, RuleSetPtr rules,
                               ParallelEngineOptions options)
    : wm_(wm), rules_(std::move(rules)), options_(options) {
  DBPS_CHECK(wm_ != nullptr);
  DBPS_CHECK(rules_ != nullptr);
  DBPS_CHECK_GT(options_.num_workers, 0u);
}

StatusOr<RunResult> ParallelEngine::Run() {
  matcher_ = CreateMatcher(options_.base.matcher);
  DBPS_RETURN_NOT_OK(matcher_->Initialize(rules_, *wm_));

  LockManager::Options lock_options;
  lock_options.protocol = options_.protocol;
  lock_options.deadlock_policy = options_.deadlock_policy;
  lock_options.wait_timeout = options_.lock_timeout;
  lock_options.num_shards = options_.num_lock_shards;
  lock_manager_ = std::make_unique<LockManager>(lock_options);
  // The release store publishes matcher_/lock_manager_ to client threads
  // observing accepting_external().
  accepting_.store(true, std::memory_order_release);

  const uint64_t faults_before =
      FailpointRegistry::Instance().total_fires();

  Stopwatch stopwatch;
  std::vector<std::thread> workers;
  workers.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers.emplace_back([this, i] { WorkerLoop(i); });
  }
  for (auto& worker : workers) worker.join();
  accepting_.store(false, std::memory_order_release);

  // Client threads may still be inside CommitExternal/AbortExternal;
  // drain them before composing the result (the log and commit_seq_ are
  // only stable once the pipeline is empty).
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait(lock, [this] { return ext_inflight_ == 0; });
  stats_.elapsed_seconds = stopwatch.ElapsedSeconds();
  stats_.peak_parallel_executions = peak_executing_.load();
  stats_.backoff_micros = backoff_micros_.load();
  stats_.commit_tickets = sequencer_.tickets_issued();
  stats_.sequencer_stall_micros =
      sequencer_stall_ns_.load(std::memory_order_relaxed) / 1000;
  // (DisableAll resets the cumulative counter; saturate instead of
  // underflowing if that happened mid-run.)
  const uint64_t faults_now = FailpointRegistry::Instance().total_fires();
  stats_.injected_faults =
      faults_now >= faults_before ? faults_now - faults_before : faults_now;
  lock_stats_ = lock_manager_->GetStats();
  stats_.lock_shards.clear();
  stats_.lock_shards.reserve(lock_stats_.shards.size());
  for (const LockManager::ShardStats& shard : lock_stats_.shards) {
    stats_.lock_shards.push_back(LockShardCounters{
        shard.acquires, shard.waits, shard.mutex_contentions, shard.hold_ns});
  }
  return RunResult{stats_, log_};
}

void ParallelEngine::WorkerLoop(size_t worker_index) {
  Random rng(options_.base.seed + 0x9e37 * (worker_index + 1));
  for (;;) {
    InstPtr inst;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (done_) return;
        const bool may_claim =
            !halted_ && stats_.firings < options_.base.max_firings;
        if (may_claim) {
          inst = matcher_->conflict_set().Claim(options_.base.strategy, &rng);
          if (inst != nullptr) {
            ++in_flight_;
            break;
          }
        }
        if (in_flight_ == 0) {
          // Nothing running, nothing claimable. With an external source
          // attached and still undrained — or a client commit already in
          // the pipeline — the run is not over: the commit may activate
          // new instantiations. Sleep instead of exiting.
          const bool external_pending =
              may_claim &&
              ((options_.external_source != nullptr &&
                !options_.external_source->Drained()) ||
               ext_inflight_ > 0);
          if (!external_pending) {
            if (!may_claim && stats_.firings >= options_.base.max_firings &&
                matcher_->conflict_set().HasSelectable()) {
              stats_.hit_max_firings = true;
            }
            done_ = true;
            accepting_.store(false, std::memory_order_release);
            cv_.notify_all();
            return;
          }
        }
        cv_.wait(lock);
      }
    }
    // An aborted firing reports its instantiation's consecutive-abort
    // streak; back off exponentially in it (capped, jittered) so Rc
    // victimization and lock-upgrade collisions (classic under 2PL, §4.2)
    // do not degenerate into abort/retry storms. Exceptions — injected
    // worker failures or real bugs — are contained here: the firing's
    // guard has already rolled the transaction back.
    int streak = 0;
    try {
      streak = ProcessFiring(inst, &rng);
    } catch (const std::exception& e) {
      DBPS_LOG(Warning) << "worker " << worker_index
                        << " exception in firing: " << e.what();
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.worker_exceptions;
      streak = 1;
    }
    if (streak > 0) {
      const int shift = std::min(streak, 8);
      int64_t backoff_us =
          std::min(options_.retry_backoff_base.count() << shift,
                   options_.retry_backoff_max.count()) +
          static_cast<int64_t>(rng.Uniform(100));
      SleepMicros(backoff_us);
      backoff_micros_.fetch_add(static_cast<uint64_t>(backoff_us),
                                std::memory_order_relaxed);
    }
  }
}

int ParallelEngine::FinishAborted(TxnId txn, const InstKey& key,
                                  bool deadlock) {
  if (options_.base.observer) {
    options_.base.observer(
        EngineEvent{EngineEvent::Kind::kAbort, &key});
  }
  lock_manager_->Release(txn);
  matcher_->conflict_set().Unclaim(key);
  int streak;
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    ++stats_.aborts;
    if (deadlock) ++stats_.deadlocks;
    streak = ++abort_streaks_[key];
    stats_.max_abort_streak =
        std::max(stats_.max_abort_streak, static_cast<uint64_t>(streak));
    --in_flight_;
  }
  cv_.notify_all();
  return streak;
}

void ParallelEngine::FinishStale(TxnId txn, const InstKey& key) {
  if (options_.base.observer) {
    options_.base.observer(
        EngineEvent{EngineEvent::Kind::kStale, &key});
  }
  lock_manager_->Release(txn);
  matcher_->conflict_set().Unclaim(key);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    ++stats_.stale_skips;
    abort_streaks_.erase(key);
    --in_flight_;
  }
  cv_.notify_all();
}

void ParallelEngine::FinishRetired(TxnId txn, const InstKey& key) {
  lock_manager_->Release(txn);
  matcher_->conflict_set().MarkFired(key);  // never try this match again
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    ++stats_.rhs_errors;
    abort_streaks_.erase(key);
    --in_flight_;
  }
  cv_.notify_all();
}

int ParallelEngine::ProcessFiring(const InstPtr& inst, Random* rng) {
  (void)rng;
  const InstKey& key = inst->key();
  TxnId txn = lock_manager_->Begin();
  bool escalate = false;
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.emplace(txn, key);
    auto streak_it = abort_streaks_.find(key);
    if (streak_it != abort_streaks_.end() && streak_it->second > 0) {
      ++stats_.firing_retries;
      // Starvation guarantee: a firing victimized this often runs its
      // next attempt with blocking (2PL-style) acquisition, so
      // committing writers wait behind its Rc instead of aborting it.
      escalate = options_.protocol == LockProtocol::kRcRaWa &&
                 options_.escalate_after_aborts > 0 &&
                 streak_it->second >= options_.escalate_after_aborts;
      if (escalate) ++stats_.escalations;
    }
  }
  if (escalate) lock_manager_->SetBlocking(txn);

  // From here on every exit — including exceptions and injected crashes —
  // must roll the transaction back; the guard enforces it.
  FiringGuard guard(this, txn, key);

  // Phase 1: condition locks (Rc), possibly escalated.
  for (const LockRequest& request : EscalateConditionLocks(
           ConditionLocks(*inst), options_.rc_escalation_threshold)) {
    Status st = lock_manager_->Acquire(txn, request.object, request.mode);
    if (!st.ok()) {
      guard.Dismiss();
      return FinishAborted(txn, key, st.IsDeadlock());
    }
  }

  // Phase 2: validate the claim still holds. A commit that beat our Rc
  // acquisition may have deactivated the instantiation. (The conflict set
  // is internally synchronized; no engine lock needed.)
  if (!matcher_->conflict_set().Contains(key)) {
    guard.Dismiss();
    FinishStale(txn, key);
    return 0;
  }

  // Chaos site: a worker dying mid-firing (exception). The guard rolls
  // the transaction back and WorkerLoop contains it — the RAII shape this
  // site exists to regression-test.
  if (DBPS_FAILPOINT("engine.firing.throw")) {
    throw std::runtime_error("injected worker failure in firing of '" +
                             inst->rule()->name() + "'");
  }

  {
    // Phase 3: evaluate the RHS (pure — reads only the immutable matched
    // WME versions) and acquire the action locks (Ra/Wa).
    auto delta_or = EvaluateRhs(*inst->rule(), inst->matched());
    if (DBPS_FAILPOINT("engine.firing.rhs_error")) {
      delta_or = Status::Internal("injected RHS evaluation error");
    }
    if (!delta_or.ok()) {
      DBPS_LOG(Warning) << "rule '" << inst->rule()->name()
                        << "' RHS failed: " << delta_or.status().ToString();
      guard.Dismiss();
      FinishRetired(txn, key);
      return 0;
    }
    Delta delta = std::move(delta_or).ValueOrDie();

    for (const LockRequest& request : ActionLocks(*inst, txn)) {
      Status st = lock_manager_->Acquire(txn, request.object, request.mode);
      if (!st.ok()) {
        guard.Dismiss();
        return FinishAborted(txn, key, st.IsDeadlock());
      }
    }

    // Phase 4: the production's execution time.
    {
      int now_executing = executing_.fetch_add(1) + 1;
      int old_peak = peak_executing_.load();
      while (now_executing > old_peak &&
             !peak_executing_.compare_exchange_weak(old_peak,
                                                    now_executing)) {
      }
    }
    if (options_.base.simulate_cost && inst->rule()->cost_us() > 0) {
      SimulateCost(inst->rule()->cost_us(), options_.base.cost_model);
    }
    // Chaos site: a worker stalling mid-firing (sleep-safe: no lock
    // held), widening the window in which committers victimize us.
    (void)DBPS_FAILPOINT("engine.firing.stall");
    executing_.fetch_sub(1);

    // Chaos site: forced Rc victimization — as if a conflicting commit
    // settled against this firing while it executed.
    if (DBPS_FAILPOINT("engine.firing.victimize")) {
      lock_manager_->MarkAborted(txn);
    }

    // Phase 5: commit through the sequencer. The aborted check and the
    // last-instant crash site run before a ticket exists, so those paths
    // never occupy a pipeline slot.
    if (lock_manager_->IsAborted(txn)) {
      guard.Dismiss();
      return FinishAborted(txn, key, /*deadlock=*/false);
    }
    // Chaos site: the worker crashes at the last instant before the
    // delta applies — the whole firing must roll back cleanly.
    if (DBPS_FAILPOINT("engine.firing.crash_before_apply")) {
      guard.Dismiss();
      return FinishAborted(txn, key, /*deadlock=*/false);
    }
    {
      // Take a ticket, then overlap the per-shard Rc–Wa victim sweep with
      // earlier commits still applying. The sweep is stable outside any
      // global section: this transaction holds its Wa locks, so no new
      // conflicting Rc can be granted until Release.
      TicketGuard ticket(this);
      const std::vector<TxnId> victims =
          lock_manager_->CollectRcVictims(txn);
      ticket.WaitForTurn();

      // --- Ordered stage: one committer at a time, in ticket order. ---
      // Re-check aborted: an earlier ticket may have settled against us
      // while we waited for our turn.
      if (lock_manager_->IsAborted(txn)) {
        guard.Dismiss();
        return FinishAborted(txn, key, /*deadlock=*/false);
      }
      auto change_or = wm_->Apply(delta);
      if (!change_or.ok()) {
        // Cannot happen while the locking protocol is sound; surface it
        // loudly in debug builds, degrade to an abort otherwise.
        DBPS_LOG(Error) << "commit failed applying delta: "
                        << change_or.status().ToString();
        DBPS_DCHECK(false);
        guard.Dismiss();
        return FinishAborted(txn, key, /*deadlock=*/false);
      }
      matcher_->conflict_set().MarkFired(key);
      matcher_->ApplyChange(change_or.ValueOrDie());

      // Settle Rc–Wa conflicts (empty under 2PL).
      SettleVictims(txn, victims);

      if (options_.base.record_log) {
        log_.push_back(FiringRecord{commit_seq_, key, delta});
      }
      ++commit_seq_;
      if (options_.base.observer) {
        options_.base.observer(
            EngineEvent{EngineEvent::Kind::kCommit, &key, &delta});
      }
      {
        std::lock_guard<std::mutex> lock(mu_);
        ++stats_.firings;
        if (delta.halt()) {
          halted_ = true;
          stats_.halted = true;
        }
        txn_keys_.erase(txn);
        abort_streaks_.erase(key);
        --in_flight_;
        guard.Dismiss();
      }
    }  // ticket completes: the next committer may enter the ordered stage
    lock_manager_->Release(txn);
    cv_.notify_all();
  }
  return 0;
}

void ParallelEngine::SettleVictims(TxnId committer,
                                   const std::vector<TxnId>& victims) {
  if (victims.empty()) return;
  // Pin the post-commit state once; every revalidation reads this CSN.
  WmSnapshot snap;
  if (options_.abort_policy == AbortPolicy::kRevalidate) {
    snap = wm_->SnapshotAt();
  }
  for (TxnId victim : victims) {
    if (victim == committer) continue;
    bool is_firing = false;
    InstKey key;
    {
      std::lock_guard<std::mutex> lock(mu_);
      auto it = txn_keys_.find(victim);
      if (it != txn_keys_.end()) {
        is_firing = true;
        key = it->second;
      }
    }
    if (!is_firing) {
      // An external transaction (or one already finished — MarkAborted of
      // a released txn is a no-op): there is no instantiation to
      // revalidate — its repeatable read is stale either way — so the
      // paper's rule (ii) applies under both policies.
      lock_manager_->MarkAborted(victim);
      continue;
    }
    if (options_.abort_policy == AbortPolicy::kAbort) {
      lock_manager_->MarkAborted(victim);
      continue;
    }
    // kRevalidate: spare the firing iff this commit left its match intact
    // — instantiation still active and every matched WME version still
    // current at the pinned snapshot.
    bool intact = matcher_->conflict_set().Contains(key);
    for (size_t i = 0; intact && i < key.wmes.size(); ++i) {
      intact = snap.IsCurrent(key.wmes[i].first, key.wmes[i].second);
    }
    if (!intact) lock_manager_->MarkAborted(victim);
  }
}

bool ParallelEngine::WaitUntilAccepting(
    std::chrono::milliseconds timeout) const {
  const auto deadline = std::chrono::steady_clock::now() + timeout;
  while (!accepting_.load(std::memory_order_acquire)) {
    if (std::chrono::steady_clock::now() >= deadline) return false;
    std::this_thread::sleep_for(std::chrono::microseconds(200));
  }
  return true;
}

StatusOr<TxnId> ParallelEngine::BeginExternal() {
  if (!accepting_external()) {
    return Status::Unavailable("engine is not serving");
  }
  return lock_manager_->Begin();
}

Status ParallelEngine::AcquireExternal(TxnId txn, const LockObjectId& object,
                                       LockMode mode) {
  if (!accepting_external()) {
    return Status::Unavailable("engine is not serving");
  }
  return lock_manager_->Acquire(txn, object, mode);
}

bool ParallelEngine::IsExternalAborted(TxnId txn) const {
  return lock_manager_ != nullptr && lock_manager_->IsAborted(txn);
}

StatusOr<uint64_t> ParallelEngine::CommitExternal(TxnId txn,
                                                  const InstKey& key,
                                                  const Delta& delta) {
  DBPS_CHECK(IsClientFiring(key));
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (done_) return Status::Unavailable("engine has stopped");
    // Once counted in-flight, workers keep the run alive (and done_
    // stays false) until this commit finishes.
    ++ext_inflight_;
  }
  // Decrement + wake sleeping workers on every exit: a commit may have
  // activated instantiations, and the termination check waits on us.
  struct ExtGuard {
    ParallelEngine* engine;
    ~ExtGuard() {
      {
        std::lock_guard<std::mutex> lock(engine->mu_);
        --engine->ext_inflight_;
      }
      engine->cv_.notify_all();
    }
  } ext_guard{this};

  if (lock_manager_->IsAborted(txn)) {
    return Status::Aborted("aborted by a conflicting commit");
  }
  // Chaos site: commit fails at the last instant. Surfaced as kAborted
  // so sessions treat it as transient and retry; no state has changed.
  if (DBPS_FAILPOINT("server.commit.fail")) {
    return Status::Aborted("injected commit failure");
  }

  uint64_t seq = 0;
  {
    TicketGuard ticket(this);
    const std::vector<TxnId> victims = lock_manager_->CollectRcVictims(txn);
    ticket.WaitForTurn();

    // --- Ordered stage (see ProcessFiring). ---
    if (lock_manager_->IsAborted(txn)) {
      return Status::Aborted("aborted by a conflicting commit");
    }
    auto change_or = wm_->Apply(delta);
    if (!change_or.ok()) {
      // Unlike a rule commit this is reachable in normal operation: the
      // client may have buffered a write against a tuple a rule deleted
      // before the client locked it. No state has changed; the caller
      // aborts the transaction.
      return change_or.status();
    }
    matcher_->ApplyChange(change_or.ValueOrDie());

    // A client writer's commit victimizes Rc-holding rule firings (and
    // other client readers) exactly like a rule commit — §4.3.
    SettleVictims(txn, victims);

    // An empty write set still commits (its repeatable reads were valid)
    // but leaves no trace in the log or journal.
    seq = commit_seq_;
    if (!delta.empty()) {
      if (options_.base.record_log) {
        log_.push_back(FiringRecord{seq, key, delta});
      }
      ++commit_seq_;
      if (options_.base.observer) {
        options_.base.observer(
            EngineEvent{EngineEvent::Kind::kCommit, &key, &delta});
      }
    }
    {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.client_commits;
      if (delta.halt()) {
        halted_ = true;
        stats_.halted = true;
      }
    }
  }  // ticket completes
  lock_manager_->Release(txn);
  return seq;
}

void ParallelEngine::AbortExternal(TxnId txn) {
  if (lock_manager_ == nullptr) return;
  lock_manager_->Release(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.client_aborts;
  }
  cv_.notify_all();
}

void ParallelEngine::NotifyExternalActivity() { cv_.notify_all(); }

}  // namespace dbps
