#include "engine/parallel_engine.h"

#include <algorithm>
#include <vector>

#include "analysis/lock_sets.h"
#include "engine/busy_work.h"
#include "rules/rhs_evaluator.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dbps {

const char* AbortPolicyToString(AbortPolicy policy) {
  switch (policy) {
    case AbortPolicy::kAbort:
      return "abort";
    case AbortPolicy::kRevalidate:
      return "revalidate";
  }
  return "?";
}

ParallelEngine::ParallelEngine(WorkingMemory* wm, RuleSetPtr rules,
                               ParallelEngineOptions options)
    : wm_(wm), rules_(std::move(rules)), options_(options) {
  DBPS_CHECK(wm_ != nullptr);
  DBPS_CHECK(rules_ != nullptr);
  DBPS_CHECK_GT(options_.num_workers, 0u);
}

StatusOr<RunResult> ParallelEngine::Run() {
  matcher_ = CreateMatcher(options_.base.matcher);
  DBPS_RETURN_NOT_OK(matcher_->Initialize(rules_, *wm_));

  LockManager::Options lock_options;
  lock_options.protocol = options_.protocol;
  lock_options.deadlock_policy = options_.deadlock_policy;
  lock_options.wait_timeout = options_.lock_timeout;
  lock_manager_ = std::make_unique<LockManager>(lock_options);

  Stopwatch stopwatch;
  std::vector<std::thread> workers;
  workers.reserve(options_.num_workers);
  for (size_t i = 0; i < options_.num_workers; ++i) {
    workers.emplace_back([this, i] { WorkerLoop(i); });
  }
  for (auto& worker : workers) worker.join();

  stats_.elapsed_seconds = stopwatch.ElapsedSeconds();
  stats_.peak_parallel_executions = peak_executing_.load();
  lock_stats_ = lock_manager_->GetStats();
  return RunResult{stats_, log_};
}

void ParallelEngine::WorkerLoop(size_t worker_index) {
  Random rng(options_.base.seed + 0x9e37 * (worker_index + 1));
  // Consecutive deadlock-victim count; drives exponential backoff so
  // repeated lock-upgrade collisions (classic under 2PL, §4.2) do not
  // degenerate into abort/retry storms.
  int deadlock_streak = 0;
  for (;;) {
    InstPtr inst;
    {
      std::unique_lock<std::mutex> lock(mu_);
      for (;;) {
        if (done_) return;
        const bool may_claim =
            !halted_ && stats_.firings < options_.base.max_firings;
        if (may_claim) {
          inst = matcher_->conflict_set().Claim(options_.base.strategy, &rng);
          if (inst != nullptr) {
            ++in_flight_;
            break;
          }
        }
        if (in_flight_ == 0) {
          // Nothing running, nothing claimable: the run is over.
          if (!may_claim && stats_.firings >= options_.base.max_firings &&
              matcher_->conflict_set().HasSelectable()) {
            stats_.hit_max_firings = true;
          }
          done_ = true;
          cv_.notify_all();
          return;
        }
        cv_.wait(lock);
      }
    }
    if (ProcessFiring(inst, &rng)) {
      deadlock_streak = std::min(deadlock_streak + 1, 6);
      int64_t backoff_us = (50LL << deadlock_streak) +
                           static_cast<int64_t>(rng.Uniform(100));
      SleepMicros(backoff_us);
    } else {
      deadlock_streak = 0;
    }
  }
}

void ParallelEngine::FinishAborted(TxnId txn, const InstKey& key,
                                   bool deadlock) {
  if (options_.base.observer) {
    options_.base.observer(
        EngineEvent{EngineEvent::Kind::kAbort, &key});
  }
  lock_manager_->Release(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    matcher_->conflict_set().Unclaim(key);
    ++stats_.aborts;
    if (deadlock) ++stats_.deadlocks;
    --in_flight_;
  }
  cv_.notify_all();
}

void ParallelEngine::FinishStale(TxnId txn, const InstKey& key) {
  if (options_.base.observer) {
    options_.base.observer(
        EngineEvent{EngineEvent::Kind::kStale, &key});
  }
  lock_manager_->Release(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    matcher_->conflict_set().Unclaim(key);
    ++stats_.stale_skips;
    --in_flight_;
  }
  cv_.notify_all();
}

void ParallelEngine::FinishRetired(TxnId txn, const InstKey& key) {
  lock_manager_->Release(txn);
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.erase(txn);
    matcher_->conflict_set().MarkFired(key);  // never try this match again
    ++stats_.rhs_errors;
    --in_flight_;
  }
  cv_.notify_all();
}

bool ParallelEngine::ProcessFiring(const InstPtr& inst, Random* rng) {
  (void)rng;
  const InstKey& key = inst->key();
  TxnId txn = lock_manager_->Begin();
  {
    std::lock_guard<std::mutex> lock(mu_);
    txn_keys_.emplace(txn, key);
  }

  // Phase 1: condition locks (Rc), possibly escalated.
  for (const LockRequest& request : EscalateConditionLocks(
           ConditionLocks(*inst), options_.rc_escalation_threshold)) {
    Status st = lock_manager_->Acquire(txn, request.object, request.mode);
    if (!st.ok()) {
      FinishAborted(txn, key, st.IsDeadlock());
      return st.IsDeadlock();
    }
  }

  // Phase 2: validate the claim still holds. A commit that beat our Rc
  // acquisition may have deactivated the instantiation.
  bool still_valid;
  {
    std::lock_guard<std::mutex> lock(mu_);
    still_valid = matcher_->conflict_set().Contains(key);
  }
  if (!still_valid) {
    FinishStale(txn, key);
    return false;
  }

  {
    // Phase 3: evaluate the RHS (pure — reads only the immutable matched
    // WME versions) and acquire the action locks (Ra/Wa).
    auto delta_or = EvaluateRhs(*inst->rule(), inst->matched());
    if (!delta_or.ok()) {
      DBPS_LOG(Warning) << "rule '" << inst->rule()->name()
                        << "' RHS failed: " << delta_or.status().ToString();
      FinishRetired(txn, key);
      return false;
    }
    Delta delta = std::move(delta_or).ValueOrDie();

    for (const LockRequest& request : ActionLocks(*inst, txn)) {
      Status st = lock_manager_->Acquire(txn, request.object, request.mode);
      if (!st.ok()) {
        FinishAborted(txn, key, st.IsDeadlock());
        return st.IsDeadlock();
      }
    }

    // Phase 4: the production's execution time.
    {
      int now_executing = executing_.fetch_add(1) + 1;
      int old_peak = peak_executing_.load();
      while (now_executing > old_peak &&
             !peak_executing_.compare_exchange_weak(old_peak,
                                                    now_executing)) {
      }
    }
    if (options_.base.simulate_cost && inst->rule()->cost_us() > 0) {
      SimulateCost(inst->rule()->cost_us(), options_.base.cost_model);
    }
    executing_.fetch_sub(1);

    // Phase 5: commit.
    {
      std::unique_lock<std::mutex> lock(mu_);
      if (lock_manager_->IsAborted(txn)) {
        lock.unlock();
        FinishAborted(txn, key, /*deadlock=*/false);
        return false;
      }
      // Settle Rc–Wa conflicts (empty under 2PL).
      std::vector<TxnId> victims = lock_manager_->CollectRcVictims(txn);

      auto change_or = wm_->Apply(delta);
      if (!change_or.ok()) {
        // Cannot happen while the locking protocol is sound; surface it
        // loudly in debug builds, degrade to an abort otherwise.
        DBPS_LOG(Error) << "commit failed applying delta: "
                        << change_or.status().ToString();
        DBPS_DCHECK(false);
        lock.unlock();
        FinishAborted(txn, key, /*deadlock=*/false);
        return false;
      }
      matcher_->conflict_set().MarkFired(key);
      matcher_->ApplyChange(change_or.ValueOrDie());

      for (TxnId victim : victims) {
        if (options_.abort_policy == AbortPolicy::kAbort) {
          lock_manager_->MarkAborted(victim);
        } else {
          // kRevalidate: spare victims whose match survived this commit.
          auto it = txn_keys_.find(victim);
          if (it != txn_keys_.end() &&
              !matcher_->conflict_set().Contains(it->second)) {
            lock_manager_->MarkAborted(victim);
          }
        }
      }

      if (options_.base.record_log) {
        log_.push_back(FiringRecord{stats_.firings, key, delta});
      }
      if (options_.base.observer) {
        options_.base.observer(
            EngineEvent{EngineEvent::Kind::kCommit, &key});
      }
      ++stats_.firings;
      if (delta.halt()) {
        halted_ = true;
        stats_.halted = true;
      }
      txn_keys_.erase(txn);
      --in_flight_;
    }
    lock_manager_->Release(txn);
    cv_.notify_all();
  }
  return false;
}

}  // namespace dbps
