// ParallelEngine: the multiple-execution-thread mechanism (§4.2 / §4.3).
//
// Np worker threads each repeatedly claim an active instantiation and run
// it as a transaction against the centralized lock manager:
//
//   1. acquire Rc locks on the matched tuples (+ escalated relation-level
//      Rc for each negated condition element)                [Figure 4.2]
//   2. validate the claim is still active (the match may have been
//      invalidated between selection and lock grant)
//   3. evaluate the RHS into a Delta (pure), acquire Ra/Wa action locks
//   4. busy-spin the rule's synthetic cost
//   5. commit through the pipelined commit sequencer (below)
//
// Under LockProtocol::kTwoPhase the lock manager blocks every conflict,
// so no Rc–Wa victims ever arise (§4.2, Theorem 2). Under kRcRaWa a Wa is
// granted over outstanding Rc locks and the *committer* settles the
// conflict (§4.3): policy kAbort is the paper's rule (ii) — abort every
// conflicting Rc holder — and kRevalidate is the paper's refinement —
// abort only those whose instantiation the commit actually invalidated.
//
// The commit sequencer replaces the old engine-mutex commit. A committer
// (a) takes a ticket (one atomic increment), (b) sweeps the striped lock
// table for Rc–Wa victims while earlier tickets are still applying — the
// sweep is stable outside any global section because the committer holds
// its Wa locks, so no NEW conflicting Rc can be granted — then (c)
// submits its delta to the sequencer. The committer holding the turn is
// the *head*: it folds its commit together with adjacent already-
// submitted tickets whose write sets are disjoint (and that don't
// victimize each other) and executes them as ONE ordered batch — the
// deltas apply in ticket order, matcher propagation runs once for the
// whole batch, and the log records each commit at its ticket position,
// byte-identical to an unbatched run. Only the head stage is serialized,
// so the committed sequence is still totally ordered — it is the
// execution string the semantics validator replays — while victim
// collection and lock release overlap between commits, and batching
// amortizes the remaining per-commit apply/propagate cost. No engine-wide
// mutex is held anywhere on the commit path; mu_ only guards worker
// scheduling state and is taken briefly for bookkeeping. DESIGN.md §4.1
// has the batching soundness argument.
//
// External transactions (src/server/): when an ExternalSource is attached,
// the engine doubles as a database server — client sessions run
// Begin/Acquire/Commit transactions against the same lock manager and
// commit through the same sequencer, so client writes interleave with
// rule firings in one totally-ordered, replayable log. Under kRcRaWa
// a client writer's commit victimizes rule firings holding conflicting Rc
// locks (the §4.3 conflict), and vice versa. Workers do not declare the
// run finished while the source still has clients attached or a client
// commit is in flight; they sleep until a client commit activates new
// instantiations or the source drains.

#ifndef DBPS_ENGINE_PARALLEL_ENGINE_H_
#define DBPS_ENGINE_PARALLEL_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "engine/engine.h"
#include "engine/match_pipeline.h"
#include "lock/lock_manager.h"
#include "rules/rule.h"
#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

class PartitionedMatcher;

/// \brief How a committer treats transactions holding conflicting Rc
/// locks (kRcRaWa only).
enum class AbortPolicy : uint8_t {
  kAbort,       ///< paper rule (ii): always abort them
  kRevalidate,  ///< abort only if the commit invalidated their match
};

const char* AbortPolicyToString(AbortPolicy policy);

/// \brief A source of external (client) transactions attached to a
/// running ParallelEngine — implemented by server::SessionManager.
///
/// Workers poll Drained() (with the engine mutex held) when deciding
/// whether the run may terminate: while it returns false the engine stays
/// alive waiting for client commits even though the conflict set is
/// empty. Implementations must be lock-free (atomics only) and must not
/// call back into the engine from Drained().
class ExternalSource {
 public:
  virtual ~ExternalSource() = default;

  /// True once no further external transactions can arrive (e.g. the
  /// session manager is closed and every session has disconnected).
  virtual bool Drained() const = 0;
};

struct ParallelEngineOptions {
  EngineOptions base;
  size_t num_workers = 4;  ///< the paper's Np
  /// Shards of the striped lock table (see LockManager::Options); sized
  /// from the hardware by default (DefaultNumLockShards).
  size_t num_lock_shards = DefaultNumLockShards();
  /// Most commits the head-of-ticket-order committer may fold into one
  /// ordered batch (apply + matcher propagation amortized across the
  /// batch; the log keeps the per-ticket order either way). 1 disables
  /// batching; clamped to at least 1.
  size_t commit_batch_limit = 8;
  LockProtocol protocol = LockProtocol::kRcRaWa;
  AbortPolicy abort_policy = AbortPolicy::kAbort;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
  /// Escalate a firing's tuple-level Rc locks to one relation-level Rc
  /// when it holds more than this many in a relation (0 = never) — §4.3.
  size_t rc_escalation_threshold = 0;
  std::chrono::milliseconds lock_timeout{10000};
  /// Starvation guarantee: once the SAME instantiation has been aborted
  /// this many times in a row (Rc victimization, deadlock, wound...), its
  /// next attempt acquires locks in blocking (2PL-style) mode, so
  /// committing writers wait behind its Rc instead of victimizing it
  /// again — repeatedly-victimized firings eventually commit. kRcRaWa
  /// only; 0 disables escalation.
  int escalate_after_aborts = 4;
  /// Capped exponential backoff applied by a worker after an aborted
  /// firing, scaled by that instantiation's abort streak (plus jitter).
  std::chrono::microseconds retry_backoff_base{50};
  std::chrono::microseconds retry_backoff_max{20000};
  /// When non-null, Run() keeps serving until the source is drained (and
  /// the conflict set has emptied). Not owned; must outlive Run().
  ExternalSource* external_source = nullptr;
  /// First commit sequence this run assigns. Non-zero after crash
  /// recovery (server/recovery.h): the journal already holds seqs
  /// [0, start_seq), and the restarted engine's commits must extend that
  /// numbering without a gap or overlap.
  uint64_t start_seq = 0;
  /// Relation-hash match partitions (match/partitioned_matcher.h). 0 or 1
  /// = the serial matcher exactly as before; >1 partitions the matcher by
  /// Mix64(relation) % N — mirroring the lock shards — and propagates
  /// each commit batch's delta morsel-parallel. Ignored for kNaive (the
  /// oracle stays serial by design).
  size_t num_match_partitions = 0;
  /// Morsel workers draining partition change queues when partitioned
  /// matching is on. 1 = serial ablation: identical partitioning,
  /// routing and canonical merge, but inline single-threaded execution.
  size_t match_workers = 4;
  /// Debug/differential aid: shadow every partitioned-matcher batch with
  /// a full serial matcher and fail the run on the first conflict-set
  /// divergence. Expensive; chaos/differential tests only.
  bool match_shadow_check = false;
  // --- Skew adaptation (partitioned matcher only) -----------------------
  /// Split a hot partition's alpha memories by value-hash of the tested
  /// first-CE attribute into `match_split_ways` sub-partitions, each with
  /// its own inner matcher, once its share of routed WMEs stays >=
  /// `match_split_share` for `match_split_streak` consecutive batches.
  /// Canonical (partition, sub-partition, call-order) merge keeps
  /// journals byte-identical. Ignored when matching runs serial.
  bool match_split = false;
  size_t match_split_ways = 4;
  size_t match_split_streak = 4;
  double match_split_share = 0.6;
  /// Rebuild the rule→partition homing map at a pinned snapshot CSN
  /// (quiescent point between batches) when the skew histogram saturates
  /// bin 9 for `match_rehome_streak` consecutive batches.
  bool match_rehome = false;
  size_t match_rehome_streak = 16;
  /// Route committed batches to the matcher through a dedicated
  /// propagation thread so batch N's match propagation overlaps batch
  /// N+1's lock acquisition and victim collection. Workers drain the
  /// pipeline before claiming the next firing (and before revalidate
  /// settling), so selection order — and the journal — stay byte-
  /// identical to the inline path. Ignored when matching runs serial.
  bool match_pipeline = false;
  /// Self-tune the effective commit batch limit from the observed
  /// batch-size histogram and sequencer stall time (engine/
  /// adaptive_batch.h): `commit_batch_limit` is the starting point and
  /// the controller moves the effective limit within [1, 64] by powers
  /// of two. Off = the fixed knob, as the ablation baseline.
  bool adaptive_batch_limit = false;
  /// Emit full audit evidence (`;a(...)`) only on every Nth commit
  /// (0/1 = every commit, the default). Sampled journals stay replayable
  /// and order-checkable; the auditor treats unaudited lines as
  /// order-only evidence and stitches the victim ledger across gaps.
  uint64_t audit_every = 1;
};

class ParallelEngine {
 public:
  ParallelEngine(WorkingMemory* wm, RuleSetPtr rules,
                 ParallelEngineOptions options = {});

  /// Runs to completion (empty conflict set with nothing in flight — and,
  /// with an external source attached, the source drained — halt, or
  /// max_firings) and returns stats plus the committed log.
  StatusOr<RunResult> Run();

  const LockManager::Stats& lock_stats() const { return lock_stats_; }

  /// Transactions still live in the lock manager — 0 after a clean run
  /// (the chaos harness's leak check). 0 before Run().
  size_t live_lock_transactions() const {
    return lock_manager_ == nullptr ? 0
                                    : lock_manager_->live_transactions();
  }

  // --- External transactions (the src/server/ front door) -----------------
  //
  // All of these are thread-safe and may be called from client threads
  // concurrently with Run(). They fail with Unavailable outside the
  // window in which the engine is serving (after Run() set up the lock
  // manager, before the run finished).

  /// True while external transactions are being admitted.
  bool accepting_external() const {
    return accepting_.load(std::memory_order_acquire);
  }

  /// Blocks until the engine accepts external transactions; false on
  /// timeout (e.g. Run() was never called or already finished).
  bool WaitUntilAccepting(std::chrono::milliseconds timeout) const;

  /// Starts an external transaction against the engine's lock manager.
  StatusOr<TxnId> BeginExternal();

  /// Acquires `mode` on `object` for external transaction `txn`; blocks
  /// on conflicts exactly like a rule firing's lock request.
  Status AcquireExternal(TxnId txn, const LockObjectId& object,
                         LockMode mode);

  /// True iff a conflicting commit marked `txn` aborted (Rc–Wa rule).
  bool IsExternalAborted(TxnId txn) const;

  /// Commits `delta` through the commit sequencer: settles Rc–Wa victims
  /// (aborting conflicting rule firings and client readers), applies the
  /// delta atomically in ticket order, propagates it to the matcher,
  /// appends a client-keyed record to the commit log, and releases
  /// `txn`'s locks. `key` must be a client key (MakeClientKey). Returns
  /// the commit seq. On failure no state changed and the caller still
  /// owns the transaction — call AbortExternal. `reads`, when non-null,
  /// is the transaction's observed read set (alive until return); it is
  /// recorded in the commit's TxnAudit for the offline auditor.
  StatusOr<uint64_t> CommitExternal(TxnId txn, const InstKey& key,
                                    const Delta& delta,
                                    const TxnReadSet* reads = nullptr);

  /// Rolls back `txn`: discards nothing (writes were never applied),
  /// releases its locks, counts a client abort.
  void AbortExternal(TxnId txn);

  /// Wakes sleeping workers so they re-check termination — call after the
  /// external source's Drained() may have flipped to true.
  void NotifyExternalActivity();

 private:
  /// RAII containment for one claimed firing: unless dismissed by a
  /// normal completion path, its destructor rolls the transaction back
  /// (release locks, unclaim, decrement in_flight_, notify) — so an
  /// exception or injected failure anywhere inside ProcessFiring can
  /// never leave in_flight_ undecremented and hang Run().
  class FiringGuard {
   public:
    FiringGuard(ParallelEngine* engine, TxnId txn, const InstKey& key)
        : engine_(engine), txn_(txn), key_(key) {}
    FiringGuard(const FiringGuard&) = delete;
    FiringGuard& operator=(const FiringGuard&) = delete;
    ~FiringGuard() {
      if (!dismissed_) engine_->FinishAborted(txn_, key_, /*deadlock=*/false);
    }
    void Dismiss() { dismissed_ = true; }

   private:
    ParallelEngine* engine_;
    TxnId txn_;
    const InstKey& key_;
    bool dismissed_ = false;
  };

  void WorkerLoop(size_t worker_index);
  /// Runs one claimed instantiation as a transaction. Must be called
  /// outside mu_; decrements in_flight_ and notifies before returning
  /// (via its FiringGuard even if it throws). Returns the instantiation's
  /// consecutive-abort streak — 0 for commit/stale/retired, >0 when the
  /// firing was aborted (the caller backs off proportionally before
  /// reclaiming, to break retry storms).
  int ProcessFiring(const InstPtr& inst, Random* rng);

  /// Abort/skip paths; each re-enters mu_, cleans up, and notifies.
  /// FinishAborted returns the instantiation's new abort streak.
  int FinishAborted(TxnId txn, const InstKey& key, bool deadlock);
  void FinishStale(TxnId txn, const InstKey& key);
  void FinishRetired(TxnId txn, const InstKey& key);  // RHS error

  /// One commit submitted to the sequencer: everything the head of the
  /// ticket order needs to apply it on the submitter's behalf, plus the
  /// result fields the head reports back. The submitter stack-allocates
  /// it and blocks inside AwaitTurn until `executed`, so the pointed-to
  /// key/delta stay alive for the executing head.
  struct PendingCommit {
    TxnId txn = 0;
    const InstKey* key = nullptr;
    const Delta* delta = nullptr;
    /// Rc–Wa victims collected pre-turn (while the Wa locks pin them).
    std::vector<TxnId> victims;
    /// Sorted modify/delete WME targets (DeltaWriteSet) — the batch
    /// disjointness check.
    std::vector<WmeId> write_set;
    /// Client-only: what the transaction read (Session's read set), for
    /// the commit's TxnAudit. Null for rule firings (their reads are the
    /// key's matched versions) and for clients that recorded none.
    const TxnReadSet* reads = nullptr;
    bool is_client = false;
    /// The ticket was abandoned (exception before submission): fold
    /// through the pipeline as a no-op.
    bool cancelled = false;
    // --- Filled by the executing head, read after `executed`. ----------
    /// Set under the sequencer mutex by FinishBatch; the happens-before
    /// edge that publishes the result fields below to the submitter.
    bool executed = false;
    /// The commit happened (delta applied + logged). False: the txn was
    /// aborted/skipped — or, for clients, the apply failed (see
    /// apply_status).
    bool committed = false;
    Status apply_status = Status::OK();  ///< client-only apply failure
    uint64_t seq = 0;                    ///< assigned commit sequence
  };

  /// Batching commit sequencer: commit order = ticket order. A committer
  /// takes a ticket with NextTicket() (one relaxed atomic increment),
  /// overlaps its victim sweep with earlier commits still applying, then
  /// submits its PendingCommit to AwaitTurn(). The committer whose ticket
  /// holds the turn becomes the *head*: it gathers its own commit plus up
  /// to `max_batch - 1` already-submitted, contiguous successors whose
  /// write sets are disjoint and that do not victimize each other
  /// (CanFold), executes the whole batch in ticket order, and advances
  /// the turn past it with FinishBatch(). Followers return from
  /// AwaitTurn with their result filled in. Every ticket taken MUST be
  /// submitted exactly once — use SequencedCommit.
  class CommitSequencer {
   public:
    uint64_t NextTicket() {
      return next_.fetch_add(1, std::memory_order_relaxed);
    }
    /// Submits `pending` for `ticket` and blocks. Returns empty when a
    /// prior head executed `pending` (its result fields are valid), or
    /// the batch (front() == pending, ticket order) when this committer
    /// is the head — the caller must execute it and call FinishBatch.
    std::vector<PendingCommit*> AwaitTurn(uint64_t ticket,
                                          PendingCommit* pending,
                                          size_t max_batch,
                                          uint64_t* stall_ns);
    /// Marks every batch member executed and advances the turn past the
    /// batch. The caller must be the head that gathered `batch` at
    /// `ticket`.
    void FinishBatch(uint64_t ticket,
                     const std::vector<PendingCommit*>& batch);
    uint64_t tickets_issued() const {
      return next_.load(std::memory_order_relaxed);
    }

   private:
    /// May `next` join a batch currently holding `batch`? Yes iff its
    /// write set is disjoint from every member's and no victimization
    /// crosses the batch (members must not abort each other mid-batch).
    static bool CanFold(const std::vector<PendingCommit*>& batch,
                        const PendingCommit& next);

    std::atomic<uint64_t> next_{0};
    uint64_t turn_ = 0;  ///< under mu_
    /// Submitted-but-not-executed commits, by ticket; under mu_.
    std::unordered_map<uint64_t, PendingCommit*> submitted_;
    std::mutex mu_;
    std::condition_variable cv_;
  };

  /// RAII for one commit ticket: guarantees the ticket is submitted (and,
  /// if this committer becomes the head, its batch executed and finished)
  /// exactly once on every path — abort, exception, success — so one
  /// failed committer can never stall the pipeline behind it. If Commit()
  /// is never reached, the destructor folds a cancelled no-op through.
  class SequencedCommit {
   public:
    explicit SequencedCommit(ParallelEngine* engine)
        : engine_(engine), ticket_(engine->sequencer_.NextTicket()) {}
    SequencedCommit(const SequencedCommit&) = delete;
    SequencedCommit& operator=(const SequencedCommit&) = delete;
    ~SequencedCommit() {
      if (submitted_) return;
      PendingCommit cancelled;
      cancelled.cancelled = true;
      Commit(&cancelled);
    }
    /// Runs the submit → (execute batch, if head) → finish protocol for
    /// `pending`; on return pending->executed is true and its result
    /// fields are valid. Call at most once.
    void Commit(PendingCommit* pending);

   private:
    ParallelEngine* engine_;
    uint64_t ticket_;
    bool submitted_ = false;
  };

  /// Applies a gathered batch in ticket order: per-member abort checks,
  /// WM applies, one matcher propagation pass (Matcher::ApplyChanges),
  /// victim settlement, and log/observer emission — producing exactly the
  /// log bytes a batch-of-one pipeline would. Only the head of the ticket
  /// order runs this, one head at a time, so it owns commit_seq_/log_.
  void ExecuteBatch(const std::vector<PendingCommit*>& batch);

  /// The §4.3 commit-time settlement, shared by rule and client commits:
  /// marks aborted every still-live transaction in `victims` (under
  /// kRevalidate, rule firings whose match survived — instantiation still
  /// active and every matched version still current at a pinned post-
  /// commit snapshot — are spared; client readers cannot be revalidated
  /// and are always aborted). `victims` must have been collected while
  /// `committer` held its Wa locks: Rc–Wa incompatibility then guarantees
  /// the sweep is stable with no global section. Runs in the ordered
  /// commit stage after matcher propagation; takes mu_ only briefly for
  /// the txn-key lookup. Returns how many victims were actually marked
  /// aborted (the commit's TxnAudit victim count).
  size_t SettleVictims(TxnId committer, const std::vector<TxnId>& victims);

  WorkingMemory* wm_;
  RuleSetPtr rules_;
  ParallelEngineOptions options_;
  std::unique_ptr<Matcher> matcher_;
  /// Non-null iff matcher_ is a PartitionedMatcher (num_match_partitions
  /// > 1 on a partitionable algorithm); used for stats harvest and the
  /// shadow-check verdict at the end of the run.
  PartitionedMatcher* partitioned_matcher_ = nullptr;
  /// Non-null iff match_pipeline is armed on a partitioned matcher; owns
  /// the dedicated propagation thread (engine/match_pipeline.h).
  std::unique_ptr<MatchPipeline> pipeline_;
  std::unique_ptr<LockManager> lock_manager_;

  /// Worker-scheduling mutex: guards in_flight_, done_, halted_, stats_,
  /// txn_keys_, abort_streaks_, ext_inflight_. NOT held across the commit
  /// apply stage — commit ordering is the sequencer's job. Lock order:
  /// never wait for a sequencer turn while holding mu_.
  std::mutex mu_;
  std::condition_variable cv_;
  std::atomic<int> executing_{0};       // firings currently in phase 3/4
  std::atomic<int> peak_executing_{0};  // high-water mark (stats)
  size_t in_flight_ = 0;
  /// External commits past their done_ check but not yet finished; the
  /// run does not terminate while nonzero.
  size_t ext_inflight_ = 0;
  bool done_ = false;
  bool halted_ = false;
  /// Whether external transactions are currently admitted; true from
  /// Run()'s setup until the run finishes.
  std::atomic<bool> accepting_{false};
  EngineStats stats_;
  CommitSequencer sequencer_;
  std::atomic<uint64_t> sequencer_stall_ns_{0};
  /// Batch limit the sequencer folds to. Equals the configured
  /// commit_batch_limit unless adaptive_batch_limit is armed, in which
  /// case the ordered commit stage republishes it every stats window
  /// (ComputeAdaptiveBatchLimit) and committers read it per commit.
  std::atomic<size_t> effective_batch_limit_{1};
  /// Controller window baselines; only the ordered commit stage (one
  /// thread at a time) touches them.
  uint64_t adapt_last_batches_ = 0;
  uint64_t adapt_last_saturated_ = 0;
  uint64_t adapt_last_stall_ns_ = 0;
  /// Only the ordered commit stage (one thread at a time, by ticket)
  /// touches these; Run() reads them after the pipeline drains.
  uint64_t commit_seq_ = 0;  ///< total commits (firings + client txns)
  /// Running count of victims charged to LOGGED commits — the ledger the
  /// auditor cross-checks ((vt N) in each record's audit suffix).
  uint64_t victims_total_ = 0;
  std::vector<FiringRecord> log_;
  /// Live transactions' claimed instantiation (for kRevalidate).
  std::unordered_map<TxnId, InstKey> txn_keys_;
  /// Consecutive aborts per instantiation (cleared on commit/stale/
  /// retire) — drives per-firing backoff and blocking escalation.
  std::unordered_map<InstKey, int, InstKeyHash> abort_streaks_;
  std::atomic<uint64_t> backoff_micros_{0};

  LockManager::Stats lock_stats_;
};

}  // namespace dbps

#endif  // DBPS_ENGINE_PARALLEL_ENGINE_H_
