// ParallelEngine: the multiple-execution-thread mechanism (§4.2 / §4.3).
//
// Np worker threads each repeatedly claim an active instantiation and run
// it as a transaction against the centralized lock manager:
//
//   1. acquire Rc locks on the matched tuples (+ escalated relation-level
//      Rc for each negated condition element)                [Figure 4.2]
//   2. validate the claim is still active (the match may have been
//      invalidated between selection and lock grant)
//   3. evaluate the RHS into a Delta (pure), acquire Ra/Wa action locks
//   4. busy-spin the rule's synthetic cost
//   5. commit under the engine mutex: settle Rc–Wa conflicts (collect
//      victims, abort or revalidate them), apply the Delta atomically,
//      propagate to the matcher, append to the commit log
//
// Under LockProtocol::kTwoPhase the lock manager blocks every conflict,
// so no Rc–Wa victims ever arise (§4.2, Theorem 2). Under kRcRaWa a Wa is
// granted over outstanding Rc locks and the *committer* settles the
// conflict (§4.3): policy kAbort is the paper's rule (ii) — abort every
// conflicting Rc holder — and kRevalidate is the paper's refinement —
// abort only those whose instantiation the commit actually invalidated.
//
// The committed sequence is totally ordered by the engine mutex; it is
// the execution string the semantics validator replays.

#ifndef DBPS_ENGINE_PARALLEL_ENGINE_H_
#define DBPS_ENGINE_PARALLEL_ENGINE_H_

#include <atomic>
#include <condition_variable>
#include <memory>
#include <mutex>
#include <thread>
#include <unordered_map>

#include "engine/engine.h"
#include "lock/lock_manager.h"
#include "rules/rule.h"
#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

/// \brief How a committer treats transactions holding conflicting Rc
/// locks (kRcRaWa only).
enum class AbortPolicy : uint8_t {
  kAbort,       ///< paper rule (ii): always abort them
  kRevalidate,  ///< abort only if the commit invalidated their match
};

const char* AbortPolicyToString(AbortPolicy policy);

struct ParallelEngineOptions {
  EngineOptions base;
  size_t num_workers = 4;  ///< the paper's Np
  LockProtocol protocol = LockProtocol::kRcRaWa;
  AbortPolicy abort_policy = AbortPolicy::kAbort;
  DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
  /// Escalate a firing's tuple-level Rc locks to one relation-level Rc
  /// when it holds more than this many in a relation (0 = never) — §4.3.
  size_t rc_escalation_threshold = 0;
  std::chrono::milliseconds lock_timeout{10000};
};

class ParallelEngine {
 public:
  ParallelEngine(WorkingMemory* wm, RuleSetPtr rules,
                 ParallelEngineOptions options = {});

  /// Runs to completion (empty conflict set with nothing in flight, halt,
  /// or max_firings) and returns stats plus the committed firing log.
  StatusOr<RunResult> Run();

  const LockManager::Stats& lock_stats() const { return lock_stats_; }

 private:
  void WorkerLoop(size_t worker_index);
  /// Runs one claimed instantiation as a transaction. Must be called
  /// outside mu_; decrements in_flight_ and notifies before returning.
  /// Returns true if the firing was aborted as a deadlock victim (the
  /// caller backs off before reclaiming, to break retry storms).
  bool ProcessFiring(const InstPtr& inst, Random* rng);

  /// Abort/skip paths; each re-enters mu_, cleans up, and notifies.
  void FinishAborted(TxnId txn, const InstKey& key, bool deadlock);
  void FinishStale(TxnId txn, const InstKey& key);
  void FinishRetired(TxnId txn, const InstKey& key);  // RHS error

  WorkingMemory* wm_;
  RuleSetPtr rules_;
  ParallelEngineOptions options_;
  std::unique_ptr<Matcher> matcher_;
  std::unique_ptr<LockManager> lock_manager_;

  std::mutex mu_;  // guards everything below + commit path
  std::condition_variable cv_;
  std::atomic<int> executing_{0};       // firings currently in phase 3/4
  std::atomic<int> peak_executing_{0};  // high-water mark (stats)
  size_t in_flight_ = 0;
  bool done_ = false;
  bool halted_ = false;
  EngineStats stats_;
  std::vector<FiringRecord> log_;
  /// Live transactions' claimed instantiation (for kRevalidate).
  std::unordered_map<TxnId, InstKey> txn_keys_;

  LockManager::Stats lock_stats_;
};

}  // namespace dbps

#endif  // DBPS_ENGINE_PARALLEL_ENGINE_H_
