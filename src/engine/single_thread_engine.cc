#include "engine/single_thread_engine.h"

#include "engine/busy_work.h"
#include "rules/rhs_evaluator.h"
#include "util/logging.h"
#include "util/stopwatch.h"

namespace dbps {

SingleThreadEngine::SingleThreadEngine(WorkingMemory* wm, RuleSetPtr rules,
                                       EngineOptions options)
    : wm_(wm),
      rules_(std::move(rules)),
      options_(options),
      rng_(options.seed) {
  DBPS_CHECK(wm_ != nullptr);
  DBPS_CHECK(rules_ != nullptr);
}

Status SingleThreadEngine::Init() {
  DBPS_CHECK(!initialized_) << "Init called twice";
  matcher_ = CreateMatcher(options_.matcher);
  DBPS_RETURN_NOT_OK(matcher_->Initialize(rules_, *wm_));
  initialized_ = true;
  return Status::OK();
}

StatusOr<bool> SingleThreadEngine::Step() {
  DBPS_CHECK(initialized_) << "Step before Init";
  if (halted_) return false;
  if (stats_.firings >= options_.max_firings) {
    stats_.hit_max_firings = true;
    return false;
  }

  // select.
  InstPtr inst = matcher_->conflict_set().Claim(options_.strategy, &rng_);
  if (inst == nullptr) return false;

  // execute: evaluate the RHS into a delta.
  auto delta_or = EvaluateRhs(*inst->rule(), inst->matched());
  if (!delta_or.ok()) {
    // A failed RHS (e.g. division by zero) skips the firing; the
    // instantiation is retired so the engine cannot loop on it.
    DBPS_LOG(Warning) << "rule '" << inst->rule()->name()
                      << "' RHS failed: " << delta_or.status().ToString();
    ++stats_.rhs_errors;
    matcher_->conflict_set().MarkFired(inst->key());
    return true;
  }
  Delta delta = std::move(delta_or).ValueOrDie();

  if (options_.simulate_cost && inst->rule()->cost_us() > 0) {
    SimulateCost(inst->rule()->cost_us(), options_.cost_model);
  }

  // commit: apply atomically, then match.
  matcher_->conflict_set().MarkFired(inst->key());
  auto change_or = wm_->Apply(delta);
  if (!change_or.ok()) return change_or.status();
  const WmChange& change = change_or.ValueOrDie();
  matcher_->ApplyChange(change);

  // Audit evidence: a serial firing reads exactly its matched versions at
  // the commit point; no victimization exists here.
  TxnAudit audit;
  audit.present = true;
  audit.csn = change.csn;
  audit.read_csn = change.csn;
  audit.reads = inst->key().wmes;
  audit.writes.reserve(change.added.size());
  for (const WmePtr& added : change.added) {
    audit.writes.emplace_back(added->id(), added->tag());
  }

  if (options_.record_log) {
    log_.push_back(FiringRecord{stats_.firings, inst->key(), delta, audit});
  }
  if (options_.observer) {
    InstKey key = inst->key();
    EngineEvent event{EngineEvent::Kind::kCommit, &key, &delta,
                      stats_.firings};
    event.audit = &audit;
    options_.observer(event);
    options_.observer(EngineEvent{EngineEvent::Kind::kBatchEnd, nullptr,
                                  nullptr, stats_.firings + 1});
  }
  ++stats_.firings;
  ++stats_.cycles;
  if (delta.halt()) {
    halted_ = true;
    stats_.halted = true;
  }
  return true;
}

StatusOr<RunResult> SingleThreadEngine::Run() {
  if (!initialized_) DBPS_RETURN_NOT_OK(Init());
  Stopwatch stopwatch;
  for (;;) {
    DBPS_ASSIGN_OR_RETURN(bool fired, Step());
    if (!fired) break;
  }
  stats_.elapsed_seconds = stopwatch.ElapsedSeconds();
  return RunResult{stats_, log_};
}

}  // namespace dbps
