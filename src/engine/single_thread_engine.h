// SingleThreadEngine: the reference interpreter (§2, §3.2).
//
// Executes the classic three-phase cycle — match (incremental, via the
// matcher), select (one dominant instantiation per the strategy), execute
// (RHS evaluated into a Delta, applied atomically) — until the conflict
// set empties, a (halt) commits, or max_firings trips. Its execution
// sequences *define* the system's semantics; the parallel engines are
// validated against it.

#ifndef DBPS_ENGINE_SINGLE_THREAD_ENGINE_H_
#define DBPS_ENGINE_SINGLE_THREAD_ENGINE_H_

#include <memory>

#include "engine/engine.h"
#include "rules/rule.h"
#include "util/random.h"
#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

class SingleThreadEngine {
 public:
  /// `wm` must outlive the engine and is mutated by Run()/Step().
  SingleThreadEngine(WorkingMemory* wm, RuleSetPtr rules,
                     EngineOptions options = {});

  /// Builds the matcher against the current WM contents.
  Status Init();

  /// Fires the dominant instantiation once. Returns false when no firing
  /// happened (empty conflict set, halted, or max reached).
  StatusOr<bool> Step();

  /// Runs cycles until termination. Calls Init() if needed.
  StatusOr<RunResult> Run();

  const ConflictSet& conflict_set() const {
    return matcher_->conflict_set();
  }
  const EngineStats& stats() const { return stats_; }
  const std::vector<FiringRecord>& log() const { return log_; }

 private:
  WorkingMemory* wm_;
  RuleSetPtr rules_;
  EngineOptions options_;
  std::unique_ptr<Matcher> matcher_;
  Random rng_;
  EngineStats stats_;
  std::vector<FiringRecord> log_;
  bool initialized_ = false;
  bool halted_ = false;
};

}  // namespace dbps

#endif  // DBPS_ENGINE_SINGLE_THREAD_ENGINE_H_
