#include "engine/static_partition_engine.h"

#include <atomic>
#include <mutex>

#include "analysis/partitioner.h"
#include "engine/busy_work.h"
#include "rules/rhs_evaluator.h"
#include "util/logging.h"
#include "util/stopwatch.h"
#include "util/thread_pool.h"

namespace dbps {

StaticPartitionEngine::StaticPartitionEngine(WorkingMemory* wm,
                                             RuleSetPtr rules,
                                             StaticPartitionOptions options)
    : wm_(wm), rules_(std::move(rules)), options_(options) {
  DBPS_CHECK(wm_ != nullptr);
  DBPS_CHECK(rules_ != nullptr);
  DBPS_CHECK_GT(options_.num_workers, 0u);
}

StatusOr<RunResult> StaticPartitionEngine::Run() {
  auto matcher = CreateMatcher(options_.base.matcher);
  DBPS_RETURN_NOT_OK(matcher->Initialize(rules_, *wm_));

  Random rng(options_.base.seed);
  ThreadPool pool(options_.num_workers);
  EngineStats stats;
  std::vector<FiringRecord> log;
  Stopwatch stopwatch;
  bool halted = false;

  while (!halted && stats.firings < options_.base.max_firings) {
    // -- match/select: rank the conflict set in strategy order. --
    std::vector<InstPtr> candidates =
        matcher->conflict_set().SelectableSnapshot();
    if (candidates.empty()) break;

    std::vector<InstPtr> ordered;
    ordered.reserve(candidates.size());
    {
      std::vector<Candidate> pool_candidates;
      for (size_t i = 0; i < candidates.size(); ++i) {
        pool_candidates.push_back(Candidate{&candidates[i], i});
      }
      while (!pool_candidates.empty()) {
        const InstPtr* best =
            SelectDominant(pool_candidates, options_.base.strategy, &rng);
        ordered.push_back(*best);
        for (auto it = pool_candidates.begin(); it != pool_candidates.end();
             ++it) {
          if (it->inst == best) {
            pool_candidates.erase(it);
            break;
          }
        }
      }
    }

    // -- pre-execution analysis: maximal non-interfering subset. --
    std::vector<size_t> selected = SelectNonInterfering(ordered);
    // Cap at max_firings so the safety net is exact.
    const uint64_t room = options_.base.max_firings - stats.firings;
    if (selected.size() > room) selected.resize(room);
    DBPS_CHECK(!selected.empty());

    // -- execute phase, concurrently: pure RHS evaluation + cost. --
    struct FiringOutcome {
      InstPtr inst;
      StatusOr<Delta> delta{Status::Internal("not evaluated")};
    };
    std::vector<FiringOutcome> outcomes(selected.size());
    for (size_t i = 0; i < selected.size(); ++i) {
      outcomes[i].inst = ordered[selected[i]];
      FiringOutcome* outcome = &outcomes[i];
      bool cost = options_.base.simulate_cost;
      CostModel cost_model = options_.base.cost_model;
      pool.Submit([outcome, cost, cost_model] {
        outcome->delta =
            EvaluateRhs(*outcome->inst->rule(), outcome->inst->matched());
        if (cost && outcome->inst->rule()->cost_us() > 0) {
          SimulateCost(outcome->inst->rule()->cost_us(), cost_model);
        }
      });
    }
    pool.WaitIdle();

    // -- commit: apply the non-interfering deltas back-to-back. --
    for (auto& outcome : outcomes) {
      matcher->conflict_set().MarkFired(outcome.inst->key());
      if (!outcome.delta.ok()) {
        DBPS_LOG(Warning) << "rule '" << outcome.inst->rule()->name()
                          << "' RHS failed: "
                          << outcome.delta.status().ToString();
        ++stats.rhs_errors;
        continue;
      }
      const Delta& delta = outcome.delta.ValueOrDie();
      auto change_or = wm_->Apply(delta);
      if (!change_or.ok()) return change_or.status();
      const WmChange& change = change_or.ValueOrDie();
      matcher->ApplyChange(change);
      TxnAudit audit;
      audit.present = true;
      audit.csn = change.csn;
      audit.read_csn = change.csn;
      audit.reads = outcome.inst->key().wmes;
      audit.writes.reserve(change.added.size());
      for (const WmePtr& added : change.added) {
        audit.writes.emplace_back(added->id(), added->tag());
      }
      if (options_.base.record_log) {
        log.push_back(FiringRecord{stats.firings, outcome.inst->key(), delta,
                                   audit});
      }
      if (options_.base.observer) {
        EngineEvent event{EngineEvent::Kind::kCommit, &outcome.inst->key(),
                          &delta, stats.firings};
        event.audit = &audit;
        options_.base.observer(event);
        options_.base.observer(EngineEvent{EngineEvent::Kind::kBatchEnd,
                                           nullptr, nullptr,
                                           stats.firings + 1});
      }
      ++stats.firings;
      if (delta.halt()) {
        halted = true;
        stats.halted = true;
      }
    }
    ++stats.cycles;
  }

  if (stats.firings >= options_.base.max_firings &&
      matcher->conflict_set().HasSelectable()) {
    stats.hit_max_firings = true;
  }
  stats.elapsed_seconds = stopwatch.ElapsedSeconds();
  return RunResult{stats, std::move(log)};
}

}  // namespace dbps
