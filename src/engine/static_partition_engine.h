// StaticPartitionEngine: the static approach of §4.1 (Theorem 1).
//
// Each production cycle it takes the conflict set PA, selects (in
// conflict-resolution order) a maximal pairwise non-interfering subset —
// interference judged by read/write-set analysis, no locks involved —
// executes those firings' RHSs concurrently on a thread pool, and then
// applies their deltas back-to-back. Because the subset is
// non-interfering, the parallel step is equivalent to *any* serial order
// of the same productions, which is exactly the proof of Theorem 1.
//
// The engine exhibits the approach's documented weaknesses: per-cycle
// analysis cost and conservatism under false interference (escalated,
// relation-level writes). The benches quantify both.

#ifndef DBPS_ENGINE_STATIC_PARTITION_ENGINE_H_
#define DBPS_ENGINE_STATIC_PARTITION_ENGINE_H_

#include <memory>

#include "engine/engine.h"
#include "rules/rule.h"
#include "util/random.h"
#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

struct StaticPartitionOptions {
  EngineOptions base;
  size_t num_workers = 4;
};

class StaticPartitionEngine {
 public:
  StaticPartitionEngine(WorkingMemory* wm, RuleSetPtr rules,
                        StaticPartitionOptions options = {});

  StatusOr<RunResult> Run();

 private:
  WorkingMemory* wm_;
  RuleSetPtr rules_;
  StaticPartitionOptions options_;
};

}  // namespace dbps

#endif  // DBPS_ENGINE_STATIC_PARTITION_ENGINE_H_
