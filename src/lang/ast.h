// Parse-level AST of the dbps rule language: purely syntactic, all names
// unresolved. The analyzer (compiler.h) lowers this to rules::Rule.
//
// Grammar sketch (s-expressions; ';' comments):
//
//   program    := { relation | rule | fact }
//   relation   := '(' 'relation' NAME attr-decl* ')'
//   attr-decl  := '(' NAME TYPE? ')'                TYPE in {int float symbol
//                                                    string number any}
//   rule       := '(' 'rule' NAME property* ce+ '-->' action* ')'
//   property   := ':priority' INT | ':cost' INT
//   ce         := ['-'] '(' NAME attr-test* ')'
//   attr-test  := '^'NAME term
//   term       := constant | VARIABLE | disj | '{' test+ '}'
//   test       := PRED operand        PRED in {= <> < <= > >=}
//               | constant            (shorthand for '=' constant)
//               | VARIABLE            (shorthand for '=' VARIABLE)
//               | disj
//   disj       := '<<' constant+ '>>'   (OPS5 value disjunction)
//   operand    := constant | VARIABLE
//   action     := '(' 'make' NAME assign* ')'
//               | '(' 'modify' INT assign* ')'      INT: 1-based positive CE
//               | '(' 'remove' INT ')'
//               | '(' 'halt' ')'
//   assign     := '^'NAME expr
//   expr       := constant | VARIABLE | '(' OP expr expr ')'
//                                        OP in {+ - * / mod}
//   fact       := '(' 'make' NAME ('^'NAME constant)* ')'   (top level)

#ifndef DBPS_LANG_AST_H_
#define DBPS_LANG_AST_H_

#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "rules/rule.h"  // TestPredicate, BinOp
#include "value/value.h"
#include "wm/schema.h"   // AttrType

namespace dbps {

struct SourcePos {
  int line = 0;
  int col = 0;
};

// --- LHS ---------------------------------------------------------------

struct AstOperand {
  enum class Kind { kConstant, kVariable };
  Kind kind = Kind::kConstant;
  Value constant;
  std::string var_name;
  SourcePos pos;
};

struct AstTest {
  /// A normal predicate test, unless `one_of` is non-empty — then it is
  /// an OPS5 value disjunction `<< c1 c2 ... >>` (pred/operand unused).
  TestPredicate pred = TestPredicate::kEq;
  AstOperand operand;
  std::vector<Value> one_of;
};

struct AstAttrTest {
  std::string attr;
  std::vector<AstTest> tests;  // conjunction
  SourcePos pos;
};

struct AstConditionElement {
  bool negated = false;
  std::string relation;
  std::vector<AstAttrTest> attr_tests;
  SourcePos pos;
};

// --- RHS ---------------------------------------------------------------

struct AstExpr;
using AstExprPtr = std::unique_ptr<AstExpr>;

struct AstExpr {
  enum class Kind { kConstant, kVariable, kBinary };
  Kind kind = Kind::kConstant;
  Value constant;
  std::string var_name;
  BinOp op = BinOp::kAdd;
  AstExprPtr lhs;
  AstExprPtr rhs;
  SourcePos pos;
};

struct AstAssign {
  std::string attr;
  AstExprPtr expr;
  SourcePos pos;
};

struct AstMakeAction {
  std::string relation;
  std::vector<AstAssign> assigns;
  SourcePos pos;
};

struct AstModifyAction {
  int ce_number = 0;  // 1-based positive-CE reference, OPS5 style
  std::vector<AstAssign> assigns;
  SourcePos pos;
};

struct AstRemoveAction {
  int ce_number = 0;
  SourcePos pos;
};

struct AstHaltAction {
  SourcePos pos;
};

using AstAction = std::variant<AstMakeAction, AstModifyAction,
                               AstRemoveAction, AstHaltAction>;

// --- Declarations ------------------------------------------------------

struct AstRule {
  std::string name;
  int priority = 0;
  int64_t cost_us = 0;
  std::vector<AstConditionElement> lhs;
  std::vector<AstAction> rhs;
  SourcePos pos;
};

struct AstRelationDecl {
  std::string name;
  std::vector<std::pair<std::string, AttrType>> attrs;
  SourcePos pos;
};

struct AstProgram {
  std::vector<AstRelationDecl> relations;
  std::vector<AstRule> rules;
  std::vector<AstMakeAction> facts;  // top-level (make ...) statements
};

}  // namespace dbps

#endif  // DBPS_LANG_AST_H_
