#include "lang/compiler.h"

#include <unordered_map>

#include "lang/parser.h"
#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

namespace {

Status ErrorAt(const SourcePos& pos, const std::string& msg) {
  return Status::TypeError(
      StringPrintf("%d:%d: %s", pos.line, pos.col, msg.c_str()));
}

/// Where a variable was bound: positive-CE index + field.
struct Binding {
  size_t ce;
  size_t field;
};

class RuleCompiler {
 public:
  RuleCompiler(const AstRule& ast, const Catalog& catalog)
      : ast_(ast), catalog_(catalog) {}

  StatusOr<RulePtr> Run() {
    std::vector<Condition> conditions;
    size_t positive_seen = 0;
    for (const auto& ast_ce : ast_.lhs) {
      DBPS_ASSIGN_OR_RETURN(Condition cond,
                            CompileCondition(ast_ce, positive_seen));
      if (!cond.negated) ++positive_seen;
      conditions.push_back(std::move(cond));
    }
    num_positive_ = positive_seen;

    std::vector<Action> actions;
    for (const auto& ast_action : ast_.rhs) {
      DBPS_ASSIGN_OR_RETURN(Action action, CompileAction(ast_action));
      actions.push_back(std::move(action));
    }

    auto rule = std::make_shared<Rule>(ast_.name, std::move(conditions),
                                       std::move(actions));
    rule->set_priority(ast_.priority);
    rule->set_cost_us(ast_.cost_us);
    return RulePtr(rule);
  }

 private:
  StatusOr<const RelationSchema*> ResolveRelation(const std::string& name,
                                                  const SourcePos& pos) {
    auto schema = catalog_.GetRelation(Sym(name));
    if (!schema.ok()) {
      return ErrorAt(pos, "rule '" + ast_.name + "': unknown relation '" +
                              name + "'");
    }
    return schema;
  }

  StatusOr<size_t> ResolveAttr(const RelationSchema& schema,
                               const std::string& attr,
                               const SourcePos& pos) {
    auto field = schema.AttrIndex(Sym(attr));
    if (!field.has_value()) {
      return ErrorAt(pos, "rule '" + ast_.name + "': relation '" +
                              SymName(schema.name()) +
                              "' has no attribute '^" + attr + "'");
    }
    return *field;
  }

  Status CheckConstantType(const RelationSchema& schema, size_t field,
                           const Value& constant, const SourcePos& pos) {
    const AttrDef& attr = schema.attrs()[field];
    if (!ValueMatchesType(constant, attr.type)) {
      return ErrorAt(
          pos, StringPrintf(
                   "rule '%s': attribute '^%s' of '%s' is %s but tested "
                   "against %s (%s)",
                   ast_.name.c_str(), SymName(attr.name).c_str(),
                   SymName(schema.name()).c_str(),
                   AttrTypeToString(attr.type),
                   ValueTypeToString(constant.type()),
                   constant.ToString().c_str()));
    }
    return Status::OK();
  }

  StatusOr<Condition> CompileCondition(const AstConditionElement& ast_ce,
                                       size_t positive_index) {
    Condition cond;
    cond.negated = ast_ce.negated;
    DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                          ResolveRelation(ast_ce.relation, ast_ce.pos));
    cond.relation = schema->name();

    // Variables bound by a negated CE are visible only inside it.
    std::unordered_map<std::string, size_t> local_bindings;

    for (const auto& attr_test : ast_ce.attr_tests) {
      DBPS_ASSIGN_OR_RETURN(
          size_t field, ResolveAttr(*schema, attr_test.attr, attr_test.pos));
      for (const auto& test : attr_test.tests) {
        DBPS_RETURN_NOT_OK(CompileTest(ast_ce, *schema, positive_index,
                                       field, test, attr_test.pos,
                                       &local_bindings, &cond));
      }
    }
    return cond;
  }

  Status CompileTest(const AstConditionElement& ast_ce,
                     const RelationSchema& schema, size_t positive_index,
                     size_t field, const AstTest& test, const SourcePos& pos,
                     std::unordered_map<std::string, size_t>* local_bindings,
                     Condition* cond) {
    if (!test.one_of.empty()) {
      for (const Value& value : test.one_of) {
        DBPS_RETURN_NOT_OK(CheckConstantType(schema, field, value, pos));
      }
      cond->member_tests.push_back(MemberTest{field, test.one_of});
      return Status::OK();
    }
    if (test.operand.kind == AstOperand::Kind::kConstant) {
      DBPS_RETURN_NOT_OK(
          CheckConstantType(schema, field, test.operand.constant, pos));
      cond->constant_tests.push_back(
          ConstantTest{field, test.pred, test.operand.constant});
      return Status::OK();
    }

    const std::string& var = test.operand.var_name;
    if (ast_ce.negated) {
      // Inside a negated CE: reference an outer binding if one exists,
      // otherwise bind locally (kEq only).
      auto outer = bindings_.find(var);
      if (outer != bindings_.end()) {
        cond->join_tests.push_back(JoinTest{field, test.pred,
                                            outer->second.ce,
                                            outer->second.field});
        return Status::OK();
      }
      auto local = local_bindings->find(var);
      if (local != local_bindings->end()) {
        cond->intra_tests.push_back(
            IntraTest{field, test.pred, local->second});
        return Status::OK();
      }
      if (test.pred != TestPredicate::kEq) {
        return ErrorAt(pos, "rule '" + ast_.name + "': variable <" + var +
                                "> used in a predicate before binding");
      }
      local_bindings->emplace(var, field);
      return Status::OK();
    }

    // Positive CE.
    auto bound = bindings_.find(var);
    if (bound != bindings_.end()) {
      if (bound->second.ce == positive_index) {
        cond->intra_tests.push_back(
            IntraTest{field, test.pred, bound->second.field});
      } else {
        cond->join_tests.push_back(JoinTest{field, test.pred,
                                            bound->second.ce,
                                            bound->second.field});
      }
      return Status::OK();
    }
    if (test.pred != TestPredicate::kEq) {
      return ErrorAt(pos, "rule '" + ast_.name + "': variable <" + var +
                              "> used in a predicate before binding");
    }
    bindings_.emplace(var, Binding{positive_index, field});
    return Status::OK();
  }

  StatusOr<Expr> CompileExpr(const AstExpr& ast_expr) {
    switch (ast_expr.kind) {
      case AstExpr::Kind::kConstant:
        return Expr::Constant(ast_expr.constant);
      case AstExpr::Kind::kVariable: {
        auto it = bindings_.find(ast_expr.var_name);
        if (it == bindings_.end()) {
          return ErrorAt(ast_expr.pos,
                         "rule '" + ast_.name + "': unbound variable <" +
                             ast_expr.var_name + "> in action");
        }
        return Expr::Binding(it->second.ce, it->second.field);
      }
      case AstExpr::Kind::kBinary: {
        DBPS_ASSIGN_OR_RETURN(Expr lhs, CompileExpr(*ast_expr.lhs));
        DBPS_ASSIGN_OR_RETURN(Expr rhs, CompileExpr(*ast_expr.rhs));
        return Expr::Binary(ast_expr.op, std::move(lhs), std::move(rhs));
      }
    }
    return Status::Internal("unreachable AstExpr kind");
  }

  /// Validates a 1-based positive-CE reference and converts to 0-based.
  StatusOr<size_t> ResolveCeNumber(int ce_number, const SourcePos& pos) {
    if (ce_number < 1 || static_cast<size_t>(ce_number) > num_positive_) {
      return ErrorAt(
          pos, StringPrintf(
                   "rule '%s': condition-element reference %d out of range "
                   "(rule has %zu positive condition elements)",
                   ast_.name.c_str(), ce_number, num_positive_));
    }
    return static_cast<size_t>(ce_number - 1);
  }

  /// Relation schema matched by positive CE `ce` (0-based).
  const RelationSchema* PositiveCeSchema(size_t ce) const {
    size_t seen = 0;
    for (const auto& ast_ce : ast_.lhs) {
      if (ast_ce.negated) continue;
      if (seen == ce) {
        auto schema = catalog_.GetRelation(Sym(ast_ce.relation));
        return schema.ok() ? schema.ValueOrDie() : nullptr;
      }
      ++seen;
    }
    return nullptr;
  }

  StatusOr<Action> CompileAction(const AstAction& ast_action) {
    if (const auto* make = std::get_if<AstMakeAction>(&ast_action)) {
      DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                            ResolveRelation(make->relation, make->pos));
      std::vector<Expr> values(schema->arity(), Expr::Constant(Value::Nil()));
      for (const auto& assign : make->assigns) {
        DBPS_ASSIGN_OR_RETURN(size_t field,
                              ResolveAttr(*schema, assign.attr, assign.pos));
        DBPS_ASSIGN_OR_RETURN(Expr expr, CompileExpr(*assign.expr));
        if (expr.kind == Expr::Kind::kConstant) {
          DBPS_RETURN_NOT_OK(
              CheckConstantType(*schema, field, expr.constant, assign.pos));
        }
        values[field] = std::move(expr);
      }
      return Action{MakeAction{schema->name(), std::move(values)}};
    }
    if (const auto* modify = std::get_if<AstModifyAction>(&ast_action)) {
      DBPS_ASSIGN_OR_RETURN(size_t ce,
                            ResolveCeNumber(modify->ce_number, modify->pos));
      const RelationSchema* schema = PositiveCeSchema(ce);
      DBPS_CHECK(schema != nullptr);
      std::vector<std::pair<size_t, Expr>> assigns;
      for (const auto& assign : modify->assigns) {
        DBPS_ASSIGN_OR_RETURN(size_t field,
                              ResolveAttr(*schema, assign.attr, assign.pos));
        DBPS_ASSIGN_OR_RETURN(Expr expr, CompileExpr(*assign.expr));
        if (expr.kind == Expr::Kind::kConstant) {
          DBPS_RETURN_NOT_OK(
              CheckConstantType(*schema, field, expr.constant, assign.pos));
        }
        assigns.emplace_back(field, std::move(expr));
      }
      return Action{ModifyAction{ce, std::move(assigns)}};
    }
    if (const auto* remove = std::get_if<AstRemoveAction>(&ast_action)) {
      DBPS_ASSIGN_OR_RETURN(size_t ce,
                            ResolveCeNumber(remove->ce_number, remove->pos));
      return Action{RemoveAction{ce}};
    }
    return Action{HaltAction{}};
  }

  const AstRule& ast_;
  const Catalog& catalog_;
  std::unordered_map<std::string, Binding> bindings_;
  size_t num_positive_ = 0;
};

StatusOr<CreateOp> CompileFact(const AstMakeAction& fact,
                               const Catalog& catalog) {
  auto schema_or = catalog.GetRelation(Sym(fact.relation));
  if (!schema_or.ok()) {
    return ErrorAt(fact.pos, "fact: unknown relation '" + fact.relation + "'");
  }
  const RelationSchema* schema = schema_or.ValueOrDie();
  std::vector<Value> values(schema->arity(), Value::Nil());
  for (const auto& assign : fact.assigns) {
    auto field = schema->AttrIndex(Sym(assign.attr));
    if (!field.has_value()) {
      return ErrorAt(assign.pos, "fact: relation '" + fact.relation +
                                     "' has no attribute '^" + assign.attr +
                                     "'");
    }
    if (assign.expr->kind != AstExpr::Kind::kConstant) {
      return ErrorAt(assign.pos,
                     "fact attributes must be constants (no variables or "
                     "arithmetic)");
    }
    values[*field] = assign.expr->constant;
  }
  DBPS_RETURN_NOT_OK(schema->CheckTuple(values));
  return CreateOp{schema->name(), std::move(values)};
}

}  // namespace

StatusOr<CompiledProgram> CompileProgram(const AstProgram& ast,
                                         const Catalog* existing) {
  CompiledProgram out;

  // Resolution catalog = pre-existing relations + this program's.
  Catalog catalog;
  if (existing != nullptr) {
    for (SymbolId name : existing->relation_names()) {
      DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                            existing->GetRelation(name));
      DBPS_RETURN_NOT_OK(catalog.AddRelation(*schema));
    }
  }
  for (const auto& decl : ast.relations) {
    std::vector<AttrDef> attrs;
    attrs.reserve(decl.attrs.size());
    for (const auto& [attr_name, type] : decl.attrs) {
      attrs.push_back(AttrDef{Sym(attr_name), type});
    }
    RelationSchema schema(Sym(decl.name), std::move(attrs));
    Status added = catalog.AddRelation(schema);
    if (!added.ok()) {
      return ErrorAt(decl.pos, added.message());
    }
    out.relations.push_back(std::move(schema));
  }

  auto rules = std::make_shared<RuleSet>();
  for (const auto& ast_rule : ast.rules) {
    DBPS_ASSIGN_OR_RETURN(RulePtr rule,
                          RuleCompiler(ast_rule, catalog).Run());
    Status added = rules->Add(std::move(rule));
    if (!added.ok()) {
      return ErrorAt(ast_rule.pos, added.message());
    }
  }
  out.rules = std::move(rules);

  for (const auto& fact : ast.facts) {
    DBPS_ASSIGN_OR_RETURN(CreateOp op, CompileFact(fact, catalog));
    out.facts.push_back(std::move(op));
  }
  return out;
}

StatusOr<CompiledProgram> CompileProgram(std::string_view source,
                                         const Catalog* existing) {
  DBPS_ASSIGN_OR_RETURN(AstProgram ast, Parse(source));
  return CompileProgram(ast, existing);
}

StatusOr<RuleSetPtr> LoadProgram(std::string_view source,
                                 WorkingMemory* wm) {
  DBPS_ASSIGN_OR_RETURN(CompiledProgram program,
                        CompileProgram(source, &wm->catalog()));
  for (auto& schema : program.relations) {
    DBPS_RETURN_NOT_OK(wm->CreateRelation(std::move(schema)));
  }
  for (auto& fact : program.facts) {
    DBPS_ASSIGN_OR_RETURN(WmePtr wme,
                          wm->Insert(fact.relation, std::move(fact.values)));
    (void)wme;
  }
  return RuleSetPtr(program.rules);
}

}  // namespace dbps
