// Semantic analysis + lowering: AstProgram -> schemas, compiled rules,
// and initial facts.
//
// The compiler resolves every relation/attribute name against the declared
// schemas (plus any relations already in a target working memory), assigns
// each variable its binding site — the first bare occurrence in a positive
// condition element — and lowers later occurrences into intra-WME or join
// tests. Negated condition elements may bind variables only for use inside
// themselves (OPS5 scoping).

#ifndef DBPS_LANG_COMPILER_H_
#define DBPS_LANG_COMPILER_H_

#include <memory>
#include <string_view>
#include <vector>

#include "lang/ast.h"
#include "rules/rule.h"
#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

/// \brief Result of compiling a program.
struct CompiledProgram {
  /// Newly declared relations, in declaration order.
  std::vector<RelationSchema> relations;
  /// All rules of the program.
  std::shared_ptr<RuleSet> rules;
  /// Top-level (make ...) facts, ready for WorkingMemory::Apply.
  std::vector<CreateOp> facts;
};

/// \brief Compiles `ast`. If `existing` is non-null, relations already in
/// that catalog are visible to rules without redeclaration.
StatusOr<CompiledProgram> CompileProgram(const AstProgram& ast,
                                         const Catalog* existing = nullptr);

/// \brief Parses and compiles `source`.
StatusOr<CompiledProgram> CompileProgram(std::string_view source,
                                         const Catalog* existing = nullptr);

/// \brief One-stop loader: parses `source`, creates its relations in `wm`,
/// inserts its facts, and returns its rule set.
StatusOr<RuleSetPtr> LoadProgram(std::string_view source, WorkingMemory* wm);

}  // namespace dbps

#endif  // DBPS_LANG_COMPILER_H_
