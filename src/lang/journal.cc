#include "lang/journal.h"

#include <vector>

#include "lang/lexer.h"
#include "lang/printer.h"
#include "util/string_util.h"

namespace dbps {

namespace {

Status AppendValue(const Value& value, std::string* out) {
  DBPS_ASSIGN_OR_RETURN(std::string rendered, ValueToSource(value));
  *out += " " + rendered;
  return Status::OK();
}

/// Token-stream cursor for parsing journal lines.
class Cursor {
 public:
  explicit Cursor(std::vector<Token> tokens) : tokens_(std::move(tokens)) {}

  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }
  bool Match(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }
  Status Expect(TokenType type) {
    if (Match(type)) return Status::OK();
    return Status::ParseError("journal: expected " +
                              std::string(TokenTypeToString(type)) +
                              ", found " + Peek().ToString());
  }
  StatusOr<std::string> ExpectSymbol() {
    if (!Check(TokenType::kSymbol)) {
      return Status::ParseError("journal: expected symbol, found " +
                                Peek().ToString());
    }
    return Advance().text;
  }
  StatusOr<int64_t> ExpectInt() {
    if (!Check(TokenType::kInt)) {
      return Status::ParseError("journal: expected integer, found " +
                                Peek().ToString());
    }
    return Advance().int_value;
  }

  StatusOr<Value> ExpectValue() {
    switch (Peek().type) {
      case TokenType::kInt:
        return Value::Int(Advance().int_value);
      case TokenType::kFloat:
        return Value::Float(Advance().float_value);
      case TokenType::kString:
        return Value::String(Advance().text);
      case TokenType::kSymbol: {
        std::string text = Advance().text;
        return text == "nil" ? Value::Nil() : Value::Symbol(text);
      }
      default:
        return Status::ParseError("journal: expected a value, found " +
                                  Peek().ToString());
    }
  }

 private:
  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<std::string> DeltaToJournalLine(const Delta& delta) {
  std::string out = "(delta";
  for (const auto& op : delta.ops()) {
    if (const auto* create = std::get_if<CreateOp>(&op)) {
      out += " (make " + SymName(create->relation);
      for (const auto& value : create->values) {
        DBPS_RETURN_NOT_OK(AppendValue(value, &out));
      }
      out += ")";
    } else if (const auto* modify = std::get_if<ModifyOp>(&op)) {
      out += StringPrintf(" (modify %llu",
                          (unsigned long long)modify->id);
      for (const auto& [field, value] : modify->updates) {
        out += StringPrintf(" (%zu", field);
        DBPS_RETURN_NOT_OK(AppendValue(value, &out));
        out += ")";
      }
      out += ")";
    } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
      out += StringPrintf(" (delete %llu)", (unsigned long long)del->id);
    }
  }
  if (delta.halt()) out += " (halt)";
  out += ")";
  return out;
}

StatusOr<Delta> DeltaFromJournalLine(std::string_view line) {
  DBPS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(line));
  Cursor cursor(std::move(tokens));
  Delta delta;

  DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kLParen));
  DBPS_ASSIGN_OR_RETURN(std::string head, cursor.ExpectSymbol());
  if (head != "delta") {
    return Status::ParseError("journal: expected (delta ...), got '" +
                              head + "'");
  }
  while (!cursor.Check(TokenType::kRParen)) {
    DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kLParen));
    DBPS_ASSIGN_OR_RETURN(std::string op, cursor.ExpectSymbol());
    if (op == "make") {
      DBPS_ASSIGN_OR_RETURN(std::string relation, cursor.ExpectSymbol());
      std::vector<Value> values;
      while (!cursor.Check(TokenType::kRParen)) {
        DBPS_ASSIGN_OR_RETURN(Value value, cursor.ExpectValue());
        values.push_back(std::move(value));
      }
      delta.Create(Sym(relation), std::move(values));
    } else if (op == "modify") {
      DBPS_ASSIGN_OR_RETURN(int64_t id, cursor.ExpectInt());
      std::vector<std::pair<size_t, Value>> updates;
      while (cursor.Match(TokenType::kLParen)) {
        DBPS_ASSIGN_OR_RETURN(int64_t field, cursor.ExpectInt());
        DBPS_ASSIGN_OR_RETURN(Value value, cursor.ExpectValue());
        updates.emplace_back(static_cast<size_t>(field), std::move(value));
        DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kRParen));
      }
      delta.Modify(static_cast<WmeId>(id), std::move(updates));
    } else if (op == "delete") {
      DBPS_ASSIGN_OR_RETURN(int64_t id, cursor.ExpectInt());
      delta.Delete(static_cast<WmeId>(id));
    } else if (op == "halt") {
      delta.SetHalt();
    } else {
      return Status::ParseError("journal: unknown op '" + op + "'");
    }
    DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kRParen));
  }
  DBPS_RETURN_NOT_OK(cursor.Expect(TokenType::kRParen));
  if (!cursor.Check(TokenType::kEof)) {
    return Status::ParseError("journal: trailing tokens after (delta ...)");
  }
  return delta;
}

StatusOr<std::string> DeltasToJournal(const std::vector<Delta>& deltas) {
  std::string out;
  for (const auto& delta : deltas) {
    DBPS_ASSIGN_OR_RETURN(std::string line, DeltaToJournalLine(delta));
    out += line + "\n";
  }
  return out;
}

Status ReplayJournal(std::string_view journal, WorkingMemory* wm) {
  size_t line_number = 0;
  for (const auto& raw_line : Split(journal, '\n')) {
    ++line_number;
    std::string_view line = StripWhitespace(raw_line);
    if (line.empty() || line[0] == ';') continue;
    auto delta = DeltaFromJournalLine(line);
    if (!delta.ok()) {
      return Status::ParseError(StringPrintf(
          "journal line %zu: %s", line_number,
          delta.status().message().c_str()));
    }
    auto change = wm->Apply(delta.ValueOrDie());
    if (!change.ok()) {
      return Status::InvalidArgument(StringPrintf(
          "journal line %zu does not apply: %s", line_number,
          change.status().message().c_str()));
    }
  }
  return Status::OK();
}

}  // namespace dbps
