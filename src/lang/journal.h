// Delta journal: write-ahead-log-style persistence for working memory.
//
// A journal is a text stream of committed Deltas. Because
// WorkingMemory::Apply assigns WME ids deterministically (in op order),
// replaying the same journal against the same initial state reproduces
// the same database — ids, time tags and all. Together with snapshots
// (printer.h) this gives the classic snapshot + log recovery story:
//
//   JournalWriter journal(stream);
//   options.observer = ...;                 // or call Append per commit
//   ...run...
//   // recovery:
//   wm = LoadSnapshot(...);                 // or rebuild initial state
//   ReplayJournal(journal_text, &wm);
//
// Format (one delta per line, s-expression):
//   (delta (make REL value*) (modify ID (FIELD value)*) (delete ID) (halt)?)
// Values use the rule-language literal syntax (printer.h limits apply:
// finite floats, identifier-shaped symbols).

#ifndef DBPS_LANG_JOURNAL_H_
#define DBPS_LANG_JOURNAL_H_

#include <string>
#include <string_view>

#include "util/statusor.h"
#include "wm/delta.h"
#include "wm/working_memory.h"

namespace dbps {

/// Serializes one delta to its journal line (no trailing newline).
StatusOr<std::string> DeltaToJournalLine(const Delta& delta);

/// Parses one journal line back into a Delta.
StatusOr<Delta> DeltaFromJournalLine(std::string_view line);

/// Serializes a sequence of deltas (e.g. the deltas of an engine's
/// firing log) to journal text, one line each.
StatusOr<std::string> DeltasToJournal(const std::vector<Delta>& deltas);

/// Applies every delta of `journal` (one per line; blank lines and ';'
/// comments skipped) to `wm`, in order. Stops with an error on the first
/// malformed or inapplicable delta.
Status ReplayJournal(std::string_view journal, WorkingMemory* wm);

}  // namespace dbps

#endif  // DBPS_LANG_JOURNAL_H_
