#include "lang/lexer.h"

#include <cctype>
#include <cstdlib>

#include "util/string_util.h"

namespace dbps {

const char* TokenTypeToString(TokenType type) {
  switch (type) {
    case TokenType::kLParen:
      return "'('";
    case TokenType::kRParen:
      return "')'";
    case TokenType::kLBrace:
      return "'{'";
    case TokenType::kRBrace:
      return "'}'";
    case TokenType::kNegation:
      return "'-('";
    case TokenType::kArrow:
      return "'-->'";
    case TokenType::kLDisj:
      return "'<<'";
    case TokenType::kRDisj:
      return "'>>'";
    case TokenType::kAttribute:
      return "attribute";
    case TokenType::kVariable:
      return "variable";
    case TokenType::kKeyword:
      return "keyword";
    case TokenType::kSymbol:
      return "symbol";
    case TokenType::kInt:
      return "integer";
    case TokenType::kFloat:
      return "float";
    case TokenType::kString:
      return "string";
    case TokenType::kEof:
      return "end of input";
  }
  return "?";
}

std::string Token::ToString() const {
  std::string out = TokenTypeToString(type);
  if (!text.empty()) out += " '" + text + "'";
  return out + StringPrintf(" at %d:%d", line, col);
}

namespace {

bool IsIdentStart(char c) {
  return std::isalpha(static_cast<unsigned char>(c)) || c == '_' ||
         c == '*' || c == '?';
}

bool IsIdentChar(char c) {
  return std::isalnum(static_cast<unsigned char>(c)) || c == '_' ||
         c == '-' || c == '*' || c == '?' || c == '.';
}

class LexerImpl {
 public:
  explicit LexerImpl(std::string_view src) : src_(src) {}

  StatusOr<std::vector<Token>> Run() {
    std::vector<Token> out;
    for (;;) {
      SkipWhitespaceAndComments();
      if (AtEnd()) break;
      auto token = Next();
      if (!token.ok()) return token.status();
      out.push_back(std::move(token).ValueOrDie());
    }
    out.push_back(Make(TokenType::kEof, ""));
    return out;
  }

 private:
  bool AtEnd() const { return pos_ >= src_.size(); }
  char Peek(size_t ahead = 0) const {
    return pos_ + ahead < src_.size() ? src_[pos_ + ahead] : '\0';
  }
  char Advance() {
    char c = src_[pos_++];
    if (c == '\n') {
      ++line_;
      col_ = 1;
    } else {
      ++col_;
    }
    return c;
  }

  void SkipWhitespaceAndComments() {
    while (!AtEnd()) {
      char c = Peek();
      if (std::isspace(static_cast<unsigned char>(c))) {
        Advance();
      } else if (c == ';') {
        while (!AtEnd() && Peek() != '\n') Advance();
      } else {
        break;
      }
    }
  }

  Token Make(TokenType type, std::string text) const {
    Token t;
    t.type = type;
    t.text = std::move(text);
    t.line = token_line_;
    t.col = token_col_;
    return t;
  }

  Status Error(const std::string& msg) const {
    return Status::ParseError(
        StringPrintf("%d:%d: %s", token_line_, token_col_, msg.c_str()));
  }

  StatusOr<Token> Next() {
    token_line_ = line_;
    token_col_ = col_;
    char c = Peek();
    switch (c) {
      case '(':
        Advance();
        return Make(TokenType::kLParen, "");
      case ')':
        Advance();
        return Make(TokenType::kRParen, "");
      case '{':
        Advance();
        return Make(TokenType::kLBrace, "");
      case '}':
        Advance();
        return Make(TokenType::kRBrace, "");
      case '^':
        Advance();
        return LexSigilName(TokenType::kAttribute, "attribute");
      case ':':
        Advance();
        return LexSigilName(TokenType::kKeyword, "keyword");
      case '"':
        return LexString();
      case '=':
        Advance();
        return Make(TokenType::kSymbol, "=");
      case '>':
        Advance();
        if (Peek() == '=') {
          Advance();
          return Make(TokenType::kSymbol, ">=");
        }
        if (Peek() == '>') {
          Advance();
          return Make(TokenType::kRDisj, "");
        }
        return Make(TokenType::kSymbol, ">");
      case '<':
        return LexLessOrVariable();
      case '-':
        return LexMinus();
      case '+':
      case '*':
      case '/':
        Advance();
        return Make(TokenType::kSymbol, std::string(1, c));
      default:
        break;
    }
    if (std::isdigit(static_cast<unsigned char>(c))) return LexNumber(false);
    if (IsIdentStart(c)) return Make(TokenType::kSymbol, LexIdent());
    return Error(StringPrintf("unexpected character '%c'", c));
  }

  std::string LexIdent() {
    std::string text;
    while (!AtEnd() && IsIdentChar(Peek())) text += Advance();
    return text;
  }

  StatusOr<Token> LexSigilName(TokenType type, const char* what) {
    if (AtEnd() || !IsIdentStart(Peek())) {
      return Error(StringPrintf("expected %s name", what));
    }
    return Make(type, LexIdent());
  }

  StatusOr<Token> LexString() {
    Advance();  // opening quote
    std::string text;
    while (!AtEnd() && Peek() != '"') {
      char c = Advance();
      if (c == '\\' && !AtEnd()) {
        char esc = Advance();
        switch (esc) {
          case 'n':
            text += '\n';
            break;
          case 't':
            text += '\t';
            break;
          case '\\':
          case '"':
            text += esc;
            break;
          default:
            return Error(StringPrintf("unknown escape '\\%c'", esc));
        }
      } else {
        text += c;
      }
    }
    if (AtEnd()) return Error("unterminated string literal");
    Advance();  // closing quote
    return Make(TokenType::kString, std::move(text));
  }

  StatusOr<Token> LexLessOrVariable() {
    Advance();  // '<'
    if (Peek() == '<') {
      Advance();
      return Make(TokenType::kLDisj, "");
    }
    if (Peek() == '=') {
      Advance();
      return Make(TokenType::kSymbol, "<=");
    }
    if (Peek() == '>') {
      Advance();
      return Make(TokenType::kSymbol, "<>");
    }
    if (!IsIdentStart(Peek())) return Make(TokenType::kSymbol, "<");
    std::string name = LexIdent();
    if (Peek() != '>') {
      return Error("unterminated variable '<" + name + "'");
    }
    Advance();  // '>'
    return Make(TokenType::kVariable, std::move(name));
  }

  StatusOr<Token> LexMinus() {
    Advance();  // '-'
    if (Peek() == '-' && Peek(1) == '>') {
      Advance();
      Advance();
      return Make(TokenType::kArrow, "");
    }
    if (Peek() == '(') {
      return Make(TokenType::kNegation, "");
    }
    if (std::isdigit(static_cast<unsigned char>(Peek()))) {
      return LexNumber(true);
    }
    return Make(TokenType::kSymbol, "-");
  }

  StatusOr<Token> LexNumber(bool negative) {
    std::string digits = negative ? "-" : "";
    bool is_float = false;
    while (!AtEnd() &&
           (std::isdigit(static_cast<unsigned char>(Peek())) ||
            Peek() == '.')) {
      if (Peek() == '.') {
        // Allow a single decimal point followed by a digit.
        if (is_float || !std::isdigit(static_cast<unsigned char>(Peek(1)))) {
          break;
        }
        is_float = true;
      }
      digits += Advance();
    }
    Token t = Make(is_float ? TokenType::kFloat : TokenType::kInt, digits);
    if (is_float) {
      t.float_value = std::strtod(digits.c_str(), nullptr);
    } else {
      t.int_value = std::strtoll(digits.c_str(), nullptr, 10);
    }
    return t;
  }

  std::string_view src_;
  size_t pos_ = 0;
  int line_ = 1;
  int col_ = 1;
  int token_line_ = 1;
  int token_col_ = 1;
};

}  // namespace

StatusOr<std::vector<Token>> Lex(std::string_view source) {
  return LexerImpl(source).Run();
}

}  // namespace dbps
