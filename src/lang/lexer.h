// Lexer for the dbps rule language.

#ifndef DBPS_LANG_LEXER_H_
#define DBPS_LANG_LEXER_H_

#include <string_view>
#include <vector>

#include "lang/token.h"
#include "util/statusor.h"

namespace dbps {

/// \brief Lexes `source` into tokens (with a trailing kEof).
///
/// Comments run from ';' to end of line. Disambiguation rules:
///   -->        arrow
///   -( ... )   negated condition element
///   -5, -1.5   negative numeric literals
///   -          the subtraction operator symbol otherwise
///   <name>     variable
///   <, <=, <>  comparison operators
StatusOr<std::vector<Token>> Lex(std::string_view source);

}  // namespace dbps

#endif  // DBPS_LANG_LEXER_H_
