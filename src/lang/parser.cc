#include "lang/parser.h"

#include "lang/lexer.h"
#include "util/string_util.h"

namespace dbps {

namespace {

class ParserImpl {
 public:
  explicit ParserImpl(std::vector<Token> tokens)
      : tokens_(std::move(tokens)) {}

  StatusOr<AstProgram> Run() {
    AstProgram program;
    while (!Check(TokenType::kEof)) {
      DBPS_RETURN_NOT_OK(Expect(TokenType::kLParen));
      DBPS_ASSIGN_OR_RETURN(Token head, ExpectSymbol());
      if (head.text == "relation") {
        DBPS_ASSIGN_OR_RETURN(AstRelationDecl decl, ParseRelationBody(head));
        program.relations.push_back(std::move(decl));
      } else if (head.text == "rule") {
        DBPS_ASSIGN_OR_RETURN(AstRule rule, ParseRuleBody(head));
        program.rules.push_back(std::move(rule));
      } else if (head.text == "make") {
        DBPS_ASSIGN_OR_RETURN(AstMakeAction fact, ParseMakeBody(head));
        program.facts.push_back(std::move(fact));
      } else {
        return Error(head, "expected 'relation', 'rule', or 'make'");
      }
    }
    return program;
  }

 private:
  const Token& Peek() const { return tokens_[pos_]; }
  const Token& Advance() { return tokens_[pos_++]; }
  bool Check(TokenType type) const { return Peek().type == type; }

  bool Match(TokenType type) {
    if (!Check(type)) return false;
    Advance();
    return true;
  }

  static Status Error(const Token& token, const std::string& msg) {
    return Status::ParseError(StringPrintf("%d:%d: %s (found %s)",
                                           token.line, token.col,
                                           msg.c_str(),
                                           token.ToString().c_str()));
  }

  Status Expect(TokenType type) {
    if (Check(type)) {
      Advance();
      return Status::OK();
    }
    return Error(Peek(), std::string("expected ") + TokenTypeToString(type));
  }

  StatusOr<Token> ExpectSymbol() {
    if (!Check(TokenType::kSymbol)) {
      return Error(Peek(), "expected a symbol");
    }
    return Advance();
  }

  StatusOr<Token> ExpectInt() {
    if (!Check(TokenType::kInt)) {
      return Error(Peek(), "expected an integer");
    }
    return Advance();
  }

  static SourcePos Pos(const Token& t) { return SourcePos{t.line, t.col}; }

  // ('relation' already consumed) NAME attr-decl* ')'
  StatusOr<AstRelationDecl> ParseRelationBody(const Token& head) {
    AstRelationDecl decl;
    decl.pos = Pos(head);
    DBPS_ASSIGN_OR_RETURN(Token name, ExpectSymbol());
    decl.name = name.text;
    while (Match(TokenType::kLParen)) {
      DBPS_ASSIGN_OR_RETURN(Token attr, ExpectSymbol());
      AttrType type = AttrType::kAny;
      if (Check(TokenType::kSymbol)) {
        Token type_tok = Advance();
        DBPS_ASSIGN_OR_RETURN(type, ParseAttrType(type_tok));
      }
      DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
      decl.attrs.emplace_back(attr.text, type);
    }
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return decl;
  }

  static StatusOr<AttrType> ParseAttrType(const Token& token) {
    const std::string& t = token.text;
    if (t == "int") return AttrType::kInt;
    if (t == "float") return AttrType::kFloat;
    if (t == "symbol") return AttrType::kSymbol;
    if (t == "string") return AttrType::kString;
    if (t == "number") return AttrType::kNumber;
    if (t == "any") return AttrType::kAny;
    return Error(token, "unknown attribute type '" + t + "'");
  }

  // ('rule' consumed) NAME property* ce+ '-->' action* ')'
  StatusOr<AstRule> ParseRuleBody(const Token& head) {
    AstRule rule;
    rule.pos = Pos(head);
    DBPS_ASSIGN_OR_RETURN(Token name, ExpectSymbol());
    rule.name = name.text;
    while (Check(TokenType::kKeyword)) {
      Token keyword = Advance();
      DBPS_ASSIGN_OR_RETURN(Token value, ExpectInt());
      if (keyword.text == "priority") {
        rule.priority = static_cast<int>(value.int_value);
      } else if (keyword.text == "cost") {
        rule.cost_us = value.int_value;
      } else {
        return Error(keyword, "unknown rule property ':" + keyword.text + "'");
      }
    }
    while (Check(TokenType::kLParen) || Check(TokenType::kNegation)) {
      DBPS_ASSIGN_OR_RETURN(AstConditionElement ce, ParseConditionElement());
      rule.lhs.push_back(std::move(ce));
    }
    if (rule.lhs.empty()) {
      return Error(Peek(), "rule '" + rule.name +
                               "' needs at least one condition element");
    }
    DBPS_RETURN_NOT_OK(Expect(TokenType::kArrow));
    while (Check(TokenType::kLParen)) {
      DBPS_ASSIGN_OR_RETURN(AstAction action, ParseAction());
      rule.rhs.push_back(std::move(action));
    }
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return rule;
  }

  StatusOr<AstConditionElement> ParseConditionElement() {
    AstConditionElement ce;
    ce.pos = Pos(Peek());
    ce.negated = Match(TokenType::kNegation);
    DBPS_RETURN_NOT_OK(Expect(TokenType::kLParen));
    DBPS_ASSIGN_OR_RETURN(Token relation, ExpectSymbol());
    ce.relation = relation.text;
    while (Check(TokenType::kAttribute)) {
      Token attr = Advance();
      AstAttrTest attr_test;
      attr_test.attr = attr.text;
      attr_test.pos = Pos(attr);
      DBPS_RETURN_NOT_OK(ParseTerm(&attr_test));
      ce.attr_tests.push_back(std::move(attr_test));
    }
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return ce;
  }

  // term := constant | VARIABLE | disj | '{' test+ '}'
  Status ParseTerm(AstAttrTest* attr_test) {
    if (Check(TokenType::kLDisj)) {
      DBPS_ASSIGN_OR_RETURN(AstTest test, ParseDisjunction());
      attr_test->tests.push_back(std::move(test));
      return Status::OK();
    }
    if (Match(TokenType::kLBrace)) {
      while (!Check(TokenType::kRBrace)) {
        DBPS_ASSIGN_OR_RETURN(AstTest test, ParseTest());
        attr_test->tests.push_back(std::move(test));
      }
      if (attr_test->tests.empty()) {
        return Error(Peek(), "empty restriction '{}'");
      }
      return Expect(TokenType::kRBrace);
    }
    DBPS_ASSIGN_OR_RETURN(AstOperand operand, ParseOperand());
    AstTest test;
    test.operand = std::move(operand);
    attr_test->tests.push_back(std::move(test));
    return Status::OK();
  }

  // disj := '<<' constant+ '>>'
  StatusOr<AstTest> ParseDisjunction() {
    DBPS_RETURN_NOT_OK(Expect(TokenType::kLDisj));
    AstTest test;
    while (!Check(TokenType::kRDisj)) {
      DBPS_ASSIGN_OR_RETURN(AstOperand operand, ParseOperand());
      if (operand.kind != AstOperand::Kind::kConstant) {
        return Error(Peek(), "disjunctions may contain only constants");
      }
      test.one_of.push_back(std::move(operand.constant));
    }
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRDisj));
    if (test.one_of.empty()) {
      return Error(Peek(), "empty disjunction '<< >>'");
    }
    return test;
  }

  // test := PRED operand | constant | VARIABLE | disj
  StatusOr<AstTest> ParseTest() {
    if (Check(TokenType::kLDisj)) {
      return ParseDisjunction();
    }
    if (Check(TokenType::kSymbol)) {
      const std::string& text = Peek().text;
      TestPredicate pred;
      bool is_pred = true;
      if (text == "=") {
        pred = TestPredicate::kEq;
      } else if (text == "<>") {
        pred = TestPredicate::kNe;
      } else if (text == "<") {
        pred = TestPredicate::kLt;
      } else if (text == "<=") {
        pred = TestPredicate::kLe;
      } else if (text == ">") {
        pred = TestPredicate::kGt;
      } else if (text == ">=") {
        pred = TestPredicate::kGe;
      } else {
        is_pred = false;
        pred = TestPredicate::kEq;
      }
      if (is_pred) Advance();
      DBPS_ASSIGN_OR_RETURN(AstOperand operand, ParseOperand());
      AstTest test;
      test.pred = pred;
      test.operand = std::move(operand);
      return test;
    }
    DBPS_ASSIGN_OR_RETURN(AstOperand operand, ParseOperand());
    AstTest test;
    test.operand = std::move(operand);
    return test;
  }

  // operand := constant | VARIABLE
  StatusOr<AstOperand> ParseOperand() {
    AstOperand op;
    op.pos = Pos(Peek());
    switch (Peek().type) {
      case TokenType::kVariable:
        op.kind = AstOperand::Kind::kVariable;
        op.var_name = Advance().text;
        return op;
      case TokenType::kInt:
        op.constant = Value::Int(Advance().int_value);
        return op;
      case TokenType::kFloat:
        op.constant = Value::Float(Advance().float_value);
        return op;
      case TokenType::kString:
        op.constant = Value::String(Advance().text);
        return op;
      case TokenType::kSymbol: {
        Token t = Advance();
        op.constant = Value::Symbol(t.text);
        return op;
      }
      default:
        return Error(Peek(), "expected a constant or variable");
    }
  }

  StatusOr<AstAction> ParseAction() {
    DBPS_RETURN_NOT_OK(Expect(TokenType::kLParen));
    DBPS_ASSIGN_OR_RETURN(Token head, ExpectSymbol());
    if (head.text == "make") {
      DBPS_ASSIGN_OR_RETURN(AstMakeAction make, ParseMakeBody(head));
      return AstAction{std::move(make)};
    }
    if (head.text == "modify") {
      AstModifyAction modify;
      modify.pos = Pos(head);
      DBPS_ASSIGN_OR_RETURN(Token n, ExpectInt());
      modify.ce_number = static_cast<int>(n.int_value);
      DBPS_RETURN_NOT_OK(ParseAssigns(&modify.assigns));
      DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
      if (modify.assigns.empty()) {
        return Error(head, "modify needs at least one ^attr expression");
      }
      return AstAction{std::move(modify)};
    }
    if (head.text == "remove") {
      AstRemoveAction remove;
      remove.pos = Pos(head);
      DBPS_ASSIGN_OR_RETURN(Token n, ExpectInt());
      remove.ce_number = static_cast<int>(n.int_value);
      DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return AstAction{std::move(remove)};
    }
    if (head.text == "halt") {
      AstHaltAction halt;
      halt.pos = Pos(head);
      DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return AstAction{std::move(halt)};
    }
    return Error(head, "expected 'make', 'modify', 'remove', or 'halt'");
  }

  // ('make' consumed) NAME assign* ')'
  StatusOr<AstMakeAction> ParseMakeBody(const Token& head) {
    AstMakeAction make;
    make.pos = Pos(head);
    DBPS_ASSIGN_OR_RETURN(Token relation, ExpectSymbol());
    make.relation = relation.text;
    DBPS_RETURN_NOT_OK(ParseAssigns(&make.assigns));
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return make;
  }

  Status ParseAssigns(std::vector<AstAssign>* assigns) {
    while (Check(TokenType::kAttribute)) {
      Token attr = Advance();
      AstAssign assign;
      assign.attr = attr.text;
      assign.pos = Pos(attr);
      DBPS_ASSIGN_OR_RETURN(AstExprPtr expr, ParseExpr());
      assign.expr = std::move(expr);
      assigns->push_back(std::move(assign));
    }
    return Status::OK();
  }

  // expr := constant | VARIABLE | '(' OP expr expr ')'
  StatusOr<AstExprPtr> ParseExpr() {
    auto expr = std::make_unique<AstExpr>();
    expr->pos = Pos(Peek());
    if (Match(TokenType::kLParen)) {
      DBPS_ASSIGN_OR_RETURN(Token op, ExpectSymbol());
      expr->kind = AstExpr::Kind::kBinary;
      if (op.text == "+") {
        expr->op = BinOp::kAdd;
      } else if (op.text == "-") {
        expr->op = BinOp::kSub;
      } else if (op.text == "*") {
        expr->op = BinOp::kMul;
      } else if (op.text == "/") {
        expr->op = BinOp::kDiv;
      } else if (op.text == "mod") {
        expr->op = BinOp::kMod;
      } else {
        return Error(op, "expected an arithmetic operator");
      }
      DBPS_ASSIGN_OR_RETURN(expr->lhs, ParseExpr());
      DBPS_ASSIGN_OR_RETURN(expr->rhs, ParseExpr());
      DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
      return expr;
    }
    if (Check(TokenType::kVariable)) {
      expr->kind = AstExpr::Kind::kVariable;
      expr->var_name = Advance().text;
      return expr;
    }
    DBPS_ASSIGN_OR_RETURN(AstOperand operand, ParseOperand());
    if (operand.kind == AstOperand::Kind::kVariable) {
      expr->kind = AstExpr::Kind::kVariable;
      expr->var_name = std::move(operand.var_name);
    } else {
      expr->kind = AstExpr::Kind::kConstant;
      expr->constant = std::move(operand.constant);
    }
    return expr;
  }

  std::vector<Token> tokens_;
  size_t pos_ = 0;
};

}  // namespace

StatusOr<AstProgram> Parse(std::string_view source) {
  DBPS_ASSIGN_OR_RETURN(std::vector<Token> tokens, Lex(source));
  return ParserImpl(std::move(tokens)).Run();
}

}  // namespace dbps
