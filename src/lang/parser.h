// Recursive-descent parser: token stream -> AstProgram.

#ifndef DBPS_LANG_PARSER_H_
#define DBPS_LANG_PARSER_H_

#include <string_view>

#include "lang/ast.h"
#include "util/statusor.h"

namespace dbps {

/// \brief Parses a full program (relations, rules, facts).
StatusOr<AstProgram> Parse(std::string_view source);

}  // namespace dbps

#endif  // DBPS_LANG_PARSER_H_
