#include "lang/printer.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <map>
#include <tuple>
#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

namespace {

bool IsValidIdentifier(const std::string& name) {
  if (name.empty()) return false;
  char first = name[0];
  if (!std::isalpha(static_cast<unsigned char>(first)) && first != '_' &&
      first != '*' && first != '?') {
    return false;
  }
  for (char c : name) {
    if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' &&
        c != '-' && c != '*' && c != '?' && c != '.') {
      return false;
    }
  }
  return true;
}

std::string EscapeString(const std::string& s) {
  std::string out = "\"";
  for (char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      default:
        out += c;
    }
  }
  return out + "\"";
}

/// Key of a variable binding site.
struct BindingSite {
  bool negated_local = false;  // true: (condition index, field) in a
                               // negated CE; false: (positive ce, field)
  size_t ce = 0;
  size_t field = 0;
  bool operator<(const BindingSite& other) const {
    return std::tie(negated_local, ce, field) <
           std::tie(other.negated_local, other.ce, other.field);
  }
};

class RulePrinter {
 public:
  RulePrinter(const Rule& rule, const Catalog& catalog)
      : rule_(rule), catalog_(catalog) {}

  StatusOr<std::string> Run() {
    DBPS_RETURN_NOT_OK(CollectBindings());
    std::ostringstream out;
    out << "(rule " << rule_.name();
    if (rule_.priority() != 0) out << " :priority " << rule_.priority();
    if (rule_.cost_us() != 0) out << " :cost " << rule_.cost_us();
    size_t positive_seen = 0;
    for (size_t i = 0; i < rule_.conditions().size(); ++i) {
      const Condition& cond = rule_.conditions()[i];
      DBPS_ASSIGN_OR_RETURN(
          std::string ce,
          ConditionToSource(cond, i,
                            cond.negated ? positive_seen : positive_seen));
      if (!cond.negated) ++positive_seen;
      out << "\n  " << ce;
    }
    out << "\n  -->";
    for (const auto& action : rule_.actions()) {
      DBPS_ASSIGN_OR_RETURN(std::string rendered, ActionToSource(action));
      out << "\n  " << rendered;
    }
    out << ")\n";
    return out.str();
  }

 private:
  /// Registers (and names) a binding site.
  void Need(BindingSite site) {
    if (vars_.count(site) == 0) {
      vars_.emplace(site, "v" + std::to_string(vars_.size()));
    }
  }

  void CollectExprBindings(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kConstant:
        return;
      case Expr::Kind::kBinding:
        Need(BindingSite{false, expr.ce, expr.field});
        return;
      case Expr::Kind::kBinary:
        CollectExprBindings(*expr.lhs);
        CollectExprBindings(*expr.rhs);
        return;
    }
  }

  Status CollectBindings() {
    size_t positive_seen = 0;
    for (size_t i = 0; i < rule_.conditions().size(); ++i) {
      const Condition& cond = rule_.conditions()[i];
      for (const auto& test : cond.join_tests) {
        Need(BindingSite{false, test.other_ce, test.other_field});
      }
      for (const auto& test : cond.intra_tests) {
        if (cond.negated) {
          Need(BindingSite{true, i, test.other_field});
        } else {
          Need(BindingSite{false, positive_seen, test.other_field});
        }
      }
      if (!cond.negated) ++positive_seen;
    }
    for (const auto& action : rule_.actions()) {
      if (const auto* make = std::get_if<MakeAction>(&action)) {
        for (const auto& expr : make->values) CollectExprBindings(expr);
      } else if (const auto* modify = std::get_if<ModifyAction>(&action)) {
        for (const auto& [field, expr] : modify->assigns) {
          (void)field;
          CollectExprBindings(expr);
        }
      }
    }
    return Status::OK();
  }

  /// Variable spelling for a site; empty if the site is not needed.
  std::string VarFor(bool negated_local, size_t ce, size_t field) const {
    auto it = vars_.find(BindingSite{negated_local, ce, field});
    return it == vars_.end() ? "" : it->second;
  }

  StatusOr<std::string> ConditionToSource(const Condition& cond,
                                          size_t cond_index,
                                          size_t positive_index) {
    DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                          catalog_.GetRelation(cond.relation));

    // Gather per-field parts: the binding variable (if any) plus tests.
    struct FieldParts {
      std::string binding;            // "<v3>" or empty
      std::vector<std::string> tests; // "pred operand" fragments
      bool references_others = false; // has intra/join operands
    };
    std::map<size_t, FieldParts> fields;

    auto var_of_site = [&](bool local, size_t ce, size_t field) {
      std::string name = VarFor(local, ce, field);
      DBPS_CHECK(!name.empty());
      return "<" + name + ">";
    };

    for (const auto& test : cond.constant_tests) {
      DBPS_ASSIGN_OR_RETURN(std::string constant,
                            ValueToSource(test.value));
      fields[test.field].tests.push_back(
          std::string(TestPredicateToString(test.pred)) + " " + constant);
    }
    for (const auto& test : cond.member_tests) {
      std::string disj = "<<";
      for (const auto& value : test.values) {
        DBPS_ASSIGN_OR_RETURN(std::string constant, ValueToSource(value));
        disj += " " + constant;
      }
      disj += " >>";
      fields[test.field].tests.push_back(disj);
    }
    for (const auto& test : cond.intra_tests) {
      std::string other =
          cond.negated ? var_of_site(true, cond_index, test.other_field)
                       : var_of_site(false, positive_index,
                                     test.other_field);
      fields[test.field].tests.push_back(
          std::string(TestPredicateToString(test.pred)) + " " + other);
      fields[test.field].references_others = true;
    }
    for (const auto& test : cond.join_tests) {
      fields[test.field].tests.push_back(
          std::string(TestPredicateToString(test.pred)) + " " +
          var_of_site(false, test.other_ce, test.other_field));
      fields[test.field].references_others = true;
    }
    // Binding sites owned by this CE.
    for (size_t field = 0; field < schema->arity(); ++field) {
      std::string name = cond.negated
                             ? VarFor(true, cond_index, field)
                             : VarFor(false, positive_index, field);
      if (!name.empty()) fields[field].binding = "<" + name + ">";
    }

    // Emit binding-only-or-binding-first fields before fields whose tests
    // reference other fields of this CE, so every variable is bound
    // before it is used (the compiler binds at first occurrence).
    std::vector<size_t> order;
    for (const auto& [field, parts] : fields) {
      if (!parts.references_others) order.push_back(field);
    }
    for (const auto& [field, parts] : fields) {
      if (parts.references_others) order.push_back(field);
    }

    std::ostringstream out;
    if (cond.negated) out << "-";
    out << "(" << SymName(cond.relation);
    for (size_t field : order) {
      const FieldParts& parts = fields[field];
      out << " ^" << SymName(schema->attrs()[field].name) << " ";
      const size_t piece_count =
          parts.tests.size() + (parts.binding.empty() ? 0 : 1);
      if (piece_count == 1 && !parts.binding.empty()) {
        out << parts.binding;  // bare variable
      } else if (piece_count == 1 && parts.tests.size() == 1) {
        out << "{ " << parts.tests[0] << " }";
      } else {
        out << "{ ";
        if (!parts.binding.empty()) out << parts.binding << " ";
        for (const auto& test : parts.tests) out << test << " ";
        out << "}";
      }
    }
    out << ")";
    return out.str();
  }

  StatusOr<std::string> ExprToSource(const Expr& expr) {
    switch (expr.kind) {
      case Expr::Kind::kConstant:
        return ValueToSource(expr.constant);
      case Expr::Kind::kBinding:
        return "<" + VarFor(false, expr.ce, expr.field) + ">";
      case Expr::Kind::kBinary: {
        const char* op = "+";
        switch (expr.op) {
          case BinOp::kAdd:
            op = "+";
            break;
          case BinOp::kSub:
            op = "-";
            break;
          case BinOp::kMul:
            op = "*";
            break;
          case BinOp::kDiv:
            op = "/";
            break;
          case BinOp::kMod:
            op = "mod";
            break;
        }
        DBPS_ASSIGN_OR_RETURN(std::string lhs, ExprToSource(*expr.lhs));
        DBPS_ASSIGN_OR_RETURN(std::string rhs, ExprToSource(*expr.rhs));
        return StringPrintf("(%s %s %s)", op, lhs.c_str(), rhs.c_str());
      }
    }
    return Status::Internal("unreachable Expr kind");
  }

  StatusOr<std::string> ActionToSource(const Action& action) {
    if (const auto* make = std::get_if<MakeAction>(&action)) {
      DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                            catalog_.GetRelation(make->relation));
      std::ostringstream out;
      out << "(make " << SymName(make->relation);
      for (size_t field = 0; field < make->values.size(); ++field) {
        const Expr& expr = make->values[field];
        // Skip fields that default to nil anyway.
        if (expr.kind == Expr::Kind::kConstant && expr.constant.is_nil()) {
          continue;
        }
        DBPS_ASSIGN_OR_RETURN(std::string rendered, ExprToSource(expr));
        out << " ^" << SymName(schema->attrs()[field].name) << " "
            << rendered;
      }
      out << ")";
      return out.str();
    }
    if (const auto* modify = std::get_if<ModifyAction>(&action)) {
      size_t cond_index = rule_.PositiveConditionIndex(modify->ce);
      DBPS_ASSIGN_OR_RETURN(
          const RelationSchema* schema,
          catalog_.GetRelation(rule_.conditions()[cond_index].relation));
      std::ostringstream out;
      out << "(modify " << modify->ce + 1;
      for (const auto& [field, expr] : modify->assigns) {
        DBPS_ASSIGN_OR_RETURN(std::string rendered, ExprToSource(expr));
        out << " ^" << SymName(schema->attrs()[field].name) << " "
            << rendered;
      }
      out << ")";
      return out.str();
    }
    if (const auto* remove = std::get_if<RemoveAction>(&action)) {
      return StringPrintf("(remove %zu)", remove->ce + 1);
    }
    return std::string("(halt)");
  }

  const Rule& rule_;
  const Catalog& catalog_;
  std::map<BindingSite, std::string> vars_;
};

}  // namespace

StatusOr<std::string> ValueToSource(const Value& value) {
  switch (value.type()) {
    case ValueType::kNil:
      return std::string("nil");
    case ValueType::kInt:
      return std::to_string(value.AsInt());
    case ValueType::kFloat: {
      double d = value.AsFloat();
      if (!std::isfinite(d)) {
        return Status::Unimplemented(
            "non-finite float has no source form");
      }
      std::string out = StringPrintf("%.17g", d);
      if (out.find('e') != std::string::npos ||
          out.find('E') != std::string::npos) {
        return Status::Unimplemented(
            "float " + out + " needs exponent notation, which the rule "
            "language does not support");
      }
      if (out.find('.') == std::string::npos) out += ".0";
      return out;
    }
    case ValueType::kSymbol: {
      std::string name = SymName(value.AsSymbol());
      if (!IsValidIdentifier(name)) {
        return Status::Unimplemented("symbol '" + name +
                                     "' is not a printable identifier");
      }
      return name;
    }
    case ValueType::kString:
      return EscapeString(value.AsString());
  }
  return Status::Internal("unreachable ValueType");
}

std::string SchemaToSource(const RelationSchema& schema) {
  std::string out = "(relation " + SymName(schema.name());
  for (const auto& attr : schema.attrs()) {
    out += " (" + SymName(attr.name) + " " + AttrTypeToString(attr.type) +
           ")";
  }
  return out + ")\n";
}

StatusOr<std::string> RuleToSource(const Rule& rule,
                                   const Catalog& catalog) {
  return RulePrinter(rule, catalog).Run();
}

StatusOr<std::string> ProgramToSource(const Catalog& catalog,
                                      const RuleSet& rules) {
  std::string out;
  for (SymbolId relation : catalog.relation_names()) {
    DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                          catalog.GetRelation(relation));
    out += SchemaToSource(*schema);
  }
  out += "\n";
  for (const auto& rule : rules.rules()) {
    DBPS_ASSIGN_OR_RETURN(std::string rendered,
                          RuleToSource(*rule, catalog));
    out += rendered + "\n";
  }
  return out;
}

StatusOr<std::string> SnapshotToSource(const WorkingMemory& wm) {
  std::string out;
  for (SymbolId relation : wm.catalog().relation_names()) {
    DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                          wm.catalog().GetRelation(relation));
    out += SchemaToSource(*schema);
  }
  out += "\n";
  for (SymbolId relation : wm.catalog().relation_names()) {
    DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                          wm.catalog().GetRelation(relation));
    for (const WmePtr& wme : wm.Scan(relation)) {
      out += "(make " + SymName(relation);
      for (size_t field = 0; field < wme->arity(); ++field) {
        if (wme->value(field).is_nil()) continue;  // nil is the default
        DBPS_ASSIGN_OR_RETURN(std::string value,
                              ValueToSource(wme->value(field)));
        out += " ^" + SymName(schema->attrs()[field].name) + " " + value;
      }
      out += ")\n";
    }
  }
  return out;
}

StatusOr<std::string> CheckpointToSource(const WorkingMemory& wm,
                                         uint64_t seq) {
  std::string out = StringPrintf(
      "(checkpoint (seq %llu) (csn %llu) (next-id %llu) (next-tag %llu))\n",
      (unsigned long long)seq, (unsigned long long)wm.csn(),
      (unsigned long long)wm.next_id(), (unsigned long long)wm.next_tag());
  for (SymbolId relation : wm.catalog().relation_names()) {
    DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                          wm.catalog().GetRelation(relation));
    out += SchemaToSource(*schema);
  }
  for (SymbolId relation : wm.catalog().relation_names()) {
    std::vector<WmePtr> wmes = wm.Scan(relation);
    std::sort(wmes.begin(), wmes.end(),
              [](const WmePtr& a, const WmePtr& b) {
                return a->id() < b->id();
              });
    for (const WmePtr& wme : wmes) {
      out += StringPrintf("(wme %llu %llu %s", (unsigned long long)wme->id(),
                          (unsigned long long)wme->tag(),
                          SymName(relation).c_str());
      for (size_t field = 0; field < wme->arity(); ++field) {
        DBPS_ASSIGN_OR_RETURN(std::string value,
                              ValueToSource(wme->value(field)));
        out += " " + value;
      }
      out += ")\n";
    }
  }
  return out;
}

}  // namespace dbps
