// Printing compiled artifacts back to rule-language source.
//
// Inverse of the compiler: a compiled rule (positions, no names) is
// rendered as surface syntax that, when re-parsed and re-compiled,
// yields a structurally equivalent rule (same binding sites, same test
// sets up to ordering, same actions). Used for persistence
// (SnapshotToSource), tooling, and round-trip property tests.

#ifndef DBPS_LANG_PRINTER_H_
#define DBPS_LANG_PRINTER_H_

#include <string>

#include "rules/rule.h"
#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

/// Renders one value as a source literal. Fails (kUnimplemented) for
/// values the grammar cannot express: non-finite floats, or symbols whose
/// spelling is not a valid identifier.
StatusOr<std::string> ValueToSource(const Value& value);

/// Renders a relation declaration.
std::string SchemaToSource(const RelationSchema& schema);

/// Renders one compiled rule; `catalog` recovers attribute names.
StatusOr<std::string> RuleToSource(const Rule& rule, const Catalog& catalog);

/// Renders a full program: every relation in `catalog` plus every rule.
StatusOr<std::string> ProgramToSource(const Catalog& catalog,
                                      const RuleSet& rules);

/// Renders the working memory as a loadable program: relation
/// declarations followed by one (make ...) fact per live WME. Loading the
/// result into a fresh WorkingMemory reproduces the same tuples (with
/// fresh ids/time tags — persistence preserves content, not identity).
StatusOr<std::string> SnapshotToSource(const WorkingMemory& wm);

/// Renders the working memory as a recovery checkpoint — unlike
/// SnapshotToSource this preserves WME ids and time tags (journal deltas
/// after the checkpoint reference both) plus the id/tag/CSN counters:
///
///   (checkpoint (seq S) (csn C) (next-id I) (next-tag T))
///   (relation name (attr type)...)        ; one per declared relation
///   (wme ID TAG relation value...)        ; one per live WME, id order
///
/// `seq` is the replay fence: the checkpoint captures the state after
/// every commit with engine seq < S. Values use ValueToSource, so the
/// printer limits (finite floats, identifier symbols) apply; nil fields
/// print as `nil`. Output is deterministic (catalog order, id order) so
/// identical states render identical checkpoints.
StatusOr<std::string> CheckpointToSource(const WorkingMemory& wm,
                                         uint64_t seq);

}  // namespace dbps

#endif  // DBPS_LANG_PRINTER_H_
