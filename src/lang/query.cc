#include "lang/query.h"

#include <algorithm>
#include <string>

#include "lang/compiler.h"
#include "match/matcher.h"

namespace dbps {

namespace {

// Wraps the LHS into a throwaway rule so the ordinary compile pipeline
// (name resolution, variable binding, type checks) applies verbatim.
StatusOr<CompiledProgram> CompileLhs(const WorkingMemory& wm,
                                     std::string_view lhs_source) {
  std::string source = "(rule __query__\n";
  source += lhs_source;
  source += "\n--> (remove 1))";
  return CompileProgram(source, &wm.catalog());
}

}  // namespace

StatusOr<std::vector<QueryRow>> ExecuteQuery(const WorkingMemory& wm,
                                             std::string_view lhs_source) {
  DBPS_ASSIGN_OR_RETURN(CompiledProgram program, CompileLhs(wm, lhs_source));

  auto matcher = CreateMatcher(MatcherKind::kNaive);
  DBPS_RETURN_NOT_OK(matcher->Initialize(program.rules, wm));

  std::vector<QueryRow> rows;
  for (const auto& inst : matcher->conflict_set().Snapshot()) {
    rows.push_back(inst->matched());
  }
  std::sort(rows.begin(), rows.end(),
            [](const QueryRow& a, const QueryRow& b) {
              for (size_t i = 0; i < a.size() && i < b.size(); ++i) {
                if (a[i]->id() != b[i]->id()) return a[i]->id() < b[i]->id();
              }
              return a.size() < b.size();
            });
  return rows;
}

StatusOr<size_t> CountQuery(const WorkingMemory& wm,
                            std::string_view lhs_source) {
  DBPS_ASSIGN_OR_RETURN(std::vector<QueryRow> rows,
                        ExecuteQuery(wm, lhs_source));
  return rows.size();
}

StatusOr<std::vector<SymbolId>> QueryRelations(const WorkingMemory& wm,
                                               std::string_view lhs_source) {
  DBPS_ASSIGN_OR_RETURN(CompiledProgram program, CompileLhs(wm, lhs_source));
  std::vector<SymbolId> relations;
  for (const auto& rule : program.rules->rules()) {
    for (const auto& cond : rule->conditions()) {
      if (std::find(relations.begin(), relations.end(), cond.relation) ==
          relations.end()) {
        relations.push_back(cond.relation);
      }
    }
  }
  return relations;
}

}  // namespace dbps
