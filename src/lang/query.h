// Ad-hoc queries: evaluate a rule-language LHS against working memory
// without defining a rule — the "database" read path of a database
// production system.
//
//   auto rows = ExecuteQuery(wm,
//       "(box ^at <w> ^weight { > 10 }) -(blocked ^at <w>)");
//   // each row holds one WmePtr per positive condition element
//
// Queries use exactly the condition-element grammar of rules (variables,
// predicates, disjunctions, negation), are type-checked against the
// catalog, and are evaluated with the same match machinery the engines
// use.

#ifndef DBPS_LANG_QUERY_H_
#define DBPS_LANG_QUERY_H_

#include <string_view>
#include <vector>

#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

/// \brief One query answer: the WMEs matched by the positive CEs, in CE
/// order.
using QueryRow = std::vector<WmePtr>;

/// Evaluates `lhs_source` (one or more condition elements) against `wm`.
/// Rows come back in a deterministic order (sorted by matched WME ids).
StatusOr<std::vector<QueryRow>> ExecuteQuery(const WorkingMemory& wm,
                                             std::string_view lhs_source);

/// Convenience: number of matches without materializing rows... (it does
/// materialize internally; prefer ExecuteQuery if you need the rows too).
StatusOr<size_t> CountQuery(const WorkingMemory& wm,
                            std::string_view lhs_source);

/// The relations `lhs_source` touches (positive and negated CEs alike),
/// deduplicated, in first-mention order. Sessions use this to take
/// relation-level Rc locks before running a repeatable-read query.
StatusOr<std::vector<SymbolId>> QueryRelations(const WorkingMemory& wm,
                                               std::string_view lhs_source);

}  // namespace dbps

#endif  // DBPS_LANG_QUERY_H_
