// Tokens of the dbps rule language (an OPS5-flavoured s-expression syntax).

#ifndef DBPS_LANG_TOKEN_H_
#define DBPS_LANG_TOKEN_H_

#include <cstdint>
#include <string>

namespace dbps {

enum class TokenType : uint8_t {
  kLParen,     // (
  kRParen,     // )
  kLBrace,     // {
  kRBrace,     // }
  kNegation,   // '-' immediately before '('
  kArrow,      // -->
  kLDisj,      // <<
  kRDisj,      // >>
  kAttribute,  // ^name
  kVariable,   // <name>
  kKeyword,    // :name
  kSymbol,     // identifier or operator symbol (+ - * / mod = <> < <= > >=)
  kInt,        // 42, -7
  kFloat,      // 3.5, -0.25
  kString,     // "text"
  kEof,
};

const char* TokenTypeToString(TokenType type);

/// \brief One lexed token with its source position (1-based).
struct Token {
  TokenType type;
  std::string text;   // spelling without sigils: ^at -> "at", <x> -> "x"
  int64_t int_value = 0;
  double float_value = 0.0;
  int line = 0;
  int col = 0;

  std::string ToString() const;
};

}  // namespace dbps

#endif  // DBPS_LANG_TOKEN_H_
