#include "lang/wal.h"

#include <fcntl.h>
#include <unistd.h>

#include <cerrno>
#include <utility>

#include "util/crc32.h"
#include "util/string_util.h"

namespace dbps {

namespace {

void PutLE32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutLE64(std::string* out, uint64_t v) {
  PutLE32(out, static_cast<uint32_t>(v));
  PutLE32(out, static_cast<uint32_t>(v >> 32));
}

uint32_t LoadLE32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t LoadLE64(const char* p) {
  return static_cast<uint64_t>(LoadLE32(p)) |
         static_cast<uint64_t>(LoadLE32(p + 4)) << 32;
}

bool KnownRecordType(uint8_t value) {
  return value == static_cast<uint8_t>(WalRecordType::kDelta) ||
         value == static_cast<uint8_t>(WalRecordType::kCheckpoint);
}

}  // namespace

const char* WalRecordTypeToString(WalRecordType type) {
  switch (type) {
    case WalRecordType::kDelta: return "delta";
    case WalRecordType::kCheckpoint: return "checkpoint";
  }
  return "?";
}

const char* WalTailToString(WalTail tail) {
  switch (tail) {
    case WalTail::kClean: return "clean";
    case WalTail::kTorn: return "torn";
    case WalTail::kCorrupt: return "corrupt";
  }
  return "?";
}

void EncodeWalRecord(const WalRecord& record, std::string* out) {
  // Build seq+type+payload first so the crc covers the final bytes.
  std::string body;
  body.reserve(9 + record.payload.size());
  PutLE64(&body, record.seq);
  body.push_back(static_cast<char>(record.type));
  body.append(record.payload);
  PutLE32(out, static_cast<uint32_t>(body.size()));
  PutLE32(out, Crc32(body));
  out->append(body);
}

StatusOr<WalRecord> DecodeWalRecord(std::string_view buf, size_t offset,
                                    size_t* consumed) {
  const size_t remaining = buf.size() - offset;
  if (remaining < 8) {
    return Status::ResourceExhausted("torn frame header");
  }
  const uint32_t len = LoadLE32(buf.data() + offset);
  const uint32_t crc = LoadLE32(buf.data() + offset + 4);
  if (len < 9 || len - 9 > kMaxWalPayload) {
    return Status::ParseError(StringPrintf("impossible frame length %u",
                                           (unsigned)len));
  }
  if (remaining - 8 < len) {
    return Status::ResourceExhausted("torn frame body");
  }
  const char* body = buf.data() + offset + 8;
  if (Crc32Update(0, body, len) != crc) {
    return Status::ParseError("frame checksum mismatch");
  }
  const uint8_t type = static_cast<uint8_t>(body[8]);
  if (!KnownRecordType(type)) {
    return Status::ParseError(StringPrintf("unknown record type %u",
                                           (unsigned)type));
  }
  WalRecord record;
  record.seq = LoadLE64(body);
  record.type = static_cast<WalRecordType>(type);
  record.payload.assign(body + 9, len - 9);
  *consumed = 8 + static_cast<size_t>(len);
  return record;
}

WalScan ScanWalBuffer(std::string_view buf) {
  WalScan scan;
  size_t offset = 0;
  bool have_next_seq = false;
  uint64_t next_seq = 0;  // seq the next delta record must carry
  while (offset < buf.size()) {
    size_t consumed = 0;
    auto record_or = DecodeWalRecord(buf, offset, &consumed);
    if (!record_or.ok()) {
      scan.tail = record_or.status().IsResourceExhausted() ? WalTail::kTorn
                                                           : WalTail::kCorrupt;
      scan.tail_detail = record_or.status().message();
      break;
    }
    WalRecord record = std::move(record_or).ValueOrDie();
    if (record.type == WalRecordType::kDelta) {
      if (have_next_seq && record.seq != next_seq) {
        scan.tail = WalTail::kCorrupt;
        scan.tail_detail = StringPrintf(
            "sequence break: delta record carries seq %llu, expected %llu",
            (unsigned long long)record.seq, (unsigned long long)next_seq);
        break;
      }
      next_seq = record.seq + 1;
      have_next_seq = true;
    } else {  // checkpoint: fences exactly the commits already scanned
      if (have_next_seq && record.seq != next_seq) {
        scan.tail = WalTail::kCorrupt;
        scan.tail_detail = StringPrintf(
            "checkpoint fence %llu does not match next commit seq %llu",
            (unsigned long long)record.seq, (unsigned long long)next_seq);
        break;
      }
      next_seq = record.seq;
      have_next_seq = true;
    }
    scan.records.push_back(std::move(record));
    offset += consumed;
  }
  scan.valid_bytes = offset;
  scan.truncated_bytes = buf.size() - offset;
  return scan;
}

WalIterator::WalIterator(std::string bytes) : bytes_(std::move(bytes)) {
  scan_ = ScanWalBuffer(bytes_);
}

StatusOr<WalIterator> WalIterator::OpenFile(const std::string& path) {
  const int fd = ::open(path.c_str(), O_RDONLY | O_CLOEXEC);
  if (fd < 0) {
    if (errno == ENOENT) {
      WalIterator it;
      it.file_missing_ = true;
      return it;
    }
    return Status::Unavailable("cannot open journal '" + path + "'");
  }
  std::string bytes;
  char buf[1 << 16];
  for (;;) {
    const ssize_t n = ::read(fd, buf, sizeof(buf));
    if (n < 0) {
      ::close(fd);
      return Status::Unavailable("cannot read journal '" + path + "'");
    }
    if (n == 0) break;
    bytes.append(buf, static_cast<size_t>(n));
  }
  ::close(fd);
  return WalIterator(std::move(bytes));
}

bool WalIterator::Next(WalRecord* record) {
  if (pos_ >= scan_.records.size()) return false;
  *record = scan_.records[pos_++];
  return true;
}

}  // namespace dbps
