// Framed, checksummed on-disk records for the durable journal (the WAL).
//
// The in-memory journal stays what it always was — one text line per
// committed delta (lang/journal.h) — but bare text on disk cannot tell a
// crash-torn tail from a corrupt record from a clean end. The WAL wraps
// each line (and each checkpoint, see printer.h CheckpointToSource) in a
// self-describing frame:
//
//   [u32 len][u32 crc32][u64 seq][u8 type][payload ...]
//
// All integers little-endian. `len` counts everything after the crc
// field (seq + type + payload, i.e. 9 + payload bytes); `crc32`
// (util/crc32.h) covers exactly those `len` bytes. `seq` is the engine
// commit sequence for kDelta records — dense, so a reader can prove no
// record in the durable prefix is missing — and the replay *fence* for
// kCheckpoint records: a checkpoint at seq S captures the database state
// after every commit with seq < S, so replay resumes at S.
//
// Scanning stops at the first frame that does not validate and classifies
// the tail:
//   * torn    — the buffer ends inside a frame (length or payload cut
//               short). This is the expected crash shape: the process
//               died mid-write. Recovery truncates it silently.
//   * corrupt — a complete frame with a bad checksum, an impossible
//               length, an unknown type, or a sequence break. Also
//               truncated (the log is unusable past it), but reported
//               distinctly because it means bit rot or a bug, not a
//               crash.
// Everything before the first invalid byte is trusted — that is the
// durable prefix the ack protocol promised.

#ifndef DBPS_LANG_WAL_H_
#define DBPS_LANG_WAL_H_

#include <cstdint>
#include <string>
#include <string_view>
#include <vector>

#include "util/statusor.h"

namespace dbps {

enum class WalRecordType : uint8_t {
  kDelta = 1,       ///< payload = one journal line (lang/journal.h)
  kCheckpoint = 2,  ///< payload = checkpoint text (printer.h); seq = fence
};

const char* WalRecordTypeToString(WalRecordType type);

/// One decoded WAL record.
struct WalRecord {
  uint64_t seq = 0;
  WalRecordType type = WalRecordType::kDelta;
  std::string payload;
};

/// Frames with a payload larger than this are treated as corrupt — a
/// damaged length prefix must not make recovery allocate gigabytes.
inline constexpr uint64_t kMaxWalPayload = 256u << 20;

/// Frame header bytes before the payload (len + crc + seq + type).
inline constexpr size_t kWalHeaderSize = 4 + 4 + 8 + 1;

/// Appends the framed wire bytes of one record to `out`.
void EncodeWalRecord(const WalRecord& record, std::string* out);

/// Why a scan stopped where it did.
enum class WalTail : uint8_t {
  kClean,    ///< the buffer ends exactly on a frame boundary
  kTorn,     ///< ends mid-frame (the crash case)
  kCorrupt,  ///< a full frame failed crc/type/length/seq validation
};

const char* WalTailToString(WalTail tail);

/// Result of scanning a WAL buffer front to back.
struct WalScan {
  std::vector<WalRecord> records;  ///< every record before the first bad byte
  uint64_t valid_bytes = 0;        ///< trusted prefix length
  uint64_t truncated_bytes = 0;    ///< bytes past the trusted prefix
  WalTail tail = WalTail::kClean;
  /// Human-readable cause when tail != kClean (for recovery stats).
  std::string tail_detail;
};

/// Scans `buf`, validating each frame's checksum and the delta-record
/// sequence invariants: delta seqs are dense (each exactly one above the
/// previous delta's), and a checkpoint's fence seq equals the next
/// expected delta seq (it summarizes exactly the commits before it).
/// The first delta record may carry any seq (a journal opened in append
/// mode on a restarted server continues where the disk left off).
/// Never fails: an unreadable tail is truncation, not an error.
WalScan ScanWalBuffer(std::string_view buf);

/// Decodes the single frame at buf[offset...]. Returns the record and
/// writes the frame's size to *consumed; a torn frame yields
/// kResourceExhausted (need more bytes), a corrupt one kParseError.
StatusOr<WalRecord> DecodeWalRecord(std::string_view buf, size_t offset,
                                    size_t* consumed);

/// Read-only walker over a framed WAL — the one shared record iterator
/// used by RecoveryManager, the consistency auditor (src/audit/), and the
/// chaos tests, instead of each keeping its own open/read/scan loop. The
/// iterator owns the bytes and the scan: records() is the full trusted
/// prefix, Next() hands them out one at a time, and scan() exposes the
/// tail classification so callers can decide whether a torn/corrupt tail
/// is expected (crash recovery) or a violation (audit of a supposedly
/// clean log).
class WalIterator {
 public:
  /// Scans an in-memory WAL image (e.g. a feed's byte buffer).
  explicit WalIterator(std::string bytes);

  /// Opens and scans a journal file. A missing file is not an error: the
  /// returned iterator is empty with file_missing() true (a fresh start
  /// for recovery, an empty history for the auditor). Real I/O failures
  /// return kUnavailable.
  static StatusOr<WalIterator> OpenFile(const std::string& path);

  /// True when OpenFile found no file at the path (ENOENT).
  bool file_missing() const { return file_missing_; }

  /// Copies the next record of the trusted prefix into *record and
  /// advances. Returns false once the prefix is exhausted.
  bool Next(WalRecord* record);

  /// Every record in the trusted prefix, in log order.
  const std::vector<WalRecord>& records() const { return scan_.records; }

  /// The underlying scan: tail classification, byte accounting.
  const WalScan& scan() const { return scan_; }

 private:
  WalIterator() = default;

  std::string bytes_;
  WalScan scan_;
  size_t pos_ = 0;
  bool file_missing_ = false;
};

}  // namespace dbps

#endif  // DBPS_LANG_WAL_H_
