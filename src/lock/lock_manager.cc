#include "lock/lock_manager.h"

#include <algorithm>
#include <sstream>

#include "util/failpoint.h"
#include "util/logging.h"

namespace dbps {

std::string LockEvent::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kGrant:
      out << "grant   T" << txn << " " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kBlock:
      out << "block   T" << txn << " " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kDeadlock:
      out << "deadlock T" << txn << " on " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kAbortMark:
      out << "abort   T" << txn;
      break;
    case Kind::kRelease:
      out << "release T" << txn;
      break;
  }
  return out.str();
}

const char* DeadlockPolicyToString(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kNoWait:
      return "no-wait";
  }
  return "?";
}

LockManager::LockManager(Options options) : options_(std::move(options)) {}

void LockManager::Trace(LockEvent::Kind kind, TxnId txn,
                        const LockObjectId& object, LockMode mode) const {
  if (options_.trace) {
    options_.trace(LockEvent{kind, txn, object, mode});
  }
}

TxnId LockManager::Begin() {
  std::lock_guard<std::mutex> guard(mu_);
  TxnId txn = next_txn_++;
  txns_.emplace(txn, TxnState{});
  return txn;
}

bool LockManager::BlockingLocked(TxnId txn) const {
  auto it = txns_.find(txn);
  return it != txns_.end() && it->second.blocking;
}

LockProtocol LockManager::ProtocolFor(TxnId requester, TxnId holder) const {
  if (options_.protocol == LockProtocol::kRcRaWa &&
      (BlockingLocked(requester) || BlockingLocked(holder))) {
    return LockProtocol::kTwoPhase;
  }
  return options_.protocol;
}

void LockManager::CollectBucketConflicts(const Bucket& bucket, TxnId txn,
                                         LockMode mode,
                                         std::vector<TxnId>* out) const {
  for (const auto& [holder, counts] : bucket.holds) {
    if (holder == txn) continue;  // a transaction never conflicts with itself
    const LockProtocol protocol = ProtocolFor(txn, holder);
    for (int m = 0; m < kNumLockModes; ++m) {
      if (counts[m] > 0 &&
          !Compatible(protocol, mode, static_cast<LockMode>(m))) {
        out->push_back(holder);
        break;
      }
    }
  }
}

std::vector<TxnId> LockManager::FindConflicts(TxnId txn,
                                              const LockObjectId& object,
                                              LockMode mode) const {
  std::vector<TxnId> conflicts;
  // Direct bucket.
  auto bucket_it = buckets_.find(object);
  if (bucket_it != buckets_.end()) {
    CollectBucketConflicts(bucket_it->second, txn, mode, &conflicts);
  }
  if (object.is_relation_level()) {
    // Relation-level request vs every tuple/insert hold in the relation.
    auto summary_it = relation_summaries_.find(object.relation);
    if (summary_it != relation_summaries_.end()) {
      for (const auto& [holder, counts] : summary_it->second) {
        if (holder == txn) continue;
        const LockProtocol protocol = ProtocolFor(txn, holder);
        for (int m = 0; m < kNumLockModes; ++m) {
          if (counts[m] > 0 &&
              !Compatible(protocol, mode, static_cast<LockMode>(m))) {
            conflicts.push_back(holder);
            break;
          }
        }
      }
    }
  } else {
    // Tuple/insert request vs the relation-level bucket.
    auto rel_it =
        buckets_.find(LockObjectId{object.relation, kRelationLevel});
    if (rel_it != buckets_.end()) {
      CollectBucketConflicts(rel_it->second, txn, mode, &conflicts);
    }
  }
  std::sort(conflicts.begin(), conflicts.end());
  conflicts.erase(std::unique(conflicts.begin(), conflicts.end()),
                  conflicts.end());
  return conflicts;
}

bool LockManager::WouldDeadlock(TxnId txn,
                                const std::vector<TxnId>& blockers) const {
  // DFS from each blocker through waits_for_, looking for txn.
  std::vector<TxnId> stack(blockers.begin(), blockers.end());
  std::unordered_set<TxnId> visited;
  while (!stack.empty()) {
    TxnId current = stack.back();
    stack.pop_back();
    if (current == txn) return true;
    if (!visited.insert(current).second) continue;
    auto it = waits_for_.find(current);
    if (it != waits_for_.end()) {
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }
  return false;
}

Status LockManager::Acquire(TxnId txn, LockObjectId object, LockMode mode) {
  // Chaos site: a delayed grant — the request stalls before it even
  // reaches the manager (sleep-safe: no lock held here).
  (void)DBPS_FAILPOINT("lock.acquire.delay");

  std::unique_lock<std::mutex> lock(mu_);
  auto txn_it = txns_.find(txn);
  if (txn_it == txns_.end()) {
    return Status::Internal("Acquire on unknown transaction");
  }
  if (txn_it->second.aborted) {
    return Status::Aborted("transaction was aborted");
  }
  // Chaos sites: a spurious wait-timeout, and a wound storm (the request
  // loses to an imaginary older transaction and is marked aborted) —
  // exactly the failures callers must already survive. No delays here:
  // mu_ is held.
  if (DBPS_FAILPOINT("lock.acquire.timeout")) {
    ++stats_.timeouts;
    return Status::LockTimeout("injected timeout on " + object.ToString());
  }
  if (DBPS_FAILPOINT("lock.acquire.wound")) {
    ++stats_.wounds;
    MarkAbortedLocked(txn);
    return Status::Aborted("injected wound on " + object.ToString());
  }

  // Fast path: already holding this mode on this object.
  {
    auto hold_it = txn_it->second.holds.find(object);
    if (hold_it != txn_it->second.holds.end() &&
        hold_it->second[static_cast<int>(mode)] > 0) {
      ++hold_it->second[static_cast<int>(mode)];
      ++buckets_[object].holds[txn][static_cast<int>(mode)];
      if (!object.is_relation_level()) {
        ++relation_summaries_[object.relation][txn][static_cast<int>(mode)];
      }
      ++stats_.acquired;
      return Status::OK();
    }
  }

  bool waited = false;
  const auto deadline =
      std::chrono::steady_clock::now() + options_.wait_timeout;
  for (;;) {
    std::vector<TxnId> conflicts = FindConflicts(txn, object, mode);
    if (conflicts.empty()) break;

    switch (options_.deadlock_policy) {
      case DeadlockPolicy::kNoWait:
        ++stats_.deadlocks;
        Trace(LockEvent::Kind::kDeadlock, txn, object, mode);
        return Status::Deadlock("no-wait: " + object.ToString() +
                                " is held in a conflicting mode");
      case DeadlockPolicy::kWoundWait:
        // Wound every younger conflicting holder, then wait: waits only
        // ever target older transactions, so no cycle can form.
        for (TxnId holder : conflicts) {
          if (holder > txn && !txns_.at(holder).aborted) {
            MarkAbortedLocked(holder);
            ++stats_.wounds;
          }
        }
        break;
      case DeadlockPolicy::kDetect:
        if (WouldDeadlock(txn, conflicts)) {
          ++stats_.deadlocks;
          Trace(LockEvent::Kind::kDeadlock, txn, object, mode);
          return Status::Deadlock("waiting for " + object.ToString() +
                                  " would close a waits-for cycle");
        }
        break;
    }
    if (!waited) {
      waited = true;
      ++stats_.blocked;
      Trace(LockEvent::Kind::kBlock, txn, object, mode);
    }
    waits_for_[txn] = std::move(conflicts);
    auto wait_result = cv_.wait_until(lock, deadline);
    waits_for_.erase(txn);
    if (txns_.at(txn).aborted) {
      return Status::Aborted("transaction aborted while waiting for " +
                             object.ToString());
    }
    if (wait_result == std::cv_status::timeout) {
      if (!FindConflicts(txn, object, mode).empty()) {
        ++stats_.timeouts;
        return Status::LockTimeout("gave up waiting for " +
                                   object.ToString());
      }
      break;
    }
  }

  // Grant.
  auto& state = txns_.at(txn);
  auto [hold_it, unused] = state.holds.try_emplace(object, ModeCounts{});
  ++hold_it->second[static_cast<int>(mode)];
  ++buckets_[object].holds[txn][static_cast<int>(mode)];
  if (!object.is_relation_level()) {
    ++relation_summaries_[object.relation][txn][static_cast<int>(mode)];
  }
  ++stats_.acquired;
  Trace(LockEvent::Kind::kGrant, txn, object, mode);
  return Status::OK();
}

std::vector<TxnId> LockManager::CollectRcVictims(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto txn_it = txns_.find(txn);
  if (txn_it == txns_.end()) return {};

  std::unordered_set<TxnId> victims;
  // Blocking (escalated) transactions are never victims: their Rc locks
  // conflict with Wa at grant time, so a committer holding Wa cannot have
  // raced past them (and exempting them is the starvation guarantee).
  auto add_rc_holders = [&](const Bucket& bucket) {
    for (const auto& [holder, counts] : bucket.holds) {
      if (holder != txn && counts[static_cast<int>(LockMode::kRc)] > 0 &&
          !BlockingLocked(holder)) {
        victims.insert(holder);
      }
    }
  };

  for (const auto& [object, counts] : txn_it->second.holds) {
    if (counts[static_cast<int>(LockMode::kWa)] == 0) continue;

    // Rc holders on the same object.
    auto bucket_it = buckets_.find(object);
    if (bucket_it != buckets_.end()) add_rc_holders(bucket_it->second);

    if (object.is_relation_level()) {
      // Relation-level Wa vs tuple-level Rc anywhere in the relation.
      auto summary_it = relation_summaries_.find(object.relation);
      if (summary_it != relation_summaries_.end()) {
        for (const auto& [holder, counts2] : summary_it->second) {
          if (holder != txn &&
              counts2[static_cast<int>(LockMode::kRc)] > 0 &&
              !BlockingLocked(holder)) {
            victims.insert(holder);
          }
        }
      }
    } else {
      // Tuple/insert Wa vs relation-level Rc (negation escalations).
      auto rel_it =
          buckets_.find(LockObjectId{object.relation, kRelationLevel});
      if (rel_it != buckets_.end()) add_rc_holders(rel_it->second);
    }
  }
  return std::vector<TxnId>(victims.begin(), victims.end());
}

void LockManager::MarkAborted(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  MarkAbortedLocked(txn);
}

void LockManager::MarkAbortedLocked(TxnId txn) {
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.aborted) return;
  it->second.aborted = true;
  ++stats_.aborts_marked;
  Trace(LockEvent::Kind::kAbortMark, txn, LockObjectId{}, LockMode::kRc);
  cv_.notify_all();
}

bool LockManager::IsAborted(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn);
  return it != txns_.end() && it->second.aborted;
}

void LockManager::SetBlocking(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end() || it->second.blocking) return;
  DBPS_DCHECK(it->second.holds.empty())
      << "SetBlocking after locks were acquired";
  it->second.blocking = true;
  ++stats_.blocking_txns;
}

bool LockManager::IsBlocking(TxnId txn) const {
  std::lock_guard<std::mutex> guard(mu_);
  return BlockingLocked(txn);
}

void LockManager::Release(TxnId txn) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) {
    // Unknown or double release: tolerate (the caller's rollback paths
    // may race a victimizing committer) but count — waits_for_ and the
    // buckets are left untouched.
    ++stats_.unknown_releases;
    return;
  }
  for (const auto& [object, counts] : it->second.holds) {
    auto bucket_it = buckets_.find(object);
    if (bucket_it != buckets_.end()) {
      bucket_it->second.holds.erase(txn);
      if (bucket_it->second.holds.empty()) buckets_.erase(bucket_it);
    }
    if (!object.is_relation_level()) {
      auto summary_it = relation_summaries_.find(object.relation);
      if (summary_it != relation_summaries_.end()) {
        summary_it->second.erase(txn);
        if (summary_it->second.empty()) {
          relation_summaries_.erase(summary_it);
        }
      }
    }
  }
  txns_.erase(it);
  waits_for_.erase(txn);
  Trace(LockEvent::Kind::kRelease, txn, LockObjectId{}, LockMode::kRc);
  cv_.notify_all();
}

bool LockManager::Holds(TxnId txn, LockObjectId object, LockMode mode) const {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = txns_.find(txn);
  if (it == txns_.end()) return false;
  auto hold_it = it->second.holds.find(object);
  return hold_it != it->second.holds.end() &&
         hold_it->second[static_cast<int>(mode)] > 0;
}

size_t LockManager::live_transactions() const {
  std::lock_guard<std::mutex> guard(mu_);
  return txns_.size();
}

LockManager::Stats LockManager::GetStats() const {
  std::lock_guard<std::mutex> guard(mu_);
  return stats_;
}

}  // namespace dbps
