#include "lock/lock_manager.h"

#include <algorithm>
#include <sstream>
#include <thread>

#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"

namespace dbps {

namespace {

// --- FastSlot mode-word layout ---------------------------------------------
//
//   bit 63      : sealed — the slow path has interest in this slot; fast
//                 CAS grants fail (the CAS itself rejects them, since the
//                 expected word is compared in full).
//   bits 40..59 : granted Wa count     bits 20..39 : granted Ra count
//   bits  0..19 : granted Rc count     bits 60..62 : unused
//
// Holder entries are (txn << 16 | count); count is capped at 16 bits.

constexpr uint64_t kSealedBit = 1ull << 63;
constexpr int kFieldBits = 20;
constexpr uint64_t kFieldMask = (1ull << kFieldBits) - 1;
// Refuse fast grants near field capacity so a burst of in-flight
// increments can never carry a field into its neighbor.
constexpr uint64_t kFieldMax = kFieldMask - 64;
constexpr uint64_t kHolderCountMask = 0xffffull;
constexpr int kFastCasAttempts = 8;

inline int FieldShift(LockMode mode) {
  return kFieldBits * static_cast<int>(mode);
}
inline uint64_t ModeInc(LockMode mode) { return 1ull << FieldShift(mode); }
inline uint64_t FieldCount(uint64_t word, LockMode mode) {
  return (word >> FieldShift(mode)) & kFieldMask;
}
inline uint64_t TotalCount(uint64_t word) {
  return FieldCount(word, LockMode::kRc) + FieldCount(word, LockMode::kRa) +
         FieldCount(word, LockMode::kWa);
}

// Is `mode` grantable by one CAS given the slot's current word? Uses the
// same Table 4.1 matrix as the slow path — including the Wa-over-Rc cell
// under kRcRaWa — against every mode with a nonzero granted count. Note
// the word aggregates *all* holders including the requester itself, so a
// self-upgrade (e.g. Wa over one's own Rc under kTwoPhase) conservatively
// falls back to the slow path, which skips self-conflicts exactly.
inline bool FastWordAllows(LockProtocol protocol, uint64_t word,
                           LockMode mode) {
  if (word & kSealedBit) return false;
  if (FieldCount(word, mode) >= kFieldMax) return false;
  for (int m = 0; m < kNumLockModes; ++m) {
    const LockMode held = static_cast<LockMode>(m);
    if (FieldCount(word, held) == 0) continue;
    if (!Compatible(protocol, mode, held)) return false;
  }
  return true;
}

inline bool AllZero(const std::array<uint32_t, kNumLockModes>& counts) {
  return counts[0] == 0 && counts[1] == 0 && counts[2] == 0;
}

}  // namespace

size_t DefaultNumLockShards() {
  const size_t hw = std::thread::hardware_concurrency();
  size_t shards = 8;
  while (shards < hw) shards <<= 1;
  return shards;
}

std::string LockEvent::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kGrant:
      out << "grant   T" << txn << " " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kBlock:
      out << "block   T" << txn << " " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kDeadlock:
      out << "deadlock T" << txn << " on " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kAbortMark:
      out << "abort   T" << txn;
      break;
    case Kind::kRelease:
      out << "release T" << txn;
      break;
  }
  return out.str();
}

const char* DeadlockPolicyToString(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kNoWait:
      return "no-wait";
  }
  return "?";
}

LockManager::LockManager(Options options) : options_(std::move(options)) {
  const size_t n = std::max<size_t>(1, options_.num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

size_t LockManager::ShardIndex(SymbolId relation) const {
  return RouteMix(relation, shards_.size());
}

size_t LockManager::FastSlotIndex(const LockObjectId& object) {
  return LockObjectIdHash{}(object) % kFastSlotsPerShard;
}

size_t LockManager::RelGuardIndex(SymbolId relation) {
  // Shifted so it decorrelates from ShardIndex (which uses the low bits
  // of the same mix).
  return static_cast<size_t>(Mix64(relation) >> 17) % kRelGuardsPerShard;
}

TxnId LockManager::Begin() {
  TxnId txn = next_txn_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<TxnState>();
  TxnStripe& stripe = txn_stripes_[txn % kTxnStripes];
  std::lock_guard<std::mutex> guard(stripe.mu);
  stripe.txns.emplace(txn, std::move(state));
  return txn;
}

LockManager::TxnPtr LockManager::FindTxn(TxnId txn) const {
  const TxnStripe& stripe = txn_stripes_[txn % kTxnStripes];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.txns.find(txn);
  return it == stripe.txns.end() ? nullptr : it->second;
}

LockManager::TxnPtr LockManager::TakeTxn(TxnId txn) {
  TxnStripe& stripe = txn_stripes_[txn % kTxnStripes];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.txns.find(txn);
  if (it == stripe.txns.end()) return nullptr;
  TxnPtr state = std::move(it->second);
  stripe.txns.erase(it);
  return state;
}

bool LockManager::IsBlockingTxn(TxnId txn) const {
  TxnPtr state = FindTxn(txn);
  return state != nullptr && state->blocking.load(std::memory_order_acquire);
}

bool LockManager::ConflictsWithHolder(bool requester_blocking, LockMode mode,
                                      TxnId holder,
                                      const ModeCounts& counts) const {
  const LockProtocol base =
      requester_blocking ? LockProtocol::kTwoPhase : options_.protocol;
  bool rcrawa_ok = true;      // compatible under the configured matrix
  bool twophase_ok = true;    // compatible under strict 2PL
  for (int m = 0; m < kNumLockModes; ++m) {
    if (counts[m] == 0) continue;
    const LockMode held = static_cast<LockMode>(m);
    if (!Compatible(base, mode, held)) rcrawa_ok = false;
    if (!Compatible(LockProtocol::kTwoPhase, mode, held)) twophase_ok = false;
  }
  if (!rcrawa_ok) return true;
  // Compatible under the configured matrix. The only cell where the
  // matrices differ is Wa-over-Rc; if the holder escalated to blocking
  // (2PL-style) acquisition, that cell conflicts after all. Only then is
  // the (registry-lookup) blocking check needed.
  if (base == LockProtocol::kRcRaWa && !twophase_ok &&
      IsBlockingTxn(holder)) {
    return true;
  }
  return false;
}

// --- Lock-free fast path ---------------------------------------------------

void LockManager::DrainSlot(const FastSlot& slot) {
  for (int spins = 0;; ++spins) {
    const uint64_t word = slot.word.load(std::memory_order_seq_cst);
    const uint64_t granted = TotalCount(word);
    uint64_t accounted = 0;
    for (const auto& entry : slot.holders) {
      accounted += entry.load(std::memory_order_seq_cst) & kHolderCountMask;
    }
    if (accounted == granted) return;
    if (spins >= 64) std::this_thread::yield();
  }
}

bool LockManager::ClaimFastHolder(FastSlot& slot, TxnId txn) {
  // Pass 0: bump an existing entry of ours. Pass 1: also claim a free one.
  for (int pass = 0; pass < 2; ++pass) {
    for (auto& entry : slot.holders) {
      uint64_t e = entry.load(std::memory_order_seq_cst);
      for (;;) {
        const bool ours = (e >> 16) == txn;
        if (!ours && (pass == 0 || e != 0)) break;
        if (ours && (e & kHolderCountMask) == kHolderCountMask) {
          return false;  // per-entry count saturated
        }
        const uint64_t desired = ours ? e + 1 : (txn << 16) | 1;
        if (entry.compare_exchange_weak(e, desired,
                                        std::memory_order_seq_cst)) {
          return true;
        }
      }
    }
  }
  return false;  // all entries taken by other transactions
}

void LockManager::ReleaseFastHolder(FastSlot& slot, TxnId txn,
                                    uint64_t count) {
  for (auto& entry : slot.holders) {
    uint64_t e = entry.load(std::memory_order_seq_cst);
    if ((e >> 16) != txn) continue;
    // Only the owner ever decrements its entry, and claims touch only
    // free or own entries, so this CAS competes with nothing but our own
    // (impossible) concurrent release — retry is pure paranoia.
    for (;;) {
      const uint64_t held = e & kHolderCountMask;
      DBPS_DCHECK(held >= count) << "fast holder entry under-counted";
      const uint64_t remaining = held - count;
      const uint64_t desired = remaining == 0 ? 0 : (txn << 16) | remaining;
      if (entry.compare_exchange_weak(e, desired,
                                      std::memory_order_seq_cst)) {
        return;
      }
      if ((e >> 16) != txn) break;
    }
  }
  DBPS_DCHECK(false) << "fast holder entry missing for T" << txn;
}

bool LockManager::TryFastAcquire(Shard& shard, const TxnPtr& state, TxnId txn,
                                 const LockObjectId& object, LockMode mode) {
  FastSlot& slot = shard.fast[FastSlotIndex(object)];
  std::atomic<uint32_t>& guard = shard.rel_guards[RelGuardIndex(object.relation)];
  // Cheap pre-checks before publishing anything.
  if (guard.load(std::memory_order_seq_cst) != 0) return false;
  uint64_t word = slot.word.load(std::memory_order_seq_cst);
  if (!FastWordAllows(options_.protocol, word, mode)) return false;

  // Publish the tentative hold FIRST: once our mode-word increment is
  // visible, any exact inspector (slow-path conflict check, victim sweep)
  // must be able to find which object we hold — it reads this record.
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    HoldCounts& hold = state->holds[object];
    ++hold.counts[static_cast<int>(mode)];
    ++hold.fast[static_cast<int>(mode)];
  }

  bool granted = false;
  for (int attempt = 0; attempt < kFastCasAttempts; ++attempt) {
    if (!FastWordAllows(options_.protocol, word, mode)) break;
    if (slot.word.compare_exchange_weak(word, word + ModeInc(mode),
                                        std::memory_order_seq_cst)) {
      granted = true;
      break;
    }
    shard.fast_cas_retries.fetch_add(1, std::memory_order_relaxed);
  }
  // Dekker re-check against a concurrent relation-level slow acquire: it
  // raises the guard and then scans the slots; we CASed the word and now
  // re-read the guard. Both operations are seq_cst, so at least one side
  // observes the other — if we see the guard we retreat; if we don't, the
  // scanner's drain sees our grant.
  if (granted &&
      guard.load(std::memory_order_seq_cst) != 0) {
    slot.word.fetch_sub(ModeInc(mode), std::memory_order_seq_cst);
    granted = false;
  }
  if (granted && !ClaimFastHolder(slot, txn)) {
    slot.word.fetch_sub(ModeInc(mode), std::memory_order_seq_cst);
    granted = false;
  }
  if (!granted) {
    // Retract the tentative hold; fall back to the slow path.
    std::lock_guard<std::mutex> txn_guard(state->mu);
    auto it = state->holds.find(object);
    DBPS_DCHECK(it != state->holds.end());
    --it->second.counts[static_cast<int>(mode)];
    --it->second.fast[static_cast<int>(mode)];
    if (AllZero(it->second.counts)) state->holds.erase(it);
    return false;
  }
  shard.fast_grants.fetch_add(1, std::memory_order_relaxed);
  return true;
}

void LockManager::AddSealRef(Shard& shard, size_t slot_index) const {
  if (shard.seal_refs[slot_index]++ == 0) {
    FastSlot& slot = shard.fast[slot_index];
    slot.word.fetch_or(kSealedBit, std::memory_order_seq_cst);
    // Flush in-flight fast operations: once the holder entries account
    // for every granted count, every pre-seal grant is enumerable and no
    // new one can land (the CAS compares the full word, seal included).
    DrainSlot(slot);
  }
}

void LockManager::DropSealRef(Shard& shard, size_t slot_index) const {
  DBPS_DCHECK(shard.seal_refs[slot_index] > 0);
  if (--shard.seal_refs[slot_index] == 0) {
    shard.fast[slot_index].word.fetch_and(~kSealedBit,
                                          std::memory_order_seq_cst);
  }
}

void LockManager::CollectFastObjectConflicts(const FastSlot& slot, TxnId txn,
                                             bool requester_blocking,
                                             const LockObjectId& object,
                                             LockMode mode,
                                             std::vector<TxnId>* out) const {
  for (const auto& entry : slot.holders) {
    const TxnId holder = entry.load(std::memory_order_seq_cst) >> 16;
    if (holder == 0 || holder == txn) continue;
    TxnPtr holder_state = FindTxn(holder);
    if (holder_state == nullptr) continue;  // releasing/released: no conflict
    ModeCounts fast{};
    {
      std::lock_guard<std::mutex> holder_guard(holder_state->mu);
      auto it = holder_state->holds.find(object);
      if (it == holder_state->holds.end()) continue;  // different object,
      fast = it->second.fast;                         // same slot (hash)
    }
    if (AllZero(fast)) continue;  // only slow holds: the bucket covers it
    if (ConflictsWithHolder(requester_blocking, mode, holder, fast)) {
      out->push_back(holder);
    }
  }
}

void LockManager::CollectFastRelationConflicts(const Shard& shard, TxnId txn,
                                               bool requester_blocking,
                                               SymbolId relation,
                                               LockMode mode,
                                               std::vector<TxnId>* out) const {
  // The caller raised the relation guard, so no new fast grant in this
  // relation can complete; drain each active slot to flush in-flight
  // operations, then inspect every fast holder's record for tuple/intent
  // holds in `relation`.
  for (const FastSlot& slot : shard.fast) {
    if (TotalCount(slot.word.load(std::memory_order_seq_cst)) == 0) continue;
    DrainSlot(slot);
    for (const auto& entry : slot.holders) {
      const TxnId holder = entry.load(std::memory_order_seq_cst) >> 16;
      if (holder == 0 || holder == txn) continue;
      TxnPtr holder_state = FindTxn(holder);
      if (holder_state == nullptr) continue;
      ModeCounts fast{};
      {
        std::lock_guard<std::mutex> holder_guard(holder_state->mu);
        for (const auto& [held_object, hold] : holder_state->holds) {
          if (held_object.relation != relation ||
              held_object.is_relation_level()) {
            continue;
          }
          for (int m = 0; m < kNumLockModes; ++m) fast[m] += hold.fast[m];
        }
      }
      if (AllZero(fast)) continue;
      if (ConflictsWithHolder(requester_blocking, mode, holder, fast)) {
        out->push_back(holder);
      }
    }
  }
}

// RAII for the slow path's fast-path bookkeeping around one Acquire:
// tuple/intent requests seal the object's fast slot for the duration
// (shard.mu must be held at construction and destruction — satisfied
// because the guard is declared after the shard lock and the lock is
// only dropped transiently mid-scope); relation-level requests raise the
// relation guard, and keep one count on grant (released by Release).
class LockManager::SlowAcquireRef {
 public:
  SlowAcquireRef(const LockManager* lm, Shard& shard,
                 const LockObjectId& object)
      : lm_(lm),
        shard_(shard),
        relation_level_(object.is_relation_level()),
        slot_index_(FastSlotIndex(object)),
        guard_(shard.rel_guards[RelGuardIndex(object.relation)]) {
    if (relation_level_) {
      guard_.fetch_add(1, std::memory_order_seq_cst);
    } else {
      lm_->AddSealRef(shard_, slot_index_);
    }
  }
  SlowAcquireRef(const SlowAcquireRef&) = delete;
  SlowAcquireRef& operator=(const SlowAcquireRef&) = delete;
  ~SlowAcquireRef() {
    if (relation_level_) {
      if (!granted_) guard_.fetch_sub(1, std::memory_order_seq_cst);
    } else {
      lm_->DropSealRef(shard_, slot_index_);
    }
  }
  /// A relation-level grant keeps its +1 guard count (one per granted
  /// Acquire call), paid back by Release. No-op for tuple requests.
  void KeepGuardCount() { granted_ = true; }

 private:
  const LockManager* lm_;
  Shard& shard_;
  const bool relation_level_;
  const size_t slot_index_;
  std::atomic<uint32_t>& guard_;
  bool granted_ = false;
};

void LockManager::CollectBucketConflicts(const Bucket& bucket, TxnId txn,
                                         bool requester_blocking,
                                         LockMode mode,
                                         std::vector<TxnId>* out) const {
  for (const auto& [holder, counts] : bucket.holds) {
    if (holder == txn) continue;  // a transaction never conflicts with itself
    if (ConflictsWithHolder(requester_blocking, mode, holder, counts)) {
      out->push_back(holder);
    }
  }
}

std::vector<TxnId> LockManager::FindConflicts(const Shard& shard, TxnId txn,
                                              bool requester_blocking,
                                              const LockObjectId& object,
                                              LockMode mode) const {
  std::vector<TxnId> conflicts;
  // Direct bucket.
  auto bucket_it = shard.buckets.find(object);
  if (bucket_it != shard.buckets.end()) {
    CollectBucketConflicts(bucket_it->second, txn, requester_blocking, mode,
                           &conflicts);
  }
  if (object.is_relation_level()) {
    // Relation-level request vs every tuple/insert hold in the relation.
    auto summary_it = shard.relation_summaries.find(object.relation);
    if (summary_it != shard.relation_summaries.end()) {
      for (const auto& [holder, counts] : summary_it->second) {
        if (holder == txn) continue;
        if (ConflictsWithHolder(requester_blocking, mode, holder, counts)) {
          conflicts.push_back(holder);
        }
      }
    }
    // ...and every *fast* tuple/insert hold (invisible to the summary).
    if (options_.fast_path) {
      CollectFastRelationConflicts(shard, txn, requester_blocking,
                                   object.relation, mode, &conflicts);
    }
  } else {
    // Tuple/insert request vs the relation-level bucket (same shard: the
    // whole relation hashes to one stripe). Relation-level locks are
    // always slow-path, so the bucket is exhaustive for them.
    auto rel_it =
        shard.buckets.find(LockObjectId{object.relation, kRelationLevel});
    if (rel_it != shard.buckets.end()) {
      CollectBucketConflicts(rel_it->second, txn, requester_blocking, mode,
                             &conflicts);
    }
    // Fast holders of the object itself (the caller sealed its slot).
    if (options_.fast_path) {
      CollectFastObjectConflicts(shard.fast[FastSlotIndex(object)], txn,
                                 requester_blocking, object, mode,
                                 &conflicts);
    }
  }
  std::sort(conflicts.begin(), conflicts.end());
  conflicts.erase(std::unique(conflicts.begin(), conflicts.end()),
                  conflicts.end());
  return conflicts;
}

bool LockManager::WouldDeadlock(TxnId txn,
                                const std::vector<TxnId>& blockers) const {
  // DFS from each blocker through waits_for_, looking for txn. The graph
  // is global (edges from waiters on every shard), so cycles whose waits
  // span shards are found here even though the lock table is striped.
  std::lock_guard<std::mutex> guard(slow_mu_);
  std::vector<TxnId> stack(blockers.begin(), blockers.end());
  std::unordered_set<TxnId> visited;
  while (!stack.empty()) {
    TxnId current = stack.back();
    stack.pop_back();
    if (current == txn) return true;
    if (!visited.insert(current).second) continue;
    auto it = waits_for_.find(current);
    if (it != waits_for_.end()) {
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }
  return false;
}

void LockManager::NotifyAllShardsFenced() {
  for (auto& shard : shards_) {
    // Lock/unlock (never nested) so a waiter that checked its predicate
    // but has not yet parked cannot miss the notification.
    { std::lock_guard<std::mutex> fence(shard->mu); }
    shard->cv.notify_all();
  }
}

void LockManager::MarkAbortedTxn(TxnId txn, const TxnPtr& state,
                                 TraceBuffer* events) {
  if (state == nullptr) return;
  if (state->aborted.exchange(true, std::memory_order_acq_rel)) return;
  aborts_marked_.fetch_add(1, std::memory_order_relaxed);
  events->Add(LockEvent::Kind::kAbortMark, txn, LockObjectId{}, LockMode::kRc);
  NotifyAllShardsFenced();
}

Status LockManager::Acquire(TxnId txn, LockObjectId object, LockMode mode) {
  // Chaos site: a delayed grant — the request stalls before it even
  // reaches the manager (sleep-safe: no lock held here).
  (void)DBPS_FAILPOINT("lock.acquire.delay");

  TraceBuffer events(this);  // flushes after every guard below unwinds

  TxnPtr state = FindTxn(txn);
  if (state == nullptr) {
    return Status::Internal("Acquire on unknown transaction");
  }
  if (state->aborted.load(std::memory_order_acquire)) {
    return Status::Aborted("transaction was aborted");
  }
  // Chaos sites: a spurious wait-timeout, and a wound storm (the request
  // loses to an imaginary older transaction and is marked aborted) —
  // exactly the failures callers must already survive.
  if (DBPS_FAILPOINT("lock.acquire.timeout")) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::LockTimeout("injected timeout on " + object.ToString());
  }
  if (DBPS_FAILPOINT("lock.acquire.wound")) {
    wounds_.fetch_add(1, std::memory_order_relaxed);
    MarkAbortedTxn(txn, state, &events);
    return Status::Aborted("injected wound on " + object.ToString());
  }

  const bool requester_blocking =
      state->blocking.load(std::memory_order_acquire);
  Shard& shard = ShardForObject(object);

  // Lock-free fast path: one CAS on the slot's mode-word, no shard mutex.
  // Relation-level requests always go slow (they must see every tuple
  // hold of the relation), as do blocking (escalated) requesters — which
  // is what keeps the starvation guarantee: a fast Wa-over-Rc can never
  // race past a blocking holder's Rc, because a blocking transaction's
  // Rc only ever lives in a (sealed) bucket.
  if (options_.fast_path && !object.is_relation_level() &&
      !requester_blocking &&
      TryFastAcquire(shard, state, txn, object, mode)) {
    acquired_.fetch_add(1, std::memory_order_relaxed);
    events.Add(LockEvent::Kind::kGrant, txn, object, mode);
    return Status::OK();
  }

  const auto deadline =
      std::chrono::steady_clock::now() + options_.wait_timeout;
  bool waited = false;

  std::unique_lock<std::mutex> shard_lock(shard.mu, std::try_to_lock);
  if (!shard_lock.owns_lock()) {
    shard_lock.lock();
    ++shard.stats.mutex_contentions;
  }
  const auto hold_start = std::chrono::steady_clock::now();

  // Seal the object's fast slot (or raise the relation guard) for the
  // duration of this slow acquire: fast grants can no longer race the
  // conflict checks below or steal ahead of a queued waiter.
  SlowAcquireRef slow_ref(this, shard, object);

  // Fast path: already holding this mode on this object.
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    auto hold_it = state->holds.find(object);
    if (hold_it != state->holds.end() &&
        hold_it->second.counts[static_cast<int>(mode)] > 0) {
      ++hold_it->second.counts[static_cast<int>(mode)];
      Bucket& bucket = shard.buckets[object];
      auto [pair_it, inserted] = bucket.holds.try_emplace(txn, ModeCounts{});
      ++pair_it->second[static_cast<int>(mode)];
      if (inserted && !object.is_relation_level()) {
        AddSealRef(shard, FastSlotIndex(object));  // the pair's seal ref
      }
      if (!object.is_relation_level()) {
        ++shard.relation_summaries[object.relation][txn]
                                  [static_cast<int>(mode)];
      } else {
        slow_ref.KeepGuardCount();
      }
      ++shard.stats.acquires;
      shard.stats.hold_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - hold_start)
              .count());
      acquired_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }

  for (;;) {
    std::vector<TxnId> conflicts =
        FindConflicts(shard, txn, requester_blocking, object, mode);
    if (conflicts.empty()) break;

    switch (options_.deadlock_policy) {
      case DeadlockPolicy::kNoWait:
        deadlocks_.fetch_add(1, std::memory_order_relaxed);
        events.Add(LockEvent::Kind::kDeadlock, txn, object, mode);
        return Status::Deadlock("no-wait: " + object.ToString() +
                                " is held in a conflicting mode");
      case DeadlockPolicy::kWoundWait: {
        // Wound every younger conflicting holder, then wait: waits only
        // ever target older transactions, so no cycle can form. Marking
        // fences every shard, so it must happen with this shard's mutex
        // dropped — wound, then re-enter the loop to recompute conflicts.
        std::vector<TxnId> prey;
        for (TxnId holder : conflicts) {
          if (holder > txn) prey.push_back(holder);
        }
        bool wounded_any = false;
        if (!prey.empty()) {
          shard_lock.unlock();
          for (TxnId holder : prey) {
            TxnPtr holder_state = FindTxn(holder);
            if (holder_state != nullptr &&
                !holder_state->aborted.load(std::memory_order_acquire)) {
              wounds_.fetch_add(1, std::memory_order_relaxed);
              MarkAbortedTxn(holder, holder_state, &events);
              wounded_any = true;
            }
          }
          shard_lock.lock();
          if (wounded_any) continue;  // holders will release; recompute
        }
        break;
      }
      case DeadlockPolicy::kDetect:
        if (WouldDeadlock(txn, conflicts)) {
          deadlocks_.fetch_add(1, std::memory_order_relaxed);
          events.Add(LockEvent::Kind::kDeadlock, txn, object, mode);
          return Status::Deadlock("waiting for " + object.ToString() +
                                  " would close a waits-for cycle");
        }
        break;
    }
    if (!waited) {
      waited = true;
      blocked_.fetch_add(1, std::memory_order_relaxed);
      ++shard.stats.waits;
      events.Add(LockEvent::Kind::kBlock, txn, object, mode);
    }
    {
      std::lock_guard<std::mutex> slow_guard(slow_mu_);
      waits_for_[txn] = std::move(conflicts);
    }
    auto wait_result = shard.cv.wait_until(shard_lock, deadline);
    {
      std::lock_guard<std::mutex> slow_guard(slow_mu_);
      waits_for_.erase(txn);
    }
    if (state->aborted.load(std::memory_order_acquire)) {
      return Status::Aborted("transaction aborted while waiting for " +
                             object.ToString());
    }
    if (wait_result == std::cv_status::timeout) {
      if (!FindConflicts(shard, txn, requester_blocking, object, mode)
               .empty()) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return Status::LockTimeout("gave up waiting for " +
                                   object.ToString());
      }
      break;
    }
  }

  // Grant (slow path: into the bucket).
  {
    Bucket& bucket = shard.buckets[object];
    auto [pair_it, inserted] = bucket.holds.try_emplace(txn, ModeCounts{});
    ++pair_it->second[static_cast<int>(mode)];
    if (inserted && !object.is_relation_level()) {
      AddSealRef(shard, FastSlotIndex(object));  // the pair's seal ref
    }
  }
  if (!object.is_relation_level()) {
    ++shard.relation_summaries[object.relation][txn][static_cast<int>(mode)];
  } else {
    slow_ref.KeepGuardCount();
  }
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    auto [hold_it, unused] = state->holds.try_emplace(object, HoldCounts{});
    ++hold_it->second.counts[static_cast<int>(mode)];
  }
  ++shard.stats.acquires;
  if (!waited) {
    shard.stats.hold_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - hold_start)
            .count());
  }
  acquired_.fetch_add(1, std::memory_order_relaxed);
  events.Add(LockEvent::Kind::kGrant, txn, object, mode);
  return Status::OK();
}

std::vector<TxnId> LockManager::CollectRcVictims(TxnId txn) const {
  // Under kTwoPhase the Wa-over-Rc cell is incompatible at *grant* time,
  // so a committer can never hold Wa concurrently with a conflicting Rc:
  // there is nothing to sweep.
  if (options_.protocol == LockProtocol::kTwoPhase) return {};

  TxnPtr state = FindTxn(txn);
  if (state == nullptr) return {};

  // Snapshot the committer's Wa objects. The committer's own thread calls
  // this, so the set is stable; and because Rc-vs-Wa is incompatible in
  // Table 4.1, no *new* conflicting Rc can be granted while these Wa
  // locks are held — a slow Wa seals its slot, a fast Wa sits in the
  // mode-word and fails any fast Rc's compatibility check — so the
  // per-shard sweep below needs no global section.
  std::vector<std::vector<LockObjectId>> wa_by_shard(shards_.size());
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    for (const auto& [object, hold] : state->holds) {
      if (hold.counts[static_cast<int>(LockMode::kWa)] > 0) {
        wa_by_shard[ShardIndex(object.relation)].push_back(object);
      }
    }
  }

  std::unordered_set<TxnId> victims;
  // Blocking (escalated) transactions are never victims: their Rc locks
  // conflict with Wa at grant time, so a committer holding Wa cannot have
  // raced past them (and exempting them is the starvation guarantee).
  auto add_rc_holders = [&](const Bucket& bucket) {
    for (const auto& [holder, counts] : bucket.holds) {
      if (holder != txn && counts[static_cast<int>(LockMode::kRc)] > 0 &&
          !IsBlockingTxn(holder)) {
        victims.insert(holder);
      }
    }
  };
  // A fast-path candidate (from a slot's holder entries) is a victim iff
  // its record shows Rc on a matching object. Fast holders are never
  // blocking (SetBlocking precedes every acquire, and blocking
  // transactions skip the fast path), but the check is kept for symmetry.
  auto add_fast_rc_holder = [&](TxnId holder, const LockObjectId& object) {
    if (holder == 0 || holder == txn) return;
    TxnPtr holder_state = FindTxn(holder);
    if (holder_state == nullptr) return;
    bool holds_rc = false;
    {
      std::lock_guard<std::mutex> holder_guard(holder_state->mu);
      auto it = holder_state->holds.find(object);
      holds_rc = it != holder_state->holds.end() &&
                 it->second.fast[static_cast<int>(LockMode::kRc)] > 0;
    }
    if (holds_rc && !IsBlockingTxn(holder)) victims.insert(holder);
  };

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (wa_by_shard[s].empty()) continue;
    const Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> shard_guard(shard.mu);
    for (const LockObjectId& object : wa_by_shard[s]) {
      // Rc holders on the same object.
      auto bucket_it = shard.buckets.find(object);
      if (bucket_it != shard.buckets.end()) add_rc_holders(bucket_it->second);

      if (object.is_relation_level()) {
        // Relation-level Wa vs tuple-level Rc anywhere in the relation.
        auto summary_it = shard.relation_summaries.find(object.relation);
        if (summary_it != shard.relation_summaries.end()) {
          for (const auto& [holder, counts2] : summary_it->second) {
            if (holder != txn &&
                counts2[static_cast<int>(LockMode::kRc)] > 0 &&
                !IsBlockingTxn(holder)) {
              victims.insert(holder);
            }
          }
        }
        // ...and fast tuple-level Rc anywhere in the relation. The
        // committer's relation-level Wa grant raised the relation guard,
        // so no new fast Rc in the relation can land; drain flushes the
        // in-flight ones.
        if (options_.fast_path) {
          for (const FastSlot& slot : shard.fast) {
            if (TotalCount(slot.word.load(std::memory_order_seq_cst)) == 0) {
              continue;
            }
            DrainSlot(slot);
            for (const auto& entry : slot.holders) {
              const TxnId holder =
                  entry.load(std::memory_order_seq_cst) >> 16;
              if (holder == 0 || holder == txn) continue;
              TxnPtr holder_state = FindTxn(holder);
              if (holder_state == nullptr) continue;
              bool holds_rc = false;
              {
                std::lock_guard<std::mutex> hg(holder_state->mu);
                for (const auto& [held_object, hold] :
                     holder_state->holds) {
                  if (held_object.relation == object.relation &&
                      !held_object.is_relation_level() &&
                      hold.fast[static_cast<int>(LockMode::kRc)] > 0) {
                    holds_rc = true;
                    break;
                  }
                }
              }
              if (holds_rc && !IsBlockingTxn(holder)) {
                victims.insert(holder);
              }
            }
          }
        }
      } else {
        // Tuple/insert Wa vs relation-level Rc (negation escalations).
        auto rel_it = shard.buckets.find(
            LockObjectId{object.relation, kRelationLevel});
        if (rel_it != shard.buckets.end()) add_rc_holders(rel_it->second);
        // ...and fast Rc on the same object. The committer's Wa blocks
        // new fast Rc grants on the slot (word incompatibility if the Wa
        // is fast, sealed bit if it is slow), so drain + enumerate is
        // exhaustive.
        if (options_.fast_path) {
          const FastSlot& slot = shard.fast[FastSlotIndex(object)];
          DrainSlot(slot);
          for (const auto& entry : slot.holders) {
            add_fast_rc_holder(entry.load(std::memory_order_seq_cst) >> 16,
                               object);
          }
        }
      }
    }
  }
  return std::vector<TxnId>(victims.begin(), victims.end());
}

void LockManager::MarkAborted(TxnId txn) {
  TraceBuffer events(this);
  MarkAbortedTxn(txn, FindTxn(txn), &events);
}

bool LockManager::IsAborted(TxnId txn) const {
  TxnPtr state = FindTxn(txn);
  return state != nullptr && state->aborted.load(std::memory_order_acquire);
}

void LockManager::SetBlocking(TxnId txn) {
  TxnPtr state = FindTxn(txn);
  if (state == nullptr) return;
#ifndef NDEBUG
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    DBPS_DCHECK(state->holds.empty())
        << "SetBlocking after locks were acquired";
  }
#endif
  if (!state->blocking.exchange(true, std::memory_order_acq_rel)) {
    blocking_txns_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool LockManager::IsBlocking(TxnId txn) const { return IsBlockingTxn(txn); }

void LockManager::Release(TxnId txn) {
  TraceBuffer events(this);
  TxnPtr state = TakeTxn(txn);
  if (state == nullptr) {
    // Unknown or double release: tolerate (the caller's rollback paths
    // may race a victimizing committer) but count — waits_for_ and the
    // buckets are left untouched.
    unknown_releases_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The txn is out of the registry, so no new grants can appear; move the
  // holds out (never hold state->mu while taking a shard mutex — lock
  // order is shard.mu -> state.mu). Taking the registry entry first also
  // orders the release for fast-path inspectors: once the record is gone,
  // FindTxn fails and they treat the holder as released.
  std::unordered_map<LockObjectId, HoldCounts, LockObjectIdHash> holds;
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    holds.swap(state->holds);
  }
  std::vector<std::vector<const LockObjectId*>> by_shard(shards_.size());
  for (const auto& [object, hold] : holds) {
    by_shard[ShardIndex(object.relation)].push_back(&object);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    // Retire fast grants first, entry before word (the drain invariant:
    // holder entries never exceed the mode-word counts), and both before
    // the mutex fence below so a waiter's recheck observes them.
    for (const LockObjectId* object : by_shard[s]) {
      const HoldCounts& hold = holds.find(*object)->second;
      const uint64_t fast_total = static_cast<uint64_t>(hold.fast[0]) +
                                  hold.fast[1] + hold.fast[2];
      if (fast_total == 0) continue;
      FastSlot& slot = shard.fast[FastSlotIndex(*object)];
      ReleaseFastHolder(slot, txn, fast_total);
      uint64_t dec = 0;
      for (int m = 0; m < kNumLockModes; ++m) {
        dec += static_cast<uint64_t>(hold.fast[m]) *
               ModeInc(static_cast<LockMode>(m));
      }
      slot.word.fetch_sub(dec, std::memory_order_seq_cst);
    }
    {
      std::lock_guard<std::mutex> shard_guard(shard.mu);
      for (const LockObjectId* object : by_shard[s]) {
        auto bucket_it = shard.buckets.find(*object);
        if (bucket_it != shard.buckets.end()) {
          if (bucket_it->second.holds.erase(txn) > 0 &&
              !object->is_relation_level()) {
            DropSealRef(shard, FastSlotIndex(*object));  // the pair's ref
          }
          if (bucket_it->second.holds.empty()) {
            shard.buckets.erase(bucket_it);
          }
        }
        if (!object->is_relation_level()) {
          auto summary_it = shard.relation_summaries.find(object->relation);
          if (summary_it != shard.relation_summaries.end()) {
            summary_it->second.erase(txn);
            if (summary_it->second.empty()) {
              shard.relation_summaries.erase(summary_it);
            }
          }
        } else {
          // Pay back the relation guard: one count per granted
          // relation-level Acquire call (== the hold's total count;
          // relation-level locks are never fast).
          const HoldCounts& hold = holds.find(*object)->second;
          const uint32_t total =
              hold.counts[0] + hold.counts[1] + hold.counts[2];
          shard.rel_guards[RelGuardIndex(object->relation)].fetch_sub(
              total, std::memory_order_seq_cst);
        }
      }
    }
    // Any waiter blocked on this txn's holds is parked on one of the
    // shards those holds live in; wake them to recompute conflicts. (The
    // lock/unlock above doubles as the fence for the fast decrements.)
    shard.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> slow_guard(slow_mu_);
    waits_for_.erase(txn);
  }
  events.Add(LockEvent::Kind::kRelease, txn, LockObjectId{}, LockMode::kRc);
}

bool LockManager::Holds(TxnId txn, LockObjectId object, LockMode mode) const {
  TxnPtr state = FindTxn(txn);
  if (state == nullptr) return false;
  std::lock_guard<std::mutex> txn_guard(state->mu);
  auto hold_it = state->holds.find(object);
  return hold_it != state->holds.end() &&
         hold_it->second.counts[static_cast<int>(mode)] > 0;
}

size_t LockManager::live_transactions() const {
  size_t total = 0;
  for (const TxnStripe& stripe : txn_stripes_) {
    std::lock_guard<std::mutex> guard(stripe.mu);
    total += stripe.txns.size();
  }
  return total;
}

LockManager::Stats LockManager::GetStats() const {
  Stats stats;
  stats.acquired = acquired_.load(std::memory_order_relaxed);
  stats.blocked = blocked_.load(std::memory_order_relaxed);
  stats.deadlocks = deadlocks_.load(std::memory_order_relaxed);
  stats.wounds = wounds_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.aborts_marked = aborts_marked_.load(std::memory_order_relaxed);
  stats.unknown_releases = unknown_releases_.load(std::memory_order_relaxed);
  stats.blocking_txns = blocking_txns_.load(std::memory_order_relaxed);
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    ShardStats shard_stats;
    {
      std::lock_guard<std::mutex> shard_guard(shard->mu);
      shard_stats = shard->stats;
    }
    shard_stats.fast_path_grants =
        shard->fast_grants.load(std::memory_order_relaxed);
    shard_stats.fast_path_cas_retries =
        shard->fast_cas_retries.load(std::memory_order_relaxed);
    stats.fast_path_grants += shard_stats.fast_path_grants;
    stats.fast_path_cas_retries += shard_stats.fast_path_cas_retries;
    stats.shards.push_back(shard_stats);
  }
  return stats;
}

}  // namespace dbps
