#include "lock/lock_manager.h"

#include <algorithm>
#include <sstream>

#include "util/failpoint.h"
#include "util/hash.h"
#include "util/logging.h"

namespace dbps {

std::string LockEvent::ToString() const {
  std::ostringstream out;
  switch (kind) {
    case Kind::kGrant:
      out << "grant   T" << txn << " " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kBlock:
      out << "block   T" << txn << " " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kDeadlock:
      out << "deadlock T" << txn << " on " << LockModeToString(mode) << "("
          << object.ToString() << ")";
      break;
    case Kind::kAbortMark:
      out << "abort   T" << txn;
      break;
    case Kind::kRelease:
      out << "release T" << txn;
      break;
  }
  return out.str();
}

const char* DeadlockPolicyToString(DeadlockPolicy policy) {
  switch (policy) {
    case DeadlockPolicy::kDetect:
      return "detect";
    case DeadlockPolicy::kWoundWait:
      return "wound-wait";
    case DeadlockPolicy::kNoWait:
      return "no-wait";
  }
  return "?";
}

LockManager::LockManager(Options options) : options_(std::move(options)) {
  const size_t n = std::max<size_t>(1, options_.num_shards);
  shards_.reserve(n);
  for (size_t i = 0; i < n; ++i) shards_.push_back(std::make_unique<Shard>());
}

size_t LockManager::ShardIndex(SymbolId relation) const {
  return static_cast<size_t>(Mix64(relation)) % shards_.size();
}

TxnId LockManager::Begin() {
  TxnId txn = next_txn_.fetch_add(1, std::memory_order_relaxed);
  auto state = std::make_shared<TxnState>();
  TxnStripe& stripe = txn_stripes_[txn % kTxnStripes];
  std::lock_guard<std::mutex> guard(stripe.mu);
  stripe.txns.emplace(txn, std::move(state));
  return txn;
}

LockManager::TxnPtr LockManager::FindTxn(TxnId txn) const {
  const TxnStripe& stripe = txn_stripes_[txn % kTxnStripes];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.txns.find(txn);
  return it == stripe.txns.end() ? nullptr : it->second;
}

LockManager::TxnPtr LockManager::TakeTxn(TxnId txn) {
  TxnStripe& stripe = txn_stripes_[txn % kTxnStripes];
  std::lock_guard<std::mutex> guard(stripe.mu);
  auto it = stripe.txns.find(txn);
  if (it == stripe.txns.end()) return nullptr;
  TxnPtr state = std::move(it->second);
  stripe.txns.erase(it);
  return state;
}

bool LockManager::IsBlockingTxn(TxnId txn) const {
  TxnPtr state = FindTxn(txn);
  return state != nullptr && state->blocking.load(std::memory_order_acquire);
}

bool LockManager::ConflictsWithHolder(bool requester_blocking, LockMode mode,
                                      TxnId holder,
                                      const ModeCounts& counts) const {
  const LockProtocol base =
      requester_blocking ? LockProtocol::kTwoPhase : options_.protocol;
  bool rcrawa_ok = true;      // compatible under the configured matrix
  bool twophase_ok = true;    // compatible under strict 2PL
  for (int m = 0; m < kNumLockModes; ++m) {
    if (counts[m] == 0) continue;
    const LockMode held = static_cast<LockMode>(m);
    if (!Compatible(base, mode, held)) rcrawa_ok = false;
    if (!Compatible(LockProtocol::kTwoPhase, mode, held)) twophase_ok = false;
  }
  if (!rcrawa_ok) return true;
  // Compatible under the configured matrix. The only cell where the
  // matrices differ is Wa-over-Rc; if the holder escalated to blocking
  // (2PL-style) acquisition, that cell conflicts after all. Only then is
  // the (registry-lookup) blocking check needed.
  if (base == LockProtocol::kRcRaWa && !twophase_ok &&
      IsBlockingTxn(holder)) {
    return true;
  }
  return false;
}

void LockManager::CollectBucketConflicts(const Bucket& bucket, TxnId txn,
                                         bool requester_blocking,
                                         LockMode mode,
                                         std::vector<TxnId>* out) const {
  for (const auto& [holder, counts] : bucket.holds) {
    if (holder == txn) continue;  // a transaction never conflicts with itself
    if (ConflictsWithHolder(requester_blocking, mode, holder, counts)) {
      out->push_back(holder);
    }
  }
}

std::vector<TxnId> LockManager::FindConflicts(const Shard& shard, TxnId txn,
                                              bool requester_blocking,
                                              const LockObjectId& object,
                                              LockMode mode) const {
  std::vector<TxnId> conflicts;
  // Direct bucket.
  auto bucket_it = shard.buckets.find(object);
  if (bucket_it != shard.buckets.end()) {
    CollectBucketConflicts(bucket_it->second, txn, requester_blocking, mode,
                           &conflicts);
  }
  if (object.is_relation_level()) {
    // Relation-level request vs every tuple/insert hold in the relation.
    auto summary_it = shard.relation_summaries.find(object.relation);
    if (summary_it != shard.relation_summaries.end()) {
      for (const auto& [holder, counts] : summary_it->second) {
        if (holder == txn) continue;
        if (ConflictsWithHolder(requester_blocking, mode, holder, counts)) {
          conflicts.push_back(holder);
        }
      }
    }
  } else {
    // Tuple/insert request vs the relation-level bucket (same shard: the
    // whole relation hashes to one stripe).
    auto rel_it =
        shard.buckets.find(LockObjectId{object.relation, kRelationLevel});
    if (rel_it != shard.buckets.end()) {
      CollectBucketConflicts(rel_it->second, txn, requester_blocking, mode,
                             &conflicts);
    }
  }
  std::sort(conflicts.begin(), conflicts.end());
  conflicts.erase(std::unique(conflicts.begin(), conflicts.end()),
                  conflicts.end());
  return conflicts;
}

bool LockManager::WouldDeadlock(TxnId txn,
                                const std::vector<TxnId>& blockers) const {
  // DFS from each blocker through waits_for_, looking for txn. The graph
  // is global (edges from waiters on every shard), so cycles whose waits
  // span shards are found here even though the lock table is striped.
  std::lock_guard<std::mutex> guard(slow_mu_);
  std::vector<TxnId> stack(blockers.begin(), blockers.end());
  std::unordered_set<TxnId> visited;
  while (!stack.empty()) {
    TxnId current = stack.back();
    stack.pop_back();
    if (current == txn) return true;
    if (!visited.insert(current).second) continue;
    auto it = waits_for_.find(current);
    if (it != waits_for_.end()) {
      stack.insert(stack.end(), it->second.begin(), it->second.end());
    }
  }
  return false;
}

void LockManager::NotifyAllShardsFenced() {
  for (auto& shard : shards_) {
    // Lock/unlock (never nested) so a waiter that checked its predicate
    // but has not yet parked cannot miss the notification.
    { std::lock_guard<std::mutex> fence(shard->mu); }
    shard->cv.notify_all();
  }
}

void LockManager::MarkAbortedTxn(TxnId txn, const TxnPtr& state,
                                 TraceBuffer* events) {
  if (state == nullptr) return;
  if (state->aborted.exchange(true, std::memory_order_acq_rel)) return;
  aborts_marked_.fetch_add(1, std::memory_order_relaxed);
  events->Add(LockEvent::Kind::kAbortMark, txn, LockObjectId{}, LockMode::kRc);
  NotifyAllShardsFenced();
}

Status LockManager::Acquire(TxnId txn, LockObjectId object, LockMode mode) {
  // Chaos site: a delayed grant — the request stalls before it even
  // reaches the manager (sleep-safe: no lock held here).
  (void)DBPS_FAILPOINT("lock.acquire.delay");

  TraceBuffer events(this);  // flushes after every guard below unwinds

  TxnPtr state = FindTxn(txn);
  if (state == nullptr) {
    return Status::Internal("Acquire on unknown transaction");
  }
  if (state->aborted.load(std::memory_order_acquire)) {
    return Status::Aborted("transaction was aborted");
  }
  // Chaos sites: a spurious wait-timeout, and a wound storm (the request
  // loses to an imaginary older transaction and is marked aborted) —
  // exactly the failures callers must already survive.
  if (DBPS_FAILPOINT("lock.acquire.timeout")) {
    timeouts_.fetch_add(1, std::memory_order_relaxed);
    return Status::LockTimeout("injected timeout on " + object.ToString());
  }
  if (DBPS_FAILPOINT("lock.acquire.wound")) {
    wounds_.fetch_add(1, std::memory_order_relaxed);
    MarkAbortedTxn(txn, state, &events);
    return Status::Aborted("injected wound on " + object.ToString());
  }

  const bool requester_blocking =
      state->blocking.load(std::memory_order_acquire);
  Shard& shard = ShardForObject(object);
  const auto deadline =
      std::chrono::steady_clock::now() + options_.wait_timeout;
  bool waited = false;

  std::unique_lock<std::mutex> shard_lock(shard.mu, std::try_to_lock);
  if (!shard_lock.owns_lock()) {
    shard_lock.lock();
    ++shard.stats.mutex_contentions;
  }
  const auto hold_start = std::chrono::steady_clock::now();

  // Fast path: already holding this mode on this object.
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    auto hold_it = state->holds.find(object);
    if (hold_it != state->holds.end() &&
        hold_it->second[static_cast<int>(mode)] > 0) {
      ++hold_it->second[static_cast<int>(mode)];
      ++shard.buckets[object].holds[txn][static_cast<int>(mode)];
      if (!object.is_relation_level()) {
        ++shard.relation_summaries[object.relation][txn]
                                  [static_cast<int>(mode)];
      }
      ++shard.stats.acquires;
      shard.stats.hold_ns += static_cast<uint64_t>(
          std::chrono::duration_cast<std::chrono::nanoseconds>(
              std::chrono::steady_clock::now() - hold_start)
              .count());
      acquired_.fetch_add(1, std::memory_order_relaxed);
      return Status::OK();
    }
  }

  for (;;) {
    std::vector<TxnId> conflicts =
        FindConflicts(shard, txn, requester_blocking, object, mode);
    if (conflicts.empty()) break;

    switch (options_.deadlock_policy) {
      case DeadlockPolicy::kNoWait:
        deadlocks_.fetch_add(1, std::memory_order_relaxed);
        events.Add(LockEvent::Kind::kDeadlock, txn, object, mode);
        return Status::Deadlock("no-wait: " + object.ToString() +
                                " is held in a conflicting mode");
      case DeadlockPolicy::kWoundWait: {
        // Wound every younger conflicting holder, then wait: waits only
        // ever target older transactions, so no cycle can form. Marking
        // fences every shard, so it must happen with this shard's mutex
        // dropped — wound, then re-enter the loop to recompute conflicts.
        std::vector<TxnId> prey;
        for (TxnId holder : conflicts) {
          if (holder > txn) prey.push_back(holder);
        }
        bool wounded_any = false;
        if (!prey.empty()) {
          shard_lock.unlock();
          for (TxnId holder : prey) {
            TxnPtr holder_state = FindTxn(holder);
            if (holder_state != nullptr &&
                !holder_state->aborted.load(std::memory_order_acquire)) {
              wounds_.fetch_add(1, std::memory_order_relaxed);
              MarkAbortedTxn(holder, holder_state, &events);
              wounded_any = true;
            }
          }
          shard_lock.lock();
          if (wounded_any) continue;  // holders will release; recompute
        }
        break;
      }
      case DeadlockPolicy::kDetect:
        if (WouldDeadlock(txn, conflicts)) {
          deadlocks_.fetch_add(1, std::memory_order_relaxed);
          events.Add(LockEvent::Kind::kDeadlock, txn, object, mode);
          return Status::Deadlock("waiting for " + object.ToString() +
                                  " would close a waits-for cycle");
        }
        break;
    }
    if (!waited) {
      waited = true;
      blocked_.fetch_add(1, std::memory_order_relaxed);
      ++shard.stats.waits;
      events.Add(LockEvent::Kind::kBlock, txn, object, mode);
    }
    {
      std::lock_guard<std::mutex> slow_guard(slow_mu_);
      waits_for_[txn] = std::move(conflicts);
    }
    auto wait_result = shard.cv.wait_until(shard_lock, deadline);
    {
      std::lock_guard<std::mutex> slow_guard(slow_mu_);
      waits_for_.erase(txn);
    }
    if (state->aborted.load(std::memory_order_acquire)) {
      return Status::Aborted("transaction aborted while waiting for " +
                             object.ToString());
    }
    if (wait_result == std::cv_status::timeout) {
      if (!FindConflicts(shard, txn, requester_blocking, object, mode)
               .empty()) {
        timeouts_.fetch_add(1, std::memory_order_relaxed);
        return Status::LockTimeout("gave up waiting for " +
                                   object.ToString());
      }
      break;
    }
  }

  // Grant.
  ++shard.buckets[object].holds[txn][static_cast<int>(mode)];
  if (!object.is_relation_level()) {
    ++shard.relation_summaries[object.relation][txn][static_cast<int>(mode)];
  }
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    auto [hold_it, unused] = state->holds.try_emplace(object, ModeCounts{});
    ++hold_it->second[static_cast<int>(mode)];
  }
  ++shard.stats.acquires;
  if (!waited) {
    shard.stats.hold_ns += static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - hold_start)
            .count());
  }
  acquired_.fetch_add(1, std::memory_order_relaxed);
  events.Add(LockEvent::Kind::kGrant, txn, object, mode);
  return Status::OK();
}

std::vector<TxnId> LockManager::CollectRcVictims(TxnId txn) const {
  // Under kTwoPhase the Wa-over-Rc cell is incompatible at *grant* time,
  // so a committer can never hold Wa concurrently with a conflicting Rc:
  // there is nothing to sweep.
  if (options_.protocol == LockProtocol::kTwoPhase) return {};

  TxnPtr state = FindTxn(txn);
  if (state == nullptr) return {};

  // Snapshot the committer's Wa objects. The committer's own thread calls
  // this, so the set is stable; and because Rc-vs-Wa is incompatible in
  // Table 4.1, no *new* conflicting Rc can be granted while these Wa
  // locks are held — the per-shard sweep below needs no global section.
  std::vector<std::vector<LockObjectId>> wa_by_shard(shards_.size());
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    for (const auto& [object, counts] : state->holds) {
      if (counts[static_cast<int>(LockMode::kWa)] > 0) {
        wa_by_shard[ShardIndex(object.relation)].push_back(object);
      }
    }
  }

  std::unordered_set<TxnId> victims;
  // Blocking (escalated) transactions are never victims: their Rc locks
  // conflict with Wa at grant time, so a committer holding Wa cannot have
  // raced past them (and exempting them is the starvation guarantee).
  auto add_rc_holders = [&](const Bucket& bucket) {
    for (const auto& [holder, counts] : bucket.holds) {
      if (holder != txn && counts[static_cast<int>(LockMode::kRc)] > 0 &&
          !IsBlockingTxn(holder)) {
        victims.insert(holder);
      }
    }
  };

  for (size_t s = 0; s < shards_.size(); ++s) {
    if (wa_by_shard[s].empty()) continue;
    const Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> shard_guard(shard.mu);
    for (const LockObjectId& object : wa_by_shard[s]) {
      // Rc holders on the same object.
      auto bucket_it = shard.buckets.find(object);
      if (bucket_it != shard.buckets.end()) add_rc_holders(bucket_it->second);

      if (object.is_relation_level()) {
        // Relation-level Wa vs tuple-level Rc anywhere in the relation.
        auto summary_it = shard.relation_summaries.find(object.relation);
        if (summary_it != shard.relation_summaries.end()) {
          for (const auto& [holder, counts2] : summary_it->second) {
            if (holder != txn &&
                counts2[static_cast<int>(LockMode::kRc)] > 0 &&
                !IsBlockingTxn(holder)) {
              victims.insert(holder);
            }
          }
        }
      } else {
        // Tuple/insert Wa vs relation-level Rc (negation escalations).
        auto rel_it = shard.buckets.find(
            LockObjectId{object.relation, kRelationLevel});
        if (rel_it != shard.buckets.end()) add_rc_holders(rel_it->second);
      }
    }
  }
  return std::vector<TxnId>(victims.begin(), victims.end());
}

void LockManager::MarkAborted(TxnId txn) {
  TraceBuffer events(this);
  MarkAbortedTxn(txn, FindTxn(txn), &events);
}

bool LockManager::IsAborted(TxnId txn) const {
  TxnPtr state = FindTxn(txn);
  return state != nullptr && state->aborted.load(std::memory_order_acquire);
}

void LockManager::SetBlocking(TxnId txn) {
  TxnPtr state = FindTxn(txn);
  if (state == nullptr) return;
#ifndef NDEBUG
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    DBPS_DCHECK(state->holds.empty())
        << "SetBlocking after locks were acquired";
  }
#endif
  if (!state->blocking.exchange(true, std::memory_order_acq_rel)) {
    blocking_txns_.fetch_add(1, std::memory_order_relaxed);
  }
}

bool LockManager::IsBlocking(TxnId txn) const { return IsBlockingTxn(txn); }

void LockManager::Release(TxnId txn) {
  TraceBuffer events(this);
  TxnPtr state = TakeTxn(txn);
  if (state == nullptr) {
    // Unknown or double release: tolerate (the caller's rollback paths
    // may race a victimizing committer) but count — waits_for_ and the
    // buckets are left untouched.
    unknown_releases_.fetch_add(1, std::memory_order_relaxed);
    return;
  }
  // The txn is out of the registry, so no new grants can appear; move the
  // holds out (never hold state->mu while taking a shard mutex — lock
  // order is shard.mu -> state.mu).
  std::unordered_map<LockObjectId, ModeCounts, LockObjectIdHash> holds;
  {
    std::lock_guard<std::mutex> txn_guard(state->mu);
    holds.swap(state->holds);
  }
  std::vector<std::vector<LockObjectId>> by_shard(shards_.size());
  for (const auto& [object, counts] : holds) {
    by_shard[ShardIndex(object.relation)].push_back(object);
  }
  for (size_t s = 0; s < shards_.size(); ++s) {
    if (by_shard[s].empty()) continue;
    Shard& shard = *shards_[s];
    {
      std::lock_guard<std::mutex> shard_guard(shard.mu);
      for (const LockObjectId& object : by_shard[s]) {
        auto bucket_it = shard.buckets.find(object);
        if (bucket_it != shard.buckets.end()) {
          bucket_it->second.holds.erase(txn);
          if (bucket_it->second.holds.empty()) {
            shard.buckets.erase(bucket_it);
          }
        }
        if (!object.is_relation_level()) {
          auto summary_it = shard.relation_summaries.find(object.relation);
          if (summary_it != shard.relation_summaries.end()) {
            summary_it->second.erase(txn);
            if (summary_it->second.empty()) {
              shard.relation_summaries.erase(summary_it);
            }
          }
        }
      }
    }
    // Any waiter blocked on this txn's holds is parked on one of the
    // shards those holds live in; wake them to recompute conflicts.
    shard.cv.notify_all();
  }
  {
    std::lock_guard<std::mutex> slow_guard(slow_mu_);
    waits_for_.erase(txn);
  }
  events.Add(LockEvent::Kind::kRelease, txn, LockObjectId{}, LockMode::kRc);
}

bool LockManager::Holds(TxnId txn, LockObjectId object, LockMode mode) const {
  TxnPtr state = FindTxn(txn);
  if (state == nullptr) return false;
  std::lock_guard<std::mutex> txn_guard(state->mu);
  auto hold_it = state->holds.find(object);
  return hold_it != state->holds.end() &&
         hold_it->second[static_cast<int>(mode)] > 0;
}

size_t LockManager::live_transactions() const {
  size_t total = 0;
  for (const TxnStripe& stripe : txn_stripes_) {
    std::lock_guard<std::mutex> guard(stripe.mu);
    total += stripe.txns.size();
  }
  return total;
}

LockManager::Stats LockManager::GetStats() const {
  Stats stats;
  stats.acquired = acquired_.load(std::memory_order_relaxed);
  stats.blocked = blocked_.load(std::memory_order_relaxed);
  stats.deadlocks = deadlocks_.load(std::memory_order_relaxed);
  stats.wounds = wounds_.load(std::memory_order_relaxed);
  stats.timeouts = timeouts_.load(std::memory_order_relaxed);
  stats.aborts_marked = aborts_marked_.load(std::memory_order_relaxed);
  stats.unknown_releases = unknown_releases_.load(std::memory_order_relaxed);
  stats.blocking_txns = blocking_txns_.load(std::memory_order_relaxed);
  stats.shards.reserve(shards_.size());
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> shard_guard(shard->mu);
    stats.shards.push_back(shard->stats);
  }
  return stats;
}

}  // namespace dbps
