// The striped lock manager (§4.2, §4.3).
//
// One manager instance serves one parallel engine run. It implements both
// protocols behind the same interface:
//
//  * kTwoPhase — all conflicts block; strict 2PL (locks released only at
//    Release, i.e. commit/abort time).
//  * kRcRaWa  — Table 4.1: a Wa request is granted even while other
//    transactions hold Rc on the object. The debt is settled at commit:
//    CollectRcVictims() returns every transaction whose outstanding Rc
//    lock conflicts with the committer's Wa set, and the engine aborts
//    (or revalidates) them — the paper's rules (i)/(ii) of §4.3.
//
// Decentralization: the paper assumes a *centralized* lock manager; this
// implementation keeps its semantics while sharding the mechanism so no
// fast-path operation takes a process-global mutex:
//
//  * The lock table is striped into Options::num_shards LockShards, each
//    with its own mutex + condition variable. An object hashes to a shard
//    by its *relation*, so a relation-level bucket, all tuple buckets of
//    that relation, its insert intents, and the per-relation summary live
//    in one shard — the relation/tuple hierarchy check never crosses a
//    shard boundary.
//  * On top of the stripes sits a *lock-free grant fast path* (DESIGN.md
//    §4.1): each shard carries an array of FastSlots — an atomic
//    mode-word (granted-count per mode + a sealed bit) plus a small array
//    of holder entries — and an uncontended tuple/intent Acquire is one
//    CAS on the mode-word, never touching the shard mutex. The slow path
//    *seals* a slot (sets the mode-word's sealed bit and drains in-flight
//    fast operations) whenever it has any interest in it — a waiter, a
//    bucket hold, an in-progress slow acquire — so a fast grant can never
//    race a waiter's wakeup or an exact conflict check. Relation-level
//    requests, which must see every tuple hold of their relation, raise a
//    per-relation guard counter instead; fast grants re-check the guard
//    after their CAS (a store-buffering/Dekker pair), so either the fast
//    grant becomes visible to the relation-level scan or it observes the
//    guard and retreats to the slow path.
//  * Transaction state lives in a separately striped registry; the
//    aborted/blocking flags are atomics so commit-time victimization and
//    wound-wait marking never touch a lock shard.
//  * The waits-for graph (deadlock detection) sits behind one slow-path
//    mutex that is touched only when a request actually blocks — the
//    grant fast path never takes it. Cycles spanning shards are detected
//    because the graph is global even though the lock table is not.
//  * CollectRcVictims is a per-shard sweep over the shards the
//    committer's Wa set touches, merged into one victim set. This is
//    stable outside any global section because Rc-vs-Wa is incompatible
//    in Table 4.1: no *new* conflicting Rc can be granted while the
//    committer still holds its Wa locks (a fast Wa in the mode-word
//    blocks fast Rc grants on its slot the same way a sealed slot does).
//
// Hierarchy: a tuple-level request also checks the relation-level bucket
// of its relation, and a relation-level request checks the per-relation
// summary of tuple-level holds, so escalated (negation) locks conflict
// correctly with tuple writes and insert intents.
//
// Deadlocks: a waits-for graph is maintained while transactions block;
// the requester that would close a cycle is chosen as victim and gets
// kDeadlock. (The non-exclusive Rc lock introduces no new deadlock kinds —
// §4.3 — so this standard scheme suffices for both protocols.) Fast
// grants never wait, so the deadlock policies engage exclusively on the
// slow path.

#ifndef DBPS_LOCK_LOCK_MANAGER_H_
#define DBPS_LOCK_LOCK_MANAGER_H_

#include <array>
#include <atomic>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lock/lock_types.h"
#include "util/status.h"

namespace dbps {

/// Default lock-table stripe count: std::thread::hardware_concurrency()
/// rounded up to a power of two, floored at 8. Rationale: with fewer
/// stripes than cores, independent relations contend on stripe mutexes
/// even when their lock sets are disjoint; rounding to a power of two
/// keeps the relation-hash modulo cheap and the stripe population even;
/// the floor keeps small hosts (and hardware_concurrency() == 0, which
/// the standard permits) at the pre-auto-sizing default of 8. This is the
/// first step of the ROADMAP NUMA item — `--lock-shards` stays as an
/// explicit override.
size_t DefaultNumLockShards();

/// \brief Observable lock-manager events (used by the figure-4.2 trace
/// bench and by tests).
struct LockEvent {
  enum class Kind : uint8_t {
    kGrant,
    kBlock,     // request found a conflict and is waiting
    kDeadlock,  // requester chosen as deadlock victim
    kAbortMark, // transaction marked aborted (Rc–Wa commit rule)
    kRelease,   // all locks of a transaction released
  };
  Kind kind;
  TxnId txn;
  LockObjectId object;  // meaningless for kRelease
  LockMode mode;        // meaningless for kRelease / kAbortMark
  std::string ToString() const;
};

/// \brief How lock-wait cycles are handled (§4.3: "the deadlock
/// prevention, avoidance, detection or resolution schemes for standard
/// 2-phase locking can be applied to our scheme as well").
enum class DeadlockPolicy : uint8_t {
  /// Detection: maintain the waits-for graph; a requester whose wait
  /// would close a cycle is the victim (gets kDeadlock).
  kDetect = 0,
  /// Avoidance, wound-wait: an older requester wounds (marks aborted)
  /// every younger conflicting holder and then waits; a younger
  /// requester simply waits. Waits only ever target older transactions,
  /// so cycles cannot form.
  kWoundWait = 1,
  /// Prevention, no-wait: any conflict immediately returns kDeadlock
  /// (the engine treats it as an abort-and-retry).
  kNoWait = 2,
};

const char* DeadlockPolicyToString(DeadlockPolicy policy);

class LockManager {
 public:
  struct Options {
    LockProtocol protocol = LockProtocol::kRcRaWa;
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
    /// Upper bound on a single wait; expiring yields kLockTimeout.
    std::chrono::milliseconds wait_timeout{10000};
    /// Lock-table stripes (clamped to >= 1). Every object of one relation
    /// hashes to the same shard, so the hierarchy check is shard-local;
    /// striping distributes *relations* across shards. Defaults to
    /// DefaultNumLockShards() — sized from the host's core count.
    size_t num_shards = DefaultNumLockShards();
    /// Enables the lock-free CAS grant fast path. Off, every acquire
    /// takes the shard mutex (the pre-fast-path behavior) — kept as an
    /// ablation/debug switch; semantics are identical either way.
    bool fast_path = true;
    /// Optional event sink. Contract (changed when the table was
    /// striped): events are buffered inside the manager's critical
    /// sections and emitted only after every internal lock has been
    /// dropped, so the sink may block, take its own locks, and even call
    /// back into the manager. It may be invoked concurrently from
    /// different threads; events of one thread arrive in that thread's
    /// order, but there is no total order across threads. Sinks shared
    /// by concurrent transactions must synchronize internally.
    std::function<void(const LockEvent&)> trace;
  };

  /// Per-stripe contention counters (observability for the sharded
  /// refactor; surfaced through Stats::shards and EngineStats).
  struct ShardStats {
    uint64_t acquires = 0;  ///< slow-path grants (incl. re-acquires) here
    uint64_t waits = 0;     ///< requests that blocked at least once here
    /// Shard-mutex acquisitions that found the mutex already held (a
    /// try_lock failed first) — the direct measure of stripe contention.
    uint64_t mutex_contentions = 0;
    /// Total shard-mutex hold time of non-blocking acquires, nanoseconds.
    /// (Blocking acquires park on the shard condvar and are excluded;
    /// they are counted in `waits` instead.)
    uint64_t hold_ns = 0;
    /// Grants served by the lock-free CAS fast path (no shard mutex).
    uint64_t fast_path_grants = 0;
    /// Failed mode-word CAS attempts that were retried (fast-path churn).
    uint64_t fast_path_cas_retries = 0;
  };

  struct Stats {
    uint64_t acquired = 0;
    uint64_t blocked = 0;    // requests that waited at least once
    uint64_t deadlocks = 0;  // kDetect cycles + kNoWait refusals
    uint64_t wounds = 0;     // kWoundWait victims
    uint64_t timeouts = 0;
    uint64_t aborts_marked = 0;
    /// Release calls naming an unknown (never begun or already released)
    /// transaction — tolerated as no-ops but counted, since a nonzero
    /// value usually means a caller double-released.
    uint64_t unknown_releases = 0;
    /// Transactions escalated to blocking (2PL-style) acquisition.
    uint64_t blocking_txns = 0;
    /// Aggregates of the per-shard fast-path counters.
    uint64_t fast_path_grants = 0;
    uint64_t fast_path_cas_retries = 0;
    /// One entry per lock-table stripe.
    std::vector<ShardStats> shards;
  };

  explicit LockManager(Options options);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  LockProtocol protocol() const { return options_.protocol; }

  size_t num_shards() const { return shards_.size(); }

  /// The stripe `object` hashes to — exposed so tests and benches can
  /// construct same-shard / cross-shard scenarios deterministically.
  size_t ShardOf(const LockObjectId& object) const {
    return ShardIndex(object.relation);
  }

  /// Starts a transaction (one production firing).
  TxnId Begin();

  /// Acquires `mode` on `object` for `txn`; blocks on conflicts.
  /// Returns kDeadlock if the wait would close a waits-for cycle,
  /// kAborted if the transaction was marked aborted (now or while
  /// waiting), kLockTimeout on wait-timeout. Re-acquiring a mode already
  /// held is cheap and always succeeds.
  Status Acquire(TxnId txn, LockObjectId object, LockMode mode);

  /// The Rc–Wa settlement (kRcRaWa commit): every other live transaction
  /// holding an Rc lock that conflicts with `txn`'s Wa set —
  ///   * Rc on the same tuple a Wa names,
  ///   * relation-level Rc in a relation where `txn` holds any Wa
  ///     (tuple write or insert intent),
  ///   * tuple-level Rc in a relation where `txn` holds relation-level Wa.
  /// Under kTwoPhase this is always empty (conflicts blocked earlier).
  /// Implemented as a per-shard sweep of the shards the Wa set touches;
  /// the result is stable until `txn` releases its Wa locks (Rc-vs-Wa is
  /// incompatible, so no new conflicting Rc can be granted meanwhile).
  std::vector<TxnId> CollectRcVictims(TxnId txn) const;

  /// Marks `txn` aborted: its blocked and future Acquires fail with
  /// kAborted. The engine decides when to actually roll back (discard the
  /// delta) and Release. Safe to call from a trace sink (sinks run
  /// outside all manager locks).
  void MarkAborted(TxnId txn);

  bool IsAborted(TxnId txn) const;

  /// Starvation escalation (the progress guarantee behind the Rc/Ra/Wa
  /// scheme's known livelock: an Rc holder can be victimized by
  /// committing writers forever). A blocking transaction acquires and
  /// holds its locks under the kTwoPhase compatibility matrix even when
  /// the manager runs kRcRaWa: a Wa is no longer granted over its Rc (the
  /// writer waits instead), it waits behind outstanding Wa holders, and
  /// CollectRcVictims never names it. Call right after Begin, before the
  /// transaction acquires any lock. (A blocking transaction never uses
  /// the fast path, and — because it must be set before any lock is
  /// acquired — a fast-path holder can never *become* blocking, which is
  /// what lets a fast Wa-over-Rc grant skip the blocking-holder check.)
  void SetBlocking(TxnId txn);

  bool IsBlocking(TxnId txn) const;

  /// Releases every lock of `txn` and forgets it. Wakes waiters. Calling
  /// it for an unknown or already-released transaction is a safe no-op
  /// (counted in Stats::unknown_releases).
  void Release(TxnId txn);

  /// True iff `txn` currently holds `mode` on `object` (tests).
  bool Holds(TxnId txn, LockObjectId object, LockMode mode) const;

  /// Number of live (begun, unreleased) transactions.
  size_t live_transactions() const;

  Stats GetStats() const;

  // --- Fast-path geometry (tests/benches) ---------------------------------

  /// Fast-path slots per shard; objects map to slots by hash, so distinct
  /// objects may share a slot (sharing is only a performance effect: a
  /// slot aggregates the mode counts of every object hashing to it, which
  /// can make a fast grant fall back to the slow path, never the
  /// reverse).
  static constexpr size_t kFastSlotsPerShard = 256;
  /// Holder entries per fast slot: at most this many distinct
  /// transactions can hold fast grants in one slot at once; overflow
  /// falls back to the slow path.
  static constexpr size_t kFastHolderSlots = 4;
  /// Relation-guard counters per shard (relation-level slow-path activity
  /// hashes here; a raised guard routes the relation's tuple acquires to
  /// the slow path).
  static constexpr size_t kRelGuardsPerShard = 64;

  /// The fast slot `object` maps to within its shard (tests).
  static size_t FastSlotIndex(const LockObjectId& object);

 private:
  using ModeCounts = std::array<uint32_t, kNumLockModes>;

  /// A transaction's hold on one object, split by grant path. `fast` is
  /// component-wise <= `counts`; the difference is the slow-path (bucket)
  /// part. Fast counts are mirrored in the object's FastSlot mode-word,
  /// slow counts in the shard bucket (and relation summary).
  struct HoldCounts {
    ModeCounts counts{};  ///< total grants per mode
    ModeCounts fast{};    ///< fast-path grants per mode
  };

  struct Bucket {
    std::unordered_map<TxnId, ModeCounts> holds;
  };

  /// One lock-free grant slot: `word` packs a 20-bit granted count per
  /// mode (bit 0 = Rc, 20 = Ra, 40 = Wa) plus the sealed bit (bit 63);
  /// `holders` are (txn << 16 | count) entries, `count` being the txn's
  /// total fast grants in this slot across modes and objects. Invariant:
  /// sum(holder counts) <= sum(word counts), with equality exactly when
  /// no fast operation is in flight — which is what DrainSlot spins on.
  struct FastSlot {
    std::atomic<uint64_t> word{0};
    std::array<std::atomic<uint64_t>, kFastHolderSlots> holders{};
  };

  /// One lock-table stripe. `mu` guards `buckets`, `relation_summaries`,
  /// `seal_refs`, and `stats`; `cv` parks requests blocked on objects of
  /// this shard. The fast-path members are atomics touched without `mu`.
  struct Shard {
    mutable std::mutex mu;
    std::condition_variable cv;
    std::unordered_map<LockObjectId, Bucket, LockObjectIdHash> buckets;
    /// Per relation: tuple/insert-level *slow-path* holds summary (for
    /// relation-level conflict checks), txn -> mode counts. Fast holds
    /// are found through the FastSlot holder entries instead.
    std::unordered_map<SymbolId, std::unordered_map<TxnId, ModeCounts>>
        relation_summaries;
    ShardStats stats;
    /// The lock-free grant slots (see FastSlot).
    std::array<FastSlot, kFastSlotsPerShard> fast;
    /// Slow-path interest per fast slot (guarded by mu): in-progress slow
    /// acquires targeting the slot + bucket (object, txn) pairs of
    /// tuple/intent objects living in it. Nonzero <=> slot sealed.
    std::array<uint32_t, kFastSlotsPerShard> seal_refs{};
    /// Relation-level slow-path activity per relation hash (atomic: read
    /// by the fast path without mu): in-progress relation-level acquires
    /// + one count per granted relation-level lock. Nonzero routes the
    /// relation's tuple/intent acquires to the slow path.
    std::array<std::atomic<uint32_t>, kRelGuardsPerShard> rel_guards{};
    std::atomic<uint64_t> fast_grants{0};
    std::atomic<uint64_t> fast_cas_retries{0};
  };

  struct TxnState {
    /// Set by conflicting committers (Rc–Wa rule) and wound-wait; read on
    /// every Acquire. Atomic so marking never touches a lock shard.
    std::atomic<bool> aborted{false};
    /// 2PL-style acquisition (starvation escalation); see SetBlocking.
    std::atomic<bool> blocking{false};
    /// Guards `holds`. Normally only the owning thread touches it, but
    /// Holds()/Release() and fast-path conflict inspection may be called
    /// cross-thread, so it is locked. Lock order is shard.mu -> state.mu
    /// (leaf); it is never held while taking a shard mutex.
    mutable std::mutex mu;
    /// object -> per-mode hold counts (total + fast split). A fast
    /// acquire publishes its tentative hold here *before* its mode-word
    /// CAS, so an inspector that observed the word increment always finds
    /// the record; the cost is that an inspector may see a hold whose CAS
    /// then fails (indistinguishable from a grant-then-release — sound).
    std::unordered_map<LockObjectId, HoldCounts, LockObjectIdHash> holds;
  };
  using TxnPtr = std::shared_ptr<TxnState>;

  /// One stripe of the transaction registry (txn-id -> state).
  struct TxnStripe {
    mutable std::mutex mu;
    std::unordered_map<TxnId, TxnPtr> txns;
  };
  static constexpr size_t kTxnStripes = 16;

  /// Buffers trace events inside critical sections; flushes to the sink
  /// at destruction, after the caller has dropped every internal lock.
  /// Declare one *before* any lock guard so it flushes after unlock.
  class TraceBuffer {
   public:
    explicit TraceBuffer(const LockManager* lm) : lm_(lm) {}
    TraceBuffer(const TraceBuffer&) = delete;
    TraceBuffer& operator=(const TraceBuffer&) = delete;
    ~TraceBuffer() {
      for (const LockEvent& event : events_) lm_->options_.trace(event);
    }
    void Add(LockEvent::Kind kind, TxnId txn, const LockObjectId& object,
             LockMode mode) {
      if (lm_->options_.trace) events_.push_back(LockEvent{kind, txn, object, mode});
    }

   private:
    const LockManager* lm_;
    std::vector<LockEvent> events_;
  };

  class SlowAcquireRef;  // RAII for slow-path seal/guard bookkeeping

  size_t ShardIndex(SymbolId relation) const;
  Shard& ShardForObject(const LockObjectId& object) {
    return *shards_[ShardIndex(object.relation)];
  }

  static size_t RelGuardIndex(SymbolId relation);

  TxnPtr FindTxn(TxnId txn) const;
  /// Removes `txn` from the registry and returns its state (null if
  /// unknown).
  TxnPtr TakeTxn(TxnId txn);

  /// True iff `txn` is live and escalated to blocking.
  bool IsBlockingTxn(TxnId txn) const;

  // --- Lock-free fast path ------------------------------------------------

  /// The optimistic CAS grant: publishes a tentative hold, CASes the
  /// slot's mode-word if the request is compatible with every granted
  /// mode (Table 4.1, including Wa-over-Rc under kRcRaWa) and the slot is
  /// unsealed, re-checks the relation guard (Dekker), and claims a holder
  /// entry. Any failure retracts everything and reports false (fall back
  /// to the slow path). Never blocks, never takes the shard mutex.
  bool TryFastAcquire(Shard& shard, const TxnPtr& state, TxnId txn,
                      const LockObjectId& object, LockMode mode);

  /// Registers/unregisters slow-path interest in a fast slot (both
  /// require shard.mu). The 0->1 transition seals the slot and drains
  /// in-flight fast operations; the 1->0 transition unseals it.
  void AddSealRef(Shard& shard, size_t slot_index) const;
  void DropSealRef(Shard& shard, size_t slot_index) const;

  /// Spins until the slot's holder entries account for every mode-word
  /// count — i.e. no fast operation is in flight. Callers must have cut
  /// off new *conflicting* grants first (sealed slot, raised relation
  /// guard, or an incompatible mode held), or the spin may be unbounded.
  static void DrainSlot(const FastSlot& slot);

  /// Claims (or increments) `txn`'s holder entry in `slot`; false when
  /// the entry table is full or the per-entry count saturated.
  static bool ClaimFastHolder(FastSlot& slot, TxnId txn);
  /// Decrements `txn`'s holder entry by `count`, freeing it at zero.
  static void ReleaseFastHolder(FastSlot& slot, TxnId txn, uint64_t count);

  /// Fast holders of `object` that conflict with (txn, mode) — inspects
  /// each holder entry's transaction record for its exact holds on
  /// `object`. Requires the slot sealed + drained (slow path) so no
  /// grant is in flight.
  void CollectFastObjectConflicts(const FastSlot& slot, TxnId txn,
                                  bool requester_blocking,
                                  const LockObjectId& object, LockMode mode,
                                  std::vector<TxnId>* out) const;

  /// Fast holders anywhere in `relation` that conflict with a
  /// relation-level (txn, mode) request. Requires the relation guard
  /// raised (no new fast grant in the relation can land); drains each
  /// active slot before enumerating it.
  void CollectFastRelationConflicts(const Shard& shard, TxnId txn,
                                    bool requester_blocking,
                                    SymbolId relation, LockMode mode,
                                    std::vector<TxnId>* out) const;

  /// Conflicting holders within one bucket under the striped protocol
  /// rules. `requester_blocking` caches the requester's escalation state.
  /// Requires the owning shard's mu held.
  void CollectBucketConflicts(const Bucket& bucket, TxnId txn,
                              bool requester_blocking, LockMode mode,
                              std::vector<TxnId>* out) const;

  /// All transactions (other than `txn`) whose holds on relevant buckets
  /// of `shard` — or fast slots — conflict with (object, mode). Requires
  /// shard.mu held and the object's slow-path seal/guard registered.
  std::vector<TxnId> FindConflicts(const Shard& shard, TxnId txn,
                                   bool requester_blocking,
                                   const LockObjectId& object,
                                   LockMode mode) const;

  /// True iff a (requester holds-conflict holder) pair conflicts, given
  /// the holder's per-mode counts.
  bool ConflictsWithHolder(bool requester_blocking, LockMode mode,
                           TxnId holder, const ModeCounts& counts) const;

  /// True iff adding edge txn -> blockers closes a cycle. Takes the
  /// slow-path mutex internally.
  bool WouldDeadlock(TxnId txn, const std::vector<TxnId>& blockers) const;

  /// Marks `state` aborted and wakes any shard it may be parked on.
  /// Must be called with NO shard mutex held (it fences every shard's
  /// mutex to close the check-then-wait race).
  void MarkAbortedTxn(TxnId txn, const TxnPtr& state, TraceBuffer* events);

  /// Lock/unlock every shard mutex in turn (never nested) and notify its
  /// condvar — the lost-wakeup fence for flag-only state changes.
  void NotifyAllShardsFenced();

  Options options_;

  std::vector<std::unique_ptr<Shard>> shards_;
  std::array<TxnStripe, kTxnStripes> txn_stripes_;

  /// Slow path only: waits-for edges of currently blocked requesters.
  /// Touched exclusively when a request blocks (register/erase/DFS) —
  /// never on the grant fast path.
  mutable std::mutex slow_mu_;
  std::unordered_map<TxnId, std::vector<TxnId>> waits_for_;

  std::atomic<TxnId> next_txn_{1};

  // Aggregate counters (Stats); per-shard counters live in Shard::stats.
  std::atomic<uint64_t> acquired_{0};
  std::atomic<uint64_t> blocked_{0};
  std::atomic<uint64_t> deadlocks_{0};
  std::atomic<uint64_t> wounds_{0};
  std::atomic<uint64_t> timeouts_{0};
  std::atomic<uint64_t> aborts_marked_{0};
  std::atomic<uint64_t> unknown_releases_{0};
  std::atomic<uint64_t> blocking_txns_{0};
};

}  // namespace dbps

#endif  // DBPS_LOCK_LOCK_MANAGER_H_
