// The centralized lock manager (§4.2, §4.3).
//
// One manager instance serves one parallel engine run. It implements both
// protocols behind the same interface:
//
//  * kTwoPhase — all conflicts block; strict 2PL (locks released only at
//    Release, i.e. commit/abort time).
//  * kRcRaWa  — Table 4.1: a Wa request is granted even while other
//    transactions hold Rc on the object. The debt is settled at commit:
//    CollectRcVictims() returns every transaction whose outstanding Rc
//    lock conflicts with the committer's Wa set, and the engine aborts
//    (or revalidates) them — the paper's rules (i)/(ii) of §4.3.
//
// Hierarchy: a tuple-level request also checks the relation-level bucket
// of its relation, and a relation-level request checks the per-relation
// summary of tuple-level holds, so escalated (negation) locks conflict
// correctly with tuple writes and insert intents.
//
// Deadlocks: a waits-for graph is maintained while transactions block;
// the requester that would close a cycle is chosen as victim and gets
// kDeadlock. (The non-exclusive Rc lock introduces no new deadlock kinds —
// §4.3 — so this standard scheme suffices for both protocols.)

#ifndef DBPS_LOCK_LOCK_MANAGER_H_
#define DBPS_LOCK_LOCK_MANAGER_H_

#include <array>
#include <chrono>
#include <condition_variable>
#include <functional>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "lock/lock_types.h"
#include "util/status.h"

namespace dbps {

/// \brief Observable lock-manager events (used by the figure-4.2 trace
/// bench and by tests).
struct LockEvent {
  enum class Kind : uint8_t {
    kGrant,
    kBlock,     // request found a conflict and is waiting
    kDeadlock,  // requester chosen as deadlock victim
    kAbortMark, // transaction marked aborted (Rc–Wa commit rule)
    kRelease,   // all locks of a transaction released
  };
  Kind kind;
  TxnId txn;
  LockObjectId object;  // meaningless for kRelease
  LockMode mode;        // meaningless for kRelease / kAbortMark
  std::string ToString() const;
};

/// \brief How lock-wait cycles are handled (§4.3: "the deadlock
/// prevention, avoidance, detection or resolution schemes for standard
/// 2-phase locking can be applied to our scheme as well").
enum class DeadlockPolicy : uint8_t {
  /// Detection: maintain the waits-for graph; a requester whose wait
  /// would close a cycle is the victim (gets kDeadlock).
  kDetect = 0,
  /// Avoidance, wound-wait: an older requester wounds (marks aborted)
  /// every younger conflicting holder and then waits; a younger
  /// requester simply waits. Waits only ever target older transactions,
  /// so cycles cannot form.
  kWoundWait = 1,
  /// Prevention, no-wait: any conflict immediately returns kDeadlock
  /// (the engine treats it as an abort-and-retry).
  kNoWait = 2,
};

const char* DeadlockPolicyToString(DeadlockPolicy policy);

class LockManager {
 public:
  struct Options {
    LockProtocol protocol = LockProtocol::kRcRaWa;
    DeadlockPolicy deadlock_policy = DeadlockPolicy::kDetect;
    /// Upper bound on a single wait; expiring yields kLockTimeout.
    std::chrono::milliseconds wait_timeout{10000};
    /// Optional event sink (called with the manager's mutex held — keep
    /// it fast and do not call back into the manager).
    std::function<void(const LockEvent&)> trace;
  };

  struct Stats {
    uint64_t acquired = 0;
    uint64_t blocked = 0;    // requests that waited at least once
    uint64_t deadlocks = 0;  // kDetect cycles + kNoWait refusals
    uint64_t wounds = 0;     // kWoundWait victims
    uint64_t timeouts = 0;
    uint64_t aborts_marked = 0;
    /// Release calls naming an unknown (never begun or already released)
    /// transaction — tolerated as no-ops but counted, since a nonzero
    /// value usually means a caller double-released.
    uint64_t unknown_releases = 0;
    /// Transactions escalated to blocking (2PL-style) acquisition.
    uint64_t blocking_txns = 0;
  };

  explicit LockManager(Options options);

  LockManager(const LockManager&) = delete;
  LockManager& operator=(const LockManager&) = delete;

  LockProtocol protocol() const { return options_.protocol; }

  /// Starts a transaction (one production firing).
  TxnId Begin();

  /// Acquires `mode` on `object` for `txn`; blocks on conflicts.
  /// Returns kDeadlock if the wait would close a waits-for cycle,
  /// kAborted if the transaction was marked aborted (now or while
  /// waiting), kLockTimeout on wait-timeout. Re-acquiring a mode already
  /// held is cheap and always succeeds.
  Status Acquire(TxnId txn, LockObjectId object, LockMode mode);

  /// The Rc–Wa settlement (kRcRaWa commit): every other live transaction
  /// holding an Rc lock that conflicts with `txn`'s Wa set —
  ///   * Rc on the same tuple a Wa names,
  ///   * relation-level Rc in a relation where `txn` holds any Wa
  ///     (tuple write or insert intent),
  ///   * tuple-level Rc in a relation where `txn` holds relation-level Wa.
  /// Under kTwoPhase this is always empty (conflicts blocked earlier).
  std::vector<TxnId> CollectRcVictims(TxnId txn) const;

  /// Marks `txn` aborted: its blocked and future Acquires fail with
  /// kAborted. The engine decides when to actually roll back (discard the
  /// delta) and Release.
  void MarkAborted(TxnId txn);

  bool IsAborted(TxnId txn) const;

  /// Starvation escalation (the progress guarantee behind the Rc/Ra/Wa
  /// scheme's known livelock: an Rc holder can be victimized by
  /// committing writers forever). A blocking transaction acquires and
  /// holds its locks under the kTwoPhase compatibility matrix even when
  /// the manager runs kRcRaWa: a Wa is no longer granted over its Rc (the
  /// writer waits instead), it waits behind outstanding Wa holders, and
  /// CollectRcVictims never names it. Call right after Begin, before the
  /// transaction acquires any lock.
  void SetBlocking(TxnId txn);

  bool IsBlocking(TxnId txn) const;

  /// Releases every lock of `txn` and forgets it. Wakes waiters. Calling
  /// it for an unknown or already-released transaction is a safe no-op
  /// (counted in Stats::unknown_releases).
  void Release(TxnId txn);

  /// True iff `txn` currently holds `mode` on `object` (tests).
  bool Holds(TxnId txn, LockObjectId object, LockMode mode) const;

  /// Number of live (begun, unreleased) transactions.
  size_t live_transactions() const;

  Stats GetStats() const;

 private:
  using ModeCounts = std::array<uint32_t, kNumLockModes>;

  struct Bucket {
    std::unordered_map<TxnId, ModeCounts> holds;
  };

  struct TxnState {
    /// object -> per-mode hold counts.
    std::unordered_map<LockObjectId, ModeCounts, LockObjectIdHash> holds;
    bool aborted = false;
    /// 2PL-style acquisition (starvation escalation); see SetBlocking.
    bool blocking = false;
  };

  /// True iff `txn` is live and escalated to blocking. Requires mu_ held.
  bool BlockingLocked(TxnId txn) const;

  /// The compatibility matrix governing a (requester, holder) pair: the
  /// configured protocol, downgraded to kTwoPhase when either side is a
  /// blocking (escalated) transaction. Requires mu_ held.
  LockProtocol ProtocolFor(TxnId requester, TxnId holder) const;

  /// All transactions (other than `txn`) whose holds on relevant buckets
  /// conflict with (object, mode). Requires mu_ held.
  std::vector<TxnId> FindConflicts(TxnId txn, const LockObjectId& object,
                                   LockMode mode) const;

  /// Conflicting holders within one bucket. Requires mu_ held.
  void CollectBucketConflicts(const Bucket& bucket, TxnId txn, LockMode mode,
                              std::vector<TxnId>* out) const;

  /// True iff adding edge txn -> blockers closes a cycle. Requires mu_.
  bool WouldDeadlock(TxnId txn, const std::vector<TxnId>& blockers) const;

  /// Marks a transaction aborted. Requires mu_ held.
  void MarkAbortedLocked(TxnId txn);

  void Trace(LockEvent::Kind kind, TxnId txn, const LockObjectId& object,
             LockMode mode) const;

  Options options_;

  mutable std::mutex mu_;
  std::condition_variable cv_;
  TxnId next_txn_ = 1;
  std::unordered_map<TxnId, TxnState> txns_;
  std::unordered_map<LockObjectId, Bucket, LockObjectIdHash> buckets_;
  /// Per relation: tuple/insert-level holds summary (for relation-level
  /// conflict checks), txn -> mode counts.
  std::unordered_map<SymbolId, std::unordered_map<TxnId, ModeCounts>>
      relation_summaries_;
  /// Waits-for edges of currently blocked requesters.
  std::unordered_map<TxnId, std::vector<TxnId>> waits_for_;
  Stats stats_;
};

}  // namespace dbps

#endif  // DBPS_LOCK_LOCK_MANAGER_H_
