#include "lock/lock_types.h"

#include <sstream>

namespace dbps {

std::string LockObjectId::ToString() const {
  std::ostringstream out;
  out << SymName(relation);
  if (is_relation_level()) {
    out << "/*";
  } else if (is_insert_intent()) {
    out << "/+insert" << (wme - kInsertLockBase);
  } else {
    out << "/#" << wme;
  }
  return out.str();
}

const char* LockModeToString(LockMode mode) {
  switch (mode) {
    case LockMode::kRc:
      return "Rc";
    case LockMode::kRa:
      return "Ra";
    case LockMode::kWa:
      return "Wa";
  }
  return "?";
}

const char* LockProtocolToString(LockProtocol protocol) {
  switch (protocol) {
    case LockProtocol::kTwoPhase:
      return "2PL";
    case LockProtocol::kRcRaWa:
      return "Rc/Ra/Wa";
  }
  return "?";
}

bool Compatible(LockProtocol protocol, LockMode requested, LockMode held) {
  // Reads are always mutually compatible.
  if (requested != LockMode::kWa && held != LockMode::kWa) return true;
  // Wa requested over an outstanding Rc: the paper's enhanced-parallelism
  // cell — grantable only under the Rc/Ra/Wa protocol.
  if (requested == LockMode::kWa && held == LockMode::kRc) {
    return protocol == LockProtocol::kRcRaWa;
  }
  // Every other pairing involving Wa conflicts.
  return false;
}

std::string CompatibilityMatrixToString(LockProtocol protocol) {
  static constexpr LockMode kModes[] = {LockMode::kRc, LockMode::kRa,
                                        LockMode::kWa};
  std::ostringstream out;
  out << "held:      Rc   Ra   Wa\n";
  for (LockMode requested : kModes) {
    out << "req " << LockModeToString(requested) << ":  ";
    for (LockMode held : kModes) {
      out << "   " << (Compatible(protocol, requested, held) ? "Y" : "N");
    }
    out << "\n";
  }
  return out.str();
}

}  // namespace dbps
