// Lock vocabulary: objects, modes, protocols, compatibility (Table 4.1).

#ifndef DBPS_LOCK_LOCK_TYPES_H_
#define DBPS_LOCK_LOCK_TYPES_H_

#include <cstdint>
#include <functional>
#include <string>

#include "util/hash.h"
#include "value/symbol_table.h"
#include "wm/wme.h"

namespace dbps {

using TxnId = uint64_t;

/// WME ids start at 1; id 0 in a LockObjectId denotes the whole relation
/// (the paper's escalated lock, "equivalent to locking the appropriate
/// tuple in the SYSTEM-CATALOG relation").
inline constexpr WmeId kRelationLevel = 0;

/// Pseudo-ids at or above this base name per-transaction insert intents
/// (creates don't know their WME id before commit). They conflict with
/// relation-level locks via the hierarchy check but never with each other.
inline constexpr WmeId kInsertLockBase = 1ULL << 62;

/// \brief A lockable data object: a tuple, a whole relation, or an insert
/// intent within a relation.
struct LockObjectId {
  SymbolId relation = 0;
  WmeId wme = kRelationLevel;

  bool is_relation_level() const { return wme == kRelationLevel; }
  bool is_insert_intent() const { return wme >= kInsertLockBase; }

  bool operator==(const LockObjectId& other) const {
    return relation == other.relation && wme == other.wme;
  }
  bool operator<(const LockObjectId& other) const {
    return relation != other.relation ? relation < other.relation
                                      : wme < other.wme;
  }
  std::string ToString() const;
};

/// The per-transaction insert-intent lock object for creates into
/// `relation`. Intents of different transactions never conflict with each
/// other, only (via the hierarchy) with relation-level locks.
inline LockObjectId InsertIntentObject(SymbolId relation, TxnId txn) {
  return LockObjectId{relation, kInsertLockBase + txn};
}

struct LockObjectIdHash {
  size_t operator()(const LockObjectId& id) const {
    return Mix64((static_cast<uint64_t>(id.relation) << 48) ^ id.wme);
  }
};

/// \brief The paper's three lock modes (§4.3):
///   Rc — read lock for condition evaluation
///   Ra — read lock for action execution
///   Wa — write lock for action execution
enum class LockMode : uint8_t { kRc = 0, kRa = 1, kWa = 2 };
inline constexpr int kNumLockModes = 3;

const char* LockModeToString(LockMode mode);

/// \brief Which compatibility matrix the lock manager runs.
///   kTwoPhase — conventional 2PL (§4.2): Rc/Ra behave as shared, Wa as
///               exclusive; every conflict blocks.
///   kRcRaWa   — the improved scheme (§4.3, Table 4.1): Wa is granted over
///               outstanding Rc locks; consistency is restored at commit
//                by aborting (or revalidating) the Rc holders.
enum class LockProtocol : uint8_t { kTwoPhase = 0, kRcRaWa = 1 };

const char* LockProtocolToString(LockProtocol protocol);

/// \brief Table 4.1: is `requested` grantable while another transaction
/// holds `held`?
///
///            held: Rc   Ra   Wa
///   req Rc:        Y    Y    N
///   req Ra:        Y    Y    N
///   req Wa:        Y*   N    N      (* kRcRaWa only — the paper's key cell)
bool Compatible(LockProtocol protocol, LockMode requested, LockMode held);

/// \brief Renders the protocol's compatibility matrix (bench/table 4.1).
std::string CompatibilityMatrixToString(LockProtocol protocol);

}  // namespace dbps

#endif  // DBPS_LOCK_LOCK_TYPES_H_
