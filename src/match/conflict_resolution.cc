#include "match/conflict_resolution.h"

#include <algorithm>

#include "util/logging.h"

namespace dbps {

const char* ConflictResolutionToString(ConflictResolution strategy) {
  switch (strategy) {
    case ConflictResolution::kPriority:
      return "priority";
    case ConflictResolution::kLex:
      return "lex";
    case ConflictResolution::kMea:
      return "mea";
    case ConflictResolution::kFifo:
      return "fifo";
    case ConflictResolution::kRandom:
      return "random";
  }
  return "?";
}

namespace {

/// Time tags of the matched WMEs, sorted descending (LEX's recency key).
std::vector<TimeTag> SortedTagsDesc(const Instantiation& inst) {
  std::vector<TimeTag> tags;
  tags.reserve(inst.matched().size());
  for (const auto& wme : inst.matched()) tags.push_back(wme->tag());
  std::sort(tags.begin(), tags.end(), std::greater<TimeTag>());
  return tags;
}

/// Specificity: total number of tests in the rule's LHS.
size_t Specificity(const Rule& rule) {
  size_t n = 0;
  for (const auto& cond : rule.conditions()) {
    n += cond.constant_tests.size() + cond.member_tests.size() +
         cond.intra_tests.size() + cond.join_tests.size() +
         1;  // +1 for the relation test itself
  }
  return n;
}

/// -1 / 0 / +1 lexicographic comparison of descending tag lists.
int CompareTagsDesc(const std::vector<TimeTag>& a,
                    const std::vector<TimeTag>& b) {
  size_t n = std::min(a.size(), b.size());
  for (size_t i = 0; i < n; ++i) {
    if (a[i] != b[i]) return a[i] > b[i] ? 1 : -1;
  }
  if (a.size() != b.size()) return a.size() > b.size() ? 1 : -1;
  return 0;
}

int LexCompare(const Instantiation& a, const Instantiation& b) {
  int recency = CompareTagsDesc(SortedTagsDesc(a), SortedTagsDesc(b));
  if (recency != 0) return recency;
  size_t spec_a = Specificity(*a.rule());
  size_t spec_b = Specificity(*b.rule());
  if (spec_a != spec_b) return spec_a > spec_b ? 1 : -1;
  // Deterministic final tie-break on the key.
  std::string key_a = a.key().ToString();
  std::string key_b = b.key().ToString();
  if (key_a != key_b) return key_a < key_b ? 1 : -1;
  return 0;
}

int MeaCompare(const Instantiation& a, const Instantiation& b) {
  // MEA: the time tag of the WME matching the *first* CE dominates.
  TimeTag first_a = a.matched().empty() ? 0 : a.matched()[0]->tag();
  TimeTag first_b = b.matched().empty() ? 0 : b.matched()[0]->tag();
  if (first_a != first_b) return first_a > first_b ? 1 : -1;
  return LexCompare(a, b);
}

}  // namespace

bool LexDominates(const Instantiation& a, const Instantiation& b) {
  return LexCompare(a, b) > 0;
}

bool MeaDominates(const Instantiation& a, const Instantiation& b) {
  return MeaCompare(a, b) > 0;
}

const InstPtr* SelectDominant(const std::vector<Candidate>& candidates,
                              ConflictResolution strategy, Random* rng) {
  if (candidates.empty()) return nullptr;
  switch (strategy) {
    case ConflictResolution::kRandom: {
      DBPS_CHECK(rng != nullptr);
      return candidates[rng->Uniform(candidates.size())].inst;
    }
    case ConflictResolution::kFifo: {
      const Candidate* best = &candidates[0];
      for (const auto& c : candidates) {
        if (c.activation_seq < best->activation_seq) best = &c;
      }
      return best->inst;
    }
    case ConflictResolution::kLex: {
      const Candidate* best = &candidates[0];
      for (const auto& c : candidates) {
        if (LexCompare(**c.inst, **best->inst) > 0) best = &c;
      }
      return best->inst;
    }
    case ConflictResolution::kMea: {
      const Candidate* best = &candidates[0];
      for (const auto& c : candidates) {
        if (MeaCompare(**c.inst, **best->inst) > 0) best = &c;
      }
      return best->inst;
    }
    case ConflictResolution::kPriority: {
      const Candidate* best = &candidates[0];
      for (const auto& c : candidates) {
        int prio_c = (*c.inst)->rule()->priority();
        int prio_best = (*best->inst)->rule()->priority();
        if (prio_c > prio_best ||
            (prio_c == prio_best &&
             LexCompare(**c.inst, **best->inst) > 0)) {
          best = &c;
        }
      }
      return best->inst;
    }
  }
  return nullptr;
}

}  // namespace dbps
