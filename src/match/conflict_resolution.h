// Conflict-resolution strategies for the select phase.
//
// Per the paper (§3.2), strategies like OPS5's LEX and MEA are heuristics
// that *favor* sequences; they never rule a sequence out, so correctness is
// independent of the strategy chosen. All strategies here are deterministic
// given their inputs (kRandom is deterministic given its PRNG seed).

#ifndef DBPS_MATCH_CONFLICT_RESOLUTION_H_
#define DBPS_MATCH_CONFLICT_RESOLUTION_H_

#include <cstdint>
#include <string>
#include <vector>

#include "match/instantiation.h"
#include "util/random.h"

namespace dbps {

enum class ConflictResolution : uint8_t {
  kPriority,  ///< rule priority desc, then LEX ordering as tie-break
  kLex,       ///< OPS5 LEX: recency of sorted time tags, then specificity
  kMea,       ///< OPS5 MEA: first-CE recency first, then LEX
  kFifo,      ///< oldest activation first
  kRandom,    ///< uniform over the candidates (seeded)
};

const char* ConflictResolutionToString(ConflictResolution strategy);

/// \brief A candidate with its activation sequence number (for kFifo).
struct Candidate {
  const InstPtr* inst;
  uint64_t activation_seq;
};

/// \brief Picks the dominant instantiation among `candidates` under
/// `strategy`. Returns nullptr iff candidates is empty. `rng` is only
/// consulted for kRandom.
const InstPtr* SelectDominant(const std::vector<Candidate>& candidates,
                              ConflictResolution strategy, Random* rng);

/// \brief Total order used by kLex (exposed for tests): true if `a`
/// dominates `b`.
bool LexDominates(const Instantiation& a, const Instantiation& b);

/// \brief Total order used by kMea.
bool MeaDominates(const Instantiation& a, const Instantiation& b);

}  // namespace dbps

#endif  // DBPS_MATCH_CONFLICT_RESOLUTION_H_
