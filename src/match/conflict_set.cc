#include "match/conflict_set.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace dbps {

void ConflictSet::Activate(InstPtr inst) {
  DBPS_CHECK(inst != nullptr);
  InstKey key = inst->key();
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    sink_->push_back(ConflictEvent{true, std::move(inst), std::move(key)});
    return;
  }
  if (refraction_ && fired_.count(key) != 0) return;
  active_.emplace(std::move(key), Entry{std::move(inst), next_seq_++});
}

void ConflictSet::Deactivate(const InstKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  if (sink_ != nullptr) {
    sink_->push_back(ConflictEvent{false, nullptr, key});
    return;
  }
  active_.erase(key);
  claimed_.erase(key);
  fired_.erase(key);
}

void ConflictSet::SetEventSink(std::vector<ConflictEvent>* events) {
  std::lock_guard<std::mutex> lock(mu_);
  sink_ = events;
}

InstPtr ConflictSet::Find(const InstKey& key) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = active_.find(key);
  return it == active_.end() ? nullptr : it->second.inst;
}

InstPtr ConflictSet::Claim(ConflictResolution strategy, Random* rng) {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<Candidate> candidates;
  candidates.reserve(active_.size());
  for (const auto& [key, entry] : active_) {
    if (claimed_.count(key) == 0) {
      candidates.push_back(Candidate{&entry.inst, entry.activation_seq});
    }
  }
  const InstPtr* selected = SelectDominant(candidates, strategy, rng);
  if (selected == nullptr) return nullptr;
  claimed_.insert((*selected)->key());
  return *selected;
}

void ConflictSet::Unclaim(const InstKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  claimed_.erase(key);
}

void ConflictSet::MarkFired(const InstKey& key) {
  std::lock_guard<std::mutex> lock(mu_);
  active_.erase(key);
  claimed_.erase(key);
  if (refraction_) fired_.insert(key);
}

void ConflictSet::EnableRefractionMemory(bool enabled) {
  std::lock_guard<std::mutex> lock(mu_);
  refraction_ = enabled;
  if (!enabled) fired_.clear();
}

std::vector<InstPtr> ConflictSet::Snapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InstPtr> out;
  out.reserve(active_.size());
  for (const auto& [key, entry] : active_) out.push_back(entry.inst);
  return out;
}

std::vector<InstPtr> ConflictSet::SelectableSnapshot() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<InstPtr> out;
  out.reserve(active_.size());
  for (const auto& [key, entry] : active_) {
    if (claimed_.count(key) == 0) out.push_back(entry.inst);
  }
  return out;
}

std::string ConflictSet::ToString() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::ostringstream out;
  out << "conflict set (" << active_.size() << "):";
  for (const auto& [key, entry] : active_) {
    out << "\n  " << entry.inst->ToString();
    if (claimed_.count(key) != 0) out << " [claimed]";
  }
  return out.str();
}

std::string ConflictSet::CanonicalDump() const {
  std::vector<std::string> lines;
  {
    std::lock_guard<std::mutex> lock(mu_);
    lines.reserve(active_.size());
    for (const auto& [key, entry] : active_) {
      lines.push_back(entry.inst->ToString());
    }
  }
  std::sort(lines.begin(), lines.end());
  std::ostringstream out;
  for (const std::string& line : lines) out << line << "\n";
  return out.str();
}

}  // namespace dbps
