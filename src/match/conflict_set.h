// The conflict set (the paper's "set of active productions", PA).
//
// Holds the currently satisfied instantiations. Supports the parallel
// engines' claim/unclaim protocol: a claimed instantiation is being
// executed by some worker and is not selectable, but remains subject to
// deactivation if a committing writer invalidates it.
//
// Thread-safe: every operation takes an internal mutex, so workers can
// claim/validate concurrently with the committer's matcher propagation
// without any engine-wide lock. Compound read-modify sequences (e.g.
// "Contains then Claim") are NOT atomic across calls; engines that need
// a stable answer must tolerate the race (a stale claim is detected at
// commit validation).

#ifndef DBPS_MATCH_CONFLICT_SET_H_
#define DBPS_MATCH_CONFLICT_SET_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "match/conflict_resolution.h"
#include "match/instantiation.h"

namespace dbps {

/// One diverted conflict-set mutation (see ConflictSet::SetEventSink):
/// either an activation (inst set) or a deactivation (key set).
struct ConflictEvent {
  bool activate = false;
  InstPtr inst;  // set iff activate
  InstKey key;   // set iff !activate
};

/// \brief The set of active (satisfied) instantiations.
class ConflictSet {
 public:
  /// Activates an instantiation (match phase found it satisfied).
  /// Re-activating an already-active key is a no-op.
  void Activate(InstPtr inst);

  /// Deactivates (LHS no longer satisfied). No-op if absent.
  void Deactivate(const InstKey& key);

  /// Diverts subsequent Activate/Deactivate calls into `events` (appended
  /// in call order) instead of mutating this set; nullptr restores normal
  /// behavior. PartitionedMatcher points each partition-local matcher's
  /// set at a per-partition buffer, then replays the buffers onto the
  /// shared engine-facing set in canonical partition order — replaying an
  /// event stream through Activate/Deactivate reproduces the exact
  /// mutations the recording matcher would have made. While a sink is
  /// installed the set itself never changes, so reads are vacuous.
  void SetEventSink(std::vector<ConflictEvent>* events);

  bool Contains(const InstKey& key) const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.count(key) != 0;
  }

  /// The active instantiation for `key`, or nullptr. Returned by value:
  /// a pointer into the set would dangle under concurrent deactivation.
  InstPtr Find(const InstKey& key) const;

  /// Selects the dominant unclaimed instantiation under `strategy` and
  /// marks it claimed. Returns nullptr if none is selectable.
  InstPtr Claim(ConflictResolution strategy, Random* rng);

  /// Returns a claimed instantiation to the selectable pool (abort path).
  /// No-op if the key is no longer active (it was invalidated meanwhile).
  void Unclaim(const InstKey& key);

  /// Marks a claimed instantiation as fired: removes it entirely. With
  /// refraction memory enabled, also records a tombstone so a later
  /// re-activation of the same key (e.g. a quiescent-point rebuild of
  /// partition matchers re-deriving a fired-but-still-satisfied
  /// instantiation) is suppressed instead of re-entering the set.
  void MarkFired(const InstKey& key);

  /// Enables refraction tombstones (see MarkFired). Off by default: the
  /// serial matchers never re-derive a fired instantiation, so only the
  /// skew-adaptive partitioned matcher (whose split/re-home rebuilds
  /// re-scan state from a snapshot) needs it. A Deactivate erases the
  /// key's tombstone — the LHS ceased to hold, so any later activation
  /// is a genuinely new episode, matching serial negated-CE semantics.
  void EnableRefractionMemory(bool enabled);

  size_t size() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.size();
  }
  size_t num_claimed() const {
    std::lock_guard<std::mutex> lock(mu_);
    return claimed_.size();
  }
  bool empty() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.empty();
  }

  /// True iff at least one active instantiation is unclaimed.
  bool HasSelectable() const {
    std::lock_guard<std::mutex> lock(mu_);
    return active_.size() > claimed_.size();
  }

  /// Snapshot of all active instantiations (unspecified order).
  std::vector<InstPtr> Snapshot() const;

  /// Snapshot of only the selectable (unclaimed) instantiations.
  std::vector<InstPtr> SelectableSnapshot() const;

  std::string ToString() const;

  /// Canonical dump: every active instantiation's ToString(), sorted,
  /// one per line — byte-comparable across matcher implementations
  /// regardless of hash-map iteration order. Claim state is deliberately
  /// excluded (claims belong to the engine, not the match phase).
  std::string CanonicalDump() const;

 private:
  struct Entry {
    InstPtr inst;
    uint64_t activation_seq;
  };
  mutable std::mutex mu_;
  std::unordered_map<InstKey, Entry, InstKeyHash> active_;
  std::unordered_set<InstKey, InstKeyHash> claimed_;
  /// Refraction tombstones (EnableRefractionMemory): keys fired but not
  /// yet deactivated; Activate on them is suppressed.
  std::unordered_set<InstKey, InstKeyHash> fired_;
  bool refraction_ = false;
  uint64_t next_seq_ = 0;
  std::vector<ConflictEvent>* sink_ = nullptr;
};

}  // namespace dbps

#endif  // DBPS_MATCH_CONFLICT_SET_H_
