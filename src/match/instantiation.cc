#include "match/instantiation.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"

namespace dbps {

std::string InstKey::ToString() const {
  std::ostringstream out;
  out << rule_name << "[";
  bool first = true;
  for (const auto& [id, tag] : wmes) {
    if (!first) out << ",";
    first = false;
    out << id << "@" << tag;
  }
  out << "]";
  return out.str();
}

Instantiation::Instantiation(RulePtr rule, std::vector<WmePtr> matched)
    : rule_(std::move(rule)), matched_(std::move(matched)) {
  DBPS_CHECK_EQ(matched_.size(), rule_->num_positive());
  key_.rule_name = rule_->name();
  key_.wmes.reserve(matched_.size());
  for (const auto& wme : matched_) {
    key_.wmes.emplace_back(wme->id(), wme->tag());
  }
}

TimeTag Instantiation::RecencyTag() const {
  TimeTag best = 0;
  for (const auto& wme : matched_) best = std::max(best, wme->tag());
  return best;
}

std::string Instantiation::ToString() const {
  std::ostringstream out;
  out << rule_->name() << " {";
  bool first = true;
  for (const auto& wme : matched_) {
    if (!first) out << ", ";
    first = false;
    out << wme->ToString();
  }
  out << "}";
  return out.str();
}

}  // namespace dbps
