// Instantiations: one satisfied LHS = (rule, matched WME versions).

#ifndef DBPS_MATCH_INSTANTIATION_H_
#define DBPS_MATCH_INSTANTIATION_H_

#include <memory>
#include <string>
#include <vector>

#include "rules/rule.h"
#include "util/hash.h"
#include "wm/wme.h"

namespace dbps {

/// \brief Identity of an instantiation: the rule plus the exact WME
/// *versions* (id, time tag) matched by its positive condition elements,
/// in CE order. Two matches of the same rule against the same versions are
/// the same instantiation (OPS5 refraction works on this identity).
struct InstKey {
  std::string rule_name;
  std::vector<std::pair<WmeId, TimeTag>> wmes;

  bool operator==(const InstKey& other) const {
    return rule_name == other.rule_name && wmes == other.wmes;
  }
  std::string ToString() const;
};

struct InstKeyHash {
  size_t operator()(const InstKey& key) const {
    size_t seed = std::hash<std::string>{}(key.rule_name);
    for (const auto& [id, tag] : key.wmes) {
      HashCombine(&seed, id);
      HashCombine(&seed, tag);
    }
    return seed;
  }
};

/// \brief A satisfied production: rule + matched WMEs (one per positive CE).
class Instantiation {
 public:
  Instantiation(RulePtr rule, std::vector<WmePtr> matched);

  const RulePtr& rule() const { return rule_; }
  const std::vector<WmePtr>& matched() const { return matched_; }
  const InstKey& key() const { return key_; }

  /// Largest time tag among matched WMEs (recency, for LEX/MEA).
  TimeTag RecencyTag() const;

  std::string ToString() const;

 private:
  RulePtr rule_;
  std::vector<WmePtr> matched_;
  InstKey key_;
};

using InstPtr = std::shared_ptr<const Instantiation>;

}  // namespace dbps

#endif  // DBPS_MATCH_INSTANTIATION_H_
