// Matcher: the match phase's interface.
//
// A matcher owns the conflict set and keeps it consistent with working
// memory: Initialize() processes the initial WM contents; ApplyChange()
// incrementally processes the removed/added WME versions of one committed
// Delta. Two implementations exist — the Rete network (production
// implementation) and the naive rematcher (correctness oracle).

#ifndef DBPS_MATCH_MATCHER_H_
#define DBPS_MATCH_MATCHER_H_

#include <memory>
#include <vector>

#include "match/conflict_set.h"
#include "rules/rule.h"
#include "util/status.h"
#include "wm/working_memory.h"

namespace dbps {

class Matcher {
 public:
  virtual ~Matcher() = default;

  /// Compiles `rules` into matcher state and matches the current contents
  /// of `wm`. Must be called exactly once, before any ApplyChange.
  virtual Status Initialize(RuleSetPtr rules, const WorkingMemory& wm) = 0;

  /// Like Initialize, but matches the contents of a pinned snapshot
  /// instead of the live database. PartitionedMatcher builds every
  /// partition-local matcher at one consistent CSN this way, off the
  /// commit path. Not every matcher supports it (the naive oracle
  /// rematches against live WM by design).
  virtual Status InitializeAt(RuleSetPtr rules, const WmSnapshot& snap) {
    (void)rules;
    (void)snap;
    return Status::Unimplemented("matcher does not support snapshot init");
  }

  /// Processes one committed change: `change.removed` WME versions leave,
  /// `change.added` versions enter. Updates the conflict set.
  virtual void ApplyChange(const WmChange& change) = 0;

  /// Processes a batch of committed changes as one propagation pass.
  /// Equivalent to calling ApplyChange element-by-element in order
  /// *provided the changes are pairwise disjoint* — no change removes a
  /// WME version another change in the batch adds (the commit sequencer's
  /// batch-eligibility check guarantees exactly this). Implementations
  /// may reorder work across the batch (e.g. all removals before all
  /// additions, or a single recompute) to amortize propagation.
  virtual void ApplyChanges(const std::vector<WmChange>& changes) {
    for (const WmChange& change : changes) ApplyChange(change);
  }

  ConflictSet& conflict_set() { return conflict_set_; }
  const ConflictSet& conflict_set() const { return conflict_set_; }

 protected:
  ConflictSet conflict_set_;
};

enum class MatcherKind : uint8_t { kRete, kNaive, kTreat };

const char* MatcherKindToString(MatcherKind kind);

/// Factory.
std::unique_ptr<Matcher> CreateMatcher(MatcherKind kind);

}  // namespace dbps

#endif  // DBPS_MATCH_MATCHER_H_
