#include "match/naive_matcher.h"

#include "util/logging.h"

namespace dbps {

Status NaiveMatcher::Initialize(RuleSetPtr rules, const WorkingMemory& wm) {
  DBPS_CHECK(rules_ == nullptr) << "Initialize called twice";
  rules_ = std::move(rules);
  wm_ = &wm;
  Recompute();
  return Status::OK();
}

void NaiveMatcher::ApplyChange(const WmChange& change) {
  (void)change;  // the naive matcher always rematches everything
  Recompute();
}

void NaiveMatcher::ApplyChanges(const std::vector<WmChange>& changes) {
  // The clearest amortization win: one full rematch for the whole batch
  // instead of one per change.
  if (!changes.empty()) Recompute();
}

void NaiveMatcher::Recompute() {
  // Pin the snapshot once: every Scan in this rematch reads the same CSN.
  const WmSnapshot snap = wm_->SnapshotAt();
  std::unordered_map<InstKey, InstPtr, InstKeyHash> current;
  for (const auto& rule : rules_->rules()) {
    MatchRule(rule, snap, &current);
  }
  // Deactivate vanished instantiations...
  std::vector<InstKey> gone;
  for (const auto& inst : conflict_set_.Snapshot()) {
    if (current.count(inst->key()) == 0) gone.push_back(inst->key());
  }
  for (const auto& key : gone) conflict_set_.Deactivate(key);
  // ...and activate new ones.
  for (auto& [key, inst] : current) {
    if (!conflict_set_.Contains(key)) conflict_set_.Activate(inst);
  }
}

void NaiveMatcher::MatchRule(
    const RulePtr& rule, const WmSnapshot& snap,
    std::unordered_map<InstKey, InstPtr, InstKeyHash>* out) const {
  std::vector<const Condition*> positives;
  for (const auto& cond : rule->conditions()) {
    if (!cond.negated) positives.push_back(&cond);
  }
  std::vector<WmePtr> matched;
  matched.reserve(positives.size());
  MatchPositive(rule, snap, positives, 0, &matched, out);
}

void NaiveMatcher::MatchPositive(
    const RulePtr& rule, const WmSnapshot& snap,
    const std::vector<const Condition*>& positives, size_t depth,
    std::vector<WmePtr>* matched,
    std::unordered_map<InstKey, InstPtr, InstKeyHash>* out) const {
  if (depth == positives.size()) {
    // All positive CEs matched; check the negated ones.
    for (const auto& cond : rule->conditions()) {
      if (cond.negated && NegationBlocked(cond, snap, *matched)) return;
    }
    auto inst = std::make_shared<Instantiation>(rule, *matched);
    out->emplace(inst->key(), std::move(inst));
    return;
  }
  const Condition& cond = *positives[depth];
  for (const WmePtr& wme : snap.Scan(cond.relation)) {
    if (!PassesLocalTests(cond, *wme)) continue;
    if (!PassesJoinTests(cond, *wme, *matched)) continue;
    matched->push_back(wme);
    MatchPositive(rule, snap, positives, depth + 1, matched, out);
    matched->pop_back();
  }
}

bool NaiveMatcher::PassesLocalTests(const Condition& cond, const Wme& wme) {
  for (const auto& test : cond.constant_tests) {
    if (!EvalPredicate(test.pred, wme.value(test.field), test.value)) {
      return false;
    }
  }
  for (const auto& test : cond.member_tests) {
    if (!test.Eval(wme.value(test.field))) return false;
  }
  for (const auto& test : cond.intra_tests) {
    if (!EvalPredicate(test.pred, wme.value(test.field),
                       wme.value(test.other_field))) {
      return false;
    }
  }
  return true;
}

bool NaiveMatcher::PassesJoinTests(const Condition& cond, const Wme& wme,
                                   const std::vector<WmePtr>& matched) {
  for (const auto& test : cond.join_tests) {
    DBPS_DCHECK(test.other_ce < matched.size());
    if (!EvalPredicate(test.pred, wme.value(test.field),
                       matched[test.other_ce]->value(test.other_field))) {
      return false;
    }
  }
  return true;
}

bool NaiveMatcher::NegationBlocked(const Condition& cond,
                                   const WmSnapshot& snap,
                                   const std::vector<WmePtr>& matched) const {
  for (const WmePtr& wme : snap.Scan(cond.relation)) {
    if (PassesLocalTests(cond, *wme) &&
        PassesJoinTests(cond, *wme, matched)) {
      return true;
    }
  }
  return false;
}

}  // namespace dbps
