// NaiveMatcher: recomputes every rule's matches from scratch on every
// change, by nested-loop join over working memory.
//
// It is deliberately simple — the correctness oracle the Rete network is
// property-tested against, and the baseline for the match benchmarks
// (OPS5-era systems predating Rete rematched like this).
//
// Each recompute reads through a pinned WmSnapshot at the CSN of the
// change being applied, so the whole rematch observes one consistent
// commit boundary even while later commits race ahead in other threads.

#ifndef DBPS_MATCH_NAIVE_MATCHER_H_
#define DBPS_MATCH_NAIVE_MATCHER_H_

#include <unordered_map>

#include "match/matcher.h"

namespace dbps {

class NaiveMatcher : public Matcher {
 public:
  Status Initialize(RuleSetPtr rules, const WorkingMemory& wm) override;
  void ApplyChange(const WmChange& change) override;
  void ApplyChanges(const std::vector<WmChange>& changes) override;

 private:
  void Recompute();

  /// All matches of `rule` visible in `snap`, appended to `out`.
  void MatchRule(const RulePtr& rule, const WmSnapshot& snap,
                 std::unordered_map<InstKey, InstPtr, InstKeyHash>* out) const;

  /// Depth-first extension over positive CEs.
  void MatchPositive(const RulePtr& rule, const WmSnapshot& snap,
                     const std::vector<const Condition*>& positives,
                     size_t depth, std::vector<WmePtr>* matched,
                     std::unordered_map<InstKey, InstPtr, InstKeyHash>* out)
      const;

  /// True iff `wme` passes the condition's constant and intra tests.
  static bool PassesLocalTests(const Condition& cond, const Wme& wme);

  /// True iff `wme` passes the condition's join tests against `matched`.
  static bool PassesJoinTests(const Condition& cond, const Wme& wme,
                              const std::vector<WmePtr>& matched);

  /// True iff some WME visible in `snap` satisfies the negated condition.
  bool NegationBlocked(const Condition& cond, const WmSnapshot& snap,
                       const std::vector<WmePtr>& matched) const;

  RuleSetPtr rules_;
  const WorkingMemory* wm_ = nullptr;
};

}  // namespace dbps

#endif  // DBPS_MATCH_NAIVE_MATCHER_H_
