#include "match/partitioned_matcher.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/hash.h"
#include "util/logging.h"
#include "value/value.h"

namespace dbps {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// First line on which two canonical dumps differ, for diagnostics.
std::string FirstDiffLine(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "(identical)";
    if (!ga) return "+" + lb;
    if (!gb) return "-" + la;
    if (la != lb) return "-" + la + " / +" + lb;
  }
}

/// Sub-partition of a WME under value-hash splitting: the same RouteMix
/// the relation→partition and relation→lock-shard routes use, over the
/// value hash of the relation's split field.
size_t SubOfWme(const WmePtr& wme, size_t field, size_t num_subs) {
  return RouteMix(ValueHash{}(wme->value(field)), num_subs);
}

}  // namespace

PartitionedMatcher::PartitionedMatcher(Options options)
    : options_(options) {
  DBPS_CHECK(options_.inner != MatcherKind::kNaive)
      << "naive matcher cannot be partitioned (it rematches against "
         "live WM and reads its own conflict set)";
  options_.num_partitions = std::max<size_t>(1, options_.num_partitions);
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  options_.split_ways = std::max<size_t>(2, options_.split_ways);
  options_.split_streak = std::max<uint64_t>(1, options_.split_streak);
  options_.rehome_streak = std::max<uint64_t>(1, options_.rehome_streak);
  partitions_.resize(options_.num_partitions);
  stats_.partitions.resize(options_.num_partitions);
  if (options_.num_workers > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  }
}

PartitionedMatcher::~PartitionedMatcher() {
  if (pool_ != nullptr) pool_->Shutdown();
  // Inner matcher teardown emits deactivations for live tokens; detach
  // the sinks first or they would write into the sibling `events`
  // member, which is destroyed before `matcher` is.
  for (Partition& part : partitions_) {
    for (SubPartition& sub : part.subs) {
      if (sub.matcher != nullptr) {
        sub.matcher->conflict_set().SetEventSink(nullptr);
      }
    }
  }
}

size_t PartitionedMatcher::PartitionOfRelation(SymbolId relation) const {
  return RouteMix(relation, partitions_.size());
}

Status PartitionedMatcher::HomeRules() {
  for (const RulePtr& rule : rules_->rules()) {
    if (rule->conditions().empty()) {
      return Status::InvalidArgument("rule '" + rule->name() +
                                     "' has no conditions");
    }
    const size_t home = home_of_.at(rule->name());
    Partition& part = partitions_[home];
    if (part.rules == nullptr) part.rules = std::make_shared<RuleSet>();
    DBPS_RETURN_NOT_OK(part.rules->Add(rule));
    part.counters.rules++;
    for (const Condition& cond : rule->conditions()) {
      std::vector<uint32_t>& list = consumers_[cond.relation];
      const uint32_t home32 = static_cast<uint32_t>(home);
      if (std::find(list.begin(), list.end(), home32) == list.end()) {
        list.push_back(home32);
      }
    }
  }
  for (auto& [relation, list] : consumers_) {
    std::sort(list.begin(), list.end());
  }
  return Status::OK();
}

void PartitionedMatcher::AnalyzeSplittability(Partition& part) {
  part.split_field.clear();
  part.splittable = false;
  if (part.rules == nullptr || wm_ == nullptr) return;

  const Catalog& catalog = wm_->catalog();
  auto arity_of = [&](SymbolId rel) -> size_t {
    auto schema = catalog.GetRelation(rel);
    return schema.ok() ? (*schema)->arity() : 0;
  };
  // Tries to pin `rel` to split field `f` against the agreed map plus
  // this rule's tentative additions.
  auto assign = [](std::unordered_map<SymbolId, size_t>& tentative,
                   const std::unordered_map<SymbolId, size_t>& agreed,
                   SymbolId rel, size_t f) {
    auto it = agreed.find(rel);
    if (it != agreed.end()) return it->second == f;
    auto [t, inserted] = tentative.emplace(rel, f);
    return inserted || t->second == f;
  };

  std::unordered_map<SymbolId, size_t> field;  // agreed split fields
  for (const RulePtr& rule : part.rules->rules()) {
    const auto& conds = rule->conditions();
    // The first CE anchors routing: it must be positive, and every other
    // CE (positive or negated) must equality-join one of its fields
    // directly, so all of an instantiation's WMEs — and every negated-CE
    // blocker — value-hash to the same sub-partition.
    if (conds.front().negated) return;
    if (conds.size() == 1) continue;  // no cross-CE constraint
    bool rule_ok = false;
    const size_t arity0 = arity_of(conds.front().relation);
    for (size_t f0 = 0; f0 < arity0 && !rule_ok; ++f0) {
      std::unordered_map<SymbolId, size_t> tentative;
      if (!assign(tentative, field, conds.front().relation, f0)) continue;
      bool all = true;
      for (size_t j = 1; j < conds.size() && all; ++j) {
        bool ce_ok = false;
        // Candidate local fields joining CE j to CE 0 on f0, ascending.
        std::vector<size_t> cand;
        for (const JoinTest& test : conds[j].join_tests) {
          if (test.pred == TestPredicate::kEq && test.other_ce == 0 &&
              test.other_field == f0) {
            cand.push_back(test.field);
          }
        }
        std::sort(cand.begin(), cand.end());
        for (size_t fj : cand) {
          if (assign(tentative, field, conds[j].relation, fj)) {
            ce_ok = true;
            break;
          }
        }
        all = ce_ok;
      }
      if (all) {
        field.insert(tentative.begin(), tentative.end());
        rule_ok = true;
      }
    }
    if (!rule_ok) return;
  }
  // Unconstrained consumed relations (single-CE rules): any field
  // partitions their WMEs disjointly; field 0 is the canonical pick.
  for (const RulePtr& rule : part.rules->rules()) {
    for (const Condition& cond : rule->conditions()) {
      if (field.count(cond.relation) != 0) continue;
      if (arity_of(cond.relation) == 0) return;
      field.emplace(cond.relation, 0);
    }
  }
  part.split_field = std::move(field);
  part.splittable = true;
}

Status PartitionedMatcher::BuildPartitionMatchers(const WmSnapshot& snap) {
  std::vector<size_t> work;
  for (size_t i = 0; i < partitions_.size(); ++i) {
    Partition& part = partitions_[i];
    if (part.rules == nullptr) continue;
    part.subs.clear();
    part.subs.resize(1);
    part.subs[0].matcher = CreateMatcher(options_.inner);
    part.subs[0].matcher->conflict_set().SetEventSink(&part.subs[0].events);
    part.counters.subs = 1;
    work.push_back(i);
  }
  std::vector<Status> statuses(partitions_.size(), Status::OK());
  RunMorsels(work.size(), [&](size_t w) {
    const size_t i = work[w];
    statuses[i] =
        partitions_[i].subs[0].matcher->InitializeAt(partitions_[i].rules, snap);
  });
  for (const Status& status : statuses) DBPS_RETURN_NOT_OK(status);
  return Status::OK();
}

Status PartitionedMatcher::Initialize(RuleSetPtr rules,
                                      const WorkingMemory& wm) {
  DBPS_CHECK(!initialized_) << "Initialize called twice";
  initialized_ = true;
  if (rules == nullptr) {
    return Status::InvalidArgument("PartitionedMatcher: null rule set");
  }
  rules_ = rules;
  wm_ = &wm;
  // Default homing: relation hash of the first condition element.
  for (const RulePtr& rule : rules_->rules()) {
    if (rule->conditions().empty()) {
      return Status::InvalidArgument("rule '" + rule->name() +
                                     "' has no conditions");
    }
    home_of_[rule->name()] = static_cast<uint32_t>(
        PartitionOfRelation(rule->conditions().front().relation));
  }
  DBPS_RETURN_NOT_OK(HomeRules());
  for (size_t i = 0; i < partitions_.size(); ++i) {
    AnalyzeSplittability(partitions_[i]);
  }
  // Quiescent rebuilds re-derive fired-but-still-satisfied
  // instantiations; refraction tombstones keep them out of the set.
  if (options_.split_hot || options_.rehome) {
    conflict_set_.EnableRefractionMemory(true);
  }

  // The shadow must exist BEFORE the first MergeEvents so initial
  // activations reach the mirror set too.
  if (options_.shadow_check) {
    shadow_ = CreateMatcher(options_.inner);
    DBPS_RETURN_NOT_OK(shadow_->Initialize(rules, wm));
  }

  // Build every non-empty partition's inner matcher at ONE pinned
  // snapshot CSN, in parallel, capturing initial activations.
  const WmSnapshot snap = wm.SnapshotAt();
  DBPS_RETURN_NOT_OK(BuildPartitionMatchers(snap));
  MergeEvents();

  if (shadow_ != nullptr) CheckShadow("initialize");
  return Status::OK();
}

void PartitionedMatcher::ApplyChange(const WmChange& change) {
  ApplyChanges(std::vector<WmChange>{change});
}

void PartitionedMatcher::ApplyChanges(const std::vector<WmChange>& changes) {
  ApplyChangesAt(changes, WmSnapshot());
}

void PartitionedMatcher::ApplyChangesAt(const std::vector<WmChange>& changes,
                                        const WmSnapshot& snap) {
  DBPS_CHECK(initialized_) << "ApplyChanges before Initialize";
  const size_t num_parts = partitions_.size();
  stats_.batches++;

  // Route: split each change into per-(partition, sub) sub-changes,
  // preserving the change's removed/added grouping (and CSN) so every
  // inner matcher sees the serial change stream restricted to its rules
  // and — under value-hash splitting — its key share.
  std::vector<uint64_t> routed(num_parts, 0);
  std::vector<std::vector<WmChange*>> scratch(num_parts);
  for (size_t i = 0; i < num_parts; ++i) {
    scratch[i].resize(std::max<size_t>(1, partitions_[i].subs.size()));
  }
  uint64_t total_routed = 0;
  auto route = [&](const WmChange& change, const WmePtr& wme, bool removed) {
    const auto it = consumers_.find(wme->relation());
    if (it == consumers_.end()) return;  // no rule consumes this relation
    routed_load_[wme->relation()]++;
    const size_t home = PartitionOfRelation(wme->relation());
    for (const uint32_t consumer : it->second) {
      Partition& part = partitions_[consumer];
      size_t sub_idx = 0;
      if (part.subs.size() > 1) {
        sub_idx = SubOfWme(wme, part.split_field.at(wme->relation()),
                           part.subs.size());
      }
      WmChange*& sub = scratch[consumer][sub_idx];
      if (sub == nullptr) {
        part.subs[sub_idx].queue.emplace_back();
        sub = &part.subs[sub_idx].queue.back();
        sub->csn = change.csn;
      }
      (removed ? sub->removed : sub->added).push_back(wme);
      part.counters.wmes_routed++;
      routed[consumer]++;
      total_routed++;
      if (consumer != home) {
        part.counters.handoffs++;
        stats_.handoffs++;
      }
    }
  };
  for (const WmChange& change : changes) {
    for (auto& per_part : scratch) {
      std::fill(per_part.begin(), per_part.end(), nullptr);
    }
    for (const WmePtr& wme : change.removed) route(change, wme, true);
    for (const WmePtr& wme : change.added) route(change, wme, false);
  }

  if (total_routed > 0) {
    // Skew: the largest single-partition share of this batch's routing.
    uint64_t max_routed = 0;
    for (uint64_t r : routed) max_routed = std::max(max_routed, r);
    const size_t bin = std::min<size_t>(
        9, static_cast<size_t>((10 * max_routed) / total_routed));
    stats_.skew_histogram[bin]++;
    bin9_streak_ = bin == 9 ? bin9_streak_ + 1 : 0;
    for (size_t i = 0; i < num_parts; ++i) {
      const bool hot =
          static_cast<double>(routed[i]) >=
          options_.split_share * static_cast<double>(total_routed);
      partitions_[i].hot_streak = hot ? partitions_[i].hot_streak + 1 : 0;
    }

    // Parallel phase: one morsel per non-empty (partition, sub).
    std::vector<std::pair<size_t, size_t>> work;
    for (size_t i = 0; i < num_parts; ++i) {
      for (size_t s = 0; s < partitions_[i].subs.size(); ++s) {
        if (!partitions_[i].subs[s].queue.empty()) work.emplace_back(i, s);
      }
    }
    // Morsel timings fold after the barrier: two subs of one partition
    // may run concurrently, so workers must not share a counters struct.
    std::vector<uint64_t> morsel_ns(work.size(), 0);
    const uint64_t wall_start = NowNs();
    RunMorsels(work.size(), [&](size_t w) {
      auto [i, s] = work[w];
      SubPartition& sub = partitions_[i].subs[s];
      const uint64_t start = NowNs();
      sub.matcher->ApplyChanges(sub.queue);
      morsel_ns[w] = NowNs() - start;
    });
    stats_.propagate_wall_ns += NowNs() - wall_start;
    stats_.morsels += work.size();
    for (size_t w = 0; w < work.size(); ++w) {
      Partition& part = partitions_[work[w].first];
      part.counters.morsels++;
      part.counters.propagate_ns += morsel_ns[w];
    }

    // Canonical merge on the calling thread.
    const uint64_t merge_start = NowNs();
    MergeEvents();
    stats_.merge_ns += NowNs() - merge_start;
  }

  if (shadow_ != nullptr) {
    shadow_->ApplyChanges(changes);
    CheckShadow("batch");
  }

  // Skew adaptation at the quiescent point after this batch's
  // propagation: re-home takes priority (it resets split state; hot
  // streaks re-trigger splits afterwards if the skew persists).
  if (total_routed > 0 && (options_.split_hot || options_.rehome)) {
    const bool want_rehome =
        options_.rehome && bin9_streak_ >= options_.rehome_streak;
    std::vector<size_t> to_split;
    if (!want_rehome && options_.split_hot) {
      for (size_t i = 0; i < num_parts; ++i) {
        Partition& part = partitions_[i];
        if (part.splittable && part.subs.size() == 1 &&
            part.hot_streak >= options_.split_streak) {
          to_split.push_back(i);
        }
      }
    }
    if (want_rehome || !to_split.empty()) {
      // Rebuilds read WM state as of right after this batch's applies:
      // the caller's pinned snapshot when provided (pipelined mode,
      // where live WM may have advanced), else a self-pinned one.
      WmSnapshot local;
      const WmSnapshot* at = &snap;
      if (!snap.valid()) {
        local = wm_->SnapshotAt();
        at = &local;
      }
      if (want_rehome) {
        const Status status = Rehome(*at);
        DBPS_CHECK(status.ok()) << "re-home rebuild failed: "
                                << status.ToString();
      } else {
        for (size_t i : to_split) {
          const Status status = SplitPartition(i, *at);
          DBPS_CHECK(status.ok()) << "hot-partition split failed: "
                                  << status.ToString();
        }
      }
      // Rebuild-derived activations are no-ops / refraction-suppressed;
      // replay them through the same canonical merge regardless.
      MergeEvents();
      if (shadow_ != nullptr) CheckShadow("rebuild");
    }
  }
}

Status PartitionedMatcher::SplitPartition(size_t i, const WmSnapshot& snap) {
  Partition& part = partitions_[i];
  const size_t ways = options_.split_ways;

  // Relations this partition consumes, sorted for a deterministic feed.
  std::vector<SymbolId> relations;
  for (const auto& [rel, field] : part.split_field) relations.push_back(rel);
  std::sort(relations.begin(), relations.end());

  // Tear down the unsplit matcher (detached sink: teardown deactivations
  // are state disposal, not conflict-set events).
  for (SubPartition& sub : part.subs) {
    if (sub.matcher != nullptr) {
      sub.matcher->conflict_set().SetEventSink(nullptr);
    }
  }
  part.subs.clear();
  part.subs.resize(ways);
  for (SubPartition& sub : part.subs) {
    sub.schema_wm = wm_->CloneSchemaOnly();
    sub.matcher = CreateMatcher(options_.inner);
    sub.matcher->conflict_set().SetEventSink(&sub.events);
    DBPS_RETURN_NOT_OK(
        sub.matcher->InitializeAt(part.rules, sub.schema_wm->SnapshotAt()));
  }

  // Feed each sub its value-hash share of the snapshot as one add-batch
  // (the AddWme path is exactly the snapshot-init scan path).
  std::vector<WmChange> feed(ways);
  for (WmChange& change : feed) change.csn = snap.csn();
  for (SymbolId rel : relations) {
    const size_t field = part.split_field.at(rel);
    std::vector<WmePtr> wmes = snap.Scan(rel);
    std::sort(wmes.begin(), wmes.end(),
              [](const WmePtr& a, const WmePtr& b) { return a->id() < b->id(); });
    for (WmePtr& wme : wmes) {
      const size_t s = SubOfWme(wme, field, ways);
      feed[s].added.push_back(std::move(wme));
    }
  }
  std::vector<size_t> work;
  for (size_t s = 0; s < ways; ++s) {
    if (!feed[s].added.empty()) work.push_back(s);
  }
  RunMorsels(work.size(), [&](size_t w) {
    const size_t s = work[w];
    part.subs[s].matcher->ApplyChange(feed[s]);
  });

  part.counters.subs = ways;
  part.hot_streak = 0;
  stats_.splits++;
  return Status::OK();
}

Status PartitionedMatcher::Rehome(const WmSnapshot& snap) {
  // Rule load proxy: its first relation's cumulative routed load, split
  // evenly among the rules sharing that first relation (+1 so zero-load
  // rules still balance by count).
  std::unordered_map<SymbolId, uint64_t> n_first;
  for (const RulePtr& rule : rules_->rules()) {
    n_first[rule->conditions().front().relation]++;
  }
  struct Item {
    RulePtr rule;
    double load;
  };
  std::vector<Item> items;
  for (const RulePtr& rule : rules_->rules()) {
    const SymbolId first = rule->conditions().front().relation;
    const auto it = routed_load_.find(first);
    const double rel_load =
        it == routed_load_.end() ? 0.0 : static_cast<double>(it->second);
    items.push_back(Item{rule, rel_load / static_cast<double>(n_first[first]) + 1.0});
  }
  std::sort(items.begin(), items.end(), [](const Item& a, const Item& b) {
    if (a.load != b.load) return a.load > b.load;
    return a.rule->name() < b.rule->name();
  });
  std::vector<double> load(partitions_.size(), 0.0);
  std::unordered_map<std::string, uint32_t> new_home;
  for (const Item& item : items) {
    size_t best = 0;
    for (size_t p = 1; p < load.size(); ++p) {
      if (load[p] < load[best]) best = p;
    }
    new_home[item.rule->name()] = static_cast<uint32_t>(best);
    load[best] += item.load;
  }

  bin9_streak_ = 0;
  if (new_home == home_of_) {
    // Anti-thrash: the greedy assignment already matches the current
    // homing; nothing to rebuild.
    stats_.rehome_skips++;
    return Status::OK();
  }
  home_of_ = std::move(new_home);
  stats_.rehomes++;

  // Quiescent full rebuild at the pinned snapshot: tear every partition
  // down in place and re-distribute + re-initialize.
  for (Partition& part : partitions_) {
    for (SubPartition& sub : part.subs) {
      if (sub.matcher != nullptr) {
        sub.matcher->conflict_set().SetEventSink(nullptr);
      }
    }
    part.subs.clear();
    part.rules = nullptr;
    part.split_field.clear();
    part.splittable = false;
    part.hot_streak = 0;
    part.counters.rules = 0;
    part.counters.subs = 0;
  }
  consumers_.clear();
  DBPS_RETURN_NOT_OK(HomeRules());
  for (Partition& part : partitions_) AnalyzeSplittability(part);
  return BuildPartitionMatchers(snap);
}

void PartitionedMatcher::RunMorsels(size_t n,
                                    const std::function<void(size_t)>& fn) {
  if (pool_ == nullptr || n <= 1) {
    for (size_t i = 0; i < n; ++i) fn(i);
    return;
  }
  for (size_t i = 0; i < n; ++i) {
    pool_->Submit([&fn, i] { fn(i); });
  }
  pool_->WaitIdle();
}

void PartitionedMatcher::MergeEvents() {
  for (Partition& part : partitions_) {
    for (SubPartition& sub : part.subs) {
      for (ConflictEvent& event : sub.events) {
        if (event.activate) {
          if (shadow_ != nullptr) mirror_.Activate(event.inst);
          conflict_set_.Activate(std::move(event.inst));
        } else {
          if (shadow_ != nullptr) mirror_.Deactivate(event.key);
          conflict_set_.Deactivate(event.key);
        }
      }
      sub.events.clear();
      sub.queue.clear();
    }
  }
  // Mirror per-partition running counters into the stats snapshot.
  for (size_t i = 0; i < partitions_.size(); ++i) {
    stats_.partitions[i] = partitions_[i].counters;
  }
}

void PartitionedMatcher::CheckShadow(const char* where) {
  if (!shadow_status_.ok()) return;  // first divergence is sticky
  const std::string mine = mirror_.CanonicalDump();
  const std::string ref = shadow_->conflict_set().CanonicalDump();
  if (mine == ref) return;
  std::ostringstream msg;
  msg << "partitioned matcher diverged from serial "
      << MatcherKindToString(options_.inner) << " at " << where
      << " (batch " << stats_.batches << "): partitioned="
      << std::count(mine.begin(), mine.end(), '\n') << " insts, serial="
      << std::count(ref.begin(), ref.end(), '\n')
      << " insts, first diff: " << FirstDiffLine(mine, ref);
  shadow_status_ = Status::Internal(msg.str());
}

}  // namespace dbps
