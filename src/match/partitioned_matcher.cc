#include "match/partitioned_matcher.h"

#include <algorithm>
#include <chrono>
#include <sstream>

#include "util/hash.h"
#include "util/logging.h"

namespace dbps {

namespace {

uint64_t NowNs() {
  return static_cast<uint64_t>(
      std::chrono::duration_cast<std::chrono::nanoseconds>(
          std::chrono::steady_clock::now().time_since_epoch())
          .count());
}

/// First line on which two canonical dumps differ, for diagnostics.
std::string FirstDiffLine(const std::string& a, const std::string& b) {
  std::istringstream sa(a), sb(b);
  std::string la, lb;
  while (true) {
    const bool ga = static_cast<bool>(std::getline(sa, la));
    const bool gb = static_cast<bool>(std::getline(sb, lb));
    if (!ga && !gb) return "(identical)";
    if (!ga) return "+" + lb;
    if (!gb) return "-" + la;
    if (la != lb) return "-" + la + " / +" + lb;
  }
}

}  // namespace

PartitionedMatcher::PartitionedMatcher(Options options)
    : options_(options) {
  DBPS_CHECK(options_.inner != MatcherKind::kNaive)
      << "naive matcher cannot be partitioned (it rematches against "
         "live WM and reads its own conflict set)";
  options_.num_partitions = std::max<size_t>(1, options_.num_partitions);
  options_.num_workers = std::max<size_t>(1, options_.num_workers);
  partitions_.resize(options_.num_partitions);
  stats_.partitions.resize(options_.num_partitions);
  if (options_.num_workers > 1) {
    pool_ = std::make_unique<ThreadPool>(options_.num_workers);
  }
}

PartitionedMatcher::~PartitionedMatcher() {
  if (pool_ != nullptr) pool_->Shutdown();
  // Inner matcher teardown emits deactivations for live tokens; detach
  // the sinks first or they would write into the sibling `events`
  // member, which is destroyed before `matcher` is.
  for (Partition& part : partitions_) {
    if (part.matcher != nullptr) {
      part.matcher->conflict_set().SetEventSink(nullptr);
    }
  }
}

size_t PartitionedMatcher::PartitionOfRelation(SymbolId relation) const {
  return static_cast<size_t>(Mix64(relation)) % partitions_.size();
}

Status PartitionedMatcher::Initialize(RuleSetPtr rules,
                                      const WorkingMemory& wm) {
  DBPS_CHECK(!initialized_) << "Initialize called twice";
  initialized_ = true;
  if (rules == nullptr) {
    return Status::InvalidArgument("PartitionedMatcher: null rule set");
  }
  // Partition rules by the relation hash of their first condition element
  // and record, per relation, every partition consuming it.
  for (const RulePtr& rule : rules->rules()) {
    if (rule->conditions().empty()) {
      return Status::InvalidArgument("rule '" + rule->name() +
                                     "' has no conditions");
    }
    const size_t home = PartitionOfRelation(rule->conditions().front().relation);
    Partition& part = partitions_[home];
    if (part.rules == nullptr) part.rules = std::make_shared<RuleSet>();
    DBPS_RETURN_NOT_OK(part.rules->Add(rule));
    stats_.partitions[home].rules++;
    part.counters.rules++;
    for (const Condition& cond : rule->conditions()) {
      std::vector<uint32_t>& list = consumers_[cond.relation];
      const uint32_t home32 = static_cast<uint32_t>(home);
      if (std::find(list.begin(), list.end(), home32) == list.end()) {
        list.push_back(home32);
      }
    }
  }
  for (auto& [relation, list] : consumers_) {
    std::sort(list.begin(), list.end());
  }

  // Build every non-empty partition's inner matcher at ONE pinned
  // snapshot CSN, in parallel, capturing initial activations.
  std::vector<size_t> work;
  for (size_t i = 0; i < partitions_.size(); ++i) {
    Partition& part = partitions_[i];
    if (part.rules == nullptr) continue;
    part.matcher = CreateMatcher(options_.inner);
    part.matcher->conflict_set().SetEventSink(&part.events);
    work.push_back(i);
  }
  // The shadow must exist BEFORE the first MergeEvents so initial
  // activations reach the mirror set too.
  if (options_.shadow_check) {
    shadow_ = CreateMatcher(options_.inner);
    DBPS_RETURN_NOT_OK(shadow_->Initialize(rules, wm));
  }

  const WmSnapshot snap = wm.SnapshotAt();
  std::vector<Status> statuses(partitions_.size(), Status::OK());
  RunMorsels(work, [&](size_t i) {
    statuses[i] =
        partitions_[i].matcher->InitializeAt(partitions_[i].rules, snap);
  });
  for (const Status& status : statuses) DBPS_RETURN_NOT_OK(status);
  MergeEvents();

  if (shadow_ != nullptr) CheckShadow("initialize");
  return Status::OK();
}

void PartitionedMatcher::ApplyChange(const WmChange& change) {
  ApplyChanges(std::vector<WmChange>{change});
}

void PartitionedMatcher::ApplyChanges(const std::vector<WmChange>& changes) {
  DBPS_CHECK(initialized_) << "ApplyChanges before Initialize";
  const size_t num_parts = partitions_.size();
  stats_.batches++;

  // Route: split each change into per-partition sub-changes, preserving
  // the change's removed/added grouping (and CSN) so every inner matcher
  // sees the serial change stream restricted to its rules.
  std::vector<uint64_t> routed(num_parts, 0);
  std::vector<WmChange*> scratch(num_parts);
  uint64_t total_routed = 0;
  auto route = [&](const WmChange& change, const WmePtr& wme, bool removed) {
    const auto it = consumers_.find(wme->relation());
    if (it == consumers_.end()) return;  // no rule consumes this relation
    const size_t home = PartitionOfRelation(wme->relation());
    for (const uint32_t consumer : it->second) {
      WmChange*& sub = scratch[consumer];
      if (sub == nullptr) {
        partitions_[consumer].queue.emplace_back();
        sub = &partitions_[consumer].queue.back();
        sub->csn = change.csn;
      }
      (removed ? sub->removed : sub->added).push_back(wme);
      partitions_[consumer].counters.wmes_routed++;
      routed[consumer]++;
      total_routed++;
      if (consumer != home) {
        partitions_[consumer].counters.handoffs++;
        stats_.handoffs++;
      }
    }
  };
  for (const WmChange& change : changes) {
    std::fill(scratch.begin(), scratch.end(), nullptr);
    for (const WmePtr& wme : change.removed) route(change, wme, true);
    for (const WmePtr& wme : change.added) route(change, wme, false);
  }

  if (total_routed > 0) {
    // Skew: the largest single-partition share of this batch's routing.
    uint64_t max_routed = 0;
    for (uint64_t r : routed) max_routed = std::max(max_routed, r);
    const size_t bin = std::min<size_t>(
        9, static_cast<size_t>((10 * max_routed) / total_routed));
    stats_.skew_histogram[bin]++;

    // Parallel phase: one morsel per non-empty partition.
    std::vector<size_t> work;
    for (size_t i = 0; i < num_parts; ++i) {
      if (!partitions_[i].queue.empty()) work.push_back(i);
    }
    const uint64_t wall_start = NowNs();
    RunMorsels(work, [&](size_t i) {
      Partition& part = partitions_[i];
      const uint64_t start = NowNs();
      part.matcher->ApplyChanges(part.queue);
      const uint64_t elapsed = NowNs() - start;
      part.counters.morsels++;
      part.counters.propagate_ns += elapsed;
      stats_.partitions[i].morsels++;
      stats_.partitions[i].propagate_ns += elapsed;
    });
    stats_.propagate_wall_ns += NowNs() - wall_start;
    stats_.morsels += work.size();

    // Canonical merge on the calling (committer) thread.
    const uint64_t merge_start = NowNs();
    MergeEvents();
    stats_.merge_ns += NowNs() - merge_start;
  }

  if (shadow_ != nullptr) {
    shadow_->ApplyChanges(changes);
    CheckShadow("batch");
  }
}

void PartitionedMatcher::RunMorsels(const std::vector<size_t>& work,
                                    const std::function<void(size_t)>& fn) {
  if (pool_ == nullptr || work.size() <= 1) {
    for (size_t i : work) fn(i);
    return;
  }
  for (size_t i : work) {
    pool_->Submit([&fn, i] { fn(i); });
  }
  pool_->WaitIdle();
}

void PartitionedMatcher::MergeEvents() {
  for (Partition& part : partitions_) {
    for (ConflictEvent& event : part.events) {
      if (event.activate) {
        if (shadow_ != nullptr) mirror_.Activate(event.inst);
        conflict_set_.Activate(std::move(event.inst));
      } else {
        if (shadow_ != nullptr) mirror_.Deactivate(event.key);
        conflict_set_.Deactivate(event.key);
      }
    }
    part.events.clear();
    part.queue.clear();
  }
  // Mirror per-partition running counters into the stats snapshot.
  for (size_t i = 0; i < partitions_.size(); ++i) {
    stats_.partitions[i].wmes_routed = partitions_[i].counters.wmes_routed;
    stats_.partitions[i].handoffs = partitions_[i].counters.handoffs;
  }
}

void PartitionedMatcher::CheckShadow(const char* where) {
  if (!shadow_status_.ok()) return;  // first divergence is sticky
  const std::string mine = mirror_.CanonicalDump();
  const std::string ref = shadow_->conflict_set().CanonicalDump();
  if (mine == ref) return;
  std::ostringstream msg;
  msg << "partitioned matcher diverged from serial "
      << MatcherKindToString(options_.inner) << " at " << where
      << " (batch " << stats_.batches << "): partitioned="
      << std::count(mine.begin(), mine.end(), '\n') << " insts, serial="
      << std::count(ref.begin(), ref.end(), '\n')
      << " insts, first diff: " << FirstDiffLine(mine, ref);
  shadow_status_ = Status::Internal(msg.str());
}

}  // namespace dbps
