// PartitionedMatcher: morsel-parallel delta propagation over relation-
// hash-partitioned match state (the paper's intra-batch match
// parallelism, morsel scheduling after Leis et al.), made skew-adaptive:
// hot partitions split their match state by value hash and rules re-home
// off saturated partitions at quiescent points.
//
// Structure
//   * Rules are partitioned by the relation hash of their first condition
//     element: home(rule) = Mix64(first CE's relation) % P — the same mix
//     the lock manager uses for its shards, so a commit batch's
//     DeltaWriteSet maps onto matcher partitions the way it maps onto
//     lock shards. Each partition owns one or more complete, unmodified
//     serial matchers (Rete or TREAT) built over just its rule subset:
//     alpha memories, beta/join state and conflict-set insertion work for
//     those rules live entirely inside the partition.
//   * A WME change is routed to every partition whose rules consume its
//     relation. A rule whose conditions span relations homed in other
//     partitions receives those relations' WMEs as a cross-partition
//     handoff (counted in stats; the join itself still runs entirely
//     partition-locally, against the partition's own alpha memories).
//   * Propagation is morsel-style: each non-empty (partition,
//     sub-partition) routed sub-batch is one morsel; a fixed worker pool
//     drains the morsels, each running the inner matcher's ApplyChanges
//     against sub-partition-local state. `num_workers == 1` is the serial
//     ablation — identical routing and merge, inline execution.
//
// Skew adaptation (DESIGN §4.6)
//   * Hot-partition value-hash splitting (`Options::split_hot`): when one
//     partition's share of routed WMEs stays above `split_share` for
//     `split_streak` consecutive batches, and the partition's rule subset
//     is *split-eligible*, its match state is rebuilt as `split_ways`
//     sub-partitions. Eligibility (AnalyzeSplittability): every multi-CE
//     rule's later CEs must carry a direct equality join test against one
//     agreed field f0 of the first CE, inducing one split field per
//     consumed relation that is globally consistent across the
//     partition's rules. Routing then sends each WME to sub-partition
//     Mix64(ValueHash(wme[split_field[rel]])) % S; the join key equality
//     guarantees every instantiation's WMEs (and every negated-CE
//     blocker) land in exactly one sub-partition, so the union over subs
//     equals the unsplit partition's matches. Because the inner Rete
//     joins are linear scans over alpha/beta memories, a split partition
//     does ~S× less join-scan work per routed WME even on one core.
//   * Dynamic rule re-homing (`Options::rehome`): when the per-batch skew
//     histogram saturates bin 9 for `rehome_streak` consecutive batches
//     (several relations' rules hash-collided onto one partition), the
//     rule→partition homing map is rebuilt greedily — rules sorted by
//     their first relation's observed routed load, assigned least-loaded-
//     first — and, if the assignment actually changes, every partition's
//     match state is rebuilt at a pinned snapshot CSN between batches
//     (quiescent-point rebuild; unchanged assignments are skipped to
//     prevent thrash).
//   * Rebuild soundness: a quiescent rebuild re-derives exactly the
//     instantiations whose LHS holds at the pinned CSN. Replaying those
//     activations into the shared conflict set is a no-op for keys
//     already active; keys that FIRED but still hold would wrongly
//     re-enter, so arming split/rehome enables the conflict set's
//     refraction memory (fired tombstones, erased again on Deactivate —
//     see ConflictSet::EnableRefractionMemory).
//
// Canonical merge order / equivalence with the serial matcher
//   Partition-local matchers never mutate a shared conflict set directly:
//   their Activate/Deactivate calls are captured as per-sub-partition
//   event buffers (ConflictSet::SetEventSink) while the morsels run.
//   After the barrier, the committer thread replays the buffers onto the
//   shared engine-facing set in canonical (partition ascending,
//   sub-partition ascending, per-sub call order) order. Because the rule
//   partition is disjoint and the value split is disjoint per key, every
//   conflict-set key is produced by exactly one (partition, sub), and
//   that sub emits the key's events in the same relative order as the
//   serial matcher processing the same change stream restricted to its
//   rules and key share; the union therefore reaches the same final set
//   contents as the serial matcher after every batch (time tags in
//   instantiation keys come from the WMEs, not from match order). The
//   differential tests assert byte-identical CanonicalDump()s; the
//   optional shadow check re-asserts it in-process on every batch.
//
// Threading: ApplyChange/ApplyChanges/ApplyChangesAt must be called from
// one thread at a time (the engine's commit sequencer stage or its match
// pipeline thread); the shared conflict_set() remains safe for
// concurrent Claim/Contains from engine workers because all mutation
// happens in the single-threaded merge phase through the ConflictSet's
// own mutex.

#ifndef DBPS_MATCH_PARTITIONED_MATCHER_H_
#define DBPS_MATCH_PARTITIONED_MATCHER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "match/matcher.h"
#include "util/thread_pool.h"

namespace dbps {

class PartitionedMatcher : public Matcher {
 public:
  struct Options {
    /// Number of relation-hash partitions (mirrors lock shards).
    size_t num_partitions = 8;
    /// Morsel workers draining partition queues; 1 = serial ablation
    /// (same routing + canonical merge, inline execution).
    size_t num_workers = 4;
    /// Inner per-partition algorithm. kNaive is unsupported: the naive
    /// oracle rematches against live WM and reads its own conflict set,
    /// which a partition does not own.
    MatcherKind inner = MatcherKind::kRete;
    /// When set, a full-ruleset serial matcher of the same kind shadows
    /// every Initialize/ApplyChanges call and the merged event stream is
    /// replayed into a mirror set; after every batch the mirror and
    /// shadow conflict sets must dump byte-identically. First mismatch
    /// is sticky in shadow_status(). Differential-test / chaos aid.
    bool shadow_check = false;

    /// Arms hot-partition value-hash splitting (see file comment).
    bool split_hot = false;
    /// Sub-partitions a hot partition splits into (S).
    size_t split_ways = 4;
    /// Partition share of a batch's routed WMEs that counts as hot.
    double split_share = 0.6;
    /// Consecutive hot batches before a split-eligible partition splits.
    uint64_t split_streak = 4;

    /// Arms dynamic rule re-homing (see file comment).
    bool rehome = false;
    /// Consecutive skew-histogram-bin-9 batches before re-homing.
    uint64_t rehome_streak = 16;
  };

  struct PartitionCounters {
    uint64_t rules = 0;        ///< rules homed in this partition
    uint64_t subs = 0;         ///< current sub-partitions (1 = unsplit)
    uint64_t morsels = 0;      ///< non-empty sub-batches propagated
    uint64_t wmes_routed = 0;  ///< WME add/remove versions routed here
    uint64_t handoffs = 0;     ///< routed WMEs homed in another partition
    uint64_t propagate_ns = 0; ///< inner ApplyChanges time, this partition
  };

  struct Stats {
    std::vector<PartitionCounters> partitions;
    uint64_t batches = 0;           ///< propagation passes (ApplyChanges calls)
    uint64_t morsels = 0;           ///< total morsels across partitions
    uint64_t handoffs = 0;          ///< total cross-partition handoffs
    uint64_t propagate_wall_ns = 0; ///< wall time of the parallel phase
    uint64_t merge_ns = 0;          ///< canonical merge into the shared set
    uint64_t splits = 0;            ///< hot-partition value-hash splits
    uint64_t rehomes = 0;           ///< quiescent-point homing rebuilds
    uint64_t rehome_skips = 0;      ///< triggers whose assignment was unchanged
    /// Per-batch max partition share of routed WMEs, 10% bins: bin 9 ≈
    /// one partition got everything (skew), bin ~1/P ≈ perfectly spread.
    std::array<uint64_t, 10> skew_histogram{};
  };

  explicit PartitionedMatcher(Options options);
  ~PartitionedMatcher() override;

  Status Initialize(RuleSetPtr rules, const WorkingMemory& wm) override;
  void ApplyChange(const WmChange& change) override;
  void ApplyChanges(const std::vector<WmChange>& changes) override;

  /// Like ApplyChanges, but any quiescent-point rebuild this batch
  /// triggers (split / re-home) uses `snap` — a snapshot the caller
  /// pinned at the CSN right after this batch's WM applies — instead of
  /// pinning one from the live WM. The engine's match pipeline runs
  /// propagation off the commit path, where the live WM may already have
  /// advanced past this batch; shipping the pinned snapshot with the job
  /// keeps rebuilds anchored to the state the matcher has actually seen.
  /// An invalid (default) snapshot falls back to self-pinning, which is
  /// correct whenever the caller runs propagation in commit order.
  void ApplyChangesAt(const std::vector<WmChange>& changes,
                      const WmSnapshot& snap);

  /// Home partition of `relation`: Mix64(relation) % num_partitions —
  /// deliberately the same function as LockManager::ShardIndex.
  size_t PartitionOfRelation(SymbolId relation) const;

  size_t num_partitions() const { return partitions_.size(); }

  /// Current sub-partition count of partition `i` (1 = unsplit).
  size_t num_subpartitions(size_t i) const { return partitions_[i].subs.size(); }

  /// Counters; call between batches (not thread-safe vs ApplyChanges).
  Stats GetStats() const { return stats_; }

  /// OK until the first shadow-check divergence, then the sticky error.
  Status shadow_status() const { return shadow_status_; }

 private:
  struct SubPartition {
    // `events` is the matcher's event sink and must outlive it: matcher
    // teardown deactivates live tokens, which writes into the sink.
    std::vector<ConflictEvent> events;     // captured mutations, call order
    // Schema-only WM husk the matcher was snapshot-initialized against
    // (split rebuilds start empty and are fed their routed share).
    std::unique_ptr<WorkingMemory> schema_wm;
    std::unique_ptr<Matcher> matcher;
    std::vector<WmChange> queue;           // this batch's routed sub-changes
  };

  struct Partition {
    std::shared_ptr<RuleSet> rules;        // subset homed here (may be null)
    std::vector<SubPartition> subs;        // size >= 1 iff rules non-null
    /// Value-split routing field per consumed relation (valid iff
    /// splittable; routing consults it only when subs.size() > 1).
    std::unordered_map<SymbolId, size_t> split_field;
    bool splittable = false;
    uint64_t hot_streak = 0;               // consecutive >=split_share batches
    PartitionCounters counters;
  };

  /// Distributes `rules_` into partitions_ per home_of_ and rebuilds
  /// consumers_; requires partitions_ freshly resized.
  Status HomeRules();

  /// Computes split eligibility + per-relation split fields for `part`
  /// (see file comment for the analysis).
  void AnalyzeSplittability(Partition& part);

  /// Creates every non-empty partition's sub 0 matcher and snapshot-
  /// initializes it at `snap`, in parallel. Does not merge events.
  Status BuildPartitionMatchers(const WmSnapshot& snap);

  /// Rebuilds partition `i` as split_ways value-hash sub-partitions,
  /// each snapshot-fed its routed share of `snap`. Quiescent point only.
  Status SplitPartition(size_t i, const WmSnapshot& snap);

  /// Recomputes the homing map from observed per-relation routed load;
  /// if it changed, rebuilds every partition's match state at `snap`.
  Status Rehome(const WmSnapshot& snap);

  /// Runs `fn(i)` for every i in [0, n), on the pool when it exists
  /// (WaitIdle barrier), inline otherwise.
  void RunMorsels(size_t n, const std::function<void(size_t)>& fn);

  /// Replays every sub-partition's event buffer onto the shared set (and
  /// the shadow mirror) in canonical (partition, sub, call) order;
  /// clears buffers and queues.
  void MergeEvents();

  /// Shadow check: compares mirror vs shadow canonical dumps; sticky.
  void CheckShadow(const char* where);

  Options options_;
  std::vector<Partition> partitions_;
  /// relation -> partitions with at least one rule consuming it (sorted).
  std::unordered_map<SymbolId, std::vector<uint32_t>> consumers_;
  /// rule name -> home partition (defaults to PartitionOfRelation of the
  /// first CE's relation; diverges after a re-home).
  std::unordered_map<std::string, uint32_t> home_of_;
  /// Cumulative routed WME versions per relation (re-homing load proxy).
  std::unordered_map<SymbolId, uint64_t> routed_load_;
  uint64_t bin9_streak_ = 0;          // consecutive top-bin skew batches
  std::unique_ptr<ThreadPool> pool_;  // null when num_workers <= 1
  Stats stats_;

  RuleSetPtr rules_;                  // full set (re-homing re-partitions it)
  const WorkingMemory* wm_ = nullptr; // for self-pinned rebuild snapshots

  std::unique_ptr<Matcher> shadow_;  // full-ruleset serial reference
  ConflictSet mirror_;               // merged events replayed here too
  Status shadow_status_ = Status::OK();
  bool initialized_ = false;
};

}  // namespace dbps

#endif  // DBPS_MATCH_PARTITIONED_MATCHER_H_
