// PartitionedMatcher: morsel-parallel delta propagation over relation-
// hash-partitioned match state (the paper's intra-batch match
// parallelism, morsel scheduling after Leis et al.).
//
// Structure
//   * Rules are partitioned by the relation hash of their first condition
//     element: home(rule) = Mix64(first CE's relation) % P — the same mix
//     the lock manager uses for its shards, so a commit batch's
//     DeltaWriteSet maps onto matcher partitions the way it maps onto
//     lock shards. Each partition owns a complete, unmodified serial
//     matcher (Rete or TREAT) built over just its rule subset: alpha
//     memories, beta/join state and conflict-set insertion work for those
//     rules live entirely inside the partition.
//   * A WME change is routed to every partition whose rules consume its
//     relation. A rule whose conditions span relations homed in other
//     partitions receives those relations' WMEs as a cross-partition
//     handoff (counted in stats; the join itself still runs entirely
//     partition-locally, against the partition's own alpha memories).
//   * Propagation is morsel-style: each non-empty partition's routed
//     sub-batch is one morsel; a fixed worker pool drains the morsels,
//     each running the inner matcher's ApplyChanges against
//     partition-local state. `num_workers == 1` is the serial ablation —
//     identical routing and merge, inline execution.
//
// Canonical merge order / equivalence with the serial matcher
//   Partition-local matchers never mutate a shared conflict set directly:
//   their Activate/Deactivate calls are captured as per-partition event
//   buffers (ConflictSet::SetEventSink) while the morsels run. After the
//   barrier, the committer thread replays the buffers onto the shared
//   engine-facing set in canonical (partition ascending, per-partition
//   call order) order. Because the rule partition is disjoint, every
//   conflict-set key is produced by exactly one partition, and that
//   partition emits the key's events in the same relative order as the
//   serial matcher processing the same change stream restricted to its
//   rules; the union over partitions therefore reaches the same final
//   set contents as the serial matcher after every batch (time tags in
//   instantiation keys come from the WMEs, not from match order). The
//   differential tests assert byte-identical CanonicalDump()s; the
//   optional shadow check re-asserts it in-process on every batch.
//
// Threading: ApplyChange/ApplyChanges must be called from one thread (the
// engine's commit sequencer stage, as for the serial matchers); the
// shared conflict_set() remains safe for concurrent Claim/Contains from
// engine workers because all mutation happens in the single-threaded
// merge phase through the ConflictSet's own mutex.

#ifndef DBPS_MATCH_PARTITIONED_MATCHER_H_
#define DBPS_MATCH_PARTITIONED_MATCHER_H_

#include <array>
#include <cstdint>
#include <functional>
#include <memory>
#include <unordered_map>
#include <vector>

#include "match/matcher.h"
#include "util/thread_pool.h"

namespace dbps {

class PartitionedMatcher : public Matcher {
 public:
  struct Options {
    /// Number of relation-hash partitions (mirrors lock shards).
    size_t num_partitions = 8;
    /// Morsel workers draining partition queues; 1 = serial ablation
    /// (same routing + canonical merge, inline execution).
    size_t num_workers = 4;
    /// Inner per-partition algorithm. kNaive is unsupported: the naive
    /// oracle rematches against live WM and reads its own conflict set,
    /// which a partition does not own.
    MatcherKind inner = MatcherKind::kRete;
    /// When set, a full-ruleset serial matcher of the same kind shadows
    /// every Initialize/ApplyChanges call and the merged event stream is
    /// replayed into a mirror set; after every batch the mirror and
    /// shadow conflict sets must dump byte-identically. First mismatch
    /// is sticky in shadow_status(). Differential-test / chaos aid.
    bool shadow_check = false;
  };

  struct PartitionCounters {
    uint64_t rules = 0;        ///< rules homed in this partition
    uint64_t morsels = 0;      ///< non-empty sub-batches propagated
    uint64_t wmes_routed = 0;  ///< WME add/remove versions routed here
    uint64_t handoffs = 0;     ///< routed WMEs homed in another partition
    uint64_t propagate_ns = 0; ///< inner ApplyChanges time, this partition
  };

  struct Stats {
    std::vector<PartitionCounters> partitions;
    uint64_t batches = 0;           ///< propagation passes (ApplyChanges calls)
    uint64_t morsels = 0;           ///< total morsels across partitions
    uint64_t handoffs = 0;          ///< total cross-partition handoffs
    uint64_t propagate_wall_ns = 0; ///< wall time of the parallel phase
    uint64_t merge_ns = 0;          ///< canonical merge into the shared set
    /// Per-batch max partition share of routed WMEs, 10% bins: bin 9 ≈
    /// one partition got everything (skew), bin ~1/P ≈ perfectly spread.
    std::array<uint64_t, 10> skew_histogram{};
  };

  explicit PartitionedMatcher(Options options);
  ~PartitionedMatcher() override;

  Status Initialize(RuleSetPtr rules, const WorkingMemory& wm) override;
  void ApplyChange(const WmChange& change) override;
  void ApplyChanges(const std::vector<WmChange>& changes) override;

  /// Home partition of `relation`: Mix64(relation) % num_partitions —
  /// deliberately the same function as LockManager::ShardIndex.
  size_t PartitionOfRelation(SymbolId relation) const;

  size_t num_partitions() const { return partitions_.size(); }

  /// Counters; call between batches (not thread-safe vs ApplyChanges).
  Stats GetStats() const { return stats_; }

  /// OK until the first shadow-check divergence, then the sticky error.
  Status shadow_status() const { return shadow_status_; }

 private:
  struct Partition {
    std::shared_ptr<RuleSet> rules;        // subset homed here (may be null)
    // `events` is the matcher's event sink and must outlive it: matcher
    // teardown deactivates live tokens, which writes into the sink.
    std::vector<ConflictEvent> events;     // captured mutations, call order
    std::unique_ptr<Matcher> matcher;      // built iff rules non-empty
    std::vector<WmChange> queue;           // this batch's routed sub-changes
    PartitionCounters counters;
  };

  /// Runs `fn(partition_index)` for every index in `work`, on the pool
  /// when it exists (WaitIdle barrier), inline otherwise.
  void RunMorsels(const std::vector<size_t>& work,
                  const std::function<void(size_t)>& fn);

  /// Replays every partition's event buffer onto the shared set (and the
  /// shadow mirror) in canonical (partition, call) order; clears buffers.
  void MergeEvents();

  /// Shadow check: compares mirror vs shadow canonical dumps; sticky.
  void CheckShadow(const char* where);

  Options options_;
  std::vector<Partition> partitions_;
  /// relation -> partitions with at least one rule consuming it (sorted).
  std::unordered_map<SymbolId, std::vector<uint32_t>> consumers_;
  std::unique_ptr<ThreadPool> pool_;  // null when num_workers <= 1
  Stats stats_;

  std::unique_ptr<Matcher> shadow_;  // full-ruleset serial reference
  ConflictSet mirror_;               // merged events replayed here too
  Status shadow_status_ = Status::OK();
  bool initialized_ = false;
};

}  // namespace dbps

#endif  // DBPS_MATCH_PARTITIONED_MATCHER_H_
