#include "match/rete.h"

#include <algorithm>
#include <sstream>

#include "match/naive_matcher.h"
#include "match/treat.h"
#include "util/logging.h"

namespace dbps {
namespace rete {

struct Token;
class TokenHolder;
class NegativeNode;

/// A test an alpha memory applies to a single WME.
struct AlphaTest {
  enum class Kind : uint8_t { kConstant, kIntraField, kMember };
  Kind kind;
  size_t field;
  TestPredicate pred = TestPredicate::kEq;  // kConstant / kIntraField
  Value value;                              // kConstant
  size_t other_field = 0;                   // kIntraField
  std::vector<Value> members;               // kMember

  bool Eval(const Wme& wme) const {
    switch (kind) {
      case Kind::kConstant:
        return EvalPredicate(pred, wme.value(field), value);
      case Kind::kIntraField:
        return EvalPredicate(pred, wme.value(field),
                             wme.value(other_field));
      case Kind::kMember:
        for (const auto& candidate : members) {
          if (wme.value(field) == candidate) return true;
        }
        return false;
    }
    return false;
  }

  std::string Key() const {
    std::string out = std::to_string(field);
    switch (kind) {
      case Kind::kConstant:
        out += TestPredicateToString(pred);
        out += "c" + value.ToString();
        break;
      case Kind::kIntraField:
        out += TestPredicateToString(pred);
        out += "f" + std::to_string(other_field);
        break;
      case Kind::kMember:
        out += "in{";
        for (const auto& candidate : members) {
          out += candidate.ToString() + ",";
        }
        out += "}";
        break;
    }
    return out;
  }
};

/// A variable-consistency test a join/negative node applies between the
/// candidate WME and an earlier token's WME.
struct BetaTest {
  size_t field;       // field of the candidate WME
  TestPredicate pred;
  size_t levels_up;   // parent steps from the *left token* to the other WME
  size_t other_field;
};

/// Right-input listener: joins and negative nodes.
class AlphaSuccessor {
 public:
  virtual ~AlphaSuccessor() = default;
  virtual void OnWmeAdded(const WmePtr& wme) = 0;
};

struct AlphaMemory {
  std::vector<AlphaTest> tests;
  SymbolId relation;
  /// Items currently passing the tests (value keeps the version alive).
  std::unordered_map<const Wme*, WmePtr> items;
  /// Descendant-first order (deeper nodes first) — required so a shared
  /// alpha memory does not produce duplicate matches within one rule.
  std::vector<AlphaSuccessor*> successors;

  bool Matches(const Wme& wme) const {
    for (const auto& test : tests) {
      if (!test.Eval(wme)) return false;
    }
    return true;
  }
};

struct NegJoinResult {
  Token* owner;
  const Wme* wme;
};

struct Token {
  Token* parent = nullptr;
  WmePtr wme;  // null for the dummy token and negative-node tokens
  TokenHolder* holder = nullptr;
  std::vector<Token*> children;
  /// Only for negative-node tokens: the WMEs currently blocking them.
  std::vector<NegJoinResult*> join_results;
};

/// Left-input listener: joins, negative nodes, production nodes.
class Successor {
 public:
  virtual ~Successor() = default;
  /// `t` was added to (and is active in) the upstream holder.
  virtual void OnTokenAdded(Token* t) = 0;
  /// `t` is leaving the upstream holder (or became blocked).
  virtual void OnTokenRemoved(Token* t) = 0;
};

/// Common base of BetaMemory and NegativeNode: stores tokens and forwards
/// activation events to successors.
class TokenHolder {
 public:
  virtual ~TokenHolder() = default;

  /// True iff `t` currently propagates downstream (negative nodes block
  /// tokens that have join results).
  virtual bool TokenActive(const Token* t) const {
    (void)t;
    return true;
  }

  std::vector<Token*> tokens;
  std::vector<Successor*> successors;
};

class BetaMemory : public TokenHolder {};

struct WmeInfo {
  WmePtr wme;
  std::vector<AlphaMemory*> amems;
  std::vector<Token*> tokens;               // BM tokens whose wme this is
  std::vector<NegJoinResult*> neg_results;  // results blocking neg tokens
};

class Network {
 public:
  ~Network();

  Status Build(RuleSetPtr rules, ConflictSet* conflict_set);
  void AddWme(const WmePtr& wme);
  void RemoveWme(const Wme* wme);

  ReteMatcher::Stats GetStats() const;
  std::string ToDot() const;

  // --- token plumbing (used by the node classes) ---

  Token* MakeToken(TokenHolder* holder, Token* parent, WmePtr wme) {
    Token* t = new Token();
    t->parent = parent;
    t->wme = std::move(wme);
    t->holder = holder;
    if (parent != nullptr) parent->children.push_back(t);
    holder->tokens.push_back(t);
    if (t->wme != nullptr) {
      auto it = wme_infos_.find(t->wme.get());
      DBPS_CHECK(it != wme_infos_.end());
      it->second.tokens.push_back(t);
    }
    return t;
  }

  void AddNegJoinResult(Token* owner, const Wme* wme) {
    auto* result = new NegJoinResult{owner, wme};
    owner->join_results.push_back(result);
    wme_infos_.at(wme).neg_results.push_back(result);
  }

  /// Deletes t and its whole subtree, notifying production nodes.
  void DeleteToken(Token* t) {
    DeleteDescendants(t);
    for (Successor* s : t->holder->successors) s->OnTokenRemoved(t);
    CleanupToken(t);
  }

  /// Deletes only t's descendants (used when a negative token becomes
  /// blocked: the token itself stays, its downstream matches die).
  void DeleteDescendants(Token* t) {
    while (!t->children.empty()) DeleteToken(t->children.back());
  }

  WmeInfo* FindWmeInfo(const Wme* wme) {
    auto it = wme_infos_.find(wme);
    return it == wme_infos_.end() ? nullptr : &it->second;
  }

 private:
  void CleanupToken(Token* t) {
    for (NegJoinResult* result : t->join_results) {
      auto& results = wme_infos_.at(result->wme).neg_results;
      results.erase(std::find(results.begin(), results.end(), result));
      delete result;
    }
    t->join_results.clear();
    auto& holder_tokens = t->holder->tokens;
    holder_tokens.erase(
        std::find(holder_tokens.begin(), holder_tokens.end(), t));
    if (t->wme != nullptr) {
      auto it = wme_infos_.find(t->wme.get());
      if (it != wme_infos_.end()) {
        auto& wme_tokens = it->second.tokens;
        wme_tokens.erase(
            std::find(wme_tokens.begin(), wme_tokens.end(), t));
      }
    }
    if (t->parent != nullptr) {
      auto& siblings = t->parent->children;
      siblings.erase(std::find(siblings.begin(), siblings.end(), t));
    }
    delete t;
  }

  AlphaMemory* GetOrCreateAlphaMemory(SymbolId relation,
                                      std::vector<AlphaTest> tests);

  RuleSetPtr rules_;
  BetaMemory* dummy_bm_ = nullptr;
  Token* dummy_token_ = nullptr;

  std::vector<std::unique_ptr<AlphaMemory>> alpha_memories_;
  std::unordered_map<SymbolId, std::vector<AlphaMemory*>> alpha_by_relation_;
  std::unordered_map<std::string, AlphaMemory*> alpha_by_key_;

  std::vector<std::unique_ptr<BetaMemory>> beta_memories_;
  std::vector<std::unique_ptr<class JoinNode>> join_nodes_;
  std::vector<std::unique_ptr<NegativeNode>> negative_nodes_;
  std::vector<std::unique_ptr<class ProductionNode>> production_nodes_;

  std::unordered_map<const Wme*, WmeInfo> wme_infos_;

  friend class ReteMatcherTestPeer;
};

/// Walks `n` parent links up from `t`.
inline const Token* WalkUp(const Token* t, size_t n) {
  while (n-- > 0) {
    DBPS_DCHECK(t->parent != nullptr);
    t = t->parent;
  }
  return t;
}

/// Evaluates beta tests for candidate `wme` against the chain ending in
/// left token `t`.
inline bool PassesBetaTests(const std::vector<BetaTest>& tests,
                            const Token* t, const Wme& wme) {
  for (const auto& test : tests) {
    const Token* other = WalkUp(t, test.levels_up);
    DBPS_DCHECK(other->wme != nullptr);
    if (!EvalPredicate(test.pred, wme.value(test.field),
                       other->wme->value(test.other_field))) {
      return false;
    }
  }
  return true;
}

class JoinNode : public Successor, public AlphaSuccessor {
 public:
  JoinNode(Network* network, TokenHolder* left, AlphaMemory* amem,
           std::vector<BetaTest> tests, BetaMemory* child)
      : network_(network),
        left_(left),
        amem_(amem),
        tests_(std::move(tests)),
        child_(child) {}

  void OnTokenAdded(Token* t) override {
    for (const auto& [raw, wme] : amem_->items) {
      if (PassesBetaTests(tests_, t, *raw)) Emit(t, wme);
    }
  }

  void OnTokenRemoved(Token* t) override {
    (void)t;  // subtree deletion removes the child tokens directly
  }

  void OnWmeAdded(const WmePtr& wme) override {
    for (Token* t : left_->tokens) {
      if (left_->TokenActive(t) && PassesBetaTests(tests_, t, *wme)) {
        Emit(t, wme);
      }
    }
  }

  TokenHolder* left() const { return left_; }
  BetaMemory* child() const { return child_; }

 private:
  void Emit(Token* t, const WmePtr& wme) {
    Token* child_token = network_->MakeToken(child_, t, wme);
    for (Successor* s : child_->successors) s->OnTokenAdded(child_token);
  }

  Network* network_;
  TokenHolder* left_;
  AlphaMemory* amem_;
  std::vector<BetaTest> tests_;
  BetaMemory* child_;
};

class NegativeNode : public TokenHolder,
                     public Successor,
                     public AlphaSuccessor {
 public:
  NegativeNode(Network* network, AlphaMemory* amem,
               std::vector<BetaTest> tests)
      : network_(network), amem_(amem), tests_(std::move(tests)) {}

  bool TokenActive(const Token* t) const override {
    return t->join_results.empty();
  }

  // Left activation: upstream produced token `left`; store our own token
  // and propagate it iff nothing in the alpha memory blocks it.
  void OnTokenAdded(Token* left) override {
    Token* t = network_->MakeToken(this, left, nullptr);
    for (const auto& [raw, wme] : amem_->items) {
      (void)wme;
      if (PassesBetaTests(tests_, t, *raw)) {
        network_->AddNegJoinResult(t, raw);
      }
    }
    if (t->join_results.empty()) {
      for (Successor* s : successors) s->OnTokenAdded(t);
    }
  }

  void OnTokenRemoved(Token* t) override {
    (void)t;  // subtree deletion handles our tokens
  }

  // Right activation: a WME entered the alpha memory; newly blocked
  // tokens lose their downstream matches.
  void OnWmeAdded(const WmePtr& wme) override {
    for (Token* t : tokens) {
      if (!PassesBetaTests(tests_, t, *wme)) continue;
      const bool was_active = t->join_results.empty();
      network_->AddNegJoinResult(t, wme.get());
      if (was_active) {
        network_->DeleteDescendants(t);
        for (Successor* s : successors) s->OnTokenRemoved(t);
      }
    }
  }

  /// Called by the network when a blocking WME vanished and `t` has no
  /// join results left: the token becomes visible downstream again.
  void Reactivate(Token* t) {
    for (Successor* s : successors) s->OnTokenAdded(t);
  }

 private:
  Network* network_;
  AlphaMemory* amem_;
  std::vector<BetaTest> tests_;
};

class ProductionNode : public Successor {
 public:
  ProductionNode(RulePtr rule, ConflictSet* conflict_set,
                 std::vector<size_t> positive_levels)
      : rule_(std::move(rule)),
        conflict_set_(conflict_set),
        positive_levels_(std::move(positive_levels)) {}

  void OnTokenAdded(Token* t) override {
    // Collect the positive-CE WMEs along the chain. positive_levels_[i]
    // is the number of parent steps from t to positive CE i's token.
    std::vector<WmePtr> matched;
    matched.reserve(positive_levels_.size());
    for (size_t levels : positive_levels_) {
      const Token* holder_token = WalkUp(t, levels);
      DBPS_DCHECK(holder_token->wme != nullptr);
      matched.push_back(holder_token->wme);
    }
    auto inst = std::make_shared<Instantiation>(rule_, std::move(matched));
    by_token_.emplace(t, inst->key());
    conflict_set_->Activate(std::move(inst));
  }

  void OnTokenRemoved(Token* t) override {
    auto it = by_token_.find(t);
    if (it == by_token_.end()) return;  // token never reached us (blocked)
    conflict_set_->Deactivate(it->second);
    by_token_.erase(it);
  }

 private:
  RulePtr rule_;
  ConflictSet* conflict_set_;
  std::vector<size_t> positive_levels_;
  std::unordered_map<Token*, InstKey> by_token_;
};

Network::~Network() {
  if (dummy_token_ != nullptr) {
    DeleteDescendants(dummy_token_);
    CleanupToken(dummy_token_);
  }
}

AlphaMemory* Network::GetOrCreateAlphaMemory(SymbolId relation,
                                             std::vector<AlphaTest> tests) {
  // Canonicalize so structurally equal CEs share one memory.
  std::sort(tests.begin(), tests.end(),
            [](const AlphaTest& a, const AlphaTest& b) {
              return a.Key() < b.Key();
            });
  std::string key = SymName(relation);
  for (const auto& test : tests) key += "|" + test.Key();
  auto it = alpha_by_key_.find(key);
  if (it != alpha_by_key_.end()) return it->second;

  auto amem = std::make_unique<AlphaMemory>();
  amem->relation = relation;
  amem->tests = std::move(tests);
  AlphaMemory* raw = amem.get();
  alpha_memories_.push_back(std::move(amem));
  alpha_by_relation_[relation].push_back(raw);
  alpha_by_key_.emplace(std::move(key), raw);
  return raw;
}

Status Network::Build(RuleSetPtr rules, ConflictSet* conflict_set) {
  rules_ = std::move(rules);

  auto dummy = std::make_unique<BetaMemory>();
  dummy_bm_ = dummy.get();
  beta_memories_.push_back(std::move(dummy));
  dummy_token_ = MakeToken(dummy_bm_, nullptr, nullptr);

  for (const auto& rule : rules_->rules()) {
    TokenHolder* current = dummy_bm_;
    size_t chain_len = 0;                     // tokens below dummy so far
    std::vector<size_t> positive_chain_pos;   // chain index per positive CE
    // A rule that *starts* with negated CEs needs its first negative
    // node left-activated with the dummy token once the whole chain is
    // built (joins find existing left tokens lazily; negative nodes do
    // not).
    NegativeNode* leading_negative = nullptr;

    for (const auto& cond : rule->conditions()) {
      // Alpha part: constant + intra tests.
      std::vector<AlphaTest> alpha_tests;
      for (const auto& test : cond.constant_tests) {
        alpha_tests.push_back(AlphaTest{AlphaTest::Kind::kConstant,
                                        test.field, test.pred, test.value,
                                        0,
                                        {}});
      }
      for (const auto& test : cond.intra_tests) {
        alpha_tests.push_back(AlphaTest{AlphaTest::Kind::kIntraField,
                                        test.field, test.pred,
                                        Value::Nil(), test.other_field,
                                        {}});
      }
      for (const auto& test : cond.member_tests) {
        alpha_tests.push_back(AlphaTest{AlphaTest::Kind::kMember,
                                        test.field, TestPredicate::kEq,
                                        Value::Nil(), 0, test.values});
      }
      AlphaMemory* amem =
          GetOrCreateAlphaMemory(cond.relation, std::move(alpha_tests));

      // Beta part: join tests with levels_up computed from the left token
      // (which represents the chain of length `chain_len`) for joins, or
      // from the negative node's own token (length chain_len+1) for
      // negations.
      const size_t left_len = cond.negated ? chain_len + 1 : chain_len;
      std::vector<BetaTest> beta_tests;
      for (const auto& test : cond.join_tests) {
        DBPS_CHECK_LT(test.other_ce, positive_chain_pos.size());
        size_t levels_up = left_len - 1 - positive_chain_pos[test.other_ce];
        beta_tests.push_back(
            BetaTest{test.field, test.pred, levels_up, test.other_field});
      }

      if (cond.negated) {
        auto neg = std::make_unique<NegativeNode>(this, amem,
                                                  std::move(beta_tests));
        NegativeNode* raw = neg.get();
        negative_nodes_.push_back(std::move(neg));
        current->successors.push_back(raw);
        amem->successors.insert(amem->successors.begin(), raw);
        if (current == dummy_bm_) leading_negative = raw;
        current = raw;
        ++chain_len;
      } else {
        auto bm = std::make_unique<BetaMemory>();
        BetaMemory* bm_raw = bm.get();
        beta_memories_.push_back(std::move(bm));
        auto join = std::make_unique<JoinNode>(
            this, current, amem, std::move(beta_tests), bm_raw);
        JoinNode* join_raw = join.get();
        join_nodes_.push_back(std::move(join));
        current->successors.push_back(join_raw);
        amem->successors.insert(amem->successors.begin(), join_raw);
        positive_chain_pos.push_back(chain_len);
        current = bm_raw;
        ++chain_len;
      }
    }

    // Production node: levels from the final token to each positive CE.
    std::vector<size_t> positive_levels;
    positive_levels.reserve(positive_chain_pos.size());
    for (size_t pos : positive_chain_pos) {
      positive_levels.push_back(chain_len - 1 - pos);
    }
    auto pnode = std::make_unique<ProductionNode>(
        rule, conflict_set, std::move(positive_levels));
    current->successors.push_back(pnode.get());
    production_nodes_.push_back(std::move(pnode));

    if (leading_negative != nullptr) {
      leading_negative->OnTokenAdded(dummy_token_);
    }
  }
  return Status::OK();
}

void Network::AddWme(const WmePtr& wme) {
  auto [it, inserted] = wme_infos_.emplace(wme.get(), WmeInfo{wme, {}, {}, {}});
  DBPS_CHECK(inserted) << "WME version added twice: " << wme->ToString();
  auto rel_it = alpha_by_relation_.find(wme->relation());
  if (rel_it == alpha_by_relation_.end()) return;
  for (AlphaMemory* amem : rel_it->second) {
    if (!amem->Matches(*wme)) continue;
    amem->items.emplace(wme.get(), wme);
    it->second.amems.push_back(amem);
    for (AlphaSuccessor* s : amem->successors) s->OnWmeAdded(wme);
  }
}

void Network::RemoveWme(const Wme* wme) {
  auto it = wme_infos_.find(wme);
  if (it == wme_infos_.end()) return;  // never matched anything

  // (1) Make the WME invisible to all joins/negations first, so token
  //     reactivations below cannot re-match it.
  for (AlphaMemory* amem : it->second.amems) amem->items.erase(wme);

  // (2) Kill every token built on this WME (and their subtrees).
  while (!it->second.tokens.empty()) {
    DeleteToken(it->second.tokens.back());
  }

  // (3) Unblock negative tokens this WME was blocking. The token list is
  //     re-read because step 2 may have cleaned some results already.
  while (!it->second.neg_results.empty()) {
    NegJoinResult* result = it->second.neg_results.back();
    it->second.neg_results.pop_back();
    Token* owner = result->owner;
    auto& owned = owner->join_results;
    owned.erase(std::find(owned.begin(), owned.end(), result));
    delete result;
    if (owned.empty()) {
      static_cast<NegativeNode*>(owner->holder)->Reactivate(owner);
    }
  }

  wme_infos_.erase(it);
}

ReteMatcher::Stats Network::GetStats() const {
  ReteMatcher::Stats stats;
  stats.alpha_memories = alpha_memories_.size();
  stats.beta_memories = beta_memories_.size();
  stats.join_nodes = join_nodes_.size();
  stats.negative_nodes = negative_nodes_.size();
  stats.production_nodes = production_nodes_.size();
  for (const auto& bm : beta_memories_) stats.tokens += bm->tokens.size();
  for (const auto& neg : negative_nodes_) stats.tokens += neg->tokens.size();
  stats.wmes = wme_infos_.size();
  return stats;
}

std::string Network::ToDot() const {
  std::ostringstream out;
  out << "digraph rete {\n  rankdir=TB;\n";
  std::unordered_map<const void*, std::string> names;
  auto name_of = [&](const void* node, const std::string& prefix) {
    auto it = names.find(node);
    if (it != names.end()) return it->second;
    std::string name = prefix + std::to_string(names.size());
    names.emplace(node, name);
    return name;
  };
  for (const auto& amem : alpha_memories_) {
    std::string name = name_of(amem.get(), "alpha");
    out << "  " << name << " [shape=box,label=\"alpha "
        << SymName(amem->relation) << " (" << amem->tests.size()
        << " tests)\"];\n";
    for (const AlphaSuccessor* s : amem->successors) {
      out << "  " << name << " -> " << name_of(s, "n")
          << " [style=dashed];\n";
    }
  }
  for (const auto& bm : beta_memories_) {
    out << "  " << name_of(bm.get(), "n")
        << " [shape=ellipse,label=\"beta\"];\n";
    for (const Successor* s : bm->successors) {
      out << "  " << name_of(bm.get(), "n") << " -> " << name_of(s, "n")
          << ";\n";
    }
  }
  for (const auto& join : join_nodes_) {
    out << "  " << name_of(join.get(), "n")
        << " [shape=diamond,label=\"join\"];\n";
    out << "  " << name_of(join.get(), "n") << " -> "
        << name_of(join->child(), "n") << ";\n";
  }
  for (const auto& neg : negative_nodes_) {
    out << "  " << name_of(neg.get(), "n")
        << " [shape=diamond,label=\"neg\"];\n";
    for (const Successor* s : neg->successors) {
      out << "  " << name_of(neg.get(), "n") << " -> " << name_of(s, "n")
          << ";\n";
    }
  }
  for (const auto& pnode : production_nodes_) {
    out << "  " << name_of(pnode.get(), "n")
        << " [shape=doublecircle,label=\"prod\"];\n";
  }
  out << "}\n";
  return out.str();
}

}  // namespace rete

ReteMatcher::ReteMatcher() : network_(std::make_unique<rete::Network>()) {}
ReteMatcher::~ReteMatcher() = default;

Status ReteMatcher::Initialize(RuleSetPtr rules, const WorkingMemory& wm) {
  return InitializeAt(std::move(rules), wm.SnapshotAt());
}

Status ReteMatcher::InitializeAt(RuleSetPtr rules, const WmSnapshot& snap) {
  DBPS_RETURN_NOT_OK(network_->Build(std::move(rules), &conflict_set_));
  for (SymbolId relation : snap.catalog().relation_names()) {
    for (const WmePtr& wme : snap.Scan(relation)) {
      network_->AddWme(wme);
    }
  }
  return Status::OK();
}

void ReteMatcher::ApplyChange(const WmChange& change) {
  for (const WmePtr& wme : change.removed) network_->RemoveWme(wme.get());
  for (const WmePtr& wme : change.added) network_->AddWme(wme);
}

void ReteMatcher::ApplyChanges(const std::vector<WmChange>& changes) {
  // One pass: every removal leaves the network before any addition joins,
  // so an added WME never pairs with a dying version from a sibling
  // change. Sound because batch members are pairwise disjoint (no change
  // removes a version another adds); within one change the removed/added
  // pairing of a modify is preserved as in ApplyChange.
  for (const WmChange& change : changes) {
    for (const WmePtr& wme : change.removed) network_->RemoveWme(wme.get());
  }
  for (const WmChange& change : changes) {
    for (const WmePtr& wme : change.added) network_->AddWme(wme);
  }
}

ReteMatcher::Stats ReteMatcher::GetStats() const {
  return network_->GetStats();
}

std::string ReteMatcher::ToDot() const { return network_->ToDot(); }

const char* MatcherKindToString(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kRete:
      return "rete";
    case MatcherKind::kNaive:
      return "naive";
    case MatcherKind::kTreat:
      return "treat";
  }
  return "?";
}

std::unique_ptr<Matcher> CreateMatcher(MatcherKind kind) {
  switch (kind) {
    case MatcherKind::kRete:
      return std::make_unique<ReteMatcher>();
    case MatcherKind::kNaive:
      return std::make_unique<NaiveMatcher>();
    case MatcherKind::kTreat:
      return std::make_unique<TreatMatcher>();
  }
  return nullptr;
}

}  // namespace dbps
