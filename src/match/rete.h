// ReteMatcher: incremental production matching via a Rete network
// [FORG82], in the style of Doorenbos' "Production Matching for Large
// Learning Systems".
//
// Structure
//   * Alpha network: per relation, shared alpha memories holding the WMEs
//     that pass a condition element's constant and intra-WME tests.
//   * Beta network: a left-deep chain per rule. Positive CEs contribute a
//     JoinNode (variable-consistency tests against earlier CEs) feeding a
//     BetaMemory of tokens; negated CEs contribute a NegativeNode that
//     stores tokens with their "blocking" join results and only propagates
//     tokens with zero results. A ProductionNode at the end of each chain
//     maintains the rule's instantiations in the conflict set.
//
// Incrementality: ApplyChange feeds individual WME version removals and
// additions; tokens are created/deleted along the way, so match cost is
// proportional to the change, not to working-memory size.

#ifndef DBPS_MATCH_RETE_H_
#define DBPS_MATCH_RETE_H_

#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "match/matcher.h"

namespace dbps {
namespace rete {
class Network;
}  // namespace rete

class ReteMatcher : public Matcher {
 public:
  ReteMatcher();
  ~ReteMatcher() override;

  Status Initialize(RuleSetPtr rules, const WorkingMemory& wm) override;
  Status InitializeAt(RuleSetPtr rules, const WmSnapshot& snap) override;
  void ApplyChange(const WmChange& change) override;
  void ApplyChanges(const std::vector<WmChange>& changes) override;

  /// Network shape / size counters (for tests and benches).
  struct Stats {
    size_t alpha_memories = 0;
    size_t beta_memories = 0;
    size_t join_nodes = 0;
    size_t negative_nodes = 0;
    size_t production_nodes = 0;
    size_t tokens = 0;
    size_t wmes = 0;
  };
  Stats GetStats() const;

  std::string ToDot() const;  ///< Graphviz dump of the network shape.

 private:
  std::unique_ptr<rete::Network> network_;
};

}  // namespace dbps

#endif  // DBPS_MATCH_RETE_H_
