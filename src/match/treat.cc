#include "match/treat.h"

#include "util/logging.h"

namespace dbps {

Status TreatMatcher::Initialize(RuleSetPtr rules, const WorkingMemory& wm) {
  return InitializeAt(std::move(rules), wm.SnapshotAt());
}

Status TreatMatcher::InitializeAt(RuleSetPtr rules, const WmSnapshot& snap) {
  DBPS_CHECK(rules_ == nullptr) << "Initialize called twice";
  rules_ = std::move(rules);
  for (const auto& rule : rules_->rules()) {
    RuleState state;
    state.rule = rule;
    for (const auto& cond : rule->conditions()) {
      CondMem mem;
      mem.cond = &cond;
      if (cond.negated) {
        state.negatives.push_back(std::move(mem));
      } else {
        state.positives.push_back(std::move(mem));
      }
    }
    states_.push_back(std::move(state));
  }
  for (SymbolId relation : snap.catalog().relation_names()) {
    for (const WmePtr& wme : snap.Scan(relation)) {
      AddWme(wme);
    }
  }
  return Status::OK();
}

void TreatMatcher::ApplyChange(const WmChange& change) {
  for (const WmePtr& wme : change.removed) RemoveWme(wme);
  for (const WmePtr& wme : change.added) AddWme(wme);
}

void TreatMatcher::ApplyChanges(const std::vector<WmChange>& changes) {
  // All removals, then all additions — see ReteMatcher::ApplyChanges for
  // why this is sound on pairwise-disjoint batches.
  for (const WmChange& change : changes) {
    for (const WmePtr& wme : change.removed) RemoveWme(wme);
  }
  for (const WmChange& change : changes) {
    for (const WmePtr& wme : change.added) AddWme(wme);
  }
}

size_t TreatMatcher::AlphaItemCount() const {
  size_t total = 0;
  for (const auto& state : states_) {
    for (const auto& mem : state.positives) total += mem.items.size();
    for (const auto& mem : state.negatives) total += mem.items.size();
  }
  return total;
}

bool TreatMatcher::PassesAlpha(const Condition& cond, const Wme& wme) {
  if (cond.relation != wme.relation()) return false;
  for (const auto& test : cond.constant_tests) {
    if (!EvalPredicate(test.pred, wme.value(test.field), test.value)) {
      return false;
    }
  }
  for (const auto& test : cond.member_tests) {
    if (!test.Eval(wme.value(test.field))) return false;
  }
  for (const auto& test : cond.intra_tests) {
    if (!EvalPredicate(test.pred, wme.value(test.field),
                       wme.value(test.other_field))) {
      return false;
    }
  }
  return true;
}

bool TreatMatcher::PassesJoins(const Condition& cond, const Wme& wme,
                               const std::vector<WmePtr>& matched) {
  for (const auto& test : cond.join_tests) {
    DBPS_DCHECK(test.other_ce < matched.size());
    if (!EvalPredicate(test.pred, wme.value(test.field),
                       matched[test.other_ce]->value(test.other_field))) {
      return false;
    }
  }
  return true;
}

bool TreatMatcher::Blocked(const CondMem& mem,
                           const std::vector<WmePtr>& matched) {
  for (const auto& [raw, wme] : mem.items) {
    if (PassesJoins(*mem.cond, *raw, matched)) return true;
  }
  return false;
}

void TreatMatcher::Activate(RuleState* state, std::vector<WmePtr> matched) {
  auto inst =
      std::make_shared<Instantiation>(state->rule, std::move(matched));
  InstKey key = inst->key();
  if (state->insts.emplace(key, inst).second) {
    conflict_set_.Activate(std::move(inst));
  }
}

void TreatMatcher::JoinFrom(RuleState* state, size_t depth, size_t seed_pos,
                            const Wme* seed,
                            std::vector<WmePtr>* matched) {
  if (depth == state->positives.size()) {
    for (const auto& mem : state->negatives) {
      if (Blocked(mem, *matched)) return;
    }
    Activate(state, *matched);
    return;
  }
  if (depth == seed_pos) {
    // The seed is pinned here; it already passed this CE's alpha tests.
    const WmePtr& pinned = state->positives[depth].items.at(seed);
    if (!PassesJoins(*state->positives[depth].cond, *pinned, *matched)) {
      return;
    }
    matched->push_back(pinned);
    JoinFrom(state, depth + 1, seed_pos, seed, matched);
    matched->pop_back();
    return;
  }
  for (const auto& [raw, wme] : state->positives[depth].items) {
    // Duplicate suppression for self-joins: positions before the seed
    // never use the seed WME (a match using it there is found when the
    // earlier position is the seed instead).
    if (seed != nullptr && depth < seed_pos && raw == seed) continue;
    if (!PassesJoins(*state->positives[depth].cond, *raw, *matched)) {
      continue;
    }
    matched->push_back(wme);
    JoinFrom(state, depth + 1, seed_pos, seed, matched);
    matched->pop_back();
  }
}

void TreatMatcher::SeededJoin(RuleState* state, size_t seed_pos,
                              const WmePtr& seed) {
  std::vector<WmePtr> matched;
  matched.reserve(state->positives.size());
  JoinFrom(state, 0, seed_pos, seed.get(), &matched);
}

void TreatMatcher::FullJoin(RuleState* state) {
  std::vector<WmePtr> matched;
  matched.reserve(state->positives.size());
  // seed_pos beyond the CE count: nothing pinned, nothing suppressed.
  JoinFrom(state, 0, state->positives.size(), nullptr, &matched);
}

void TreatMatcher::AddWme(const WmePtr& wme) {
  // Enter every alpha memory first (so negation checks during the joins
  // below already see the new WME).
  for (auto& state : states_) {
    for (auto& mem : state.positives) {
      if (PassesAlpha(*mem.cond, *wme)) mem.items.emplace(wme.get(), wme);
    }
    for (auto& mem : state.negatives) {
      if (PassesAlpha(*mem.cond, *wme)) mem.items.emplace(wme.get(), wme);
    }
  }
  for (auto& state : states_) {
    // New instantiations: seeded join per positive CE the WME entered.
    for (size_t pos = 0; pos < state.positives.size(); ++pos) {
      if (state.positives[pos].items.count(wme.get()) != 0) {
        SeededJoin(&state, pos, wme);
      }
    }
    // Newly blocked instantiations: retract what the WME now blocks.
    for (const auto& mem : state.negatives) {
      if (mem.items.count(wme.get()) == 0) continue;
      std::vector<InstKey> retracted;
      for (const auto& [key, inst] : state.insts) {
        if (PassesJoins(*mem.cond, *wme, inst->matched())) {
          retracted.push_back(key);
        }
      }
      for (const auto& key : retracted) {
        state.insts.erase(key);
        conflict_set_.Deactivate(key);
      }
    }
  }
}

void TreatMatcher::RemoveWme(const WmePtr& wme) {
  for (auto& state : states_) {
    bool touched_positive = false;
    bool touched_negative = false;
    for (auto& mem : state.positives) {
      touched_positive |= mem.items.erase(wme.get()) > 0;
    }
    for (auto& mem : state.negatives) {
      touched_negative |= mem.items.erase(wme.get()) > 0;
    }
    if (touched_positive) {
      // Token-free deletion: drop every instantiation built on the WME.
      std::vector<InstKey> retracted;
      for (const auto& [key, inst] : state.insts) {
        for (const auto& matched : inst->matched()) {
          if (matched.get() == wme.get()) {
            retracted.push_back(key);
            break;
          }
        }
      }
      for (const auto& key : retracted) {
        state.insts.erase(key);
        conflict_set_.Deactivate(key);
      }
    }
    if (touched_negative) {
      // The WME may have been the last blocker of some matches: re-join.
      FullJoin(&state);
    }
  }
}

}  // namespace dbps
