// TreatMatcher: the TREAT match algorithm [MIRA84], the Rete alternative
// the paper cites ("The RETE and TREAT pattern matching algorithms are
// examples of this approach").
//
// TREAT keeps only alpha memories (per condition element) and the
// conflict set itself — no beta memories:
//  * WME added: it enters the alpha memories it passes; for each
//    positive CE it entered, a *seeded* nested-loop join (the new WME
//    pinned at that CE) computes exactly the new instantiations; for
//    each negated CE it entered, the instantiations it now blocks are
//    retracted.
//  * WME removed: it leaves its alpha memories; instantiations built on
//    it are retracted directly (token-free deletion — TREAT's signature
//    move); rules whose negated CEs lose the WME are re-joined to
//    surface newly unblocked instantiations.
//
// Compared with Rete it trades join recomputation for zero beta-memory
// state; bench_match quantifies the trade on this implementation.

#ifndef DBPS_MATCH_TREAT_H_
#define DBPS_MATCH_TREAT_H_

#include <unordered_map>
#include <vector>

#include "match/matcher.h"

namespace dbps {

class TreatMatcher : public Matcher {
 public:
  Status Initialize(RuleSetPtr rules, const WorkingMemory& wm) override;
  Status InitializeAt(RuleSetPtr rules, const WmSnapshot& snap) override;
  void ApplyChange(const WmChange& change) override;
  void ApplyChanges(const std::vector<WmChange>& changes) override;

  /// Total alpha-memory entries (for tests/benches: TREAT's only state).
  size_t AlphaItemCount() const;

 private:
  struct CondMem {
    const Condition* cond = nullptr;
    std::unordered_map<const Wme*, WmePtr> items;
  };

  struct RuleState {
    RulePtr rule;
    std::vector<CondMem> positives;  // in positive-CE order
    std::vector<CondMem> negatives;
    std::unordered_map<InstKey, InstPtr, InstKeyHash> insts;
  };

  void AddWme(const WmePtr& wme);
  void RemoveWme(const WmePtr& wme);

  /// Seeded join for one rule: `seed` pinned at positive CE `seed_pos`;
  /// CEs before seed_pos skip `seed` (duplicate suppression for
  /// self-joins). Activates every completed, unblocked instantiation.
  void SeededJoin(RuleState* state, size_t seed_pos, const WmePtr& seed);

  /// Full join of one rule; activates matches not already active (used
  /// after a negated CE loses a WME).
  void FullJoin(RuleState* state);

  void JoinFrom(RuleState* state, size_t depth, size_t seed_pos,
                const Wme* seed, std::vector<WmePtr>* matched);

  /// True iff `wme` passes `cond`'s alpha (constant/member/intra) tests.
  static bool PassesAlpha(const Condition& cond, const Wme& wme);
  /// True iff `wme` passes `cond`'s join tests against `matched`.
  static bool PassesJoins(const Condition& cond, const Wme& wme,
                          const std::vector<WmePtr>& matched);
  /// True iff some WME in `mem` blocks `matched` under its condition.
  static bool Blocked(const CondMem& mem,
                      const std::vector<WmePtr>& matched);

  void Activate(RuleState* state, std::vector<WmePtr> matched);

  RuleSetPtr rules_;
  std::vector<RuleState> states_;
};

}  // namespace dbps

#endif  // DBPS_MATCH_TREAT_H_
