#include "net/client.h"

#include <arpa/inet.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace dbps {
namespace net {

namespace {

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

std::vector<std::string> SplitLines(const std::string& text) {
  std::vector<std::string> out;
  size_t start = 0;
  while (start < text.size()) {
    size_t end = text.find('\n', start);
    if (end == std::string::npos) end = text.size();
    out.push_back(text.substr(start, end - start));
    start = end + 1;
  }
  return out;
}

}  // namespace

StatusOr<std::unique_ptr<DbpsClient>> DbpsClient::Connect(
    const std::string& host, uint16_t port, const std::string& name,
    ClientOptions options) {
  const int fd = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (fd < 0) return Errno("socket");
  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(port);
  if (::inet_pton(AF_INET, host.c_str(), &addr.sin_addr) != 1) {
    ::close(fd);
    return Status::InvalidArgument("bad host '" + host + "'");
  }
  if (::connect(fd, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) < 0) {
    Status st = Errno("connect");
    ::close(fd);
    return st;
  }
  const int one = 1;
  ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
  if (options.recv_timeout.count() > 0) {
    timeval tv{};
    tv.tv_sec = options.recv_timeout.count() / 1000;
    tv.tv_usec = (options.recv_timeout.count() % 1000) * 1000;
    ::setsockopt(fd, SOL_SOCKET, SO_RCVTIMEO, &tv, sizeof(tv));
  }

  std::unique_ptr<DbpsClient> client(new DbpsClient(fd, options));
  std::string body;
  PutString(&body, name);
  DBPS_ASSIGN_OR_RETURN(uint64_t id,
                        client->Send(FrameType::kHello, body));
  DBPS_ASSIGN_OR_RETURN(Frame frame, client->Await(id));
  if (frame.type != FrameType::kHelloOk) {
    return ExpectOk(frame).ok()
               ? Status::Internal("unexpected Hello response")
               : ExpectOk(frame);
  }
  BodyReader reader(frame.body);
  DBPS_ASSIGN_OR_RETURN(client->session_id_, reader.U64());
  return client;
}

DbpsClient::~DbpsClient() {
  if (fd_ >= 0) ::close(fd_);
}

Status DbpsClient::SendBytes(std::string_view bytes) {
  size_t off = 0;
  while (off < bytes.size()) {
    const ssize_t n = ::send(fd_, bytes.data() + off, bytes.size() - off,
                             MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      return Errno("send");
    }
    off += static_cast<size_t>(n);
  }
  return Status::OK();
}

StatusOr<uint64_t> DbpsClient::Send(FrameType type, std::string_view body) {
  if (fd_ < 0) return Status::Unavailable("client closed");
  const uint64_t id = next_request_id_++;
  DBPS_RETURN_NOT_OK(SendBytes(EncodeFrame(type, id, body)));
  ++in_flight_;
  return id;
}

Status DbpsClient::FillReader(bool blocking, bool* progress) {
  char buf[65536];
  const ssize_t n =
      ::recv(fd_, buf, sizeof(buf), blocking ? 0 : MSG_DONTWAIT);
  if (n > 0) {
    reader_.Feed(std::string_view(buf, static_cast<size_t>(n)));
    *progress = true;
    return Status::OK();
  }
  *progress = false;
  if (n == 0) return Status::Unavailable("server closed connection");
  if (errno == EINTR) return Status::OK();
  if (errno == EAGAIN || errno == EWOULDBLOCK) {
    // For a blocking read this is SO_RCVTIMEO expiring.
    return blocking ? Status::Unavailable("receive timeout")
                    : Status::OK();
  }
  return Errno("recv");
}

StatusOr<Frame> DbpsClient::Await(uint64_t request_id) {
  for (;;) {
    auto it = completed_.find(request_id);
    if (it != completed_.end()) {
      Frame frame = std::move(it->second);
      completed_.erase(it);
      --in_flight_;
      return frame;
    }
    Frame frame;
    DBPS_ASSIGN_OR_RETURN(bool got, reader_.Next(&frame));
    if (got) {
      completed_.emplace(frame.request_id, std::move(frame));
      continue;
    }
    bool progress = false;
    DBPS_RETURN_NOT_OK(FillReader(/*blocking=*/true, &progress));
    if (!progress) return Status::Unavailable("receive timeout");
  }
}

StatusOr<bool> DbpsClient::TryNext(Frame* frame) {
  for (;;) {
    if (!completed_.empty()) {
      auto it = completed_.begin();
      *frame = std::move(it->second);
      completed_.erase(it);
      --in_flight_;
      return true;
    }
    DBPS_ASSIGN_OR_RETURN(bool got, reader_.Next(frame));
    if (got) {
      --in_flight_;
      return true;
    }
    bool progress = false;
    DBPS_RETURN_NOT_OK(FillReader(/*blocking=*/false, &progress));
    if (!progress) return false;
  }
}

// --- response decoding --------------------------------------------------

Status DbpsClient::ExpectOk(const Frame& frame) {
  switch (frame.type) {
    case FrameType::kOk:
    case FrameType::kPong:
    case FrameType::kHelloOk:
    case FrameType::kCommitOk:
    case FrameType::kRows:
      return Status::OK();
    case FrameType::kBusy:
      return DecodeBusy(frame);
    case FrameType::kError:
      return DecodeError(frame);
    default:
      return Status::Internal(std::string("unexpected response frame '") +
                              FrameTypeToString(frame.type) + "'");
  }
}

StatusOr<uint64_t> DbpsClient::ExpectCommitOk(const Frame& frame) {
  if (frame.type != FrameType::kCommitOk) {
    Status st = ExpectOk(frame);
    if (!st.ok()) return st;
    return Status::Internal(std::string("expected CommitOk, got '") +
                            FrameTypeToString(frame.type) + "'");
  }
  BodyReader reader(frame.body);
  return reader.U64();
}

StatusOr<std::vector<std::string>> DbpsClient::ExpectRows(
    const Frame& frame) {
  if (frame.type != FrameType::kRows) {
    Status st = ExpectOk(frame);
    if (!st.ok()) return st;
    return Status::Internal(std::string("expected Rows, got '") +
                            FrameTypeToString(frame.type) + "'");
  }
  BodyReader reader(frame.body);
  DBPS_ASSIGN_OR_RETURN(uint32_t count, reader.U32());
  DBPS_ASSIGN_OR_RETURN(std::string text, reader.String());
  std::vector<std::string> rows = SplitLines(text);
  if (rows.size() != count) {
    return Status::Internal("Rows count mismatch: header says " +
                            std::to_string(count) + ", body has " +
                            std::to_string(rows.size()));
  }
  return rows;
}

// --- synchronous convenience --------------------------------------------

Status DbpsClient::Begin() {
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kBegin));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectOk(frame);
}

StatusOr<std::vector<std::string>> DbpsClient::Read(
    const std::string& relation) {
  std::string body;
  PutString(&body, relation);
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kRead, body));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectRows(frame);
}

StatusOr<std::vector<std::string>> DbpsClient::Query(
    const std::string& lhs) {
  std::string body;
  PutString(&body, lhs);
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kQuery, body));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectRows(frame);
}

Status DbpsClient::WriteLine(const std::string& journal_line) {
  std::string body;
  PutString(&body, journal_line);
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kWrite, body));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectOk(frame);
}

StatusOr<uint64_t> DbpsClient::Commit() {
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kCommit));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectCommitOk(frame);
}

Status DbpsClient::Abort() {
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kAbortTxn));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectOk(frame);
}

Status DbpsClient::Ping() {
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kPing));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectOk(frame);
}

Status DbpsClient::Checkpoint() {
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kCheckpoint));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  return ExpectOk(frame);
}

Status DbpsClient::Goodbye() {
  DBPS_ASSIGN_OR_RETURN(uint64_t id, Send(FrameType::kGoodbye));
  DBPS_ASSIGN_OR_RETURN(Frame frame, Await(id));
  Status st = ExpectOk(frame);
  ::shutdown(fd_, SHUT_RDWR);
  ::close(fd_);
  fd_ = -1;
  return st;
}

}  // namespace net
}  // namespace dbps
