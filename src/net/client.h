// DbpsClient: the client side of the binary wire protocol.
//
// A thin, dependency-light library over one TCP connection. Two styles:
//
//   * Synchronous convenience — Begin/Read/Query/WriteLine/Commit each
//     send one request and block for its response:
//
//       auto client = DbpsClient::Connect("127.0.0.1", port, "alice")
//                         .ValueOrDie();
//       DBPS_RETURN_NOT_OK(client->Begin());
//       DBPS_RETURN_NOT_OK(client->WriteLine("(create order ...)"));
//       auto seq = client->Commit();          // acked after fsync
//
//   * Pipelined — Send() pushes a request and returns its id without
//     waiting; Await(id) blocks until that response arrives (buffering
//     any earlier ones); TryNext() is the non-blocking variant for
//     poll()-driven callers that multiplex many clients on one thread
//     (see bench/bench_net.cc):
//
//       uint64_t b = client->Send(FrameType::kBegin).ValueOrDie();
//       uint64_t w = client->Send(FrameType::kWrite, wbody).ValueOrDie();
//       uint64_t c = client->Send(FrameType::kCommit).ValueOrDie();
//       ... three requests are now in flight on one connection ...
//       auto seq = DbpsClient::ExpectCommitOk(client->Await(c).ValueOrDie());
//
// Busy responses (the server's backpressure frames) surface as
// ResourceExhausted statuses with the retry hint in the message; the
// caller owns the backoff loop.
//
// A DbpsClient is NOT thread-safe — one per thread, or external locking.

#ifndef DBPS_NET_CLIENT_H_
#define DBPS_NET_CLIENT_H_

#include <chrono>
#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "util/status.h"
#include "util/statusor.h"

namespace dbps {
namespace net {

struct ClientOptions {
  /// Blocking receives (Await and the sync calls) fail with Unavailable
  /// after this long without a response.
  std::chrono::milliseconds recv_timeout{30000};
};

class DbpsClient {
 public:
  /// Connects, sends Hello{name}, and waits for HelloOk.
  static StatusOr<std::unique_ptr<DbpsClient>> Connect(
      const std::string& host, uint16_t port, const std::string& name,
      ClientOptions options = {});

  ~DbpsClient();
  DbpsClient(const DbpsClient&) = delete;
  DbpsClient& operator=(const DbpsClient&) = delete;

  int fd() const { return fd_; }  ///< for poll()-based multiplexing
  uint64_t session_id() const { return session_id_; }
  /// Requests sent whose responses have not been consumed yet.
  size_t in_flight() const { return in_flight_; }

  // --- synchronous convenience ------------------------------------------

  Status Begin();
  /// Rows of `relation`, one printed WME per line.
  StatusOr<std::vector<std::string>> Read(const std::string& relation);
  /// Query rows, one per line (tab-separated WMEs).
  StatusOr<std::vector<std::string>> Query(const std::string& lhs);
  /// Buffers one delta, given as a lang/journal.h journal line.
  Status WriteLine(const std::string& journal_line);
  /// Commit sequence number; the server acks only after the journal
  /// fsync (group commit), so success here means durable.
  StatusOr<uint64_t> Commit();
  Status Abort();
  Status Ping();
  /// Admin: ask the server to write a journal snapshot checkpoint at its
  /// next commit-batch boundary. OK means scheduled, not yet written.
  Status Checkpoint();
  /// Orderly close: Goodbye, await Ok, shut the socket down.
  Status Goodbye();

  // --- pipelined --------------------------------------------------------

  /// Sends one request frame; returns its request id immediately.
  StatusOr<uint64_t> Send(FrameType type, std::string_view body = {});
  /// Blocks until the response for `request_id` arrives. Responses for
  /// other ids encountered on the way are buffered for their own Await.
  StatusOr<Frame> Await(uint64_t request_id);
  /// Non-blocking: true and fills *frame if a complete response is
  /// available (buffered or readable right now), false otherwise.
  StatusOr<bool> TryNext(Frame* frame);

  // --- response decoding (usable on Await/TryNext results) --------------

  /// kOk/kPong → OK; kBusy → ResourceExhausted; kError → its Status.
  static Status ExpectOk(const Frame& frame);
  static StatusOr<uint64_t> ExpectCommitOk(const Frame& frame);
  static StatusOr<std::vector<std::string>> ExpectRows(const Frame& frame);

 private:
  DbpsClient(int fd, ClientOptions options)
      : fd_(fd), options_(options) {}

  Status SendBytes(std::string_view bytes);
  /// Reads once from the socket into the frame reader. `blocking` waits
  /// (subject to recv_timeout); otherwise MSG_DONTWAIT.
  Status FillReader(bool blocking, bool* progress);

  int fd_ = -1;
  ClientOptions options_;
  uint64_t session_id_ = 0;
  uint64_t next_request_id_ = 1;
  size_t in_flight_ = 0;
  FrameReader reader_;
  /// Out-of-order pickup buffer for Await.
  std::unordered_map<uint64_t, Frame> completed_;
};

}  // namespace net
}  // namespace dbps

#endif  // DBPS_NET_CLIENT_H_
