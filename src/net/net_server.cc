#include "net/net_server.h"

#include <arpa/inet.h>
#include <fcntl.h>
#include <netinet/in.h>
#include <netinet/tcp.h>
#include <sys/epoll.h>
#include <sys/eventfd.h>
#include <sys/socket.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

#include "lang/journal.h"
#include "server/journal_feed.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "wm/wme.h"

namespace dbps {
namespace net {

namespace {

// epoll_event.data.u64 sentinels for the two non-connection fds.
constexpr uint64_t kListenTag = ~uint64_t{0};
constexpr uint64_t kWakeTag = ~uint64_t{0} - 1;

Status Errno(const std::string& what) {
  return Status::Unavailable(what + ": " + std::strerror(errno));
}

Status SetNonBlocking(int fd) {
  const int flags = ::fcntl(fd, F_GETFL, 0);
  if (flags < 0 || ::fcntl(fd, F_SETFL, flags | O_NONBLOCK) < 0) {
    return Errno("fcntl(O_NONBLOCK)");
  }
  return Status::OK();
}

void MaxPeak(std::atomic<size_t>& peak, size_t value) {
  size_t seen = peak.load(std::memory_order_relaxed);
  while (value > seen &&
         !peak.compare_exchange_weak(seen, value, std::memory_order_relaxed)) {
  }
}

}  // namespace

NetServer::NetServer(SessionManager* manager, NetServerOptions options)
    : manager_(manager), options_(std::move(options)) {
  DBPS_CHECK(manager_ != nullptr);
  if (options_.num_loops == 0) options_.num_loops = 1;
  if (options_.num_dispatchers == 0) options_.num_dispatchers = 1;
}

NetServer::~NetServer() { Stop(); }

Status NetServer::Start() {
  if (running_.load()) return Status::InvalidArgument("already started");

  listen_fd_ = ::socket(AF_INET, SOCK_STREAM | SOCK_CLOEXEC, 0);
  if (listen_fd_ < 0) return Errno("socket");
  const int one = 1;
  ::setsockopt(listen_fd_, SOL_SOCKET, SO_REUSEADDR, &one, sizeof(one));

  sockaddr_in addr{};
  addr.sin_family = AF_INET;
  addr.sin_port = htons(options_.port);
  if (::inet_pton(AF_INET, options_.bind_address.c_str(), &addr.sin_addr) !=
      1) {
    return Status::InvalidArgument("bad bind address '" +
                                   options_.bind_address + "'");
  }
  if (::bind(listen_fd_, reinterpret_cast<sockaddr*>(&addr), sizeof(addr)) <
      0) {
    return Errno("bind");
  }
  if (::listen(listen_fd_, options_.listen_backlog) < 0) {
    return Errno("listen");
  }
  DBPS_RETURN_NOT_OK(SetNonBlocking(listen_fd_));
  socklen_t len = sizeof(addr);
  if (::getsockname(listen_fd_, reinterpret_cast<sockaddr*>(&addr), &len) <
      0) {
    return Errno("getsockname");
  }
  port_ = ntohs(addr.sin_port);

  loops_.clear();
  for (size_t i = 0; i < options_.num_loops; ++i) {
    auto loop = std::make_unique<Loop>();
    loop->epoll_fd = ::epoll_create1(EPOLL_CLOEXEC);
    if (loop->epoll_fd < 0) return Errno("epoll_create1");
    loop->wake_fd = ::eventfd(0, EFD_CLOEXEC | EFD_NONBLOCK);
    if (loop->wake_fd < 0) return Errno("eventfd");
    epoll_event ev{};
    ev.events = EPOLLIN;
    ev.data.u64 = kWakeTag;
    ::epoll_ctl(loop->epoll_fd, EPOLL_CTL_ADD, loop->wake_fd, &ev);
    loops_.push_back(std::move(loop));
  }
  {
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLET;
    ev.data.u64 = kListenTag;
    if (::epoll_ctl(loops_[0]->epoll_fd, EPOLL_CTL_ADD, listen_fd_, &ev) <
        0) {
      return Errno("epoll_ctl(listen)");
    }
  }

  stopping_.store(false);
  running_.store(true);
  for (size_t i = 0; i < loops_.size(); ++i) {
    loops_[i]->thread = std::thread([this, i] { LoopMain(i); });
  }
  dispatchers_.clear();
  for (size_t i = 0; i < options_.num_dispatchers; ++i) {
    dispatchers_.emplace_back([this] { DispatcherMain(); });
  }
  return Status::OK();
}

void NetServer::Stop() {
  if (!running_.exchange(false)) return;
  stopping_.store(true);
  for (auto& loop : loops_) {
    const uint64_t one = 1;
    [[maybe_unused]] ssize_t n = ::write(loop->wake_fd, &one, sizeof(one));
  }
  for (auto& loop : loops_) {
    if (loop->thread.joinable()) loop->thread.join();
  }
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    dispatch_queue_.clear();
  }
  dispatch_cv_.notify_all();
  for (auto& t : dispatchers_) {
    if (t.joinable()) t.join();
  }
  dispatchers_.clear();

  // No threads left: tear down every remaining connection directly.
  std::unordered_map<uint64_t, ConnPtr> leftover;
  {
    std::lock_guard<std::mutex> lock(conns_mu_);
    leftover.swap(conns_);
  }
  for (auto& [id, conn] : leftover) {
    (void)id;
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->fd >= 0) {
      ::close(conn->fd);
      conn->fd = -1;
      connections_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    if (conn->session) {
      conn->session->Close();
      conn->session.reset();
    }
  }
  if (listen_fd_ >= 0) {
    ::close(listen_fd_);
    listen_fd_ = -1;
  }
  for (auto& loop : loops_) {
    if (loop->epoll_fd >= 0) ::close(loop->epoll_fd);
    if (loop->wake_fd >= 0) ::close(loop->wake_fd);
  }
  loops_.clear();
}

size_t NetServer::open_connections() const {
  std::lock_guard<std::mutex> lock(conns_mu_);
  return conns_.size();
}

NetStats NetServer::GetStats() const {
  NetStats out;
  out.connections_accepted =
      connections_accepted_.load(std::memory_order_relaxed);
  out.connections_closed = connections_closed_.load(std::memory_order_relaxed);
  out.frames_in = frames_in_.load(std::memory_order_relaxed);
  out.frames_out = frames_out_.load(std::memory_order_relaxed);
  out.bytes_in = bytes_in_.load(std::memory_order_relaxed);
  out.bytes_out = bytes_out_.load(std::memory_order_relaxed);
  out.busy_frames = busy_frames_.load(std::memory_order_relaxed);
  out.error_frames = error_frames_.load(std::memory_order_relaxed);
  out.protocol_errors = protocol_errors_.load(std::memory_order_relaxed);
  out.partial_writes = partial_writes_.load(std::memory_order_relaxed);
  out.dispatch_runs = dispatch_runs_.load(std::memory_order_relaxed);
  out.injected_accept_drops =
      injected_accept_drops_.load(std::memory_order_relaxed);
  out.injected_read_errors =
      injected_read_errors_.load(std::memory_order_relaxed);
  out.injected_conn_drops =
      injected_conn_drops_.load(std::memory_order_relaxed);
  out.peak_connections = peak_connections_.load(std::memory_order_relaxed);
  out.pipeline_peak = pipeline_peak_.load(std::memory_order_relaxed);
  out.open_connections = open_connections();
  if (JournalFeed* feed = manager_->options().durable_feed) {
    out.journal_deadline_flushes = feed->durability().deadline_flushes;
  }
  for (const auto& loop : loops_) {
    NetLoopStats ls;
    ls.wakeups = loop->wakeups.load(std::memory_order_relaxed);
    ls.accepts = loop->accepts.load(std::memory_order_relaxed);
    ls.reads = loop->reads.load(std::memory_order_relaxed);
    ls.flushes = loop->flushes.load(std::memory_order_relaxed);
    out.loops.push_back(ls);
  }
  return out;
}

// --- event loops --------------------------------------------------------

void NetServer::LoopMain(size_t index) {
  Loop& loop = *loops_[index];
  constexpr int kMaxEvents = 128;
  epoll_event events[kMaxEvents];
  while (!stopping_.load(std::memory_order_acquire)) {
    const int n = ::epoll_wait(loop.epoll_fd, events, kMaxEvents, 200);
    if (n <= 0) continue;
    loop.wakeups.fetch_add(1, std::memory_order_relaxed);
    for (int i = 0; i < n; ++i) {
      const uint64_t tag = events[i].data.u64;
      if (tag == kWakeTag) {
        uint64_t junk;
        while (::read(loop.wake_fd, &junk, sizeof(junk)) > 0) {
        }
        continue;
      }
      if (tag == kListenTag) {
        AcceptReady(loop);
        continue;
      }
      ConnPtr conn;
      {
        std::lock_guard<std::mutex> lock(conns_mu_);
        auto it = conns_.find(tag);
        if (it == conns_.end()) continue;  // already finalized
        conn = it->second;
      }
      const uint32_t ev = events[i].events;
      if (ev & (EPOLLERR | EPOLLHUP)) {
        BeginClose(conn);
        continue;
      }
      if (ev & EPOLLOUT) {
        bool io_error = false, do_goodbye = false;
        {
          std::lock_guard<std::mutex> lock(conn->mu);
          if (!conn->closing && conn->fd >= 0) {
            const bool drained = FlushLocked(conn);
            io_error = conn->closing;  // FlushLocked flags fatal errors
            do_goodbye = drained && conn->goodbye;
            if (drained) {
              loop.flushes.fetch_add(1, std::memory_order_relaxed);
            }
          }
        }
        if (io_error || do_goodbye) BeginClose(conn);
      }
      if (ev & (EPOLLIN | EPOLLRDHUP)) ReadReady(conn);
    }
  }
}

void NetServer::AcceptReady(Loop& loop) {
  for (;;) {
    const int fd =
        ::accept4(listen_fd_, nullptr, nullptr, SOCK_NONBLOCK | SOCK_CLOEXEC);
    if (fd < 0) return;  // EAGAIN or transient error: wait for next edge
    // Chaos site: the server "loses" the connection right after accept —
    // clients must treat a vanished server connection as retryable.
    if (DBPS_FAILPOINT("net.accept.drop")) {
      injected_accept_drops_.fetch_add(1, std::memory_order_relaxed);
      ::close(fd);
      continue;
    }
    const int one = 1;
    ::setsockopt(fd, IPPROTO_TCP, TCP_NODELAY, &one, sizeof(one));
    loop.accepts.fetch_add(1, std::memory_order_relaxed);
    connections_accepted_.fetch_add(1, std::memory_order_relaxed);

    auto conn = std::make_shared<Connection>();
    conn->id = next_conn_id_.fetch_add(1, std::memory_order_relaxed);
    conn->fd = fd;
    conn->loop =
        next_loop_.fetch_add(1, std::memory_order_relaxed) % loops_.size();
    size_t open;
    {
      std::lock_guard<std::mutex> lock(conns_mu_);
      conns_.emplace(conn->id, conn);
      open = conns_.size();
    }
    MaxPeak(peak_connections_, open);
    epoll_event ev{};
    ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET;
    ev.data.u64 = conn->id;
    if (::epoll_ctl(loops_[conn->loop]->epoll_fd, EPOLL_CTL_ADD, fd, &ev) <
        0) {
      BeginClose(conn);
    }
  }
}

void NetServer::ReadReady(const ConnPtr& conn) {
  // Chaos site: a readable event turns into a connection error (torn
  // cable, reset) — everything pipelined on the connection dies with it.
  if (DBPS_FAILPOINT("net.read.error")) {
    injected_read_errors_.fetch_add(1, std::memory_order_relaxed);
    BeginClose(conn);
    return;
  }
  char buf[65536];
  bool eof = false;
  for (;;) {
    const ssize_t n = ::read(conn->fd, buf, sizeof(buf));
    if (n > 0) {
      loops_[conn->loop]->reads.fetch_add(1, std::memory_order_relaxed);
      bytes_in_.fetch_add(static_cast<uint64_t>(n),
                          std::memory_order_relaxed);
      conn->reader.Feed(std::string_view(buf, static_cast<size_t>(n)));
      continue;
    }
    if (n == 0) {
      eof = true;
      break;
    }
    if (errno == EAGAIN || errno == EWOULDBLOCK) break;
    if (errno == EINTR) continue;
    eof = true;  // hard error
    break;
  }
  DrainParsed(conn);
  if (eof) BeginClose(conn);
}

void NetServer::DrainParsed(const ConnPtr& conn) {
  Frame frame;
  size_t parsed = 0;
  for (;;) {
    auto got_or = conn->reader.Next(&frame);
    if (!got_or.ok()) {
      // Framing violation: the byte stream is unrecoverable.
      protocol_errors_.fetch_add(1, std::memory_order_relaxed);
      BeginClose(conn);
      return;
    }
    if (!got_or.ValueOrDie()) break;
    ++parsed;
    frames_in_.fetch_add(1, std::memory_order_relaxed);
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closing) return;
    conn->pending.push_back(std::move(frame));
    MaxPeak(pipeline_peak_, conn->pending.size());
  }
  if (parsed > 0) {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (!conn->closing && !conn->scheduled && !conn->pending.empty()) {
      ScheduleDispatch(conn);
    }
  }
}

void NetServer::ScheduleDispatch(const ConnPtr& conn) {
  conn->scheduled = true;
  {
    std::lock_guard<std::mutex> lock(dispatch_mu_);
    dispatch_queue_.push_back(conn);
  }
  dispatch_cv_.notify_one();
}

// --- dispatchers --------------------------------------------------------

void NetServer::DispatcherMain() {
  for (;;) {
    ConnPtr conn;
    {
      std::unique_lock<std::mutex> lock(dispatch_mu_);
      dispatch_cv_.wait(lock, [this] {
        return stopping_.load(std::memory_order_acquire) ||
               !dispatch_queue_.empty();
      });
      if (stopping_.load(std::memory_order_acquire) &&
          dispatch_queue_.empty()) {
        return;
      }
      conn = std::move(dispatch_queue_.front());
      dispatch_queue_.pop_front();
    }
    dispatch_runs_.fetch_add(1, std::memory_order_relaxed);
    ProcessConnection(conn);
  }
}

void NetServer::ProcessConnection(const ConnPtr& conn) {
  for (;;) {
    std::deque<Frame> batch;
    {
      std::lock_guard<std::mutex> lock(conn->mu);
      if (conn->pending.empty() || conn->closing) {
        conn->scheduled = false;
        if (conn->closing) break;  // we were the last owner: finalize
        return;
      }
      batch.swap(conn->pending);
    }
    for (Frame& frame : batch) {
      {
        std::lock_guard<std::mutex> lock(conn->mu);
        if (conn->closing) break;
      }
      std::string response = HandleFrame(conn, frame);
      if (response.empty()) {
        // Injected mid-commit connection drop: no response, no further
        // processing — the client sees the connection die with the
        // transaction outcome unknown (the classic ambiguous commit).
        std::lock_guard<std::mutex> lock(conn->mu);
        conn->closing = true;
        conn->close_begun = true;  // this pass finalizes below
        break;
      }
      SendBytes(conn, response);
    }
  }
  // Fell out because closing: release ownership and finalize.
  Finalize(conn);
}

std::string NetServer::HandleFrame(const ConnPtr& conn, const Frame& frame) {
  const uint64_t id = frame.request_id;
  auto error = [&](const Status& status) {
    error_frames_.fetch_add(1, std::memory_order_relaxed);
    return EncodeError(id, status);
  };
  auto busy = [&](const Status& status) {
    busy_frames_.fetch_add(1, std::memory_order_relaxed);
    return EncodeBusy(
        id, static_cast<uint32_t>(options_.busy_retry_hint.count()),
        status.message());
  };

  switch (frame.type) {
    case FrameType::kPing:
      return EncodeFrame(FrameType::kPong, id);

    case FrameType::kGoodbye: {
      std::lock_guard<std::mutex> lock(conn->mu);
      conn->goodbye = true;
      return EncodeFrame(FrameType::kOk, id);
    }

    case FrameType::kCheckpoint: {
      // Admin verb, no session needed: schedule a snapshot checkpoint at
      // the next commit-batch boundary of the durable journal.
      JournalFeed* feed = manager_->options().durable_feed;
      if (feed == nullptr) {
        return error(Status::Unavailable(
            "server has no durable journal; checkpointing is unavailable"));
      }
      Status status = feed->RequestCheckpoint();
      if (!status.ok()) return error(status);
      return EncodeFrame(FrameType::kOk, id);
    }

    case FrameType::kHello: {
      if (conn->session) {
        return error(Status::InvalidArgument("session already open"));
      }
      BodyReader reader(frame.body);
      auto name_or = reader.String();
      if (!name_or.ok()) return error(name_or.status());
      SessionOptions session_options = options_.session;
      session_options.txn_admission_timeout = options_.txn_gate_timeout;
      auto session_or = manager_->Connect(
          std::move(name_or).ValueOrDie(), session_options);
      if (!session_or.ok()) {
        // Session-table admission rejection IS the backpressure frame —
        // the client backs off instead of the server growing a queue.
        if (session_or.status().IsResourceExhausted()) {
          return busy(session_or.status());
        }
        return error(session_or.status());
      }
      conn->session = std::move(session_or).ValueOrDie();
      conn->peer = conn->session->name();
      return EncodeHelloOk(id, conn->session->id());
    }

    default:
      break;
  }

  if (!conn->session) {
    return error(Status::InvalidArgument(
        std::string("'") + FrameTypeToString(frame.type) +
        "' before Hello"));
  }
  Session& session = *conn->session;

  switch (frame.type) {
    case FrameType::kBegin: {
      Status st = session.Begin();
      if (st.ok()) return EncodeFrame(FrameType::kOk, id);
      // Admission-gate pressure (too many open transactions) surfaces as
      // a Busy frame after the short bounded gate wait.
      if (st.IsResourceExhausted()) return busy(st);
      return error(st);
    }

    case FrameType::kRead: {
      BodyReader reader(frame.body);
      auto rel_or = reader.String();
      if (!rel_or.ok()) return error(rel_or.status());
      auto rows_or = session.Read(rel_or.ValueOrDie());
      if (!rows_or.ok()) return error(rows_or.status());
      std::string text;
      for (const WmePtr& wme : rows_or.ValueOrDie()) {
        text += wme->ToString();
        text += '\n';
      }
      return EncodeRows(id,
                        static_cast<uint32_t>(rows_or.ValueOrDie().size()),
                        text);
    }

    case FrameType::kQuery: {
      BodyReader reader(frame.body);
      auto lhs_or = reader.String();
      if (!lhs_or.ok()) return error(lhs_or.status());
      auto rows_or = session.Query(lhs_or.ValueOrDie());
      if (!rows_or.ok()) return error(rows_or.status());
      std::string text;
      for (const QueryRow& row : rows_or.ValueOrDie()) {
        for (size_t i = 0; i < row.size(); ++i) {
          if (i > 0) text += '\t';
          text += row[i]->ToString();
        }
        text += '\n';
      }
      return EncodeRows(id,
                        static_cast<uint32_t>(rows_or.ValueOrDie().size()),
                        text);
    }

    case FrameType::kWrite: {
      BodyReader reader(frame.body);
      auto line_or = reader.String();
      if (!line_or.ok()) return error(line_or.status());
      auto delta_or = DeltaFromJournalLine(line_or.ValueOrDie());
      if (!delta_or.ok()) return error(delta_or.status());
      Status st = session.Write(delta_or.ValueOrDie());
      if (!st.ok()) return error(st);
      return EncodeFrame(FrameType::kOk, id);
    }

    case FrameType::kCommit: {
      auto seq_or = session.Commit();
      // Chaos site: the connection dies INSTEAD of delivering the commit
      // verdict (which may be a success the client will never see).
      if (DBPS_FAILPOINT("net.conn.drop")) {
        injected_conn_drops_.fetch_add(1, std::memory_order_relaxed);
        return std::string();
      }
      if (!seq_or.ok()) {
        if (seq_or.status().IsResourceExhausted()) {
          return busy(seq_or.status());
        }
        return error(seq_or.status());
      }
      return EncodeCommitOk(id, seq_or.ValueOrDie());
    }

    case FrameType::kAbortTxn:
      session.Abort();
      return EncodeFrame(FrameType::kOk, id);

    default:
      return error(Status::InvalidArgument(
          std::string("unexpected frame '") +
          FrameTypeToString(frame.type) + "'"));
  }
}

// --- writes -------------------------------------------------------------

void NetServer::SendBytes(const ConnPtr& conn, std::string_view bytes) {
  frames_out_.fetch_add(1, std::memory_order_relaxed);
  bool io_error = false, do_goodbye = false;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->closing || conn->fd < 0) return;
    conn->outbuf.append(bytes);
    const bool drained = FlushLocked(conn);
    io_error = conn->closing;
    do_goodbye = drained && conn->goodbye;
  }
  if (io_error || do_goodbye) BeginClose(conn);
}

bool NetServer::FlushLocked(const ConnPtr& conn) {
  while (conn->out_off < conn->outbuf.size()) {
    size_t want = conn->outbuf.size() - conn->out_off;
    bool injected_partial = false;
    // Chaos site: the kernel "accepts" one byte — exercises the parked-
    // buffer + EPOLLOUT resumption path that real short writes take.
    if (DBPS_FAILPOINT("net.write.partial")) {
      want = 1;
      injected_partial = true;
    }
    const ssize_t n = ::send(conn->fd, conn->outbuf.data() + conn->out_off,
                             want, MSG_NOSIGNAL);
    if (n < 0) {
      if (errno == EINTR) continue;
      if (errno == EAGAIN || errno == EWOULDBLOCK) {
        partial_writes_.fetch_add(1, std::memory_order_relaxed);
        UpdateEpollInterest(conn, /*want_write=*/true);
        return false;
      }
      conn->closing = true;  // fatal socket error; caller closes
      return false;
    }
    bytes_out_.fetch_add(static_cast<uint64_t>(n),
                         std::memory_order_relaxed);
    conn->out_off += static_cast<size_t>(n);
    if (injected_partial && conn->out_off < conn->outbuf.size()) {
      partial_writes_.fetch_add(1, std::memory_order_relaxed);
      UpdateEpollInterest(conn, /*want_write=*/true);
      return false;
    }
  }
  conn->outbuf.clear();
  conn->out_off = 0;
  if (conn->want_write) UpdateEpollInterest(conn, /*want_write=*/false);
  return true;
}

void NetServer::UpdateEpollInterest(const ConnPtr& conn, bool want_write) {
  if (conn->want_write == want_write || conn->fd < 0) {
    conn->want_write = want_write;
    return;
  }
  conn->want_write = want_write;
  epoll_event ev{};
  ev.events = EPOLLIN | EPOLLRDHUP | EPOLLET |
              (want_write ? EPOLLOUT : 0u);
  ev.data.u64 = conn->id;
  ::epoll_ctl(loops_[conn->loop]->epoll_fd, EPOLL_CTL_MOD, conn->fd, &ev);
}

// --- teardown -----------------------------------------------------------

void NetServer::BeginClose(const ConnPtr& conn) {
  bool finalize_now;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->close_begun) return;  // someone is already driving the close
    conn->close_begun = true;
    conn->closing = true;
    // If a dispatcher owns the connection it finalizes at pass end;
    // otherwise it is on us.
    finalize_now = !conn->scheduled;
  }
  if (finalize_now) Finalize(conn);
}

void NetServer::Finalize(const ConnPtr& conn) {
  SessionPtr session;
  {
    std::lock_guard<std::mutex> lock(conn->mu);
    if (conn->fd >= 0) {
      ::epoll_ctl(loops_[conn->loop]->epoll_fd, EPOLL_CTL_DEL, conn->fd,
                  nullptr);
      ::close(conn->fd);
      conn->fd = -1;
      connections_closed_.fetch_add(1, std::memory_order_relaxed);
    }
    session = std::move(conn->session);
    conn->session.reset();
  }
  // Close the session outside conn->mu: it aborts any open transaction
  // (lock-manager traffic) and detaches from the manager.
  if (session) session->Close();
  std::lock_guard<std::mutex> lock(conns_mu_);
  conns_.erase(conn->id);
}

}  // namespace net
}  // namespace dbps
