// NetServer: the async socket front-end of the database server.
//
// An epoll-based, edge-triggered, non-blocking TCP server that speaks the
// binary wire protocol (net/wire.h) and maps frames onto the in-process
// Session/SessionManager API — the scale-out step the ROADMAP names:
// multiplex tens of thousands of connections onto a small worker pool.
//
// Architecture (three thread roles, N + D + 0 extra):
//
//   * N event-loop threads, each owning one epoll instance. Loop 0 also
//     owns the listen socket; accepted connections are spread round-robin
//     across loops. Edge-triggered: every readable event drains the
//     socket to EAGAIN, parses complete frames off the connection's
//     FrameReader, and appends them to the connection's pending queue.
//   * D dispatcher threads pull connections (not frames) off one shared
//     ready queue and execute that connection's pending frames IN ORDER
//     against its Session. A connection is on the queue at most once and
//     processed by at most one dispatcher at a time — the Session's
//     single-threaded contract — while different connections' frames run
//     concurrently on the pool. Blocking inside a frame (lock waits, the
//     commit sequencer, the group-commit fsync) blocks one dispatcher,
//     never an event loop, so sockets keep draining while commits wait.
//   * Responses are written by the dispatcher that produced them; short
//     writes park the remainder on the connection's out-buffer and arm
//     EPOLLOUT so the owning loop finishes the flush.
//
// Backpressure is explicit, never silent queue growth: a full session
// table rejects Hello with Busy, a full transaction admission gate turns
// Begin into Busy after a very short bounded wait (the gate timeout is a
// server option, default single-digit ms), and clients are expected to
// back off per the frame's retry hint.
//
// Failpoint sites (chaos profile, util/failpoint.h):
//   net.accept.drop   accepted connection closed immediately
//   net.read.error    a readable event treated as a connection error
//   net.write.partial a flush writes one byte then pretends EAGAIN
//   net.conn.drop     connection dropped instead of sending a Commit
//                     response — the client never learns the outcome
//
// Shutdown order: Stop() the server (connections die, sessions close),
// then Close() the SessionManager, then join the engine thread.

#ifndef DBPS_NET_NET_SERVER_H_
#define DBPS_NET_NET_SERVER_H_

#include <atomic>
#include <condition_variable>
#include <cstdint>
#include <deque>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "net/wire.h"
#include "server/session_manager.h"
#include "util/status.h"

namespace dbps {
namespace net {

struct NetServerOptions {
  /// Loopback by default: this is a front-end for benches/tests, not an
  /// exposed service.
  std::string bind_address = "127.0.0.1";
  /// 0 picks an ephemeral port; read it back with port() after Start().
  uint16_t port = 0;
  size_t num_loops = 2;        ///< epoll event-loop threads
  size_t num_dispatchers = 4;  ///< session-executing worker threads
  int listen_backlog = 512;
  /// Sessions opened by this server wait at most this long on the
  /// transaction admission gate before Begin is answered with Busy —
  /// backpressure as a frame, not as a parked connection.
  std::chrono::milliseconds txn_gate_timeout{2};
  /// Retry hint carried in Busy frames.
  std::chrono::milliseconds busy_retry_hint{5};
  /// Base session options for connections admitted by this server
  /// (txn_gate_timeout overrides the admission timeout within).
  SessionOptions session;
};

/// \brief Per-event-loop counters (relaxed atomics; read racily).
struct NetLoopStats {
  uint64_t wakeups = 0;   ///< epoll_wait returns with >= 1 event
  uint64_t accepts = 0;   ///< connections this loop accepted (loop 0)
  uint64_t reads = 0;     ///< read() calls that returned data
  uint64_t flushes = 0;   ///< EPOLLOUT-driven flush completions
};

/// \brief Aggregate front-end counters.
struct NetStats {
  uint64_t connections_accepted = 0;
  uint64_t connections_closed = 0;
  uint64_t frames_in = 0;
  uint64_t frames_out = 0;
  uint64_t bytes_in = 0;
  uint64_t bytes_out = 0;
  /// Busy frames sent — the backpressure the AdmissionGate produced.
  uint64_t busy_frames = 0;
  uint64_t error_frames = 0;
  uint64_t protocol_errors = 0;  ///< connections killed by framing errors
  uint64_t partial_writes = 0;   ///< flushes that left bytes parked
  uint64_t dispatch_runs = 0;    ///< dispatcher passes over a connection
  // Injected faults (zero unless chaos is armed):
  uint64_t injected_accept_drops = 0;
  uint64_t injected_read_errors = 0;
  uint64_t injected_conn_drops = 0;
  size_t open_connections = 0;
  size_t peak_connections = 0;
  /// Journal groups fsynced by the adaptive flush deadline instead of a
  /// batch boundary (JournalFeed flush_deadline; 0 when no durable feed
  /// is bound or the deadline is disabled).
  uint64_t journal_deadline_flushes = 0;
  /// Most request frames ever waiting on one connection — achieved
  /// pipelining depth.
  size_t pipeline_peak = 0;
  std::vector<NetLoopStats> loops;
};

class NetServer {
 public:
  NetServer(SessionManager* manager, NetServerOptions options = {});
  ~NetServer();

  NetServer(const NetServer&) = delete;
  NetServer& operator=(const NetServer&) = delete;

  /// Binds, listens, and spawns the loop + dispatcher threads.
  Status Start();

  /// Closes the listen socket and every connection, then joins all
  /// threads. Idempotent.
  void Stop();

  /// The bound port (valid after Start()).
  uint16_t port() const { return port_; }

  size_t open_connections() const;
  NetStats GetStats() const;

 private:
  struct Connection {
    uint64_t id = 0;
    int fd = -1;
    size_t loop = 0;
    FrameReader reader;  ///< owned by the event loop thread
    /// The session, owned by whichever dispatcher is processing the
    /// connection (serialized by `scheduled`).
    SessionPtr session;
    std::string peer;  ///< client name from Hello (log/debug)

    std::mutex mu;  ///< guards everything below
    std::deque<Frame> pending;
    bool scheduled = false;  ///< queued for / owned by a dispatcher
    bool closing = false;    ///< no more reads; finalize when unscheduled
    /// Latch: some thread has taken responsibility for finalization
    /// (directly or via the owning dispatcher). `closing` alone is not
    /// enough — FlushLocked sets it on fatal send errors before
    /// BeginClose runs, and the close must still be driven to Finalize.
    bool close_begun = false;
    bool goodbye = false;    ///< close gracefully after flushing
    std::string outbuf;
    size_t out_off = 0;
    bool want_write = false;  ///< EPOLLOUT armed
  };
  using ConnPtr = std::shared_ptr<Connection>;

  struct Loop {
    int epoll_fd = -1;
    int wake_fd = -1;  ///< eventfd: Stop() and cross-thread nudges
    std::thread thread;
    // Owner-written relaxed atomics (GetStats reads them live).
    std::atomic<uint64_t> wakeups{0};
    std::atomic<uint64_t> accepts{0};
    std::atomic<uint64_t> reads{0};
    std::atomic<uint64_t> flushes{0};
  };

  void LoopMain(size_t index);
  void DispatcherMain();

  void AcceptReady(Loop& loop);
  void ReadReady(const ConnPtr& conn);
  /// Parses every complete frame buffered on `conn` and schedules it.
  void DrainParsed(const ConnPtr& conn);
  /// Runs one dispatcher pass over `conn`'s pending frames.
  void ProcessConnection(const ConnPtr& conn);
  /// Handles one request frame; returns the encoded response ("" when the
  /// connection should drop without answering — injected net.conn.drop).
  std::string HandleFrame(const ConnPtr& conn, const Frame& frame);

  /// Appends `bytes` to the out-buffer and flushes as much as the socket
  /// accepts; arms EPOLLOUT for the rest. Called by dispatchers.
  void SendBytes(const ConnPtr& conn, std::string_view bytes);
  /// Flushes the out-buffer (conn->mu held by caller). True if drained.
  bool FlushLocked(const ConnPtr& conn);
  void UpdateEpollInterest(const ConnPtr& conn, bool want_write);

  /// Marks the connection dead and unregisters it; the session closes
  /// when no dispatcher owns it (immediately, or at pass end).
  void BeginClose(const ConnPtr& conn);
  /// Releases fd + session + table entry. Called once, by whichever side
  /// (loop or dispatcher) turned off `scheduled` last.
  void Finalize(const ConnPtr& conn);

  void ScheduleDispatch(const ConnPtr& conn);  ///< conn->mu held by caller

  SessionManager* manager_;
  NetServerOptions options_;

  int listen_fd_ = -1;
  uint16_t port_ = 0;
  std::atomic<bool> running_{false};
  std::atomic<bool> stopping_{false};

  std::vector<std::unique_ptr<Loop>> loops_;
  std::atomic<uint64_t> next_conn_id_{1};
  std::atomic<size_t> next_loop_{0};  ///< round-robin accept assignment

  mutable std::mutex conns_mu_;
  std::unordered_map<uint64_t, ConnPtr> conns_;

  std::mutex dispatch_mu_;
  std::condition_variable dispatch_cv_;
  std::deque<ConnPtr> dispatch_queue_;
  std::vector<std::thread> dispatchers_;

  // Aggregate counters (relaxed; exact enough for stats).
  std::atomic<uint64_t> connections_accepted_{0};
  std::atomic<uint64_t> connections_closed_{0};
  std::atomic<uint64_t> frames_in_{0};
  std::atomic<uint64_t> frames_out_{0};
  std::atomic<uint64_t> bytes_in_{0};
  std::atomic<uint64_t> bytes_out_{0};
  std::atomic<uint64_t> busy_frames_{0};
  std::atomic<uint64_t> error_frames_{0};
  std::atomic<uint64_t> protocol_errors_{0};
  std::atomic<uint64_t> partial_writes_{0};
  std::atomic<uint64_t> dispatch_runs_{0};
  std::atomic<uint64_t> injected_accept_drops_{0};
  std::atomic<uint64_t> injected_read_errors_{0};
  std::atomic<uint64_t> injected_conn_drops_{0};
  std::atomic<size_t> peak_connections_{0};
  std::atomic<size_t> pipeline_peak_{0};
};

}  // namespace net
}  // namespace dbps

#endif  // DBPS_NET_NET_SERVER_H_
