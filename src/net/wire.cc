#include "net/wire.h"

#include <cstring>

namespace dbps {
namespace net {

const char* FrameTypeToString(FrameType type) {
  switch (type) {
    case FrameType::kHello: return "Hello";
    case FrameType::kBegin: return "Begin";
    case FrameType::kRead: return "Read";
    case FrameType::kQuery: return "Query";
    case FrameType::kWrite: return "Write";
    case FrameType::kCommit: return "Commit";
    case FrameType::kAbortTxn: return "AbortTxn";
    case FrameType::kPing: return "Ping";
    case FrameType::kGoodbye: return "Goodbye";
    case FrameType::kCheckpoint: return "Checkpoint";
    case FrameType::kHelloOk: return "HelloOk";
    case FrameType::kOk: return "Ok";
    case FrameType::kCommitOk: return "CommitOk";
    case FrameType::kRows: return "Rows";
    case FrameType::kPong: return "Pong";
    case FrameType::kError: return "Error";
    case FrameType::kBusy: return "Busy";
  }
  return "?";
}

namespace {

bool KnownFrameType(uint8_t value) {
  switch (static_cast<FrameType>(value)) {
    case FrameType::kHello:
    case FrameType::kBegin:
    case FrameType::kRead:
    case FrameType::kQuery:
    case FrameType::kWrite:
    case FrameType::kCommit:
    case FrameType::kAbortTxn:
    case FrameType::kPing:
    case FrameType::kGoodbye:
    case FrameType::kCheckpoint:
    case FrameType::kHelloOk:
    case FrameType::kOk:
    case FrameType::kCommitOk:
    case FrameType::kRows:
    case FrameType::kPong:
    case FrameType::kError:
    case FrameType::kBusy:
      return true;
  }
  return false;
}

uint32_t LoadU32(const char* p) {
  return static_cast<uint32_t>(static_cast<uint8_t>(p[0])) |
         static_cast<uint32_t>(static_cast<uint8_t>(p[1])) << 8 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[2])) << 16 |
         static_cast<uint32_t>(static_cast<uint8_t>(p[3])) << 24;
}

uint64_t LoadU64(const char* p) {
  return static_cast<uint64_t>(LoadU32(p)) |
         static_cast<uint64_t>(LoadU32(p + 4)) << 32;
}

}  // namespace

void PutU8(std::string* out, uint8_t v) {
  out->push_back(static_cast<char>(v));
}

void PutU32(std::string* out, uint32_t v) {
  for (int i = 0; i < 4; ++i) {
    out->push_back(static_cast<char>((v >> (8 * i)) & 0xff));
  }
}

void PutU64(std::string* out, uint64_t v) {
  PutU32(out, static_cast<uint32_t>(v));
  PutU32(out, static_cast<uint32_t>(v >> 32));
}

void PutString(std::string* out, std::string_view s) {
  PutU32(out, static_cast<uint32_t>(s.size()));
  out->append(s);
}

StatusOr<uint8_t> BodyReader::U8() {
  if (pos_ + 1 > body_.size()) {
    return Status::InvalidArgument("frame body truncated (u8)");
  }
  return static_cast<uint8_t>(body_[pos_++]);
}

StatusOr<uint32_t> BodyReader::U32() {
  if (pos_ + 4 > body_.size()) {
    return Status::InvalidArgument("frame body truncated (u32)");
  }
  const uint32_t v = LoadU32(body_.data() + pos_);
  pos_ += 4;
  return v;
}

StatusOr<uint64_t> BodyReader::U64() {
  if (pos_ + 8 > body_.size()) {
    return Status::InvalidArgument("frame body truncated (u64)");
  }
  const uint64_t v = LoadU64(body_.data() + pos_);
  pos_ += 8;
  return v;
}

StatusOr<std::string> BodyReader::String() {
  DBPS_ASSIGN_OR_RETURN(uint32_t len, U32());
  if (pos_ + len > body_.size()) {
    return Status::InvalidArgument("frame body truncated (string)");
  }
  std::string out(body_.substr(pos_, len));
  pos_ += len;
  return out;
}

std::string EncodeFrame(FrameType type, uint64_t request_id,
                        std::string_view body) {
  std::string out;
  out.reserve(4 + 1 + 8 + body.size());
  PutU32(&out, static_cast<uint32_t>(1 + 8 + body.size()));
  PutU8(&out, static_cast<uint8_t>(type));
  PutU64(&out, request_id);
  out.append(body);
  return out;
}

std::string EncodeHello(uint64_t request_id, std::string_view name) {
  std::string body;
  PutString(&body, name);
  return EncodeFrame(FrameType::kHello, request_id, body);
}

std::string EncodeRead(uint64_t request_id, std::string_view relation) {
  std::string body;
  PutString(&body, relation);
  return EncodeFrame(FrameType::kRead, request_id, body);
}

std::string EncodeQuery(uint64_t request_id, std::string_view lhs) {
  std::string body;
  PutString(&body, lhs);
  return EncodeFrame(FrameType::kQuery, request_id, body);
}

std::string EncodeWrite(uint64_t request_id, std::string_view journal_line) {
  std::string body;
  PutString(&body, journal_line);
  return EncodeFrame(FrameType::kWrite, request_id, body);
}

std::string EncodeHelloOk(uint64_t request_id, uint64_t session_id) {
  std::string body;
  PutU64(&body, session_id);
  return EncodeFrame(FrameType::kHelloOk, request_id, body);
}

std::string EncodeCommitOk(uint64_t request_id, uint64_t seq) {
  std::string body;
  PutU64(&body, seq);
  return EncodeFrame(FrameType::kCommitOk, request_id, body);
}

std::string EncodeRows(uint64_t request_id, uint32_t count,
                       std::string_view text) {
  std::string body;
  PutU32(&body, count);
  PutString(&body, text);
  return EncodeFrame(FrameType::kRows, request_id, body);
}

std::string EncodeError(uint64_t request_id, const Status& status) {
  std::string body;
  PutU8(&body, static_cast<uint8_t>(status.code()));
  PutString(&body, status.message());
  return EncodeFrame(FrameType::kError, request_id, body);
}

std::string EncodeBusy(uint64_t request_id, uint32_t retry_after_ms,
                       std::string_view message) {
  std::string body;
  PutU32(&body, retry_after_ms);
  PutString(&body, message);
  return EncodeFrame(FrameType::kBusy, request_id, body);
}

Status DecodeError(const Frame& frame) {
  BodyReader reader(frame.body);
  auto code_or = reader.U8();
  auto msg_or = reader.String();
  if (!code_or.ok() || !msg_or.ok()) {
    return Status::InvalidArgument("malformed Error frame");
  }
  const auto code = static_cast<StatusCode>(code_or.ValueOrDie());
  if (code == StatusCode::kOk) return Status::OK();
  return Status(code, msg_or.ValueOrDie());
}

Status DecodeBusy(const Frame& frame) {
  BodyReader reader(frame.body);
  auto retry_or = reader.U32();
  auto msg_or = reader.String();
  if (!retry_or.ok() || !msg_or.ok()) {
    return Status::InvalidArgument("malformed Busy frame");
  }
  return Status::ResourceExhausted(
      "server busy (retry after " + std::to_string(retry_or.ValueOrDie()) +
      "ms): " + msg_or.ValueOrDie());
}

void FrameReader::Feed(std::string_view bytes) {
  // Compact lazily: drop consumed prefix once it dominates the buffer.
  if (consumed_ > 4096 && consumed_ * 2 > buffer_.size()) {
    buffer_.erase(0, consumed_);
    consumed_ = 0;
  }
  buffer_.append(bytes);
}

StatusOr<bool> FrameReader::Next(Frame* frame) {
  if (!failed_.ok()) return failed_;
  const size_t avail = buffer_.size() - consumed_;
  if (avail < 4) return false;
  const char* base = buffer_.data() + consumed_;
  const uint32_t payload_len = LoadU32(base);
  if (payload_len < 1 + 8 || payload_len > 1 + 8 + kMaxFrameBody) {
    failed_ = Status::InvalidArgument(
        "malformed frame: payload length " + std::to_string(payload_len));
    return failed_;
  }
  if (avail < 4 + payload_len) return false;
  const uint8_t type = static_cast<uint8_t>(base[4]);
  if (!KnownFrameType(type)) {
    failed_ = Status::InvalidArgument("unknown frame type " +
                                      std::to_string(type));
    return failed_;
  }
  frame->type = static_cast<FrameType>(type);
  frame->request_id = LoadU64(base + 5);
  frame->body.assign(base + 13, payload_len - 9);
  consumed_ += 4 + payload_len;
  return true;
}

}  // namespace net
}  // namespace dbps
