// The dbps binary wire protocol (v1).
//
// Every message is one length-prefixed frame:
//
//   [u32 payload_len][u8 type][u64 request_id][body ...]
//
// payload_len counts everything after itself (type + request_id + body);
// all integers are little-endian; strings are u32-length-prefixed byte
// runs. The request_id correlates a response to its request, so one
// connection can PIPELINE: a client may have many requests in flight and
// the server answers each with the same id. The server processes one
// connection's frames strictly in arrival order (a session is a serial
// transaction stream), so responses also arrive in order — the ids make
// interleaved bookkeeping trivial and survive future out-of-order
// server implementations.
//
// Request frames (client → server):
//   Hello    {name}          open a session (must be first)
//   Begin    {}              open a transaction
//   Read     {relation}      snapshot/repeatable read of one relation
//   Query    {lhs}           rule-language LHS query
//   Write    {journal_line}  buffer a delta (lang/journal.h line format)
//   Commit   {}              commit the buffered write set
//   AbortTxn {}              roll back the open transaction
//   Ping     {}              liveness/latency probe
//   Goodbye  {}              orderly close (server flushes, then closes)
//   Checkpoint {}            admin: schedule a journal snapshot checkpoint
//                            at the next commit-batch boundary
//
// Response frames (server → client):
//   HelloOk  {session_id}
//   Ok       {}
//   CommitOk {seq}           commit sequence number; sent only after the
//                            commit is fsync-durable (ack-after-fsync)
//   Rows     {count, text}   result rows as newline-separated text
//   Pong     {}
//   Error    {code, message} StatusCode + human-readable message
//   Busy     {retry_ms, msg} BACKPRESSURE: admission gate / session cap
//                            is full — retry after the hint instead of
//                            queueing inside the server
//
// The delta payload of Write reuses the journal line s-expression from
// lang/journal.h — the one serialization the system already proves
// replayable — so the wire format adds no second delta codec.

#ifndef DBPS_NET_WIRE_H_
#define DBPS_NET_WIRE_H_

#include <cstdint>
#include <string>
#include <string_view>

#include "util/status.h"
#include "util/statusor.h"

namespace dbps {
namespace net {

enum class FrameType : uint8_t {
  // Requests.
  kHello = 1,
  kBegin = 2,
  kRead = 3,
  kQuery = 4,
  kWrite = 5,
  kCommit = 6,
  kAbortTxn = 7,
  kPing = 8,
  kGoodbye = 9,
  kCheckpoint = 10,
  // Responses.
  kHelloOk = 64,
  kOk = 65,
  kCommitOk = 66,
  kRows = 67,
  kPong = 68,
  kError = 69,
  kBusy = 70,
};

const char* FrameTypeToString(FrameType type);

/// Frames with a body larger than this are rejected as malformed — a
/// corrupt length prefix must not make the server allocate gigabytes.
inline constexpr size_t kMaxFrameBody = 4u << 20;

/// One decoded frame.
struct Frame {
  FrameType type = FrameType::kPing;
  uint64_t request_id = 0;
  std::string body;
};

// --- body primitives ----------------------------------------------------

void PutU8(std::string* out, uint8_t v);
void PutU32(std::string* out, uint32_t v);
void PutU64(std::string* out, uint64_t v);
void PutString(std::string* out, std::string_view s);

/// Bounds-checked cursor over a frame body.
class BodyReader {
 public:
  explicit BodyReader(std::string_view body) : body_(body) {}
  StatusOr<uint8_t> U8();
  StatusOr<uint32_t> U32();
  StatusOr<uint64_t> U64();
  StatusOr<std::string> String();
  bool AtEnd() const { return pos_ == body_.size(); }

 private:
  std::string_view body_;
  size_t pos_ = 0;
};

// --- frame encode -------------------------------------------------------

/// Wire bytes of one frame (length prefix included).
std::string EncodeFrame(FrameType type, uint64_t request_id,
                        std::string_view body = {});

std::string EncodeHello(uint64_t request_id, std::string_view name);
std::string EncodeRead(uint64_t request_id, std::string_view relation);
std::string EncodeQuery(uint64_t request_id, std::string_view lhs);
std::string EncodeWrite(uint64_t request_id, std::string_view journal_line);
std::string EncodeHelloOk(uint64_t request_id, uint64_t session_id);
std::string EncodeCommitOk(uint64_t request_id, uint64_t seq);
std::string EncodeRows(uint64_t request_id, uint32_t count,
                       std::string_view text);
std::string EncodeError(uint64_t request_id, const Status& status);
std::string EncodeBusy(uint64_t request_id, uint32_t retry_after_ms,
                       std::string_view message);

/// Decodes an Error body back into the Status it carried.
Status DecodeError(const Frame& frame);
/// Decodes a Busy body into ResourceExhausted (retry hint in message).
Status DecodeBusy(const Frame& frame);

// --- frame decode -------------------------------------------------------

/// Incremental frame parser for one byte stream. Feed() whatever arrived;
/// Next() yields complete frames in order. Framing violations (oversized
/// or truncated-impossible lengths, unknown type bytes) are sticky
/// errors: the stream is unrecoverable and the connection must die.
class FrameReader {
 public:
  void Feed(std::string_view bytes);

  /// True: *frame holds the next complete frame. False: need more bytes.
  /// Error: the stream is malformed (sticky).
  StatusOr<bool> Next(Frame* frame);

  size_t buffered() const { return buffer_.size() - consumed_; }

 private:
  std::string buffer_;
  size_t consumed_ = 0;  ///< bytes of buffer_ already parsed away
  Status failed_ = Status::OK();
};

}  // namespace net
}  // namespace dbps

#endif  // DBPS_NET_WIRE_H_
