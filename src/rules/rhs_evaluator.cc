#include "rules/rhs_evaluator.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

namespace {

StatusOr<Value> EvalBinary(BinOp op, const Value& lhs, const Value& rhs) {
  if (!lhs.is_number() || !rhs.is_number()) {
    return Status::TypeError(StringPrintf(
        "arithmetic on non-numbers: %s, %s", lhs.ToString().c_str(),
        rhs.ToString().c_str()));
  }
  const bool both_int = lhs.is_int() && rhs.is_int();
  if (both_int) {
    int64_t a = lhs.AsInt();
    int64_t b = rhs.AsInt();
    switch (op) {
      case BinOp::kAdd:
        return Value::Int(a + b);
      case BinOp::kSub:
        return Value::Int(a - b);
      case BinOp::kMul:
        return Value::Int(a * b);
      case BinOp::kDiv:
        if (b == 0) return Status::InvalidArgument("integer division by zero");
        return Value::Int(a / b);
      case BinOp::kMod:
        if (b == 0) return Status::InvalidArgument("mod by zero");
        return Value::Int(a % b);
    }
  }
  double a = lhs.AsNumber();
  double b = rhs.AsNumber();
  switch (op) {
    case BinOp::kAdd:
      return Value::Float(a + b);
    case BinOp::kSub:
      return Value::Float(a - b);
    case BinOp::kMul:
      return Value::Float(a * b);
    case BinOp::kDiv:
      if (b == 0.0) return Status::InvalidArgument("division by zero");
      return Value::Float(a / b);
    case BinOp::kMod:
      if (b == 0.0) return Status::InvalidArgument("mod by zero");
      return Value::Float(std::fmod(a, b));
  }
  return Status::Internal("unreachable BinOp");
}

}  // namespace

StatusOr<Value> EvalExpr(const Expr& expr,
                         const std::vector<WmePtr>& matched) {
  switch (expr.kind) {
    case Expr::Kind::kConstant:
      return expr.constant;
    case Expr::Kind::kBinding: {
      if (expr.ce >= matched.size()) {
        return Status::Internal(StringPrintf(
            "binding $%zu.%zu out of range (%zu matched WMEs)", expr.ce,
            expr.field, matched.size()));
      }
      const WmePtr& wme = matched[expr.ce];
      if (expr.field >= wme->arity()) {
        return Status::Internal(
            StringPrintf("binding field %zu out of range", expr.field));
      }
      return wme->value(expr.field);
    }
    case Expr::Kind::kBinary: {
      DBPS_ASSIGN_OR_RETURN(Value lhs, EvalExpr(*expr.lhs, matched));
      DBPS_ASSIGN_OR_RETURN(Value rhs, EvalExpr(*expr.rhs, matched));
      return EvalBinary(expr.op, lhs, rhs);
    }
  }
  return Status::Internal("unreachable Expr kind");
}

StatusOr<Delta> EvaluateRhs(const Rule& rule,
                            const std::vector<WmePtr>& matched) {
  if (matched.size() != rule.num_positive()) {
    return Status::Internal(StringPrintf(
        "rule '%s' expects %zu matched WMEs, got %zu", rule.name().c_str(),
        rule.num_positive(), matched.size()));
  }
  Delta delta;
  for (const auto& action : rule.actions()) {
    if (const auto* make = std::get_if<MakeAction>(&action)) {
      std::vector<Value> values;
      values.reserve(make->values.size());
      for (const auto& expr : make->values) {
        DBPS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, matched));
        values.push_back(std::move(v));
      }
      delta.Create(make->relation, std::move(values));
    } else if (const auto* modify = std::get_if<ModifyAction>(&action)) {
      std::vector<std::pair<size_t, Value>> updates;
      updates.reserve(modify->assigns.size());
      for (const auto& [field, expr] : modify->assigns) {
        DBPS_ASSIGN_OR_RETURN(Value v, EvalExpr(expr, matched));
        updates.emplace_back(field, std::move(v));
      }
      delta.Modify(matched[modify->ce]->id(), std::move(updates));
    } else if (const auto* remove = std::get_if<RemoveAction>(&action)) {
      delta.Delete(matched[remove->ce]->id());
    } else {
      delta.SetHalt();
    }
  }
  return delta;
}

}  // namespace dbps
