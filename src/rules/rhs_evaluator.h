// RHS evaluation: turns a rule's action list plus the matched WMEs into a
// Delta. Pure — never touches working memory.

#ifndef DBPS_RULES_RHS_EVALUATOR_H_
#define DBPS_RULES_RHS_EVALUATOR_H_

#include <vector>

#include "rules/rule.h"
#include "util/statusor.h"
#include "wm/delta.h"
#include "wm/wme.h"

namespace dbps {

/// Evaluates one expression against the matched WMEs (one per positive CE).
StatusOr<Value> EvalExpr(const Expr& expr, const std::vector<WmePtr>& matched);

/// Evaluates all of `rule`'s actions, producing the firing's Delta.
/// Fails on arithmetic type errors or division by zero; the firing is
/// then skipped without side effects.
StatusOr<Delta> EvaluateRhs(const Rule& rule,
                            const std::vector<WmePtr>& matched);

}  // namespace dbps

#endif  // DBPS_RULES_RHS_EVALUATOR_H_
