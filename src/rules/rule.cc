#include "rules/rule.h"

#include <sstream>

#include "util/logging.h"

namespace dbps {

const char* TestPredicateToString(TestPredicate pred) {
  switch (pred) {
    case TestPredicate::kEq:
      return "=";
    case TestPredicate::kNe:
      return "<>";
    case TestPredicate::kLt:
      return "<";
    case TestPredicate::kLe:
      return "<=";
    case TestPredicate::kGt:
      return ">";
    case TestPredicate::kGe:
      return ">=";
  }
  return "?";
}

bool EvalPredicate(TestPredicate pred, const Value& lhs, const Value& rhs) {
  switch (pred) {
    case TestPredicate::kEq:
      return lhs == rhs;
    case TestPredicate::kNe:
      return lhs != rhs;
    case TestPredicate::kLt:
      return lhs.Comparable(rhs) && lhs < rhs;
    case TestPredicate::kLe:
      return lhs.Comparable(rhs) && lhs <= rhs;
    case TestPredicate::kGt:
      return lhs.Comparable(rhs) && lhs > rhs;
    case TestPredicate::kGe:
      return lhs.Comparable(rhs) && lhs >= rhs;
  }
  return false;
}

Rule::Rule(std::string name, std::vector<Condition> conditions,
           std::vector<Action> actions)
    : name_(std::move(name)),
      conditions_(std::move(conditions)),
      actions_(std::move(actions)) {
  for (size_t i = 0; i < conditions_.size(); ++i) {
    if (!conditions_[i].negated) positive_to_condition_.push_back(i);
  }
  num_positive_ = positive_to_condition_.size();
  DBPS_CHECK_GT(num_positive_, 0u)
      << "rule '" << name_ << "' has no positive condition element";
}

namespace {
void AppendExpr(std::ostream& os, const Expr& e) {
  switch (e.kind) {
    case Expr::Kind::kConstant:
      os << e.constant;
      break;
    case Expr::Kind::kBinding:
      os << "$" << e.ce << "." << e.field;
      break;
    case Expr::Kind::kBinary: {
      const char* op = "?";
      switch (e.op) {
        case BinOp::kAdd:
          op = "+";
          break;
        case BinOp::kSub:
          op = "-";
          break;
        case BinOp::kMul:
          op = "*";
          break;
        case BinOp::kDiv:
          op = "/";
          break;
        case BinOp::kMod:
          op = "mod";
          break;
      }
      os << "(" << op << " ";
      AppendExpr(os, *e.lhs);
      os << " ";
      AppendExpr(os, *e.rhs);
      os << ")";
      break;
    }
  }
}
}  // namespace

std::string Rule::ToString() const {
  std::ostringstream out;
  out << "(rule " << name_;
  if (priority_ != 0) out << " :priority " << priority_;
  if (cost_us_ != 0) out << " :cost " << cost_us_;
  for (const auto& cond : conditions_) {
    out << "\n  " << (cond.negated ? "-(" : "(") << SymName(cond.relation);
    for (const auto& t : cond.constant_tests) {
      out << " [" << t.field << "]" << TestPredicateToString(t.pred)
          << t.value;
    }
    for (const auto& t : cond.member_tests) {
      out << " [" << t.field << "]in{";
      for (size_t i = 0; i < t.values.size(); ++i) {
        out << (i ? "," : "") << t.values[i];
      }
      out << "}";
    }
    for (const auto& t : cond.intra_tests) {
      out << " [" << t.field << "]" << TestPredicateToString(t.pred) << "["
          << t.other_field << "]";
    }
    for (const auto& t : cond.join_tests) {
      out << " [" << t.field << "]" << TestPredicateToString(t.pred) << "$"
          << t.other_ce << "." << t.other_field;
    }
    out << ")";
  }
  out << "\n  -->";
  for (const auto& action : actions_) {
    out << "\n  ";
    if (const auto* make = std::get_if<MakeAction>(&action)) {
      out << "(make " << SymName(make->relation);
      for (const auto& e : make->values) {
        out << " ";
        AppendExpr(out, e);
      }
      out << ")";
    } else if (const auto* modify = std::get_if<ModifyAction>(&action)) {
      out << "(modify $" << modify->ce;
      for (const auto& [field, expr] : modify->assigns) {
        out << " [" << field << "]=";
        AppendExpr(out, expr);
      }
      out << ")";
    } else if (const auto* remove = std::get_if<RemoveAction>(&action)) {
      out << "(remove $" << remove->ce << ")";
    } else {
      out << "(halt)";
    }
  }
  out << ")";
  return out.str();
}

Status RuleSet::Add(RulePtr rule) {
  DBPS_CHECK(rule != nullptr);
  if (by_name_.count(rule->name()) != 0) {
    return Status::AlreadyExists("rule '" + rule->name() +
                                 "' already defined");
  }
  by_name_.emplace(rule->name(), rules_.size());
  rules_.push_back(std::move(rule));
  return Status::OK();
}

RulePtr RuleSet::Find(const std::string& name) const {
  auto it = by_name_.find(name);
  return it == by_name_.end() ? nullptr : rules_[it->second];
}

}  // namespace dbps
