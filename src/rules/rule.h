// Compiled production rules.
//
// This is the executable form produced by the lang compiler (or built
// programmatically): name-resolved, variable references lowered to
// (condition-element, field) coordinates, tests split into the classes
// the matchers need:
//
//   * constant tests — field vs literal            (alpha network)
//   * intra tests    — field vs field, same WME    (alpha network)
//   * join tests     — field vs earlier CE's field (beta network)

#ifndef DBPS_RULES_RULE_H_
#define DBPS_RULES_RULE_H_

#include <cstdint>
#include <memory>
#include <string>
#include <variant>
#include <vector>

#include "value/value.h"
#include "wm/schema.h"

namespace dbps {

/// Comparison predicates of the rule language.
enum class TestPredicate : uint8_t { kEq, kNe, kLt, kLe, kGt, kGe };

const char* TestPredicateToString(TestPredicate pred);

/// Evaluates `lhs pred rhs`; ordered predicates on incomparable values
/// are simply false (OPS5 treats e.g. `red > 3` as a failed test).
bool EvalPredicate(TestPredicate pred, const Value& lhs, const Value& rhs);

/// field(wme) pred constant.
struct ConstantTest {
  size_t field;
  TestPredicate pred;
  Value value;
};

/// field(wme) IN {values} — an OPS5 value disjunction << ... >>.
struct MemberTest {
  size_t field;
  std::vector<Value> values;

  bool Eval(const Value& v) const {
    for (const auto& candidate : values) {
      if (v == candidate) return true;
    }
    return false;
  }
};

/// field(wme) pred other_field(same wme).
struct IntraTest {
  size_t field;
  TestPredicate pred;
  size_t other_field;
};

/// field(wme) pred other_field(wme matched by earlier positive CE).
struct JoinTest {
  size_t field;
  TestPredicate pred;
  size_t other_ce;     ///< positive-CE index (0-based)
  size_t other_field;
};

/// \brief One condition element of a rule's LHS.
struct Condition {
  bool negated = false;
  SymbolId relation = 0;
  std::vector<ConstantTest> constant_tests;
  std::vector<MemberTest> member_tests;
  std::vector<IntraTest> intra_tests;
  std::vector<JoinTest> join_tests;
};

// --- RHS expressions --------------------------------------------------------

enum class BinOp : uint8_t { kAdd, kSub, kMul, kDiv, kMod };

/// \brief Compiled RHS expression: literal | bound variable | arithmetic.
struct Expr {
  enum class Kind : uint8_t { kConstant, kBinding, kBinary };

  Kind kind = Kind::kConstant;
  Value constant;                       // kConstant
  size_t ce = 0;                        // kBinding: positive-CE index
  size_t field = 0;                     // kBinding: field within that WME
  BinOp op = BinOp::kAdd;               // kBinary
  std::shared_ptr<const Expr> lhs, rhs; // kBinary

  static Expr Constant(Value v) {
    Expr e;
    e.kind = Kind::kConstant;
    e.constant = std::move(v);
    return e;
  }
  static Expr Binding(size_t ce, size_t field) {
    Expr e;
    e.kind = Kind::kBinding;
    e.ce = ce;
    e.field = field;
    return e;
  }
  static Expr Binary(BinOp op, Expr l, Expr r) {
    Expr e;
    e.kind = Kind::kBinary;
    e.op = op;
    e.lhs = std::make_shared<const Expr>(std::move(l));
    e.rhs = std::make_shared<const Expr>(std::move(r));
    return e;
  }
};

// --- RHS actions --------------------------------------------------------------

/// (make relation ^a e ...) — unassigned attributes default to nil.
struct MakeAction {
  SymbolId relation;
  /// Dense per-field expressions (arity of the relation).
  std::vector<Expr> values;
};

/// (modify <n> ^a e ...) — n names a positive CE (0-based once compiled).
struct ModifyAction {
  size_t ce;
  std::vector<std::pair<size_t, Expr>> assigns;
};

/// (remove <n>).
struct RemoveAction {
  size_t ce;
};

/// (halt) — stops the engine after this firing commits.
struct HaltAction {};

using Action = std::variant<MakeAction, ModifyAction, RemoveAction, HaltAction>;

// --- The rule -----------------------------------------------------------------

/// \brief A compiled production.
class Rule {
 public:
  Rule(std::string name, std::vector<Condition> conditions,
       std::vector<Action> actions);

  const std::string& name() const { return name_; }
  const std::vector<Condition>& conditions() const { return conditions_; }
  const std::vector<Action>& actions() const { return actions_; }

  /// Number of positive (non-negated) condition elements; instantiations
  /// carry exactly this many matched WMEs.
  size_t num_positive() const { return num_positive_; }

  /// Maps positive-CE index -> index in conditions().
  size_t PositiveConditionIndex(size_t positive_ce) const {
    return positive_to_condition_[positive_ce];
  }

  /// Conflict-resolution priority (higher fires first under kPriority).
  int priority() const { return priority_; }
  void set_priority(int priority) { priority_ = priority; }

  /// Synthetic execution cost in microseconds (busy-spun by engines);
  /// models the paper's per-production execution times T(Pi).
  int64_t cost_us() const { return cost_us_; }
  void set_cost_us(int64_t cost_us) { cost_us_ = cost_us; }

  std::string ToString() const;

 private:
  std::string name_;
  std::vector<Condition> conditions_;
  std::vector<Action> actions_;
  std::vector<size_t> positive_to_condition_;
  size_t num_positive_;
  int priority_ = 0;
  int64_t cost_us_ = 0;
};

using RulePtr = std::shared_ptr<const Rule>;

/// \brief An ordered collection of uniquely named rules.
class RuleSet {
 public:
  /// Fails with AlreadyExists on duplicate rule names.
  Status Add(RulePtr rule);

  const std::vector<RulePtr>& rules() const { return rules_; }
  size_t size() const { return rules_.size(); }

  /// Looks a rule up by name; nullptr if absent.
  RulePtr Find(const std::string& name) const;

 private:
  std::vector<RulePtr> rules_;
  std::unordered_map<std::string, size_t> by_name_;
};

using RuleSetPtr = std::shared_ptr<const RuleSet>;

}  // namespace dbps

#endif  // DBPS_RULES_RULE_H_
