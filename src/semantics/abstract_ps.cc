#include "semantics/abstract_ps.h"

#include <deque>
#include <unordered_set>

#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

AbstractSystem::AbstractSystem(std::vector<AbstractProduction> productions,
                               ConflictMask initial)
    : productions_(std::move(productions)), initial_(initial) {
  DBPS_CHECK_LE(productions_.size(), 64u);
  const ConflictMask valid =
      productions_.size() == 64
          ? ~0ULL
          : ((1ULL << productions_.size()) - 1);
  DBPS_CHECK_EQ(initial_ & ~valid, 0u) << "initial set names unknown rules";
}

ConflictMask AbstractSystem::Fire(ConflictMask state, size_t p) const {
  DBPS_CHECK_LT(p, productions_.size());
  DBPS_CHECK((state >> p) & 1) << "firing inactive production";
  const AbstractProduction& production = productions_[p];
  // Firing removes the production itself (refraction) and its delete
  // set, then inserts its add set.
  return (state & ~(1ULL << p) & ~production.delete_set) |
         production.add_set;
}

bool AbstractSystem::IsValidSequence(
    const std::vector<size_t>& sequence) const {
  ConflictMask state = initial_;
  for (size_t p : sequence) {
    if (p >= productions_.size()) return false;
    if (((state >> p) & 1) == 0) return false;
    state = Fire(state, p);
  }
  return true;
}

void AbstractSystem::Enumerate(ConflictMask state,
                               std::vector<size_t>* prefix,
                               size_t max_length, size_t max_sequences,
                               std::vector<std::vector<size_t>>* out,
                               Status* status) const {
  if (!status->ok() || out->size() >= max_sequences) return;
  if (state == 0) {
    out->push_back(*prefix);
    return;
  }
  if (prefix->size() >= max_length) {
    *status = Status::InvalidArgument(StringPrintf(
        "execution did not quiesce within %zu steps", max_length));
    return;
  }
  for (size_t p = 0; p < productions_.size(); ++p) {
    if (((state >> p) & 1) == 0) continue;
    prefix->push_back(p);
    Enumerate(Fire(state, p), prefix, max_length, max_sequences, out,
              status);
    prefix->pop_back();
  }
}

StatusOr<std::vector<std::vector<size_t>>>
AbstractSystem::EnumerateCompleteSequences(size_t max_length,
                                           size_t max_sequences) const {
  std::vector<std::vector<size_t>> out;
  std::vector<size_t> prefix;
  Status status = Status::OK();
  Enumerate(initial_, &prefix, max_length, max_sequences, &out, &status);
  DBPS_RETURN_NOT_OK(status);
  return out;
}

std::string AbstractSystem::SequenceToString(
    const std::vector<size_t>& sequence) const {
  std::string out;
  for (size_t p : sequence) {
    if (!out.empty()) out += " ";
    out += productions_[p].name;
  }
  return out;
}

StatusOr<std::vector<ConflictMask>> AbstractSystem::ReachableStates(
    size_t max_states) const {
  std::vector<ConflictMask> out;
  std::unordered_set<ConflictMask> seen;
  std::deque<ConflictMask> frontier{initial_};
  seen.insert(initial_);
  while (!frontier.empty()) {
    ConflictMask state = frontier.front();
    frontier.pop_front();
    out.push_back(state);
    if (out.size() > max_states) {
      return Status::InvalidArgument("state space exceeds max_states");
    }
    for (size_t p = 0; p < productions_.size(); ++p) {
      if (((state >> p) & 1) == 0) continue;
      ConflictMask next = Fire(state, p);
      if (seen.insert(next).second) frontier.push_back(next);
    }
  }
  return out;
}

StatusOr<std::string> AbstractSystem::ToDot(size_t max_states) const {
  DBPS_ASSIGN_OR_RETURN(std::vector<ConflictMask> states,
                        ReachableStates(max_states));
  std::string out = "digraph execution_graph {\n  rankdir=TB;\n";
  for (ConflictMask state : states) {
    out += "  \"" + MaskToString(state) + "\"";
    if (state == initial_) out += " [style=bold]";
    if (state == 0) out += " [shape=doublecircle]";
    out += ";\n";
  }
  for (ConflictMask state : states) {
    for (size_t p = 0; p < productions_.size(); ++p) {
      if (((state >> p) & 1) == 0) continue;
      out += "  \"" + MaskToString(state) + "\" -> \"" +
             MaskToString(Fire(state, p)) + "\" [label=\"" +
             productions_[p].name + "\"];\n";
    }
  }
  out += "}\n";
  return out;
}

std::string AbstractSystem::MaskToString(ConflictMask mask) const {
  std::string out = "{";
  bool first = true;
  for (size_t p = 0; p < productions_.size(); ++p) {
    if (((mask >> p) & 1) == 0) continue;
    if (!first) out += ",";
    first = false;
    out += productions_[p].name;
  }
  return out + "}";
}

}  // namespace dbps
