// The abstract production-system model of §3.3: productions characterized
// purely by their add/delete sets over the conflict set, with working
// memory abstracted away. Used to build execution graphs (Figures 3.1 /
// 3.2) and enumerate ES_single exactly.

#ifndef DBPS_SEMANTICS_ABSTRACT_PS_H_
#define DBPS_SEMANTICS_ABSTRACT_PS_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"

namespace dbps {

/// Conflict sets are bitmasks over production indices (max 64 productions
/// — far beyond the paper's worked examples).
using ConflictMask = uint64_t;

/// \brief One abstract production: firing it removes itself and its
/// delete set from the conflict set and inserts its add set (§3.3 —
/// "the execution of a production P causes some productions to be
/// added to / deleted from the conflict set").
struct AbstractProduction {
  std::string name;
  ConflictMask add_set = 0;
  ConflictMask delete_set = 0;
};

/// \brief An abstract system: productions + initial conflict set.
class AbstractSystem {
 public:
  AbstractSystem(std::vector<AbstractProduction> productions,
                 ConflictMask initial);

  size_t num_productions() const { return productions_.size(); }
  const AbstractProduction& production(size_t i) const {
    return productions_[i];
  }
  ConflictMask initial() const { return initial_; }

  /// The successor conflict set after firing production `p` from `state`.
  /// Requires p to be active in `state`.
  ConflictMask Fire(ConflictMask state, size_t p) const;

  /// True iff `sequence` (production indices) is a root-originating path
  /// of the execution graph — i.e. a member of ES_single, prefixes
  /// included (Definition 3.1).
  bool IsValidSequence(const std::vector<size_t>& sequence) const;

  /// Enumerates every *complete* execution sequence (ending with an empty
  /// conflict set), up to `max_length` steps and `max_sequences` results.
  /// Fails with kInvalidArgument if a sequence exceeds max_length (the
  /// system does not quiesce within the bound).
  StatusOr<std::vector<std::vector<size_t>>> EnumerateCompleteSequences(
      size_t max_length = 64, size_t max_sequences = 1 << 20) const;

  /// Renders a sequence as "p1 p4 p5".
  std::string SequenceToString(const std::vector<size_t>& sequence) const;

  /// All distinct states reachable from the initial state (the execution
  /// graph's node set), bounded by `max_states`.
  StatusOr<std::vector<ConflictMask>> ReachableStates(
      size_t max_states = 1 << 20) const;

  std::string MaskToString(ConflictMask mask) const;

  /// Graphviz rendering of the execution graph (Figure 3.1 form),
  /// bounded by `max_states`.
  StatusOr<std::string> ToDot(size_t max_states = 1 << 12) const;

 private:
  void Enumerate(ConflictMask state, std::vector<size_t>* prefix,
                 size_t max_length, size_t max_sequences,
                 std::vector<std::vector<size_t>>* out, Status* status) const;

  std::vector<AbstractProduction> productions_;
  ConflictMask initial_;
};

}  // namespace dbps

#endif  // DBPS_SEMANTICS_ABSTRACT_PS_H_
