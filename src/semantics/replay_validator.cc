#include "semantics/replay_validator.h"

#include "match/matcher.h"
#include "rules/rhs_evaluator.h"
#include "util/string_util.h"

namespace dbps {

Status ValidateReplay(WorkingMemory* initial_wm, const RuleSetPtr& rules,
                      const std::vector<FiringRecord>& log) {
  auto matcher = CreateMatcher(MatcherKind::kRete);
  DBPS_RETURN_NOT_OK(matcher->Initialize(rules, *initial_wm));

  for (size_t step = 0; step < log.size(); ++step) {
    const FiringRecord& record = log[step];

    // External client transactions are *inputs* to the production system,
    // not firings: Definition 3.2 extends to "a single-thread execution
    // interleaved with the logged external updates at exactly their
    // logged commit points". They replay by applying their delta; it must
    // still be applicable here, or the log's total order was violated.
    if (IsClientFiring(record.key)) {
      auto change_or = initial_wm->Apply(record.delta);
      if (!change_or.ok()) {
        return Status::Internal(StringPrintf(
            "step %zu: applying client transaction %s failed: %s", step,
            record.key.rule_name.c_str(),
            change_or.status().ToString().c_str()));
      }
      matcher->ApplyChange(change_or.ValueOrDie());
      continue;
    }

    // (1) Membership: the fired instantiation must be active here — this
    // is exactly "the commit sequence is a root-originating path".
    const InstPtr inst = matcher->conflict_set().Find(record.key);
    if (inst == nullptr) {
      return Status::Internal(StringPrintf(
          "step %zu: fired instantiation %s is not in the replayed "
          "conflict set — the parallel log is not a valid single-thread "
          "sequence",
          step, record.key.ToString().c_str()));
    }

    // (2) Effect equality: the RHS evaluated at this replay state must
    // produce the very Delta the original run committed.
    auto delta_or = EvaluateRhs(*inst->rule(), inst->matched());
    if (!delta_or.ok()) {
      return Status::Internal(StringPrintf(
          "step %zu: RHS re-evaluation failed: %s", step,
          delta_or.status().ToString().c_str()));
    }
    if (!(delta_or.ValueOrDie() == record.delta)) {
      return Status::Internal(StringPrintf(
          "step %zu: replayed delta %s differs from logged delta %s", step,
          delta_or.ValueOrDie().ToString().c_str(),
          record.delta.ToString().c_str()));
    }

    // (3) Advance the replay state.
    matcher->conflict_set().MarkFired(record.key);
    auto change_or = initial_wm->Apply(record.delta);
    if (!change_or.ok()) {
      return Status::Internal(StringPrintf(
          "step %zu: applying logged delta failed: %s", step,
          change_or.status().ToString().c_str()));
    }
    matcher->ApplyChange(change_or.ValueOrDie());
  }
  return Status::OK();
}

}  // namespace dbps
