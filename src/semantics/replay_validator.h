// ReplayValidator: the executable form of Definition 3.2.
//
// A parallel engine's commit log is semantically consistent iff it is a
// root-originating path of the single-thread execution graph — i.e. iff a
// single-thread interpreter, started from the same initial state, could
// have selected exactly this sequence. The validator replays the log:
// at each step the fired instantiation must be present in the replayed
// conflict set, and re-executing its RHS must yield exactly the logged
// Delta. WME ids are assigned deterministically in delta-application
// order, so keys match across the original run and the replay.
//
// Theorems 1 and 2 (and the §4.3 extension) assert every log the engines
// produce passes this check; the property tests exercise it heavily.
//
// Logs may contain external client transactions (src/server/), recorded
// under client keys (kClientRulePrefix). These replay as given inputs —
// their deltas are applied at exactly their logged commit points — and
// the rule firings around them must remain valid, which is how Def. 3.2
// extends to the multi-user setting.

#ifndef DBPS_SEMANTICS_REPLAY_VALIDATOR_H_
#define DBPS_SEMANTICS_REPLAY_VALIDATOR_H_

#include <vector>

#include "engine/engine.h"
#include "rules/rule.h"
#include "util/status.h"
#include "wm/working_memory.h"

namespace dbps {

/// \brief Replays `log` against `initial_wm` (which must be in the same
/// state the logged run started from; it is mutated by the replay).
/// Returns OK iff the log is a valid single-thread execution sequence.
Status ValidateReplay(WorkingMemory* initial_wm, const RuleSetPtr& rules,
                      const std::vector<FiringRecord>& log);

}  // namespace dbps

#endif  // DBPS_SEMANTICS_REPLAY_VALIDATOR_H_
