#include "server/admission.h"

#include <algorithm>

#include "util/failpoint.h"

namespace dbps {

Status AdmissionGate::Enter(std::chrono::milliseconds timeout) {
  // Chaos site: the gate spuriously rejects an admission, as if full.
  // Evaluated before the mutex so a configured delay cannot stall the
  // gate for everyone.
  if (DBPS_FAILPOINT("server.admission.reject")) {
    std::lock_guard<std::mutex> lock(mu_);
    ++stats_.injected_rejections;
    return Status::ResourceExhausted("injected admission rejection");
  }
  std::unique_lock<std::mutex> lock(mu_);
  if (capacity_ != 0 && in_use_ >= capacity_) {
    ++stats_.waited;
    const auto deadline = std::chrono::steady_clock::now() + timeout;
    while (capacity_ != 0 && in_use_ >= capacity_ && !closed_) {
      if (cv_.wait_until(lock, deadline) == std::cv_status::timeout) {
        if (capacity_ == 0 || in_use_ < capacity_ || closed_) break;
        ++stats_.timeouts;
        return Status::ResourceExhausted(
            "admission gate full (capacity " + std::to_string(capacity_) +
            ")");
      }
    }
  }
  if (closed_) return Status::Unavailable("admission gate closed");
  ++in_use_;
  ++stats_.admitted;
  stats_.peak_in_use = std::max(stats_.peak_in_use, in_use_);
  return Status::OK();
}

void AdmissionGate::Leave() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (in_use_ > 0) --in_use_;
  }
  cv_.notify_one();
}

void AdmissionGate::Close() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    closed_ = true;
  }
  cv_.notify_all();
}

size_t AdmissionGate::in_use() const {
  std::lock_guard<std::mutex> lock(mu_);
  return in_use_;
}

AdmissionGate::Stats AdmissionGate::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  return stats_;
}

}  // namespace dbps
