// Bounded admission: the server's backpressure primitive.
//
// An AdmissionGate holds a fixed number of slots. Enter() blocks while
// the gate is full — callers (client sessions opening transactions, or
// connections being admitted) feel backpressure instead of overrunning
// the engine — and fails with ResourceExhausted when the wait times out,
// or Unavailable once the gate is closed. Leave() frees a slot and wakes
// one waiter. The gate is fair in the weak sense of condition variables:
// no queue jumping is prevented, only starvation by wakeup loss.

#ifndef DBPS_SERVER_ADMISSION_H_
#define DBPS_SERVER_ADMISSION_H_

#include <chrono>
#include <condition_variable>
#include <mutex>

#include "util/status.h"

namespace dbps {

class AdmissionGate {
 public:
  struct Stats {
    uint64_t admitted = 0;
    uint64_t waited = 0;    ///< Enter calls that blocked at least once
    uint64_t timeouts = 0;  ///< Enter calls that gave up
    uint64_t injected_rejections = 0;  ///< failpoint-forced rejections
    size_t peak_in_use = 0;
  };

  /// `capacity` == 0 means unbounded (Enter never blocks).
  explicit AdmissionGate(size_t capacity) : capacity_(capacity) {}

  AdmissionGate(const AdmissionGate&) = delete;
  AdmissionGate& operator=(const AdmissionGate&) = delete;

  /// Takes one slot, blocking up to `timeout` while the gate is full.
  Status Enter(std::chrono::milliseconds timeout);

  /// Returns one slot and wakes a waiter.
  void Leave();

  /// Fails all current and future Enter calls with Unavailable.
  void Close();

  size_t capacity() const { return capacity_; }
  size_t in_use() const;
  Stats GetStats() const;

 private:
  const size_t capacity_;
  mutable std::mutex mu_;
  std::condition_variable cv_;
  size_t in_use_ = 0;
  bool closed_ = false;
  Stats stats_;
};

}  // namespace dbps

#endif  // DBPS_SERVER_ADMISSION_H_
