#include "server/journal_feed.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <utility>

#include "audit/audit_record.h"
#include "lang/journal.h"
#include "lang/printer.h"
#include "util/failpoint.h"
#include "wm/working_memory.h"

namespace dbps {

const char* JournalOpenModeToString(JournalOpenMode mode) {
  switch (mode) {
    case JournalOpenMode::kAppend: return "append";
    case JournalOpenMode::kTruncate: return "truncate";
    case JournalOpenMode::kFailIfExists: return "fail-if-exists";
  }
  return "?";
}

JournalFeed::~JournalFeed() {
  if (flusher_.joinable()) {
    {
      std::lock_guard<std::mutex> lock(mu_);
      flusher_stop_ = true;
    }
    cv_.notify_all();
    flusher_.join();
  }
  if (fd_ >= 0) ::close(fd_);
}

EngineObserver JournalFeed::MakeObserver(EngineObserver next) {
  return [this, next = std::move(next)](const EngineEvent& event) {
    if (event.kind == EngineEvent::Kind::kCommit && event.delta != nullptr) {
      AppendLine(*event.delta, event.seq, event.audit);
    } else if (event.kind == EngineEvent::Kind::kBatchEnd) {
      std::unique_lock<std::mutex> lock(mu_);
      if (durable_enabled_ && durable_options_.group_commit &&
          !staged_.empty()) {
        SyncStaged(lock);
      }
      // Checkpoints only here: at the batch boundary the working memory
      // IS the replay of every record written so far (the head thread
      // applied all earlier commits, none of the next batch started), so
      // event.seq is an exact fence.
      if (durable_enabled_) MaybeWriteCheckpoint(lock, event.seq);
    }
    if (next) next(event);
  };
}

void JournalFeed::Append(const Delta& delta) {
  // Cursor-only use (no engine seq available): synthesize the dense seq.
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t seq = durable_options_.start_seq + lines_.size();
  lock.unlock();
  AppendLine(delta, seq, nullptr);
}

void JournalFeed::AppendLine(const Delta& delta, uint64_t seq,
                             const TxnAudit* audit) {
  auto line_or = AuditedJournalLine(delta, seq, audit);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!line_or.ok()) {
      ++serialize_errors_;
      return;
    }
    lines_.push_back(line_or.ValueOrDie());
    if (durable_enabled_) {
      WalRecord record;
      record.seq = seq;
      record.type = WalRecordType::kDelta;
      record.payload = std::move(line_or).ValueOrDie();
      if (staged_.empty()) staged_since_ = std::chrono::steady_clock::now();
      staged_.push_back(std::move(record));
      staged_high_seq_ = seq + 1;
      ++records_since_checkpoint_;
      // Per-commit fsync mode: every commit is its own group of one.
      if (!durable_options_.group_commit) SyncStaged(lock);
    }
  }
  cv_.notify_all();
}

bool JournalFeed::WriteFramedLocked(const WalRecord& record) {
  std::string frame;
  EncodeWalRecord(record, &frame);
  if (fd_ >= 0) {
    size_t off = 0;
    while (off < frame.size()) {
      const ssize_t n = ::write(fd_, frame.data() + off, frame.size() - off);
      if (n < 0) return false;
      off += static_cast<size_t>(n);
    }
    if (::fsync(fd_) != 0) return false;
  }
  durability_stats_.bytes_written += frame.size();
  return true;
}

void JournalFeed::SyncStaged(std::unique_lock<std::mutex>& lock) {
  // The observer delivers commits from the engine's ordered commit stage
  // (one thread at a time), and the adaptive flusher is serialized with
  // it by mu_, so holding mu_ across the write+fsync only ever delays
  // readers, never races another writer.
  (void)lock;
  bool failed = sync_failed_;
  if (!failed) {
    // Chaos/durability site: the device fails the flush. The WHOLE group
    // stays un-durable — no partial ack — and the feed is failed for
    // good (later groups would leave a hole before them in the log).
    if (DBPS_FAILPOINT("server.journal.fsync_fail")) failed = true;
  }
  // Crash sites: the process "dies" inside the sync. Unlike fsync_fail
  // the bytes (or a prefix of them) DO reach the file — exactly the
  // states recovery must cope with — but no ack is ever delivered and
  // the feed is dead thereafter.
  bool crash = false;
  size_t full_records = staged_.size();  // records written completely
  size_t partial_bytes = 0;              // then this prefix of the next
  if (!failed && !crashed_) {
    if (DBPS_FAILPOINT("server.journal.crash_after_write")) {
      crash = true;  // every staged record lands, the ack does not
    } else if (DBPS_FAILPOINT("server.journal.crash_mid_record")) {
      crash = true;  // the final record is cut mid-frame (torn tail)
      if (!staged_.empty()) {
        full_records = staged_.size() - 1;
        std::string frame;
        EncodeWalRecord(staged_.back(), &frame);
        partial_bytes = std::max<size_t>(1, frame.size() / 2);
      }
    }
  }
  if (!failed && !crashed_ && fd_ >= 0) {
    for (size_t i = 0; i < full_records && !failed; ++i) {
      std::string frame;
      EncodeWalRecord(staged_[i], &frame);
      size_t off = 0;
      while (off < frame.size()) {
        const ssize_t n = ::write(fd_, frame.data() + off,
                                  frame.size() - off);
        if (n < 0) {
          failed = true;
          break;
        }
        off += static_cast<size_t>(n);
      }
      if (!failed) durability_stats_.bytes_written += frame.size();
    }
    if (!failed && crash && partial_bytes > 0 && !staged_.empty()) {
      std::string frame;
      EncodeWalRecord(staged_.back(), &frame);
      (void)!::write(fd_, frame.data(), partial_bytes);
      durability_stats_.bytes_written += partial_bytes;
    }
    if (!failed && !crash && ::fsync(fd_) != 0) failed = true;
  } else if (!failed && !crashed_ && crash) {
    // Simulated device: nothing to write, the crash still kills the feed.
  }
  if (crash) {
    crashed_ = true;
    ++durability_stats_.injected_crashes;
    failed = true;
  }
  if (!failed) {
    // Delay-style site (sleep-safe) + configured device latency model.
    (void)DBPS_FAILPOINT("server.journal.fsync_delay");
    if (durable_options_.simulated_fsync_cost.count() > 0) {
      std::this_thread::sleep_for(durable_options_.simulated_fsync_cost);
    }
  }
  if (failed) {
    sync_failed_ = true;
    ++durability_stats_.sync_failures;
  } else {
    ++durability_stats_.fsyncs;
    durability_stats_.records_synced += staged_.size();
    durability_stats_.max_group =
        std::max<uint64_t>(durability_stats_.max_group, staged_.size());
    durable_seq_ = staged_high_seq_;
  }
  staged_.clear();
  cv_.notify_all();
}

void JournalFeed::MaybeWriteCheckpoint(std::unique_lock<std::mutex>& lock,
                                       uint64_t seq) {
  (void)lock;
  if (checkpoint_wm_ == nullptr || sync_failed_ || crashed_) return;
  const bool due =
      checkpoint_requested_.load(std::memory_order_acquire) ||
      (durable_options_.checkpoint_every > 0 &&
       records_since_checkpoint_ >= durable_options_.checkpoint_every);
  if (!due) return;
  auto payload_or = CheckpointToSource(*checkpoint_wm_, seq);
  if (!payload_or.ok()) {
    // Unprintable state (printer limits). Nothing was written, so the
    // log has no hole — count it and try again at a later boundary.
    ++durability_stats_.checkpoint_render_failures;
    checkpoint_requested_.store(false, std::memory_order_release);
    return;
  }
  WalRecord record;
  record.seq = seq;
  record.type = WalRecordType::kCheckpoint;
  record.payload = std::move(payload_or).ValueOrDie();
  if (!WriteFramedLocked(record)) {
    // A partially-written checkpoint is a hole mid-log: same sticky
    // whole-feed failure as a lost fsync.
    sync_failed_ = true;
    ++durability_stats_.sync_failures;
    cv_.notify_all();
    return;
  }
  ++durability_stats_.fsyncs;
  ++durability_stats_.checkpoints_written;
  records_since_checkpoint_ = 0;
  checkpoint_requested_.store(false, std::memory_order_release);
}

size_t JournalFeed::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

std::vector<std::string> JournalFeed::LinesFrom(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cursor >= lines_.size()) return {};
  return std::vector<std::string>(lines_.begin() + cursor, lines_.end());
}

std::string JournalFeed::TextFrom(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (size_t i = cursor; i < lines_.size(); ++i) {
    out += lines_[i];
    out += '\n';
  }
  return out;
}

size_t JournalFeed::WaitForSize(size_t target,
                                std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return lines_.size() >= target; });
  return lines_.size();
}

uint64_t JournalFeed::serialize_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serialize_errors_;
}

Status JournalFeed::EnableDurability(DurabilityOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_enabled_) {
    return Status::InvalidArgument("durability already enabled");
  }
  if (!options.path.empty()) {
    int flags = O_CREAT | O_WRONLY | O_CLOEXEC;
    switch (options.open_mode) {
      case JournalOpenMode::kAppend:
        flags |= O_APPEND;
        break;
      case JournalOpenMode::kTruncate:
        flags |= O_TRUNC;
        break;
      case JournalOpenMode::kFailIfExists:
        flags |= O_EXCL;
        break;
    }
    const int fd = ::open(options.path.c_str(), flags, 0644);
    if (fd < 0) {
      if (options.open_mode == JournalOpenMode::kFailIfExists &&
          errno == EEXIST) {
        return Status::AlreadyExists("journal file '" + options.path +
                                     "' already exists");
      }
      return Status::Unavailable("cannot open journal file '" +
                                 options.path + "'");
    }
    fd_ = fd;
  }
  durable_seq_ = options.start_seq;
  staged_high_seq_ = options.start_seq;
  durable_options_ = std::move(options);
  durable_enabled_ = true;
  if (durable_options_.group_commit &&
      durable_options_.flush_deadline.count() > 0) {
    flusher_ = std::thread([this] { FlusherLoop(); });
  }
  return Status::OK();
}

void JournalFeed::FlusherLoop() {
  std::unique_lock<std::mutex> lock(mu_);
  while (!flusher_stop_) {
    if (staged_.empty()) {
      cv_.wait(lock, [&] { return flusher_stop_ || !staged_.empty(); });
      continue;
    }
    const auto deadline = staged_since_ + durable_options_.flush_deadline;
    if (std::chrono::steady_clock::now() >= deadline) {
      // The engine's kBatchEnd never came (or is stalled behind slow
      // firings): release the group now so its commits can be acked.
      ++durability_stats_.deadline_flushes;
      SyncStaged(lock);
      continue;
    }
    cv_.wait_until(lock, deadline);
  }
}

bool JournalFeed::durable_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_enabled_;
}

Status JournalFeed::EnableCheckpoints(const WorkingMemory* wm) {
  std::lock_guard<std::mutex> lock(mu_);
  if (!durable_enabled_) {
    return Status::InvalidArgument(
        "EnableCheckpoints requires durability to be enabled first");
  }
  if (wm == nullptr) {
    return Status::InvalidArgument("EnableCheckpoints: null working memory");
  }
  checkpoint_wm_ = wm;
  return Status::OK();
}

Status JournalFeed::RequestCheckpoint() {
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!durable_enabled_ || checkpoint_wm_ == nullptr) {
      return Status::InvalidArgument(
          "checkpointing is not enabled on this journal");
    }
    if (sync_failed_ || crashed_) {
      return Status::Internal("journal is failed; cannot checkpoint");
    }
  }
  checkpoint_requested_.store(true, std::memory_order_release);
  return Status::OK();
}

Status JournalFeed::WaitDurable(uint64_t seq,
                                std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (!durable_enabled_) return Status::OK();  // nothing promised, nothing owed
  cv_.wait_for(lock, timeout,
               [&] { return sync_failed_ || durable_seq_ > seq; });
  if (durable_seq_ > seq) return Status::OK();
  if (sync_failed_) {
    return Status::Internal(
        "journal sync failed; commit " + std::to_string(seq) +
        " is not durable (no member of its group was acknowledged)");
  }
  return Status::Internal("timed out waiting for commit " +
                          std::to_string(seq) + " to become durable");
}

uint64_t JournalFeed::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_seq_;
}

DurabilityStats JournalFeed::durability() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durability_stats_;
}

}  // namespace dbps
