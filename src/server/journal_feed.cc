#include "server/journal_feed.h"

#include <fcntl.h>
#include <unistd.h>

#include <algorithm>
#include <thread>
#include <utility>

#include "lang/journal.h"
#include "util/failpoint.h"

namespace dbps {

JournalFeed::~JournalFeed() {
  if (fd_ >= 0) ::close(fd_);
}

EngineObserver JournalFeed::MakeObserver(EngineObserver next) {
  return [this, next = std::move(next)](const EngineEvent& event) {
    if (event.kind == EngineEvent::Kind::kCommit && event.delta != nullptr) {
      AppendLine(*event.delta, event.seq);
    } else if (event.kind == EngineEvent::Kind::kBatchEnd) {
      std::unique_lock<std::mutex> lock(mu_);
      if (durable_enabled_ && durable_options_.group_commit &&
          !staged_.empty()) {
        SyncStaged(lock);
      }
    }
    if (next) next(event);
  };
}

void JournalFeed::Append(const Delta& delta) {
  // Cursor-only use (no engine seq available): synthesize the dense seq.
  std::unique_lock<std::mutex> lock(mu_);
  const uint64_t seq = lines_.size();
  lock.unlock();
  AppendLine(delta, seq);
}

void JournalFeed::AppendLine(const Delta& delta, uint64_t seq) {
  auto line_or = DeltaToJournalLine(delta);
  {
    std::unique_lock<std::mutex> lock(mu_);
    if (!line_or.ok()) {
      ++serialize_errors_;
      return;
    }
    lines_.push_back(line_or.ValueOrDie());
    if (durable_enabled_) {
      staged_.push_back(std::move(line_or).ValueOrDie());
      staged_high_seq_ = seq + 1;
      // Per-commit fsync mode: every commit is its own group of one.
      if (!durable_options_.group_commit) SyncStaged(lock);
    }
  }
  cv_.notify_all();
}

void JournalFeed::SyncStaged(std::unique_lock<std::mutex>& lock) {
  // The observer delivers commits from the engine's ordered commit stage
  // (one thread at a time), so holding mu_ across the write+fsync only
  // ever delays readers, never another writer.
  (void)lock;
  bool failed = sync_failed_;
  if (!failed) {
    // Chaos/durability site: the device fails the flush. The WHOLE group
    // stays un-durable — no partial ack — and the feed is failed for
    // good (later groups would leave a hole before them in the log).
    if (DBPS_FAILPOINT("server.journal.fsync_fail")) failed = true;
  }
  if (!failed && fd_ >= 0) {
    for (const std::string& line : staged_) {
      std::string buf = line + '\n';
      size_t off = 0;
      while (off < buf.size()) {
        const ssize_t n = ::write(fd_, buf.data() + off, buf.size() - off);
        if (n < 0) {
          failed = true;
          break;
        }
        off += static_cast<size_t>(n);
      }
      if (failed) break;
    }
    if (!failed && ::fsync(fd_) != 0) failed = true;
  }
  if (!failed) {
    // Delay-style site (sleep-safe) + configured device latency model.
    (void)DBPS_FAILPOINT("server.journal.fsync_delay");
    if (durable_options_.simulated_fsync_cost.count() > 0) {
      std::this_thread::sleep_for(durable_options_.simulated_fsync_cost);
    }
  }
  if (failed) {
    sync_failed_ = true;
    ++durability_stats_.sync_failures;
  } else {
    ++durability_stats_.fsyncs;
    durability_stats_.records_synced += staged_.size();
    durability_stats_.max_group =
        std::max<uint64_t>(durability_stats_.max_group, staged_.size());
    durable_seq_ = staged_high_seq_;
  }
  staged_.clear();
  cv_.notify_all();
}

size_t JournalFeed::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

std::vector<std::string> JournalFeed::LinesFrom(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cursor >= lines_.size()) return {};
  return std::vector<std::string>(lines_.begin() + cursor, lines_.end());
}

std::string JournalFeed::TextFrom(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (size_t i = cursor; i < lines_.size(); ++i) {
    out += lines_[i];
    out += '\n';
  }
  return out;
}

size_t JournalFeed::WaitForSize(size_t target,
                                std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return lines_.size() >= target; });
  return lines_.size();
}

uint64_t JournalFeed::serialize_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serialize_errors_;
}

Status JournalFeed::EnableDurability(DurabilityOptions options) {
  std::lock_guard<std::mutex> lock(mu_);
  if (durable_enabled_) {
    return Status::InvalidArgument("durability already enabled");
  }
  if (!options.path.empty()) {
    const int fd = ::open(options.path.c_str(),
                          O_CREAT | O_TRUNC | O_WRONLY | O_CLOEXEC, 0644);
    if (fd < 0) {
      return Status::Unavailable("cannot open journal file '" +
                                 options.path + "'");
    }
    fd_ = fd;
  }
  durable_options_ = std::move(options);
  durable_enabled_ = true;
  return Status::OK();
}

bool JournalFeed::durable_enabled() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_enabled_;
}

Status JournalFeed::WaitDurable(uint64_t seq,
                                std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  if (!durable_enabled_) return Status::OK();  // nothing promised, nothing owed
  cv_.wait_for(lock, timeout,
               [&] { return sync_failed_ || durable_seq_ > seq; });
  if (durable_seq_ > seq) return Status::OK();
  if (sync_failed_) {
    return Status::Internal(
        "journal sync failed; commit " + std::to_string(seq) +
        " is not durable (no member of its group was acknowledged)");
  }
  return Status::Internal("timed out waiting for commit " +
                          std::to_string(seq) + " to become durable");
}

uint64_t JournalFeed::durable_seq() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durable_seq_;
}

DurabilityStats JournalFeed::durability() const {
  std::lock_guard<std::mutex> lock(mu_);
  return durability_stats_;
}

}  // namespace dbps
