#include "server/journal_feed.h"

#include <utility>

#include "lang/journal.h"

namespace dbps {

EngineObserver JournalFeed::MakeObserver(EngineObserver next) {
  return [this, next = std::move(next)](const EngineEvent& event) {
    if (event.kind == EngineEvent::Kind::kCommit && event.delta != nullptr) {
      Append(*event.delta);
    }
    if (next) next(event);
  };
}

void JournalFeed::Append(const Delta& delta) {
  auto line_or = DeltaToJournalLine(delta);
  {
    std::lock_guard<std::mutex> lock(mu_);
    if (!line_or.ok()) {
      ++serialize_errors_;
      return;
    }
    lines_.push_back(std::move(line_or).ValueOrDie());
  }
  cv_.notify_all();
}

size_t JournalFeed::size() const {
  std::lock_guard<std::mutex> lock(mu_);
  return lines_.size();
}

std::vector<std::string> JournalFeed::LinesFrom(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  if (cursor >= lines_.size()) return {};
  return std::vector<std::string>(lines_.begin() + cursor, lines_.end());
}

std::string JournalFeed::TextFrom(size_t cursor) const {
  std::lock_guard<std::mutex> lock(mu_);
  std::string out;
  for (size_t i = cursor; i < lines_.size(); ++i) {
    out += lines_[i];
    out += '\n';
  }
  return out;
}

size_t JournalFeed::WaitForSize(size_t target,
                                std::chrono::milliseconds timeout) const {
  std::unique_lock<std::mutex> lock(mu_);
  cv_.wait_for(lock, timeout, [&] { return lines_.size() >= target; });
  return lines_.size();
}

uint64_t JournalFeed::serialize_errors() const {
  std::lock_guard<std::mutex> lock(mu_);
  return serialize_errors_;
}

}  // namespace dbps
