// JournalFeed: the durability fan-out of the server.
//
// One feed accumulates every committed delta — rule firings and external
// client transactions alike — as journal lines (lang/journal.h format),
// in commit order. Install MakeObserver() as the engine's observer:
// commit events are delivered under the engine's commit lock, so the
// feed's order IS the commit order, and replaying its text against the
// initial working memory reproduces the final database exactly.
//
// Sessions subscribe by keeping a cursor (an index into the line
// sequence) and draining LinesFrom(cursor) — e.g. to ship lines to disk
// or a replica. The feed never drops lines; bound its growth by draining.
//
// Durability / group commit: EnableDurability() turns the feed into the
// engine's write-ahead log. Every kCommit event's line is wrapped in a
// checksummed frame (lang/wal.h: [u32 len][u32 crc32][u64 seq][u8 type]
// [payload]) and written to the log file (or an in-memory simulated
// device when no path is given), then made durable with an fsync; a
// commit is acknowledged to its client (Session::Commit returns) only
// once its record is durable. The in-memory feed (LinesFrom/TextFrom)
// stays plain text — the frame exists only on disk, where recovery
// (server/recovery.h) needs checksums and sequence numbers to tell a
// crash-torn tail from valid history. With group_commit=true the fsync
// is amortized over the commit sequencer's already-batched ticket
// groups: records accumulate across one engine commit batch and the
// kBatchEnd boundary event issues ONE fsync for all of them, then every
// member commit is releasable at once — the journal payload bytes and
// order are identical to per-commit fsync mode, only the fsync count
// drops (by roughly the mean commit batch size). A failed fsync aborts
// the whole group's acknowledgement: none of the batch's commits becomes
// durable, WaitDurable reports the failure for every member, and the
// feed stays failed (a write-ahead log with a hole must not ack anything
// later, either).
//
// Checkpoints: EnableCheckpoints() lets the feed write snapshot
// checkpoint records (printer.h CheckpointToSource) into the same log.
// A checkpoint is only captured at a kBatchEnd boundary — the one point
// where the working memory is exactly the replay of every record already
// in the log (the engine's head thread has applied all earlier commits
// and released none of the next batch) — so the checkpoint's fence seq
// is precise by construction. Request one explicitly (RequestCheckpoint,
// the admin verb) or automatically every checkpoint_every records.

#ifndef DBPS_SERVER_JOURNAL_FEED_H_
#define DBPS_SERVER_JOURNAL_FEED_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "engine/engine.h"
#include "lang/wal.h"
#include "util/status.h"
#include "wm/delta.h"

namespace dbps {

class WorkingMemory;

/// \brief How EnableDurability treats an existing file at `path`.
enum class JournalOpenMode : uint8_t {
  /// Open for append, creating if absent. The default: a restarted
  /// server must extend its journal, not destroy the history recovery
  /// depends on.
  kAppend,
  /// Truncate any existing file (fresh runs, tests, benches).
  kTruncate,
  /// Fail with AlreadyExists if the file exists — for callers that must
  /// never clobber and never silently continue someone else's log.
  kFailIfExists,
};

const char* JournalOpenModeToString(JournalOpenMode mode);

/// \brief How EnableDurability persists the journal.
struct DurabilityOptions {
  /// Log file path. Empty: no real file — writes and fsyncs are simulated
  /// in memory, which keeps the ack protocol and counters exact without
  /// disk I/O (benches, loopback smoke).
  std::string path;
  JournalOpenMode open_mode = JournalOpenMode::kAppend;
  /// Fsync once per engine commit batch (at kBatchEnd) instead of once
  /// per commit. Requires the observer to receive kBatchEnd events (all
  /// engines emit them).
  bool group_commit = false;
  /// Added to every (real or simulated) fsync — models device latency so
  /// group-commit amortization is measurable on fast filesystems.
  std::chrono::microseconds simulated_fsync_cost{0};
  /// First commit seq this feed will observe — non-zero after recovery,
  /// when the reopened journal already holds seqs [.., start_seq).
  /// Initializes the durable horizon, so WaitDurable on an already-
  /// recovered seq returns immediately.
  uint64_t start_seq = 0;
  /// Write a checkpoint record automatically once this many delta
  /// records accumulated since the last one (0 = only on request).
  /// Requires EnableCheckpoints.
  size_t checkpoint_every = 0;
  /// Adaptive group-commit flush (group_commit only): when the OLDEST
  /// staged record has waited this long without a kBatchEnd fsync, a
  /// background flusher thread syncs the group early, so a stalled batch
  /// (slow firing, idle engine) cannot hold earlier commits' durability
  /// hostage indefinitely. 0 disables (flush only at batch boundaries).
  std::chrono::milliseconds flush_deadline{0};
};

/// \brief Durability counters (all zero until EnableDurability).
struct DurabilityStats {
  uint64_t fsyncs = 0;          ///< successful fsync calls (real or simulated)
  uint64_t records_synced = 0;  ///< journal records made durable
  uint64_t sync_failures = 0;   ///< failed fsyncs (each fails a whole group)
  uint64_t max_group = 0;       ///< most records covered by one fsync
  uint64_t bytes_written = 0;   ///< framed bytes written to the device
  uint64_t checkpoints_written = 0;  ///< checkpoint records made durable
  /// Checkpoints skipped because the state would not serialize (printer
  /// limits). Nothing reaches the disk, so skipping is safe.
  uint64_t checkpoint_render_failures = 0;
  /// Simulated crashes injected by the server.journal.crash_* failpoints
  /// (the device "died" mid-group; the feed is failed thereafter).
  uint64_t injected_crashes = 0;
  /// Groups fsynced by the adaptive flusher because the oldest staged
  /// record outwaited flush_deadline (group commit stalled mid-batch).
  uint64_t deadline_flushes = 0;
  /// Mean records per fsync — the group-commit amortization factor; its
  /// inverse is the bench's fsyncs-per-commit figure.
  double MeanGroup() const {
    return fsyncs == 0 ? 0.0 : static_cast<double>(records_synced) / fsyncs;
  }
};

class JournalFeed {
 public:
  JournalFeed() = default;
  ~JournalFeed();
  JournalFeed(const JournalFeed&) = delete;
  JournalFeed& operator=(const JournalFeed&) = delete;

  /// An engine observer that appends every kCommit delta to this feed and
  /// then forwards the event to `next` (chain a user observer through).
  /// With durability enabled it also writes/fsyncs per the configured
  /// mode (kBatchEnd triggers the group fsync and any due checkpoint).
  EngineObserver MakeObserver(EngineObserver next = nullptr);

  /// Appends one committed delta as a journal line. Serialization
  /// failures are counted, not propagated (the commit already happened).
  void Append(const Delta& delta);

  size_t size() const;

  /// Lines [cursor, size()). The caller owns and advances its cursor.
  std::vector<std::string> LinesFrom(size_t cursor) const;

  /// Newline-joined text of lines [cursor, size()); TextFrom(0) is the
  /// whole journal, directly replayable via ReplayJournal().
  std::string TextFrom(size_t cursor) const;

  /// Blocks until size() >= target or `timeout` elapses; returns the
  /// current size either way.
  size_t WaitForSize(size_t target, std::chrono::milliseconds timeout) const;

  uint64_t serialize_errors() const;

  // --- Durability / group commit ----------------------------------------

  /// Arms the durability path (before the run starts). Opens
  /// `options.path` when given, honouring options.open_mode (default:
  /// append — restarts extend history). Not idempotent; call once per
  /// feed.
  Status EnableDurability(DurabilityOptions options);

  bool durable_enabled() const;

  /// Blocks until the commit with engine sequence `seq` is fsync-durable,
  /// the feed reports a sync failure, or `timeout` elapses. OK only on
  /// durable; Internal("journal sync failed...") after a failed fsync —
  /// the caller must not acknowledge the commit. With group commit the
  /// engine fsyncs inside the batch boundary before commits are released,
  /// so by the time a committer can call this the verdict is usually
  /// already in and the wait is free.
  Status WaitDurable(uint64_t seq, std::chrono::milliseconds timeout) const;

  /// Engine commit sequences strictly below this are durable.
  uint64_t durable_seq() const;

  DurabilityStats durability() const;

  // --- Checkpoints -------------------------------------------------------

  /// Arms checkpoint capture: `wm` is the engine's working memory (not
  /// owned; must outlive the run). Call before the run, after
  /// EnableDurability. Checkpoints are captured only at batch
  /// boundaries, where `wm` equals the exact replay of the log so far.
  Status EnableCheckpoints(const WorkingMemory* wm);

  /// Schedules a checkpoint at the NEXT commit-batch boundary (the admin
  /// verb). Returns InvalidArgument when durability or checkpoints are
  /// not enabled. The write itself happens on the engine thread; a
  /// request on an idle engine waits for the next commit.
  Status RequestCheckpoint();

 private:
  /// Appends under mu_ and, when durability is armed, stages the record
  /// for sync; `seq` is the engine commit sequence (dense; equals the
  /// line index plus start_seq for a feed observing from the start).
  /// `audit` (nullable) is the commit's audit evidence; when present the
  /// line carries it as an audit comment (audit/audit_record.h) — the
  /// SAME rendered string goes to lines_ and to the WAL payload, so the
  /// in-memory feed, the disk log, and the offline auditor all see one
  /// representation.
  void AppendLine(const Delta& delta, uint64_t seq, const TxnAudit* audit);

  /// Writes + fsyncs every staged record (one group). On failure marks
  /// the feed sync-failed — staged records are NOT marked durable. Called
  /// with mu_ held; the write/fsync happens under it by design: the
  /// observer runs on the engine's ordered commit stage, so nothing else
  /// contends, and readers see durable_seq_ advance atomically with the
  /// fsync. Evaluates the server.journal.crash_after_write /
  /// crash_mid_record failpoints (simulated process death: bytes may
  /// reach the file, the ack never happens, the feed is dead after).
  void SyncStaged(std::unique_lock<std::mutex>& lock);

  /// Writes a checkpoint record at fence `seq` if one is due (requested,
  /// or checkpoint_every reached). Called at kBatchEnd with mu_ held.
  void MaybeWriteCheckpoint(std::unique_lock<std::mutex>& lock,
                            uint64_t seq);

  /// Writes one framed record + fsync to the device; false = the device
  /// failed (caller marks the feed sync-failed). Requires mu_.
  bool WriteFramedLocked(const WalRecord& record);

  /// Adaptive flusher body (group_commit + flush_deadline only): sleeps
  /// until the oldest staged record's deadline, then SyncStaged()s the
  /// group if the engine's kBatchEnd has not flushed it first. Serialized
  /// with the observer by mu_.
  void FlusherLoop();

  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<std::string> lines_;
  uint64_t serialize_errors_ = 0;

  // Durability state (all under mu_).
  bool durable_enabled_ = false;
  DurabilityOptions durable_options_;
  int fd_ = -1;                       ///< -1: simulated device
  std::vector<WalRecord> staged_;     ///< appended, not yet fsynced
  uint64_t staged_high_seq_ = 0;      ///< seq high-water of staged_
  /// When the current group's FIRST record was staged (flush-deadline
  /// clock; meaningful only while staged_ is non-empty).
  std::chrono::steady_clock::time_point staged_since_{};
  std::thread flusher_;               ///< adaptive flusher (may be empty)
  bool flusher_stop_ = false;         ///< under mu_
  uint64_t durable_seq_ = 0;          ///< commits below this are durable
  bool sync_failed_ = false;          ///< sticky: a group fsync failed
  bool crashed_ = false;              ///< sticky: injected device death
  DurabilityStats durability_stats_;

  // Checkpoint state.
  const WorkingMemory* checkpoint_wm_ = nullptr;  ///< armed when non-null
  std::atomic<bool> checkpoint_requested_{false};
  uint64_t records_since_checkpoint_ = 0;  ///< under mu_
};

}  // namespace dbps

#endif  // DBPS_SERVER_JOURNAL_FEED_H_
