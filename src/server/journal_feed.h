// JournalFeed: the durability fan-out of the server.
//
// One feed accumulates every committed delta — rule firings and external
// client transactions alike — as journal lines (lang/journal.h format),
// in commit order. Install MakeObserver() as the engine's observer:
// commit events are delivered under the engine's commit lock, so the
// feed's order IS the commit order, and replaying its text against the
// initial working memory reproduces the final database exactly.
//
// Sessions subscribe by keeping a cursor (an index into the line
// sequence) and draining LinesFrom(cursor) — e.g. to ship lines to disk
// or a replica. The feed never drops lines; bound its growth by draining.

#ifndef DBPS_SERVER_JOURNAL_FEED_H_
#define DBPS_SERVER_JOURNAL_FEED_H_

#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>
#include <vector>

#include "engine/engine.h"
#include "wm/delta.h"

namespace dbps {

class JournalFeed {
 public:
  JournalFeed() = default;
  JournalFeed(const JournalFeed&) = delete;
  JournalFeed& operator=(const JournalFeed&) = delete;

  /// An engine observer that appends every kCommit delta to this feed and
  /// then forwards the event to `next` (chain a user observer through).
  EngineObserver MakeObserver(EngineObserver next = nullptr);

  /// Appends one committed delta as a journal line. Serialization
  /// failures are counted, not propagated (the commit already happened).
  void Append(const Delta& delta);

  size_t size() const;

  /// Lines [cursor, size()). The caller owns and advances its cursor.
  std::vector<std::string> LinesFrom(size_t cursor) const;

  /// Newline-joined text of lines [cursor, size()); TextFrom(0) is the
  /// whole journal, directly replayable via ReplayJournal().
  std::string TextFrom(size_t cursor) const;

  /// Blocks until size() >= target or `timeout` elapses; returns the
  /// current size either way.
  size_t WaitForSize(size_t target, std::chrono::milliseconds timeout) const;

  uint64_t serialize_errors() const;

 private:
  mutable std::mutex mu_;
  mutable std::condition_variable cv_;
  std::vector<std::string> lines_;
  uint64_t serialize_errors_ = 0;
};

}  // namespace dbps

#endif  // DBPS_SERVER_JOURNAL_FEED_H_
