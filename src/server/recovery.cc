#include "server/recovery.h"

#include <fcntl.h>
#include <sys/stat.h>
#include <unistd.h>

#include <algorithm>
#include <utility>
#include <vector>

#include "lang/journal.h"
#include "lang/lexer.h"
#include "util/string_util.h"
#include "value/symbol_table.h"

namespace dbps {

namespace {

bool AttrTypeFromString(const std::string& name, AttrType* out) {
  if (name == "any") *out = AttrType::kAny;
  else if (name == "int") *out = AttrType::kInt;
  else if (name == "float") *out = AttrType::kFloat;
  else if (name == "symbol") *out = AttrType::kSymbol;
  else if (name == "string") *out = AttrType::kString;
  else if (name == "number") *out = AttrType::kNumber;
  else return false;
  return true;
}

/// Parses a CheckpointToSource payload and rebuilds `wm` from it (the WM
/// is wiped first). The payload's s-expressions reuse the rule-language
/// lexer; the grammar is fixed, so anything unexpected is corruption that
/// slipped past the CRC — fail loudly rather than restore half a state.
class CheckpointRestorer {
 public:
  CheckpointRestorer(std::string_view payload, WorkingMemory* wm)
      : payload_(payload), wm_(wm) {}

  Status Run() {
    DBPS_ASSIGN_OR_RETURN(tokens_, Lex(payload_));
    DBPS_RETURN_NOT_OK(ParseHeader());
    wm_->ClearForRestore();
    while (!AtEnd()) {
      DBPS_RETURN_NOT_OK(Expect(TokenType::kLParen));
      DBPS_ASSIGN_OR_RETURN(std::string head, ExpectSymbol());
      if (head == "relation") {
        DBPS_RETURN_NOT_OK(ParseRelation());
      } else if (head == "wme") {
        DBPS_RETURN_NOT_OK(ParseWme());
      } else {
        return Corrupt("unexpected form '" + head + "'");
      }
    }
    wm_->RestoreCounters(next_id_, next_tag_, csn_);
    return Status::OK();
  }

 private:
  Status ParseHeader() {
    DBPS_RETURN_NOT_OK(Expect(TokenType::kLParen));
    DBPS_ASSIGN_OR_RETURN(std::string head, ExpectSymbol());
    if (head != "checkpoint") return Corrupt("missing (checkpoint ...) head");
    DBPS_ASSIGN_OR_RETURN(seq_, ExpectNamedInt("seq"));
    DBPS_ASSIGN_OR_RETURN(csn_, ExpectNamedInt("csn"));
    DBPS_ASSIGN_OR_RETURN(next_id_, ExpectNamedInt("next-id"));
    DBPS_ASSIGN_OR_RETURN(next_tag_, ExpectNamedInt("next-tag"));
    return Expect(TokenType::kRParen);
  }

  Status ParseRelation() {
    DBPS_ASSIGN_OR_RETURN(std::string name, ExpectSymbol());
    std::vector<std::pair<std::string, AttrType>> attrs;
    while (Peek().type == TokenType::kLParen) {
      Advance();
      DBPS_ASSIGN_OR_RETURN(std::string attr, ExpectSymbol());
      DBPS_ASSIGN_OR_RETURN(std::string type_name, ExpectSymbol());
      AttrType type;
      if (!AttrTypeFromString(type_name, &type)) {
        return Corrupt("unknown attribute type '" + type_name + "'");
      }
      attrs.emplace_back(std::move(attr), type);
      DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    }
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    // The running program usually declared this relation already (the
    // checkpoint came from the same program); only add what's missing.
    if (!wm_->catalog().HasRelation(Sym(name))) {
      return wm_->CreateRelation(name, attrs);
    }
    return Status::OK();
  }

  Status ParseWme() {
    DBPS_ASSIGN_OR_RETURN(uint64_t id, ExpectInt());
    DBPS_ASSIGN_OR_RETURN(uint64_t tag, ExpectInt());
    DBPS_ASSIGN_OR_RETURN(std::string relation, ExpectSymbol());
    std::vector<Value> values;
    while (Peek().type != TokenType::kRParen &&
           Peek().type != TokenType::kEof) {
      DBPS_ASSIGN_OR_RETURN(Value v, ParseValue());
      values.push_back(std::move(v));
    }
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return wm_->RestoreWme(Sym(relation), id, tag, std::move(values));
  }

  StatusOr<Value> ParseValue() {
    const Token& t = Peek();
    switch (t.type) {
      case TokenType::kInt:
        Advance();
        return Value::Int(t.int_value);
      case TokenType::kFloat:
        Advance();
        return Value::Float(t.float_value);
      case TokenType::kString:
        Advance();
        return Value::String(t.text);
      case TokenType::kSymbol: {
        Advance();
        if (t.text == "nil") return Value::Nil();
        return Value::Symbol(t.text);
      }
      default:
        return Corrupt(StringPrintf("unexpected %s in wme tuple",
                                    TokenTypeToString(t.type)));
    }
  }

  StatusOr<uint64_t> ExpectNamedInt(const char* name) {
    DBPS_RETURN_NOT_OK(Expect(TokenType::kLParen));
    DBPS_ASSIGN_OR_RETURN(std::string head, ExpectSymbol());
    if (head != name) {
      return Corrupt(StringPrintf("expected (%s ...), got (%s ...)", name,
                                  head.c_str()));
    }
    DBPS_ASSIGN_OR_RETURN(uint64_t value, ExpectInt());
    DBPS_RETURN_NOT_OK(Expect(TokenType::kRParen));
    return value;
  }

  StatusOr<uint64_t> ExpectInt() {
    const Token& t = Peek();
    if (t.type != TokenType::kInt || t.int_value < 0) {
      return Corrupt("expected a non-negative integer");
    }
    Advance();
    return static_cast<uint64_t>(t.int_value);
  }

  StatusOr<std::string> ExpectSymbol() {
    const Token& t = Peek();
    if (t.type != TokenType::kSymbol) {
      return Corrupt(StringPrintf("expected a symbol, got %s",
                                  TokenTypeToString(t.type)));
    }
    Advance();
    return t.text;
  }

  Status Expect(TokenType type) {
    if (Peek().type != type) {
      return Corrupt(StringPrintf("expected %s, got %s",
                                  TokenTypeToString(type),
                                  TokenTypeToString(Peek().type)));
    }
    Advance();
    return Status::OK();
  }

  const Token& Peek() const { return tokens_[pos_]; }
  void Advance() {
    if (tokens_[pos_].type != TokenType::kEof) ++pos_;
  }
  bool AtEnd() const { return Peek().type == TokenType::kEof; }

  Status Corrupt(std::string detail) const {
    return Status::ParseError("checkpoint record: " + detail);
  }

  std::string_view payload_;
  WorkingMemory* wm_;
  std::vector<Token> tokens_;
  size_t pos_ = 0;
  uint64_t seq_ = 0;
  uint64_t csn_ = 0;
  uint64_t next_id_ = 0;
  uint64_t next_tag_ = 0;
};

Status TruncateFile(const std::string& path, uint64_t size) {
  const int fd = ::open(path.c_str(), O_WRONLY | O_CLOEXEC);
  if (fd < 0) {
    return Status::Unavailable("cannot reopen journal '" + path +
                               "' for truncation");
  }
  const int rc = ::ftruncate(fd, static_cast<off_t>(size));
  if (rc == 0) ::fsync(fd);
  ::close(fd);
  if (rc != 0) {
    return Status::Unavailable("cannot truncate journal '" + path + "'");
  }
  return Status::OK();
}

void FillScanStats(const WalScan& scan, RecoveryStats* stats) {
  stats->records_scanned = scan.records.size();
  stats->bytes_scanned = scan.valid_bytes;
  stats->bytes_truncated = scan.truncated_bytes;
  stats->tail = scan.tail;
  for (const WalRecord& record : scan.records) {
    if (record.type == WalRecordType::kDelta) {
      ++stats->delta_records;
    } else {
      ++stats->checkpoint_records;
    }
  }
}

}  // namespace

std::string RecoveryStats::ToString() const {
  std::string out = StringPrintf(
      "scanned %llu records (%llu deltas, %llu checkpoints) in %llu bytes",
      (unsigned long long)records_scanned, (unsigned long long)delta_records,
      (unsigned long long)checkpoint_records, (unsigned long long)bytes_scanned);
  if (bytes_truncated > 0 || tail != WalTail::kClean) {
    out += StringPrintf("; truncated %llu-byte %s tail",
                        (unsigned long long)bytes_truncated,
                        WalTailToString(tail));
  }
  if (used_checkpoint) {
    out += StringPrintf("; restored checkpoint at seq %llu",
                        (unsigned long long)checkpoint_seq);
  }
  out += StringPrintf("; replayed %llu deltas; next seq %llu",
                      (unsigned long long)replayed_deltas,
                      (unsigned long long)next_seq);
  return out;
}

std::string RecoveryManager::JournalFileInDir(const std::string& dir) {
  if (dir.empty() || dir.back() == '/') return dir + "journal.wal";
  return dir + "/journal.wal";
}

StatusOr<RecoveryStats> RecoveryManager::Validate() const {
  RecoveryStats stats;
  DBPS_ASSIGN_OR_RETURN(WalIterator it, WalIterator::OpenFile(path_));
  if (it.file_missing()) return stats;
  const WalScan& scan = it.scan();
  FillScanStats(scan, &stats);
  uint64_t next_seq = 0;
  for (const WalRecord& record : scan.records) {
    next_seq = record.type == WalRecordType::kDelta ? record.seq + 1
                                                    : record.seq;
    if (record.type == WalRecordType::kCheckpoint) {
      stats.used_checkpoint = true;
      stats.checkpoint_seq = record.seq;
    }
  }
  stats.next_seq = next_seq;
  return stats;
}

StatusOr<RecoveryStats> RecoveryManager::Recover(WorkingMemory* wm) {
  RecoveryStats stats;
  DBPS_ASSIGN_OR_RETURN(WalIterator it, WalIterator::OpenFile(path_));
  if (it.file_missing()) return stats;  // fresh start: nothing durable yet

  const WalScan& scan = it.scan();
  FillScanStats(scan, &stats);

  // Drop the invalid tail on disk FIRST: recovery must leave a journal
  // that scans clean, and the restarted feed appends where the valid
  // prefix ends. A torn final frame is the normal crash shape; corruption
  // earlier in the file costs the suffix from that point either way.
  if (scan.truncated_bytes > 0) {
    DBPS_RETURN_NOT_OK(TruncateFile(path_, scan.valid_bytes));
  }

  // Find the newest checkpoint; everything before its fence is already
  // folded into it.
  ptrdiff_t checkpoint_index = -1;
  for (size_t i = 0; i < scan.records.size(); ++i) {
    if (scan.records[i].type == WalRecordType::kCheckpoint) {
      checkpoint_index = static_cast<ptrdiff_t>(i);
    }
  }

  uint64_t next_seq = 0;
  if (checkpoint_index >= 0) {
    const WalRecord& checkpoint = scan.records[checkpoint_index];
    DBPS_RETURN_NOT_OK(CheckpointRestorer(checkpoint.payload, wm).Run());
    stats.used_checkpoint = true;
    stats.checkpoint_seq = checkpoint.seq;
    next_seq = checkpoint.seq;
  } else if (!scan.records.empty() && scan.records.front().seq != 0) {
    return Status::InvalidArgument(StringPrintf(
        "journal '%s' begins at seq %llu with no checkpoint; the history "
        "needed to replay it is gone",
        path_.c_str(), (unsigned long long)scan.records.front().seq));
  }

  for (size_t i = static_cast<size_t>(checkpoint_index + 1);
       i < scan.records.size(); ++i) {
    const WalRecord& record = scan.records[i];
    if (record.type != WalRecordType::kDelta) continue;
    DBPS_ASSIGN_OR_RETURN(Delta delta, DeltaFromJournalLine(record.payload));
    auto change_or = wm->Apply(delta);
    if (!change_or.ok()) {
      return Status::Internal(StringPrintf(
          "journal '%s': delta at seq %llu no longer applies: %s",
          path_.c_str(), (unsigned long long)record.seq,
          change_or.status().ToString().c_str()));
    }
    ++stats.replayed_deltas;
    next_seq = record.seq + 1;
  }
  stats.next_seq = next_seq;
  return stats;
}

std::string CanonicalWmDump(const WorkingMemory& wm) {
  std::string out = StringPrintf(
      "counters next-id=%llu next-tag=%llu csn=%llu\n",
      (unsigned long long)wm.next_id(), (unsigned long long)wm.next_tag(),
      (unsigned long long)wm.csn());
  for (SymbolId relation : wm.catalog().relation_names()) {
    std::vector<WmePtr> wmes = wm.Scan(relation);
    std::sort(wmes.begin(), wmes.end(), [](const WmePtr& a, const WmePtr& b) {
      return a->id() < b->id();
    });
    for (const WmePtr& wme : wmes) {
      out += StringPrintf("%llu %llu %s", (unsigned long long)wme->id(),
                          (unsigned long long)wme->tag(),
                          SymName(relation).c_str());
      for (size_t field = 0; field < wme->arity(); ++field) {
        out += " " + wme->value(field).ToString();
      }
      out += "\n";
    }
  }
  return out;
}

}  // namespace dbps
