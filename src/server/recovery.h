// RecoveryManager: crash recovery from a checksummed journal.
//
// The durable journal (server/journal_feed.h with a file path) is a
// write-ahead log of framed records (lang/wal.h): delta records carrying
// journal lines (lang/journal.h) plus snapshot checkpoint records
// (lang/printer.h CheckpointToSource). After a crash — a kill -9, a torn
// final write, a power cut mid-record — RecoveryManager rebuilds the
// database exactly as the clients saw it:
//
//   1. Scan the log forward validating every frame's length, CRC-32, and
//      sequence continuity.
//   2. Truncate the invalid tail. A partial final frame is the expected
//      crash shape (the write was cut mid-record), not an error; a
//      checksum mismatch earlier in the file is real corruption, and the
//      suffix from that point is likewise dropped. Either way the
//      retained prefix is exactly the fsync-durable history, and every
//      ACKNOWLEDGED commit lives in that prefix (the feed only releases
//      an ack after its group's fsync returned).
//   3. Restore the latest checkpoint, if any: wipe the working memory
//      and rebuild WMEs with their ORIGINAL ids and time tags (deltas
//      after the checkpoint reference them), plus the id/tag/CSN
//      counters.
//   4. Replay every delta record past the checkpoint fence.
//
// The returned stats carry next_seq: the engine restarts with
// ParallelEngineOptions::start_seq = next_seq and the reopened feed with
// DurabilityOptions{open_mode = kAppend, start_seq = next_seq}, so new
// commits extend the same log with contiguous sequence numbers.

#ifndef DBPS_SERVER_RECOVERY_H_
#define DBPS_SERVER_RECOVERY_H_

#include <cstdint>
#include <string>

#include "lang/wal.h"
#include "util/status.h"
#include "util/statusor.h"
#include "wm/working_memory.h"

namespace dbps {

/// \brief What one recovery pass found and did.
struct RecoveryStats {
  uint64_t records_scanned = 0;     ///< valid frames (deltas + checkpoints)
  uint64_t delta_records = 0;
  uint64_t checkpoint_records = 0;
  uint64_t bytes_scanned = 0;       ///< valid prefix length
  uint64_t bytes_truncated = 0;     ///< dropped tail length
  WalTail tail = WalTail::kClean;   ///< why the tail (if any) was dropped
  bool used_checkpoint = false;
  uint64_t checkpoint_seq = 0;      ///< fence of the checkpoint used
  uint64_t replayed_deltas = 0;     ///< deltas applied past the fence
  uint64_t next_seq = 0;            ///< first seq for the restarted engine

  /// One-line human-readable summary (startup banner).
  std::string ToString() const;
};

/// \brief Opens a journal file and recovers working-memory state from it.
class RecoveryManager {
 public:
  /// `path` is the journal FILE (use JournalFileInDir for the standard
  /// per-directory layout the tools' --journal-dir flag uses).
  explicit RecoveryManager(std::string path) : path_(std::move(path)) {}

  /// The canonical journal file inside a journal directory.
  static std::string JournalFileInDir(const std::string& dir);

  /// Full recovery: scan, truncate the invalid tail ON DISK, rebuild
  /// `wm` (checkpoint restore + delta replay). A missing file is a
  /// fresh start (empty stats, next_seq 0), not an error. `wm` must hold
  /// the program's initial state (schema + initial facts): a journal
  /// with no checkpoint replays on top of it; a checkpoint replaces its
  /// facts outright. Fails — with `wm` possibly half-rebuilt — only on
  /// real damage: a delta that no longer applies, an unparseable
  /// checkpoint, or a log that starts mid-history (first delta seq > 0
  /// with no preceding checkpoint).
  StatusOr<RecoveryStats> Recover(WorkingMemory* wm);

  /// Scan-only validation: same stats as Recover but NOTHING is
  /// modified — no truncation, no replay. After a Recover, a Validate of
  /// the same file must report a clean tail and zero truncated bytes
  /// (the chaos suite's replay-validation check).
  StatusOr<RecoveryStats> Validate() const;

 private:
  std::string path_;
};

/// Deterministic, never-failing dump of the full working-memory state —
/// ids, time tags, counters, and every live tuple in (catalog, id)
/// order. Two WorkingMemories are equivalent for recovery purposes iff
/// their dumps are byte-identical; chaos tests compare a recovered WM
/// against an independent full-journal replay with it.
std::string CanonicalWmDump(const WorkingMemory& wm);

}  // namespace dbps

#endif  // DBPS_SERVER_RECOVERY_H_
