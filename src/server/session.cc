#include "server/session.h"

#include <algorithm>
#include <utility>

#include "analysis/lock_sets.h"
#include "server/journal_feed.h"
#include "engine/busy_work.h"
#include "server/session_manager.h"
#include "util/failpoint.h"
#include "util/logging.h"
#include "wm/working_memory.h"

namespace dbps {

Session::Session(SessionManager* manager, std::string name, uint64_t id,
                 SessionOptions options)
    : manager_(manager),
      engine_(manager->engine()),
      wm_(manager->wm()),
      name_(std::move(name)),
      id_(id),
      options_(options),
      client_key_(MakeClientKey(name_)),
      rng_(id) {
  DBPS_CHECK(engine_ != nullptr);
}

Session::~Session() { Close(); }

Status Session::Begin() {
  if (!open_) return Status::Unavailable("session is closed");
  if (in_txn_) {
    return Status::InvalidArgument("transaction already open");
  }
  DBPS_RETURN_NOT_OK(
      manager_->txn_gate().Enter(options_.txn_admission_timeout));
  auto txn_or = engine_->BeginExternal();
  if (!txn_or.ok()) {
    manager_->txn_gate().Leave();
    return txn_or.status();
  }
  txn_ = txn_or.ValueOrDie();
  pending_ = Delta();
  read_set_ = TxnReadSet();
  read_set_.snapshot = options_.snapshot_reads;
  if (options_.snapshot_reads) {
    snapshot_ = wm_->SnapshotAt();
    read_set_.read_csn = snapshot_.csn();
  }
  in_txn_ = true;
  ++stats_.begins;
  return Status::OK();
}

StatusOr<std::vector<WmePtr>> Session::Read(std::string_view relation) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  const SymbolId rel = Sym(relation);
  if (!wm_->catalog().HasRelation(rel)) {
    return Status::NotFound("unknown relation '" + std::string(relation) +
                            "'");
  }
  if (options_.snapshot_reads) {
    // Serve from the CSN snapshot pinned at Begin() — no locks, stable
    // across any number of concurrent commit batches.
    std::vector<WmePtr> rows = snapshot_.Scan(rel);
    for (const WmePtr& row : rows) {
      read_set_.reads.emplace_back(row->id(), row->tag());
    }
    ++stats_.reads;
    return rows;
  }
  if (options_.repeatable_reads) {
    Status st = engine_->AcquireExternal(
        txn_, LockObjectId{rel, kRelationLevel}, LockMode::kRc);
    if (!st.ok()) return FailTxn(std::move(st));
  }
  ++stats_.reads;
  std::vector<WmePtr> rows = wm_->Scan(rel);
  if (options_.repeatable_reads) {
    // Rc-protected reads are audit evidence: record the exact versions so
    // the offline auditor can check they were still current at commit.
    for (const WmePtr& row : rows) {
      read_set_.reads.emplace_back(row->id(), row->tag());
    }
  }
  return rows;
}

StatusOr<std::vector<QueryRow>> Session::Query(std::string_view lhs) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  if (options_.snapshot_reads) {
    return Status::InvalidArgument(
        "Query is unavailable in snapshot_reads mode (queries evaluate "
        "against live working memory); use Read");
  }
  if (options_.repeatable_reads) {
    // Lock every relation the query touches before evaluating, so the
    // answer stays valid until commit (or we become a §4.3 victim).
    DBPS_ASSIGN_OR_RETURN(std::vector<SymbolId> relations,
                          QueryRelations(*wm_, lhs));
    for (SymbolId rel : relations) {
      Status st = engine_->AcquireExternal(
          txn_, LockObjectId{rel, kRelationLevel}, LockMode::kRc);
      if (!st.ok()) return FailTxn(std::move(st));
    }
  }
  ++stats_.queries;
  auto rows_or = ExecuteQuery(*wm_, lhs);
  if (rows_or.ok() && options_.repeatable_reads) {
    for (const QueryRow& row : rows_or.ValueOrDie()) {
      for (const WmePtr& wme : row) {
        read_set_.reads.emplace_back(wme->id(), wme->tag());
      }
    }
  }
  return rows_or;
}

Status Session::Write(const Delta& delta) {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  auto locks_or = DeltaActionLocks(*wm_, delta, txn_);
  if (!locks_or.ok()) return FailTxn(locks_or.status());
  for (const LockRequest& request : locks_or.ValueOrDie()) {
    Status st = engine_->AcquireExternal(txn_, request.object, request.mode);
    if (!st.ok()) return FailTxn(std::move(st));
  }
  pending_.Append(delta);
  stats_.write_ops += delta.ops().size();
  return Status::OK();
}

StatusOr<uint64_t> Session::Commit() {
  if (!in_txn_) return Status::InvalidArgument("no open transaction");
  // Chaos site: the connection drops mid-transaction, right at commit.
  // Surfaced as kAborted so Perform() treats it as transient.
  if (DBPS_FAILPOINT("server.session.drop")) {
    return FailTxn(Status::Aborted("injected session drop"));
  }
  const bool had_writes = !pending_.empty();
  // Deduplicate the observed versions before handing them to the commit
  // as audit evidence (repeated Reads of the same relation re-observe the
  // same (id, tag) pairs).
  std::sort(read_set_.reads.begin(), read_set_.reads.end());
  read_set_.reads.erase(
      std::unique(read_set_.reads.begin(), read_set_.reads.end()),
      read_set_.reads.end());
  if (!read_set_.snapshot) {
    // Locking reads are valid up to the commit itself; the engine stamps
    // read_csn with the commit CSN. 0 here means "commit-time".
    read_set_.read_csn = 0;
  }
  auto seq_or = engine_->CommitExternal(txn_, client_key_, pending_,
                                        &read_set_);
  if (!seq_or.ok()) return FailTxn(seq_or.status());
  in_txn_ = false;
  txn_ = 0;
  pending_ = Delta();
  snapshot_ = WmSnapshot();
  manager_->txn_gate().Leave();
  ++stats_.commits;
  // Ack-after-fsync: with a durable feed attached, the commit is only
  // acknowledged once its journal record is fsynced (under group commit
  // the batch boundary fsynced before the engine released us, so this
  // returns immediately). The commit has applied either way; a failure
  // here means durability — not atomicity — was lost, and the caller
  // must not report the transaction as safely committed.
  JournalFeed* feed = manager_->options().durable_feed;
  if (had_writes && feed != nullptr) {
    Status durable = feed->WaitDurable(
        seq_or.ValueOrDie(), manager_->options().durable_wait_timeout);
    if (!durable.ok()) {
      ++stats_.durable_ack_failures;
      return durable;
    }
  }
  return seq_or;
}

void Session::Abort() {
  if (!in_txn_) return;
  engine_->AbortExternal(txn_);
  in_txn_ = false;
  txn_ = 0;
  pending_ = Delta();
  snapshot_ = WmSnapshot();
  manager_->txn_gate().Leave();
  ++stats_.aborts;
}

Status Session::Perform(const std::function<Status(Session&)>& body) {
  int streak = 0;
  for (int attempt = 0;; ++attempt) {
    Status st = body(*this);
    // A body that errored out mid-transaction must not leak it into the
    // next attempt (or past Perform).
    if (in_txn_) Abort();
    const bool transient = st.IsAborted() || st.IsDeadlock() ||
                           st.IsLockTimeout() || st.IsResourceExhausted();
    if (st.ok() || !transient || attempt + 1 >= options_.max_txn_retries) {
      return st;
    }
    ++streak;
    ++stats_.retries;
    stats_.max_abort_streak = std::max(stats_.max_abort_streak,
                                       static_cast<uint64_t>(streak));
    // Capped exponential backoff + jitter, mirroring the engine's
    // per-firing retry policy (see ParallelEngineOptions).
    const int shift = std::min(streak, 8);
    const int64_t backoff_us =
        std::min(options_.retry_backoff_base.count() << shift,
                 options_.retry_backoff_max.count()) +
        static_cast<int64_t>(rng_.Uniform(100));
    SleepMicros(backoff_us);
    stats_.backoff_micros += static_cast<uint64_t>(backoff_us);
  }
}

Status Session::FailTxn(Status cause) {
  if (cause.IsAborted()) ++stats_.rc_victim_aborts;
  Abort();
  return cause;
}

void Session::Close() {
  if (!open_) return;
  Abort();
  open_ = false;
  manager_->Disconnect(this);
}

}  // namespace dbps
