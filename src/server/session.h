// Session: one external client's handle onto the shared working memory.
//
// A session issues external transactions against a running
// ParallelEngine:
//
//   auto session = manager.Connect("alice").ValueOrDie();
//   DBPS_CHECK_OK(session->Begin());
//   auto rows = session->Read("order");          // relation-level Rc
//   Delta delta;
//   delta.Create(Sym("order"), {...});
//   DBPS_CHECK_OK(session->Write(delta));        // Wa / insert-intent
//   auto seq = session->Commit();                // engine commit path
//
// Locks come from the engine's own Rc/Ra/Wa LockManager, so client
// transactions obey the same protocol as rule firings: under kTwoPhase
// every conflict blocks; under kRcRaWa a client writer is granted Wa over
// outstanding Rc locks and its *commit* aborts the Rc holders — client
// readers and in-flight rule firings alike (the §4.3 conflict). A
// victimized session sees its next operation or Commit fail with
// kAborted; retry the whole transaction.
//
// With SessionOptions::repeatable_reads (default) Read/Query take
// relation-level Rc locks held to commit, giving repeatable reads at the
// price of victimization; without it reads are read-committed snapshots
// and take no locks.
//
// A Session is NOT thread-safe — one session per client thread.
// Server-side concurrency comes from many sessions.

#ifndef DBPS_SERVER_SESSION_H_
#define DBPS_SERVER_SESSION_H_

#include <functional>
#include <string>
#include <string_view>
#include <vector>

#include "engine/parallel_engine.h"
#include "lang/query.h"
#include "util/random.h"
#include "util/statusor.h"
#include "wm/delta.h"
#include "wm/wme.h"

namespace dbps {

class SessionManager;

/// \brief Per-session behavior knobs (defaults come from ServerOptions).
struct SessionOptions {
  /// Take relation-level Rc locks on Read/Query targets, held to commit.
  bool repeatable_reads = true;
  /// Serve every Read from one CSN snapshot pinned at Begin(): the
  /// session sees a frozen, transaction-consistent state no matter how
  /// many commit batches pass while it is open, and takes NO Rc locks
  /// (so it cannot be victimized by writers — nor are its reads
  /// revalidated; writes it commits are still Wa-locked as usual). The
  /// long-running-analytics read mode CSN snapshots make cheap.
  /// Overrides repeatable_reads for Read(); Query() is rejected in this
  /// mode (queries evaluate against live WM).
  bool snapshot_reads = false;
  /// How long Begin() may wait on the transaction admission gate.
  std::chrono::milliseconds txn_admission_timeout{10000};
  /// Perform(): how many times a transaction body is attempted before its
  /// transient failure (kAborted, kDeadlock, kLockTimeout,
  /// kResourceExhausted) is surfaced to the caller.
  int max_txn_retries = 16;
  /// Perform(): capped exponential backoff between attempts, scaled by
  /// the consecutive-failure streak (plus seeded jitter) — mirrors the
  /// engine's per-firing backoff so client retry storms die out too.
  std::chrono::microseconds retry_backoff_base{100};
  std::chrono::microseconds retry_backoff_max{50000};
};

/// \brief Per-session counters.
struct SessionStats {
  uint64_t begins = 0;
  uint64_t commits = 0;
  uint64_t aborts = 0;
  /// Aborts caused by a conflicting commit victimizing this session's Rc
  /// locks (subset of `aborts`).
  uint64_t rc_victim_aborts = 0;
  uint64_t reads = 0;
  uint64_t queries = 0;
  uint64_t write_ops = 0;  ///< delta operations buffered via Write()
  /// Commits that applied but whose durable (fsync) acknowledgement
  /// failed or timed out — only possible with a durable JournalFeed.
  uint64_t durable_ack_failures = 0;
  // --- Perform() retry loop ---------------------------------------------
  uint64_t retries = 0;           ///< re-attempts after transient failures
  uint64_t max_abort_streak = 0;  ///< worst consecutive-failure streak
  uint64_t backoff_micros = 0;    ///< total backoff sleep between attempts
};

class Session {
 public:
  ~Session();

  Session(const Session&) = delete;
  Session& operator=(const Session&) = delete;

  const std::string& name() const { return name_; }
  uint64_t id() const { return id_; }
  bool in_txn() const { return in_txn_; }
  const SessionStats& stats() const { return stats_; }

  /// Opens a transaction: takes a slot on the manager's transaction
  /// admission gate (backpressure; ResourceExhausted on timeout) and
  /// begins against the engine's lock manager.
  Status Begin();

  /// All live WMEs of `relation` (snapshot). Under repeatable_reads the
  /// relation-level Rc lock is acquired first and held to commit.
  StatusOr<std::vector<WmePtr>> Read(std::string_view relation);

  /// Evaluates a rule-language LHS against working memory. Under
  /// repeatable_reads every relation the query touches is Rc-locked.
  StatusOr<std::vector<QueryRow>> Query(std::string_view lhs);

  /// Buffers `delta` into the transaction's write set after acquiring its
  /// Wa / insert-intent locks. Nothing is applied until Commit(). Fails
  /// (aborting the transaction) if a lock cannot be granted or the delta
  /// names a dead WME.
  Status Write(const Delta& delta);

  /// Commits the buffered write set through the engine's commit path: the
  /// delta is applied atomically, propagated to the matcher, appended to
  /// the replayable log under this session's client key, and Rc-holding
  /// victims are settled. Returns the commit sequence number (0 if the
  /// write set was empty). On failure the transaction is aborted.
  StatusOr<uint64_t> Commit();

  /// Rolls back the open transaction (no-op without one).
  void Abort();

  /// Runs `body` as one transaction with bounded retry: on a transient
  /// failure (kAborted — Rc victimization or injected fault — kDeadlock,
  /// kLockTimeout, kResourceExhausted) the open transaction is rolled
  /// back and `body` re-runs after capped exponential backoff with
  /// seeded jitter, up to SessionOptions::max_txn_retries attempts.
  /// Non-transient statuses and exhausted retries surface to the caller;
  /// either way no transaction is left open. `body` should contain the
  /// whole transaction, Begin() through Commit().
  Status Perform(const std::function<Status(Session&)>& body);

  /// Aborts any open transaction and detaches from the manager. Called by
  /// the destructor; idempotent.
  void Close();

 private:
  friend class SessionManager;

  Session(SessionManager* manager, std::string name, uint64_t id,
          SessionOptions options);

  /// Aborts the open transaction because `cause` made it unusable;
  /// classifies victimization and returns `cause`.
  Status FailTxn(Status cause);

  SessionManager* manager_;
  ParallelEngine* engine_;
  const WorkingMemory* wm_;
  std::string name_;
  uint64_t id_;
  SessionOptions options_;
  InstKey client_key_;

  bool open_ = true;
  bool in_txn_ = false;
  TxnId txn_ = 0;
  Delta pending_;
  /// Versions observed by Read/Query this transaction, handed to
  /// CommitExternal as audit evidence (audit/txn_audit.h).
  TxnReadSet read_set_;
  /// Pinned at Begin() when options_.snapshot_reads; released on
  /// Commit/Abort (live snapshots hold back version pruning).
  WmSnapshot snapshot_;
  SessionStats stats_;
  Random rng_;  ///< Perform() backoff jitter (seeded by session id)
};

using SessionPtr = std::shared_ptr<Session>;

}  // namespace dbps

#endif  // DBPS_SERVER_SESSION_H_
