#include "server/session_manager.h"

#include <algorithm>
#include <utility>

#include "util/logging.h"

namespace dbps {

SessionManager::SessionManager(const WorkingMemory* wm, ServerOptions options)
    : wm_(wm),
      options_(options),
      txn_gate_(options.max_concurrent_txns) {
  DBPS_CHECK(wm_ != nullptr);
}

SessionManager::~SessionManager() {
  Close();
  // Sessions hold a raw pointer back to the manager; outliving them is
  // the caller's contract (they are shared_ptrs the caller owns).
  DBPS_CHECK_EQ(live_sessions_.load(), 0u)
      << "SessionManager destroyed with live sessions";
}

void SessionManager::BindEngine(ParallelEngine* engine) {
  DBPS_CHECK(engine != nullptr);
  DBPS_CHECK(engine_ == nullptr || engine_ == engine);
  engine_ = engine;
}

StatusOr<SessionPtr> SessionManager::Connect(std::string name) {
  return Connect(std::move(name), options_.session);
}

StatusOr<SessionPtr> SessionManager::Connect(std::string name,
                                             SessionOptions session_options) {
  DBPS_CHECK(engine_ != nullptr) << "BindEngine before Connect";
  if (closed()) return Status::Unavailable("session manager is closed");
  if (!engine_->WaitUntilAccepting(options_.connect_timeout)) {
    return Status::Unavailable("engine is not serving");
  }

  // Admission: atomically reserve a session slot against max_sessions.
  size_t live = live_sessions_.load(std::memory_order_acquire);
  for (;;) {
    if (live >= options_.max_sessions) {
      std::lock_guard<std::mutex> lock(mu_);
      ++stats_.sessions_rejected;
      return Status::ResourceExhausted(
          "server full (" + std::to_string(options_.max_sessions) +
          " sessions)");
    }
    if (live_sessions_.compare_exchange_weak(live, live + 1,
                                             std::memory_order_acq_rel)) {
      break;
    }
  }
  if (closed()) {  // lost the race with Close()
    live_sessions_.fetch_sub(1, std::memory_order_acq_rel);
    return Status::Unavailable("session manager is closed");
  }

  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(mu_);
    id = next_session_id_++;
    ++stats_.sessions_admitted;
    stats_.peak_sessions =
        std::max(stats_.peak_sessions,
                 live_sessions_.load(std::memory_order_acquire));
  }
  return SessionPtr(
      new Session(this, std::move(name), id, session_options));
}

void SessionManager::Close() {
  closed_.store(true, std::memory_order_release);
  // Existing sessions keep transacting (graceful drain) — the txn gate
  // stays open. If no sessions were live the manager is drained right
  // now; wake the engine's sleeping workers so the run can finish.
  if (engine_ != nullptr && Drained()) engine_->NotifyExternalActivity();
}

void SessionManager::Disconnect(Session* session) {
  {
    std::lock_guard<std::mutex> lock(mu_);
    const SessionStats& s = session->stats();
    stats_.closed_sessions.begins += s.begins;
    stats_.closed_sessions.commits += s.commits;
    stats_.closed_sessions.aborts += s.aborts;
    stats_.closed_sessions.rc_victim_aborts += s.rc_victim_aborts;
    stats_.closed_sessions.reads += s.reads;
    stats_.closed_sessions.queries += s.queries;
    stats_.closed_sessions.write_ops += s.write_ops;
    stats_.closed_sessions.durable_ack_failures += s.durable_ack_failures;
  }
  live_sessions_.fetch_sub(1, std::memory_order_acq_rel);
  if (Drained()) engine_->NotifyExternalActivity();
}

ServerStats SessionManager::GetStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  ServerStats out = stats_;
  out.txn_gate = txn_gate_.GetStats();
  return out;
}

}  // namespace dbps
