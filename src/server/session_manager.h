// SessionManager: the multi-user front door of the engine (§2's
// user-visible parallelism over one shared database).
//
// The manager admits up to max_sessions concurrent client sessions, hands
// out Session handles whose transactions run against the engine's
// Rc/Ra/Wa lock manager, and implements the engine's ExternalSource hook:
// while the manager has live sessions (or is still accepting), the
// engine's workers idle instead of terminating, so client commits can
// keep activating rules indefinitely — a server, not a batch run.
//
// Because ParallelEngineOptions is consumed at engine construction, the
// manager is constructed first (it does not need the engine yet), becomes
// the engine's external_source, and is then bound to the engine:
//
//   WorkingMemory wm;  ... LoadProgram ...
//   SessionManager manager(&wm);
//   JournalFeed journal;
//   ParallelEngineOptions options;
//   options.base.observer = journal.MakeObserver();
//   options.external_source = &manager;
//   ParallelEngine engine(&wm, rules, options);
//   manager.BindEngine(&engine);
//   std::thread serve([&] { result = engine.Run(); });
//   auto s = manager.Connect("alice").ValueOrDie();
//   ... transactions ...
//   s->Close();
//   manager.Close();          // drained -> engine.Run() returns
//   serve.join();
//
// Shutdown: Close() stops admission; once every session disconnects the
// manager reports Drained() and wakes the engine so the run can finish.

#ifndef DBPS_SERVER_SESSION_MANAGER_H_
#define DBPS_SERVER_SESSION_MANAGER_H_

#include <atomic>
#include <memory>
#include <mutex>
#include <string>

#include "engine/parallel_engine.h"
#include "server/admission.h"
#include "server/session.h"
#include "util/statusor.h"

namespace dbps {

/// \brief Server-wide policy.
struct ServerOptions {
  /// Hard cap on concurrently connected sessions; Connect fails with
  /// ResourceExhausted beyond it (admission control, not queueing).
  size_t max_sessions = 64;
  /// Bound on transactions open at once across all sessions; 0 means
  /// unbounded. Session::Begin blocks on this gate — the server's
  /// backpressure toward clients.
  size_t max_concurrent_txns = 0;
  /// How long Connect() waits for the engine to start serving.
  std::chrono::milliseconds connect_timeout{5000};
  /// Defaults for every admitted session.
  SessionOptions session;
  /// When set, sessions acknowledge commits only after the feed reports
  /// them fsync-durable (ack-after-fsync; see JournalFeed group commit).
  /// The feed must have durability enabled and outlive the manager.
  class JournalFeed* durable_feed = nullptr;
  /// Bound on the (normally instantaneous) durable-ack wait.
  std::chrono::milliseconds durable_wait_timeout{10000};
};

/// \brief Aggregate counters over all sessions, live and closed.
struct ServerStats {
  uint64_t sessions_admitted = 0;
  uint64_t sessions_rejected = 0;
  size_t peak_sessions = 0;
  /// Folded SessionStats of disconnected sessions (live sessions report
  /// their own until they close).
  SessionStats closed_sessions;
  AdmissionGate::Stats txn_gate;
};

class SessionManager : public ExternalSource {
 public:
  /// `wm` is the engine's working memory (used for catalog lookups and
  /// snapshot reads). The engine is attached separately via BindEngine()
  /// so the manager can be handed to ParallelEngineOptions first.
  explicit SessionManager(const WorkingMemory* wm, ServerOptions options = {});
  ~SessionManager() override;

  /// Attaches the engine the sessions will transact against. Must happen
  /// before the first Connect.
  void BindEngine(ParallelEngine* engine);

  /// Admits one client session, waiting up to connect_timeout for the
  /// engine to start serving. Fails with ResourceExhausted when
  /// max_sessions are connected, Unavailable once Close()d (or when the
  /// engine never starts serving).
  StatusOr<SessionPtr> Connect(std::string name);

  /// Connect with per-session option overrides (the network front-end
  /// uses short admission timeouts so gate pressure surfaces as Busy
  /// frames instead of parked connections).
  StatusOr<SessionPtr> Connect(std::string name, SessionOptions options);

  /// Stops admitting sessions. Existing sessions keep working; once the
  /// last disconnects the manager is Drained and the engine may finish.
  void Close();

  bool closed() const { return closed_.load(std::memory_order_acquire); }

  /// ExternalSource: lock-free — polled by engine workers under their
  /// mutex.
  bool Drained() const override {
    return closed_.load(std::memory_order_acquire) &&
           live_sessions_.load(std::memory_order_acquire) == 0;
  }

  size_t live_sessions() const {
    return live_sessions_.load(std::memory_order_acquire);
  }

  ServerStats GetStats() const;

  ParallelEngine* engine() const { return engine_; }
  const WorkingMemory* wm() const { return wm_; }
  const ServerOptions& options() const { return options_; }
  AdmissionGate& txn_gate() { return txn_gate_; }

 private:
  friend class Session;

  /// Session::Close path: folds the session's stats and, if that was the
  /// last session after Close(), wakes the engine (now drained).
  void Disconnect(Session* session);

  const WorkingMemory* wm_;
  ServerOptions options_;
  ParallelEngine* engine_ = nullptr;
  AdmissionGate txn_gate_;

  std::atomic<bool> closed_{false};
  std::atomic<size_t> live_sessions_{0};

  mutable std::mutex mu_;  // guards the counters below
  uint64_t next_session_id_ = 1;
  ServerStats stats_;
};

}  // namespace dbps

#endif  // DBPS_SERVER_SESSION_MANAGER_H_
