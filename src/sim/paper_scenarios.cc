#include "sim/paper_scenarios.h"

namespace dbps {
namespace sim {

SimConfig Figure51Config() {
  SimConfig config;
  config.productions = {
      SimProduction{"p1", 5.0, {}, {}},
      SimProduction{"p2", 3.0, {}, {0}},  // committing P2 aborts P1
      SimProduction{"p3", 2.0, {}, {}},
      SimProduction{"p4", 4.0, {}, {}},
  };
  config.initial = {0, 1, 2, 3};
  config.num_processors = 4;
  return config;
}

std::vector<size_t> Sigma1() { return {2, 1, 3}; }  // p3 p2 p4

SimConfig Figure52Config() {
  SimConfig config = Figure51Config();
  config.productions[2].delete_set = {3};  // committing P3 also aborts P4
  return config;
}

std::vector<size_t> Sigma2() { return {2, 1}; }  // p3 p2

SimConfig Figure53Config() {
  SimConfig config = Figure51Config();
  config.productions[1].exec_time = 4.0;  // T(P2) increased by 1
  return config;
}

SimConfig Figure54Config() {
  SimConfig config = Figure51Config();
  config.num_processors = 3;
  return config;
}

}  // namespace sim

AbstractSystem Section33System() {
  // Bits: P1=bit0 ... P6=bit5.
  auto mask = [](std::initializer_list<int> productions) {
    ConflictMask m = 0;
    for (int p : productions) m |= 1ULL << (p - 1);
    return m;
  };
  std::vector<AbstractProduction> productions = {
      AbstractProduction{"p1", mask({4}), mask({2, 3})},
      AbstractProduction{"p2", mask({4}), mask({})},
      AbstractProduction{"p3", mask({}), mask({5})},
      AbstractProduction{"p4", mask({6}), mask({})},
      AbstractProduction{"p5", mask({}), mask({4})},
      AbstractProduction{"p6", mask({}), mask({1, 2, 3})},
  };
  return AbstractSystem(std::move(productions), mask({1, 2, 3, 5}));
}

}  // namespace dbps
