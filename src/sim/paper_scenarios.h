// The paper's worked examples as ready-made configurations.
//
// NOTE on fidelity: the available scan of the paper has OCR-corrupted
// add/delete-set tables (Table 5.1 / 5.2 and the §3.3 example). The
// configurations below are reconstructed so that every *number printed in
// the paper* is reproduced exactly:
//   Fig 5.1: T_single(σ1)=9, T_multi=4, speedup 2.25, P1 aborted by P2
//   Fig 5.2: T_single(σ2)=5, T_multi=3, speedup 5/3 ≈ 1.67
//   Fig 5.3: T(P2)+1 ⇒ T_single=10, T_multi=4, speedup 2.5
//   Fig 5.4: Np=3   ⇒ T_single=9, T_multi=6, speedup 1.5
// The §3.3-style system is likewise a faithful-in-spirit 6-production
// example with initial conflict set {P1,P2,P3,P5}. EXPERIMENTS.md records
// the substitution.

#ifndef DBPS_SIM_PAPER_SCENARIOS_H_
#define DBPS_SIM_PAPER_SCENARIOS_H_

#include <vector>

#include "semantics/abstract_ps.h"
#include "sim/speedup_model.h"

namespace dbps {
namespace sim {

/// Example 5.1 base case: PA={P1..P4}, T = (5,3,2,4), Np=4,
/// delete set of P2 = {P1}, all add sets empty.
SimConfig Figure51Config();

/// The single-thread sequence σ1 used throughout §5 (p3 p2 p4 — the sum
/// the paper reports as T(P3)+T(P2)+T(P4) = 9).
std::vector<size_t> Sigma1();

/// §5.1 degree-of-conflict variation: additionally delete set of
/// P3 = {P4}; σ2 = p3 p2.
SimConfig Figure52Config();
std::vector<size_t> Sigma2();

/// §5.2 execution-time variation: base case with T(P2) = 4.
SimConfig Figure53Config();

/// §5.3 processor variation: base case with Np = 3.
SimConfig Figure54Config();

}  // namespace sim

/// A 6-production abstract system in the mould of §3.3 / Figure 3.2:
/// initial conflict set {P1,P2,P3,P5}; the execution graph and the full
/// ES_single enumeration are produced by bench_fig3_2.
AbstractSystem Section33System();

}  // namespace dbps

#endif  // DBPS_SIM_PAPER_SCENARIOS_H_
