#include "sim/speedup_model.h"

#include <algorithm>
#include <deque>
#include <limits>
#include <set>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {
namespace sim {

std::string SimEvent::ToString(const SimConfig& config) const {
  const char* kind_name = kind == Kind::kStart    ? "start"
                          : kind == Kind::kCommit ? "commit"
                                                  : "abort";
  return StringPrintf("t=%-5.4g %-6s %s on cpu%zu", time, kind_name,
                      config.productions[production].name.c_str(),
                      processor);
}

namespace {

struct Running {
  size_t production;
  double start;
  double finish;
};

}  // namespace

MultiThreadResult SimulateMultiThread(const SimConfig& config) {
  const size_t np = config.num_processors;
  DBPS_CHECK_GT(np, 0u);
  MultiThreadResult result;

  std::deque<size_t> queue(config.initial.begin(), config.initial.end());
  std::set<size_t> in_system(config.initial.begin(), config.initial.end());
  DBPS_CHECK_EQ(queue.size(), in_system.size())
      << "initial conflict set has duplicates";
  std::vector<Running> running;          // indexed by processor slot
  std::vector<bool> busy(np, false);
  running.resize(np);
  size_t num_running = 0;
  double now = 0.0;

  auto start_ready = [&]() {
    for (size_t cpu = 0; cpu < np && !queue.empty(); ++cpu) {
      if (busy[cpu]) continue;
      size_t p = queue.front();
      queue.pop_front();
      busy[cpu] = true;
      running[cpu] = Running{p, now,
                             now + config.productions[p].exec_time};
      ++num_running;
      result.events.push_back(
          SimEvent{SimEvent::Kind::kStart, now, p, cpu});
    }
  };

  start_ready();
  while (num_running > 0) {
    // Earliest finisher commits; ties broken by production index for
    // determinism.
    size_t commit_cpu = np;
    for (size_t cpu = 0; cpu < np; ++cpu) {
      if (!busy[cpu]) continue;
      if (commit_cpu == np ||
          running[cpu].finish < running[commit_cpu].finish ||
          (running[cpu].finish == running[commit_cpu].finish &&
           running[cpu].production < running[commit_cpu].production)) {
        commit_cpu = cpu;
      }
    }
    DBPS_CHECK_LT(commit_cpu, np);
    const Running committed = running[commit_cpu];
    now = committed.finish;
    busy[commit_cpu] = false;
    --num_running;
    in_system.erase(committed.production);
    result.useful_time += config.productions[committed.production].exec_time;
    result.commit_order.push_back(committed.production);
    result.events.push_back(SimEvent{SimEvent::Kind::kCommit, now,
                                     committed.production, commit_cpu});
    result.makespan = now;

    const SimProduction& prod = config.productions[committed.production];
    // Delete set: abort running victims (losing their partial work) and
    // drop queued ones.
    for (size_t victim : prod.delete_set) {
      if (in_system.count(victim) == 0) continue;
      in_system.erase(victim);
      bool was_running = false;
      for (size_t cpu = 0; cpu < np; ++cpu) {
        if (busy[cpu] && running[cpu].production == victim) {
          busy[cpu] = false;
          --num_running;
          result.wasted_time += now - running[cpu].start;
          ++result.aborts;
          result.events.push_back(
              SimEvent{SimEvent::Kind::kAbort, now, victim, cpu});
          was_running = true;
          break;
        }
      }
      if (!was_running) {
        auto it = std::find(queue.begin(), queue.end(), victim);
        DBPS_CHECK(it != queue.end());
        queue.erase(it);
      }
    }
    // Add set: activate (a production already active is left alone).
    for (size_t added : prod.add_set) {
      if (in_system.insert(added).second) queue.push_back(added);
    }
    start_ready();
  }
  return result;
}

StatusOr<double> SingleThreadTime(const SimConfig& config,
                                  const std::vector<size_t>& sequence) {
  std::set<size_t> active(config.initial.begin(), config.initial.end());
  double total = 0.0;
  for (size_t p : sequence) {
    if (p >= config.productions.size()) {
      return Status::InvalidArgument("sequence names unknown production");
    }
    if (active.count(p) == 0) {
      return Status::InvalidArgument(
          "sequence fires inactive production " +
          config.productions[p].name);
    }
    total += config.productions[p].exec_time;
    active.erase(p);
    for (size_t victim : config.productions[p].delete_set) {
      active.erase(victim);
    }
    for (size_t added : config.productions[p].add_set) {
      active.insert(added);
    }
  }
  return total;
}

double UniprocessorMultiThreadTime(const SimConfig& config,
                                   const MultiThreadResult& result,
                                   double aborted_fraction) {
  DBPS_CHECK_GE(aborted_fraction, 0.0);
  DBPS_CHECK_LT(aborted_fraction, 1.0);
  double committed = 0.0;
  for (size_t p : result.commit_order) {
    committed += config.productions[p].exec_time;
  }
  double aborted_full = 0.0;
  for (const SimEvent& event : result.events) {
    if (event.kind == SimEvent::Kind::kAbort) {
      aborted_full += config.productions[event.production].exec_time;
    }
  }
  return committed + aborted_fraction * aborted_full;
}

std::string MultiThreadResult::ToGantt(const SimConfig& config) const {
  // Render each processor's timeline in character cells (1 cell per time
  // unit, assuming integral times as in the paper's examples).
  size_t np = config.num_processors;
  double horizon = makespan;
  for (const auto& event : events) horizon = std::max(horizon, event.time);
  const size_t width = static_cast<size_t>(horizon + 0.5);

  std::vector<std::string> lanes(np, std::string(width, '.'));
  std::vector<std::string> labels(np);
  struct Span {
    size_t cpu;
    size_t production;
    double start;
    double end;
    bool aborted;
  };
  std::vector<Span> spans;
  for (const auto& event : events) {
    if (event.kind == SimEvent::Kind::kStart) {
      spans.push_back(
          Span{event.processor, event.production, event.time, -1, false});
    } else {
      for (auto it = spans.rbegin(); it != spans.rend(); ++it) {
        if (it->cpu == event.processor &&
            it->production == event.production && it->end < 0) {
          it->end = event.time;
          it->aborted = event.kind == SimEvent::Kind::kAbort;
          break;
        }
      }
    }
  }
  std::ostringstream out;
  for (const auto& span : spans) {
    size_t begin = static_cast<size_t>(span.start + 0.5);
    size_t end = static_cast<size_t>((span.end < 0 ? horizon : span.end) +
                                     0.5);
    const std::string& name = config.productions[span.production].name;
    char fill = span.aborted ? 'x' : name.back();
    for (size_t i = begin; i < end && i < width; ++i) {
      lanes[span.cpu][i] = fill;
    }
  }
  for (size_t cpu = 0; cpu < np; ++cpu) {
    out << "cpu" << cpu << " |" << lanes[cpu] << "|\n";
  }
  out << "      ";
  for (size_t i = 0; i <= width; i += 1) out << (i % 5 == 0 ? '+' : '-');
  out << "  (x = aborted work)\n";
  return out.str();
}

}  // namespace sim
}  // namespace dbps
