// The idealized multiprocessor execution model of §5.
//
// Productions are abstract (name, execution time, add/delete sets over
// the production index space). Multi-thread execution starts every active
// production on the Np processors (excess queues FIFO); the earliest
// finisher commits, removing its delete set (aborting them mid-run if
// they are on a processor — their partial work is wasted) and inserting
// its add set. Single-thread execution time of a sequence σ is simply
// Σ T(Pj) (Example 5.1). Speedup = T_single / T_multi.

#ifndef DBPS_SIM_SPEEDUP_MODEL_H_
#define DBPS_SIM_SPEEDUP_MODEL_H_

#include <cstdint>
#include <string>
#include <vector>

#include "util/statusor.h"

namespace dbps {
namespace sim {

/// \brief One abstract production of the §5 model.
struct SimProduction {
  std::string name;
  double exec_time = 1.0;
  std::vector<size_t> add_set;     ///< enter PA when this commits
  std::vector<size_t> delete_set;  ///< leave PA (abort) when this commits
};

/// \brief A §5 scenario.
struct SimConfig {
  std::vector<SimProduction> productions;
  std::vector<size_t> initial;  ///< initial conflict set PA, in queue order
  size_t num_processors = 4;    ///< the paper's Np
};

/// \brief One event of the simulated schedule (for figure rendering).
struct SimEvent {
  enum class Kind : uint8_t { kStart, kCommit, kAbort };
  Kind kind;
  double time;
  size_t production;
  size_t processor;
  std::string ToString(const SimConfig& config) const;
};

/// \brief Outcome of a multi-thread simulation.
struct MultiThreadResult {
  double makespan = 0.0;             ///< T_multi
  double useful_time = 0.0;          ///< Σ T of committed productions
  double wasted_time = 0.0;          ///< partial work of aborted ones
  size_t aborts = 0;
  std::vector<size_t> commit_order;  ///< the committed sequence
  std::vector<SimEvent> events;

  /// Gantt-style rendering of the schedule (Figures 5.1–5.4).
  std::string ToGantt(const SimConfig& config) const;
};

/// Simulates the multi-thread mechanism on Np processors.
MultiThreadResult SimulateMultiThread(const SimConfig& config);

/// T_single(σ) = Σ T(Pj) over the sequence, after checking σ is a valid
/// single-thread sequence of the config (each fired production active,
/// conflict set evolving by -self -delete +add).
StatusOr<double> SingleThreadTime(const SimConfig& config,
                                  const std::vector<size_t>& sequence);

/// Example 5.1's uniprocessor multiple-thread estimate:
///   T = Σ T(committed) + f · Σ T(aborted),  0 ≤ f < 1,
/// always ≥ the single-thread time of the same commit sequence.
double UniprocessorMultiThreadTime(const SimConfig& config,
                                   const MultiThreadResult& result,
                                   double aborted_fraction);

}  // namespace sim
}  // namespace dbps

#endif  // DBPS_SIM_SPEEDUP_MODEL_H_
