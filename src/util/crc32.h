// CRC-32 (IEEE 802.3 polynomial, reflected), the checksum guarding the
// on-disk write-ahead log records (lang/wal.h). Table-driven, header-only;
// the table is built at compile time so there is no init-order hazard for
// static-constructed feeds.

#ifndef DBPS_UTIL_CRC32_H_
#define DBPS_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <string_view>

namespace dbps {

namespace internal {

constexpr std::array<uint32_t, 256> BuildCrc32Table() {
  std::array<uint32_t, 256> table{};
  for (uint32_t i = 0; i < 256; ++i) {
    uint32_t c = i;
    for (int bit = 0; bit < 8; ++bit) {
      c = (c & 1) ? (0xEDB88320u ^ (c >> 1)) : (c >> 1);
    }
    table[i] = c;
  }
  return table;
}

inline constexpr std::array<uint32_t, 256> kCrc32Table = BuildCrc32Table();

}  // namespace internal

/// Extends a running CRC-32 with `data` (pass the previous return value
/// to checksum discontiguous buffers as one stream).
inline uint32_t Crc32Update(uint32_t crc, const void* data, size_t size) {
  const auto* p = static_cast<const unsigned char*>(data);
  crc = ~crc;
  for (size_t i = 0; i < size; ++i) {
    crc = internal::kCrc32Table[(crc ^ p[i]) & 0xff] ^ (crc >> 8);
  }
  return ~crc;
}

/// One-shot CRC-32 of `data`.
inline uint32_t Crc32(std::string_view data) {
  return Crc32Update(0, data.data(), data.size());
}

}  // namespace dbps

#endif  // DBPS_UTIL_CRC32_H_
