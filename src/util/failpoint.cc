#include "util/failpoint.h"

#include <cstdlib>
#include <thread>

#include "util/string_util.h"

namespace dbps {

FailpointRegistry& FailpointRegistry::Instance() {
  static FailpointRegistry* registry = new FailpointRegistry();
  return *registry;
}

FailpointRegistry::FailpointRegistry() : rng_(0x5eedf417ULL) {
  if (const char* seed = std::getenv("DBPS_FAILPOINT_SEED")) {
    rng_.Seed(std::strtoull(seed, nullptr, 10));
  }
  if (const char* config = std::getenv("DBPS_FAILPOINTS")) {
    // Environment misconfiguration should be loud but not fatal.
    Status st = ConfigureFromString(config);
    if (!st.ok()) {
      std::fprintf(stderr, "DBPS_FAILPOINTS ignored: %s\n",
                   st.ToString().c_str());
    }
  }
}

void FailpointRegistry::Configure(const std::string& site,
                                  FailpointSpec spec) {
  std::lock_guard<std::mutex> lock(mu_);
  Site& entry = sites_[site];
  if (!entry.armed) armed_sites_.fetch_add(1, std::memory_order_acq_rel);
  entry.spec = spec;
  entry.stats = SiteStats{};
  entry.armed = true;
}

Status FailpointRegistry::ConfigureFromString(const std::string& config) {
  for (std::string_view part : Split(config, ';')) {
    part = StripWhitespace(part);
    if (part.empty()) continue;
    size_t eq = part.find('=');
    if (eq == std::string_view::npos) {
      return Status::InvalidArgument("failpoint spec '" + std::string(part) +
                                     "' is not site=triggers");
    }
    std::string site(StripWhitespace(part.substr(0, eq)));
    if (site.empty()) {
      return Status::InvalidArgument("empty failpoint site name");
    }
    FailpointSpec spec;
    bool off = false;
    for (std::string_view trigger : Split(part.substr(eq + 1), ',')) {
      trigger = StripWhitespace(trigger);
      if (trigger == "off") {
        off = true;
        continue;
      }
      size_t colon = trigger.find(':');
      if (colon == std::string_view::npos) {
        return Status::InvalidArgument("failpoint trigger '" +
                                       std::string(trigger) +
                                       "' is not key:value");
      }
      std::string key(StripWhitespace(trigger.substr(0, colon)));
      std::string value(StripWhitespace(trigger.substr(colon + 1)));
      char* end = nullptr;
      if (key == "p") {
        spec.probability = std::strtod(value.c_str(), &end);
      } else if (key == "1in") {
        spec.one_in = std::strtoull(value.c_str(), &end, 10);
      } else if (key == "skip") {
        spec.skip = std::strtoull(value.c_str(), &end, 10);
      } else if (key == "max") {
        spec.max_fires = std::strtoull(value.c_str(), &end, 10);
      } else if (key == "delay") {
        spec.delay = std::chrono::microseconds(
            std::strtoll(value.c_str(), &end, 10));
      } else {
        return Status::InvalidArgument("unknown failpoint trigger key '" +
                                       key + "'");
      }
      if (end == value.c_str() || *end != '\0') {
        return Status::InvalidArgument("bad failpoint trigger value '" +
                                       value + "' for key '" + key + "'");
      }
    }
    if (off) {
      Disable(site);
    } else {
      Configure(site, spec);
    }
  }
  return Status::OK();
}

void FailpointRegistry::Disable(const std::string& site) {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  if (it != sites_.end() && it->second.armed) {
    it->second.armed = false;
    armed_sites_.fetch_sub(1, std::memory_order_acq_rel);
  }
}

void FailpointRegistry::DisableAll() {
  std::lock_guard<std::mutex> lock(mu_);
  for (auto& [site, entry] : sites_) {
    if (entry.armed) armed_sites_.fetch_sub(1, std::memory_order_acq_rel);
    entry.armed = false;
  }
  sites_.clear();
  total_fires_.store(0, std::memory_order_relaxed);
}

void FailpointRegistry::SetSeed(uint64_t seed) {
  std::lock_guard<std::mutex> lock(mu_);
  rng_.Seed(seed);
}

bool FailpointRegistry::Evaluate(const char* site) {
  std::chrono::microseconds delay{0};
  {
    std::lock_guard<std::mutex> lock(mu_);
    auto it = sites_.find(site);
    if (it == sites_.end() || !it->second.armed) return false;
    Site& entry = it->second;
    const uint64_t hit = ++entry.stats.hits;
    if (hit <= entry.spec.skip) return false;
    if (entry.spec.max_fires > 0 &&
        entry.stats.fires >= entry.spec.max_fires) {
      return false;
    }
    bool fires = false;
    if (entry.spec.one_in > 0 &&
        (hit - entry.spec.skip) % entry.spec.one_in == 0) {
      fires = true;
    } else if (entry.spec.probability > 0.0 &&
               rng_.Bernoulli(entry.spec.probability)) {
      fires = true;
    }
    if (!fires) return false;
    ++entry.stats.fires;
    total_fires_.fetch_add(1, std::memory_order_relaxed);
    delay = entry.spec.delay;
  }
  if (delay.count() > 0) std::this_thread::sleep_for(delay);
  return true;
}

FailpointRegistry::SiteStats FailpointRegistry::GetSiteStats(
    const std::string& site) const {
  std::lock_guard<std::mutex> lock(mu_);
  auto it = sites_.find(site);
  return it == sites_.end() ? SiteStats{} : it->second.stats;
}

std::vector<std::pair<std::string, FailpointRegistry::SiteStats>>
FailpointRegistry::GetAllStats() const {
  std::lock_guard<std::mutex> lock(mu_);
  std::vector<std::pair<std::string, SiteStats>> out;
  out.reserve(sites_.size());
  for (const auto& [site, entry] : sites_) {
    out.emplace_back(site, entry.stats);
  }
  return out;
}

const std::vector<std::string>& DefaultChaosSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "lock.acquire.delay",
      "lock.acquire.timeout",
      "lock.acquire.wound",
      "engine.firing.throw",
      "engine.firing.rhs_error",
      "engine.firing.stall",
      "engine.firing.victimize",
      "engine.firing.crash_before_apply",
      "engine.commit.batch_window",
      "engine.commit.crash_in_batch",
      "server.session.drop",
      "server.commit.fail",
      "server.admission.reject",
  };
  return *sites;
}

void ApplyChaosProfile(double fail_rate, uint64_t seed) {
  auto& registry = FailpointRegistry::Instance();
  registry.SetSeed(seed);
  for (const std::string& site : DefaultChaosSites()) {
    FailpointSpec spec;
    spec.probability = fail_rate;
    // Stall-style sites (evaluated outside any lock) sleep; catastrophic
    // sites that permanently retire work or reject clients fire rarer so
    // a chaotic run still makes progress.
    if (site == "lock.acquire.delay" || site == "engine.firing.stall") {
      spec.delay = std::chrono::microseconds(300);
    } else if (site == "engine.commit.batch_window") {
      // Sleep-safe pre-sequencer stall: widens the commit window so
      // chaotic runs actually form multi-commit batches.
      spec.delay = std::chrono::microseconds(500);
    } else if (site == "engine.firing.rhs_error" ||
               site == "engine.firing.throw" ||
               site == "server.admission.reject") {
      spec.probability = fail_rate / 4.0;
    } else if (site == "lock.acquire.timeout" ||
               site == "lock.acquire.wound" ||
               site == "engine.firing.crash_before_apply" ||
               site == "engine.commit.crash_in_batch" ||
               site == "server.session.drop" ||
               site == "server.commit.fail") {
      spec.probability = fail_rate / 2.0;
    }
    registry.Configure(site, spec);
  }
}

const std::vector<std::string>& NetworkChaosSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "net.accept.drop",
      "net.read.error",
      "net.write.partial",
      "net.conn.drop",
      "server.journal.fsync_delay",
  };
  return *sites;
}

const std::vector<std::string>& CrashChaosSites() {
  static const std::vector<std::string>* sites = new std::vector<std::string>{
      "server.journal.crash_after_write",
      "server.journal.crash_mid_record",
  };
  return *sites;
}

void ApplyNetworkChaosProfile(double fail_rate, uint64_t seed) {
  ApplyChaosProfile(fail_rate, seed);
  auto& registry = FailpointRegistry::Instance();
  for (const std::string& site : NetworkChaosSites()) {
    FailpointSpec spec;
    spec.probability = fail_rate;
    if (site == "server.journal.fsync_delay") {
      // Sleep-safe: stretches the group-commit window, so chaotic runs
      // exercise multi-record fsync groups.
      spec.delay = std::chrono::microseconds(500);
    } else if (site == "net.conn.drop" || site == "net.read.error") {
      // Losing a connection kills every transaction pipelined on it;
      // keep it rare enough that trials make progress.
      spec.probability = fail_rate / 2.0;
    } else if (site == "net.accept.drop") {
      spec.probability = fail_rate / 4.0;
    }
    registry.Configure(site, spec);
  }
}

}  // namespace dbps
