// Failpoints: deterministic, seed-driven fault injection.
//
// A failpoint is a named site in production code where a fault can be
// forced at test time: a spurious error return, an injected stall, a
// simulated crash. Sites cost one relaxed atomic load when no failpoint
// is configured, so they stay compiled into release binaries and every
// fragile path (lock manager, parallel engine, server layer) keeps its
// sites permanently.
//
//   // In production code:
//   if (DBPS_FAILPOINT("lock.acquire.timeout")) {
//     return Status::LockTimeout("injected");
//   }
//
//   // In a test or via DBPS_FAILPOINTS=lock.acquire.timeout=p:0.05:
//   auto& reg = FailpointRegistry::Instance();
//   reg.SetSeed(1234);
//   reg.Configure("lock.acquire.timeout", {.probability = 0.05});
//   ... run workload ...
//   reg.DisableAll();
//
// Triggers compose per site: fire every Nth hit (`one_in`), fire with a
// probability per hit (`probability`, drawn from one seeded PRNG so a
// trial's fault schedule is reproducible from its seed), skip the first
// `skip` hits, stop after `max_fires` fires, and/or sleep `delay` when
// firing (stall injection; only configure delays on sites documented as
// sleep-safe — see docs/ROBUSTNESS.md).
//
// Environment activation (read once, at first Instance() use):
//   DBPS_FAILPOINTS      e.g. "lock.acquire.timeout=p:0.01;engine.firing.stall=p:0.05,delay:500"
//   DBPS_FAILPOINT_SEED  PRNG seed for probabilistic triggers

#ifndef DBPS_UTIL_FAILPOINT_H_
#define DBPS_UTIL_FAILPOINT_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <mutex>
#include <string>
#include <unordered_map>
#include <utility>
#include <vector>

#include "util/random.h"
#include "util/status.h"

namespace dbps {

/// \brief When and how a configured failpoint fires.
struct FailpointSpec {
  /// Fire with this probability on each hit (seeded PRNG).
  double probability = 0.0;
  /// Fire deterministically on every Nth hit (after `skip`); 0 disables.
  uint64_t one_in = 0;
  /// Ignore the first `skip` hits entirely.
  uint64_t skip = 0;
  /// Stop firing after this many fires; 0 means unlimited.
  uint64_t max_fires = 0;
  /// Sleep this long when firing (stall injection). Only safe on sites
  /// evaluated outside locks.
  std::chrono::microseconds delay{0};
};

/// \brief Global registry of failpoint sites. Thread-safe; a process has
/// exactly one (tests sharing a binary must DisableAll() between trials).
class FailpointRegistry {
 public:
  struct SiteStats {
    uint64_t hits = 0;
    uint64_t fires = 0;
  };

  static FailpointRegistry& Instance();

  FailpointRegistry(const FailpointRegistry&) = delete;
  FailpointRegistry& operator=(const FailpointRegistry&) = delete;

  /// Arms `site` with `spec` (replacing any previous spec, zeroing its
  /// hit/fire counters).
  void Configure(const std::string& site, FailpointSpec spec);

  /// Parses and applies "site=k:v,k:v;site2=...". Keys: p (probability),
  /// 1in, skip, max, delay (microseconds), off. Unknown keys fail.
  Status ConfigureFromString(const std::string& config);

  /// Disarms one site (its stats survive until the next Configure).
  void Disable(const std::string& site);

  /// Disarms every site and clears all stats and the cumulative fire
  /// counter. Call between chaos trials.
  void DisableAll();

  /// Re-seeds the PRNG behind probabilistic triggers.
  void SetSeed(uint64_t seed);

  /// The hot-path gate: true iff any site is armed.
  bool enabled() const {
    return armed_sites_.load(std::memory_order_acquire) > 0;
  }

  /// Records a hit on `site` and decides whether the fault fires. Sleeps
  /// the configured delay (outside the registry mutex) when firing.
  bool Evaluate(const char* site);

  SiteStats GetSiteStats(const std::string& site) const;
  std::vector<std::pair<std::string, SiteStats>> GetAllStats() const;

  /// Total fires across all sites since the last DisableAll() — cheap
  /// (one atomic load); engines diff it around a run to report
  /// `injected_faults`.
  uint64_t total_fires() const {
    return total_fires_.load(std::memory_order_relaxed);
  }

 private:
  FailpointRegistry();

  struct Site {
    FailpointSpec spec;
    SiteStats stats;
    bool armed = false;
  };

  mutable std::mutex mu_;
  std::unordered_map<std::string, Site> sites_;
  Random rng_;
  std::atomic<int> armed_sites_{0};
  std::atomic<uint64_t> total_fires_{0};
};

/// The canonical chaos sites (every injection point threaded through the
/// lock manager, parallel engine, and server layer), in a stable order.
const std::vector<std::string>& DefaultChaosSites();

/// Arms the default chaos profile: every site in DefaultChaosSites() at a
/// probability derived from `fail_rate` (delay-style sites get a small
/// stall, rarer catastrophic sites a reduced rate), PRNG seeded with
/// `seed`. One call makes a whole run chaotic and reproducible.
void ApplyChaosProfile(double fail_rate, uint64_t seed);

/// The network front-end's chaos sites (src/net/ + journal durability):
/// dropped/refused connections, injected read errors, forced partial
/// writes, and delayed group-commit fsyncs.
const std::vector<std::string>& NetworkChaosSites();

/// ApplyChaosProfile plus the network sites — the profile for chaos
/// trials that drive the engine through the socket front-end.
void ApplyNetworkChaosProfile(double fail_rate, uint64_t seed);

/// The durable journal's process-death sites (server/journal_feed.cc):
/// `server.journal.crash_after_write` (the whole group reaches the file,
/// the ack never happens) and `server.journal.crash_mid_record` (the
/// final frame is cut partway — the torn-tail case). Deliberately NOT
/// part of any rate-based profile: one fire kills the feed for the rest
/// of the process, so kill-and-recover trials arm exactly one of them
/// deterministically (one_in:1 with a seed-derived skip) per run.
const std::vector<std::string>& CrashChaosSites();

}  // namespace dbps

/// True iff the named failpoint fires at this hit. Near-zero cost while
/// no failpoint is configured anywhere.
#define DBPS_FAILPOINT(site)                              \
  (::dbps::FailpointRegistry::Instance().enabled() &&     \
   ::dbps::FailpointRegistry::Instance().Evaluate(site))

#endif  // DBPS_UTIL_FAILPOINT_H_
