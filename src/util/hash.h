// Hash combination helpers (boost::hash_combine style, 64-bit).

#ifndef DBPS_UTIL_HASH_H_
#define DBPS_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dbps {

/// Mixes `value`'s hash into `seed`.
template <typename T>
inline void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 12) +
           (*seed >> 4);
}

/// 64-bit avalanche mix (final step of MurmurHash3).
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

/// Routes a 64-bit key to one of `buckets` — the ONE routing function
/// shared by the striped lock table (LockManager::ShardIndex), the
/// relation-hash match partitioner, and value-hash sub-partitioning.
/// Keeping them on the same mix means a relation's lock shard and match
/// partition decorrelate only via `buckets`, not via hash choice, so
/// skew observed in one layer predicts skew in the other.
inline size_t RouteMix(uint64_t key, size_t buckets) {
  return static_cast<size_t>(Mix64(key)) % buckets;
}

}  // namespace dbps

#endif  // DBPS_UTIL_HASH_H_
