// Hash combination helpers (boost::hash_combine style, 64-bit).

#ifndef DBPS_UTIL_HASH_H_
#define DBPS_UTIL_HASH_H_

#include <cstddef>
#include <cstdint>
#include <functional>

namespace dbps {

/// Mixes `value`'s hash into `seed`.
template <typename T>
inline void HashCombine(size_t* seed, const T& value) {
  *seed ^= std::hash<T>{}(value) + 0x9e3779b97f4a7c15ULL + (*seed << 12) +
           (*seed >> 4);
}

/// 64-bit avalanche mix (final step of MurmurHash3).
inline uint64_t Mix64(uint64_t k) {
  k ^= k >> 33;
  k *= 0xff51afd7ed558ccdULL;
  k ^= k >> 33;
  k *= 0xc4ceb9fe1a85ec53ULL;
  k ^= k >> 33;
  return k;
}

}  // namespace dbps

#endif  // DBPS_UTIL_HASH_H_
