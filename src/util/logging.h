// Minimal leveled logging + CHECK macros (glog-flavoured, self-contained).

#ifndef DBPS_UTIL_LOGGING_H_
#define DBPS_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace dbps {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kFatal = 4 };

/// \brief Process-wide minimum level; messages below it are dropped.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

namespace internal {

/// Accumulates one log line and emits it (to stderr) on destruction.
/// kFatal aborts the process after emitting.
class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  LogMessage(const LogMessage&) = delete;
  LogMessage& operator=(const LogMessage&) = delete;

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

/// Swallows the streamed expression when the level is disabled.
class NullStream {
 public:
  template <typename T>
  NullStream& operator<<(const T&) {
    return *this;
  }
};

}  // namespace internal
}  // namespace dbps

#define DBPS_LOG_INTERNAL(level) \
  ::dbps::internal::LogMessage(level, __FILE__, __LINE__).stream()

#define DBPS_LOG(severity) \
  DBPS_LOG_INTERNAL(::dbps::LogLevel::k##severity)

/// CHECK: always-on invariant assertion; fatal on failure.
#define DBPS_CHECK(cond)                                          \
  if (!(cond))                                                    \
  DBPS_LOG_INTERNAL(::dbps::LogLevel::kFatal)                     \
      << "Check failed: " #cond " "

#define DBPS_CHECK_OK(expr)                                       \
  do {                                                            \
    ::dbps::Status _st = (expr);                                  \
    if (!_st.ok())                                                \
      DBPS_LOG_INTERNAL(::dbps::LogLevel::kFatal)                 \
          << "Status not OK: " << _st.ToString();                 \
  } while (false)

#define DBPS_CHECK_EQ(a, b) DBPS_CHECK((a) == (b))
#define DBPS_CHECK_NE(a, b) DBPS_CHECK((a) != (b))
#define DBPS_CHECK_LT(a, b) DBPS_CHECK((a) < (b))
#define DBPS_CHECK_LE(a, b) DBPS_CHECK((a) <= (b))
#define DBPS_CHECK_GT(a, b) DBPS_CHECK((a) > (b))
#define DBPS_CHECK_GE(a, b) DBPS_CHECK((a) >= (b))

#ifndef NDEBUG
#define DBPS_DCHECK(cond) DBPS_CHECK(cond)
#else
#define DBPS_DCHECK(cond) \
  while (false) ::dbps::internal::NullStream()
#endif

#endif  // DBPS_UTIL_LOGGING_H_
