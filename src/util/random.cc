#include "util/random.h"

#include <algorithm>
#include <cmath>
#include <unordered_set>

namespace dbps {

namespace {
inline uint64_t SplitMix64(uint64_t* state) {
  uint64_t z = (*state += 0x9e3779b97f4a7c15ULL);
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

inline uint64_t Rotl(uint64_t x, int k) {
  return (x << k) | (x >> (64 - k));
}
}  // namespace

void Random::Seed(uint64_t seed) {
  uint64_t sm = seed;
  for (auto& s : s_) s = SplitMix64(&sm);
}

uint64_t Random::Next64() {
  const uint64_t result = Rotl(s_[1] * 5, 7) * 9;
  const uint64_t t = s_[1] << 17;
  s_[2] ^= s_[0];
  s_[3] ^= s_[1];
  s_[1] ^= s_[2];
  s_[0] ^= s_[3];
  s_[2] ^= t;
  s_[3] = Rotl(s_[3], 45);
  return result;
}

uint64_t Random::Uniform(uint64_t n) {
  DBPS_CHECK_GT(n, 0u);
  // Rejection sampling to avoid modulo bias.
  const uint64_t threshold = -n % n;
  for (;;) {
    uint64_t r = Next64();
    if (r >= threshold) return r % n;
  }
}

int64_t Random::UniformInt(int64_t lo, int64_t hi) {
  DBPS_CHECK_LE(lo, hi);
  uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
  if (span == 0) return static_cast<int64_t>(Next64());  // full range
  return lo + static_cast<int64_t>(Uniform(span));
}

double Random::NextDouble() {
  return static_cast<double>(Next64() >> 11) * 0x1.0p-53;
}

bool Random::Bernoulli(double p) {
  if (p <= 0.0) return false;
  if (p >= 1.0) return true;
  return NextDouble() < p;
}

std::vector<size_t> Random::Sample(size_t n, size_t k) {
  DBPS_CHECK_LE(k, n);
  // Floyd's algorithm: k distinct values without building [0, n).
  std::unordered_set<size_t> chosen;
  std::vector<size_t> out;
  out.reserve(k);
  for (size_t j = n - k; j < n; ++j) {
    size_t t = static_cast<size_t>(Uniform(j + 1));
    if (chosen.insert(t).second) {
      out.push_back(t);
    } else {
      chosen.insert(j);
      out.push_back(j);
    }
  }
  return out;
}

namespace {

double Zeta(uint64_t n, double theta) {
  double sum = 0.0;
  for (uint64_t i = 1; i <= n; ++i) sum += 1.0 / std::pow(i, theta);
  return sum;
}

}  // namespace

ZipfianGenerator::ZipfianGenerator(uint64_t n, double theta)
    : n_(n), theta_(theta) {
  DBPS_CHECK_GT(n, 0u);
  DBPS_CHECK(theta > 0.0 && theta < 1.0);
  zetan_ = Zeta(n_, theta_);
  const double zeta2 = Zeta(2, theta_);
  alpha_ = 1.0 / (1.0 - theta_);
  eta_ = (1.0 - std::pow(2.0 / static_cast<double>(n_), 1.0 - theta_)) /
         (1.0 - zeta2 / zetan_);
  half_pow_ = 1.0 + std::pow(0.5, theta_);
}

uint64_t ZipfianGenerator::Next(Random* rng) const {
  const double u = rng->NextDouble();
  const double uz = u * zetan_;
  if (uz < 1.0) return 0;
  if (uz < half_pow_) return 1;
  const uint64_t rank = static_cast<uint64_t>(
      static_cast<double>(n_) * std::pow(eta_ * u - eta_ + 1.0, alpha_));
  return rank >= n_ ? n_ - 1 : rank;
}

}  // namespace dbps
