// Deterministic, seedable PRNG used everywhere randomness is needed,
// so every test and benchmark run is reproducible from its printed seed.

#ifndef DBPS_UTIL_RANDOM_H_
#define DBPS_UTIL_RANDOM_H_

#include <cstdint>
#include <vector>

#include "util/logging.h"

namespace dbps {

/// \brief xoshiro256** generator. Not thread-safe; use one per thread.
class Random {
 public:
  explicit Random(uint64_t seed = 0x9e3779b97f4a7c15ULL) { Seed(seed); }

  /// Re-seeds via splitmix64 expansion so any seed (incl. 0) is fine.
  void Seed(uint64_t seed);

  /// Uniform over all 64-bit values.
  uint64_t Next64();

  /// Uniform in [0, n). n must be > 0.
  uint64_t Uniform(uint64_t n);

  /// Uniform in [lo, hi] inclusive. lo <= hi.
  int64_t UniformInt(int64_t lo, int64_t hi);

  /// Uniform real in [0, 1).
  double NextDouble();

  /// True with probability p (clamped to [0,1]).
  bool Bernoulli(double p);

  /// Returns k distinct indices sampled uniformly from [0, n).
  std::vector<size_t> Sample(size_t n, size_t k);

  /// Fisher-Yates shuffle.
  template <typename T>
  void Shuffle(std::vector<T>* v) {
    if (v->empty()) return;
    for (size_t i = v->size() - 1; i > 0; --i) {
      size_t j = static_cast<size_t>(Uniform(i + 1));
      std::swap((*v)[i], (*v)[j]);
    }
  }

  /// Picks a uniformly random element; v must be non-empty.
  template <typename T>
  const T& Choice(const std::vector<T>& v) {
    DBPS_CHECK(!v.empty());
    return v[static_cast<size_t>(Uniform(v.size()))];
  }

 private:
  uint64_t s_[4];
};

/// \brief Zipfian sampler over [0, n) (YCSB-style rejection inversion):
/// rank 0 is the hottest key. With the default theta 0.99 roughly half
/// of all draws hit the hottest ~1% of keys — the classic hot-key OLTP
/// skew used by the adversarial chaos workloads.
class ZipfianGenerator {
 public:
  ZipfianGenerator(uint64_t n, double theta = 0.99);

  /// Draws one rank in [0, n) using `rng`.
  uint64_t Next(Random* rng) const;

  uint64_t n() const { return n_; }

 private:
  uint64_t n_;
  double theta_;
  double alpha_;
  double zetan_;
  double eta_;
  double half_pow_;  ///< 1 + 0.5^theta
};

}  // namespace dbps

#endif  // DBPS_UTIL_RANDOM_H_
