#include "util/status.h"

namespace dbps {

namespace {
const std::string kEmptyString;  // NOLINT(runtime/string)
}  // namespace

const char* StatusCodeToString(StatusCode code) {
  switch (code) {
    case StatusCode::kOk:
      return "OK";
    case StatusCode::kInvalidArgument:
      return "InvalidArgument";
    case StatusCode::kNotFound:
      return "NotFound";
    case StatusCode::kAlreadyExists:
      return "AlreadyExists";
    case StatusCode::kParseError:
      return "ParseError";
    case StatusCode::kTypeError:
      return "TypeError";
    case StatusCode::kLockTimeout:
      return "LockTimeout";
    case StatusCode::kDeadlock:
      return "Deadlock";
    case StatusCode::kAborted:
      return "Aborted";
    case StatusCode::kInternal:
      return "Internal";
    case StatusCode::kUnimplemented:
      return "Unimplemented";
    case StatusCode::kUnavailable:
      return "Unavailable";
    case StatusCode::kResourceExhausted:
      return "ResourceExhausted";
  }
  return "Unknown";
}

Status::Status(StatusCode code, std::string msg) {
  if (code != StatusCode::kOk) {
    state_ = std::make_unique<State>(State{code, std::move(msg)});
  }
}

const std::string& Status::message() const {
  return state_ ? state_->msg : kEmptyString;
}

std::string Status::ToString() const {
  if (ok()) return "OK";
  std::string out = StatusCodeToString(code());
  out += ": ";
  out += message();
  return out;
}

}  // namespace dbps
