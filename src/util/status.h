// Status: the library-wide error model (Arrow/RocksDB idiom).
//
// dbps never throws exceptions across its public API. Every fallible
// operation returns a Status (or StatusOr<T>, see statusor.h). A Status is
// cheap to copy in the OK case (a single pointer compare against nullptr).

#ifndef DBPS_UTIL_STATUS_H_
#define DBPS_UTIL_STATUS_H_

#include <memory>
#include <ostream>
#include <string>
#include <utility>

namespace dbps {

/// \brief Machine-readable classification of an error.
enum class StatusCode : int {
  kOk = 0,
  kInvalidArgument = 1,   ///< Caller passed something malformed.
  kNotFound = 2,          ///< Named entity (relation, rule, WME...) absent.
  kAlreadyExists = 3,     ///< Uniqueness violated (duplicate relation...).
  kParseError = 4,        ///< Rule-language syntax error.
  kTypeError = 5,         ///< Rule-language semantic/type error.
  kLockTimeout = 6,       ///< Lock could not be granted in time.
  kDeadlock = 7,          ///< Transaction chosen as deadlock victim.
  kAborted = 8,           ///< Production firing aborted (Rc-Wa rule).
  kInternal = 9,          ///< Invariant violation inside the library.
  kUnimplemented = 10,    ///< Feature intentionally not supported.
  kUnavailable = 11,      ///< Service (engine, session manager) not running.
  kResourceExhausted = 12,  ///< Admission/backpressure limit reached.
};

/// \brief Returns a stable human-readable name for a StatusCode.
const char* StatusCodeToString(StatusCode code);

/// \brief Result of an operation that can fail; OK or (code, message).
class Status {
 public:
  /// Constructs an OK status.
  Status() noexcept = default;

  Status(StatusCode code, std::string msg);

  Status(const Status& other)
      : state_(other.state_ ? new State(*other.state_) : nullptr) {}
  Status& operator=(const Status& other) {
    if (this != &other) {
      state_.reset(other.state_ ? new State(*other.state_) : nullptr);
    }
    return *this;
  }
  Status(Status&&) noexcept = default;
  Status& operator=(Status&&) noexcept = default;

  /// Factory helpers, one per code.
  static Status OK() { return Status(); }
  static Status InvalidArgument(std::string msg) {
    return Status(StatusCode::kInvalidArgument, std::move(msg));
  }
  static Status NotFound(std::string msg) {
    return Status(StatusCode::kNotFound, std::move(msg));
  }
  static Status AlreadyExists(std::string msg) {
    return Status(StatusCode::kAlreadyExists, std::move(msg));
  }
  static Status ParseError(std::string msg) {
    return Status(StatusCode::kParseError, std::move(msg));
  }
  static Status TypeError(std::string msg) {
    return Status(StatusCode::kTypeError, std::move(msg));
  }
  static Status LockTimeout(std::string msg) {
    return Status(StatusCode::kLockTimeout, std::move(msg));
  }
  static Status Deadlock(std::string msg) {
    return Status(StatusCode::kDeadlock, std::move(msg));
  }
  static Status Aborted(std::string msg) {
    return Status(StatusCode::kAborted, std::move(msg));
  }
  static Status Internal(std::string msg) {
    return Status(StatusCode::kInternal, std::move(msg));
  }
  static Status Unimplemented(std::string msg) {
    return Status(StatusCode::kUnimplemented, std::move(msg));
  }
  static Status Unavailable(std::string msg) {
    return Status(StatusCode::kUnavailable, std::move(msg));
  }
  static Status ResourceExhausted(std::string msg) {
    return Status(StatusCode::kResourceExhausted, std::move(msg));
  }

  bool ok() const { return state_ == nullptr; }
  StatusCode code() const {
    return state_ ? state_->code : StatusCode::kOk;
  }
  /// Message is empty for OK statuses.
  const std::string& message() const;

  bool IsInvalidArgument() const {
    return code() == StatusCode::kInvalidArgument;
  }
  bool IsNotFound() const { return code() == StatusCode::kNotFound; }
  bool IsAlreadyExists() const {
    return code() == StatusCode::kAlreadyExists;
  }
  bool IsParseError() const { return code() == StatusCode::kParseError; }
  bool IsTypeError() const { return code() == StatusCode::kTypeError; }
  bool IsLockTimeout() const { return code() == StatusCode::kLockTimeout; }
  bool IsDeadlock() const { return code() == StatusCode::kDeadlock; }
  bool IsAborted() const { return code() == StatusCode::kAborted; }
  bool IsInternal() const { return code() == StatusCode::kInternal; }
  bool IsUnimplemented() const {
    return code() == StatusCode::kUnimplemented;
  }
  bool IsUnavailable() const { return code() == StatusCode::kUnavailable; }
  bool IsResourceExhausted() const {
    return code() == StatusCode::kResourceExhausted;
  }

  /// "OK" or "<CodeName>: <message>".
  std::string ToString() const;

  bool operator==(const Status& other) const {
    return code() == other.code() && message() == other.message();
  }
  bool operator!=(const Status& other) const { return !(*this == other); }

 private:
  struct State {
    StatusCode code;
    std::string msg;
  };
  // nullptr means OK.
  std::unique_ptr<State> state_;
};

inline std::ostream& operator<<(std::ostream& os, const Status& s) {
  return os << s.ToString();
}

}  // namespace dbps

/// Propagates a non-OK Status out of the enclosing function.
#define DBPS_RETURN_NOT_OK(expr)                \
  do {                                          \
    ::dbps::Status _st = (expr);                \
    if (!_st.ok()) return _st;                  \
  } while (false)

#define DBPS_CONCAT_IMPL(x, y) x##y
#define DBPS_CONCAT(x, y) DBPS_CONCAT_IMPL(x, y)

/// Evaluates a StatusOr<T> expression; on error propagates the Status,
/// otherwise move-assigns the value into `lhs` (which it declares).
#define DBPS_ASSIGN_OR_RETURN(lhs, expr)                               \
  DBPS_ASSIGN_OR_RETURN_IMPL(DBPS_CONCAT(_statusor_, __LINE__), lhs, expr)

#define DBPS_ASSIGN_OR_RETURN_IMPL(tmp, lhs, expr) \
  auto tmp = (expr);                               \
  if (!tmp.ok()) return tmp.status();              \
  lhs = std::move(tmp).ValueOrDie();

#endif  // DBPS_UTIL_STATUS_H_
