// StatusOr<T>: a Status or a value of type T (Arrow Result<T> idiom).

#ifndef DBPS_UTIL_STATUSOR_H_
#define DBPS_UTIL_STATUSOR_H_

#include <cstdlib>
#include <optional>
#include <utility>

#include "util/status.h"

namespace dbps {

/// \brief Holds either a usable value of type T or the Status explaining
/// why no value is available.
///
/// Construction from a value yields ok(); construction from a non-OK
/// Status yields !ok(). Constructing from an OK Status is a programming
/// error and is converted to an Internal error.
template <typename T>
class StatusOr {
 public:
  /// Implicit on purpose: lets `return value;` work in StatusOr functions.
  StatusOr(T value)  // NOLINT(runtime/explicit)
      : value_(std::move(value)) {}

  /// Implicit on purpose: lets `return SomeErrorStatus();` work.
  StatusOr(Status status)  // NOLINT(runtime/explicit)
      : status_(std::move(status)) {
    if (status_.ok()) {
      status_ = Status::Internal("StatusOr constructed from OK Status");
    }
  }

  bool ok() const { return value_.has_value(); }
  const Status& status() const& { return status_; }

  /// Accesses the value; undefined (aborts) if !ok().
  const T& ValueOrDie() const& {
    DieIfNotOk();
    return *value_;
  }
  T& ValueOrDie() & {
    DieIfNotOk();
    return *value_;
  }
  T&& ValueOrDie() && {
    DieIfNotOk();
    return std::move(*value_);
  }

  const T& operator*() const& { return ValueOrDie(); }
  T& operator*() & { return ValueOrDie(); }
  const T* operator->() const { return &ValueOrDie(); }
  T* operator->() { return &ValueOrDie(); }

  /// Returns the value or, if !ok(), the provided default.
  T ValueOr(T default_value) const& {
    return ok() ? *value_ : std::move(default_value);
  }

 private:
  void DieIfNotOk() const {
    if (!ok()) {
      // Status printing here would need <iostream>; keep it minimal.
      std::abort();
    }
  }

  Status status_;
  std::optional<T> value_;
};

}  // namespace dbps

#endif  // DBPS_UTIL_STATUSOR_H_
