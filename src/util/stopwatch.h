// Wall-clock stopwatch for benches and engine statistics.

#ifndef DBPS_UTIL_STOPWATCH_H_
#define DBPS_UTIL_STOPWATCH_H_

#include <chrono>
#include <cstdint>

namespace dbps {

/// \brief Monotonic stopwatch, started at construction.
class Stopwatch {
 public:
  Stopwatch() : start_(Clock::now()) {}

  void Restart() { start_ = Clock::now(); }

  int64_t ElapsedNanos() const {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               Clock::now() - start_)
        .count();
  }
  int64_t ElapsedMicros() const { return ElapsedNanos() / 1000; }
  double ElapsedSeconds() const {
    return static_cast<double>(ElapsedNanos()) * 1e-9;
  }

 private:
  using Clock = std::chrono::steady_clock;
  Clock::time_point start_;
};

}  // namespace dbps

#endif  // DBPS_UTIL_STOPWATCH_H_
