#include "util/string_util.h"

#include <cstdarg>
#include <cstdio>

namespace dbps {

std::vector<std::string> Split(std::string_view s, char sep) {
  std::vector<std::string> out;
  size_t start = 0;
  for (size_t i = 0; i <= s.size(); ++i) {
    if (i == s.size() || s[i] == sep) {
      out.emplace_back(s.substr(start, i - start));
      start = i + 1;
    }
  }
  return out;
}

std::string_view StripWhitespace(std::string_view s) {
  size_t begin = 0;
  while (begin < s.size() && std::isspace(static_cast<unsigned char>(s[begin]))) {
    ++begin;
  }
  size_t end = s.size();
  while (end > begin && std::isspace(static_cast<unsigned char>(s[end - 1]))) {
    --end;
  }
  return s.substr(begin, end - begin);
}

std::string StringPrintf(const char* format, ...) {
  va_list args;
  va_start(args, format);
  va_list args_copy;
  va_copy(args_copy, args);
  int needed = std::vsnprintf(nullptr, 0, format, args);
  va_end(args);
  std::string out;
  if (needed > 0) {
    out.resize(static_cast<size_t>(needed));
    std::vsnprintf(out.data(), out.size() + 1, format, args_copy);
  }
  va_end(args_copy);
  return out;
}

}  // namespace dbps
