// Small string helpers shared across modules.

#ifndef DBPS_UTIL_STRING_UTIL_H_
#define DBPS_UTIL_STRING_UTIL_H_

#include <sstream>
#include <string>
#include <string_view>
#include <vector>

namespace dbps {

/// Joins elements with `sep`, using operator<< for formatting.
template <typename Container>
std::string Join(const Container& items, std::string_view sep) {
  std::ostringstream out;
  bool first = true;
  for (const auto& item : items) {
    if (!first) out << sep;
    out << item;
    first = false;
  }
  return out.str();
}

/// Splits on a single character; empty pieces are kept.
std::vector<std::string> Split(std::string_view s, char sep);

/// Strips ASCII whitespace from both ends.
std::string_view StripWhitespace(std::string_view s);

/// printf-style formatting into a std::string.
std::string StringPrintf(const char* format, ...)
    __attribute__((format(printf, 1, 2)));

}  // namespace dbps

#endif  // DBPS_UTIL_STRING_UTIL_H_
