// Fixed-size worker pool used by the parallel engines.

#ifndef DBPS_UTIL_THREAD_POOL_H_
#define DBPS_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <deque>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace dbps {

/// \brief A fixed pool of worker threads consuming a FIFO task queue.
///
/// Tasks are std::function<void()>; submission after Shutdown() is a no-op.
/// WaitIdle() blocks until the queue is empty AND no task is running, which
/// the production-cycle engines use as their end-of-cycle barrier.
class ThreadPool {
 public:
  explicit ThreadPool(size_t num_threads);
  ~ThreadPool();

  ThreadPool(const ThreadPool&) = delete;
  ThreadPool& operator=(const ThreadPool&) = delete;

  /// Enqueues a task; returns false if the pool is shut down.
  bool Submit(std::function<void()> task);

  /// Blocks until all submitted tasks have finished.
  void WaitIdle();

  /// Stops accepting tasks, drains the queue, joins all workers.
  void Shutdown();

  size_t num_threads() const { return threads_.size(); }

 private:
  void WorkerLoop();

  std::mutex mu_;
  std::condition_variable work_cv_;   // signals workers
  std::condition_variable idle_cv_;   // signals WaitIdle
  std::deque<std::function<void()>> queue_;
  size_t active_ = 0;
  bool shutdown_ = false;
  std::vector<std::thread> threads_;
};

}  // namespace dbps

#endif  // DBPS_UTIL_THREAD_POOL_H_
