#include "value/symbol_table.h"

#include "util/logging.h"

namespace dbps {

SymbolTable& SymbolTable::Global() {
  static SymbolTable* table = new SymbolTable();
  return *table;
}

SymbolTable::SymbolTable() {
  // Slot 0 is reserved for "nil" so kNilSymbol is always valid.
  by_id_.emplace_back("nil");
  by_name_.emplace("nil", kNilSymbol);
}

SymbolId SymbolTable::Intern(std::string_view name) {
  std::lock_guard<std::mutex> guard(mu_);
  auto it = by_name_.find(std::string(name));
  if (it != by_name_.end()) return it->second;
  SymbolId id = static_cast<SymbolId>(by_id_.size());
  by_id_.emplace_back(name);
  by_name_.emplace(std::string(name), id);
  return id;
}

std::string SymbolTable::Name(SymbolId id) const {
  std::lock_guard<std::mutex> guard(mu_);
  DBPS_CHECK_LT(id, by_id_.size());
  return by_id_[id];
}

size_t SymbolTable::size() const {
  std::lock_guard<std::mutex> guard(mu_);
  return by_id_.size();
}

SymbolId Sym(std::string_view name) {
  return SymbolTable::Global().Intern(name);
}

std::string SymName(SymbolId id) { return SymbolTable::Global().Name(id); }

}  // namespace dbps
