// Interned symbols: OPS5-style constants like `nil`, `red`, `goal`.
//
// Symbols are interned process-wide so that equality tests inside the
// matcher are single integer compares. The table is append-only and
// thread-safe: parallel engines intern/lookup concurrently.

#ifndef DBPS_VALUE_SYMBOL_TABLE_H_
#define DBPS_VALUE_SYMBOL_TABLE_H_

#include <cstdint>
#include <mutex>
#include <string>
#include <string_view>
#include <unordered_map>
#include <vector>

namespace dbps {

/// Identifier of an interned symbol; 0 is always the symbol "nil".
using SymbolId = uint32_t;

inline constexpr SymbolId kNilSymbol = 0;

/// \brief Append-only, thread-safe intern table.
class SymbolTable {
 public:
  /// The process-wide table used by the whole library.
  static SymbolTable& Global();

  SymbolTable();

  /// Returns the id for `name`, interning it on first use.
  SymbolId Intern(std::string_view name);

  /// Returns the spelling of `id`; dies if id is out of range.
  std::string Name(SymbolId id) const;

  /// Number of interned symbols.
  size_t size() const;

 private:
  mutable std::mutex mu_;
  std::unordered_map<std::string, SymbolId> by_name_;
  std::vector<std::string> by_id_;
};

/// Convenience: intern into the global table.
SymbolId Sym(std::string_view name);

/// Convenience: spelling from the global table.
std::string SymName(SymbolId id);

}  // namespace dbps

#endif  // DBPS_VALUE_SYMBOL_TABLE_H_
