#include "value/value.h"

#include <cmath>

#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

const char* ValueTypeToString(ValueType type) {
  switch (type) {
    case ValueType::kNil:
      return "nil";
    case ValueType::kInt:
      return "int";
    case ValueType::kFloat:
      return "float";
    case ValueType::kSymbol:
      return "symbol";
    case ValueType::kString:
      return "string";
  }
  return "?";
}

int64_t Value::AsInt() const {
  DBPS_CHECK(is_int()) << "Value is " << ValueTypeToString(type_);
  return int_;
}

double Value::AsFloat() const {
  DBPS_CHECK(is_float()) << "Value is " << ValueTypeToString(type_);
  return float_;
}

SymbolId Value::AsSymbol() const {
  if (is_nil()) return kNilSymbol;
  DBPS_CHECK(is_symbol()) << "Value is " << ValueTypeToString(type_);
  return symbol_;
}

const std::string& Value::AsString() const {
  DBPS_CHECK(is_string()) << "Value is " << ValueTypeToString(type_);
  return *string_;
}

double Value::AsNumber() const {
  if (is_int()) return static_cast<double>(int_);
  DBPS_CHECK(is_float()) << "Value is " << ValueTypeToString(type_);
  return float_;
}

bool Value::operator==(const Value& other) const {
  // Cross-type numeric equality (3 == 3.0), everything else type-strict.
  if (is_number() && other.is_number()) {
    if (is_int() && other.is_int()) return int_ == other.int_;
    return AsNumber() == other.AsNumber();
  }
  if (type_ != other.type_) return false;
  switch (type_) {
    case ValueType::kNil:
      return true;
    case ValueType::kInt:
      return int_ == other.int_;
    case ValueType::kFloat:
      return float_ == other.float_;
    case ValueType::kSymbol:
      return symbol_ == other.symbol_;
    case ValueType::kString:
      return *string_ == *other.string_;
  }
  return false;
}

bool Value::Comparable(const Value& other) const {
  if (is_number() && other.is_number()) return true;
  return is_string() && other.is_string();
}

bool Value::operator<(const Value& other) const {
  DBPS_CHECK(Comparable(other))
      << ValueTypeToString(type_) << " vs " << ValueTypeToString(other.type_);
  if (is_number()) {
    if (is_int() && other.is_int()) return int_ < other.int_;
    return AsNumber() < other.AsNumber();
  }
  return *string_ < *other.string_;
}

bool Value::operator<=(const Value& other) const {
  return *this < other || *this == other;
}

size_t Value::Hash() const {
  size_t seed = static_cast<size_t>(type_);
  switch (type_) {
    case ValueType::kNil:
      break;
    case ValueType::kInt:
      HashCombine(&seed, int_);
      break;
    case ValueType::kFloat: {
      // Hash integral floats like ints so 3 == 3.0 hashes identically.
      double d = float_;
      if (d == std::floor(d) && std::abs(d) < 1e18) {
        seed = static_cast<size_t>(ValueType::kInt);
        HashCombine(&seed, static_cast<int64_t>(d));
      } else {
        HashCombine(&seed, float_);
      }
      break;
    }
    case ValueType::kSymbol:
      HashCombine(&seed, symbol_);
      break;
    case ValueType::kString:
      HashCombine(&seed, *string_);
      break;
  }
  return seed;
}

std::string Value::ToString() const {
  switch (type_) {
    case ValueType::kNil:
      return "nil";
    case ValueType::kInt:
      return std::to_string(int_);
    case ValueType::kFloat:
      return StringPrintf("%g", float_);
    case ValueType::kSymbol:
      return SymName(symbol_);
    case ValueType::kString:
      return "\"" + *string_ + "\"";
  }
  return "?";
}

std::ostream& operator<<(std::ostream& os, const Value& v) {
  return os << v.ToString();
}

}  // namespace dbps
