// Value: the dynamic type stored in WME attributes.
//
// OPS5 working memories hold symbols and numbers; we add strings for the
// database flavour. `nil` is both the "unset attribute" value and the
// symbol nil, matching OPS5 semantics.

#ifndef DBPS_VALUE_VALUE_H_
#define DBPS_VALUE_VALUE_H_

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>
#include <string_view>

#include "util/hash.h"
#include "value/symbol_table.h"

namespace dbps {

enum class ValueType : uint8_t { kNil = 0, kInt, kFloat, kSymbol, kString };

const char* ValueTypeToString(ValueType type);

/// \brief Small tagged union: nil | int64 | double | symbol | string.
///
/// Comparison semantics follow OPS5: numbers compare numerically across
/// int/float; symbols and strings compare by content; values of
/// incomparable types are unequal and not ordered.
class Value {
 public:
  /// nil.
  Value() : type_(ValueType::kNil), int_(0) {}

  static Value Nil() { return Value(); }
  static Value Int(int64_t v) {
    Value out;
    out.type_ = ValueType::kInt;
    out.int_ = v;
    return out;
  }
  static Value Float(double v) {
    Value out;
    out.type_ = ValueType::kFloat;
    out.float_ = v;
    return out;
  }
  static Value Symbol(SymbolId id) {
    if (id == kNilSymbol) return Nil();
    Value out;
    out.type_ = ValueType::kSymbol;
    out.symbol_ = id;
    return out;
  }
  /// Interns `name` in the global symbol table.
  static Value Symbol(std::string_view name) { return Symbol(Sym(name)); }
  static Value String(std::string s) {
    Value out;
    out.type_ = ValueType::kString;
    out.string_ = std::make_shared<std::string>(std::move(s));
    return out;
  }

  ValueType type() const { return type_; }
  bool is_nil() const { return type_ == ValueType::kNil; }
  bool is_int() const { return type_ == ValueType::kInt; }
  bool is_float() const { return type_ == ValueType::kFloat; }
  bool is_symbol() const { return type_ == ValueType::kSymbol; }
  bool is_string() const { return type_ == ValueType::kString; }
  bool is_number() const { return is_int() || is_float(); }

  /// Accessors die on type mismatch (use type() first).
  int64_t AsInt() const;
  double AsFloat() const;
  SymbolId AsSymbol() const;
  const std::string& AsString() const;

  /// Numeric value as double; valid for int and float.
  double AsNumber() const;

  bool operator==(const Value& other) const;
  bool operator!=(const Value& other) const { return !(*this == other); }

  /// True iff both are numbers or both strings/symbols-with-order; numbers
  /// order numerically, strings lexicographically. Symbols are unordered.
  bool Comparable(const Value& other) const;

  /// Requires Comparable(other).
  bool operator<(const Value& other) const;
  bool operator<=(const Value& other) const;
  bool operator>(const Value& other) const { return other < *this; }
  bool operator>=(const Value& other) const { return other <= *this; }

  size_t Hash() const;

  /// Human-readable form; symbols print their spelling, strings quoted.
  std::string ToString() const;

 private:
  ValueType type_;
  union {
    int64_t int_;
    double float_;
    SymbolId symbol_;
  };
  std::shared_ptr<std::string> string_;  // set iff kString
};

std::ostream& operator<<(std::ostream& os, const Value& v);

struct ValueHash {
  size_t operator()(const Value& v) const { return v.Hash(); }
};

}  // namespace dbps

#endif  // DBPS_VALUE_VALUE_H_
