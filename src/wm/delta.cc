#include "wm/delta.h"

#include <sstream>

namespace dbps {

std::string Delta::ToString() const {
  std::ostringstream out;
  out << "{";
  bool first = true;
  for (const auto& op : ops_) {
    if (!first) out << "; ";
    first = false;
    if (const auto* create = std::get_if<CreateOp>(&op)) {
      out << "make " << SymName(create->relation);
      for (const auto& v : create->values) out << " " << v;
    } else if (const auto* modify = std::get_if<ModifyOp>(&op)) {
      out << "modify #" << modify->id;
      for (const auto& [field, value] : modify->updates) {
        out << " [" << field << "]=" << value;
      }
    } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
      out << "remove #" << del->id;
    }
  }
  if (halt_) {
    if (!first) out << "; ";
    out << "halt";
  }
  out << "}";
  return out.str();
}

bool Delta::operator==(const Delta& other) const {
  if (halt_ != other.halt_ || ops_.size() != other.ops_.size()) return false;
  for (size_t i = 0; i < ops_.size(); ++i) {
    const WmOp& a = ops_[i];
    const WmOp& b = other.ops_[i];
    if (a.index() != b.index()) return false;
    if (const auto* ca = std::get_if<CreateOp>(&a)) {
      const auto* cb = std::get_if<CreateOp>(&b);
      if (ca->relation != cb->relation || ca->values != cb->values) {
        return false;
      }
    } else if (const auto* ma = std::get_if<ModifyOp>(&a)) {
      const auto* mb = std::get_if<ModifyOp>(&b);
      if (ma->id != mb->id || ma->updates != mb->updates) return false;
    } else {
      const auto* da = std::get_if<DeleteOp>(&a);
      const auto* db = std::get_if<DeleteOp>(&b);
      if (da->id != db->id) return false;
    }
  }
  return true;
}

}  // namespace dbps
