// Delta: the buffered write set of one production firing.
//
// RHS execution never touches working memory directly; it accumulates
// create/modify/delete operations into a Delta. Commit applies the whole
// Delta atomically (the paper: "The WM content is atomically updated only
// when a production reaches its commit point"). Abort simply discards it.

#ifndef DBPS_WM_DELTA_H_
#define DBPS_WM_DELTA_H_

#include <string>
#include <utility>
#include <variant>
#include <vector>

#include "value/value.h"
#include "wm/wme.h"

namespace dbps {

/// Inserts a new WME; its id is assigned when the delta is applied.
struct CreateOp {
  SymbolId relation;
  std::vector<Value> values;
};

/// Overwrites selected fields of WME `id`, bumping its time tag.
struct ModifyOp {
  WmeId id;
  /// (field index, new value) pairs.
  std::vector<std::pair<size_t, Value>> updates;
};

/// Removes WME `id`.
struct DeleteOp {
  WmeId id;
};

using WmOp = std::variant<CreateOp, ModifyOp, DeleteOp>;

/// \brief Ordered list of working-memory operations plus a halt flag.
class Delta {
 public:
  void Create(SymbolId relation, std::vector<Value> values) {
    ops_.emplace_back(CreateOp{relation, std::move(values)});
  }
  void Modify(WmeId id, std::vector<std::pair<size_t, Value>> updates) {
    ops_.emplace_back(ModifyOp{id, std::move(updates)});
  }
  void Delete(WmeId id) { ops_.emplace_back(DeleteOp{id}); }
  void SetHalt() { halt_ = true; }

  /// Appends every operation (and the halt flag) of `other` — used by
  /// sessions accumulating a transaction's write set across Write calls.
  void Append(const Delta& other) {
    ops_.insert(ops_.end(), other.ops_.begin(), other.ops_.end());
    halt_ = halt_ || other.halt_;
  }

  const std::vector<WmOp>& ops() const { return ops_; }
  bool halt() const { return halt_; }
  bool empty() const { return ops_.empty() && !halt_; }

  std::string ToString() const;

  bool operator==(const Delta& other) const;

 private:
  std::vector<WmOp> ops_;
  bool halt_ = false;
};

/// \brief The matcher-facing result of applying a Delta: which WME
/// versions disappeared and which appeared (a modify contributes one of
/// each, sharing a WmeId).
struct WmChange {
  std::vector<WmePtr> removed;
  std::vector<WmePtr> added;
  /// The commit sequence number WorkingMemory::Apply stamped on this
  /// change: every `added` version was created at `csn`, every `removed`
  /// version was killed at `csn`. A WmSnapshot at `csn` sees exactly this
  /// commit and everything before it.
  uint64_t csn = 0;
};

}  // namespace dbps

#endif  // DBPS_WM_DELTA_H_
