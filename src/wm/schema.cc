#include "wm/schema.h"

#include "util/string_util.h"

namespace dbps {

const char* AttrTypeToString(AttrType type) {
  switch (type) {
    case AttrType::kAny:
      return "any";
    case AttrType::kInt:
      return "int";
    case AttrType::kFloat:
      return "float";
    case AttrType::kSymbol:
      return "symbol";
    case AttrType::kString:
      return "string";
    case AttrType::kNumber:
      return "number";
  }
  return "?";
}

bool ValueMatchesType(const Value& v, AttrType t) {
  if (v.is_nil()) return true;  // nil is the universal "unset" value
  switch (t) {
    case AttrType::kAny:
      return true;
    case AttrType::kInt:
      return v.is_int();
    case AttrType::kFloat:
      return v.is_float();
    case AttrType::kSymbol:
      return v.is_symbol();
    case AttrType::kString:
      return v.is_string();
    case AttrType::kNumber:
      return v.is_number();
  }
  return false;
}

RelationSchema::RelationSchema(SymbolId name, std::vector<AttrDef> attrs)
    : name_(name), attrs_(std::move(attrs)) {
  for (size_t i = 0; i < attrs_.size(); ++i) {
    attr_index_.emplace(attrs_[i].name, i);
  }
}

std::optional<size_t> RelationSchema::AttrIndex(SymbolId attr) const {
  auto it = attr_index_.find(attr);
  if (it == attr_index_.end()) return std::nullopt;
  return it->second;
}

Status RelationSchema::CheckTuple(const std::vector<Value>& values) const {
  if (values.size() != attrs_.size()) {
    return Status::TypeError(StringPrintf(
        "relation '%s' expects %zu attributes, got %zu",
        SymName(name_).c_str(), attrs_.size(), values.size()));
  }
  for (size_t i = 0; i < values.size(); ++i) {
    if (!ValueMatchesType(values[i], attrs_[i].type)) {
      return Status::TypeError(StringPrintf(
          "relation '%s' attribute '%s' expects %s, got %s (%s)",
          SymName(name_).c_str(), SymName(attrs_[i].name).c_str(),
          AttrTypeToString(attrs_[i].type),
          ValueTypeToString(values[i].type()),
          values[i].ToString().c_str()));
    }
  }
  return Status::OK();
}

std::string RelationSchema::ToString() const {
  std::string out = "(relation " + SymName(name_);
  for (const auto& attr : attrs_) {
    out += " (" + SymName(attr.name) + " " + AttrTypeToString(attr.type) + ")";
  }
  out += ")";
  return out;
}

Status Catalog::AddRelation(RelationSchema schema) {
  SymbolId name = schema.name();
  if (relations_.count(name) != 0) {
    return Status::AlreadyExists("relation '" + SymName(name) +
                                 "' already declared");
  }
  relations_.emplace(name, std::move(schema));
  declaration_order_.push_back(name);
  return Status::OK();
}

StatusOr<const RelationSchema*> Catalog::GetRelation(SymbolId name) const {
  auto it = relations_.find(name);
  if (it == relations_.end()) {
    return Status::NotFound("unknown relation '" + SymName(name) + "'");
  }
  return &it->second;
}

bool Catalog::HasRelation(SymbolId name) const {
  return relations_.count(name) != 0;
}

}  // namespace dbps
