// Relation schemas and the catalog: the "database" shape of working memory.
//
// A database production system's working memory is a set of relations
// (OPS5 "classes"). Each relation has a fixed, ordered attribute list;
// WMEs of that relation are dense tuples over those attributes.

#ifndef DBPS_WM_SCHEMA_H_
#define DBPS_WM_SCHEMA_H_

#include <optional>
#include <string>
#include <unordered_map>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"
#include "value/value.h"

namespace dbps {

/// \brief Declared type of an attribute; kAny admits every value.
enum class AttrType : uint8_t { kAny = 0, kInt, kFloat, kSymbol, kString, kNumber };

const char* AttrTypeToString(AttrType type);

/// \brief True if `v` is admissible under declared type `t` (nil always is).
bool ValueMatchesType(const Value& v, AttrType t);

/// \brief One attribute: name + declared type.
struct AttrDef {
  SymbolId name;
  AttrType type = AttrType::kAny;
};

/// \brief Schema of one relation: name + ordered attributes.
class RelationSchema {
 public:
  RelationSchema(SymbolId name, std::vector<AttrDef> attrs);

  SymbolId name() const { return name_; }
  const std::vector<AttrDef>& attrs() const { return attrs_; }
  size_t arity() const { return attrs_.size(); }

  /// Index of attribute `attr` in the tuple, or nullopt.
  std::optional<size_t> AttrIndex(SymbolId attr) const;

  /// Verifies `values` has the right arity and types.
  Status CheckTuple(const std::vector<Value>& values) const;

  std::string ToString() const;

 private:
  SymbolId name_;
  std::vector<AttrDef> attrs_;
  std::unordered_map<SymbolId, size_t> attr_index_;
};

/// \brief The catalog: all relations known to a working memory.
class Catalog {
 public:
  /// Fails with AlreadyExists on duplicate relation names.
  Status AddRelation(RelationSchema schema);

  /// Fails with NotFound for unknown names.
  StatusOr<const RelationSchema*> GetRelation(SymbolId name) const;

  bool HasRelation(SymbolId name) const;

  /// All relation names in declaration order.
  const std::vector<SymbolId>& relation_names() const {
    return declaration_order_;
  }

  size_t size() const { return relations_.size(); }

 private:
  std::unordered_map<SymbolId, RelationSchema> relations_;
  std::vector<SymbolId> declaration_order_;
};

}  // namespace dbps

#endif  // DBPS_WM_SCHEMA_H_
