#include "wm/wme.h"

#include <ostream>
#include <sstream>

namespace dbps {

std::string Wme::ToString() const {
  std::ostringstream out;
  out << "(" << SymName(relation_);
  for (const auto& v : values_) out << " " << v;
  out << " | id=" << id_ << " tag=" << tag_ << ")";
  return out.str();
}

std::ostream& operator<<(std::ostream& os, const Wme& wme) {
  return os << wme.ToString();
}

}  // namespace dbps
