// Working memory elements (WMEs): the tuples of the production database.
//
// A WME has two identities:
//  * `id`  — the stable *data object* identity, used by the lock manager.
//    A modify keeps the id (the paper's "data item q" survives updates).
//  * `tag` — the OPS5 time tag, bumped on every modify. The matcher treats
//    a modify as retract(old tag) + assert(new tag); the pair (id, tag)
//    names one immutable version.
//
// WME versions are immutable and shared via WmePtr, so in-flight
// productions can keep reading the version they matched even after a
// concurrent writer commits a newer one.

#ifndef DBPS_WM_WME_H_
#define DBPS_WM_WME_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "value/value.h"

namespace dbps {

using WmeId = uint64_t;
using TimeTag = uint64_t;

/// \brief One immutable version of a working memory element.
class Wme {
 public:
  Wme(WmeId id, TimeTag tag, SymbolId relation, std::vector<Value> values)
      : id_(id), tag_(tag), relation_(relation), values_(std::move(values)) {}

  WmeId id() const { return id_; }
  TimeTag tag() const { return tag_; }
  SymbolId relation() const { return relation_; }
  const std::vector<Value>& values() const { return values_; }
  const Value& value(size_t field) const { return values_[field]; }
  size_t arity() const { return values_.size(); }

  /// "(rel v0 v1 ... | id=3 tag=7)".
  std::string ToString() const;

 private:
  WmeId id_;
  TimeTag tag_;
  SymbolId relation_;
  std::vector<Value> values_;
};

using WmePtr = std::shared_ptr<const Wme>;

std::ostream& operator<<(std::ostream& os, const Wme& wme);

}  // namespace dbps

#endif  // DBPS_WM_WME_H_
