#include "wm/working_memory.h"

#include <algorithm>
#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

namespace {
/// deleted_csn of a version that is still live.
constexpr uint64_t kLiveCsn = ~0ULL;
}  // namespace

// --- WmSnapshot -------------------------------------------------------------

WmSnapshot::WmSnapshot(WmSnapshot&& other) noexcept
    : wm_(other.wm_), csn_(other.csn_) {
  other.wm_ = nullptr;
}

WmSnapshot& WmSnapshot::operator=(WmSnapshot&& other) noexcept {
  if (this != &other) {
    if (wm_ != nullptr) wm_->UnregisterSnapshot(csn_);
    wm_ = other.wm_;
    csn_ = other.csn_;
    other.wm_ = nullptr;
  }
  return *this;
}

WmSnapshot::~WmSnapshot() {
  if (wm_ != nullptr) wm_->UnregisterSnapshot(csn_);
}

const Catalog& WmSnapshot::catalog() const {
  DBPS_CHECK(wm_ != nullptr) << "catalog() on an invalid snapshot";
  return wm_->catalog_;
}

WmePtr WmSnapshot::Get(WmeId id) const {
  if (wm_ == nullptr) return nullptr;
  std::shared_lock lock(wm_->mu_);
  return wm_->VisibleVersionLocked(id, csn_);
}

bool WmSnapshot::IsCurrent(WmeId id, TimeTag tag) const {
  if (wm_ == nullptr) return false;
  std::shared_lock lock(wm_->mu_);
  WmePtr wme = wm_->VisibleVersionLocked(id, csn_);
  return wme != nullptr && wme->tag() == tag;
}

std::vector<WmePtr> WmSnapshot::Scan(SymbolId relation) const {
  std::vector<WmePtr> out;
  if (wm_ == nullptr) return out;
  std::shared_lock lock(wm_->mu_);
  auto live_it = wm_->by_relation_.find(relation);
  if (live_it != wm_->by_relation_.end()) {
    for (WmeId id : live_it->second) {
      WmePtr wme = wm_->VisibleVersionLocked(id, csn_);
      if (wme != nullptr) out.push_back(std::move(wme));
    }
  }
  // Ids with only dead versions left (deleted, or modified after csn_ and
  // no longer live under this relation).
  auto dead_it = wm_->dead_by_relation_.find(relation);
  if (dead_it != wm_->dead_by_relation_.end()) {
    auto live_ids = live_it != wm_->by_relation_.end()
                        ? &live_it->second
                        : nullptr;
    for (WmeId id : dead_it->second) {
      if (live_ids != nullptr && live_ids->count(id) != 0) {
        continue;  // already resolved through the live pass
      }
      WmePtr wme = wm_->VisibleVersionLocked(id, csn_);
      if (wme != nullptr && wme->relation() == relation) {
        out.push_back(std::move(wme));
      }
    }
  }
  return out;
}

size_t WmSnapshot::Count(SymbolId relation) const {
  return Scan(relation).size();
}

// --- WorkingMemory ----------------------------------------------------------

Status WorkingMemory::CreateRelation(RelationSchema schema) {
  std::unique_lock lock(mu_);
  return catalog_.AddRelation(std::move(schema));
}

Status WorkingMemory::CreateRelation(
    std::string_view name,
    const std::vector<std::pair<std::string, AttrType>>& attrs) {
  std::vector<AttrDef> defs;
  defs.reserve(attrs.size());
  for (const auto& [attr_name, type] : attrs) {
    defs.push_back(AttrDef{Sym(attr_name), type});
  }
  return CreateRelation(RelationSchema(Sym(name), std::move(defs)));
}

Status WorkingMemory::CreateIndex(SymbolId relation, SymbolId attr) {
  std::unique_lock lock(mu_);
  DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                        catalog_.GetRelation(relation));
  auto field = schema->AttrIndex(attr);
  if (!field.has_value()) {
    return Status::NotFound("relation '" + SymName(relation) +
                            "' has no attribute '" + SymName(attr) + "'");
  }
  IndexKey key{relation, *field};
  if (indexes_.count(key) != 0) {
    return Status::AlreadyExists("index on " + SymName(relation) + "." +
                                 SymName(attr) + " already exists");
  }
  ValueIndex& index = indexes_[key];
  auto rel_it = by_relation_.find(relation);
  if (rel_it != by_relation_.end()) {
    for (WmeId id : rel_it->second) {
      index[live_.at(id)->value(*field)].insert(id);
    }
  }
  return Status::OK();
}

StatusOr<WmePtr> WorkingMemory::Insert(SymbolId relation,
                                       std::vector<Value> values) {
  std::unique_lock lock(mu_);
  const uint64_t csn = csn_.load(std::memory_order_relaxed) + 1;
  auto wme_or = InsertLocked(relation, std::move(values), csn);
  if (wme_or.ok()) {
    csn_.store(csn, std::memory_order_release);
    PruneHistoryLocked(csn);
  }
  return wme_or;
}

StatusOr<WmePtr> WorkingMemory::Insert(std::string_view relation,
                                       std::vector<Value> values) {
  return Insert(Sym(relation), std::move(values));
}

StatusOr<WmePtr> WorkingMemory::InsertLocked(SymbolId relation,
                                             std::vector<Value> values,
                                             uint64_t csn) {
  DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                        catalog_.GetRelation(relation));
  DBPS_RETURN_NOT_OK(schema->CheckTuple(values));
  auto wme = std::make_shared<const Wme>(next_id_++, next_tag_++, relation,
                                         std::move(values));
  live_.emplace(wme->id(), wme);
  live_created_csn_[wme->id()] = csn;
  by_relation_[relation].insert(wme->id());
  IndexAdd(wme);
  return WmePtr(wme);
}

StatusOr<WmePtr> WorkingMemory::Delete(WmeId id) {
  std::unique_lock lock(mu_);
  const uint64_t csn = csn_.load(std::memory_order_relaxed) + 1;
  auto wme_or = DeleteLocked(id, csn);
  if (wme_or.ok()) {
    csn_.store(csn, std::memory_order_release);
    PruneHistoryLocked(csn);
  }
  return wme_or;
}

StatusOr<WmePtr> WorkingMemory::DeleteLocked(WmeId id, uint64_t csn) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound(StringPrintf("WME #%llu is not live",
                                         (unsigned long long)id));
  }
  WmePtr wme = it->second;
  IndexRemove(wme);
  by_relation_[wme->relation()].erase(id);
  live_.erase(it);
  auto created_it = live_created_csn_.find(id);
  const uint64_t created =
      created_it == live_created_csn_.end() ? 0 : created_it->second;
  live_created_csn_.erase(id);
  KillVersionLocked(wme, created, csn);
  return wme;
}

void WorkingMemory::KillVersionLocked(const WmePtr& wme,
                                      uint64_t created_csn, uint64_t csn) {
  // Retain the dying version only if some live snapshot could read it:
  // a snapshot at S sees it iff created_csn <= S < csn.
  const uint64_t horizon = SnapshotHorizon(csn);
  if (horizon >= csn) return;  // no snapshot below csn — nothing to keep
  history_[wme->id()].push_back(DeadVersion{wme, created_csn, csn});
  dead_by_relation_[wme->relation()].insert(wme->id());
  dead_order_.emplace_back(csn, wme->id());
}

void WorkingMemory::PruneHistoryLocked(uint64_t next_csn) {
  const uint64_t horizon = SnapshotHorizon(next_csn);
  while (!dead_order_.empty() && dead_order_.front().first <= horizon) {
    const WmeId id = dead_order_.front().second;
    dead_order_.pop_front();
    auto it = history_.find(id);
    if (it == history_.end()) continue;
    auto& chain = it->second;
    // Chains are in CSN order; invisible versions sit at the front.
    size_t drop = 0;
    while (drop < chain.size() && chain[drop].deleted_csn <= horizon) {
      ++drop;
    }
    if (drop == 0) continue;
    const SymbolId relation = chain.front().wme->relation();
    chain.erase(chain.begin(), chain.begin() + drop);
    if (chain.empty()) {
      history_.erase(it);
      auto dead_it = dead_by_relation_.find(relation);
      if (dead_it != dead_by_relation_.end()) {
        dead_it->second.erase(id);
        if (dead_it->second.empty()) dead_by_relation_.erase(dead_it);
      }
    }
  }
}

WmePtr WorkingMemory::VisibleVersionLocked(WmeId id, uint64_t csn) const {
  auto live_it = live_.find(id);
  if (live_it != live_.end()) {
    auto created_it = live_created_csn_.find(id);
    const uint64_t created =
        created_it == live_created_csn_.end() ? 0 : created_it->second;
    if (created <= csn) return live_it->second;
  }
  auto hist_it = history_.find(id);
  if (hist_it != history_.end()) {
    for (const DeadVersion& version : hist_it->second) {
      if (version.created_csn <= csn && csn < version.deleted_csn) {
        return version.wme;
      }
    }
  }
  return nullptr;
}

uint64_t WorkingMemory::SnapshotHorizon(uint64_t fallback) const {
  std::lock_guard<std::mutex> guard(snap_mu_);
  return active_snapshots_.empty() ? fallback : *active_snapshots_.begin();
}

void WorkingMemory::RegisterSnapshot(uint64_t csn) const {
  std::lock_guard<std::mutex> guard(snap_mu_);
  active_snapshots_.insert(csn);
}

void WorkingMemory::UnregisterSnapshot(uint64_t csn) const {
  std::lock_guard<std::mutex> guard(snap_mu_);
  auto it = active_snapshots_.find(csn);
  DBPS_DCHECK(it != active_snapshots_.end());
  if (it != active_snapshots_.end()) active_snapshots_.erase(it);
}

WmSnapshot WorkingMemory::SnapshotAt() const {
  std::shared_lock lock(mu_);
  const uint64_t csn = csn_.load(std::memory_order_acquire);
  RegisterSnapshot(csn);
  return WmSnapshot(this, csn);
}

size_t WorkingMemory::retained_versions() const {
  std::shared_lock lock(mu_);
  size_t total = 0;
  for (const auto& [id, chain] : history_) total += chain.size();
  return total;
}

WmePtr WorkingMemory::Get(WmeId id) const {
  std::shared_lock lock(mu_);
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : it->second;
}

bool WorkingMemory::IsCurrent(WmeId id, TimeTag tag) const {
  std::shared_lock lock(mu_);
  auto it = live_.find(id);
  return it != live_.end() && it->second->tag() == tag;
}

std::vector<WmePtr> WorkingMemory::Scan(SymbolId relation) const {
  std::shared_lock lock(mu_);
  std::vector<WmePtr> out;
  auto it = by_relation_.find(relation);
  if (it == by_relation_.end()) return out;
  out.reserve(it->second.size());
  for (WmeId id : it->second) out.push_back(live_.at(id));
  return out;
}

std::vector<WmePtr> WorkingMemory::Lookup(SymbolId relation,
                                          size_t attr_index,
                                          const Value& v) const {
  std::shared_lock lock(mu_);
  std::vector<WmePtr> out;
  auto index_it = indexes_.find(IndexKey{relation, attr_index});
  if (index_it != indexes_.end()) {
    auto bucket = index_it->second.find(v);
    if (bucket != index_it->second.end()) {
      out.reserve(bucket->second.size());
      for (WmeId id : bucket->second) out.push_back(live_.at(id));
    }
    return out;
  }
  auto rel_it = by_relation_.find(relation);
  if (rel_it == by_relation_.end()) return out;
  for (WmeId id : rel_it->second) {
    const WmePtr& wme = live_.at(id);
    if (wme->value(attr_index) == v) out.push_back(wme);
  }
  return out;
}

size_t WorkingMemory::Count(SymbolId relation) const {
  std::shared_lock lock(mu_);
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? 0 : it->second.size();
}

size_t WorkingMemory::TotalCount() const {
  std::shared_lock lock(mu_);
  return live_.size();
}

StatusOr<WmChange> WorkingMemory::Apply(const Delta& delta) {
  std::unique_lock lock(mu_);

  // Validate first so a failed Apply leaves WM untouched. Creates are
  // schema-checked; modifies/deletes must name WMEs that are live at
  // their point in the op sequence (a delta may delete a WME it just
  // modified, but not vice versa).
  {
    std::unordered_set<WmeId> deleted;
    for (const auto& op : delta.ops()) {
      if (const auto* create = std::get_if<CreateOp>(&op)) {
        DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                              catalog_.GetRelation(create->relation));
        DBPS_RETURN_NOT_OK(schema->CheckTuple(create->values));
      } else if (const auto* modify = std::get_if<ModifyOp>(&op)) {
        auto it = live_.find(modify->id);
        if (it == live_.end() || deleted.count(modify->id) != 0) {
          return Status::NotFound(
              StringPrintf("modify of dead WME #%llu",
                           (unsigned long long)modify->id));
        }
        for (const auto& [field, value] : modify->updates) {
          if (field >= it->second->arity()) {
            return Status::InvalidArgument(StringPrintf(
                "modify of WME #%llu: field %zu out of range",
                (unsigned long long)modify->id, field));
          }
          (void)value;
        }
      } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
        if (live_.count(del->id) == 0 || !deleted.insert(del->id).second) {
          return Status::NotFound(StringPrintf(
              "delete of dead WME #%llu", (unsigned long long)del->id));
        }
      }
    }
  }

  // The whole delta is one commit: every version it creates or kills is
  // stamped with the same CSN.
  const uint64_t csn = csn_.load(std::memory_order_relaxed) + 1;
  WmChange change;
  change.csn = csn;
  for (const auto& op : delta.ops()) {
    if (const auto* create = std::get_if<CreateOp>(&op)) {
      auto wme = std::make_shared<const Wme>(next_id_++, next_tag_++,
                                             create->relation,
                                             create->values);
      live_.emplace(wme->id(), wme);
      live_created_csn_[wme->id()] = csn;
      by_relation_[create->relation].insert(wme->id());
      IndexAdd(wme);
      change.added.push_back(std::move(wme));
    } else if (const auto* modify = std::get_if<ModifyOp>(&op)) {
      WmePtr old = live_.at(modify->id);
      std::vector<Value> values = old->values();
      for (const auto& [field, value] : modify->updates) {
        values[field] = value;
      }
      auto updated = std::make_shared<const Wme>(
          old->id(), next_tag_++, old->relation(), std::move(values));
      IndexRemove(old);
      auto created_it = live_created_csn_.find(old->id());
      const uint64_t old_created =
          created_it == live_created_csn_.end() ? 0 : created_it->second;
      KillVersionLocked(old, old_created, csn);
      live_[old->id()] = updated;
      live_created_csn_[old->id()] = csn;
      IndexAdd(updated);
      change.removed.push_back(std::move(old));
      change.added.push_back(std::move(updated));
    } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
      auto removed = DeleteLocked(del->id, csn);
      DBPS_CHECK(removed.ok());  // validated above
      change.removed.push_back(std::move(removed).ValueOrDie());
    }
  }
  csn_.store(csn, std::memory_order_release);
  PruneHistoryLocked(csn);
  return change;
}

void WorkingMemory::IndexAdd(const WmePtr& wme) {
  if (indexes_.empty()) return;
  for (size_t field = 0; field < wme->arity(); ++field) {
    auto it = indexes_.find(IndexKey{wme->relation(), field});
    if (it != indexes_.end()) {
      it->second[wme->value(field)].insert(wme->id());
    }
  }
}

void WorkingMemory::IndexRemove(const WmePtr& wme) {
  if (indexes_.empty()) return;
  for (size_t field = 0; field < wme->arity(); ++field) {
    auto it = indexes_.find(IndexKey{wme->relation(), field});
    if (it != indexes_.end()) {
      auto bucket = it->second.find(wme->value(field));
      if (bucket != it->second.end()) {
        bucket->second.erase(wme->id());
        if (bucket->second.empty()) it->second.erase(bucket);
      }
    }
  }
}

Status WorkingMemory::RestoreWme(SymbolId relation, WmeId id, TimeTag tag,
                                 std::vector<Value> values) {
  std::unique_lock lock(mu_);
  DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                        catalog_.GetRelation(relation));
  DBPS_RETURN_NOT_OK(schema->CheckTuple(values));
  if (live_.count(id) != 0) {
    return Status::AlreadyExists(StringPrintf(
        "restore of WME #%llu: id already live", (unsigned long long)id));
  }
  auto wme = std::make_shared<const Wme>(id, tag, relation,
                                         std::move(values));
  live_.emplace(id, wme);
  // created_csn 0: visible to every snapshot — recovery runs before any
  // snapshot exists, and the true creation CSN predates the checkpoint.
  live_created_csn_[id] = 0;
  by_relation_[relation].insert(id);
  IndexAdd(wme);
  next_id_ = std::max(next_id_, id + 1);
  next_tag_ = std::max(next_tag_, tag + 1);
  return Status::OK();
}

void WorkingMemory::RestoreCounters(WmeId next_id, TimeTag next_tag,
                                    uint64_t csn) {
  std::unique_lock lock(mu_);
  next_id_ = std::max(next_id_, next_id);
  next_tag_ = std::max(next_tag_, next_tag);
  csn_.store(csn, std::memory_order_release);
}

void WorkingMemory::ClearForRestore() {
  std::unique_lock lock(mu_);
  live_.clear();
  live_created_csn_.clear();
  by_relation_.clear();
  for (auto& [key, index] : indexes_) index.clear();
  history_.clear();
  dead_by_relation_.clear();
  dead_order_.clear();
}

WmeId WorkingMemory::next_id() const {
  std::shared_lock lock(mu_);
  return next_id_;
}

TimeTag WorkingMemory::next_tag() const {
  std::shared_lock lock(mu_);
  return next_tag_;
}

std::unique_ptr<WorkingMemory> WorkingMemory::Clone() const {
  std::shared_lock lock(mu_);
  auto copy = std::make_unique<WorkingMemory>();
  copy->catalog_ = catalog_;
  copy->live_ = live_;
  copy->live_created_csn_ = live_created_csn_;
  copy->by_relation_ = by_relation_;
  copy->indexes_ = indexes_;
  copy->next_id_ = next_id_;
  copy->next_tag_ = next_tag_;
  copy->csn_.store(csn_.load(std::memory_order_acquire),
                   std::memory_order_release);
  return copy;
}

std::unique_ptr<WorkingMemory> WorkingMemory::CloneSchemaOnly() const {
  std::shared_lock lock(mu_);
  auto copy = std::make_unique<WorkingMemory>();
  copy->catalog_ = catalog_;
  for (const auto& [key, index] : indexes_) {
    copy->indexes_.emplace(key, ValueIndex{});
  }
  return copy;
}

std::string WorkingMemory::ToString() const {
  std::shared_lock lock(mu_);
  std::ostringstream out;
  for (SymbolId relation : catalog_.relation_names()) {
    auto it = by_relation_.find(relation);
    size_t count = it == by_relation_.end() ? 0 : it->second.size();
    out << SymName(relation) << " (" << count << "):\n";
    if (it != by_relation_.end()) {
      for (WmeId id : it->second) {
        out << "  " << live_.at(id)->ToString() << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace dbps
