#include "wm/working_memory.h"

#include <sstream>

#include "util/logging.h"
#include "util/string_util.h"

namespace dbps {

Status WorkingMemory::CreateRelation(RelationSchema schema) {
  std::unique_lock lock(mu_);
  return catalog_.AddRelation(std::move(schema));
}

Status WorkingMemory::CreateRelation(
    std::string_view name,
    const std::vector<std::pair<std::string, AttrType>>& attrs) {
  std::vector<AttrDef> defs;
  defs.reserve(attrs.size());
  for (const auto& [attr_name, type] : attrs) {
    defs.push_back(AttrDef{Sym(attr_name), type});
  }
  return CreateRelation(RelationSchema(Sym(name), std::move(defs)));
}

Status WorkingMemory::CreateIndex(SymbolId relation, SymbolId attr) {
  std::unique_lock lock(mu_);
  DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                        catalog_.GetRelation(relation));
  auto field = schema->AttrIndex(attr);
  if (!field.has_value()) {
    return Status::NotFound("relation '" + SymName(relation) +
                            "' has no attribute '" + SymName(attr) + "'");
  }
  IndexKey key{relation, *field};
  if (indexes_.count(key) != 0) {
    return Status::AlreadyExists("index on " + SymName(relation) + "." +
                                 SymName(attr) + " already exists");
  }
  ValueIndex& index = indexes_[key];
  auto rel_it = by_relation_.find(relation);
  if (rel_it != by_relation_.end()) {
    for (WmeId id : rel_it->second) {
      index[live_.at(id)->value(*field)].insert(id);
    }
  }
  return Status::OK();
}

StatusOr<WmePtr> WorkingMemory::Insert(SymbolId relation,
                                       std::vector<Value> values) {
  std::unique_lock lock(mu_);
  return InsertLocked(relation, std::move(values));
}

StatusOr<WmePtr> WorkingMemory::Insert(std::string_view relation,
                                       std::vector<Value> values) {
  return Insert(Sym(relation), std::move(values));
}

StatusOr<WmePtr> WorkingMemory::InsertLocked(SymbolId relation,
                                             std::vector<Value> values) {
  DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                        catalog_.GetRelation(relation));
  DBPS_RETURN_NOT_OK(schema->CheckTuple(values));
  auto wme = std::make_shared<const Wme>(next_id_++, next_tag_++, relation,
                                         std::move(values));
  live_.emplace(wme->id(), wme);
  by_relation_[relation].insert(wme->id());
  IndexAdd(wme);
  return WmePtr(wme);
}

StatusOr<WmePtr> WorkingMemory::Delete(WmeId id) {
  std::unique_lock lock(mu_);
  return DeleteLocked(id);
}

StatusOr<WmePtr> WorkingMemory::DeleteLocked(WmeId id) {
  auto it = live_.find(id);
  if (it == live_.end()) {
    return Status::NotFound(StringPrintf("WME #%llu is not live",
                                         (unsigned long long)id));
  }
  WmePtr wme = it->second;
  IndexRemove(wme);
  by_relation_[wme->relation()].erase(id);
  live_.erase(it);
  return wme;
}

WmePtr WorkingMemory::Get(WmeId id) const {
  std::shared_lock lock(mu_);
  auto it = live_.find(id);
  return it == live_.end() ? nullptr : it->second;
}

bool WorkingMemory::IsCurrent(WmeId id, TimeTag tag) const {
  std::shared_lock lock(mu_);
  auto it = live_.find(id);
  return it != live_.end() && it->second->tag() == tag;
}

std::vector<WmePtr> WorkingMemory::Scan(SymbolId relation) const {
  std::shared_lock lock(mu_);
  std::vector<WmePtr> out;
  auto it = by_relation_.find(relation);
  if (it == by_relation_.end()) return out;
  out.reserve(it->second.size());
  for (WmeId id : it->second) out.push_back(live_.at(id));
  return out;
}

std::vector<WmePtr> WorkingMemory::Lookup(SymbolId relation,
                                          size_t attr_index,
                                          const Value& v) const {
  std::shared_lock lock(mu_);
  std::vector<WmePtr> out;
  auto index_it = indexes_.find(IndexKey{relation, attr_index});
  if (index_it != indexes_.end()) {
    auto bucket = index_it->second.find(v);
    if (bucket != index_it->second.end()) {
      out.reserve(bucket->second.size());
      for (WmeId id : bucket->second) out.push_back(live_.at(id));
    }
    return out;
  }
  auto rel_it = by_relation_.find(relation);
  if (rel_it == by_relation_.end()) return out;
  for (WmeId id : rel_it->second) {
    const WmePtr& wme = live_.at(id);
    if (wme->value(attr_index) == v) out.push_back(wme);
  }
  return out;
}

size_t WorkingMemory::Count(SymbolId relation) const {
  std::shared_lock lock(mu_);
  auto it = by_relation_.find(relation);
  return it == by_relation_.end() ? 0 : it->second.size();
}

size_t WorkingMemory::TotalCount() const {
  std::shared_lock lock(mu_);
  return live_.size();
}

StatusOr<WmChange> WorkingMemory::Apply(const Delta& delta) {
  std::unique_lock lock(mu_);

  // Validate first so a failed Apply leaves WM untouched. Creates are
  // schema-checked; modifies/deletes must name WMEs that are live at
  // their point in the op sequence (a delta may delete a WME it just
  // modified, but not vice versa).
  {
    std::unordered_set<WmeId> deleted;
    for (const auto& op : delta.ops()) {
      if (const auto* create = std::get_if<CreateOp>(&op)) {
        DBPS_ASSIGN_OR_RETURN(const RelationSchema* schema,
                              catalog_.GetRelation(create->relation));
        DBPS_RETURN_NOT_OK(schema->CheckTuple(create->values));
      } else if (const auto* modify = std::get_if<ModifyOp>(&op)) {
        auto it = live_.find(modify->id);
        if (it == live_.end() || deleted.count(modify->id) != 0) {
          return Status::NotFound(
              StringPrintf("modify of dead WME #%llu",
                           (unsigned long long)modify->id));
        }
        for (const auto& [field, value] : modify->updates) {
          if (field >= it->second->arity()) {
            return Status::InvalidArgument(StringPrintf(
                "modify of WME #%llu: field %zu out of range",
                (unsigned long long)modify->id, field));
          }
          (void)value;
        }
      } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
        if (live_.count(del->id) == 0 || !deleted.insert(del->id).second) {
          return Status::NotFound(StringPrintf(
              "delete of dead WME #%llu", (unsigned long long)del->id));
        }
      }
    }
  }

  WmChange change;
  for (const auto& op : delta.ops()) {
    if (const auto* create = std::get_if<CreateOp>(&op)) {
      auto wme = std::make_shared<const Wme>(next_id_++, next_tag_++,
                                             create->relation,
                                             create->values);
      live_.emplace(wme->id(), wme);
      by_relation_[create->relation].insert(wme->id());
      IndexAdd(wme);
      change.added.push_back(std::move(wme));
    } else if (const auto* modify = std::get_if<ModifyOp>(&op)) {
      WmePtr old = live_.at(modify->id);
      std::vector<Value> values = old->values();
      for (const auto& [field, value] : modify->updates) {
        values[field] = value;
      }
      auto updated = std::make_shared<const Wme>(
          old->id(), next_tag_++, old->relation(), std::move(values));
      IndexRemove(old);
      live_[old->id()] = updated;
      IndexAdd(updated);
      change.removed.push_back(std::move(old));
      change.added.push_back(std::move(updated));
    } else if (const auto* del = std::get_if<DeleteOp>(&op)) {
      auto removed = DeleteLocked(del->id);
      DBPS_CHECK(removed.ok());  // validated above
      change.removed.push_back(std::move(removed).ValueOrDie());
    }
  }
  return change;
}

void WorkingMemory::IndexAdd(const WmePtr& wme) {
  if (indexes_.empty()) return;
  for (size_t field = 0; field < wme->arity(); ++field) {
    auto it = indexes_.find(IndexKey{wme->relation(), field});
    if (it != indexes_.end()) {
      it->second[wme->value(field)].insert(wme->id());
    }
  }
}

void WorkingMemory::IndexRemove(const WmePtr& wme) {
  if (indexes_.empty()) return;
  for (size_t field = 0; field < wme->arity(); ++field) {
    auto it = indexes_.find(IndexKey{wme->relation(), field});
    if (it != indexes_.end()) {
      auto bucket = it->second.find(wme->value(field));
      if (bucket != it->second.end()) {
        bucket->second.erase(wme->id());
        if (bucket->second.empty()) it->second.erase(bucket);
      }
    }
  }
}

std::unique_ptr<WorkingMemory> WorkingMemory::Clone() const {
  std::shared_lock lock(mu_);
  auto copy = std::make_unique<WorkingMemory>();
  copy->catalog_ = catalog_;
  copy->live_ = live_;
  copy->by_relation_ = by_relation_;
  copy->indexes_ = indexes_;
  copy->next_id_ = next_id_;
  copy->next_tag_ = next_tag_;
  return copy;
}

std::string WorkingMemory::ToString() const {
  std::shared_lock lock(mu_);
  std::ostringstream out;
  for (SymbolId relation : catalog_.relation_names()) {
    auto it = by_relation_.find(relation);
    size_t count = it == by_relation_.end() ? 0 : it->second.size();
    out << SymName(relation) << " (" << count << "):\n";
    if (it != by_relation_.end()) {
      for (WmeId id : it->second) {
        out << "  " << live_.at(id)->ToString() << "\n";
      }
    }
  }
  return out.str();
}

}  // namespace dbps
