// WorkingMemory: the production system's database.
//
// A catalog of relations, the live WME versions, and optional per-
// attribute hash indexes. Reads take a shared lock; Apply (the commit
// path) takes an exclusive lock, so readers always observe a committed
// snapshot boundary. Engines additionally serialize Apply calls with
// their commit mutex so commit order is total and replayable.

#ifndef DBPS_WM_WORKING_MEMORY_H_
#define DBPS_WM_WORKING_MEMORY_H_

#include <functional>
#include <memory>
#include <shared_mutex>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "util/status.h"
#include "util/statusor.h"
#include "wm/delta.h"
#include "wm/schema.h"
#include "wm/wme.h"

namespace dbps {

/// \brief The working-memory database.
class WorkingMemory {
 public:
  WorkingMemory() = default;

  WorkingMemory(const WorkingMemory&) = delete;
  WorkingMemory& operator=(const WorkingMemory&) = delete;

  // --- Schema -----------------------------------------------------------

  Status CreateRelation(RelationSchema schema);

  /// Declares relation `name` with attributes (name, type) pairs.
  Status CreateRelation(
      std::string_view name,
      const std::vector<std::pair<std::string, AttrType>>& attrs);

  const Catalog& catalog() const { return catalog_; }

  /// Creates a hash index on (relation, attr); NotFound if either is
  /// unknown. Existing WMEs are indexed immediately.
  Status CreateIndex(SymbolId relation, SymbolId attr);

  // --- Direct mutation (setup / single-thread engine) --------------------

  /// Inserts one tuple; returns the new WME version.
  StatusOr<WmePtr> Insert(SymbolId relation, std::vector<Value> values);

  /// Convenience: relation by name, values as given.
  StatusOr<WmePtr> Insert(std::string_view relation,
                          std::vector<Value> values);

  /// Removes WME `id`; returns the removed version.
  StatusOr<WmePtr> Delete(WmeId id);

  // --- Reads --------------------------------------------------------------

  /// Live version of WME `id`, or nullptr if absent.
  WmePtr Get(WmeId id) const;

  /// True iff WME `id` is live with time tag `tag` (validation check).
  bool IsCurrent(WmeId id, TimeTag tag) const;

  /// All live WMEs of `relation` (unspecified order).
  std::vector<WmePtr> Scan(SymbolId relation) const;

  /// Live WMEs of `relation` whose field `attr_index` equals `v`.
  /// Uses the hash index when one exists, otherwise scans.
  std::vector<WmePtr> Lookup(SymbolId relation, size_t attr_index,
                             const Value& v) const;

  size_t Count(SymbolId relation) const;
  size_t TotalCount() const;

  // --- Commit path ---------------------------------------------------------

  /// Applies every operation of `delta` atomically. Ids for creates are
  /// assigned here, in op order, so identical deltas applied in identical
  /// order always assign identical ids (replay determinism).
  ///
  /// Fails (with no changes applied) if a modify/delete names a dead WME
  /// or a create violates its schema.
  StatusOr<WmChange> Apply(const Delta& delta);

  /// Deep-copies schema + live WMEs + id counters (WME versions shared).
  std::unique_ptr<WorkingMemory> Clone() const;

  std::string ToString() const;

 private:
  struct IndexKey {
    SymbolId relation;
    size_t field;
    bool operator==(const IndexKey& o) const {
      return relation == o.relation && field == o.field;
    }
  };
  struct IndexKeyHash {
    size_t operator()(const IndexKey& k) const {
      return std::hash<uint64_t>{}((static_cast<uint64_t>(k.relation) << 20) ^
                                   k.field);
    }
  };
  using ValueIndex = std::unordered_map<Value, std::unordered_set<WmeId>, ValueHash>;

  // All require holding mu_ exclusively.
  StatusOr<WmePtr> InsertLocked(SymbolId relation, std::vector<Value> values);
  StatusOr<WmePtr> DeleteLocked(WmeId id);
  void IndexAdd(const WmePtr& wme);
  void IndexRemove(const WmePtr& wme);

  mutable std::shared_mutex mu_;
  Catalog catalog_;
  std::unordered_map<WmeId, WmePtr> live_;
  std::unordered_map<SymbolId, std::unordered_set<WmeId>> by_relation_;
  std::unordered_map<IndexKey, ValueIndex, IndexKeyHash> indexes_;
  WmeId next_id_ = 1;
  TimeTag next_tag_ = 1;
};

}  // namespace dbps

#endif  // DBPS_WM_WORKING_MEMORY_H_
